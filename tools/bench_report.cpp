// hypart — aggregate and diff hypart-bench-v1 result sets.
//
//   bench_report summarize <dir>
//   bench_report diff <baseline-dir> <new-dir> [--tolerance PCT]
//                [--check] [--check-timings PCT]
//
// A result set is a directory of BENCH_<name>.json documents written by the
// bench binaries (bench/bench_common.hpp).  `summarize` prints one table
// over a set; `diff` compares two sets per bench:
//
//   * deterministic metrics (counters, gauges, histogram count/sum) are
//     machine-independent by construction, so any drift beyond --tolerance
//     (relative, default 0 = exact) is a real behavior change — with
//     --check it fails the run (exit 1).  This is the CI perf-regression
//     gate against the committed bench/baselines/.
//   * wall-clock timings (median_us per benchmark) are machine-dependent;
//     they are reported for eyeballing and only gate with an explicit
//     --check-timings PCT threshold.
//
// exit codes: 0 ok, 1 check failed, 64 usage, 66 cannot open/parse.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "core/json_reader.hpp"
#include "perf/table.hpp"

namespace {

using hypart::JsonValue;
using hypart::TextTable;

const char kUsage[] =
    "usage: bench_report summarize <dir>\n"
    "       bench_report diff <baseline-dir> <new-dir> [--tolerance PCT]\n"
    "                    [--check] [--check-timings PCT]\n"
    "\n"
    "  summarize        one-line overview per BENCH_*.json in <dir>\n"
    "  diff             compare two result sets; deterministic metrics are\n"
    "                   compared at --tolerance (relative %%, default 0 =\n"
    "                   byte-exact), wall-clock timings are shown but only\n"
    "                   gate with --check-timings PCT\n"
    "  --check          exit 1 when any tracked metric drifts past the\n"
    "                   tolerance or a baseline bench is missing\n";

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "bench_report: %s\n", msg);
  std::fprintf(stderr, "%s", kUsage);
  std::exit(64);
}

/// BENCH_*.json documents in `dir`, keyed by bench name.
std::map<std::string, JsonValue> load_result_set(const std::string& dir) {
  std::map<std::string, JsonValue> set;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    std::fprintf(stderr, "bench_report: cannot read directory '%s': %s\n", dir.c_str(),
                 ec.message().c_str());
    std::exit(66);
  }
  for (const auto& entry : it) {
    const std::string fname = entry.path().filename().string();
    if (fname.rfind("BENCH_", 0) != 0 || entry.path().extension() != ".json") continue;
    JsonValue doc;
    std::string error;
    if (!hypart::parse_json_file(entry.path().string(), doc, error)) {
      std::fprintf(stderr, "bench_report: %s\n", error.c_str());
      std::exit(66);
    }
    if (doc.string_or("schema", "") != "hypart-bench-v1") {
      std::fprintf(stderr, "bench_report: %s: not a hypart-bench-v1 document\n",
                   entry.path().string().c_str());
      std::exit(66);
    }
    set[doc.string_or("bench", fname)] = std::move(doc);
  }
  return set;
}

/// Flatten the deterministic portion of one document into name -> value:
/// counters.<k>, gauges.<k>, histograms.<k>.count / .sum.
std::map<std::string, double> tracked_metrics(const JsonValue& doc) {
  std::map<std::string, double> out;
  const JsonValue& metrics = doc.get("metrics");
  if (metrics.get("counters").is_object())
    for (const auto& [k, v] : metrics.get("counters").as_object())
      if (v.is_number()) out["counters." + k] = v.as_double();
  if (metrics.get("gauges").is_object())
    for (const auto& [k, v] : metrics.get("gauges").as_object())
      if (v.is_number()) out["gauges." + k] = v.as_double();
  if (metrics.get("histograms").is_object())
    for (const auto& [k, v] : metrics.get("histograms").as_object()) {
      out["histograms." + k + ".count"] = v.number_or("count", 0.0);
      out["histograms." + k + ".sum"] = v.number_or("sum", 0.0);
    }
  return out;
}

/// median_us per benchmark timing name.
std::map<std::string, double> timing_medians(const JsonValue& doc) {
  std::map<std::string, double> out;
  const JsonValue& timings = doc.get("timings");
  if (!timings.is_array()) return out;
  for (const JsonValue& t : timings.as_array())
    out[t.string_or("name", "?")] = t.number_or("median_us", 0.0);
  return out;
}

/// Relative drift of b vs a in percent; exact-zero pairs drift 0.
double drift_pct(double a, double b) {
  if (a == b) return 0.0;
  const double denom = std::max(std::abs(a), std::abs(b));
  return denom == 0.0 ? 0.0 : 100.0 * std::abs(b - a) / denom;
}

int cmd_summarize(const std::string& dir) {
  std::map<std::string, JsonValue> set = load_result_set(dir);
  TextTable t({"bench", "counters", "gauges", "spans", "timings", "slowest benchmark"});
  for (const auto& [name, doc] : set) {
    std::size_t spans = doc.get("spans").is_array() ? doc.get("spans").as_array().size() : 0;
    std::map<std::string, double> med = timing_medians(doc);
    std::string slowest = "-";
    double worst = -1.0;
    for (const auto& [bench, us] : med)
      if (us > worst) {
        worst = us;
        slowest = bench;
      }
    const JsonValue& metrics = doc.get("metrics");
    std::size_t ncounters =
        metrics.get("counters").is_object() ? metrics.get("counters").as_object().size() : 0;
    std::size_t ngauges =
        metrics.get("gauges").is_object() ? metrics.get("gauges").as_object().size() : 0;
    t.row(name, ncounters, ngauges, spans, med.size(), slowest);
  }
  std::printf("%zu result document(s) in %s\n%s", set.size(), dir.c_str(),
              t.to_string().c_str());
  return 0;
}

int cmd_diff(const std::string& base_dir, const std::string& new_dir, double tolerance,
             bool check, double timings_tolerance) {
  std::map<std::string, JsonValue> base = load_result_set(base_dir);
  std::map<std::string, JsonValue> next = load_result_set(new_dir);

  int metric_failures = 0;
  int timing_failures = 0;
  TextTable t({"bench", "metric", "baseline", "new", "drift %"});

  for (const auto& [name, base_doc] : base) {
    auto it = next.find(name);
    if (it == next.end()) {
      std::printf("MISSING  %s: present in baseline, absent in new set\n", name.c_str());
      ++metric_failures;
      continue;
    }
    std::map<std::string, double> a = tracked_metrics(base_doc);
    std::map<std::string, double> b = tracked_metrics(it->second);
    for (const auto& [key, av] : a) {
      auto bit = b.find(key);
      if (bit == b.end()) {
        t.row(name, key, av, "(removed)", "");
        ++metric_failures;
        continue;
      }
      double d = drift_pct(av, bit->second);
      if (d > tolerance) {
        t.row(name, key, av, bit->second, d);
        ++metric_failures;
      }
    }
    for (const auto& [key, bv] : b)
      if (a.find(key) == a.end()) t.row(name, key, "(added)", bv, "");

    // Wall-clock medians: informational unless --check-timings.
    std::map<std::string, double> ta = timing_medians(base_doc);
    std::map<std::string, double> tb = timing_medians(it->second);
    for (const auto& [bench, av] : ta) {
      auto bit = tb.find(bench);
      if (bit == tb.end()) continue;
      // Only slowdowns count against the threshold.
      double d = av == 0.0 ? 0.0 : 100.0 * (bit->second - av) / av;
      if (timings_tolerance >= 0.0 && d > timings_tolerance) {
        t.row(name, "timing: " + bench + " (us)", av, bit->second, d);
        ++timing_failures;
      }
    }
  }
  for (const auto& [name, doc] : next)
    if (base.find(name) == base.end())
      std::printf("NEW      %s: absent in baseline (add it to the baseline set)\n",
                  name.c_str());

  std::printf("%s", t.to_string().c_str());
  std::printf("compared %zu baseline bench(es): %d metric drift(s)", base.size(),
              metric_failures);
  if (timings_tolerance >= 0.0) std::printf(", %d timing regression(s)", timing_failures);
  std::printf("\n");

  if (check && metric_failures > 0) return 1;
  if (timings_tolerance >= 0.0 && timing_failures > 0) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("%s", kUsage);
      return 0;
    }
  if (argc < 3) usage();
  std::string cmd = argv[1];
  if (cmd == "summarize") {
    if (argc != 3) usage("summarize takes exactly one directory");
    return cmd_summarize(argv[2]);
  }
  if (cmd == "diff") {
    if (argc < 4) usage("diff needs <baseline-dir> <new-dir>");
    double tolerance = 0.0;
    double timings_tolerance = -1.0;  // < 0: timings informational only
    bool check = false;
    for (int i = 4; i < argc; ++i) {
      std::string a = argv[i];
      auto next_arg = [&]() -> std::string {
        if (i + 1 >= argc) usage(("missing value for " + a).c_str());
        return argv[++i];
      };
      if (a == "--tolerance") tolerance = std::stod(next_arg());
      else if (a == "--check") check = true;
      else if (a == "--check-timings") timings_tolerance = std::stod(next_arg());
      else usage(("unknown option " + a).c_str());
    }
    return cmd_diff(argv[2], argv[3], tolerance, check, timings_tolerance);
  }
  usage(("unknown command " + cmd).c_str());
}
