// hypart loadgen — load generator / latency probe for `hypart serve`.
//
//   loadgen (--socket PATH | --port N) [--requests N] [--streams K]
//           [--rescale] [--connections C] [--batch K] [--rps R] [--op OP]
//           [--size N] [--program FILE] [--dim N] [--space M] [--json]
//           [--expect-hits]
//
// Sends NDJSON plan requests and reports client-side latency percentiles
// (p50/p90/p99/p999 via the obs histogram machinery) split by the server's
// cache disposition, sustained throughput (req/s), and the server's own
// cache counters (a final "stats" query).
//
// The request schedule is deterministic: `--streams K` issues K renamed
// copies of the same request sequence (same structure, same sizes, fresh
// loop/index/array identifiers per stream), so stream 0 populates the cache
// and streams 1..K-1 must score exact document hits.  `--rescale`
// interleaves a doubled-size variant into every stream, which misses the
// document tier but reuses the cached time function (the "pi" disposition).
// `--op` fixes one query type; the default cycles
// partition/map/predict/explain.  `--rps R` paces an open loop at R
// requests/second; the default is a closed loop (send, wait, send).
// `--batch K` wraps every K consecutive requests of a connection's schedule
// into one {"op":"batch"} line: round-trip latency is then attributed per
// sub-request (line time / K, so percentiles stay comparable across batch
// sizes and the framing amortization is directly visible); the raw line
// times are reported separately under "batch_line".
//
// Exit codes: 0 ok, 1 error replies or transport failure, 2 --expect-hits
// saw zero document hits, 64 usage.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/io_util.hpp"
#include "core/json_reader.hpp"
#include "core/json_writer.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace hypart;

const char kUsage[] =
    "usage: loadgen (--socket PATH | --port N) [--requests N] [--streams K]\n"
    "               [--rescale] [--connections C] [--batch K] [--rps R]\n"
    "               [--op partition|map|predict|explain] [--size N]\n"
    "               [--program FILE] [--dim N] [--space dense|symbolic|verify]\n"
    "               [--json] [--expect-hits]\n";

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "loadgen: %s\n", msg);
  std::fprintf(stderr, "%s", kUsage);
  std::exit(64);
}

struct Options {
  std::string socket_path;
  int port = -1;
  std::int64_t requests = 32;
  std::size_t streams = 2;
  bool rescale = false;
  std::size_t connections = 1;
  std::size_t batch = 1;  ///< sub-requests per line; 1 = plain requests
  double rps = 0.0;  ///< 0 = closed loop
  std::string op;    ///< empty = cycle the four plan ops
  std::int64_t size = 24;
  std::string program_path;  ///< --program FILE: custom template, sent as-is
  std::int64_t dim = 2;
  std::string space = "symbolic";
  bool json = false;
  bool expect_hits = false;
};

/// One NDJSON connection: blocking socket + buffered line reads.
class Connection {
 public:
  Connection(const std::string& socket_path, int port) {
    if (!socket_path.empty()) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
      if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        std::fprintf(stderr, "loadgen: cannot connect to unix:%s: %s\n", socket_path.c_str(),
                     std::strerror(errno));
        std::exit(1);
      }
    } else {
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        std::fprintf(stderr, "loadgen: cannot connect to tcp:127.0.0.1:%d: %s\n", port,
                     std::strerror(errno));
        std::exit(1);
      }
    }
  }
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Send one request line, block for the reply line.
  std::string roundtrip(const std::string& request) {
    std::string line = request;
    line.push_back('\n');
    if (!write_full(fd_, line.data(), line.size())) {
      std::fprintf(stderr, "loadgen: write failed: %s\n", std::strerror(errno));
      std::exit(1);
    }
    for (;;) {
      std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string reply = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return reply;
      }
      char chunk[4096];
      ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        std::fprintf(stderr, "loadgen: server closed the connection\n");
        std::exit(1);
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// The built-in request program: a SOR-like 2-D recurrence whose loop,
/// index and array identifiers carry the stream suffix, so streams are
/// structurally identical but share no names.
std::string make_program(std::size_t stream, std::int64_t n) {
  std::string s = std::to_string(stream);
  std::string N = std::to_string(n);
  return "loop gen" + s + " { for i" + s + " = 1 to " + N + " for j" + s + " = 1 to " + N +
         " A" + s + "[i" + s + ", j" + s + "] = (A" + s + "[i" + s + "-1, j" + s + "] + A" + s +
         "[i" + s + ", j" + s + "-1]) * 0.5; }";
}

std::string make_request(std::int64_t id, const std::string& op, const std::string& program,
                         const Options& o) {
  JsonWriter w;
  w.begin_object();
  w.field("id", id);
  w.field("op", op);
  w.field("program", program);
  w.key("params").begin_object();
  w.field("dim", o.dim);
  w.field("space", o.space);
  w.end_object();
  w.end_object();
  return w.str();
}

/// Latency-percentile buckets: 1-2-5 decades from 1 us to 50 s.
std::vector<std::int64_t> latency_bounds() {
  std::vector<std::int64_t> bounds;
  for (std::int64_t decade = 1; decade <= 10'000'000; decade *= 10)
    for (std::int64_t m : {1, 2, 5}) bounds.push_back(m * decade);
  return bounds;
}

struct Tally {
  std::mutex mutex;
  std::map<std::string, obs::HistogramData> latency;  ///< round-trip, per disposition + "all"
  std::map<std::string, obs::HistogramData> plan_us;  ///< server-reported planning time
  std::int64_t errors = 0;
  std::map<std::string, std::int64_t> dispositions;

  /// Call with `mutex` held; lazily sizes the histogram's fixed buckets.
  static void observe_into(obs::HistogramData& h, std::int64_t us) {
    static const std::vector<std::int64_t> bounds = latency_bounds();
    if (h.upper_bounds.empty()) {
      h.upper_bounds = bounds;
      h.counts.resize(bounds.size() + 1);
    }
    h.observe(us);
  }
};

Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--socket") o.socket_path = next();
    else if (a == "--port") o.port = static_cast<int>(std::stol(next()));
    else if (a == "--requests") o.requests = std::stoll(next());
    else if (a == "--streams") o.streams = std::stoul(next());
    else if (a == "--rescale") o.rescale = true;
    else if (a == "--connections") o.connections = std::stoul(next());
    else if (a == "--batch") o.batch = std::stoul(next());
    else if (a == "--rps") o.rps = std::stod(next());
    else if (a == "--op") o.op = next();
    else if (a == "--size") o.size = std::stoll(next());
    else if (a == "--program") o.program_path = next();
    else if (a == "--dim") o.dim = std::stoll(next());
    else if (a == "--space") o.space = next();
    else if (a == "--json") o.json = true;
    else if (a == "--expect-hits") o.expect_hits = true;
    else if (a == "--help" || a == "-h") { std::printf("%s", kUsage); std::exit(0); }
    else usage(("unknown option " + a).c_str());
  }
  if (o.socket_path.empty() && o.port < 0) usage("need --socket PATH or --port N");
  if (!o.socket_path.empty() && o.port >= 0) usage("--socket and --port are mutually exclusive");
  if (o.requests < 1) usage("--requests must be >= 1");
  if (o.streams < 1) o.streams = 1;
  if (o.connections < 1) o.connections = 1;
  if (o.batch < 1) o.batch = 1;
  if (!o.op.empty() && o.op != "partition" && o.op != "map" && o.op != "predict" &&
      o.op != "explain")
    usage("--op must be partition, map, predict or explain");
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  ignore_sigpipe();
  Options o = parse_args(argc, argv);

  std::string custom_program;
  if (!o.program_path.empty()) {
    std::ifstream in(o.program_path);
    if (!in) {
      std::fprintf(stderr, "loadgen: cannot open '%s'\n", o.program_path.c_str());
      return 66;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    custom_program = ss.str();
  }

  static const char* kOps[] = {"partition", "map", "predict", "explain"};
  // Deterministic schedule: request k belongs to stream k / per_stream and,
  // within the stream, cycles sizes (base, 2*base with --rescale) and ops.
  const std::int64_t per_stream =
      (o.requests + static_cast<std::int64_t>(o.streams) - 1) /
      static_cast<std::int64_t>(o.streams);
  auto request_for = [&](std::int64_t k) {
    std::size_t stream = static_cast<std::size_t>(k / per_stream);
    std::int64_t within = k % per_stream;
    std::int64_t size = (o.rescale && within % 2 == 1) ? 2 * o.size : o.size;
    std::string program =
        custom_program.empty() ? make_program(stream, size) : custom_program;
    std::string op = o.op.empty() ? kOps[static_cast<std::size_t>(k) % 4] : o.op;
    return make_request(k, op, program, o);
  };

  Tally tally;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < o.connections; ++c) {
    threads.emplace_back([&, c] {
      Connection conn(o.socket_path, o.port);
      // Connection c serves requests c, c+C, c+2C, ...; with --batch K,
      // every K consecutive requests of that schedule share one line.
      // With --rps the whole schedule is paced on one global clock (open
      // loop), each line due at its first request's slot.
      std::vector<std::int64_t> mine;
      for (std::int64_t k = static_cast<std::int64_t>(c); k < o.requests;
           k += static_cast<std::int64_t>(o.connections))
        mine.push_back(k);
      for (std::size_t i = 0; i < mine.size(); i += o.batch) {
        const std::size_t n = std::min(o.batch, mine.size() - i);
        if (o.rps > 0.0) {
          auto due = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(
                                     static_cast<double>(mine[i]) / o.rps));
          std::this_thread::sleep_until(due);
        }
        std::string request;
        if (o.batch == 1) {
          request = request_for(mine[i]);
        } else {
          JsonWriter w;
          w.begin_object();
          w.field("id", mine[i]);
          w.field("op", "batch");
          w.begin_array("requests");
          for (std::size_t j = 0; j < n; ++j) w.raw_value(request_for(mine[i + j]));
          w.end_array();
          w.end_object();
          request = w.str();
        }
        auto t0 = std::chrono::steady_clock::now();
        std::string reply_text = conn.roundtrip(request);
        auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
        // Collect the per-request replies (the line's own object, or the
        // in-order "replies" of a batch line).
        JsonValue reply;
        std::vector<const JsonValue*> per_request;
        bool line_ok = true;
        try {
          reply = parse_json(reply_text);
          if (o.batch == 1) {
            per_request.push_back(&reply);
          } else if (reply.has("ok") && reply.get("ok").as_bool() && reply.has("replies")) {
            for (const JsonValue& r : reply.get("replies").as_array()) per_request.push_back(&r);
          } else {
            line_ok = false;
            std::fprintf(stderr, "loadgen: error reply: %s\n", reply_text.c_str());
          }
        } catch (const JsonParseError& e) {
          line_ok = false;
          std::fprintf(stderr, "loadgen: unparsable reply: %s\n", e.what());
        }
        const std::int64_t per_us =
            us / static_cast<std::int64_t>(per_request.empty() ? 1 : per_request.size());
        std::lock_guard<std::mutex> lock(tally.mutex);
        if (o.batch > 1) Tally::observe_into(tally.latency["batch_line"], us);
        if (!line_ok) {
          tally.errors += static_cast<std::int64_t>(n);
          Tally::observe_into(tally.latency["all"], us);
          continue;
        }
        for (const JsonValue* rp : per_request) {
          bool ok = rp->has("ok") && rp->get("ok").as_bool();
          std::string disposition = rp->string_or("cache", "");
          std::int64_t server_us = rp->int_or("plan_us", -1);
          if (!ok) {
            std::fprintf(stderr, "loadgen: error reply: %s\n", rp->to_json().c_str());
            ++tally.errors;
          }
          Tally::observe_into(tally.latency["all"], per_us);
          if (ok && !disposition.empty()) {
            Tally::observe_into(tally.latency[disposition], per_us);
            ++tally.dispositions[disposition];
            if (server_us >= 0) Tally::observe_into(tally.plan_us[disposition], server_us);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                            .count();

  // Server-side view: one stats query over a fresh connection.
  JsonValue server_stats;
  {
    Connection conn(o.socket_path, o.port);
    try {
      server_stats = parse_json(conn.roundtrip("{\"id\":\"stats\",\"op\":\"stats\"}"));
    } catch (const JsonParseError&) {
    }
  }

  const std::int64_t hits =
      tally.dispositions.count("hit") ? tally.dispositions.at("hit") : 0;
  if (o.json) {
    JsonWriter w;
    w.begin_object();
    w.field("requests", o.requests);
    w.field("batch", static_cast<std::int64_t>(o.batch));
    w.field("errors", tally.errors);
    w.field("wall_s", wall_s);
    w.field("rps", static_cast<double>(o.requests) / (wall_s > 0 ? wall_s : 1.0));
    w.key("dispositions").begin_object();
    for (const auto& [name, count] : tally.dispositions) w.field(name, count);
    w.end_object();
    auto write_histograms = [&w](const std::map<std::string, obs::HistogramData>& hists) {
      for (const auto& [name, h] : hists) {
        w.key(name).begin_object();
        w.field("count", h.count);
        w.field("mean", h.mean());
        w.field("p50", h.percentile(0.50));
        w.field("p90", h.percentile(0.90));
        w.field("p99", h.percentile(0.99));
        w.field("p999", h.percentile(0.999));
        w.field("min", h.min);
        w.field("max", h.max);
        w.end_object();
      }
    };
    w.key("latency_us").begin_object();
    write_histograms(tally.latency);
    w.end_object();
    w.key("plan_us").begin_object();
    write_histograms(tally.plan_us);
    w.end_object();
    if (server_stats.has("cache")) w.key("server").raw_value(server_stats.get("cache").to_json());
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("loadgen: %lld requests in %.2fs (%.1f rps), %lld errors\n",
                static_cast<long long>(o.requests), wall_s,
                static_cast<double>(o.requests) / (wall_s > 0 ? wall_s : 1.0),
                static_cast<long long>(tally.errors));
    for (const auto& [name, h] : tally.latency) {
      std::printf("  %-10s n=%-5lld p50=%lldus p90=%lldus p99=%lldus p999=%lldus max=%lldus\n",
                  name.c_str(), static_cast<long long>(h.count),
                  static_cast<long long>(h.percentile(0.50)),
                  static_cast<long long>(h.percentile(0.90)),
                  static_cast<long long>(h.percentile(0.99)),
                  static_cast<long long>(h.percentile(0.999)), static_cast<long long>(h.max));
    }
    for (const auto& [name, h] : tally.plan_us) {
      std::printf("  plan %-5s p50=%lldus max=%lldus (server-side)\n", name.c_str(),
                  static_cast<long long>(h.percentile(0.50)), static_cast<long long>(h.max));
    }
    if (server_stats.has("cache")) {
      const JsonValue& c = server_stats.get("cache");
      std::printf("  server cache: %lld hits, %lld pi, %lld misses, %lld+%lld evictions, "
                  "%lld docs / %lld skeletons live\n",
                  static_cast<long long>(c.int_or("hits", 0)),
                  static_cast<long long>(c.int_or("pi_hits", 0)),
                  static_cast<long long>(c.int_or("misses", 0) - c.int_or("pi_hits", 0)),
                  static_cast<long long>(c.int_or("doc_evictions", 0)),
                  static_cast<long long>(c.int_or("pi_evictions", 0)),
                  static_cast<long long>(c.int_or("documents", 0)),
                  static_cast<long long>(c.int_or("skeletons", 0)));
    }
  }

  if (tally.errors > 0) return 1;
  if (o.expect_hits && hits == 0) {
    std::fprintf(stderr, "loadgen: --expect-hits: no document cache hits recorded\n");
    return 2;
  }
  return 0;
}
