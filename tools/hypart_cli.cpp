// hypart — command-line driver.
//
//   hypart <command> <file.loop | -> [options]
//
// commands:
//   analyze    dependence vectors, structure counts, time-function search
//   partition  Algorithm 1: projection, grouping, blocks, theorem checks
//   map        Algorithm 2: blocks -> hypercube, mapping metrics
//   simulate   cost simulation (three accounting conventions)
//   run        execute sequentially AND distributed; verify equivalence
//   codegen    emit the SPMD node program
//   wavefront  print the time-outer transformed loop
//   json       machine-readable dump of the whole pipeline
//   trace      Chrome/Perfetto trace of the pipeline + simulated execution
//   profile    per-phase self-profile (wall time, allocations, peak RSS)
//   explain    prediction-accuracy ledger: simulator vs threaded runtime
//   serve      long-running NDJSON plan service with a canonical plan cache
//              (docs/serve.md; takes no <file> argument)
//
// options:
//   --dim N          hypercube dimension (default 3)
//   --space M        dense | symbolic | verify (default dense); symbolic
//                    partitions via IterSpace closed forms without ever
//                    materializing the index set (docs/iterspace.md)
//   --pi a,b,..      explicit time function (default: search)
//   --weighted       weighted cluster bisection
//   --accounting M   paper | barrier | contention (default paper)
//   --tcalc/--tstart/--tcomm X   machine constants (default 1/50/5)
//   --faults SPEC    deterministic fault injection (node:5,link:2-6@4,rand:7:2n,
//                    proc:kill:1@2 for real process faults with --backend procs)
//   --backend B      threads | procs: real execution backend for run/explain
//   --recv-timeout-ms N   stall watchdog for `run` (default 30000, 0 = off)
//   --trace FILE     write a Chrome trace-event JSON (any command)
//   --metrics FILE   write a metrics snapshot JSON (any command)
//   --json           machine-readable output for profile/explain
//   --repeats N      threaded-runtime repetitions for explain (default 3)
//   --ledger FILE    accumulate explain rows in FILE across runs
//
// exit codes (see docs/robustness.md): 0 ok, 2 check/verify failure,
// 64 usage, 65 parse, 66 cannot open input, 69 unsatisfiable, 70 internal,
// 74 io, 75 stall, 76 worker death, 77 fault plan, 78 config, 79 overloaded.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "codegen/spmd.hpp"
#include "core/error.hpp"
#include "core/json_export.hpp"
#include "core/pipeline.hpp"
#include "core/io_util.hpp"
#include "exec/interpreter.hpp"
#include "exec/parallel_runtime.hpp"
#include "exec/proc_runtime.hpp"
#include "fault/fault_plan.hpp"
#include "fault/remap.hpp"
#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "perf/table.hpp"
#include "serve/canonical.hpp"
#include "serve/server.hpp"
#include "sim/report.hpp"
#include "transform/wavefront.hpp"

#include <csignal>

namespace {

using namespace hypart;

const char kUsage[] =
    "usage: hypart <analyze|partition|map|simulate|run|codegen|wavefront|json|trace\n"
    "               |profile|explain>\n"
    "              <file.loop|-> [--dim N] [--pi a,b,..] [--weighted]\n"
    "       hypart serve [--socket PATH | --port N] [--threads N] [--dim N]\n"
    "              [--space dense|symbolic|verify] [--cache N] [--skeleton-cache N]\n"
    "              [--shards N] [--max-pending N] [--batch-threads N]\n"
    "              [--verify-replay] [--trace FILE] [--metrics FILE]\n"
    "              [--space dense|symbolic|verify]\n"
    "              [--accounting paper|barrier|contention]\n"
    "              [--tcalc X] [--tstart X] [--tcomm X]\n"
    "              [--faults SPEC] [--backend threads|procs] [--recv-timeout-ms N]\n"
    "              [--trace FILE] [--metrics FILE]\n"
    "              [--json] [--repeats N] [--ledger FILE]\n"
    "\n"
    "fault injection (see docs/robustness.md):\n"
    "  --faults SPEC  deterministic fault plan, comma-separated terms:\n"
    "                 node:<id>[@<step>]      fail a node (from start or at step)\n"
    "                 link:<a>-<b>[@<step>]   fail a cube edge\n"
    "                 rand:<seed>:<K>n[<M>l]  sample K nodes / M links (seeded)\n"
    "                 proc:kill:<id>[@<step>]       SIGKILL a real worker process\n"
    "                 proc:hang:<id>[@<step>]       worker stops heartbeating\n"
    "                 proc:trunc:<id>[@<step>]      worker writes a truncated frame\n"
    "                 proc:delay:<id>:<ms>[@<step>] worker delays its sends\n"
    "                 proc:rand:<seed>              seeded kill (sampled victim/step)\n"
    "                 simulate reroutes and remaps; run executes on the\n"
    "                 degraded (remapped) hypercube and re-verifies results;\n"
    "                 proc: terms need --backend procs (ignored elsewhere)\n"
    "  --backend B    threads (default) or procs: the supervised multi-process\n"
    "                 backend (fork+socketpair workers, heartbeats, recovery)\n"
    "  --recv-timeout-ms N  stall watchdog for run (default 30000, 0 = off)\n"
    "\n"
    "observability:\n"
    "  --trace FILE   Chrome trace-event JSON of the run; open in\n"
    "                 https://ui.perfetto.dev (one track per processor and\n"
    "                 per physical link, plus wall-clock pipeline stages)\n"
    "  --metrics FILE deterministic metrics snapshot (counters, histograms,\n"
    "                 busiest-link series); byte-identical across reruns\n"
    "  trace          like simulate, but prints the Chrome trace to stdout\n"
    "  profile        per-phase self-profile of the pipeline run (wall time,\n"
    "                 allocation counts, peak-RSS growth); --json for the\n"
    "                 raw array\n"
    "  explain        prediction-accuracy ledger: runs the cost model and\n"
    "                 the threaded runtime side by side and attributes the\n"
    "                 error per component (compute/comm/stall/other);\n"
    "                 --repeats N runs, --ledger FILE accumulates rows,\n"
    "                 --json emits the raw row\n"
    "\n"
    "serve (docs/serve.md):\n"
    "  long-running daemon answering partition/map/predict/explain queries\n"
    "  over newline-delimited JSON on a Unix-domain (--socket PATH) or\n"
    "  loopback TCP (--port N, 0 = ephemeral) socket.  Structurally\n"
    "  identical nests share one cached plan: --cache N documents\n"
    "  (default 256), --skeleton-cache N time functions (default 128),\n"
    "  --shards N cache lock stripes per tier (default 8, clamped),\n"
    "  --threads N workers (default 4), --dim/--space request defaults\n"
    "  (serve defaults to --space symbolic).  --max-pending N bounds the\n"
    "  accepted-but-unserved connection queue (0 = unbounded; beyond it\n"
    "  connections get one overloaded/79 error line), --batch-threads N\n"
    "  caps the planning fan-out of {\"op\":\"batch\"} requests (0 = cores),\n"
    "  --verify-replay cross-checks every replayed hit against the full\n"
    "  rewrite path.  SIGTERM/SIGINT or an {\"op\":\"shutdown\"} request\n"
    "  stop it cleanly.\n";

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "hypart: %s\n", msg);
  std::fprintf(stderr, "%s", kUsage);
  std::exit(64);
}

[[noreturn]] void help() {
  std::printf("%s", kUsage);
  std::exit(0);
}

std::string read_source(const std::string& path) {
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "hypart: cannot open '%s'\n", path.c_str());
    std::exit(66);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

IntVec parse_pi(const std::string& arg) {
  IntVec pi;
  std::stringstream ss(arg);
  std::string tok;
  while (std::getline(ss, tok, ',')) pi.push_back(std::stoll(tok));
  if (pi.empty()) usage("--pi needs a comma-separated integer vector");
  return pi;
}

struct CliOptions {
  std::string command;
  std::string file;
  PipelineConfig config;
  std::string trace_path;          ///< --trace FILE (Chrome trace JSON)
  std::string metrics_path;        ///< --metrics FILE (metrics snapshot JSON)
  std::int64_t recv_timeout_ms = 30000;  ///< --recv-timeout-ms (0 disables)
  bool json = false;               ///< --json (profile/explain raw output)
  int repeats = 3;                 ///< --repeats (explain runtime repetitions)
  std::string ledger_path;         ///< --ledger FILE (explain accumulation)
};

CliOptions parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) help();
  if (argc < 3) usage();
  CliOptions o;
  o.command = argv[1];
  o.file = argv[2];
  o.config.cube_dim = 3;
  for (int i = 3; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--dim") o.config.cube_dim = static_cast<unsigned>(std::stoul(next()));
    else if (a == "--space") {
      std::string m = next();
      if (m == "dense") o.config.space_mode = SpaceMode::Dense;
      else if (m == "symbolic") o.config.space_mode = SpaceMode::Symbolic;
      else if (m == "verify") o.config.space_mode = SpaceMode::Verify;
      else usage("unknown space mode (want dense|symbolic|verify)");
    }
    else if (a == "--pi") o.config.time_function = parse_pi(next());
    else if (a == "--weighted") o.config.mapping.weighted = true;
    else if (a == "--accounting") {
      std::string m = next();
      if (m == "paper") o.config.sim.accounting = CommAccounting::PaperMaxChannel;
      else if (m == "barrier") o.config.sim.accounting = CommAccounting::PerStepBarrier;
      else if (m == "contention") o.config.sim.accounting = CommAccounting::LinkContention;
      else usage("unknown accounting mode");
    } else if (a == "--tcalc") o.config.machine.t_calc = std::stod(next());
    else if (a == "--tstart") o.config.machine.t_start = std::stod(next());
    else if (a == "--tcomm") o.config.machine.t_comm = std::stod(next());
    else if (a == "--faults") {
      try {
        o.config.sim.faults = fault::FaultPlan::parse(next());
      } catch (const Error& e) {
        std::fprintf(stderr, "hypart: %s\n", e.what());
        std::exit(e.exit_code());
      }
    } else if (a == "--backend") {
      std::string b = next();
      if (b == "threads") o.config.backend = ExecBackend::Threads;
      else if (b == "procs") o.config.backend = ExecBackend::Procs;
      else usage("unknown backend (want threads|procs)");
    } else if (a == "--recv-timeout-ms") o.recv_timeout_ms = std::stoll(next());
    else if (a == "--trace") o.trace_path = next();
    else if (a == "--metrics") o.metrics_path = next();
    else if (a == "--json") o.json = true;
    else if (a == "--repeats") {
      o.repeats = static_cast<int>(std::stol(next()));
      if (o.repeats < 1) usage("--repeats must be >= 1");
    }
    else if (a == "--ledger") o.ledger_path = next();
    else usage(("unknown option " + a).c_str());
  }
  return o;
}

int cmd_analyze(const LoopNest& nest, const PipelineResult& r) {
  std::printf("%s", nest.to_string().c_str());
  std::printf("\ndependences:\n");
  for (const Dependence& d : r.dependence.dependences)
    std::printf("  %s\n", d.to_string().c_str());
  for (const std::string& w : r.dependence.warnings)
    std::printf("  warning: %s\n", w.c_str());
  std::printf("iterations: %llu, Pi = %s, schedule steps: %lld\n",
              static_cast<unsigned long long>(r.iteration_count()),
              r.time_function.to_string().c_str(), static_cast<long long>(r.sim.steps));
  return 0;
}

int cmd_partition(const PipelineResult& r) {
  if (r.lattice) {
    // Pure lattice path: no per-block vectors exist; print the closed-form
    // summary and the per-slab group boxes instead of the block table.
    const GroupLattice& gl = *r.lattice;
    std::printf("projected points: %llu, r = %lld, beta = %zu, blocks: %llu (lattice)\n",
                static_cast<unsigned long long>(gl.line_count()),
                static_cast<long long>(gl.group_size_r()), gl.beta(),
                static_cast<unsigned long long>(gl.group_count()));
    std::printf("interblock arcs: %zu / %zu (%.1f%%)\n", r.stats.interblock_arcs,
                r.stats.total_arcs, 100.0 * r.stats.interblock_fraction());
    std::printf("cover=%s theorem1=%s %s lemma2=%s lemma3=%s\n", r.exact_cover ? "ok" : "FAIL",
                r.theorem1 ? "ok" : "FAIL", r.theorem2.to_string().c_str(),
                r.lemmas.lemma2_holds ? "ok" : "FAIL", r.lemmas.lemma3_holds ? "ok" : "FAIL");
    if (r.lattice_stats)
      std::printf("block sizes: min %lld, max %lld, total %llu\n",
                  static_cast<long long>(r.lattice_stats->min_block),
                  static_cast<long long>(r.lattice_stats->max_block),
                  static_cast<unsigned long long>(r.lattice_stats->total_iterations));
    // Chain boxes pair the slab's group range with its line interval; plane
    // boxes pair each aux chain (fixed b) with its group range along a.
    const bool plane = gl.layout() == LatticeLayout::Plane;
    TextTable t({"box", "groups", plane ? "aux chain b" : "lines"});
    std::vector<GroupLattice::GroupBox> boxes = gl.enumerate_boxes();
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      const GroupLattice::GroupBox& b = boxes[i];
      std::string second = plane ? std::to_string(b.c_lo)
                                 : "[" + std::to_string(b.c_lo) + ", " +
                                       std::to_string(b.c_hi) + "]";
      t.row(i, "[" + std::to_string(b.a_lo) + ", " + std::to_string(b.a_hi) + "]", second);
    }
    std::printf("%s", t.to_string().c_str());
    return r.exact_cover && r.theorem1 && r.theorem2.holds ? 0 : 2;
  }
  std::printf("projected points: %zu, r = %lld, beta = %zu, blocks: %zu\n",
              r.projected->point_count(), static_cast<long long>(r.grouping.group_size_r()),
              r.grouping.beta(), r.block_sizes.size());
  std::printf("interblock arcs: %zu / %zu (%.1f%%)\n", r.stats.interblock_arcs,
              r.stats.total_arcs, 100.0 * r.stats.interblock_fraction());
  std::printf("cover=%s theorem1=%s %s lemma2=%s lemma3=%s\n", r.exact_cover ? "ok" : "FAIL",
              r.theorem1 ? "ok" : "FAIL", r.theorem2.to_string().c_str(),
              r.lemmas.lemma2_holds ? "ok" : "FAIL", r.lemmas.lemma3_holds ? "ok" : "FAIL");
  TextTable t({"block", "iterations", "group lattice"});
  for (std::size_t b = 0; b < r.block_sizes.size(); ++b)
    t.row(b, static_cast<std::uint64_t>(r.block_sizes[b]),
          to_string(r.grouping.groups()[b].lattice));
  std::printf("%s", t.to_string().c_str());
  return r.exact_cover && r.theorem1 && r.theorem2.holds ? 0 : 2;
}

int cmd_map(const PipelineResult& r, unsigned dim) {
  Hypercube cube(dim);
  if (r.lattice && r.lattice_mapping) {
    // Lattice path: block_to_proc is never materialized; print the cluster
    // boundaries (contiguous sorted-index intervals) per processor instead.
    const LatticeHypercubeMapping& lm = *r.lattice_mapping;
    std::printf("blocks: %llu -> %s, method=%s, directions=%zu\n",
                static_cast<unsigned long long>(r.lattice->group_count()), cube.name().c_str(),
                lm.method.c_str(), lm.directions_used);
    if (!lm.frag_b.empty()) {
      // Plane layout: clusters are unions of per-aux-chain (a-run, proc)
      // fragments; print the CSR runs, one row per fragment.
      TextTable t({"aux chain b", "a from", "processor"});
      for (std::size_t i = 0; i < lm.frag_b.size(); ++i)
        for (std::size_t k = lm.frag_off[i]; k < lm.frag_off[i + 1]; ++k)
          t.row(lm.frag_b[i], lm.frag_runs[k].first,
                static_cast<std::uint64_t>(lm.frag_runs[k].second));
      std::printf("%s", t.to_string().c_str());
      return 0;
    }
    TextTable t({"cluster", "processor", "sorted groups"});
    for (std::uint64_t rank = 0; rank < lm.cluster_processor.size(); ++rank) {
      auto [first, last] = lm.cluster_range(rank);
      std::string range = first == last
                              ? std::string("(empty)")
                              : "[" + std::to_string(first) + ", " + std::to_string(last - 1) + "]";
      t.row(rank, static_cast<std::uint64_t>(lm.cluster_processor[rank]), range);
    }
    std::printf("%s", t.to_string().c_str());
    return 0;
  }
  MappingMetrics m = evaluate_mapping(r.tig, r.mapping.mapping, cube);
  std::printf("blocks: %zu -> %s, %s\n", r.block_sizes.size(), cube.name().c_str(),
              m.to_string().c_str());
  TextTable t({"block", "processor"});
  for (std::size_t b = 0; b < r.mapping.mapping.block_to_proc.size(); ++b)
    t.row(b, static_cast<std::uint64_t>(r.mapping.mapping.block_to_proc[b]));
  std::printf("%s", t.to_string().c_str());
  return 0;
}

int cmd_simulate(const PipelineResult& r) {
  std::printf("T_exec = %s  (= %.3f time units)\n", r.sim.total.to_string().c_str(), r.sim.time);
  std::printf("steps: %lld, messages: %lld, words: %lld\n",
              static_cast<long long>(r.sim.steps), static_cast<long long>(r.sim.messages),
              static_cast<long long>(r.sim.words));
  if (r.sim.failed_nodes > 0 || r.sim.failed_links > 0) {
    std::printf("faults: failed_nodes=%lld failed_links=%lld rerouted_messages=%lld "
                "migrated_blocks=%lld migration_cost=%s\n",
                static_cast<long long>(r.sim.failed_nodes),
                static_cast<long long>(r.sim.failed_links),
                static_cast<long long>(r.sim.rerouted_messages),
                static_cast<long long>(r.sim.migrated_blocks),
                r.sim.migration_cost.to_string().c_str());
  }
  if (r.structure != nullptr) {
    // The Gantt chart needs the materialized schedule; symbolic runs print
    // the totals above and skip it.
    UtilizationReport util = processor_utilization(*r.structure, r.time_function, r.partition,
                                                   r.mapping.mapping);
    std::printf("%smean utilization %.0f%%\n", util.gantt.c_str(), util.mean_utilization * 100.0);
  }
  return 0;
}

int cmd_profile(const obs::Profiler& prof, bool json) {
  if (json) {
    std::printf("%s\n", prof.to_json().c_str());
    return 0;
  }
  std::map<std::string, obs::PhaseStats> phases = prof.phases();
  if (phases.empty()) {
    std::printf("no spans recorded\n");
    return 0;
  }
  // The whole-run span is the denominator for the %% column; stages nest
  // inside it, so shares do not sum to 100 (sub-spans double-count).
  double total_us = prof.wall_us("run_pipeline");
  if (total_us <= 0.0)
    for (const auto& [name, s] : phases) total_us = std::max(total_us, s.wall_us);
  auto ms = [](double us) {
    std::ostringstream os;
    os.precision(3);
    os << std::fixed << us / 1000.0;
    return os.str();
  };
  std::vector<std::pair<std::string, obs::PhaseStats>> order(phases.begin(), phases.end());
  std::stable_sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
    return a.second.wall_us > b.second.wall_us;
  });
  TextTable t({"phase", "cat", "calls", "wall ms", "%", "max ms", "allocs", "rss +KiB"});
  for (const auto& [name, s] : order) {
    std::ostringstream pct;
    pct.precision(1);
    pct << std::fixed << (total_us > 0.0 ? 100.0 * s.wall_us / total_us : 0.0);
    t.row(name, s.cat, s.calls, ms(s.wall_us), pct.str(), ms(s.max_us), s.allocs,
          s.rss_peak_delta_kb);
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("pipeline wall time: %s ms\n", ms(total_us).c_str());
  return 0;
}

int cmd_explain(const LoopNest& nest, const CliOptions& o) {
  obs::LedgerOptions lopts;
  lopts.repeats = o.repeats;
  lopts.backend = o.config.backend;
  lopts.obs = o.config.obs;
  obs::LedgerRow row = obs::run_ledger(nest, o.config, lopts);

  obs::AccuracyLedger ledger;
  if (!o.ledger_path.empty()) {
    if (std::ifstream(o.ledger_path).good()) {
      std::string err;
      if (!ledger.load(o.ledger_path, err)) {
        std::fprintf(stderr, "hypart: %s\n", err.c_str());
        return 65;
      }
    }
  }
  ledger.append(row);
  if (!o.ledger_path.empty()) {
    std::string err;
    if (!ledger.save(o.ledger_path, err)) {
      std::fprintf(stderr, "hypart: %s\n", err.c_str());
      return 74;
    }
  }

  if (o.json) {
    std::printf("%s\n", row.to_json().c_str());
    return 0;
  }
  std::printf("%s", ledger.table().c_str());
  std::printf("calibration: %.4f us per model unit; wall: median %.1f us, min %.1f us "
              "over %d repeats; mean |dshare| %.1f%%\n",
              row.calibration_us_per_unit, row.measured.total, row.measured_min_us,
              row.repeats, 100.0 * row.mean_abs_share_error());
  return 0;
}

int cmd_run(const LoopNest& nest, const PipelineResult& r, const CliOptions& o) {
  // With --faults, execute on the degraded hypercube: remap blocks off the
  // failed nodes first, then run and re-verify against the sequential result.
  Mapping mapping = r.mapping.mapping;
  if (!o.config.sim.faults.machine_empty()) {
    Hypercube cube(o.config.cube_dim);
    fault::FaultSet fset = o.config.sim.faults.resolve(cube);
    fault::RemapResult remap = fault::remap_for_faults(r.partition, mapping, cube, fset);
    mapping = remap.mapping;
    std::printf("faults: failed_nodes=%lld migrated_blocks=%zu migration_words=%lld\n",
                static_cast<long long>(fset.failed_node_count()), remap.migrations.size(),
                static_cast<long long>(remap.migration_words));
  }
  ArrayStore seq = run_sequential(nest);
  DistributedResult dist = run_distributed(nest, *r.structure, r.time_function, r.partition,
                                           mapping, r.dependence);
  EquivalenceReport e1 = compare_stores(seq, dist.written);
  std::printf("written elements: %zu\n", e1.compared);
  std::printf("distributed interpreter == sequential: %s%s\n", e1.equal ? "YES" : "NO — ",
              e1.equal ? "" : e1.first_mismatch.c_str());
  bool e2_equal = false;
  if (o.config.backend == ExecBackend::Procs) {
    ProcRunOptions popts;
    popts.obs = o.config.obs;
    popts.run_timeout_ms = o.recv_timeout_ms;
    popts.proc_faults = o.config.sim.faults.proc_faults;
    ProcRunResult pr = run_procs(nest, *r.structure, r.time_function, r.partition, mapping,
                                 r.dependence, popts);
    EquivalenceReport e2 = compare_stores(seq, pr.written);
    e2_equal = e2.equal;
    std::printf("process runtime == sequential: %s%s  (%zu workers, %lld messages, "
                "%lld hops, %d recoveries, %zu blocks reassigned%s)\n",
                e2.equal ? "YES" : "NO — ", e2.equal ? "" : e2.first_mismatch.c_str(),
                pr.stats.workers, static_cast<long long>(pr.stats.messages_sent),
                static_cast<long long>(pr.stats.route_hops), pr.stats.recoveries,
                pr.stats.migrated_blocks, pr.stats.degraded ? ", DEGRADED to threads" : "");
  } else {
    ParallelRunOptions popts;
    popts.obs = o.config.obs;
    popts.recv_timeout_ms = o.recv_timeout_ms;
    ParallelRunResult par = run_parallel(nest, *r.structure, r.time_function, r.partition,
                                         mapping, r.dependence, popts);
    EquivalenceReport e2 = compare_stores(seq, par.written);
    e2_equal = e2.equal;
    std::printf("threaded runtime == sequential: %s%s  (%zu threads, %lld messages, "
                "max mailbox depth %lld)\n",
                e2.equal ? "YES" : "NO — ", e2.equal ? "" : e2.first_mismatch.c_str(),
                par.stats.threads, static_cast<long long>(par.stats.messages_sent),
                static_cast<long long>(par.stats.max_mailbox_depth));
  }
  return e1.equal && e2_equal ? 0 : 2;
}

// --- serve -----------------------------------------------------------------

serve::Server* g_server = nullptr;  ///< for the signal handler only

extern "C" void serve_signal_handler(int) {
  // request_stop() is async-signal-safe (atomic store + self-pipe write).
  if (g_server != nullptr) g_server->request_stop();
}

int cmd_serve(int argc, char** argv) {
  serve::ServerOptions sopts;
  serve::ServiceOptions vopts;
  std::string trace_path;
  std::string metrics_path;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--socket") sopts.unix_path = next();
    else if (a == "--port") sopts.tcp_port = static_cast<int>(std::stol(next()));
    else if (a == "--threads") sopts.threads = std::stoul(next());
    else if (a == "--dim") vopts.default_cube_dim = static_cast<unsigned>(std::stoul(next()));
    else if (a == "--space") {
      std::string m = next();
      if (m == "dense") vopts.default_space = SpaceMode::Dense;
      else if (m == "symbolic") vopts.default_space = SpaceMode::Symbolic;
      else if (m == "verify") vopts.default_space = SpaceMode::Verify;
      else usage("unknown space mode (want dense|symbolic|verify)");
    }
    else if (a == "--cache") vopts.doc_cache_capacity = std::stoul(next());
    else if (a == "--skeleton-cache") vopts.skeleton_cache_capacity = std::stoul(next());
    else if (a == "--shards") vopts.cache_shards = std::stoul(next());
    else if (a == "--batch-threads") vopts.batch_parallelism = std::stoul(next());
    else if (a == "--verify-replay") vopts.verify_replay = true;
    else if (a == "--max-pending") sopts.max_pending = std::stoul(next());
    else if (a == "--trace") trace_path = next();
    else if (a == "--metrics") metrics_path = next();
    else usage(("unknown serve option " + a).c_str());
  }
  if (!sopts.unix_path.empty() && sopts.tcp_port != 0)
    usage("--socket and --port are mutually exclusive");

  obs::ChromeTraceSink trace_sink;
  obs::MetricsRegistry metrics;
  if (!trace_path.empty()) vopts.obs.trace = &trace_sink;
  vopts.obs.metrics = &metrics;

  serve::PlanService service(vopts);
  try {
    serve::Server server(service, sopts);
    g_server = &server;
    std::signal(SIGTERM, serve_signal_handler);
    std::signal(SIGINT, serve_signal_handler);
    server.start();
    // The smoke test and the load generator wait for this line (and for the
    // socket file); keep it first and flushed.
    std::printf("hypart serve: listening on %s\n", server.address().c_str());
    std::fflush(stdout);
    server.wait();
    g_server = nullptr;
  } catch (const Error& e) {
    std::fprintf(stderr, "hypart: %s\n", e.what());
    return e.exit_code();
  }

  obs::MetricsSnapshot snap = metrics.snapshot();
  serve::PlanCacheStats cs = service.cache_stats();
  std::printf("hypart serve: %lld requests, %lld errors; cache: %lld hit, %lld pi, %lld miss, "
              "%lld evictions\n",
              static_cast<long long>(snap.counters.count("serve.requests")
                                         ? snap.counters.at("serve.requests")
                                         : 0),
              static_cast<long long>(snap.counters.count("serve.errors")
                                         ? snap.counters.at("serve.errors")
                                         : 0),
              static_cast<long long>(cs.doc_hits), static_cast<long long>(cs.pi_hits),
              static_cast<long long>(cs.doc_misses - cs.pi_hits),
              static_cast<long long>(cs.doc_evictions + cs.pi_evictions));
  if (!trace_path.empty() && !trace_sink.write_file(trace_path)) {
    std::fprintf(stderr, "hypart: cannot write trace to '%s'\n", trace_path.c_str());
    return 74;
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "hypart: cannot write metrics to '%s'\n", metrics_path.c_str());
      return 74;
    }
    out << snap.to_json() << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A worker process dying mid-send must surface as EPIPE, not kill the CLI.
  ignore_sigpipe();
  // `serve` takes no <file> operand, so it dispatches before parse_args.
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    for (int i = 2; i < argc; ++i)
      if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) help();
    return cmd_serve(argc, argv);
  }
  CliOptions o = parse_args(argc, argv);

  // Observability wiring: the CLI owns the sink/registry; the pipeline and
  // runtime only borrow pointers.  The `trace` command implies a sink even
  // without --trace (it prints the trace to stdout); `profile` installs the
  // Profiler, tee-ing it with the trace sink when both are wanted.
  obs::ChromeTraceSink trace_sink;
  obs::Profiler profiler;
  obs::TeeSink tee({&trace_sink, &profiler});
  obs::MetricsRegistry metrics;
  const bool want_trace = !o.trace_path.empty() || o.command == "trace";
  const bool want_profile = o.command == "profile";
  const bool want_metrics = !o.metrics_path.empty();
  if (want_trace && want_profile) o.config.obs.trace = &tee;
  else if (want_trace) o.config.obs.trace = &trace_sink;
  else if (want_profile) o.config.obs.trace = &profiler;
  if (want_metrics) o.config.obs.metrics = &metrics;

  // Write the --trace / --metrics artifacts; shared by every command path.
  auto write_obs_outputs = [&]() -> int {
    if (!o.trace_path.empty() && !trace_sink.write_file(o.trace_path)) {
      std::fprintf(stderr, "hypart: cannot write trace to '%s'\n", o.trace_path.c_str());
      return 74;
    }
    if (want_metrics) {
      obs::MetricsSnapshot snap = metrics.snapshot();
      std::ofstream out(o.metrics_path);
      if (!out) {
        std::fprintf(stderr, "hypart: cannot write metrics to '%s'\n", o.metrics_path.c_str());
        return 74;
      }
      out << snap.to_json() << "\n";
      if (o.command == "simulate" || o.command == "run")
        std::printf("%s", snap.summary().c_str());
    }
    return 0;
  };

  LoopNest nest = [&] {
    try {
      return parse_loop_nest(read_source(o.file));
    } catch (const ParseError& e) {
      std::fprintf(stderr, "hypart: %s\n", e.what());
      std::exit(65);
    }
  }();

  // explain drives its own pipeline + runtime runs (repeated, measured), so
  // it branches off before the generic single pipeline run below.
  if (o.command == "explain") {
    if (o.config.space_mode != SpaceMode::Dense) {
      std::fprintf(stderr, "hypart: explain requires --space dense (the threaded runtime "
                           "interprets the materialized index set)\n");
      return 78;
    }
    int rc = 0;
    try {
      rc = cmd_explain(nest, o);
    } catch (const Error& e) {
      std::fprintf(stderr, "hypart: %s\n", e.what());
      return e.exit_code();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hypart: %s\n", e.what());
      return 70;
    }
    int obs_rc = write_obs_outputs();
    return rc != 0 ? rc : obs_rc;
  }

  PipelineResult r = [&] {
    try {
      return run_pipeline(nest, o.config);
    } catch (const Error& e) {
      std::fprintf(stderr, "hypart: %s\n", e.what());
      std::exit(e.exit_code());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hypart: %s\n", e.what());
      std::exit(70);
    }
  }();

  // run / codegen / wavefront execute or print the materialized iteration
  // set.  Symbolic planning keeps its closed forms (and its metrics, already
  // recorded above), but execution is inherently dense, so these commands
  // rebuild the dense structures they need instead of refusing the mode —
  // the verify machinery guarantees both pipelines agree.
  if (r.structure == nullptr &&
      (o.command == "run" || o.command == "codegen" || o.command == "wavefront")) {
    PipelineConfig dense_cfg = o.config;
    dense_cfg.space_mode = SpaceMode::Dense;
    dense_cfg.obs = {};
    try {
      r = run_pipeline(nest, dense_cfg);
    } catch (const Error& e) {
      std::fprintf(stderr, "hypart: %s\n", e.what());
      return e.exit_code();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "hypart: %s\n", e.what());
      return 70;
    }
  }

  int rc = 0;
  if (o.command == "analyze") rc = cmd_analyze(nest, r);
  else if (o.command == "partition") rc = cmd_partition(r);
  else if (o.command == "map") rc = cmd_map(r, o.config.cube_dim);
  else if (o.command == "simulate") rc = cmd_simulate(r);
  else if (o.command == "run") {
    try {
      rc = cmd_run(nest, r, o);
    } catch (const Error& e) {
      // StallError / WorkerDeathError / FaultError carry their own exit codes
      // (75 / 76 / 77); diagnostics ride along in what().
      std::fprintf(stderr, "hypart: %s\n", e.what());
      return e.exit_code();
    }
  } else if (o.command == "codegen") {
    std::printf("%s", generate_spmd_program(nest, *r.structure, r.time_function, r.partition,
                                            r.mapping.mapping, r.dependence)
                          .c_str());
  } else if (o.command == "wavefront") {
    WavefrontTransform wt = make_wavefront_transform(r.time_function);
    std::printf("%s", wavefront_loop_to_string(wt, *r.structure, nest.index_names()).c_str());
  } else if (o.command == "json") {
    // The pipeline document plus the daemon's canonical cache keys, so
    // offline tooling can compute a nest's identity (and pre-warm or probe
    // a `hypart serve` instance) without speaking the wire protocol.  The
    // daemon's document tier additionally folds the resolved request
    // params into its key; exact_key here is the nest-identity half.
    JsonValue doc = parse_json(pipeline_result_to_json(nest, r));
    serve::CanonicalForm cf = serve::canonicalize_nest(nest, r.dependence);
    JsonValue canonical;
    canonical.set("exact", JsonValue::make_string(cf.exact_hex()));
    canonical.set("exact_key", JsonValue::make_string(cf.exact_key));
    canonical.set("structure", JsonValue::make_string(cf.structure_hex()));
    canonical.set("structure_key", JsonValue::make_string(cf.structure_key));
    doc.set("canonical", std::move(canonical));
    std::printf("%s\n", doc.to_json().c_str());
  } else if (o.command == "trace") {
    if (o.trace_path.empty()) std::printf("%s", trace_sink.str().c_str());
  } else if (o.command == "profile") {
    rc = cmd_profile(profiler, o.json);
  } else {
    usage(("unknown command " + o.command).c_str());
  }

  int obs_rc = write_obs_outputs();
  return rc != 0 ? rc : obs_rc;
}
