#include "topology/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "mapping/gray.hpp"

namespace hypart {
namespace {

TEST(HypercubeTopo, Basics) {
  Hypercube cube(3);
  EXPECT_EQ(cube.size(), 8u);
  EXPECT_EQ(cube.dimension(), 3u);
  EXPECT_EQ(cube.distance(0b000, 0b111), 3u);
  EXPECT_EQ(cube.distance(0b101, 0b101), 0u);
  EXPECT_EQ(cube.distance(0b001, 0b011), 1u);
  EXPECT_EQ(cube.diameter(), 3u);
  EXPECT_NE(cube.name().find("hypercube"), std::string::npos);
}

TEST(HypercubeTopo, Neighbors) {
  Hypercube cube(3);
  std::vector<ProcId> n = cube.neighbors(0b000);
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<ProcId>{1, 2, 4}));
  for (ProcId p : cube.neighbors(0b101)) EXPECT_EQ(cube.distance(0b101, p), 1u);
  EXPECT_TRUE(cube.are_neighbors(0, 4));
  EXPECT_FALSE(cube.are_neighbors(0, 3));
}

TEST(HypercubeTopo, EcubeRoute) {
  Hypercube cube(4);
  std::vector<ProcId> path = cube.ecube_route(0b0000, 0b1011);
  // e-cube fixes bits lowest-first: 0000 -> 0001 -> 0011 -> 1011.
  EXPECT_EQ(path, (std::vector<ProcId>{0b0001, 0b0011, 0b1011}));
  EXPECT_EQ(path.size(), cube.distance(0b0000, 0b1011));
  EXPECT_TRUE(cube.ecube_route(5, 5).empty());
  // Every hop is a single-bit change.
  ProcId prev = 0b0000;
  for (ProcId hop : path) {
    EXPECT_EQ(popcount64(prev ^ hop), 1u);
    prev = hop;
  }
}

TEST(HypercubeTopo, OutOfRange) {
  Hypercube cube(2);
  EXPECT_THROW(static_cast<void>(cube.distance(0, 4)), std::out_of_range);
  EXPECT_THROW(cube.neighbors(4), std::out_of_range);
  EXPECT_THROW(Hypercube(64), std::invalid_argument);
}

TEST(MeshTopo, Distances) {
  Mesh2D mesh(4, 3);
  EXPECT_EQ(mesh.size(), 12u);
  EXPECT_EQ(mesh.distance(0, 3), 3u);   // same row
  EXPECT_EQ(mesh.distance(0, 8), 2u);   // two rows down
  EXPECT_EQ(mesh.distance(0, 11), 5u);  // opposite corner
  EXPECT_EQ(mesh.diameter(), 5u);
}

TEST(MeshTopo, Neighbors) {
  Mesh2D mesh(3, 3);
  std::vector<ProcId> corner = mesh.neighbors(0);
  std::sort(corner.begin(), corner.end());
  EXPECT_EQ(corner, (std::vector<ProcId>{1, 3}));
  std::vector<ProcId> center = mesh.neighbors(4);
  EXPECT_EQ(center.size(), 4u);
  EXPECT_THROW(Mesh2D(0, 3), std::invalid_argument);
}

TEST(RingTopo, Distances) {
  Ring ring(6);
  EXPECT_EQ(ring.distance(0, 3), 3u);
  EXPECT_EQ(ring.distance(0, 5), 1u);  // wraps
  EXPECT_EQ(ring.distance(2, 2), 0u);
  EXPECT_EQ(ring.diameter(), 3u);
}

TEST(RingTopo, Neighbors) {
  Ring ring(5);
  std::vector<ProcId> n = ring.neighbors(0);
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<ProcId>{1, 4}));
  EXPECT_EQ(Ring(1).neighbors(0).size(), 0u);
  EXPECT_EQ(Ring(2).neighbors(0), (std::vector<ProcId>{1}));
  EXPECT_THROW(Ring(0), std::invalid_argument);
}

TEST(FullyConnectedTopo, Distances) {
  FullyConnected fc(5);
  EXPECT_EQ(fc.distance(0, 4), 1u);
  EXPECT_EQ(fc.distance(2, 2), 0u);
  EXPECT_EQ(fc.neighbors(0).size(), 4u);
  EXPECT_EQ(fc.diameter(), 1u);
}

TEST(Topo, AverageDistanceOrdering) {
  // For 8 processors: fully-connected < hypercube < mesh(4x2)-ish < ring.
  FullyConnected fc(8);
  Hypercube cube(3);
  Ring ring(8);
  EXPECT_LT(fc.average_distance(), cube.average_distance());
  EXPECT_LT(cube.average_distance(), ring.average_distance());
}

TEST(Topo, HypercubeAverageDistanceClosedForm) {
  // Mean Hamming distance over an n-cube is n/2 * N/(N-1).
  for (unsigned n : {1u, 2u, 3u, 4u}) {
    Hypercube cube(n);
    double nn = static_cast<double>(cube.size());
    EXPECT_NEAR(cube.average_distance(), (n / 2.0) * nn / (nn - 1.0), 1e-12);
  }
}

TEST(Topo, SingleProcessorDegenerate) {
  FullyConnected fc(1);
  EXPECT_EQ(fc.average_distance(), 0.0);
  EXPECT_EQ(fc.diameter(), 0u);
}

}  // namespace
}  // namespace hypart
