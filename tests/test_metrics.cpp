// hypart::obs metrics tests: histogram bucket assignment, counter
// determinism across identical simulator runs, snapshot JSON shape, and the
// invariant that instrumentation leaves simulation results unchanged.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hypart;
using namespace hypart::obs;

TEST(HistogramTest, BucketAssignmentAndStats) {
  HistogramData h;
  h.upper_bounds = {1, 2, 4};
  h.counts.assign(4, 0);
  for (std::int64_t v : {1, 2, 3, 4, 5, 100}) h.observe(v);
  // v <= 1 -> bucket 0; v <= 2 -> bucket 1; v <= 4 -> bucket 2; else overflow.
  EXPECT_EQ(h.counts[0], 1);  // {1}
  EXPECT_EQ(h.counts[1], 1);  // {2}
  EXPECT_EQ(h.counts[2], 2);  // {3, 4}
  EXPECT_EQ(h.counts[3], 2);  // {5, 100}
  EXPECT_EQ(h.count, 6);
  EXPECT_EQ(h.sum, 115);
  EXPECT_EQ(h.min, 1);
  EXPECT_EQ(h.max, 100);
  EXPECT_NEAR(h.mean(), 115.0 / 6.0, 1e-12);
}

TEST(RegistryTest, CountersGaugesSeries) {
  MetricsRegistry reg;
  reg.add("a.x");
  reg.add("a.x", 4);
  reg.add("a.y", 2);
  reg.set_gauge("g", 1.5);
  reg.set_gauge("g", 2.5);  // last write wins
  reg.append("s", 0, 1.0);
  reg.append("s", 1, 2.0);
  MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a.x"), 5);
  EXPECT_EQ(snap.counters.at("a.y"), 2);
  EXPECT_EQ(snap.counter_sum("a."), 7);
  EXPECT_DOUBLE_EQ(snap.gauges.at("g"), 2.5);
  ASSERT_EQ(snap.series.at("s").size(), 2u);
  EXPECT_EQ(snap.series.at("s")[1].x, 1);
  EXPECT_FALSE(snap.empty());
  EXPECT_TRUE(MetricsSnapshot{}.empty());
}

TEST(RegistryTest, SnapshotJsonHasAllSections) {
  MetricsRegistry reg;
  reg.add("c", 3);
  reg.set_gauge("g", 0.5);
  reg.observe("h", 7, {1, 10});
  reg.append("s", 2, 4.0);
  std::string json = reg.snapshot().to_json();
  for (const char* key : {"\"counters\"", "\"gauges\"", "\"histograms\"", "\"series\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
  EXPECT_NE(json.find("\"c\":3"), std::string::npos);
  EXPECT_NE(json.find("\"upper_bounds\":[1,10]"), std::string::npos);
}

struct SimPieces {
  std::unique_ptr<ComputationStructure> q;
  TimeFunction tf{{1, 1}};
  std::unique_ptr<ProjectedStructure> ps;
  Grouping grouping;
  Partition partition;
  TaskInteractionGraph tig;
  Mapping mapping;
};

SimPieces make_pieces(std::int64_t m, unsigned dim) {
  SimPieces p;
  p.q = std::make_unique<ComputationStructure>(
      ComputationStructure::from_loop(workloads::matrix_vector(m)));
  p.ps = std::make_unique<ProjectedStructure>(*p.q, p.tf);
  p.grouping = Grouping::compute(*p.ps);
  p.partition = Partition::build(*p.q, p.grouping);
  p.tig = TaskInteractionGraph::from_partition(*p.q, p.partition, p.grouping);
  p.mapping = map_to_hypercube(p.tig, dim).mapping;
  return p;
}

TEST(SimulatorMetricsTest, DeterministicAcrossIdenticalRuns) {
  SimPieces p = make_pieces(24, 2);
  Hypercube cube(2);
  auto run_once = [&] {
    MetricsRegistry reg;
    SimOptions opts;
    opts.accounting = CommAccounting::LinkContention;
    opts.flops_per_iteration = 2;
    opts.obs.metrics = &reg;
    SimResult r = simulate_execution(*p.q, p.tf, p.partition, p.mapping, cube,
                                     MachineParams{}, opts);
    EXPECT_TRUE(r.metrics.has_value());
    return reg.snapshot().to_json();
  };
  std::string a = run_once();
  std::string b = run_once();
  EXPECT_EQ(a, b);  // byte-identical metrics output
  EXPECT_FALSE(a.empty());
}

TEST(SimulatorMetricsTest, PerProcIterationCountersMatchSimResult) {
  SimPieces p = make_pieces(24, 2);
  Hypercube cube(2);
  MetricsRegistry reg;
  SimOptions opts;
  opts.flops_per_iteration = 2;
  opts.obs.metrics = &reg;
  SimResult r = simulate_execution(*p.q, p.tf, p.partition, p.mapping, cube, MachineParams{},
                                   opts);
  ASSERT_TRUE(r.metrics.has_value());
  std::int64_t total_from_result =
      std::accumulate(r.per_proc_iterations.begin(), r.per_proc_iterations.end(),
                      std::int64_t{0});
  std::int64_t busy_sum = 0;
  for (std::size_t proc = 0; proc < r.per_proc_iterations.size(); ++proc) {
    std::int64_t c =
        r.metrics->counters.at("sim.proc." + std::to_string(proc) + ".iterations");
    EXPECT_EQ(c, r.per_proc_iterations[proc]) << "proc " << proc;
    busy_sum += c;
  }
  EXPECT_EQ(busy_sum, total_from_result);
  EXPECT_EQ(r.metrics->counters.at("sim.messages"), r.messages);
  EXPECT_EQ(r.metrics->counters.at("sim.words"), r.words);
}

TEST(SimulatorMetricsTest, DisabledObsLeavesResultUnchanged) {
  SimPieces p = make_pieces(24, 2);
  Hypercube cube(2);
  SimOptions plain;
  plain.flops_per_iteration = 2;
  SimResult r0 = simulate_execution(*p.q, p.tf, p.partition, p.mapping, cube, MachineParams{},
                                    plain);
  MetricsRegistry reg;
  SimOptions instrumented = plain;
  instrumented.obs.metrics = &reg;
  SimResult r1 = simulate_execution(*p.q, p.tf, p.partition, p.mapping, cube, MachineParams{},
                                    instrumented);
  EXPECT_EQ(r0.total, r1.total);
  EXPECT_EQ(r0.time, r1.time);
  EXPECT_EQ(r0.messages, r1.messages);
  EXPECT_EQ(r0.words, r1.words);
  EXPECT_EQ(r0.per_proc_iterations, r1.per_proc_iterations);
  EXPECT_FALSE(r0.metrics.has_value());
  EXPECT_TRUE(r1.metrics.has_value());
}

TEST(PipelineMetricsTest, SnapshotAttachedAndConsistent) {
  MetricsRegistry reg;
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1};
  cfg.cube_dim = 2;
  cfg.obs.metrics = &reg;
  PipelineResult r = run_pipeline(workloads::matrix_vector(16), cfg);
  ASSERT_TRUE(r.metrics.has_value());
  EXPECT_EQ(r.metrics->counters.at("pipeline.iterations"),
            static_cast<std::int64_t>(r.structure->vertices().size()));
  EXPECT_EQ(r.metrics->counters.at("pipeline.blocks"),
            static_cast<std::int64_t>(r.partition.block_count()));
  EXPECT_EQ(r.metrics->counters.at("map.clusters"),
            static_cast<std::int64_t>(r.mapping.clusters.size()));
  // The sim section is present too (same registry threaded through).
  EXPECT_GT(r.metrics->counter_sum("sim.proc."), 0);
}

TEST(HistogramTest, PercentileEdgeCases) {
  HistogramData empty;
  EXPECT_EQ(empty.percentile(0.5), 0);  // no samples -> 0 by contract

  HistogramData one;
  one.upper_bounds = {10, 100};
  one.counts.assign(3, 0);
  one.observe(7);
  // Every quantile of a single sample is that sample's bucket value,
  // clamped to the observed range (min == max == 7).
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) EXPECT_EQ(one.percentile(q), 7) << q;

  HistogramData h;
  h.upper_bounds = {1, 2, 4, 8};
  h.counts.assign(5, 0);
  for (std::int64_t v : {1, 2, 2, 3, 4, 5, 8, 100}) h.observe(v);
  EXPECT_EQ(h.percentile(0.0), 1);    // rank clamps up to 1 -> first bucket
  EXPECT_EQ(h.percentile(0.125), 1);  // rank 1 -> bound 1
  EXPECT_EQ(h.percentile(0.5), 4);    // rank 4 -> third bucket (cum 1,3,5) -> bound 4
  EXPECT_EQ(h.percentile(1.0), 100);  // overflow bucket -> observed max
  EXPECT_EQ(h.percentile(0.99), 100);

  HistogramData equal;
  equal.upper_bounds = {5};
  equal.counts.assign(2, 0);
  for (int i = 0; i < 10; ++i) equal.observe(5);
  for (double q : {0.1, 0.5, 0.9, 1.0}) EXPECT_EQ(equal.percentile(q), 5) << q;
}

TEST(HistogramTest, PercentileIsClampedToObservedRange) {
  // Bucket upper bounds can overshoot the real max; the nearest-rank value
  // must never leave [min, max].
  HistogramData h;
  h.upper_bounds = {1000};
  h.counts.assign(2, 0);
  h.observe(3);
  h.observe(4);
  // Both samples land in the <=1000 bucket; its bound clamps to max=4.
  EXPECT_EQ(h.percentile(0.5), 4);
  EXPECT_LE(h.percentile(1.0), 4);
  EXPECT_GE(h.percentile(0.0), 3);
}

TEST(RegistryTest, SnapshotJsonIdenticalAcrossThreadCounts) {
  // The same logical updates applied from 1 thread and from 8 threads must
  // render byte-identically — counters commute, series are sorted by x at
  // render time.  This is the determinism bench baselines depend on.
  auto hammer = [](int threads) {
    MetricsRegistry reg;
    const int total = 256;  // same logical op set however it is divided
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t)
      pool.emplace_back([&reg, t, threads, total] {
        for (int op = t; op < total; op += threads) {
          reg.add("c.total");
          reg.add("c.bucket." + std::to_string(op % 4));
          reg.observe("h.values", op % 16, {1, 2, 4, 8});
          reg.append("s.points", op, 1.0);  // unique x -> sortable
        }
      });
    for (auto& th : pool) th.join();
    return reg.snapshot().to_json();
  };
  std::string solo = hammer(1);
  std::string crowd = hammer(8);
  EXPECT_EQ(solo, crowd);
  EXPECT_FALSE(solo.empty());
}

TEST(RegistryTest, ClearEmptiesEverything) {
  MetricsRegistry reg;
  reg.add("c");
  reg.observe("h", 1, {1});
  reg.clear();
  EXPECT_TRUE(reg.snapshot().empty());
}

}  // namespace
