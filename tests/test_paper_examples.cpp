// End-to-end fidelity tests: every concrete number the paper states,
// checked against the library (Figs. 1, 3, 5, 6, 7, 8, Table I).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/pipeline.hpp"
#include "exec/interpreter.hpp"
#include "mapping/baseline_map.hpp"
#include "perf/perf_model.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

// ---- Section II / Fig. 1: loop L1 -----------------------------------------

TEST(PaperFig1, L1DependencesAndHyperplanes) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::example_l1());
  // D = {(0,1), (1,1), (1,0)}.
  std::set<IntVec> deps(q.dependences().begin(), q.dependences().end());
  EXPECT_EQ(deps, (std::set<IntVec>{{0, 1}, {1, 1}, {1, 0}}));
  // Hyperplanes i + j = 0..6.
  ScheduleProfile p = profile_schedule(TimeFunction{{1, 1}}, q.vertices());
  EXPECT_EQ(p.step_count, 7u);
}

// ---- Section II / Fig. 3: projection and partitioning of L1 ----------------

TEST(PaperFig3, SevenProjectedPointsSevenLines) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::example_l1());
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  EXPECT_EQ(ps.point_count(), 7u);
  // The paper's rational V^p: (-3/2,3/2), (-1,1), (-1/2,1/2), (0,0),
  // (1/2,-1/2), (1,-1), (3/2,-3/2).
  std::set<std::pair<std::string, std::string>> expected = {
      {"-3/2", "3/2"}, {"-1", "1"}, {"-1/2", "1/2"}, {"0", "0"},
      {"1/2", "-1/2"}, {"1", "-1"}, {"3/2", "-3/2"}};
  std::set<std::pair<std::string, std::string>> actual;
  for (std::size_t i = 0; i < ps.point_count(); ++i) {
    RatVec r = ps.point_rational(i);
    actual.insert({r[0].to_string(), r[1].to_string()});
  }
  EXPECT_EQ(actual, expected);
}

TEST(PaperFig3, FourGroupsAnd12Of33Interblock) {
  // "There are four groups ... the number of data dependencies between
  // index points is 33, and only 12 of them require interprocessor
  // communication."
  ComputationStructure q = ComputationStructure::from_loop(workloads::example_l1());
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  Grouping g = Grouping::compute(ps);
  EXPECT_EQ(g.group_count(), 4u);
  Partition part = Partition::build(q, g);
  PartitionStats stats = compute_partition_stats(q, part);
  EXPECT_EQ(stats.total_arcs, 33u);
  EXPECT_EQ(stats.interblock_arcs, 12u);
}

TEST(PaperFig3, ProjectedDependenceVectorsOfL1) {
  // d1^p = (-1/2,1/2), d2^p = (0,0), d3^p = (1/2,-1/2).
  ComputationStructure q = ComputationStructure::from_loop(workloads::example_l1());
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  std::multiset<std::string> actual;
  for (std::size_t k = 0; k < 3; ++k) {
    RatVec d = ps.projected_dep_rational(k);
    actual.insert(d[0].to_string() + "," + d[1].to_string());
  }
  EXPECT_EQ(actual, (std::multiset<std::string>{"-1/2,1/2", "0,0", "1/2,-1/2"}));
}

// ---- Example 2 / Figs. 4-6: matrix multiplication ---------------------------

TEST(PaperExample2, DependenceMatrixColumns) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication());
  std::set<IntVec> deps(q.dependences().begin(), q.dependences().end());
  EXPECT_EQ(deps, (std::set<IntVec>{{0, 1, 0}, {1, 0, 0}, {0, 0, 1}}));
  EXPECT_EQ(q.vertices().size(), 64u);
}

TEST(PaperFig5, ThirtySevenProjectedPointsAndDeps) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication());
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  EXPECT_EQ(ps.point_count(), 37u);
  std::set<std::string> dep_strs;
  for (std::size_t k = 0; k < 3; ++k) {
    RatVec d = ps.projected_dep_rational(k);
    dep_strs.insert(d[0].to_string() + "," + d[1].to_string() + "," + d[2].to_string());
  }
  EXPECT_EQ(dep_strs,
            (std::set<std::string>{"-1/3,2/3,-1/3", "2/3,-1/3,-1/3", "-1/3,-1/3,2/3"}));
}

TEST(PaperFig5, GroupingPhaseParameters) {
  // β = rank(mat(D^p)) = 2, r = 3.
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication());
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  EXPECT_EQ(ps.projected_rank(), 2u);
  for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(ps.replication_factor(k), 3);
}

GroupingOptions paper_matmul_options(const ProjectedStructure& ps) {
  // Grouping vector d_A^p = (-1/3,2/3,-1/3), auxiliary d_C^p = (-1/3,-1/3,2/3),
  // seed base vertex (-1,-1,2) (scaled by 3).
  GroupingOptions opts;
  std::vector<std::size_t> aux;
  const std::vector<IntVec>& pdeps = ps.projected_deps_scaled();
  for (std::size_t k = 0; k < pdeps.size(); ++k) {
    if (pdeps[k] == IntVec{-1, 2, -1}) opts.grouping_vector = k;
    if (pdeps[k] == IntVec{-1, -1, 2}) aux.push_back(k);
  }
  opts.auxiliary_vectors = aux;
  opts.seed_policy = SeedPolicy::ExplicitBases;
  opts.explicit_bases = {{-3, -3, 6}};
  return opts;
}

TEST(PaperFig6, SeventeenGroups) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication());
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  Grouping g = Grouping::compute(ps, paper_matmul_options(ps));
  EXPECT_EQ(g.group_count(), 17u);
  Partition part = Partition::build(q, g);
  EXPECT_TRUE(check_exact_cover(q, part));
  EXPECT_TRUE(check_theorem1(q, TimeFunction{{1, 1, 1}}, part));
}

TEST(PaperFig7, InteriorGroupSendsToFourGroups) {
  // "there are 2x3-2 = 4 groups that depend on the group G_10" — the
  // Theorem 2 bound 2m-β = 4 is attained by interior groups.
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication());
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  Grouping g = Grouping::compute(ps, paper_matmul_options(ps));
  Theorem2Report t2 = check_theorem2(g);
  EXPECT_EQ(t2.bound, 4u);
  EXPECT_EQ(t2.max_out_degree, 4u);
  EXPECT_TRUE(t2.holds);
}

// ---- L3 / L5: the paper's hand-rewritten single-assignment forms ------------

TEST(PaperRewrittenForms, L3MatchesNaturalMatmulDependences) {
  // The paper rewrites L2 into L3 to expose constant dependences; our
  // analyzer extracts the same D from both forms.
  ComputationStructure natural =
      ComputationStructure::from_loop(workloads::matrix_multiplication());
  ComputationStructure rewritten =
      ComputationStructure::from_loop(workloads::matrix_multiplication_rewritten());
  std::set<IntVec> dn(natural.dependences().begin(), natural.dependences().end());
  std::set<IntVec> dr(rewritten.dependences().begin(), rewritten.dependences().end());
  EXPECT_EQ(dn, dr);

  // And the partitioning phase treats both identically.
  ProjectedStructure pn(natural, TimeFunction{{1, 1, 1}});
  ProjectedStructure pr(rewritten, TimeFunction{{1, 1, 1}});
  EXPECT_EQ(pn.point_count(), pr.point_count());
  EXPECT_EQ(pn.projected_rank(), pr.projected_rank());
  EXPECT_EQ(Grouping::compute(pn).group_size_r(), Grouping::compute(pr).group_size_r());
}

TEST(PaperRewrittenForms, L5MatchesNaturalMatvecDependences) {
  ComputationStructure natural = ComputationStructure::from_loop(workloads::matrix_vector(6));
  ComputationStructure rewritten =
      ComputationStructure::from_loop(workloads::matrix_vector_rewritten(6));
  std::set<IntVec> dn(natural.dependences().begin(), natural.dependences().end());
  std::set<IntVec> dr(rewritten.dependences().begin(), rewritten.dependences().end());
  EXPECT_EQ(dn, dr);
  ProjectedStructure pn(natural, TimeFunction{{1, 1}});
  ProjectedStructure pr(rewritten, TimeFunction{{1, 1}});
  EXPECT_EQ(pn.point_count(), pr.point_count());
  Grouping gn = Grouping::compute(pn);
  Grouping gr = Grouping::compute(pr);
  EXPECT_EQ(gn.group_count(), gr.group_count());
}

TEST(PaperRewrittenForms, L5PipelinedValuesMatchMatvecSums) {
  // In L5, yp[i, M] accumulates sum_j A[i,j]*xp[i,j] where xp pipelines the
  // column value downward: xp[i,j] == xp[0-boundary init of column j].
  const std::int64_t m = 4;
  ArrayStore out = run_sequential(workloads::matrix_vector_rewritten(m));
  for (std::int64_t i = 1; i <= m; ++i) {
    double expect = default_init("yp", {i, 0});
    for (std::int64_t j = 1; j <= m; ++j)
      expect += default_init("A", {i, j}) * default_init("xp", {0, j});
    ASSERT_TRUE(out.load("yp", {i, m}).has_value());
    EXPECT_NEAR(*out.load("yp", {i, m}), expect, 1e-9);
  }
}

// ---- Example 3 / Fig. 8: mapping the 4x4 mesh TIG onto a 3-cube -------------

TEST(PaperFig8, MeshTigMapping) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(4, 4);
  HypercubeMappingResult res = map_to_hypercube(tig, 3);
  // 8 clusters of two blocks each, one per processor.
  EXPECT_EQ(res.clusters.size(), 8u);
  std::set<ProcId> procs;
  for (const Cluster& c : res.clusters) {
    EXPECT_EQ(c.vertices.size(), 2u);
    procs.insert(c.processor);
  }
  EXPECT_EQ(procs.size(), 8u);

  // Neighboring mesh blocks never land more than 2 hops apart, and all
  // cluster-internal pairs are mesh neighbors (paired along a mesh edge).
  Hypercube cube(3);
  MappingMetrics m = evaluate_mapping(tig, res.mapping, cube);
  EXPECT_LE(m.avg_hops_weighted, 2.0);
  for (const Cluster& c : res.clusters) {
    ASSERT_EQ(c.vertices.size(), 2u);
    EXPECT_EQ(tig.comm_weight(c.vertices[0], c.vertices[1]), 1);
  }
}

// ---- Section IV / Table I: matrix-vector multiplication ---------------------

TEST(PaperTableI, ClosedFormRows) {
  struct Row {
    std::int64_t n;
    Cost expected;
  };
  const Row rows[] = {
      {1, {2097152, 0, 0}},   {4, {786944, 2046, 2046}},  {16, {245888, 2046, 2046}},
      {64, {64544, 2046, 2046}}, {256, {16328, 2046, 2046}}, {1024, {4094, 2046, 2046}},
  };
  for (const Row& r : rows) EXPECT_EQ(perf::matvec_exec_time(1024, r.n), r.expected) << r.n;
}

TEST(PaperTableI, SimulatedMatchesClosedFormAtReducedScale) {
  // Full pipeline on M = 64 (same shape as Table I, laptop-sized) must equal
  // the analytic model exactly for each machine size.
  const std::int64_t m = 64;
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1};
  for (unsigned dim : {0u, 1u, 2u, 3u, 4u}) {
    cfg.cube_dim = dim;
    PipelineResult r = run_pipeline(workloads::matrix_vector(m), cfg);
    Cost expected = perf::matvec_exec_time(m, std::int64_t{1} << dim);
    EXPECT_EQ(r.sim.total, expected) << "N = " << (1 << dim);
  }
}

TEST(PaperSectionIV, MGroupsOfTwoLines) {
  // "there are M groups and every one has two projected points except the
  // one at boundary" and the largest block contains the main diagonal.
  const std::int64_t m = 16;
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_vector(m));
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  Grouping g = Grouping::compute(ps);
  EXPECT_EQ(g.group_count(), static_cast<std::size_t>(m));
  std::size_t twos = 0, ones = 0;
  for (const Group& grp : g.groups()) {
    if (grp.size() == 2) ++twos;
    if (grp.size() == 1) ++ones;
  }
  EXPECT_EQ(twos, static_cast<std::size_t>(m - 1));
  EXPECT_EQ(ones, 1u);
  Partition p = Partition::build(q, g);
  EXPECT_EQ(p.max_block_size(), static_cast<std::size_t>(2 * m - 1));
}

// ---- Symbolic IterSpace, verify mode ---------------------------------------
// space_mode = Verify runs the dense pipeline, re-derives every stage from
// the closed-form IterSpace, and throws Error(ErrorKind::Internal) on any
// disagreement — so each paper number below is checked on both backends.

TEST(SymbolicVerify, L1PaperCounts) {
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1};
  cfg.space_mode = SpaceMode::Verify;
  PipelineResult r = run_pipeline(workloads::example_l1(), cfg);
  EXPECT_EQ(r.space_mode, SpaceMode::Verify);
  ASSERT_NE(r.space, nullptr);
  EXPECT_EQ(r.iteration_count(), 16u);
  EXPECT_EQ(r.projected->point_count(), 7u);
  EXPECT_EQ(r.block_sizes.size(), 4u);
  EXPECT_EQ(r.stats.total_arcs, 33u);
  EXPECT_EQ(r.stats.interblock_arcs, 12u);
  EXPECT_TRUE(r.exact_cover);
  EXPECT_TRUE(r.theorem1);
}

TEST(SymbolicVerify, MatmulPaperGrouping) {
  // The Fig. 6 grouping (17 groups, β = 2, r = 3) under the paper's pinned
  // grouping vector and seed, cross-checked dense vs symbolic.
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication());
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1, 1};
  cfg.grouping = paper_matmul_options(ps);
  cfg.space_mode = SpaceMode::Verify;
  PipelineResult r = run_pipeline(workloads::matrix_multiplication(), cfg);
  EXPECT_EQ(r.projected->point_count(), 37u);
  EXPECT_EQ(r.grouping.beta(), 2u);
  EXPECT_EQ(r.grouping.group_size_r(), 3);
  EXPECT_EQ(r.block_sizes.size(), 17u);
  std::int64_t covered = 0;
  for (std::int64_t b : r.block_sizes) covered += b;
  EXPECT_EQ(covered, 64);
  EXPECT_TRUE(r.theorem2.holds);
}

TEST(SymbolicVerify, MatvecTableITotalsAllCubeSizes) {
  // Table I at M = 64: the symbolic simulator must reproduce the dense run
  // (verify mode asserts it) and both must equal the closed-form model.
  const std::int64_t m = 64;
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1};
  cfg.space_mode = SpaceMode::Verify;
  for (unsigned dim : {0u, 2u, 4u}) {
    cfg.cube_dim = dim;
    PipelineResult r = run_pipeline(workloads::matrix_vector(m), cfg);
    Cost expected = perf::matvec_exec_time(m, std::int64_t{1} << dim);
    EXPECT_EQ(r.sim.total, expected) << "N = " << (1 << dim);
  }
}

TEST(SymbolicVerify, TriangularMatvecAffineDomain) {
  // The strictly lower-triangular domain (j < i) slab-decomposes along i;
  // verify mode asserts the symbolic pipeline — partition stats, mapping,
  // and the simulator — reproduces the dense run under every accounting.
  for (CommAccounting acc : {CommAccounting::PaperMaxChannel, CommAccounting::PerStepBarrier,
                             CommAccounting::LinkContention}) {
    PipelineConfig cfg;
    cfg.time_function = IntVec{1, 1};
    cfg.space_mode = SpaceMode::Verify;
    cfg.sim.accounting = acc;
    PipelineResult r = run_pipeline(workloads::triangular_matvec(8), cfg);
    ASSERT_NE(r.space, nullptr);
    EXPECT_FALSE(r.space->is_rectangular());
    EXPECT_EQ(r.space->slab_count(), 7u);  // rows i = 2..8 (i = 1 is empty)
    EXPECT_EQ(r.iteration_count(), 28u);   // 0 + 1 + ... + 7
    EXPECT_TRUE(r.exact_cover);
    EXPECT_TRUE(r.theorem1);
    EXPECT_GT(r.sim.time, 0.0);
  }
}

TEST(SymbolicVerify, SkewedWavefrontAffineDomain) {
  // wavefront3d under the unimodular skew (i,j,k) -> (i,i+j,k): a sheared
  // prism with t in [i+1, i+n].  Π comes from the search on both backends.
  PipelineConfig cfg;
  cfg.space_mode = SpaceMode::Verify;
  PipelineResult r = run_pipeline(workloads::skewed_wavefront3d(4), cfg);
  ASSERT_NE(r.space, nullptr);
  EXPECT_FALSE(r.space->is_rectangular());
  EXPECT_EQ(r.space->slab_count(), 4u);
  EXPECT_EQ(r.iteration_count(), 64u);  // the skew is volume-preserving
  std::vector<IntVec> deps = r.space->dependences();
  std::sort(deps.begin(), deps.end());
  EXPECT_EQ(deps, (std::vector<IntVec>{{0, 0, 1}, {0, 1, 0}, {1, 1, 0}}));
  EXPECT_TRUE(r.exact_cover);
  EXPECT_TRUE(r.theorem1);
}

TEST(SymbolicVerify, AllAccountingsAgree) {
  // Verify mode re-runs the simulator symbolically under the configured
  // accounting; a mismatch in any SimResult field throws.
  for (CommAccounting acc : {CommAccounting::PaperMaxChannel, CommAccounting::PerStepBarrier,
                             CommAccounting::LinkContention}) {
    PipelineConfig cfg;
    cfg.time_function = IntVec{1, 1};
    cfg.space_mode = SpaceMode::Verify;
    cfg.sim.accounting = acc;
    PipelineResult r = run_pipeline(workloads::example_l1(), cfg);
    EXPECT_GT(r.sim.time, 0.0);
    EXPECT_EQ(r.sim.steps, 7);
  }
}

}  // namespace
}  // namespace hypart
