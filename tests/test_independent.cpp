#include "baselines/independent.hpp"

#include <gtest/gtest.h>

#include "workloads/workloads.hpp"

namespace hypart {
namespace {

TEST(Independent, MatmulSerializes) {
  // Paper Section I: matrix multiplication "cannot be partitioned into
  // independent blocks. Therefore, these algorithms will execute
  // sequentially by their methods."
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication(2));
  IndependentPartition ip = independent_partition(q);
  EXPECT_EQ(ip.lattice_rank, 3u);
  EXPECT_EQ(ip.lattice_class_count, 1);
  EXPECT_EQ(ip.block_count, 1u);
  EXPECT_TRUE(ip.is_sequential());
}

TEST(Independent, MatvecSerializes) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_vector(5));
  IndependentPartition ip = independent_partition(q);
  EXPECT_EQ(ip.lattice_class_count, 1);
  EXPECT_TRUE(ip.is_sequential());
}

TEST(Independent, ConvolutionSerializes) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::convolution1d(6, 4));
  IndependentPartition ip = independent_partition(q);
  EXPECT_TRUE(ip.is_sequential());
}

TEST(Independent, StridedRecurrenceParallelizes) {
  // D = {(3,0),(0,3)}: the lattice has 9 residue classes; on a 10x10 domain
  // all 9 are realized.
  ComputationStructure q = ComputationStructure::from_loop(workloads::strided_recurrence(9, 3));
  IndependentPartition ip = independent_partition(q);
  EXPECT_EQ(ip.lattice_rank, 2u);
  EXPECT_EQ(ip.lattice_class_count, 9);
  EXPECT_EQ(ip.block_count, 9u);
  EXPECT_FALSE(ip.is_sequential());
}

TEST(Independent, BlocksAreActuallyIndependent) {
  // No dependence arc may cross block labels.
  ComputationStructure q = ComputationStructure::from_loop(workloads::strided_recurrence(9, 3));
  IndependentPartition ip = independent_partition(q);
  q.for_each_arc([&](const IntVec& src, const IntVec& dst, std::size_t) {
    EXPECT_EQ(ip.labels[q.id_of(src)], ip.labels[q.id_of(dst)]);
  });
}

TEST(Independent, RankDeficientLatticeGivesManyBlocks) {
  // Single dependence (1,0): classes are the columns j = const.
  ComputationStructure q = ComputationStructure::from_loop(workloads::sor2d(4, 4));
  // sor2d has D = {(1,0),(0,1)} -> full rank det 1 -> sequential.
  EXPECT_TRUE(independent_partition(q).is_sequential());

  // Now a genuinely rank-deficient case: only the column recurrence.
  LoopNest col_only = LoopNestBuilder("columns")
                          .loop("i", 0, 3)
                          .loop("j", 0, 5)
                          .statement("S")
                          .write("A", {idx(0), idx(1)})
                          .read("A", {idx(0) - 1, idx(1)})
                          .build();
  ComputationStructure qc = ComputationStructure::from_loop(col_only);
  IndependentPartition ip = independent_partition(qc);
  EXPECT_EQ(ip.lattice_rank, 1u);
  EXPECT_EQ(ip.lattice_class_count, 0);  // unbounded by the lattice alone
  EXPECT_EQ(ip.block_count, 6u);         // one block per column
}

TEST(Independent, NoDependencesFullyParallel) {
  ComputationStructure q({{0, 0}, {0, 1}, {1, 0}}, {});
  IndependentPartition ip = independent_partition(q);
  EXPECT_EQ(ip.block_count, 3u);
  EXPECT_EQ(ip.lattice_rank, 0u);
}

TEST(Independent, ResidueCanonicalization) {
  // Residues of x and x + lattice vector must coincide.
  IntMat d = IntMat::from_cols({{2, 0}, {1, 3}});
  HermiteResult h = hermite_normal_form(d);
  IntVec x{5, -7};
  IntVec shifted = add(x, add(scale(d.col(0), 3), scale(d.col(1), -2)));
  EXPECT_EQ(lattice_residue(x, h), lattice_residue(shifted, h));
  // And residues of non-equivalent points differ: (0,0) vs (1,0) with
  // lattice det 6.
  EXPECT_NE(lattice_residue(IntVec{0, 0}, h), lattice_residue(IntVec{1, 0}, h));
}

class IndependentClassCountProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(IndependentClassCountProperty, StrideSquaredClasses) {
  std::int64_t stride = GetParam();
  // Domain large enough to realize all residue classes.
  ComputationStructure q = ComputationStructure::from_loop(
      workloads::strided_recurrence(3 * stride, stride));
  IndependentPartition ip = independent_partition(q);
  EXPECT_EQ(ip.lattice_class_count, stride * stride);
  EXPECT_EQ(ip.block_count, static_cast<std::size_t>(stride * stride));
}

INSTANTIATE_TEST_SUITE_P(Strides, IndependentClassCountProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace hypart
