#include "numeric/rational.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace hypart {
namespace {

TEST(Gcd64, Basics) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(-12, -18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(5, 0), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(1, 1), 1);
  EXPECT_EQ(gcd64(17, 13), 1);
}

TEST(Gcd64, LargeValues) {
  EXPECT_EQ(gcd64(INT64_MAX, INT64_MAX), INT64_MAX);
  EXPECT_EQ(gcd64(INT64_MAX, 1), 1);
  EXPECT_EQ(gcd64(INT64_MIN, 2), 2);
  EXPECT_EQ(gcd64(2, INT64_MIN), 2);
}

TEST(Lcm64, Basics) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(1, 7), 7);
  EXPECT_EQ(lcm64(0, 7), 0);
  EXPECT_EQ(lcm64(-4, 6), 12);
  EXPECT_EQ(lcm64(3, 3), 3);
}

TEST(Lcm64, OverflowThrows) {
  EXPECT_THROW(lcm64(INT64_MAX, INT64_MAX - 1), ArithmeticError);
}

TEST(Rational, CanonicalForm) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);

  Rational neg(3, -9);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 3);

  Rational zero(0, 5);
  EXPECT_EQ(zero.num(), 0);
  EXPECT_EQ(zero.den(), 1);
  EXPECT_TRUE(zero.is_zero());
}

TEST(Rational, ZeroDenominatorThrows) { EXPECT_THROW(Rational(1, 0), ArithmeticError); }

TEST(Rational, Arithmetic) {
  Rational a(1, 2), b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, MixedIntegerArithmetic) {
  Rational a(3, 4);
  EXPECT_EQ(a + Rational(1), Rational(7, 4));
  EXPECT_EQ(a * Rational(4), Rational(3));
  EXPECT_TRUE((a * Rational(4)).is_integer());
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LE(Rational(5, 10), Rational(1, 2));
  EXPECT_LT(Rational(-5), Rational(0));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, ToInteger) {
  EXPECT_EQ(Rational(8, 4).to_integer(), 2);
  EXPECT_THROW(static_cast<void>(Rational(1, 2).to_integer()), ArithmeticError);
}

TEST(Rational, Reciprocal) {
  EXPECT_EQ(Rational(2, 3).reciprocal(), Rational(3, 2));
  EXPECT_EQ(Rational(-2, 3).reciprocal(), Rational(-3, 2));
  EXPECT_THROW(static_cast<void>(Rational(0).reciprocal()), ArithmeticError);
}

TEST(Rational, AbsAndSign) {
  EXPECT_EQ(Rational(-3, 7).abs(), Rational(3, 7));
  EXPECT_EQ(Rational(-3, 7).sign(), -1);
  EXPECT_EQ(Rational(3, 7).sign(), 1);
  EXPECT_EQ(Rational(0).sign(), 0);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(-1, 3).to_string(), "-1/3");
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_EQ(Rational(4, 2).to_string(), "2");
}

TEST(Rational, Hashable) {
  std::unordered_set<Rational> set;
  set.insert(Rational(1, 2));
  set.insert(Rational(2, 4));  // same value
  set.insert(Rational(1, 3));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Rational, OverflowDetected) {
  Rational big(INT64_MAX);
  EXPECT_THROW(big + Rational(1), ArithmeticError);
  EXPECT_THROW(big * Rational(2), ArithmeticError);
}

// Property sweep: (a/b) * (b/a) == 1 and (a/b) + (-a/b) == 0 over a grid.
class RationalPropertyTest : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(RationalPropertyTest, MulInverseAndAddInverse) {
  auto [n, d] = GetParam();
  Rational r(n, d);
  if (!r.is_zero()) {
    EXPECT_EQ(r * r.reciprocal(), Rational(1));
  }
  EXPECT_TRUE((r + (-r)).is_zero());
  EXPECT_EQ(r - r, Rational(0));
}

TEST_P(RationalPropertyTest, OrderingConsistentWithDouble) {
  auto [n, d] = GetParam();
  Rational r(n, d);
  Rational half(1, 2);
  double rd = r.to_double();
  if (rd < 0.5) {
    EXPECT_LT(r, half);
  }
  if (rd > 0.5) {
    EXPECT_GT(r, half);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, RationalPropertyTest,
                         ::testing::Values(std::pair<std::int64_t, std::int64_t>{0, 1},
                                           std::pair<std::int64_t, std::int64_t>{1, 1},
                                           std::pair<std::int64_t, std::int64_t>{-1, 1},
                                           std::pair<std::int64_t, std::int64_t>{7, 3},
                                           std::pair<std::int64_t, std::int64_t>{-7, 3},
                                           std::pair<std::int64_t, std::int64_t>{100, 6},
                                           std::pair<std::int64_t, std::int64_t>{-100, 6},
                                           std::pair<std::int64_t, std::int64_t>{1, 1000000},
                                           std::pair<std::int64_t, std::int64_t>{999983, 2}));

}  // namespace
}  // namespace hypart
