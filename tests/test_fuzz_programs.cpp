// Structured fuzzing: generate random *valid* loop programs in the DSL,
// parse them, and run the full pipeline + execution equivalence on each.
// Complements the token-soup robustness test in test_frontend.cpp: these
// programs must all succeed end to end.
//
// The adversarial half of the suite feeds the parser malformed, truncated
// and pathologically nested sources; every one must fail with a *typed*
// ParseError (ErrorKind::Parse, exit code 65) — never another exception
// type and never a crash or stack overflow.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/error.hpp"
#include "core/pipeline.hpp"
#include "exec/interpreter.hpp"
#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"

namespace hypart {
namespace {

/// Emit a random uniform-dependence program:
///   d-deep rectangular nest, one statement updating A from shifted reads
///   of A (lexicographically earlier) and a read-only array B.
std::string random_program(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> depth_dist(1, 3);
  std::uniform_int_distribution<int> extent_dist(2, 6);
  std::uniform_int_distribution<int> nreads_dist(1, 3);
  std::uniform_int_distribution<int> shift_dist(0, 2);
  const int depth = depth_dist(rng);
  const char* names[] = {"i", "j", "k"};

  std::ostringstream os;
  os << "loop fuzz" << seed << " {\n";
  for (int d = 0; d < depth; ++d)
    os << "  for " << names[d] << " = 0 to " << extent_dist(rng) << "\n";

  auto subscripts = [&](const std::vector<int>& shift) {
    std::string s = "[";
    for (int d = 0; d < depth; ++d) {
      if (d) s += ", ";
      s += names[d];
      if (shift[static_cast<std::size_t>(d)] > 0)
        s += " - " + std::to_string(shift[static_cast<std::size_t>(d)]);
    }
    return s + "]";
  };

  os << "  A" << subscripts(std::vector<int>(static_cast<std::size_t>(depth), 0)) << " = ";
  const int nreads = nreads_dist(rng);
  for (int r = 0; r < nreads; ++r) {
    if (r) os << " + ";
    // Lexicographically positive shift: first nonzero component positive.
    std::vector<int> shift(static_cast<std::size_t>(depth), 0);
    bool nonzero = false;
    for (int d = 0; d < depth; ++d) {
      int s = shift_dist(rng);
      if (!nonzero && d + 1 == depth && s == 0) s = 1;  // force progress
      shift[static_cast<std::size_t>(d)] = s;
      if (s > 0) nonzero = true;
    }
    os << "A" << subscripts(shift);
  }
  os << " * 0.25 + B" << subscripts(std::vector<int>(static_cast<std::size_t>(depth), 0))
     << ";\n}\n";
  return os.str();
}

class FuzzProgramProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzProgramProperty, ParseRunValidate) {
  std::string src = random_program(GetParam());
  LoopNest nest = parse_loop_nest(src);

  PipelineConfig cfg;
  cfg.cube_dim = 2;
  PipelineResult r = run_pipeline(nest, cfg);
  EXPECT_TRUE(r.exact_cover) << src;
  EXPECT_TRUE(r.theorem1) << src;
  EXPECT_TRUE(r.theorem2.holds) << src;
  EXPECT_TRUE(r.lemmas.lemma2_holds) << src;
  EXPECT_TRUE(r.lemmas.lemma3_holds) << src;

  ArrayStore seq = run_sequential(nest);
  DistributedResult dist = run_distributed(nest, *r.structure, r.time_function, r.partition,
                                           r.mapping.mapping, r.dependence);
  EquivalenceReport rep = compare_stores(seq, dist.written);
  EXPECT_TRUE(rep.equal) << src << "\n" << rep.first_mismatch;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProgramProperty, ::testing::Range<std::uint64_t>(0, 40));

// ---------------------------------------------------------------------------
// Adversarial corpus: every source below is broken in a different way and
// must be rejected with ParseError specifically.

void expect_typed_parse_error(const std::string& src) {
  try {
    parse_loop_nest(src);
    FAIL() << "should not parse:\n" << src;
  } catch (const ParseError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Parse) << src;
    EXPECT_EQ(e.exit_code(), 65) << src;
    EXPECT_FALSE(std::string(e.what()).empty());
  }
  // Anything else (std::bad_alloc, segfault, stack overflow) fails the test
  // or kills the binary — which is the point.
}

TEST(FuzzMalformed, MalformedCorpusThrowsTypedErrors) {
  const char* corpus[] = {
      "",                                    // empty input
      "loop",                                // nothing after keyword
      "loop x",                              // missing body
      "loop x { }",                          // no loops or statements
      "loop x { for i = 0 to 3 }",           // loop with no statement
      "loop x { for i = 0 to 3 A[i] = ; }",  // missing rhs
      "loop x { for i = 0 to 3 A[i] = B[i]", // unclosed brace
      "loop x { for i = 0 to 3 A[i = B[i]; }",    // unclosed subscript
      "loop x { for i = 0 to 3 A[i] = B[i]; } }", // extra brace
      "loop x { for i = to 3 A[i] = B[i]; }",     // missing bound
      "loop x { for 3 = 0 to 3 A[i] = B[i]; }",   // number as index name
      "loop x { for i = 0 to 3 A[i] @ B[i]; }",   // illegal character
      "loop x { for i = 0 to 3 A[i] = B[i] * * 2; }",  // operator soup
      "for i = 0 to 3 A[i] = B[i];",         // missing loop header
      "loop x { for i = 0 to 3 A[i] = 1..2; }",        // malformed number
  };
  for (const char* src : corpus) expect_typed_parse_error(src);
}

TEST(FuzzMalformed, HugeLiteralsAreRejectedNotUB) {
  expect_typed_parse_error("loop x { for i = 0 to 3 A[i] = 99999999999999999999999; }");
  expect_typed_parse_error("loop x { for i = 0 to 3 A[i] = 1e999999999; }");
}

TEST(FuzzMalformed, TruncatedProgramsNeverCrash) {
  // Every prefix of a valid program either parses or raises ParseError.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    std::string src = random_program(seed);
    for (std::size_t len = 0; len < src.size(); ++len) {
      std::string prefix = src.substr(0, len);
      try {
        parse_loop_nest(prefix);
      } catch (const ParseError&) {
        // expected for most prefixes
      }
    }
  }
}

TEST(FuzzMalformed, TokenSoupNeverCrashes) {
  std::mt19937_64 rng(1234);
  const char alphabet[] = "loopfrt=;{}[]()+-*/0123456789ij ,.\n";
  std::uniform_int_distribution<std::size_t> pick(0, sizeof(alphabet) - 2);
  std::uniform_int_distribution<std::size_t> len_dist(1, 200);
  for (int trial = 0; trial < 200; ++trial) {
    std::string soup;
    std::size_t len = len_dist(rng);
    for (std::size_t c = 0; c < len; ++c) soup += alphabet[pick(rng)];
    try {
      parse_loop_nest(soup);
    } catch (const ParseError&) {
      // fine: typed rejection
    }
    // Any other exception escapes and fails the test binary.
  }
}

TEST(FuzzMalformed, DeeplyNestedExpressionHitsDepthGuardNotTheStack) {
  // 10k nested parens would overflow the recursive-descent parser's stack
  // without the depth guard; with it, a ParseError mentioning the limit.
  std::string deep = "loop x { for i = 0 to 3 A[i] = ";
  for (int n = 0; n < 10000; ++n) deep += "(";
  deep += "B[i]";
  for (int n = 0; n < 10000; ++n) deep += ")";
  deep += "; }";
  try {
    parse_loop_nest(deep);
    FAIL() << "depth guard should have fired";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("nested deeper"), std::string::npos);
  }
  // Unbalanced deep nesting must behave identically (truncated input).
  std::string unbalanced = "loop x { for i = 0 to 3 A[i] = ";
  for (int n = 0; n < 10000; ++n) unbalanced += "(";
  EXPECT_THROW(parse_loop_nest(unbalanced), ParseError);
}

}  // namespace
}  // namespace hypart
