// Structured fuzzing: generate random *valid* loop programs in the DSL,
// parse them, and run the full pipeline + execution equivalence on each.
// Complements the token-soup robustness test in test_frontend.cpp: these
// programs must all succeed end to end.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/pipeline.hpp"
#include "exec/interpreter.hpp"
#include "frontend/parser.hpp"

namespace hypart {
namespace {

/// Emit a random uniform-dependence program:
///   d-deep rectangular nest, one statement updating A from shifted reads
///   of A (lexicographically earlier) and a read-only array B.
std::string random_program(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> depth_dist(1, 3);
  std::uniform_int_distribution<int> extent_dist(2, 6);
  std::uniform_int_distribution<int> nreads_dist(1, 3);
  std::uniform_int_distribution<int> shift_dist(0, 2);
  const int depth = depth_dist(rng);
  const char* names[] = {"i", "j", "k"};

  std::ostringstream os;
  os << "loop fuzz" << seed << " {\n";
  for (int d = 0; d < depth; ++d)
    os << "  for " << names[d] << " = 0 to " << extent_dist(rng) << "\n";

  auto subscripts = [&](const std::vector<int>& shift) {
    std::string s = "[";
    for (int d = 0; d < depth; ++d) {
      if (d) s += ", ";
      s += names[d];
      if (shift[static_cast<std::size_t>(d)] > 0)
        s += " - " + std::to_string(shift[static_cast<std::size_t>(d)]);
    }
    return s + "]";
  };

  os << "  A" << subscripts(std::vector<int>(static_cast<std::size_t>(depth), 0)) << " = ";
  const int nreads = nreads_dist(rng);
  for (int r = 0; r < nreads; ++r) {
    if (r) os << " + ";
    // Lexicographically positive shift: first nonzero component positive.
    std::vector<int> shift(static_cast<std::size_t>(depth), 0);
    bool nonzero = false;
    for (int d = 0; d < depth; ++d) {
      int s = shift_dist(rng);
      if (!nonzero && d + 1 == depth && s == 0) s = 1;  // force progress
      shift[static_cast<std::size_t>(d)] = s;
      if (s > 0) nonzero = true;
    }
    os << "A" << subscripts(shift);
  }
  os << " * 0.25 + B" << subscripts(std::vector<int>(static_cast<std::size_t>(depth), 0))
     << ";\n}\n";
  return os.str();
}

class FuzzProgramProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzProgramProperty, ParseRunValidate) {
  std::string src = random_program(GetParam());
  LoopNest nest = parse_loop_nest(src);

  PipelineConfig cfg;
  cfg.cube_dim = 2;
  PipelineResult r = run_pipeline(nest, cfg);
  EXPECT_TRUE(r.exact_cover) << src;
  EXPECT_TRUE(r.theorem1) << src;
  EXPECT_TRUE(r.theorem2.holds) << src;
  EXPECT_TRUE(r.lemmas.lemma2_holds) << src;
  EXPECT_TRUE(r.lemmas.lemma3_holds) << src;

  ArrayStore seq = run_sequential(nest);
  DistributedResult dist = run_distributed(nest, *r.structure, r.time_function, r.partition,
                                           r.mapping.mapping, r.dependence);
  EquivalenceReport rep = compare_stores(seq, dist.written);
  EXPECT_TRUE(rep.equal) << src << "\n" << rep.first_mismatch;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProgramProperty, ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace hypart
