#include "frontend/parser.hpp"

#include <gtest/gtest.h>

#include "exec/interpreter.hpp"
#include "frontend/lexer.hpp"
#include "loop/dependence.hpp"
#include "loop/index_set.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

constexpr const char* kL1Source = R"(
# The paper's loop (L1).
loop L1 {
  for i = 0 to 3
  for j = 0 to 3
  S1: A[i+1, j+1] = A[i+1, j] + B[i, j];
  S2: B[i+1, j]   = A[i, j] * 2 + 3;
}
)";

TEST(Lexer, TokenKindsAndPositions) {
  std::vector<Token> toks = tokenize("for i = 0 to 3");
  ASSERT_EQ(toks.size(), 7u);  // for i = 0 to 3 <end>
  EXPECT_EQ(toks[0].kind, TokenKind::Identifier);
  EXPECT_EQ(toks[0].text, "for");
  EXPECT_EQ(toks[2].kind, TokenKind::Assign);
  EXPECT_EQ(toks[3].kind, TokenKind::Integer);
  EXPECT_EQ(toks[3].int_value, 0);
  EXPECT_EQ(toks.back().kind, TokenKind::End);
  EXPECT_EQ(toks[0].line, 1u);
  EXPECT_EQ(toks[0].column, 1u);
}

TEST(Lexer, FloatsCommentsAndSymbols) {
  std::vector<Token> toks = tokenize("A[i] = 2.5; # comment\n// also comment\nB[1]");
  bool saw_float = false;
  for (const Token& t : toks)
    if (t.kind == TokenKind::Float) {
      saw_float = true;
      EXPECT_DOUBLE_EQ(t.float_value, 2.5);
    }
  EXPECT_TRUE(saw_float);
}

TEST(Lexer, ErrorsCarryPosition) {
  try {
    tokenize("a ? b");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_EQ(e.column(), 3u);
  }
  EXPECT_THROW(tokenize("1.2.3"), ParseError);
}

TEST(ParserTest, L1RoundTrip) {
  LoopNest parsed = parse_loop_nest(kL1Source);
  EXPECT_EQ(parsed.name(), "L1");
  EXPECT_EQ(parsed.depth(), 2u);
  ASSERT_EQ(parsed.statements().size(), 2u);
  EXPECT_EQ(parsed.statements()[0].label, "S1");
  EXPECT_TRUE(parsed.statements()[0].is_executable());

  // Same dependences as the builder-made L1.
  DependenceInfo a = analyze_dependences(parsed);
  DependenceInfo b = analyze_dependences(workloads::example_l1());
  EXPECT_EQ(a.distance_vectors(), b.distance_vectors());

  // Same executed values as the builder-made L1.
  ArrayStore pa = run_sequential(parsed);
  ArrayStore pb = run_sequential(workloads::example_l1());
  EquivalenceReport rep = compare_stores(pb, pa);
  EXPECT_TRUE(rep.equal) << rep.first_mismatch;
}

TEST(ParserTest, TriangularBoundsAndCoefficients) {
  LoopNest nest = parse_loop_nest(R"(
    loop tri {
      for i = 0 to 7
      for j = 2*i - 1 to 7
      A[i, j] = A[i - 1, j] + 0.5;
    }
  )");
  EXPECT_FALSE(nest.is_rectangular());
  IndexSet is(nest);
  EXPECT_TRUE(is.contains({1, 1}));
  EXPECT_FALSE(is.contains({1, 0}));
}

TEST(ParserTest, MinMaxAndParens) {
  LoopNest nest = parse_loop_nest(R"(
    loop mm {
      for i = 1 to 4
      A[i] = min(A[i - 1], 2.0) * (B[i] + max(B[i], 0.5)) / 4;
    }
  )");
  const Statement& s = nest.statements()[0];
  EXPECT_TRUE(s.is_executable());
  EXPECT_GE(s.flop_count, 4);
  ArrayStore out = run_sequential(nest);
  EXPECT_TRUE(out.load("A", {1}).has_value());
}

TEST(ParserTest, AnonymousLabels) {
  LoopNest nest = parse_loop_nest(R"(
    loop anon {
      for i = 0 to 3
      A[i] = 1;
      B[i] = A[i] + 1;
    }
  )");
  EXPECT_EQ(nest.statements()[0].label, "S1");
  EXPECT_EQ(nest.statements()[1].label, "S2");
}

TEST(ParserTest, NegativeBoundsAndUnary) {
  LoopNest nest = parse_loop_nest(R"(
    loop neg {
      for i = -3 to 3
      A[i] = -A[i - 1] - 1;
    }
  )");
  IndexSet is(nest);
  EXPECT_EQ(is.size(), 7u);
}

TEST(ParserTest, ErrorMessages) {
  EXPECT_THROW(parse_loop_nest("loop x { }"), ParseError);  // no for
  EXPECT_THROW(parse_loop_nest("loop x { for i = 0 to 3 }"), ParseError);  // no statement
  EXPECT_THROW(parse_loop_nest("loop x { for i = 0 to 3 for i = 0 to 2 A[i] = 1; }"),
               ParseError);  // duplicate index
  EXPECT_THROW(parse_loop_nest("loop x { for i = 0 to j A[i] = 1; }"),
               ParseError);  // bound uses undeclared index
  EXPECT_THROW(parse_loop_nest("loop x { for i = 0 to 3 A[i] = i; }"),
               ParseError);  // loop index in RHS outside subscripts
  EXPECT_THROW(parse_loop_nest("loop x { for i = 0 to 3 A[i] = B; }"),
               ParseError);  // bare identifier
  EXPECT_THROW(parse_loop_nest("loop x { for i = 0 to 3 A[i] = 1 }"),
               ParseError);  // missing semicolon
}

TEST(ParserTest, BoundMayNotUseOwnIndex) {
  EXPECT_THROW(parse_loop_nest("loop x { for i = 0 to i A[i] = 1; }"), ParseError);
}

TEST(ParserRobustness, RandomTokenSoupNeverCrashes) {
  // The parser must reject garbage with ParseError, never crash or accept.
  const char* vocab[] = {"loop", "for",  "to", "min", "{", "}",  "[", "]", "(",
                         ")",    "=",    ":",  ";",   ",", "+",  "-", "*", "/",
                         "A",    "name", "i",  "0",   "7", "2.5"};
  std::uint64_t state = 12345;
  auto next = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return (state >> 33) % (sizeof(vocab) / sizeof(vocab[0]));
  };
  for (int round = 0; round < 200; ++round) {
    std::string src;
    int len = 1 + static_cast<int>(next() % 30);
    for (int k = 0; k < len; ++k) {
      src += vocab[next()];
      src += ' ';
    }
    try {
      LoopNest nest = parse_loop_nest(src);
      // Extremely unlikely, but if it parses it must be structurally valid.
      EXPECT_GE(nest.depth(), 1u);
    } catch (const ParseError&) {
      // expected for almost every random string
    }
  }
}

TEST(ParserTest, ParsedMatvecRunsFullPipeline) {
  LoopNest nest = parse_loop_nest(R"(
    loop matvec {
      for i = 1 to 8
      for j = 1 to 8
      y[i] = y[i] + A[i, j] * x[j];
    }
  )");
  DependenceInfo deps = analyze_dependences(nest);
  EXPECT_EQ(deps.distance_vectors().size(), 2u);
  ArrayStore parsed = run_sequential(nest);
  ArrayStore canned = run_sequential(workloads::matrix_vector(8));
  EXPECT_TRUE(compare_stores(canned, parsed).equal);
}

}  // namespace
}  // namespace hypart
