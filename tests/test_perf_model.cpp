#include "perf/perf_model.hpp"

#include <gtest/gtest.h>

namespace hypart {
namespace {

TEST(PerfModel, TableIExactRows) {
  // Table I, M = 1024: the six published rows, verbatim.
  EXPECT_EQ(perf::matvec_exec_time(1024, 1), (Cost{2097152, 0, 0}));
  EXPECT_EQ(perf::matvec_exec_time(1024, 4), (Cost{786944, 2046, 2046}));
  EXPECT_EQ(perf::matvec_exec_time(1024, 16), (Cost{245888, 2046, 2046}));
  EXPECT_EQ(perf::matvec_exec_time(1024, 64), (Cost{64544, 2046, 2046}));
  EXPECT_EQ(perf::matvec_exec_time(1024, 256), (Cost{16328, 2046, 2046}));
  EXPECT_EQ(perf::matvec_exec_time(1024, 1024), (Cost{4094, 2046, 2046}));
}

TEST(PerfModel, TableIRendering) {
  EXPECT_EQ(perf::matvec_exec_time(1024, 1).to_string(), "2097152 t_calc");
  EXPECT_EQ(perf::matvec_exec_time(1024, 64).to_string(),
            "64544 t_calc + 2046(t_start+t_comm)");
}

TEST(PerfModel, BottleneckPointsFormula) {
  // W = sum_{i=l}^{M} i with l = floor((N-2)/N * M) + 1.
  EXPECT_EQ(perf::matvec_bottleneck_points(1024, 4), 393472);
  EXPECT_EQ(perf::matvec_bottleneck_points(1024, 16), 122944);
  EXPECT_EQ(perf::matvec_bottleneck_points(1024, 2), 1024 * 1025 / 2);
  EXPECT_EQ(perf::matvec_bottleneck_points(8, 1), 64);
}

TEST(PerfModel, ComputeTermStrictlyDecreasesWithN) {
  std::int64_t prev = INT64_MAX;
  for (std::int64_t n : {1, 4, 16, 64, 256, 1024}) {
    Cost c = perf::matvec_exec_time(1024, n);
    EXPECT_LT(c.calc, prev);
    prev = c.calc;
  }
}

TEST(PerfModel, CommTermInvariantInN) {
  for (std::int64_t n : {4, 16, 64, 256, 1024}) {
    Cost c = perf::matvec_exec_time(1024, n);
    EXPECT_EQ(c.start, 2046);
    EXPECT_EQ(c.comm, 2046);
  }
}

TEST(PerfModel, SpeedupIncreasesThenSaturates) {
  MachineParams m{1.0, 50.0, 5.0};
  double prev = 0.0;
  for (std::int64_t n : {1, 4, 16, 64, 256, 1024}) {
    double s = perf::matvec_speedup(1024, n, m);
    EXPECT_GT(s, prev);
    prev = s;
  }
  // With heavy comm overhead the speedup stays far below N at N = 1024.
  EXPECT_LT(prev, 1024.0 / 10.0);
}

TEST(PerfModel, CommRatioDeclinesWithGrainSize) {
  // Paper: "the ratio of communication time to computation time declines
  // rapidly as the grain size grows" — i.e. as M grows for fixed N.
  MachineParams m{1.0, 50.0, 5.0};
  double prev = 1e300;
  for (std::int64_t size : {64, 128, 256, 512, 1024}) {
    double ratio = perf::matvec_comm_ratio(size, 16, m);
    EXPECT_LT(ratio, prev);
    prev = ratio;
  }
}

TEST(PerfModel, InvalidInputsThrow) {
  EXPECT_THROW(perf::matvec_bottleneck_points(0, 4), std::invalid_argument);
  EXPECT_THROW(perf::matvec_bottleneck_points(8, 0), std::invalid_argument);
}

class PerfModelWConsistency : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(PerfModelWConsistency, WNeverBelowFairShareNorAboveTotal) {
  std::int64_t n = GetParam();
  const std::int64_t m = 1024;
  std::int64_t w = perf::matvec_bottleneck_points(m, n);
  EXPECT_GE(w, m * m / n);  // bottleneck at least the fair share
  EXPECT_LE(w, m * m);
}

INSTANTIATE_TEST_SUITE_P(Procs, PerfModelWConsistency, ::testing::Values(1, 2, 4, 8, 16, 64, 256));

}  // namespace
}  // namespace hypart
