#include "partition/checkers.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "workloads/workloads.hpp"

namespace hypart {
namespace {

struct PartitionFixture {
  std::unique_ptr<ComputationStructure> q;
  std::unique_ptr<ProjectedStructure> ps;
  Grouping grouping;
  Partition partition;
  TimeFunction tf;
};

PartitionFixture make(const LoopNest& nest, const IntVec& pi) {
  PartitionFixture s;
  s.q = std::make_unique<ComputationStructure>(ComputationStructure::from_loop(nest));
  s.tf = TimeFunction{pi};
  s.ps = std::make_unique<ProjectedStructure>(*s.q, s.tf);
  s.grouping = Grouping::compute(*s.ps);
  s.partition = Partition::build(*s.q, s.grouping);
  return s;
}

TEST(Checkers, L1AllHold) {
  PartitionFixture s = make(workloads::example_l1(), {1, 1});
  EXPECT_TRUE(check_exact_cover(*s.q, s.partition));
  EXPECT_TRUE(check_theorem1(*s.q, s.tf, s.partition));
  Theorem2Report t2 = check_theorem2(s.grouping);
  EXPECT_TRUE(t2.holds);
  EXPECT_EQ(t2.m, 3u);
  EXPECT_EQ(t2.beta, 1u);
  EXPECT_EQ(t2.bound, 5u);
  LemmaReport lr = check_lemmas(s.grouping);
  EXPECT_TRUE(lr.lemma2_holds);
  EXPECT_TRUE(lr.lemma3_holds);
}

TEST(Checkers, MatmulTheorem2MatchesPaper) {
  // Paper: "there are 2x3-2 = 4 groups that depend on the group G_10".
  PartitionFixture s = make(workloads::matrix_multiplication(), {1, 1, 1});
  Theorem2Report t2 = check_theorem2(s.grouping);
  EXPECT_EQ(t2.m, 3u);
  EXPECT_EQ(t2.beta, 2u);
  EXPECT_EQ(t2.bound, 4u);
  EXPECT_TRUE(t2.holds);
  EXPECT_LE(t2.max_out_degree, 4u);  // the paper's grouping attains it (see
                                     // PaperFig7 in test_paper_examples)
  LemmaReport lr = check_lemmas(s.grouping);
  EXPECT_TRUE(lr.lemma2_holds);
  EXPECT_TRUE(lr.lemma3_holds);
}

TEST(Checkers, Theorem1DetectsViolation) {
  // Under Π = (1,1) the L1 partition is valid; re-checking the same blocks
  // against a *different* Π under which block-mates share a hyperplane must
  // report a violation.  Each L1 block holds two adjacent projection lines,
  // so e.g. (1,0) and (1,1) end up in one block; under Π' = (1,0) they both
  // execute at step 1.
  PartitionFixture s = make(workloads::example_l1(), {1, 1});
  EXPECT_TRUE(check_theorem1(*s.q, s.tf, s.partition));
  EXPECT_FALSE(check_theorem1(*s.q, TimeFunction{{1, 0}}, s.partition));
}

TEST(Checkers, ExactCoverDetectsViolation) {
  ComputationStructure q({{0, 0}, {0, 1}, {1, 0}, {1, 1}}, {{0, 1}});
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  Grouping g = Grouping::compute(ps);
  Partition p = Partition::build(q, g);
  EXPECT_TRUE(check_exact_cover(q, p));
  // A partition of a *different* structure cannot cover this one.
  ComputationStructure bigger({{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}}, {{0, 1}});
  EXPECT_FALSE(check_exact_cover(bigger, p));
}

TEST(Checkers, Theorem2ReportToString) {
  PartitionFixture s = make(workloads::example_l1(), {1, 1});
  std::string str = check_theorem2(s.grouping).to_string();
  EXPECT_NE(str.find("HOLDS"), std::string::npos);
  EXPECT_NE(str.find("m=3"), std::string::npos);
}

TEST(Checkers, MatvecLemmasHold) {
  PartitionFixture s = make(workloads::matrix_vector(8), {1, 1});
  EXPECT_TRUE(check_exact_cover(*s.q, s.partition));
  EXPECT_TRUE(check_theorem1(*s.q, s.tf, s.partition));
  EXPECT_TRUE(check_theorem2(s.grouping).holds);
  LemmaReport lr = check_lemmas(s.grouping);
  EXPECT_TRUE(lr.lemma2_holds);
  EXPECT_TRUE(lr.lemma3_holds);
}

// Theorem/lemma invariants must hold for every workload and size — the core
// property suite of Algorithm 1.
class TheoremProperty
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(TheoremProperty, AllInvariantsHold) {
  auto [which, n] = GetParam();
  LoopNest nest = [&]() -> LoopNest {
    switch (which) {
      case 0: return workloads::example_l1(n);
      case 1: return workloads::sor2d(n, n + 1);
      case 2: return workloads::convolution1d(n + 2, n);
      case 3: return workloads::matrix_vector(n + 1);
      case 4: return workloads::matrix_multiplication(n);
      default: return workloads::wavefront3d(n);
    }
  }();
  ComputationStructure q = ComputationStructure::from_loop(nest);
  auto tf = search_time_function(q);
  ASSERT_TRUE(tf.has_value());
  ProjectedStructure ps(q, *tf);
  Grouping g = Grouping::compute(ps);
  Partition p = Partition::build(q, g);

  EXPECT_TRUE(check_exact_cover(q, p)) << nest.name();
  EXPECT_TRUE(check_theorem1(q, *tf, p)) << nest.name();
  EXPECT_TRUE(check_theorem2(g).holds) << nest.name();
  LemmaReport lr = check_lemmas(g);
  EXPECT_TRUE(lr.lemma2_holds) << nest.name();
  EXPECT_TRUE(lr.lemma3_holds) << nest.name();
}

INSTANTIATE_TEST_SUITE_P(WorkloadsAndSizes, TheoremProperty,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                                            ::testing::Values(2, 3, 4)));

}  // namespace
}  // namespace hypart
