// hypart::fault — fault plans, degraded routing, spare-node remapping and
// the degraded simulator, including the headline acceptance scenario: a
// single failed node on a 16-node cube completes with failed_nodes=1 and a
// strictly higher total cost than the fault-free run.
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/error.hpp"
#include "exec/parallel_runtime.hpp"
#include "fault/degraded_route.hpp"
#include "fault/remap.hpp"
#include "mapping/hypercube_map.hpp"
#include "sim/exec_sim.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

using fault::FaultPlan;
using fault::FaultSet;
using fault::kFromStart;

// ---------------------------------------------------------------- parsing --

TEST(FaultPlan, ParsesExplicitTerms) {
  FaultPlan p = FaultPlan::parse("node:5,node:3@7,link:2-6@4");
  ASSERT_EQ(p.node_faults.size(), 2u);
  EXPECT_EQ(p.node_faults[0].node, 5u);
  EXPECT_EQ(p.node_faults[0].at_step, kFromStart);
  EXPECT_EQ(p.node_faults[1].node, 3u);
  EXPECT_EQ(p.node_faults[1].at_step, 7);
  ASSERT_EQ(p.link_faults.size(), 1u);
  EXPECT_EQ(p.link_faults[0].a, 2u);
  EXPECT_EQ(p.link_faults[0].b, 6u);
  EXPECT_EQ(p.link_faults[0].at_step, 4);
  EXPECT_FALSE(p.sampler.has_value());
  EXPECT_FALSE(p.empty());
}

TEST(FaultPlan, ParsesSampler) {
  FaultPlan p = FaultPlan::parse("rand:42:2n1l");
  ASSERT_TRUE(p.sampler.has_value());
  EXPECT_EQ(p.sampler->seed, 42u);
  EXPECT_EQ(p.sampler->nodes, 2u);
  EXPECT_EQ(p.sampler->links, 1u);
}

TEST(FaultPlan, MalformedSpecsThrowTyped) {
  for (const char* bad : {"bogus", "node:", "node:x", "node:1@", "link:2", "link:2-",
                          "link:a-b", "rand:1", "rand:1:zz", "rand:1:0n0l", ""}) {
    try {
      FaultPlan::parse(bad);
      FAIL() << "spec '" << bad << "' should not parse";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::Fault) << bad;
      EXPECT_EQ(e.exit_code(), 77) << bad;
    }
  }
}

// -------------------------------------------------------------- resolving --

TEST(FaultPlan, ResolveValidatesAgainstCube) {
  Hypercube cube(2);
  EXPECT_THROW(FaultPlan::parse("node:4").resolve(cube), FaultError);
  EXPECT_THROW(FaultPlan::parse("link:0-3").resolve(cube), FaultError);  // not an edge
  EXPECT_THROW(FaultPlan::parse("node:0,node:1,node:2,node:3").resolve(cube),
               FaultError);  // would kill every node
}

TEST(FaultPlan, EarliestFailureWins) {
  Hypercube cube(3);
  FaultSet s = FaultPlan::parse("node:5@4,node:5").resolve(cube);
  ASSERT_TRUE(s.node_fail_step(5).has_value());
  EXPECT_EQ(*s.node_fail_step(5), kFromStart);
}

TEST(FaultPlan, SamplerIsDeterministicAndDistinct) {
  Hypercube cube(4);
  FaultSet a = FaultPlan::parse("rand:7:3n2l").resolve(cube);
  FaultSet b = FaultPlan::parse("rand:7:3n2l").resolve(cube);
  EXPECT_EQ(a.failed_node_count(), 3u);
  EXPECT_EQ(a.failed_link_count(), 2u);
  std::set<ProcId> nodes_a, nodes_b;
  for (const auto& nf : a.node_failures_in_order()) nodes_a.insert(nf.node);
  for (const auto& nf : b.node_failures_in_order()) nodes_b.insert(nf.node);
  EXPECT_EQ(nodes_a.size(), 3u);  // distinct draws
  EXPECT_EQ(nodes_a, nodes_b);    // same seed, same machine -> same faults
  EXPECT_EQ(a.link_failures(), b.link_failures());
  FaultSet c = FaultPlan::parse("rand:8:3n2l").resolve(cube);
  std::set<ProcId> nodes_c;
  for (const auto& nf : c.node_failures_in_order()) nodes_c.insert(nf.node);
  EXPECT_TRUE(nodes_c != nodes_a || c.link_failures() != a.link_failures())
      << "different seeds should (here) draw different faults";
}

TEST(FaultSet, StepAwareQueries) {
  Hypercube cube(3);
  FaultSet s = FaultPlan::parse("node:2@5,link:0-1@3").resolve(cube);
  EXPECT_FALSE(s.node_failed_at(2, 4));
  EXPECT_TRUE(s.node_failed_at(2, 5));
  EXPECT_TRUE(s.node_ever_fails(2));
  EXPECT_FALSE(s.link_failed_at(0, 1, 2));
  EXPECT_TRUE(s.link_failed_at(1, 0, 3));  // endpoint order irrelevant
  // A link is failed whenever either endpoint node is down.
  EXPECT_FALSE(s.link_failed_at(2, 6, 4));
  EXPECT_TRUE(s.link_failed_at(2, 6, 5));
}

// ---------------------------------------------------------------- routing --

TEST(DegradedRoute, IntactEcubePathIsKept) {
  Hypercube cube(3);
  FaultSet s = FaultPlan::parse("link:0-1").resolve(cube);
  fault::Route r = fault::route_with_faults(cube, 0, 6, s, 0);
  EXPECT_FALSE(r.rerouted);
  EXPECT_EQ(r.hops, cube.ecube_route(0, 6));
  EXPECT_EQ(fault::degraded_distance(cube, 0, 6, s, 0), cube.distance(0, 6));
}

TEST(DegradedRoute, DetoursAroundFailedLink) {
  Hypercube cube(3);
  FaultSet s = FaultPlan::parse("link:0-1").resolve(cube);
  fault::Route r = fault::route_with_faults(cube, 0, 1, s, 0);
  EXPECT_TRUE(r.rerouted);
  EXPECT_EQ(r.hops.size(), 3u);  // shortest live detour, e.g. 0->2->3->1
  EXPECT_EQ(r.hops.back(), 1u);
  EXPECT_EQ(fault::degraded_distance(cube, 0, 1, s, 0), 3);
  // Identical on every call: the fallback search is deterministic.
  EXPECT_EQ(fault::route_with_faults(cube, 0, 1, s, 0).hops, r.hops);
}

TEST(DegradedRoute, DetoursAroundFailedIntermediateNode) {
  Hypercube cube(2);
  FaultSet s = FaultPlan::parse("node:1").resolve(cube);
  // e-cube 0->3 goes 0->1->3; node 1 is down, so the detour is 0->2->3.
  fault::Route r = fault::route_with_faults(cube, 0, 3, s, 0);
  EXPECT_TRUE(r.rerouted);
  EXPECT_EQ(r.hops, (std::vector<ProcId>{2, 3}));
}

TEST(DegradedRoute, FailedEndpointsAreExempt) {
  Hypercube cube(2);
  FaultSet s = FaultPlan::parse("node:1").resolve(cube);
  fault::Route r = fault::route_with_faults(cube, 1, 0, s, 0);
  EXPECT_FALSE(r.rerouted);
  EXPECT_EQ(r.hops, (std::vector<ProcId>{0}));
}

TEST(DegradedRoute, DisconnectedPairThrows) {
  Hypercube cube(2);
  // Both intermediates of 0<->3 are down; endpoints are exempt but no
  // live path remains.
  FaultSet s = FaultPlan::parse("node:1,node:2").resolve(cube);
  EXPECT_THROW(fault::route_with_faults(cube, 0, 3, s, 0), FaultError);
}

TEST(DegradedRoute, StepGatesTheFailure) {
  Hypercube cube(3);
  FaultSet s = FaultPlan::parse("link:0-1@10").resolve(cube);
  EXPECT_FALSE(fault::route_with_faults(cube, 0, 1, s, 9).rerouted);
  EXPECT_TRUE(fault::route_with_faults(cube, 0, 1, s, 10).rerouted);
}

// -------------------------------------------------------------- remapping --

struct SimFixture {
  std::unique_ptr<ComputationStructure> q;
  std::unique_ptr<ProjectedStructure> ps;
  Grouping grouping;
  Partition partition;
  TaskInteractionGraph tig;
  TimeFunction tf;
  DependenceInfo deps;
  LoopNest nest;

  explicit SimFixture(LoopNest n) : nest(std::move(n)) {
    deps = analyze_dependences(nest);
    IndexSet is(nest);
    q = std::make_unique<ComputationStructure>(is.points(), deps.distance_vectors());
    tf = *search_time_function(*q);
    ps = std::make_unique<ProjectedStructure>(*q, tf);
    grouping = Grouping::compute(*ps);
    partition = Partition::build(*q, grouping);
    tig = TaskInteractionGraph::from_partition(*q, partition, grouping);
  }
};

/// Round-robin mapping: deterministic block placement so the tests know
/// exactly which processors own work.
Mapping modular_mapping(const Partition& part, std::size_t nprocs) {
  Mapping m;
  m.processor_count = nprocs;
  m.block_to_proc.resize(part.block_count());
  for (std::size_t b = 0; b < part.block_count(); ++b) m.block_to_proc[b] = b % nprocs;
  return m;
}

TEST(Remap, MovesBlocksOffFailedNodeToLiveNeighbor) {
  SimFixture f(workloads::sor2d(8, 8));
  Hypercube cube(2);
  Mapping map = modular_mapping(f.partition, 4);
  FaultSet s = FaultPlan::parse("node:1").resolve(cube);
  fault::RemapResult r = fault::remap_for_faults(f.partition, map, cube, s);

  std::int64_t words = 0;
  for (std::size_t b = 0; b < map.block_to_proc.size(); ++b) {
    EXPECT_NE(r.mapping.block_to_proc[b], 1u) << "block " << b << " left on the failed node";
    if (map.block_to_proc[b] == 1) {
      words += static_cast<std::int64_t>(f.partition.blocks()[b].iterations.size());
      EXPECT_TRUE(cube.are_neighbors(1, r.mapping.block_to_proc[b]));
    } else {
      EXPECT_EQ(r.mapping.block_to_proc[b], map.block_to_proc[b]) << "survivor block moved";
    }
  }
  ASSERT_GT(words, 0) << "fixture must place blocks on the failed node";
  EXPECT_EQ(r.migration_words, words);
  EXPECT_EQ(r.migration_cost.calc, 0);
  EXPECT_EQ(r.migration_cost.start, words);
  EXPECT_EQ(r.migration_cost.comm, words);
}

TEST(Remap, TimelineIsStepAware) {
  SimFixture f(workloads::sor2d(8, 8));
  Hypercube cube(2);
  Mapping map = modular_mapping(f.partition, 4);
  FaultSet s = FaultPlan::parse("node:1@6").resolve(cube);
  fault::RemapResult r = fault::remap_for_faults(f.partition, map, cube, s);
  for (std::size_t b = 0; b < map.block_to_proc.size(); ++b) {
    EXPECT_EQ(r.proc_at(b, 5), map.block_to_proc[b]);
    EXPECT_EQ(r.proc_at(b, 6), r.mapping.block_to_proc[b]);
  }
}

TEST(Remap, CascadingFailuresHandBlocksOn) {
  SimFixture f(workloads::sor2d(8, 8));
  Hypercube cube(3);
  Mapping map = modular_mapping(f.partition, 8);
  // Node 1 dies first; node 3 (a neighbor that may have inherited blocks)
  // dies later.  Nothing may end up on either.
  FaultSet s = FaultPlan::parse("node:1@2,node:3@5").resolve(cube);
  fault::RemapResult r = fault::remap_for_faults(f.partition, map, cube, s);
  for (std::size_t b = 0; b < r.mapping.block_to_proc.size(); ++b) {
    EXPECT_NE(r.mapping.block_to_proc[b], 1u);
    EXPECT_NE(r.mapping.block_to_proc[b], 3u);
  }
}

TEST(Remap, NoLiveNeighborThrows) {
  SimFixture f(workloads::sor2d(6, 6));
  Hypercube cube(2);
  Mapping map;
  map.processor_count = 4;
  map.block_to_proc.assign(f.partition.block_count(), 0);
  // 0's neighbors (1, 2) die with it; the blocks on 0 have nowhere to go.
  FaultSet s = FaultPlan::parse("node:0,node:1,node:2").resolve(cube);
  EXPECT_THROW(fault::remap_for_faults(f.partition, map, cube, s), FaultError);
}

// -------------------------------------------------- degraded simulation ----

TEST(DegradedSim, SingleNodeFailureOnSixteenNodeCube) {
  // Acceptance scenario: 16-node cube, node 5 failed from the start.
  SimFixture f(workloads::sor2d(12, 12));
  Hypercube cube(4);
  Mapping map = map_to_hypercube(f.tig, 4).mapping;
  MachineParams machine;

  for (CommAccounting acc : {CommAccounting::PaperMaxChannel, CommAccounting::PerStepBarrier,
                             CommAccounting::LinkContention}) {
    SimOptions clean;
    clean.accounting = acc;
    SimResult ok = simulate_execution(*f.q, f.tf, f.partition, map, cube, machine, clean);

    SimOptions damaged = clean;
    damaged.faults = FaultPlan::parse("node:5");
    SimResult deg = simulate_execution(*f.q, f.tf, f.partition, map, cube, machine, damaged);

    EXPECT_EQ(ok.failed_nodes, 0);
    EXPECT_EQ(deg.failed_nodes, 1);
    EXPECT_GT(deg.migrated_blocks, 0);
    EXPECT_GT(deg.migration_cost.start, 0);
    EXPECT_GT(deg.time, ok.time) << "accounting mode " << static_cast<int>(acc);
  }
}

TEST(DegradedSim, FailedLinkReroutesUnderContention) {
  SimFixture f(workloads::sor2d(10, 10));
  Hypercube cube(3);
  Mapping map = map_to_hypercube(f.tig, 3).mapping;
  MachineParams machine;
  SimOptions opts;
  opts.accounting = CommAccounting::LinkContention;
  SimResult ok = simulate_execution(*f.q, f.tf, f.partition, map, cube, machine, opts);

  // Fail every cube edge incident to proc 0's dimension-0 link; traffic
  // crossing it must detour.
  opts.faults = FaultPlan::parse("link:0-1");
  SimResult deg = simulate_execution(*f.q, f.tf, f.partition, map, cube, machine, opts);
  EXPECT_EQ(deg.failed_links, 1);
  EXPECT_EQ(deg.failed_nodes, 0);
  EXPECT_EQ(deg.migrated_blocks, 0);
  EXPECT_GT(deg.rerouted_messages, 0) << "traffic crossed 0-1, so detours must happen";
  // Detoured traffic can land on otherwise-idle links, so the busiest-link
  // total — and with it the contention cost — need not grow; it must never
  // shrink.
  EXPECT_GE(deg.time, ok.time);
}

TEST(DegradedSim, FaultsOnNonHypercubeThrow) {
  SimFixture f(workloads::sor2d(6, 6));
  Mesh2D mesh(2, 2);
  Mapping map;
  map.processor_count = 4;
  map.block_to_proc.assign(f.partition.block_count(), 0);
  MachineParams machine;
  SimOptions opts;
  opts.faults = FaultPlan::parse("node:1");
  EXPECT_THROW(simulate_execution(*f.q, f.tf, f.partition, map, mesh, machine, opts),
               FaultError);
}

TEST(DegradedSim, FaultFreePlanMatchesBaseline) {
  SimFixture f(workloads::matrix_vector(8));
  Hypercube cube(2);
  Mapping map = map_to_hypercube(f.tig, 2).mapping;
  MachineParams machine;
  SimResult a = simulate_execution(*f.q, f.tf, f.partition, map, cube, machine, {});
  SimOptions opts;  // default-constructed plan: empty
  SimResult b = simulate_execution(*f.q, f.tf, f.partition, map, cube, machine, opts);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(b.failed_nodes, 0);
  EXPECT_EQ(b.rerouted_messages, 0);
}

// ------------------------------------------------------------- properties --

class FaultPlanProperty : public ::testing::TestWithParam<int> {};

TEST_P(FaultPlanProperty, DegradedCostNeverBeatsFaultFree) {
  const int seed = GetParam();
  SimFixture f(workloads::sor2d(10, 10));
  Hypercube cube(3);
  Mapping map = map_to_hypercube(f.tig, 3).mapping;
  MachineParams machine;
  for (CommAccounting acc :
       {CommAccounting::PaperMaxChannel, CommAccounting::LinkContention}) {
    SimOptions opts;
    opts.accounting = acc;
    SimResult ok = simulate_execution(*f.q, f.tf, f.partition, map, cube, machine, opts);
    opts.faults = FaultPlan::parse("rand:" + std::to_string(seed) + ":1n1l");
    SimResult deg = simulate_execution(*f.q, f.tf, f.partition, map, cube, machine, opts);
    EXPECT_GE(deg.time, ok.time) << "seed " << seed << " acc " << static_cast<int>(acc);
  }
}

TEST_P(FaultPlanProperty, RemappedParallelRunMatchesSequential) {
  const int seed = GetParam();
  SimFixture f(workloads::sor2d(8, 8));
  Hypercube cube(3);
  Mapping map = map_to_hypercube(f.tig, 3).mapping;
  FaultSet s = FaultPlan::parse("rand:" + std::to_string(seed) + ":2n").resolve(cube);
  fault::RemapResult r = fault::remap_for_faults(f.partition, map, cube, s);
  ArrayStore seq = run_sequential(f.nest);
  ParallelRunResult par = run_parallel(f.nest, *f.q, f.tf, f.partition, r.mapping, f.deps);
  EquivalenceReport rep = compare_stores(seq, par.written);
  EXPECT_TRUE(rep.equal) << "seed " << seed << ": " << rep.first_mismatch;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultPlanProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace hypart
