// Compile-and-link check of the umbrella header plus the cross-module
// conveniences that only it exercises together.
#include "hypart.hpp"

#include <gtest/gtest.h>

namespace hypart {
namespace {

TEST(Umbrella, EndToEndThroughSingleInclude) {
  LoopNest nest = parse_loop_nest(R"(
    loop tiny {
      for i = 1 to 6
      for j = 1 to 6
      A[i, j] = (A[i-1, j] + A[i, j-1]) * 0.5;
    }
  )");
  PipelineConfig cfg;
  cfg.cube_dim = 1;
  cfg.mapping.weighted = true;  // weighted bisection via the pipeline config
  PipelineResult r = run_pipeline(nest, cfg);
  EXPECT_TRUE(r.exact_cover);
  EXPECT_TRUE(r.theorem1);
  EXPECT_EQ(r.mapping.mapping.processor_count, 2u);

  // Cross-module round trip: unparse -> parse -> execute == original.
  LoopNest back = parse_loop_nest(unparse_loop_nest(nest));
  EXPECT_TRUE(compare_stores(run_sequential(nest), run_sequential(back)).equal);

  // JSON export of the weighted run is well-formed enough to contain the
  // validation block.
  std::string json = pipeline_result_to_json(nest, r);
  EXPECT_NE(json.find("\"theorem1\":true"), std::string::npos);
}

TEST(Umbrella, PipelineWeightedOptionReachesMapper) {
  // With wildly uneven block sizes the weighted option must not worsen the
  // bottleneck load relative to count-splitting.
  LoopNest mv = workloads::matrix_vector(24);
  PipelineConfig plain;
  plain.cube_dim = 2;
  plain.time_function = IntVec{1, 1};
  PipelineConfig weighted = plain;
  weighted.mapping.weighted = true;
  PipelineResult rp = run_pipeline(mv, plain);
  PipelineResult rw = run_pipeline(mv, weighted);
  EXPECT_LE(rw.sim.compute_bottleneck.calc, rp.sim.compute_bottleneck.calc);
}

}  // namespace
}  // namespace hypart
