// run_parallel robustness: the stall watchdog turns a deadlocked schedule
// into a typed StallError with a per-worker diagnostic dump instead of a
// hang, and delivery to a dead worker's mailbox surfaces as
// WorkerDeathError after capped retries.
#include "exec/parallel_runtime.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/error.hpp"
#include "mapping/hypercube_map.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

/// A 4-iteration chain A[i] = A[i-1] + 1 with singleton blocks mapped
/// alternately onto two processors.  With the (invalid, deliberately
/// supplied) time function Π = (-1) both workers' first vertex awaits a
/// message the other worker will only send later: a circular wait the
/// watchdog must detect.  With the valid Π = (1) the same fixture runs
/// fine — and proc 0 provably sends to proc 1, which the worker-death
/// tests exploit.
struct ChainFixture {
  LoopNest nest;
  DependenceInfo deps;
  std::unique_ptr<ComputationStructure> q;
  Partition partition;
  Mapping mapping;

  ChainFixture()
      : nest(LoopNestBuilder("chain")
                 .loop("i", 0, 3)
                 .assign("S", "A", {idx(0)}, ref("A", {idx(0) - 1}) + constant(1.0))
                 .build()) {
    deps = analyze_dependences(nest);
    IndexSet is(nest);
    q = std::make_unique<ComputationStructure>(is.points(), deps.distance_vectors());
    std::vector<std::size_t> labels(q->vertices().size());
    for (std::size_t v = 0; v < labels.size(); ++v) labels[v] = v;  // singleton blocks
    partition = Partition::from_labels(*q, labels);
    mapping.processor_count = 2;
    mapping.block_to_proc.resize(partition.block_count());
    for (std::size_t b = 0; b < partition.block_count(); ++b)
      mapping.block_to_proc[b] = partition.blocks()[b].iterations.front() % 2;
  }
};

TEST(Watchdog, DeadlockedScheduleRaisesStallError) {
  ChainFixture f;
  TimeFunction backwards{{-1}};  // reverses execution order per processor
  ParallelRunOptions opts;
  opts.recv_timeout_ms = 300;
  try {
    run_parallel(f.nest, *f.q, backwards, f.partition, f.mapping, f.deps, opts);
    FAIL() << "deadlocked schedule must not terminate normally";
  } catch (const StallError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Stall);
    EXPECT_EQ(e.exit_code(), 75);
    EXPECT_NE(std::string(e.what()).find("stall watchdog"), std::string::npos);
    // The diagnostics name every worker and what it is blocked on.
    EXPECT_NE(e.diagnostics().find("proc 0"), std::string::npos);
    EXPECT_NE(e.diagnostics().find("proc 1"), std::string::npos);
    EXPECT_NE(e.diagnostics().find("blocked on vertex"), std::string::npos);
  }
}

TEST(Watchdog, StallEmitsMetric) {
  ChainFixture f;
  obs::MetricsRegistry metrics;
  ParallelRunOptions opts;
  opts.recv_timeout_ms = 300;
  opts.obs.metrics = &metrics;
  EXPECT_THROW(run_parallel(f.nest, *f.q, TimeFunction{{-1}}, f.partition, f.mapping, f.deps,
                            opts),
               StallError);
  obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("fault.stalls_detected"), 1);
}

TEST(Watchdog, ValidScheduleStillRunsUnderWatchdog) {
  ChainFixture f;
  ParallelRunOptions opts;
  opts.recv_timeout_ms = 5000;
  ParallelRunResult par =
      run_parallel(f.nest, *f.q, TimeFunction{{1}}, f.partition, f.mapping, f.deps, opts);
  ArrayStore seq = run_sequential(f.nest);
  EXPECT_TRUE(compare_stores(seq, par.written).equal);
  EXPECT_EQ(par.stats.messages_sent, 3);  // every chain link crosses procs
  EXPECT_GE(par.stats.max_mailbox_depth, 1);
}

TEST(Watchdog, DeadWorkerRaisesWorkerDeathError) {
  ChainFixture f;
  ParallelRunOptions opts;
  opts.dead_workers = {1};  // proc 1 dies at startup; proc 0 must send to it
  try {
    run_parallel(f.nest, *f.q, TimeFunction{{1}}, f.partition, f.mapping, f.deps, opts);
    FAIL() << "delivery to a dead worker must abort the run";
  } catch (const WorkerDeathError& e) {
    EXPECT_EQ(e.kind(), ErrorKind::WorkerDeath);
    EXPECT_EQ(e.exit_code(), 76);
    EXPECT_NE(std::string(e.what()).find("dead worker 1"), std::string::npos);
  }
}

TEST(Watchdog, DeadWorkerEmitsMetric) {
  ChainFixture f;
  obs::MetricsRegistry metrics;
  ParallelRunOptions opts;
  opts.dead_workers = {1};  // proc 0 sends A[0] into proc 1's closed mailbox
  opts.obs.metrics = &metrics;
  EXPECT_THROW(run_parallel(f.nest, *f.q, TimeFunction{{1}}, f.partition, f.mapping, f.deps,
                            opts),
               WorkerDeathError);
  EXPECT_EQ(metrics.snapshot().counters.at("fault.worker_deaths"), 1);
}

TEST(Watchdog, BadOptionsAreConfigErrors) {
  ChainFixture f;
  ParallelRunOptions opts;
  opts.dead_workers = {7};  // out of range for 2 procs
  EXPECT_THROW(run_parallel(f.nest, *f.q, TimeFunction{{1}}, f.partition, f.mapping, f.deps,
                            opts),
               Error);
  ParallelRunOptions opts2;
  opts2.delivery_attempts = 0;
  EXPECT_THROW(run_parallel(f.nest, *f.q, TimeFunction{{1}}, f.partition, f.mapping, f.deps,
                            opts2),
               Error);
}

TEST(Watchdog, MailboxDepthReportedOnRealWorkload) {
  // Satellite check for ParallelRunStats::max_mailbox_depth on a workload
  // with real cross-processor traffic.
  LoopNest nest = workloads::sor2d(8, 8);
  DependenceInfo deps = analyze_dependences(nest);
  IndexSet is(nest);
  ComputationStructure q(is.points(), deps.distance_vectors());
  TimeFunction tf = *search_time_function(q);
  ProjectedStructure ps(q, tf);
  Grouping g = Grouping::compute(ps);
  Partition part = Partition::build(q, g);
  TaskInteractionGraph tig = TaskInteractionGraph::from_partition(q, part, g);
  Mapping map = map_to_hypercube(tig, 2).mapping;

  obs::MetricsRegistry metrics;
  ParallelRunOptions opts;
  opts.obs.metrics = &metrics;
  ParallelRunResult par = run_parallel(nest, q, tf, part, map, deps, opts);
  ASSERT_GT(par.stats.messages_sent, 0);
  EXPECT_GE(par.stats.max_mailbox_depth, 1);
  obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.gauges.at("runtime.max_mailbox_depth"),
            static_cast<double>(par.stats.max_mailbox_depth));
}

}  // namespace
}  // namespace hypart
