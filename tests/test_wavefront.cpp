#include "transform/wavefront.hpp"

#include <gtest/gtest.h>

#include "workloads/workloads.hpp"

namespace hypart {
namespace {

TEST(Wavefront, CompletionIsUnimodularWithPiFirstRow) {
  for (const IntVec& pi : {IntVec{1, 1}, IntVec{1, 2}, IntVec{2, 3}, IntVec{1, 1, 1},
                           IntVec{1, 2, 3}, IntVec{3, 1, 2}, IntVec{1, -1, 2}}) {
    WavefrontTransform wt = make_wavefront_transform(TimeFunction{pi});
    EXPECT_EQ(wt.u.row(0), pi) << to_string(pi);
    EXPECT_EQ(std::abs(int_det(wt.u)), 1) << to_string(pi);
    // U * U^{-1} == I.
    EXPECT_EQ(wt.u.multiplied(wt.u_inverse), IntMat::identity(pi.size())) << to_string(pi);
  }
}

TEST(Wavefront, NonPrimitivePiRejected) {
  EXPECT_THROW(make_wavefront_transform(TimeFunction{{2, 2}}), std::invalid_argument);
  EXPECT_THROW(make_wavefront_transform(TimeFunction{{3, 6, 9}}), std::invalid_argument);
  EXPECT_THROW(make_wavefront_transform(TimeFunction{{}}), std::invalid_argument);
}

TEST(Wavefront, ApplyInvertRoundTrip) {
  WavefrontTransform wt = make_wavefront_transform(TimeFunction{{1, 2, 3}});
  for (const IntVec& p : {IntVec{0, 0, 0}, IntVec{1, -2, 5}, IntVec{7, 7, 7}}) {
    EXPECT_EQ(wt.invert(wt.apply(p)), p);
    // First transformed coordinate is the hyperplane step.
    EXPECT_EQ(wt.apply(p)[0], dot(IntVec{1, 2, 3}, p));
  }
}

TEST(Wavefront, TransformedDependencesAdvanceInTime) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::example_l1());
  WavefrontTransform wt = make_wavefront_transform(TimeFunction{{1, 1}});
  for (const IntVec& td : wt.transform_dependences(q.dependences()))
    EXPECT_GT(td[0], 0);  // time strictly advances (validity of Π)
}

TEST(Wavefront, SlicesMatchScheduleProfile) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::example_l1());
  TimeFunction tf{{1, 1}};
  WavefrontTransform wt = make_wavefront_transform(tf);
  auto slices = wavefront_slices(wt, q);
  ScheduleProfile profile = profile_schedule(tf, q.vertices());
  EXPECT_EQ(slices.size(), profile.step_count);
  for (const auto& [step, pts] : slices)
    EXPECT_EQ(pts.size(), profile.points_per_step.at(step));
  // Total across slices covers the domain.
  std::size_t total = 0;
  for (const auto& [step, pts] : slices) total += pts.size();
  EXPECT_EQ(total, q.vertices().size());
}

TEST(Wavefront, SlicesPointsDistinct) {
  // Spatial coordinates within a step must be unique (U is a bijection).
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication(2));
  WavefrontTransform wt = make_wavefront_transform(TimeFunction{{1, 1, 1}});
  for (const auto& [step, pts] : wavefront_slices(wt, q))
    for (std::size_t i = 1; i < pts.size(); ++i) EXPECT_LT(pts[i - 1], pts[i]);
}

TEST(Wavefront, LoopToStringStructure) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::example_l1());
  WavefrontTransform wt = make_wavefront_transform(TimeFunction{{1, 1}});
  std::string s = wavefront_loop_to_string(wt, q, {"i", "j"});
  EXPECT_NE(s.find("for t = 0 to 6"), std::string::npos);
  EXPECT_NE(s.find("t = 3: forall 4 iterations"), std::string::npos);
  EXPECT_NE(s.find("(0,0)"), std::string::npos);
  // Truncation marker for wide steps.
  ComputationStructure big = ComputationStructure::from_loop(workloads::matrix_vector(12));
  WavefrontTransform wt2 = make_wavefront_transform(TimeFunction{{1, 1}});
  EXPECT_NE(wavefront_loop_to_string(wt2, big).find("..."), std::string::npos);
}

class WavefrontProperty : public ::testing::TestWithParam<int> {};

TEST_P(WavefrontProperty, RandomPiCompletions) {
  std::uint64_t state = static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17u;
  auto next = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::int64_t>((state >> 33) % 9) - 4;
  };
  for (std::size_t n : {2u, 3u, 4u}) {
    IntVec pi(n);
    do {
      for (std::size_t k = 0; k < n; ++k) pi[k] = next();
    } while (content(pi) != 1);
    WavefrontTransform wt = make_wavefront_transform(TimeFunction{pi});
    EXPECT_EQ(wt.u.row(0), pi);
    EXPECT_EQ(std::abs(int_det(wt.u)), 1);
    EXPECT_EQ(wt.u.multiplied(wt.u_inverse), IntMat::identity(n));
    EXPECT_EQ(wt.u_inverse.multiplied(wt.u), IntMat::identity(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WavefrontProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace hypart
