#include "mapping/gray.hpp"

#include <gtest/gtest.h>

namespace hypart {
namespace {

TEST(Gray, EncodeFirstEight) {
  // Classic 3-bit reflected Gray sequence.
  std::vector<std::uint64_t> expected = {0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100};
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(gray_encode(i), expected[i]) << i;
}

TEST(Gray, DecodeInvertsEncode) {
  for (std::uint64_t i = 0; i < 4096; ++i) EXPECT_EQ(gray_decode(gray_encode(i)), i);
  EXPECT_EQ(gray_decode(gray_encode(0xDEADBEEFULL)), 0xDEADBEEFULL);
}

TEST(Gray, ExhaustiveRoundTripTo16Bits) {
  // Exhaustive over the full 16-bit range, both directions: encode/decode
  // are mutually inverse bijections on [0, 2^16).
  for (std::uint64_t i = 0; i < (1ULL << 16); ++i) {
    ASSERT_EQ(gray_decode(gray_encode(i)), i) << i;
    ASSERT_EQ(gray_encode(gray_decode(i)), i) << i;
  }
}

TEST(Gray, DecodeCoversAllSixtyFourBits) {
  // The unrolled XOR-shift decode must fold across every bit position;
  // a decode that stopped at 32 bits would fail the top-bit cases.
  EXPECT_EQ(gray_decode(gray_encode(~0ULL)), ~0ULL);
  EXPECT_EQ(gray_decode(gray_encode(1ULL << 63)), 1ULL << 63);
  EXPECT_EQ(gray_decode(1ULL << 63), ~0ULL);  // prefix-XOR of the top bit
  EXPECT_EQ(gray_decode(gray_encode(0x8000000080000001ULL)), 0x8000000080000001ULL);
}

TEST(Gray, AdjacentCodesDifferInOneBit) {
  for (std::uint64_t i = 0; i + 1 < 1024; ++i)
    EXPECT_EQ(popcount64(gray_encode(i) ^ gray_encode(i + 1)), 1u) << i;
}

TEST(Gray, SequenceProperties) {
  std::vector<std::uint64_t> seq = gray_sequence(4);
  ASSERT_EQ(seq.size(), 16u);
  // All distinct and within range.
  std::vector<bool> seen(16, false);
  for (std::uint64_t g : seq) {
    ASSERT_LT(g, 16u);
    EXPECT_FALSE(seen[g]);
    seen[g] = true;
  }
  // Cyclic adjacency (last differs from first in one bit too).
  EXPECT_EQ(popcount64(seq.front() ^ seq.back()), 1u);
}

TEST(Gray, PopcountAndPowers) {
  EXPECT_EQ(popcount64(0), 0u);
  EXPECT_EQ(popcount64(0b1011), 3u);
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
}

TEST(Gray, Log2) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(1024), 10u);
  EXPECT_THROW(log2_floor(0), std::invalid_argument);
  EXPECT_EQ(log2_exact(8), 3u);
  EXPECT_THROW(log2_exact(12), std::invalid_argument);
}

TEST(Gray, ConcatGrayMatchesPaperExample3) {
  // Fig. 8: 2-bit Gray code for y, 1-bit for x; cluster with x-rank 0 and
  // y-rank 0 is processor 000.  Binary number = x bits then y bits.
  EXPECT_EQ(concat_gray({0, 0}, {1, 2}), 0b000u);
  EXPECT_EQ(concat_gray({0, 1}, {1, 2}), 0b001u);
  EXPECT_EQ(concat_gray({0, 2}, {1, 2}), 0b011u);
  EXPECT_EQ(concat_gray({0, 3}, {1, 2}), 0b010u);
  EXPECT_EQ(concat_gray({1, 0}, {1, 2}), 0b100u);
  EXPECT_EQ(concat_gray({1, 3}, {1, 2}), 0b110u);
}

TEST(Gray, ConcatGrayNeighborProperty) {
  // Clusters adjacent along one direction map to hypercube neighbors.
  std::vector<unsigned> bits = {2, 3};
  for (std::uint64_t a = 0; a < 4; ++a)
    for (std::uint64_t b = 0; b < 8; ++b) {
      std::uint64_t self = concat_gray({a, b}, bits);
      if (a + 1 < 4) {
        EXPECT_EQ(popcount64(self ^ concat_gray({a + 1, b}, bits)), 1u);
      }
      if (b + 1 < 8) {
        EXPECT_EQ(popcount64(self ^ concat_gray({a, b + 1}, bits)), 1u);
      }
    }
}

TEST(Gray, ConcatGrayValidation) {
  EXPECT_THROW(concat_gray({1, 2}, {1}), std::invalid_argument);   // size mismatch
  EXPECT_THROW(concat_gray({4}, {2}), std::invalid_argument);      // rank too big
  EXPECT_EQ(concat_gray({}, {}), 0u);
}

}  // namespace
}  // namespace hypart
