#include "schedule/hyperplane.hpp"

#include <gtest/gtest.h>

#include "workloads/workloads.hpp"

namespace hypart {
namespace {

TEST(TimeFunctionTest, StepAndNorm) {
  TimeFunction tf{{1, 1}};
  EXPECT_EQ(tf.step_of({2, 3}), 5);
  EXPECT_EQ(tf.norm2(), 2);
  EXPECT_EQ(tf.to_string(), "(1, 1)");
}

TEST(Validity, L1UniformIsValid) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::example_l1());
  EXPECT_TRUE(is_valid_time_function(TimeFunction{{1, 1}}, q.dependences()));
  // (1,0) fails: d=(0,1) has Π·d = 0.
  EXPECT_FALSE(is_valid_time_function(TimeFunction{{1, 0}}, q.dependences()));
  // (1,-1) fails on (1,1)? Π·(1,1) = 0 -> invalid.
  EXPECT_FALSE(is_valid_time_function(TimeFunction{{1, -1}}, q.dependences()));
  EXPECT_FALSE(is_valid_time_function(TimeFunction{{0, 0}}, q.dependences()));
  EXPECT_FALSE(is_valid_time_function(TimeFunction{{}}, q.dependences()));
}

TEST(Validity, MatmulUniformIsValid) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication(2));
  EXPECT_TRUE(is_valid_time_function(TimeFunction{{1, 1, 1}}, q.dependences()));
  EXPECT_FALSE(is_valid_time_function(TimeFunction{{1, 1, 0}}, q.dependences()));
}

TEST(Profile, L1Hyperplanes) {
  // Fig. 1: hyperplanes i+j = 0..6 on the 4x4 domain; widest has 4 points.
  ComputationStructure q = ComputationStructure::from_loop(workloads::example_l1());
  ScheduleProfile p = profile_schedule(TimeFunction{{1, 1}}, q.vertices());
  EXPECT_EQ(p.first_step, 0);
  EXPECT_EQ(p.last_step, 6);
  EXPECT_EQ(p.step_count, 7u);
  EXPECT_EQ(p.span(), 7);
  EXPECT_EQ(p.max_parallelism, 4u);
  EXPECT_EQ(p.points_per_step.at(0), 1u);
  EXPECT_EQ(p.points_per_step.at(3), 4u);
  EXPECT_EQ(p.points_per_step.at(6), 1u);
}

TEST(Profile, EmptyPoints) {
  ScheduleProfile p = profile_schedule(TimeFunction{{1}}, {});
  EXPECT_EQ(p.step_count, 0u);
  EXPECT_EQ(p.max_parallelism, 0u);
}

TEST(Search, FindsOptimalForL1) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::example_l1());
  auto tf = search_time_function(q);
  ASSERT_TRUE(tf.has_value());
  // (1,1) has span 7; no valid Π in the box does better (dependences force
  // positive components).
  EXPECT_TRUE(is_valid_time_function(*tf, q.dependences()));
  ScheduleProfile p = profile_schedule(*tf, q.vertices());
  EXPECT_EQ(p.span(), 7);
  EXPECT_EQ(tf->pi, (IntVec{1, 1}));
}

TEST(Search, FindsOptimalForMatmul) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication(3));
  auto tf = search_time_function(q);
  ASSERT_TRUE(tf.has_value());
  EXPECT_EQ(tf->pi, (IntVec{1, 1, 1}));
  EXPECT_EQ(profile_schedule(*tf, q.vertices()).span(), 10);
}

TEST(Search, RespectsSearchBox) {
  // Dependences {(2,-1), (-1,2)} require Π with both components positive and
  // within ratio (1/2, 2); Π=(1,1) works.  A box of 0 coefficients can't.
  ComputationStructure q({{0, 0}, {1, 1}}, {{2, -1}, {-1, 2}});
  TimeFunctionSearchOptions opts;
  opts.max_coefficient = 0;
  EXPECT_FALSE(search_time_function(q, opts).has_value());
  opts.max_coefficient = 1;
  auto tf = search_time_function(q, opts);
  ASSERT_TRUE(tf.has_value());
  EXPECT_EQ(tf->pi, (IntVec{1, 1}));
}

TEST(Search, NonnegativeRestriction) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::sor2d(4, 4));
  TimeFunctionSearchOptions opts;
  opts.nonnegative_only = true;
  auto tf = search_time_function(q, opts);
  ASSERT_TRUE(tf.has_value());
  for (std::int64_t c : tf->pi) EXPECT_GE(c, 0);
}

TEST(Search, NegativeCoefficientWhenBeneficial) {
  // Dependence (1,-1) only: Π=(1,0) is valid with span N; Π=(1,-1)
  // normalizes… search should find a valid Π regardless of sign structure.
  ComputationStructure q({{0, 0}, {0, 1}, {1, 0}, {1, 1}}, {{1, -1}});
  auto tf = search_time_function(q);
  ASSERT_TRUE(tf.has_value());
  EXPECT_GT(dot(tf->pi, {1, -1}), 0);
}

TEST(UniformTf, ValidAndInvalid) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::example_l1());
  TimeFunction tf = uniform_time_function(q.dependences(), 2);
  EXPECT_EQ(tf.pi, (IntVec{1, 1}));
  // Dependence with a negative total: (1,-2) has Π·d = -1 < 0.
  EXPECT_THROW(uniform_time_function({{1, -2}}, 2), std::invalid_argument);
}

TEST(Search, SpanNeverBelowCriticalPath) {
  // The longest dependence chain (in arcs) + 1 lower-bounds any linear
  // schedule's step count.
  for (auto nest : {workloads::example_l1(), workloads::sor2d(4, 5)}) {
    ComputationStructure q = ComputationStructure::from_loop(nest);
    std::size_t critical = q.to_digraph().dag_longest_path();
    auto tf = search_time_function(q);
    ASSERT_TRUE(tf.has_value());
    EXPECT_GE(static_cast<std::size_t>(profile_schedule(*tf, q.vertices()).span()), critical + 1);
  }
}

class ValidityProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ValidityProperty, AllArcsRespectSchedule) {
  // For every arc (u, v) of the structure, step(v) > step(u) under a valid Π.
  std::int64_t n = GetParam();
  ComputationStructure q = ComputationStructure::from_loop(workloads::sor2d(n, n));
  auto tf = search_time_function(q);
  ASSERT_TRUE(tf.has_value());
  q.for_each_arc([&](const IntVec& src, const IntVec& dst, std::size_t) {
    EXPECT_LT(tf->step_of(src), tf->step_of(dst));
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, ValidityProperty, ::testing::Values(2, 3, 5));

}  // namespace
}  // namespace hypart
