#include "sim/machine.hpp"

#include <gtest/gtest.h>

namespace hypart {
namespace {

TEST(CostTest, ValueWithMachineParams) {
  MachineParams m{1.0, 50.0, 5.0};
  Cost c{100, 2, 10};
  EXPECT_DOUBLE_EQ(c.value(m), 100.0 + 100.0 + 50.0);
}

TEST(CostTest, Accumulation) {
  Cost a{1, 2, 3};
  Cost b{10, 20, 30};
  a += b;
  EXPECT_EQ(a, (Cost{11, 22, 33}));
  EXPECT_EQ((Cost{1, 0, 0} + Cost{0, 1, 1}), (Cost{1, 1, 1}));
}

TEST(CostTest, PaperStyleToString) {
  // Table I rendering: "786944 t_calc + 2046(t_start+t_comm)".
  Cost row{786944, 2046, 2046};
  EXPECT_EQ(row.to_string(), "786944 t_calc + 2046(t_start+t_comm)");
  Cost seq{2097152, 0, 0};
  EXPECT_EQ(seq.to_string(), "2097152 t_calc");
}

TEST(CostTest, ToStringMixedTerms) {
  EXPECT_EQ((Cost{0, 3, 7}).to_string(), "3 t_start + 7 t_comm");
  EXPECT_EQ((Cost{5, 0, 7}).to_string(), "5 t_calc + 7 t_comm");
  EXPECT_EQ((Cost{0, 4, 0}).to_string(), "4 t_start");
  EXPECT_EQ((Cost{}).to_string(), "0");
  EXPECT_EQ((Cost{0, 9, 9}).to_string(), "9(t_start+t_comm)");
}

TEST(CostTest, DefaultMachineReflectsCommOverhead) {
  // The paper's premise: message overhead dominates computation.
  MachineParams m;
  EXPECT_GT(m.t_start, 10.0 * m.t_calc);
}

}  // namespace
}  // namespace hypart
