#include "numeric/rat_matrix.hpp"

#include <gtest/gtest.h>

namespace hypart {
namespace {

RatVec rv(std::initializer_list<Rational> xs) { return RatVec(xs); }

TEST(RatVecOps, Basics) {
  RatVec a = rv({Rational(1, 2), Rational(1, 3)});
  RatVec b = rv({Rational(1, 2), Rational(2, 3)});
  EXPECT_EQ(add(a, b), rv({Rational(1), Rational(1)}));
  EXPECT_EQ(sub(b, a), rv({Rational(0), Rational(1, 3)}));
  EXPECT_EQ(scale(a, Rational(6)), rv({Rational(3), Rational(2)}));
  EXPECT_EQ(dot(a, b), Rational(1, 4) + Rational(2, 9));
  EXPECT_TRUE(is_zero(rv({Rational(0), Rational(0)})));
}

TEST(RatVecOps, DenominatorLcm) {
  EXPECT_EQ(denominator_lcm(rv({Rational(1, 3), Rational(2, 3), Rational(-1, 3)})), 3);
  EXPECT_EQ(denominator_lcm(rv({Rational(1, 2), Rational(1, 3)})), 6);
  EXPECT_EQ(denominator_lcm(rv({Rational(2), Rational(-5)})), 1);
  EXPECT_EQ(denominator_lcm(rv({Rational(0)})), 1);
}

TEST(RatMat, RankBasics) {
  RatMat id = RatMat::identity(3);
  EXPECT_EQ(id.rank(), 3u);

  RatMat singular = RatMat::from_rows({rv({Rational(1), Rational(2)}),
                                       rv({Rational(2), Rational(4)})});
  EXPECT_EQ(singular.rank(), 1u);
}

TEST(RatMat, RankOfMatmulProjectedDeps) {
  // D^p of matrix multiplication under Π = (1,1,1): rank must be 2 (paper).
  std::vector<RatVec> dp = {
      rv({Rational(-1, 3), Rational(2, 3), Rational(-1, 3)}),
      rv({Rational(2, 3), Rational(-1, 3), Rational(-1, 3)}),
      rv({Rational(-1, 3), Rational(-1, 3), Rational(2, 3)}),
  };
  EXPECT_EQ(rank_of(dp), 2u);
}

TEST(RatMat, Determinant) {
  RatMat m = RatMat::from_rows({rv({Rational(1, 2), Rational(1)}),
                                rv({Rational(1), Rational(4)})});
  EXPECT_EQ(m.det(), Rational(1));  // 1/2*4 - 1*1 = 1
  EXPECT_EQ(RatMat::identity(5).det(), Rational(1));
}

TEST(RatMat, SolveUnique) {
  RatMat a = RatMat::from_rows({rv({Rational(2), Rational(1)}),
                                rv({Rational(1), Rational(3)})});
  auto x = a.solve(rv({Rational(5), Rational(10)}));
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], Rational(1));
  EXPECT_EQ((*x)[1], Rational(3));
}

TEST(RatMat, SolveInconsistent) {
  RatMat a = RatMat::from_rows({rv({Rational(1), Rational(1)}),
                                rv({Rational(2), Rational(2)})});
  EXPECT_FALSE(a.solve(rv({Rational(1), Rational(3)})).has_value());
}

TEST(RatMat, SolveUnderdetermined) {
  RatMat a = RatMat::from_rows({rv({Rational(1), Rational(1)})});
  auto x = a.solve(rv({Rational(2)}));
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(dot(a.row(0), *x), Rational(2));
}

TEST(RatMat, Nullspace) {
  // Access matrix of C[i,j] in a 3-nest: nullspace is span{(0,0,1)}.
  RatMat f = RatMat::from_rows({rv({Rational(1), Rational(0), Rational(0)}),
                                rv({Rational(0), Rational(1), Rational(0)})});
  std::vector<RatVec> ns = f.nullspace();
  ASSERT_EQ(ns.size(), 1u);
  EXPECT_TRUE(is_zero(f.apply(ns[0])));
  EXPECT_EQ(ns[0][2], Rational(1));
}

TEST(RatMat, NullspaceFullRankEmpty) {
  EXPECT_TRUE(RatMat::identity(3).nullspace().empty());
}

TEST(RatMat, Inverse) {
  RatMat a = RatMat::from_rows({rv({Rational(2), Rational(1)}),
                                rv({Rational(1), Rational(1)})});
  auto inv = a.inverse();
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(a.multiplied(*inv), RatMat::identity(2));
  EXPECT_EQ(inv->multiplied(a), RatMat::identity(2));
}

TEST(RatMat, InverseSingular) {
  RatMat a = RatMat::from_rows({rv({Rational(1), Rational(2)}),
                                rv({Rational(2), Rational(4)})});
  EXPECT_FALSE(a.inverse().has_value());
}

TEST(RatMat, InSpan) {
  std::vector<RatVec> basis = {rv({Rational(1), Rational(0), Rational(1)}),
                               rv({Rational(0), Rational(1), Rational(1)})};
  EXPECT_TRUE(in_span(basis, rv({Rational(1), Rational(1), Rational(2)})));
  EXPECT_FALSE(in_span(basis, rv({Rational(0), Rational(0), Rational(1)})));
  EXPECT_TRUE(in_span(basis, rv({Rational(0), Rational(0), Rational(0)})));
  EXPECT_FALSE(in_span({}, rv({Rational(1)})));
  EXPECT_TRUE(in_span({}, rv({Rational(0)})));
}

TEST(RatMat, ApplyAndMultiplyAgree) {
  RatMat a = RatMat::from_rows({rv({Rational(1, 2), Rational(1, 3)}),
                                rv({Rational(2), Rational(-1)})});
  RatVec v = rv({Rational(6), Rational(9)});
  RatVec av = a.apply(v);
  RatMat vm = RatMat::from_cols({v});
  RatMat prod = a.multiplied(vm);
  EXPECT_EQ(prod.at(0, 0), av[0]);
  EXPECT_EQ(prod.at(1, 0), av[1]);
}

// Property: solve(A, A*x) recovers a solution whose image matches.
class RatSolveProperty : public ::testing::TestWithParam<int> {};

TEST_P(RatSolveProperty, SolveRecoversImage) {
  int seed = GetParam();
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 48271u + 3u;
  auto next = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::int64_t>((state >> 40) % 7) - 3;
  };
  RatMat a(3, 3);
  RatVec x(3);
  for (std::size_t r = 0; r < 3; ++r) {
    x[r] = Rational(next(), 2);
    for (std::size_t c = 0; c < 3; ++c) a.at(r, c) = Rational(next());
  }
  RatVec b = a.apply(x);
  auto sol = a.solve(b);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(a.apply(*sol), b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RatSolveProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace hypart
