// hypart::obs self-profiler tests: Span null-safety and inertness, the
// alloc/RSS argument payload, Profiler aggregation (including the
// wall-clock-only pid filter), and TeeSink fan-out.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace {

using namespace hypart::obs;

TEST(SpanTest, NullSinkIsInert) {
  // Must not crash, allocate trace state, or read any counters.
  Span span(nullptr, "phase");
  span.arg("k", std::int64_t{1});
}

TEST(SpanTest, EmitsOneCompleteEventWithProfileArgs) {
  ChromeTraceSink sink;
  {
    Span span(&sink, "stage", "pipeline");
    span.arg("items", std::int64_t{42});
  }
  EXPECT_EQ(sink.event_count(), 1u);
  std::string json = sink.str();
  EXPECT_NE(json.find("\"stage\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"items\":42"), std::string::npos);
  // The self-profiler dimensions ride along as args.
  EXPECT_NE(json.find("\"allocs\""), std::string::npos);
  EXPECT_NE(json.find("\"rss_peak_delta_kb\""), std::string::npos);
}

TEST(SpanTest, CountsAllocationsInsideTheSpan) {
  Profiler prof;
  {
    Span span(&prof, "allocating");
    // Defeat small-string optimization so the span sees real heap traffic.
    auto s = std::make_unique<std::string>(1024, 'x');
    ASSERT_EQ(s->size(), 1024u);
  }
  auto phases = prof.phases();
  ASSERT_EQ(phases.count("allocating"), 1u);
  EXPECT_GE(phases["allocating"].allocs, 1);
}

TEST(ThreadAllocCountTest, MonotoneAndCountsNew) {
  std::uint64_t before = thread_alloc_count();
  auto p = std::make_unique<int>(7);
  ASSERT_NE(p, nullptr);
  EXPECT_GT(thread_alloc_count(), before);
}

TEST(PeakRssTest, NonNegative) { EXPECT_GE(peak_rss_kb(), 0); }

TEST(ProfilerTest, AggregatesPerName) {
  Profiler prof;
  for (int i = 0; i < 3; ++i) Span span(&prof, "repeated", "cat");
  { Span span(&prof, "once", "cat"); }
  auto phases = prof.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases["repeated"].calls, 3);
  EXPECT_EQ(phases["once"].calls, 1);
  EXPECT_EQ(phases["repeated"].cat, "cat");
  EXPECT_GE(phases["repeated"].wall_us, phases["repeated"].max_us);
  EXPECT_GE(prof.wall_us("repeated"), 0.0);
  EXPECT_EQ(prof.wall_us("never-seen"), 0.0);
}

TEST(ProfilerTest, IgnoresSimulatedClockEvents) {
  // Simulated-time Complete events carry machine units, not microseconds;
  // folding them into a wall-clock profile would be nonsense.
  Profiler prof;
  emit_complete(&prof, "sim-phase", "sim", 0.0, 1000.0, kSimPid, 0);
  emit_complete(&prof, "wall-phase", "pipeline", 0.0, 5.0, kPipelinePid, 0);
  auto phases = prof.phases();
  EXPECT_EQ(phases.count("sim-phase"), 0u);
  EXPECT_EQ(phases.count("wall-phase"), 1u);
}

TEST(ProfilerTest, IgnoresNonCompleteEvents) {
  Profiler prof;
  emit_instant(&prof, "instant", "cat", 0.0, kPipelinePid, 0);
  emit_counter(&prof, "counter", 0.0, kPipelinePid, 1.0);
  EXPECT_TRUE(prof.phases().empty());
}

TEST(ProfilerTest, JsonIsNameOrderedArray) {
  Profiler prof;
  emit_complete(&prof, "b", "cat", 0.0, 1.0, kPipelinePid, 0);
  emit_complete(&prof, "a", "cat", 0.0, 2.0, kPipelinePid, 0);
  std::string json = prof.to_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  std::size_t a_pos = json.find("\"a\"");
  std::size_t b_pos = json.find("\"b\"");
  ASSERT_NE(a_pos, std::string::npos);
  ASSERT_NE(b_pos, std::string::npos);
  EXPECT_LT(a_pos, b_pos);
}

TEST(TeeSinkTest, ForwardsToAllSinksAndSkipsNulls) {
  ChromeTraceSink a;
  Profiler b;
  TeeSink tee({&a, nullptr, &b});
  { Span span(&tee, "both"); }
  tee.flush();
  EXPECT_EQ(a.event_count(), 1u);
  EXPECT_EQ(b.phases().count("both"), 1u);
}

}  // namespace
