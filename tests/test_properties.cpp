// Randomized property suite: generate random uniform-dependence loop nests,
// run the full Algorithm 1 + Algorithm 2 pipeline, and assert the paper's
// invariants on every one.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <set>

#include "core/pipeline.hpp"
#include "mapping/baseline_map.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

/// Deterministic random computational structure: a rectangular domain with
/// 1-3 random lexicographically-positive dependence vectors.
ComputationStructure random_structure(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dim_dist(2, 3);
  std::uniform_int_distribution<int> extent_dist(2, 5);
  std::uniform_int_distribution<int> comp_dist(-2, 2);
  std::uniform_int_distribution<int> ndeps_dist(1, 3);

  const int dim = dim_dist(rng);
  std::vector<std::pair<std::int64_t, std::int64_t>> bounds;
  for (int d = 0; d < dim; ++d) bounds.emplace_back(0, extent_dist(rng));

  std::set<IntVec> deps;
  int want = ndeps_dist(rng);
  int guard = 0;
  while (static_cast<int>(deps.size()) < want && guard++ < 100) {
    IntVec d(static_cast<std::size_t>(dim));
    for (int k = 0; k < dim; ++k) d[static_cast<std::size_t>(k)] = comp_dist(rng);
    if (is_zero(d)) continue;
    if (!lex_positive(d)) d = negate(d);
    deps.insert(d);
  }

  std::vector<IntVec> points;
  IntVec p(static_cast<std::size_t>(dim), 0);
  std::function<void(int)> rec = [&](int level) {
    if (level == dim) {
      points.push_back(p);
      return;
    }
    for (std::int64_t v = bounds[static_cast<std::size_t>(level)].first;
         v <= bounds[static_cast<std::size_t>(level)].second; ++v) {
      p[static_cast<std::size_t>(level)] = v;
      rec(level + 1);
    }
  };
  rec(0);
  return {points, {deps.begin(), deps.end()}};
}

class RandomStructureProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomStructureProperty, FullPipelineInvariants) {
  ComputationStructure q = random_structure(GetParam());
  std::optional<TimeFunction> tf = search_time_function(q);
  if (!tf) GTEST_SKIP() << "no valid small-integer time function for this dependence set";

  ProjectedStructure ps(q, *tf);
  Grouping g = Grouping::compute(ps);
  Partition p = Partition::build(q, g);

  // Invariant 1: exact cover.
  EXPECT_TRUE(check_exact_cover(q, p));
  // Invariant 2 (Theorem 1): no two block-mates share a hyperplane.
  EXPECT_TRUE(check_theorem1(q, *tf, p));
  // Invariant 3 (Theorem 2): out-degree bound.
  EXPECT_TRUE(check_theorem2(g).holds);
  // Invariant 4 (Lemmas 2, 3): per-direction fanout bounds.
  LemmaReport lr = check_lemmas(g);
  EXPECT_TRUE(lr.lemma2_holds);
  EXPECT_TRUE(lr.lemma3_holds);
  // Invariant 5: line populations partition the domain.
  std::size_t pop = 0;
  for (std::size_t i = 0; i < ps.point_count(); ++i) pop += ps.line_population(i);
  EXPECT_EQ(pop, q.vertices().size());
  // Invariant 6: all scaled projected points lie on the zero-hyperplane.
  for (const IntVec& pt : ps.points()) EXPECT_EQ(dot(pt, tf->pi), 0);
  // Invariant 7: partition statistics are conserved.
  PartitionStats stats = compute_partition_stats(q, p);
  EXPECT_EQ(stats.total_arcs, q.dependence_arc_count());
  EXPECT_EQ(stats.interblock_arcs + stats.intrablock_arcs, stats.total_arcs);
}

TEST_P(RandomStructureProperty, MappingAndSimulationInvariants) {
  ComputationStructure q = random_structure(GetParam() + 1000);
  std::optional<TimeFunction> tf = search_time_function(q);
  if (!tf) GTEST_SKIP();
  ProjectedStructure ps(q, *tf);
  Grouping g = Grouping::compute(ps);
  Partition p = Partition::build(q, g);
  TaskInteractionGraph tig = TaskInteractionGraph::from_partition(q, p, g);

  for (unsigned dim : {0u, 1u, 2u}) {
    HypercubeMappingResult hm = map_to_hypercube(tig, dim);
    // Every block assigned to a real processor.
    for (ProcId proc : hm.mapping.block_to_proc) EXPECT_LT(proc, std::size_t{1} << dim);
    // Cluster sizes balanced to within dim splits.
    std::size_t lo = SIZE_MAX, hi = 0, total = 0;
    for (const Cluster& c : hm.clusters) {
      lo = std::min(lo, c.vertices.size());
      hi = std::max(hi, c.vertices.size());
      total += c.vertices.size();
    }
    EXPECT_EQ(total, tig.vertex_count());
    if (tig.vertex_count() >= (std::size_t{1} << dim)) {
      EXPECT_LE(hi - lo, std::max<std::size_t>(dim, 1));
    }

    // Simulation conservation: per-proc iterations sum to |V|.
    Hypercube cube(dim);
    SimResult r = simulate_execution(q, *tf, p, hm.mapping, cube, MachineParams{}, SimOptions{});
    std::int64_t iters = 0;
    for (std::int64_t c : r.per_proc_iterations) iters += c;
    EXPECT_EQ(iters, static_cast<std::int64_t>(q.vertices().size()));
    // Words crossing processors never exceed total arcs.
    EXPECT_LE(r.words, static_cast<std::int64_t>(q.dependence_arc_count()));
    // Compute bottleneck at least fair share.
    std::int64_t fair = static_cast<std::int64_t>(q.vertices().size()) >>
                        dim;  // |V| / 2^dim, rounded down
    EXPECT_GE(r.compute_bottleneck.calc, fair);
  }
}

TEST_P(RandomStructureProperty, GroupingDeterministic) {
  ComputationStructure q = random_structure(GetParam() + 2000);
  std::optional<TimeFunction> tf = search_time_function(q);
  if (!tf) GTEST_SKIP();
  ProjectedStructure ps(q, *tf);
  Grouping a = Grouping::compute(ps);
  Grouping b = Grouping::compute(ps);
  ASSERT_EQ(a.group_count(), b.group_count());
  for (std::size_t i = 0; i < a.group_count(); ++i) {
    EXPECT_EQ(a.groups()[i].base, b.groups()[i].base);
    EXPECT_EQ(a.groups()[i].members(), b.groups()[i].members());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomStructureProperty, ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace hypart
