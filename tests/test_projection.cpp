#include "partition/projection.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workloads/workloads.hpp"

namespace hypart {
namespace {

ComputationStructure l1() { return ComputationStructure::from_loop(workloads::example_l1()); }
ComputationStructure mm(std::int64_t n = 3) {
  return ComputationStructure::from_loop(workloads::matrix_multiplication(n));
}

TEST(ProjectScaled, MatchesDefinition3) {
  // j^p = j - (j·Π / Π·Π) Π, scaled by s = Π·Π.
  TimeFunction tf{{1, 1}};
  // j = (3,0): j·Π = 3, j^p = (3,0) - 3/2(1,1) = (3/2, -3/2); scaled: (3,-3).
  EXPECT_EQ(project_scaled({3, 0}, tf), (IntVec{3, -3}));
  // j = (2,2) on the line of the origin: j^p = 0.
  EXPECT_EQ(project_scaled({2, 2}, tf), (IntVec{0, 0}));
}

TEST(ProjectScaled, OrthogonalToPi) {
  TimeFunction tf{{1, 2, 3}};
  IntVec p = project_scaled({4, -1, 7}, tf);
  EXPECT_EQ(dot(p, tf.pi), 0);
}

TEST(ProjectedStructure, L1SevenPoints) {
  // Paper: "We get seven projected points" for L1 with Π = (1,1).
  ComputationStructure q = l1();
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  EXPECT_EQ(ps.scale(), 2);
  EXPECT_EQ(ps.point_count(), 7u);

  // The paper's V^p (x2 scaling): (-3,3), (-2,2), (-1,1), (0,0), (1,-1),
  // (2,-2), (3,-3).
  std::set<IntVec> expected = {{-3, 3}, {-2, 2}, {-1, 1}, {0, 0}, {1, -1}, {2, -2}, {3, -3}};
  std::set<IntVec> actual(ps.points().begin(), ps.points().end());
  EXPECT_EQ(actual, expected);
}

TEST(ProjectedStructure, L1RationalCoordinates) {
  ComputationStructure q = l1();
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  // Point (-3,3) scaled is (-3/2, 3/2) in true coordinates.
  std::optional<std::size_t> id = ps.find_point({-3, 3});
  ASSERT_TRUE(id.has_value());
  RatVec r = ps.point_rational(*id);
  EXPECT_EQ(r[0], Rational(-3, 2));
  EXPECT_EQ(r[1], Rational(3, 2));
}

TEST(ProjectedStructure, L1ProjectedDeps) {
  // d1=(0,1) -> (-1/2,1/2); d2=(1,1) -> 0; d3=(1,0) -> (1/2,-1/2).
  ComputationStructure q = l1();
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  const std::vector<IntVec>& deps = q.dependences();
  ASSERT_EQ(deps.size(), 3u);
  for (std::size_t k = 0; k < deps.size(); ++k) {
    const IntVec& d = deps[k];
    const IntVec& dp = ps.projected_deps_scaled()[k];
    if (d == IntVec{0, 1}) {
      EXPECT_EQ(dp, (IntVec{-1, 1}));
    }
    if (d == IntVec{1, 1}) {
      EXPECT_EQ(dp, (IntVec{0, 0}));
    }
    if (d == IntVec{1, 0}) {
      EXPECT_EQ(dp, (IntVec{1, -1}));
    }
  }
}

TEST(ProjectedStructure, L1ReplicationFactors) {
  ComputationStructure q = l1();
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  for (std::size_t k = 0; k < q.dependences().size(); ++k) {
    if (is_zero(ps.projected_deps_scaled()[k]))
      EXPECT_EQ(ps.replication_factor(k), 1);
    else
      EXPECT_EQ(ps.replication_factor(k), 2);
  }
}

TEST(ProjectedStructure, L1LinePopulations) {
  // Line populations on the 4x4 domain: 1,2,3,4,3,2,1.
  ComputationStructure q = l1();
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  std::multiset<std::size_t> pops;
  for (std::size_t i = 0; i < ps.point_count(); ++i) pops.insert(ps.line_population(i));
  EXPECT_EQ(pops, (std::multiset<std::size_t>{1, 1, 2, 2, 3, 3, 4}));
  // Populations sum to |J^n|.
  std::size_t total = 0;
  for (std::size_t i = 0; i < ps.point_count(); ++i) total += ps.line_population(i);
  EXPECT_EQ(total, 16u);
}

TEST(ProjectedStructure, Matmul37Points) {
  // Paper Fig. 5: "There are 37 projected points".
  ComputationStructure q = mm();
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  EXPECT_EQ(ps.scale(), 3);
  EXPECT_EQ(ps.point_count(), 37u);
}

TEST(ProjectedStructure, MatmulProjectedDeps) {
  // D^p = {(-1/3,2/3,-1/3), (2/3,-1/3,-1/3), (-1/3,-1/3,2/3)} (Fig. 5).
  ComputationStructure q = mm();
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  std::set<IntVec> expected = {{-1, 2, -1}, {2, -1, -1}, {-1, -1, 2}};
  std::set<IntVec> actual(ps.projected_deps_scaled().begin(), ps.projected_deps_scaled().end());
  EXPECT_EQ(actual, expected);
  for (std::size_t k = 0; k < 3; ++k) EXPECT_EQ(ps.replication_factor(k), 3);
}

TEST(ProjectedStructure, MatmulBeta2) {
  // rank(mat(D^p)) = 2 (paper's grouping-phase comment).
  ComputationStructure q = mm();
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  EXPECT_EQ(ps.projected_rank(), 2u);
}

TEST(ProjectedStructure, PointOfRoundTrips) {
  ComputationStructure q = l1();
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  for (const IntVec& v : q.vertices()) {
    std::size_t id = ps.point_of(v);
    EXPECT_EQ(ps.points()[id], project_scaled(v, TimeFunction{{1, 1}}));
  }
}

TEST(ProjectedStructure, InvalidTimeFunctionRejected) {
  ComputationStructure q = l1();
  EXPECT_THROW(ProjectedStructure(q, TimeFunction{{1, 0}}), std::invalid_argument);
  EXPECT_THROW(ProjectedStructure(q, TimeFunction{{1, 1, 1}}), std::invalid_argument);
}

TEST(ProjectedStructure, DigraphArcsRespectDeps) {
  ComputationStructure q = l1();
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  Digraph g = ps.to_digraph();
  EXPECT_EQ(g.vertex_count(), 7u);
  // The 1-D projected structure is a path: 6 forward + 6 backward relations
  // from the two nonzero projected deps.
  EXPECT_EQ(g.edge_count(), 12u);
}

TEST(ProjectedStructure, MatvecOneDimensional) {
  // Section IV: 2M-1 projected points for the M x M matvec.
  const std::int64_t m = 6;
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_vector(m));
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  EXPECT_EQ(ps.point_count(), static_cast<std::size_t>(2 * m - 1));
}

class ProjectionProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ProjectionProperty, LinePopulationTimesStepsCoversDomain) {
  std::int64_t n = GetParam();
  ComputationStructure q = ComputationStructure::from_loop(workloads::sor2d(n, n));
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  std::size_t total = 0;
  for (std::size_t i = 0; i < ps.point_count(); ++i) total += ps.line_population(i);
  EXPECT_EQ(total, q.vertices().size());
  // All scaled points lie on the zero-hyperplane.
  for (const IntVec& p : ps.points()) EXPECT_EQ(dot(p, IntVec{1, 1}), 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ProjectionProperty, ::testing::Values(2, 3, 4, 6, 9));

}  // namespace
}  // namespace hypart
