#include "frontend/printer.hpp"

#include <gtest/gtest.h>

#include "exec/interpreter.hpp"
#include "frontend/parser.hpp"
#include "loop/dependence.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

TEST(Printer, EmitsParsableSource) {
  std::string src = unparse_loop_nest(workloads::example_l1());
  EXPECT_NE(src.find("loop L1 {"), std::string::npos);
  EXPECT_NE(src.find("for i = 0 to 3"), std::string::npos);
  EXPECT_NE(src.find("S1: A[i+1, j+1] ="), std::string::npos);
  LoopNest back = parse_loop_nest(src);
  EXPECT_EQ(back.depth(), 2u);
}

TEST(Printer, NonExecutableRejected) {
  LoopNest plain = LoopNestBuilder("p")
                       .loop("i", 0, 3)
                       .statement("S")
                       .write("A", {idx(0)})
                       .build();
  EXPECT_THROW(unparse_loop_nest(plain), std::invalid_argument);
}

TEST(Printer, NameSanitization) {
  std::string src = unparse_loop_nest(workloads::transitive_closure(3));
  EXPECT_NE(src.find("loop transitive_closure {"), std::string::npos);
  LoopNest back = parse_loop_nest(src);
  EXPECT_EQ(back.name(), "transitive_closure");
}

TEST(Lexer, ScientificNotation) {
  LoopNest nest = parse_loop_nest(R"(
    loop sci {
      for i = 0 to 3
      A[i] = A[i - 1] * 2.5e-1 + 1e2;
    }
  )");
  ArrayStore out = run_sequential(nest);
  // A[0] = init(A,-1)*0.25 + 100.
  double expect = default_init("A", {-1}) * 0.25 + 100.0;
  EXPECT_NEAR(*out.load("A", {0}), expect, 1e-12);
}

class RoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripProperty, ParseOfUnparsePreservesSemantics) {
  LoopNest nest = [&]() -> LoopNest {
    switch (GetParam()) {
      case 0: return workloads::example_l1(5);
      case 1: return workloads::matrix_vector(6);
      case 2: return workloads::matrix_multiplication(3);
      case 3: return workloads::sor2d(5, 6);
      case 4: return workloads::convolution1d(8, 4);
      case 5: return workloads::wavefront3d(3);
      case 6: return workloads::transitive_closure(3);
      case 7: return workloads::strided_recurrence(6, 2);
      default: return workloads::dft_horner(6);
    }
  }();
  LoopNest back = parse_loop_nest(unparse_loop_nest(nest));

  // Same structure.
  EXPECT_EQ(back.depth(), nest.depth());
  EXPECT_EQ(back.statements().size(), nest.statements().size());
  // Same dependences.
  EXPECT_EQ(analyze_dependences(back).distance_vectors(),
            analyze_dependences(nest).distance_vectors());
  // Same executed values (constants round-trip via shortest representation).
  ArrayStore expected = run_sequential(nest);
  ArrayStore actual = run_sequential(back);
  EquivalenceReport rep = compare_stores(expected, actual, 1e-12);
  EXPECT_TRUE(rep.equal) << nest.name() << ": " << rep.first_mismatch;
}

INSTANTIATE_TEST_SUITE_P(Workloads, RoundTripProperty, ::testing::Range(0, 9));

}  // namespace
}  // namespace hypart
