#include "systolic/systolic.hpp"

#include <gtest/gtest.h>

#include "workloads/workloads.hpp"

namespace hypart {
namespace {

TEST(Systolic, MatvecLinearArray) {
  // The 1-D systolic array for M x M matvec has 2M-1 PEs and two link
  // directions (the classic linear array of the paper's ref [11]).
  const std::int64_t m = 8;
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_vector(m));
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  SystolicArray a = derive_systolic_array(q, ps);
  EXPECT_EQ(a.pe_count, static_cast<std::size_t>(2 * m - 1));
  EXPECT_EQ(a.dimensionality, 1u);
  EXPECT_EQ(a.link_directions.size(), 2u);
  EXPECT_EQ(a.schedule_span, 2 * m - 1);
  EXPECT_EQ(a.busiest_pe_steps, static_cast<std::size_t>(m));
}

TEST(Systolic, MatmulHexArray) {
  // Fig. 5's geometry: 37 PEs, three link directions, span 10.
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_multiplication());
  ProjectedStructure ps(q, TimeFunction{{1, 1, 1}});
  SystolicArray a = derive_systolic_array(q, ps);
  EXPECT_EQ(a.pe_count, 37u);
  EXPECT_EQ(a.dimensionality, 2u);
  EXPECT_EQ(a.link_directions.size(), 3u);
  EXPECT_EQ(a.schedule_span, 10);
}

TEST(Systolic, UtilizationBetweenZeroAndOne) {
  for (const LoopNest& nest : {workloads::matrix_vector(12), workloads::sor2d(6, 9),
                               workloads::convolution1d(10, 4)}) {
    ComputationStructure q = ComputationStructure::from_loop(nest);
    auto tf = search_time_function(q);
    ASSERT_TRUE(tf.has_value());
    ProjectedStructure ps(q, *tf);
    SystolicArray a = derive_systolic_array(q, ps);
    EXPECT_GT(a.mean_pe_utilization, 0.0) << nest.name();
    EXPECT_LE(a.mean_pe_utilization, 1.0) << nest.name();
  }
}

TEST(Systolic, PeCountGrowsWithProblemButBlocksClusterable) {
  // The Section II argument: systolic PEs scale with the problem.
  std::size_t prev = 0;
  for (std::int64_t m : {4, 8, 16, 32}) {
    ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_vector(m));
    ProjectedStructure ps(q, TimeFunction{{1, 1}});
    SystolicArray a = derive_systolic_array(q, ps);
    EXPECT_GT(a.pe_count, prev);
    prev = a.pe_count;
  }
}

TEST(Systolic, SummaryMentionsKeyNumbers) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_vector(8));
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  std::string s = derive_systolic_array(q, ps).summary();
  EXPECT_NE(s.find("15 PEs"), std::string::npos);
  EXPECT_NE(s.find("utilization"), std::string::npos);
}

}  // namespace
}  // namespace hypart
