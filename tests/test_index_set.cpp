#include "loop/index_set.hpp"

#include <gtest/gtest.h>

#include "workloads/workloads.hpp"

namespace hypart {
namespace {

TEST(IndexSetTest, RectangularEnumeration) {
  IndexSet is(workloads::example_l1(3));  // 4x4
  std::vector<IntVec> pts = is.points();
  EXPECT_EQ(pts.size(), 16u);
  EXPECT_EQ(is.size(), 16u);
  EXPECT_EQ(pts.front(), (IntVec{0, 0}));
  EXPECT_EQ(pts.back(), (IntVec{3, 3}));
  // Lexicographic order.
  for (std::size_t i = 1; i < pts.size(); ++i) EXPECT_LT(pts[i - 1], pts[i]);
}

TEST(IndexSetTest, Contains) {
  IndexSet is(workloads::example_l1(3));
  EXPECT_TRUE(is.contains({0, 0}));
  EXPECT_TRUE(is.contains({3, 3}));
  EXPECT_FALSE(is.contains({4, 0}));
  EXPECT_FALSE(is.contains({0, -1}));
  EXPECT_FALSE(is.contains({0}));  // wrong arity
}

TEST(IndexSetTest, MatvecBoundsStartAtOne) {
  IndexSet is(workloads::matrix_vector(4));
  EXPECT_EQ(is.size(), 16u);
  EXPECT_TRUE(is.contains({1, 1}));
  EXPECT_FALSE(is.contains({0, 1}));
  EXPECT_TRUE(is.contains({4, 4}));
}

TEST(IndexSetTest, TriangularDomain) {
  LoopNest tri = LoopNestBuilder("tri")
                     .loop("i", 0, 3)
                     .loop("j", 0, idx(0))
                     .statement("S")
                     .write("A", {idx(0), idx(1)})
                     .build();
  IndexSet is(tri);
  // 1 + 2 + 3 + 4 = 10 points.
  EXPECT_EQ(is.size(), 10u);
  std::vector<IntVec> pts = is.points();
  ASSERT_EQ(pts.size(), 10u);
  for (const IntVec& p : pts) EXPECT_LE(p[1], p[0]);
  EXPECT_TRUE(is.contains({3, 3}));
  EXPECT_FALSE(is.contains({1, 2}));
}

TEST(IndexSetTest, DiagonalBandDomain) {
  // for i = 0..5; for j = i-1 .. i+1  (a band)
  LoopNest band = LoopNestBuilder("band")
                      .loop("i", 0, 5)
                      .loop("j", idx(0) - 1, idx(0) + 1)
                      .statement("S")
                      .write("A", {idx(0), idx(1)})
                      .build();
  IndexSet is(band);
  EXPECT_EQ(is.size(), 18u);
  EXPECT_TRUE(is.contains({2, 1}));
  EXPECT_TRUE(is.contains({2, 3}));
  EXPECT_FALSE(is.contains({2, 4}));
}

TEST(IndexSetTest, EmptyRange) {
  LoopNest empty = LoopNestBuilder("empty")
                       .loop("i", 5, 2)
                       .statement("S")
                       .write("A", {idx(0)})
                       .build();
  IndexSet is(empty);
  EXPECT_EQ(is.size(), 0u);
  EXPECT_TRUE(is.points().empty());
}

TEST(IndexSetTest, PartiallyEmptyInnerRange) {
  // Inner loop empty for i < 2.
  LoopNest nest = LoopNestBuilder("partial")
                      .loop("i", 0, 3)
                      .loop("j", 2, idx(0))
                      .statement("S")
                      .write("A", {idx(0), idx(1)})
                      .build();
  IndexSet is(nest);
  // i=2: j=2; i=3: j=2,3 -> 3 points.
  EXPECT_EQ(is.size(), 3u);
  EXPECT_EQ(is.points(), (std::vector<IntVec>{{2, 2}, {3, 2}, {3, 3}}));
}

TEST(IndexSetTest, ThreeDimensional) {
  IndexSet is(workloads::matrix_multiplication(3));  // 4x4x4
  EXPECT_EQ(is.size(), 64u);
  EXPECT_EQ(is.points().size(), 64u);
}

TEST(IndexSetTest, RectangularBoundsAccessor) {
  IndexSet is(workloads::matrix_vector(8));
  auto b = is.rectangular_bounds();
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], std::make_pair(std::int64_t{1}, std::int64_t{8}));
}

TEST(IndexSetTest, RectangularBoundsThrowsOnAffine) {
  LoopNest tri = LoopNestBuilder("tri")
                     .loop("i", 0, 3)
                     .loop("j", 0, idx(0))
                     .statement("S")
                     .write("A", {idx(0), idx(1)})
                     .build();
  EXPECT_THROW(IndexSet(tri).rectangular_bounds(), std::logic_error);
}

TEST(IndexSetTest, SingleLoop) {
  LoopNest l = LoopNestBuilder("l")
                   .loop("i", -2, 2)
                   .statement("S")
                   .write("A", {idx(0)})
                   .read("A", {idx(0) - 1})
                   .build();
  IndexSet is(l);
  EXPECT_EQ(is.size(), 5u);
  EXPECT_EQ(is.points().front(), (IntVec{-2}));
}

// Parameterized sweep: size() equals points().size() for various shapes.
class IndexSetSizeProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(IndexSetSizeProperty, CountMatchesEnumeration) {
  std::int64_t n = GetParam();
  IndexSet rect(workloads::sor2d(n, n + 1));
  EXPECT_EQ(rect.size(), rect.points().size());

  LoopNest tri = LoopNestBuilder("tri")
                     .loop("i", 0, n)
                     .loop("j", idx(0), n)
                     .statement("S")
                     .write("A", {idx(0), idx(1)})
                     .build();
  IndexSet t(tri);
  EXPECT_EQ(t.size(), t.points().size());
  EXPECT_EQ(t.size(), static_cast<std::uint64_t>((n + 1) * (n + 2) / 2));
}

INSTANTIATE_TEST_SUITE_P(Sizes, IndexSetSizeProperty, ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace hypart
