#include "numeric/int_linalg.hpp"

#include <gtest/gtest.h>

namespace hypart {
namespace {

TEST(IntMat, Construction) {
  IntMat m = IntMat::from_rows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.at(0, 1), 2);
  EXPECT_EQ(m.at(1, 0), 3);

  IntMat c = IntMat::from_cols({{1, 3}, {2, 4}});
  EXPECT_EQ(c, m);

  EXPECT_EQ(IntMat::identity(3).at(2, 2), 1);
  EXPECT_EQ(IntMat::identity(3).at(0, 2), 0);
}

TEST(IntMat, RaggedThrows) {
  EXPECT_THROW(IntMat::from_rows({{1, 2}, {3}}), std::invalid_argument);
  EXPECT_THROW(IntMat::from_cols({{1, 2}, {3}}), std::invalid_argument);
}

TEST(IntMat, Multiply) {
  IntMat a = IntMat::from_rows({{1, 2}, {3, 4}});
  IntMat b = IntMat::from_rows({{5, 6}, {7, 8}});
  IntMat ab = a.multiplied(b);
  EXPECT_EQ(ab, IntMat::from_rows({{19, 22}, {43, 50}}));
}

TEST(IntMat, Transpose) {
  IntMat a = IntMat::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(a.transposed(), IntMat::from_rows({{1, 4}, {2, 5}, {3, 6}}));
}

TEST(IntVecOps, Basics) {
  IntVec a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(add(a, b), (IntVec{5, 7, 9}));
  EXPECT_EQ(sub(b, a), (IntVec{3, 3, 3}));
  EXPECT_EQ(scale(a, 3), (IntVec{3, 6, 9}));
  EXPECT_EQ(negate(a), (IntVec{-1, -2, -3}));
  EXPECT_EQ(dot(a, b), 32);
  EXPECT_TRUE(is_zero(IntVec{0, 0}));
  EXPECT_FALSE(is_zero(a));
}

TEST(IntVecOps, Content) {
  EXPECT_EQ(content({6, 9, 12}), 3);
  EXPECT_EQ(content({0, 0}), 0);
  EXPECT_EQ(content({0, 5}), 5);
  EXPECT_EQ(content({-4, 6}), 2);
}

TEST(IntVecOps, Primitive) {
  EXPECT_EQ(primitive({6, 9}), (IntVec{2, 3}));
  EXPECT_EQ(primitive({-6, -9}), (IntVec{2, 3}));  // sign normalized
  EXPECT_EQ(primitive({0, -4}), (IntVec{0, 1}));
  EXPECT_EQ(primitive({0, 0}), (IntVec{0, 0}));
}

TEST(ExtGcdTest, BezoutIdentity) {
  for (std::int64_t a : {0L, 1L, -3L, 12L, 35L, -48L, 1000003L}) {
    for (std::int64_t b : {0L, 1L, 5L, -7L, 18L, 240L}) {
      if (a == 0 && b == 0) continue;
      ExtGcd e = ext_gcd(a, b);
      EXPECT_EQ(e.g, gcd64(a, b)) << a << "," << b;
      EXPECT_EQ(e.x * a + e.y * b, e.g) << a << "," << b;
      EXPECT_GT(e.g, 0);
    }
  }
}

TEST(Hermite, IdentityIsFixed) {
  HermiteResult h = hermite_normal_form(IntMat::identity(3));
  EXPECT_EQ(h.h, IntMat::identity(3));
  EXPECT_EQ(h.rank, 3u);
}

TEST(Hermite, TransformConsistency) {
  // H = A * U must hold with U unimodular.
  IntMat a = IntMat::from_cols({{2, 4}, {6, 8}, {10, 14}});
  HermiteResult h = hermite_normal_form(a);
  EXPECT_EQ(a.multiplied(h.u), h.h);
  // U is 3x3 unimodular: |det| = 1.
  EXPECT_EQ(std::abs(int_det(h.u)), 1);
}

TEST(Hermite, RankDetection) {
  IntMat a = IntMat::from_cols({{1, 2}, {2, 4}});  // rank 1
  EXPECT_EQ(hermite_normal_form(a).rank, 1u);
  EXPECT_EQ(int_rank(a), 1u);

  IntMat b = IntMat::from_cols({{1, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(int_rank(b), 2u);
}

TEST(Hermite, LatticeOfMatmulDeps) {
  // Dependence matrix of matrix multiplication: identity -> det 1 lattice.
  IntMat d = IntMat::from_cols({{0, 1, 0}, {1, 0, 0}, {0, 0, 1}});
  HermiteResult h = hermite_normal_form(d);
  EXPECT_EQ(h.rank, 3u);
  EXPECT_EQ(std::abs(int_det(h.h)), 1);
}

TEST(Smith, DiagonalAndDivisibility) {
  IntMat a = IntMat::from_rows({{2, 4, 4}, {-6, 6, 12}, {10, 4, 16}});
  SmithResult s = smith_normal_form(a);
  // S = U*A*V must hold.
  EXPECT_EQ(s.u.multiplied(a).multiplied(s.v), s.s);
  // Divisibility chain.
  for (std::size_t i = 0; i + 1 < s.divisors.size(); ++i)
    EXPECT_EQ(s.divisors[i + 1] % s.divisors[i], 0);
  // Known result for this classic example: divisors 2, 2, 156... verify via
  // determinant: product of divisors == |det|.
  std::int64_t prod = 1;
  for (std::int64_t e : s.divisors) prod *= e;
  EXPECT_EQ(prod, std::abs(int_det(a)));
}

TEST(Smith, StridedLattice) {
  IntMat d = IntMat::from_cols({{3, 0}, {0, 3}});
  SmithResult s = smith_normal_form(d);
  ASSERT_EQ(s.divisors.size(), 2u);
  EXPECT_EQ(s.divisors[0], 3);
  EXPECT_EQ(s.divisors[1], 3);
}

TEST(Smith, RectangularMatrix) {
  IntMat a = IntMat::from_rows({{1, 2, 3}, {4, 5, 6}});
  SmithResult s = smith_normal_form(a);
  EXPECT_EQ(s.u.multiplied(a).multiplied(s.v), s.s);
  ASSERT_EQ(s.divisors.size(), 2u);
  EXPECT_EQ(s.divisors[0], 1);
  EXPECT_EQ(s.divisors[1], 3);
}

TEST(Det, Basics) {
  EXPECT_EQ(int_det(IntMat::identity(4)), 1);
  EXPECT_EQ(int_det(IntMat::from_rows({{2, 0}, {0, 3}})), 6);
  EXPECT_EQ(int_det(IntMat::from_rows({{1, 2}, {2, 4}})), 0);
  EXPECT_EQ(int_det(IntMat::from_rows({{0, 1}, {1, 0}})), -1);
  EXPECT_EQ(int_det(IntMat::from_rows({{1, 2, 3}, {4, 5, 6}, {7, 8, 10}})), -3);
}

TEST(Det, NonSquareThrows) {
  EXPECT_THROW(int_det(IntMat::from_rows({{1, 2, 3}, {4, 5, 6}})), std::invalid_argument);
}

// Property sweep: HNF invariants for random-ish small matrices.
class HermitePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HermitePropertyTest, ColumnSpanPreserved) {
  int seed = GetParam();
  // Deterministic pseudo-random small matrix.
  IntMat a(3, 4);
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 2654435761u + 12345u;
  auto next = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::int64_t>((state >> 33) % 11) - 5;
  };
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) a.at(r, c) = next();

  HermiteResult h = hermite_normal_form(a);
  EXPECT_EQ(a.multiplied(h.u), h.h);
  EXPECT_EQ(std::abs(int_det(h.u)), 1);
  EXPECT_EQ(h.rank, int_rank(a));
  // Columns after rank are zero.
  for (std::size_t c = h.rank; c < h.h.cols(); ++c)
    for (std::size_t r = 0; r < h.h.rows(); ++r) EXPECT_EQ(h.h.at(r, c), 0);
}

TEST_P(HermitePropertyTest, SmithMatchesDeterminant) {
  int seed = GetParam();
  IntMat a(3, 3);
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 40503u + 7u;
  auto next = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::int64_t>((state >> 33) % 9) - 4;
  };
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a.at(r, c) = next();

  SmithResult s = smith_normal_form(a);
  EXPECT_EQ(s.u.multiplied(a).multiplied(s.v), s.s);
  std::int64_t det = std::abs(int_det(a));
  if (det == 0) {
    // Singular: rank < n, so fewer than n nonzero divisors.
    EXPECT_LT(s.divisors.size(), 3u);
  } else {
    std::int64_t prod = 1;
    for (std::int64_t e : s.divisors) prod *= e;
    EXPECT_EQ(prod, det);
  }
  for (std::size_t i = 0; i + 1 < s.divisors.size(); ++i)
    EXPECT_EQ(s.divisors[i + 1] % s.divisors[i], 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HermitePropertyTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace hypart
