#include "mapping/other_topologies.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "mapping/hypercube_map.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

TEST(MeshMap, MeshTigMapsIdentityLike) {
  // A 4x4 mesh TIG onto a 4x4 mesh: all communication is neighbor-to-
  // neighbor (dilation 1).
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(4, 4);
  Mesh2D mesh(4, 4);
  Mapping m = map_to_mesh(tig, mesh);
  EXPECT_EQ(m.processor_count, 16u);
  MappingMetrics met = evaluate_mapping(tig, m, mesh);
  EXPECT_EQ(met.used_processors, 16u);
  EXPECT_DOUBLE_EQ(met.avg_hops_weighted, 1.0);
  EXPECT_EQ(met.max_proc_compute, 1);
}

TEST(MeshMap, LinearTigSnakesAcrossMesh) {
  // A path TIG (1-D coordinates) on a mesh: the snake layout keeps
  // consecutive clusters adjacent.
  TaskInteractionGraph tig(16);
  for (std::size_t v = 0; v < 16; ++v)
    tig.set_coordinates(v, {static_cast<std::int64_t>(v)});
  for (std::size_t v = 0; v + 1 < 16; ++v) tig.add_comm(v, v + 1, 1);
  Mesh2D mesh(4, 4);
  Mapping m = map_to_mesh(tig, mesh);
  MappingMetrics met = evaluate_mapping(tig, m, mesh);
  EXPECT_DOUBLE_EQ(met.avg_hops_weighted, 1.0);
}

TEST(MeshMap, NonPowerOfTwoMeshRejected) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(3, 3);
  EXPECT_THROW(map_to_mesh(tig, Mesh2D(3, 3)), std::invalid_argument);
}

TEST(MeshMap, BalancedLoad) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(8, 8);  // 64 blocks
  Mesh2D mesh(4, 2);
  Mapping m = map_to_mesh(tig, mesh);
  std::vector<std::size_t> load(mesh.size(), 0);
  for (ProcId p : m.block_to_proc) ++load[p];
  for (std::size_t l : load) EXPECT_EQ(l, 8u);
}

TEST(RingMap, ConsecutiveClustersAdjacent) {
  const std::int64_t m = 16;
  auto q = std::make_unique<ComputationStructure>(
      ComputationStructure::from_loop(workloads::matrix_vector(m)));
  ProjectedStructure ps(*q, TimeFunction{{1, 1}});
  Grouping g = Grouping::compute(ps);
  Partition part = Partition::build(*q, g);
  TaskInteractionGraph tig = TaskInteractionGraph::from_partition(*q, part, g);

  Ring ring(8);
  Mapping map = map_to_ring(tig, 8);
  MappingMetrics met = evaluate_mapping(tig, map, ring);
  // The matvec block chain cut into 8 arcs of the ring: all cut traffic
  // between consecutive positions.
  EXPECT_DOUBLE_EQ(met.avg_hops_weighted, 1.0);
  EXPECT_EQ(met.used_processors, 8u);
}

TEST(RingMap, PowerOfTwoRequired) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(4, 4);
  EXPECT_THROW(map_to_ring(tig, 6), std::invalid_argument);
}

TEST(RingMap, SingleProcessor) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(2, 2);
  Mapping m = map_to_ring(tig, 1);
  for (ProcId p : m.block_to_proc) EXPECT_EQ(p, 0u);
}

TEST(TopologyComparison, HypercubeNoWorseThanRingForMeshTig) {
  // With equal processor counts, the richer topology can only help the
  // 2-D-structured TIG.
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(8, 8);
  Hypercube cube(4);
  Ring ring(16);
  Mesh2D mesh(4, 4);

  MappingMetrics on_cube = evaluate_mapping(tig, map_to_hypercube(tig, 4).mapping, cube);
  MappingMetrics on_mesh = evaluate_mapping(tig, map_to_mesh(tig, mesh), mesh);
  MappingMetrics on_ring = evaluate_mapping(tig, map_to_ring(tig, 16), ring);
  EXPECT_LE(on_cube.total_comm_cost, on_ring.total_comm_cost);
  EXPECT_LE(on_mesh.total_comm_cost, on_ring.total_comm_cost);
}

TEST(MeshMap, EmptyTigThrows) {
  TaskInteractionGraph tig;
  EXPECT_THROW(map_to_mesh(tig, Mesh2D(2, 2)), std::invalid_argument);
  EXPECT_THROW(map_to_ring(tig, 2), std::invalid_argument);
}

}  // namespace
}  // namespace hypart
