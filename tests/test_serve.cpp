// Tests for hypart::serve — canonicalization, the two-tier plan cache, the
// request service (dispositions, name rewriting, error mapping) and the
// NDJSON socket server (concurrency, shutdown).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/io_util.hpp"
#include "core/json_reader.hpp"
#include "core/json_writer.hpp"
#include "frontend/parser.hpp"
#include "serve/canonical.hpp"
#include "serve/plan_cache.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace hypart::serve {
namespace {

// A SOR-like 2-D recurrence parameterized on every identifier and the size,
// so structural identity under renaming/rescaling is easy to probe.
std::string sor_like(const std::string& tag, const std::string& n) {
  return "loop nest" + tag + " { for i" + tag + " = 1 to " + n + " for j" + tag + " = 1 to " + n +
         " A" + tag + "[i" + tag + ", j" + tag + "] = (A" + tag + "[i" + tag + "-1, j" + tag +
         "] + A" + tag + "[i" + tag + ", j" + tag + "-1]) * 0.5; }";
}

// ---- canonicalization -----------------------------------------------------

TEST(Canonical, RenamedNestsShareBothKeys) {
  CanonicalForm a = canonicalize_nest(parse_loop_nest(sor_like("X", "24")));
  CanonicalForm b = canonicalize_nest(parse_loop_nest(sor_like("Y", "24")));
  EXPECT_EQ(a.structure_key, b.structure_key);
  EXPECT_EQ(a.exact_key, b.exact_key);
  EXPECT_EQ(a.structure_hex(), b.structure_hex());
  // The per-nest naming is preserved alongside the canonical keys.
  EXPECT_EQ(a.loop_name, "nestX");
  EXPECT_EQ(b.loop_name, "nestY");
  ASSERT_EQ(a.arrays.size(), 1u);
  ASSERT_EQ(b.arrays.size(), 1u);
  EXPECT_EQ(a.arrays[0], "AX");
  EXPECT_EQ(b.arrays[0], "AY");
}

TEST(Canonical, RescaledNestsShareStructureButNotExactKey) {
  CanonicalForm a = canonicalize_nest(parse_loop_nest(sor_like("X", "24")));
  CanonicalForm b = canonicalize_nest(parse_loop_nest(sor_like("X", "48")));
  EXPECT_EQ(a.structure_key, b.structure_key);
  EXPECT_NE(a.exact_key, b.exact_key);
}

TEST(Canonical, DifferentDependenceStructureDiffers) {
  // Same shape, but the second reads A[i-1, j-1]: different D, different key.
  std::string other =
      "loop nestX { for iX = 1 to 24 for jX = 1 to 24 "
      "AX[iX, jX] = (AX[iX-1, jX-1] + AX[iX, jX-1]) * 0.5; }";
  CanonicalForm a = canonicalize_nest(parse_loop_nest(sor_like("X", "24")));
  CanonicalForm b = canonicalize_nest(parse_loop_nest(other));
  EXPECT_NE(a.structure_key, b.structure_key);
}

TEST(Canonical, BoundConstantEqualityPatternIsStructural) {
  // 1..N, 1..N (one repeated symbol) vs 1..N, 1..M (two distinct symbols):
  // the equality classes differ, so the *structure* keys differ.
  std::string square =
      "loop s { for i = 1 to 24 for j = 1 to 24 A[i, j] = A[i-1, j] + A[i, j-1]; }";
  std::string rect =
      "loop s { for i = 1 to 24 for j = 1 to 48 A[i, j] = A[i-1, j] + A[i, j-1]; }";
  CanonicalForm a = canonicalize_nest(parse_loop_nest(square));
  CanonicalForm b = canonicalize_nest(parse_loop_nest(rect));
  EXPECT_NE(a.structure_key, b.structure_key);
}

TEST(Canonical, EmbedsLatticeInvariants) {
  CanonicalForm a = canonicalize_nest(parse_loop_nest(sor_like("X", "24")));
  EXPECT_EQ(a.lattice_rank, 2u);
  ASSERT_EQ(a.smith_divisors.size(), 2u);
  EXPECT_EQ(a.smith_divisors[0], 1);
  EXPECT_NE(a.structure_key.find(";H="), std::string::npos);
  EXPECT_NE(a.structure_key.find(";S="), std::string::npos);
}

// ---- plan cache -----------------------------------------------------------

TEST(PlanCache, LruEvictionCountsAndCaps) {
  obs::MetricsRegistry metrics;
  PlanCache cache(/*doc_capacity=*/2, /*skeleton_capacity=*/2, &metrics);
  cache.insert_document("a", {});
  cache.insert_document("b", {});
  EXPECT_NE(cache.find_document("a"), nullptr);  // refresh: b is now LRU
  cache.insert_document("c", {});                // evicts b
  EXPECT_EQ(cache.find_document("b"), nullptr);
  EXPECT_NE(cache.find_document("a"), nullptr);
  EXPECT_NE(cache.find_document("c"), nullptr);
  PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.documents, 2u);
  EXPECT_EQ(s.doc_evictions, 1);
  obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve.cache.doc_evictions"), 1);
}

TEST(PlanCache, SkeletonTierIsIndependent) {
  PlanCache cache(2, 1, nullptr);
  cache.insert_pi("s1", IntVec{1, 1});
  cache.insert_pi("s2", IntVec{2, 1});  // evicts s1 (capacity 1)
  EXPECT_FALSE(cache.find_pi("s1").has_value());
  ASSERT_TRUE(cache.find_pi("s2").has_value());
  EXPECT_EQ(*cache.find_pi("s2"), (IntVec{2, 1}));
  EXPECT_EQ(cache.stats().pi_evictions, 1);
}

// ---- service --------------------------------------------------------------

std::string plan_request(const std::string& op, const std::string& program,
                         const std::string& id = "\"r1\"") {
  return "{\"id\":" + id + ",\"op\":\"" + op + "\",\"program\":" + JsonWriter::escape(program) +
         ",\"params\":{\"dim\":2}}";
}

TEST(PlanService, MissThenExactHitOnRenamedNest) {
  obs::MetricsRegistry metrics;
  ServiceOptions opts;
  opts.obs.metrics = &metrics;
  PlanService service(opts);

  JsonValue first = parse_json(service.handle_line(plan_request("partition", sor_like("X", "24"))));
  ASSERT_TRUE(first.get("ok").as_bool()) << first.to_json();
  EXPECT_EQ(first.get("cache").as_string(), "miss");
  EXPECT_EQ(first.get("result").get("loop").as_string(), "nestX");

  JsonValue second =
      parse_json(service.handle_line(plan_request("partition", sor_like("Y", "24"))));
  ASSERT_TRUE(second.get("ok").as_bool()) << second.to_json();
  EXPECT_EQ(second.get("cache").as_string(), "hit");
  // The replayed document is rewritten to the requester's names...
  EXPECT_EQ(second.get("result").get("loop").as_string(), "nestY");
  for (const JsonValue& dep : second.get("result").get("dependences").as_array())
    EXPECT_EQ(dep.get("array").as_string(), "AY");
  // ...and is otherwise byte-identical to the cold result up to names.
  EXPECT_EQ(first.get("canonical").get("exact").as_string(),
            second.get("canonical").get("exact").as_string());
  EXPECT_EQ(first.get("result").get("partition").to_json(),
            second.get("result").get("partition").to_json());

  obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve.cache.miss"), 1);
  EXPECT_EQ(snap.counters.at("serve.cache.hit"), 1);
  EXPECT_EQ(snap.counters.at("serve.requests"), 2);
}

TEST(PlanService, RescaledNestTakesPiPath) {
  obs::MetricsRegistry metrics;
  ServiceOptions opts;
  opts.obs.metrics = &metrics;
  PlanService service(opts);

  JsonValue cold = parse_json(service.handle_line(plan_request("predict", sor_like("X", "24"))));
  ASSERT_TRUE(cold.get("ok").as_bool());
  JsonValue scaled = parse_json(service.handle_line(plan_request("predict", sor_like("X", "48"))));
  ASSERT_TRUE(scaled.get("ok").as_bool());
  EXPECT_EQ(scaled.get("cache").as_string(), "pi");
  // Same structure hash, different exact hash, same reused Π.
  EXPECT_EQ(cold.get("canonical").get("structure").as_string(),
            scaled.get("canonical").get("structure").as_string());
  EXPECT_NE(cold.get("canonical").get("exact").as_string(),
            scaled.get("canonical").get("exact").as_string());
  EXPECT_EQ(cold.get("result").get("time_function").to_json(),
            scaled.get("result").get("time_function").to_json());
  EXPECT_EQ(metrics.snapshot().counters.at("serve.cache.pi"), 1);
}

TEST(PlanService, ParamsChangeSplitsDocumentCache) {
  PlanService service;
  std::string program = sor_like("X", "24");
  ASSERT_EQ(parse_json(service.handle_line(plan_request("predict", program)))
                .get("cache")
                .as_string(),
            "miss");
  // Different accounting => different resolved params => no document hit
  // (the Π skeleton still applies).
  std::string req = "{\"op\":\"predict\",\"program\":" + JsonWriter::escape(program) +
                    ",\"params\":{\"dim\":2,\"accounting\":\"barrier\"}}";
  EXPECT_EQ(parse_json(service.handle_line(req)).get("cache").as_string(), "pi");
}

TEST(PlanService, OpsSliceTheSharedDocument) {
  PlanService service;
  std::string program = sor_like("X", "16");
  JsonValue partition =
      parse_json(service.handle_line(plan_request("partition", program)));
  JsonValue map = parse_json(service.handle_line(plan_request("map", program)));
  JsonValue predict = parse_json(service.handle_line(plan_request("predict", program)));
  JsonValue explain = parse_json(service.handle_line(plan_request("explain", program)));
  // One plan, three cache hits.
  EXPECT_EQ(partition.get("cache").as_string(), "miss");
  EXPECT_EQ(map.get("cache").as_string(), "hit");
  EXPECT_EQ(predict.get("cache").as_string(), "hit");
  EXPECT_EQ(explain.get("cache").as_string(), "hit");
  // Each op keeps its own slice of the document.
  EXPECT_TRUE(partition.get("result").has("partition"));
  EXPECT_FALSE(partition.get("result").has("simulation"));
  EXPECT_TRUE(map.get("result").has("mapping"));
  EXPECT_FALSE(map.get("result").has("simulation"));
  EXPECT_TRUE(predict.get("result").has("simulation"));
  EXPECT_FALSE(predict.get("result").has("mapping"));
  EXPECT_TRUE(explain.get("result").has("mapping"));
  EXPECT_TRUE(explain.get("result").has("simulation"));
  EXPECT_TRUE(explain.get("result").has("validation"));
  // explain additionally exposes the full audit keys.
  EXPECT_TRUE(explain.get("canonical").has("structure_key"));
  EXPECT_TRUE(explain.get("canonical").has("params"));
}

TEST(PlanService, ErrorMappingMatchesTypedHierarchy) {
  obs::MetricsRegistry metrics;
  ServiceOptions opts;
  opts.obs.metrics = &metrics;
  PlanService service(opts);

  // Malformed JSON -> parse/65, id null (it was unreadable).
  JsonValue r = parse_json(service.handle_line("{nope"));
  EXPECT_FALSE(r.get("ok").as_bool());
  EXPECT_EQ(r.get("error").get("kind").as_string(), "parse");
  EXPECT_EQ(r.get("error").get("code").as_int64(), 65);
  EXPECT_TRUE(r.get("id").is_null());

  // Trailing bytes violate NDJSON framing -> parse/65.
  r = parse_json(service.handle_line("{\"op\":\"ping\"} {\"op\":\"ping\"}"));
  EXPECT_EQ(r.get("error").get("code").as_int64(), 65);

  // Unknown op -> config/78, id echoed verbatim.
  r = parse_json(service.handle_line("{\"id\":7,\"op\":\"frobnicate\"}"));
  EXPECT_EQ(r.get("error").get("kind").as_string(), "config");
  EXPECT_EQ(r.get("error").get("code").as_int64(), 78);
  EXPECT_EQ(r.get("id").as_int64(), 7);

  // Missing program -> config/78.
  r = parse_json(service.handle_line("{\"op\":\"partition\"}"));
  EXPECT_EQ(r.get("error").get("code").as_int64(), 78);

  // Unknown params member -> config/78 (strict params validation).
  r = parse_json(service.handle_line(
      "{\"op\":\"partition\",\"program\":\"x\",\"params\":{\"dimension\":2}}"));
  EXPECT_EQ(r.get("error").get("code").as_int64(), 78);

  // Unparsable program -> parse/65 (frontend ParseError).
  r = parse_json(service.handle_line("{\"op\":\"partition\",\"program\":\"loop x {\"}"));
  EXPECT_EQ(r.get("error").get("kind").as_string(), "parse");
  EXPECT_EQ(r.get("error").get("code").as_int64(), 65);

  EXPECT_EQ(metrics.snapshot().counters.at("serve.errors"), 6);
}

TEST(PlanService, PingStatsShutdown) {
  PlanService service;
  JsonValue ping = parse_json(service.handle_line("{\"id\":\"p\",\"op\":\"ping\"}"));
  EXPECT_TRUE(ping.get("ok").as_bool());
  EXPECT_EQ(ping.get("id").as_string(), "p");

  (void)service.handle_line(plan_request("partition", sor_like("X", "16")));
  JsonValue stats = parse_json(service.handle_line("{\"op\":\"stats\"}"));
  EXPECT_EQ(stats.get("cache").get("documents").as_int64(), 1);
  EXPECT_EQ(stats.get("cache").get("skeletons").as_int64(), 1);
  EXPECT_EQ(stats.get("defaults").get("space").as_string(), "symbolic");

  EXPECT_FALSE(service.shutdown_requested());
  JsonValue bye = parse_json(service.handle_line("{\"op\":\"shutdown\"}"));
  EXPECT_TRUE(bye.get("ok").as_bool());
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(PlanService, DocumentEvictionUnderTinyCapacity) {
  ServiceOptions opts;
  opts.doc_cache_capacity = 1;
  PlanService service(opts);
  (void)service.handle_line(plan_request("partition", sor_like("X", "16")));
  (void)service.handle_line(plan_request("partition", sor_like("X", "20")));  // evicts 16
  JsonValue again = parse_json(service.handle_line(plan_request("partition", sor_like("X", "16"))));
  EXPECT_EQ(again.get("cache").as_string(), "pi");  // doc evicted, Π survives
  EXPECT_EQ(service.cache_stats().doc_evictions, 2);
}

// ---- socket server --------------------------------------------------------

int connect_unix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) return -1;
  return fd;
}

std::string roundtrip(int fd, const std::string& request) {
  std::string line = request + "\n";
  if (!write_full(fd, line.data(), line.size())) return "";
  std::string buffer;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return "";
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) return buffer.substr(0, nl);
  }
}

std::string test_socket_path(const char* name) {
  std::string dir = ::getenv("TMPDIR") != nullptr ? ::getenv("TMPDIR") : "/tmp";
  return dir + "/hypart_test_" + name + "_" + std::to_string(::getpid()) + ".sock";
}

TEST(Server, ConcurrentClientsOverUnixSocket) {
  PlanService service;
  ServerOptions sopts;
  sopts.unix_path = test_socket_path("conc");
  sopts.threads = 4;
  Server server(service, sopts);
  server.start();

  constexpr int kClients = 6;
  constexpr int kPerClient = 4;
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      int fd = connect_unix(sopts.unix_path);
      ASSERT_GE(fd, 0);
      for (int k = 0; k < kPerClient; ++k) {
        std::string tag = "c" + std::to_string(c);
        std::string reply = roundtrip(fd, plan_request("partition", sor_like(tag, "16")));
        JsonValue v = parse_json(reply);
        if (v.get("ok").as_bool()) ++ok_count;
      }
      ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kPerClient);
  // All clients planned the same structure: exactly one miss ever.
  PlanCacheStats s = service.cache_stats();
  EXPECT_GE(s.doc_hits, 1);
  EXPECT_EQ(s.documents, 1u);
  server.request_stop();
  server.stop();
}

TEST(Server, MalformedLinesGetErrorRepliesAndConnectionSurvives) {
  PlanService service;
  ServerOptions sopts;
  sopts.unix_path = test_socket_path("mal");
  Server server(service, sopts);
  server.start();

  int fd = connect_unix(sopts.unix_path);
  ASSERT_GE(fd, 0);
  JsonValue bad = parse_json(roundtrip(fd, "this is not json"));
  EXPECT_FALSE(bad.get("ok").as_bool());
  EXPECT_EQ(bad.get("error").get("code").as_int64(), 65);
  // The same connection still serves good requests afterwards.
  JsonValue good = parse_json(roundtrip(fd, "{\"op\":\"ping\"}"));
  EXPECT_TRUE(good.get("ok").as_bool());
  ::close(fd);
  server.request_stop();
  server.stop();
}

TEST(Server, ShutdownOpStopsTheServer) {
  PlanService service;
  ServerOptions sopts;
  sopts.unix_path = test_socket_path("bye");
  Server server(service, sopts);
  server.start();

  int fd = connect_unix(sopts.unix_path);
  ASSERT_GE(fd, 0);
  JsonValue bye = parse_json(roundtrip(fd, "{\"op\":\"shutdown\"}"));
  EXPECT_TRUE(bye.get("ok").as_bool());
  ::close(fd);
  server.wait();  // returns because the shutdown op triggered request_stop
  SUCCEED();
}

TEST(Server, TcpEphemeralPortRoundtrip) {
  PlanService service;
  ServerOptions sopts;  // no unix_path, port 0 => ephemeral TCP
  Server server(service, sopts);
  server.start();
  ASSERT_GT(server.port(), 0);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  JsonValue pong = parse_json(roundtrip(fd, "{\"op\":\"ping\"}"));
  EXPECT_TRUE(pong.get("ok").as_bool());
  ::close(fd);
  server.request_stop();
  server.stop();
}

}  // namespace
}  // namespace hypart::serve
