// Tests for hypart::serve — canonicalization, the two-tier plan cache, the
// request service (dispositions, name rewriting, error mapping) and the
// NDJSON socket server (concurrency, shutdown).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/io_util.hpp"
#include "core/json_reader.hpp"
#include "core/json_writer.hpp"
#include "frontend/parser.hpp"
#include "serve/canonical.hpp"
#include "serve/plan_cache.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace hypart::serve {
namespace {

// A SOR-like 2-D recurrence parameterized on every identifier and the size,
// so structural identity under renaming/rescaling is easy to probe.
std::string sor_like(const std::string& tag, const std::string& n) {
  return "loop nest" + tag + " { for i" + tag + " = 1 to " + n + " for j" + tag + " = 1 to " + n +
         " A" + tag + "[i" + tag + ", j" + tag + "] = (A" + tag + "[i" + tag + "-1, j" + tag +
         "] + A" + tag + "[i" + tag + ", j" + tag + "-1]) * 0.5; }";
}

// ---- canonicalization -----------------------------------------------------

TEST(Canonical, RenamedNestsShareBothKeys) {
  CanonicalForm a = canonicalize_nest(parse_loop_nest(sor_like("X", "24")));
  CanonicalForm b = canonicalize_nest(parse_loop_nest(sor_like("Y", "24")));
  EXPECT_EQ(a.structure_key, b.structure_key);
  EXPECT_EQ(a.exact_key, b.exact_key);
  EXPECT_EQ(a.structure_hex(), b.structure_hex());
  // The per-nest naming is preserved alongside the canonical keys.
  EXPECT_EQ(a.loop_name, "nestX");
  EXPECT_EQ(b.loop_name, "nestY");
  ASSERT_EQ(a.arrays.size(), 1u);
  ASSERT_EQ(b.arrays.size(), 1u);
  EXPECT_EQ(a.arrays[0], "AX");
  EXPECT_EQ(b.arrays[0], "AY");
}

TEST(Canonical, RescaledNestsShareStructureButNotExactKey) {
  CanonicalForm a = canonicalize_nest(parse_loop_nest(sor_like("X", "24")));
  CanonicalForm b = canonicalize_nest(parse_loop_nest(sor_like("X", "48")));
  EXPECT_EQ(a.structure_key, b.structure_key);
  EXPECT_NE(a.exact_key, b.exact_key);
}

TEST(Canonical, DifferentDependenceStructureDiffers) {
  // Same shape, but the second reads A[i-1, j-1]: different D, different key.
  std::string other =
      "loop nestX { for iX = 1 to 24 for jX = 1 to 24 "
      "AX[iX, jX] = (AX[iX-1, jX-1] + AX[iX, jX-1]) * 0.5; }";
  CanonicalForm a = canonicalize_nest(parse_loop_nest(sor_like("X", "24")));
  CanonicalForm b = canonicalize_nest(parse_loop_nest(other));
  EXPECT_NE(a.structure_key, b.structure_key);
}

TEST(Canonical, BoundConstantEqualityPatternIsStructural) {
  // 1..N, 1..N (one repeated symbol) vs 1..N, 1..M (two distinct symbols):
  // the equality classes differ, so the *structure* keys differ.
  std::string square =
      "loop s { for i = 1 to 24 for j = 1 to 24 A[i, j] = A[i-1, j] + A[i, j-1]; }";
  std::string rect =
      "loop s { for i = 1 to 24 for j = 1 to 48 A[i, j] = A[i-1, j] + A[i, j-1]; }";
  CanonicalForm a = canonicalize_nest(parse_loop_nest(square));
  CanonicalForm b = canonicalize_nest(parse_loop_nest(rect));
  EXPECT_NE(a.structure_key, b.structure_key);
}

TEST(Canonical, EmbedsLatticeInvariants) {
  CanonicalForm a = canonicalize_nest(parse_loop_nest(sor_like("X", "24")));
  EXPECT_EQ(a.lattice_rank, 2u);
  ASSERT_EQ(a.smith_divisors.size(), 2u);
  EXPECT_EQ(a.smith_divisors[0], 1);
  EXPECT_NE(a.structure_key.find(";H="), std::string::npos);
  EXPECT_NE(a.structure_key.find(";S="), std::string::npos);
}

// ---- plan cache -----------------------------------------------------------

TEST(PlanCache, LruEvictionCountsAndCaps) {
  obs::MetricsRegistry metrics;
  PlanCache cache(/*doc_capacity=*/2, /*skeleton_capacity=*/2, &metrics);
  cache.insert_document("a", {});
  cache.insert_document("b", {});
  EXPECT_NE(cache.find_document("a"), nullptr);  // refresh: b is now LRU
  cache.insert_document("c", {});                // evicts b
  EXPECT_EQ(cache.find_document("b"), nullptr);
  EXPECT_NE(cache.find_document("a"), nullptr);
  EXPECT_NE(cache.find_document("c"), nullptr);
  PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.documents, 2u);
  EXPECT_EQ(s.doc_evictions, 1);
  obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve.cache.doc_evictions"), 1);
}

TEST(PlanCache, SkeletonTierIsIndependent) {
  PlanCache cache(2, 1, nullptr);
  cache.insert_pi("s1", IntVec{1, 1});
  cache.insert_pi("s2", IntVec{2, 1});  // evicts s1 (capacity 1)
  EXPECT_FALSE(cache.find_pi("s1").has_value());
  ASSERT_TRUE(cache.find_pi("s2").has_value());
  EXPECT_EQ(*cache.find_pi("s2"), (IntVec{2, 1}));
  EXPECT_EQ(cache.stats().pi_evictions, 1);
}

// ---- sharded cache --------------------------------------------------------

TEST(PlanCache, ShardClampKeepsTinyCachesExact) {
  // Capacity 1 and 2 collapse to a single shard (the classic global LRU the
  // eviction tests above pin); default capacities stripe out fully.
  PlanCache tiny(2, 1, nullptr);
  EXPECT_EQ(tiny.doc_shard_count(), 1u);
  EXPECT_EQ(tiny.pi_shard_count(), 1u);
  PlanCache full;
  EXPECT_EQ(full.doc_shard_count(), PlanCache::kDefaultShards);
  EXPECT_EQ(full.pi_shard_count(), PlanCache::kDefaultShards);
  // 20 slots over a requested 8 stripes: clamped so every shard owns at
  // least kMinShardCapacity slots.
  PlanCache mid(20, 20, nullptr);
  EXPECT_EQ(mid.doc_shard_count(), 2u);
}

TEST(PlanCache, ShardCapacitiesSumToTierCapacityAndLruIsPerShard) {
  PlanCache cache(/*doc_capacity=*/64, /*skeleton_capacity=*/64, nullptr);
  ASSERT_EQ(cache.doc_shard_count(), 8u);

  // Find 9 keys that land on the same document shard; with 64 slots over 8
  // stripes each shard holds exactly 8, so the 9th insert evicts that
  // shard's LRU entry while every other shard keeps its entries.
  const std::size_t target = cache.doc_shard_index("probe");
  std::vector<std::string> same_shard;
  std::vector<std::string> other_shard;
  for (int i = 0; same_shard.size() < 9 || other_shard.empty(); ++i) {
    std::string key = "k" + std::to_string(i);
    if (cache.doc_shard_index(key) == target) same_shard.push_back(key);
    else if (other_shard.empty()) other_shard.push_back(key);
  }
  cache.insert_document(other_shard[0], {});
  for (std::size_t i = 0; i < 8; ++i) cache.insert_document(same_shard[i], {});
  EXPECT_EQ(cache.stats().doc_evictions, 0);
  cache.insert_document(same_shard[8], {});  // 9th key in one stripe
  PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.doc_evictions, 1);
  // The evicted entry is the target shard's LRU, not the globally oldest
  // insert (which lives untouched on another shard).
  EXPECT_EQ(cache.find_document(same_shard[0]), nullptr);
  EXPECT_NE(cache.find_document(other_shard[0]), nullptr);
  // The eviction is attributed to the stripe it happened on.
  EXPECT_EQ(cache.doc_shard_stats(target).doc_evictions, 1);
}

TEST(PlanCache, ConcurrentHammerCountersSumAcrossShards) {
  obs::MetricsRegistry metrics;
  PlanCache cache(/*doc_capacity=*/64, /*skeleton_capacity=*/64, &metrics);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  constexpr int kKeys = 96;  // more keys than capacity => steady eviction

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(1234 + t));
      std::uniform_int_distribution<int> key_of(0, kKeys - 1);
      std::uniform_int_distribution<int> action(0, 3);
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string key = "key" + std::to_string(key_of(rng));
        switch (action(rng)) {
          case 0: cache.insert_document(key, {}); break;
          case 1: (void)cache.find_document(key); break;
          case 2: cache.insert_pi(key, IntVec{1, 1}); break;
          default: (void)cache.find_pi(key); break;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Per-shard counters and live-entry counts roll up exactly to stats().
  PlanCacheStats total = cache.stats();
  PlanCacheStats sum;
  for (std::size_t i = 0; i < cache.doc_shard_count(); ++i) {
    PlanCacheStats s = cache.doc_shard_stats(i);
    sum.documents += s.documents;
    sum.doc_hits += s.doc_hits;
    sum.doc_misses += s.doc_misses;
    sum.doc_evictions += s.doc_evictions;
  }
  for (std::size_t i = 0; i < cache.pi_shard_count(); ++i) {
    PlanCacheStats s = cache.pi_shard_stats(i);
    sum.skeletons += s.skeletons;
    sum.pi_hits += s.pi_hits;
    sum.pi_evictions += s.pi_evictions;
  }
  EXPECT_EQ(sum.documents, total.documents);
  EXPECT_EQ(sum.skeletons, total.skeletons);
  EXPECT_EQ(sum.doc_hits, total.doc_hits);
  EXPECT_EQ(sum.doc_misses, total.doc_misses);
  EXPECT_EQ(sum.pi_hits, total.pi_hits);
  EXPECT_EQ(sum.doc_evictions, total.doc_evictions);
  EXPECT_EQ(sum.pi_evictions, total.pi_evictions);
  // Capacity is never exceeded, and every find was either a hit or a miss.
  EXPECT_LE(total.documents, cache.doc_capacity());
  EXPECT_LE(total.skeletons, cache.skeleton_capacity());
  EXPECT_GT(total.doc_hits + total.doc_misses, 0);
  // Eviction counters also reached the metrics registry.
  obs::MetricsSnapshot snap = metrics.snapshot();
  if (total.doc_evictions > 0) {
    EXPECT_EQ(snap.counters.at("serve.cache.doc_evictions"), total.doc_evictions);
  }
}

// ---- service --------------------------------------------------------------

std::string plan_request(const std::string& op, const std::string& program,
                         const std::string& id = "\"r1\"") {
  return "{\"id\":" + id + ",\"op\":\"" + op + "\",\"program\":" + JsonWriter::escape(program) +
         ",\"params\":{\"dim\":2}}";
}

TEST(PlanService, MissThenExactHitOnRenamedNest) {
  obs::MetricsRegistry metrics;
  ServiceOptions opts;
  opts.obs.metrics = &metrics;
  PlanService service(opts);

  JsonValue first = parse_json(service.handle_line(plan_request("partition", sor_like("X", "24"))));
  ASSERT_TRUE(first.get("ok").as_bool()) << first.to_json();
  EXPECT_EQ(first.get("cache").as_string(), "miss");
  EXPECT_EQ(first.get("result").get("loop").as_string(), "nestX");

  JsonValue second =
      parse_json(service.handle_line(plan_request("partition", sor_like("Y", "24"))));
  ASSERT_TRUE(second.get("ok").as_bool()) << second.to_json();
  EXPECT_EQ(second.get("cache").as_string(), "hit");
  // The replayed document is rewritten to the requester's names...
  EXPECT_EQ(second.get("result").get("loop").as_string(), "nestY");
  for (const JsonValue& dep : second.get("result").get("dependences").as_array())
    EXPECT_EQ(dep.get("array").as_string(), "AY");
  // ...and is otherwise byte-identical to the cold result up to names.
  EXPECT_EQ(first.get("canonical").get("exact").as_string(),
            second.get("canonical").get("exact").as_string());
  EXPECT_EQ(first.get("result").get("partition").to_json(),
            second.get("result").get("partition").to_json());

  obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve.cache.miss"), 1);
  EXPECT_EQ(snap.counters.at("serve.cache.hit"), 1);
  EXPECT_EQ(snap.counters.at("serve.requests"), 2);
}

TEST(PlanService, RescaledNestTakesPiPath) {
  obs::MetricsRegistry metrics;
  ServiceOptions opts;
  opts.obs.metrics = &metrics;
  PlanService service(opts);

  JsonValue cold = parse_json(service.handle_line(plan_request("predict", sor_like("X", "24"))));
  ASSERT_TRUE(cold.get("ok").as_bool());
  JsonValue scaled = parse_json(service.handle_line(plan_request("predict", sor_like("X", "48"))));
  ASSERT_TRUE(scaled.get("ok").as_bool());
  EXPECT_EQ(scaled.get("cache").as_string(), "pi");
  // Same structure hash, different exact hash, same reused Π.
  EXPECT_EQ(cold.get("canonical").get("structure").as_string(),
            scaled.get("canonical").get("structure").as_string());
  EXPECT_NE(cold.get("canonical").get("exact").as_string(),
            scaled.get("canonical").get("exact").as_string());
  EXPECT_EQ(cold.get("result").get("time_function").to_json(),
            scaled.get("result").get("time_function").to_json());
  EXPECT_EQ(metrics.snapshot().counters.at("serve.cache.pi"), 1);
}

TEST(PlanService, ParamsChangeSplitsDocumentCache) {
  PlanService service;
  std::string program = sor_like("X", "24");
  ASSERT_EQ(parse_json(service.handle_line(plan_request("predict", program)))
                .get("cache")
                .as_string(),
            "miss");
  // Different accounting => different resolved params => no document hit
  // (the Π skeleton still applies).
  std::string req = "{\"op\":\"predict\",\"program\":" + JsonWriter::escape(program) +
                    ",\"params\":{\"dim\":2,\"accounting\":\"barrier\"}}";
  EXPECT_EQ(parse_json(service.handle_line(req)).get("cache").as_string(), "pi");
}

TEST(PlanService, OpsSliceTheSharedDocument) {
  PlanService service;
  std::string program = sor_like("X", "16");
  JsonValue partition =
      parse_json(service.handle_line(plan_request("partition", program)));
  JsonValue map = parse_json(service.handle_line(plan_request("map", program)));
  JsonValue predict = parse_json(service.handle_line(plan_request("predict", program)));
  JsonValue explain = parse_json(service.handle_line(plan_request("explain", program)));
  // One plan, three cache hits.
  EXPECT_EQ(partition.get("cache").as_string(), "miss");
  EXPECT_EQ(map.get("cache").as_string(), "hit");
  EXPECT_EQ(predict.get("cache").as_string(), "hit");
  EXPECT_EQ(explain.get("cache").as_string(), "hit");
  // Each op keeps its own slice of the document.
  EXPECT_TRUE(partition.get("result").has("partition"));
  EXPECT_FALSE(partition.get("result").has("simulation"));
  EXPECT_TRUE(map.get("result").has("mapping"));
  EXPECT_FALSE(map.get("result").has("simulation"));
  EXPECT_TRUE(predict.get("result").has("simulation"));
  EXPECT_FALSE(predict.get("result").has("mapping"));
  EXPECT_TRUE(explain.get("result").has("mapping"));
  EXPECT_TRUE(explain.get("result").has("simulation"));
  EXPECT_TRUE(explain.get("result").has("validation"));
  // explain additionally exposes the full audit keys.
  EXPECT_TRUE(explain.get("canonical").has("structure_key"));
  EXPECT_TRUE(explain.get("canonical").has("params"));
}

TEST(PlanService, ErrorMappingMatchesTypedHierarchy) {
  obs::MetricsRegistry metrics;
  ServiceOptions opts;
  opts.obs.metrics = &metrics;
  PlanService service(opts);

  // Malformed JSON -> parse/65, id null (it was unreadable).
  JsonValue r = parse_json(service.handle_line("{nope"));
  EXPECT_FALSE(r.get("ok").as_bool());
  EXPECT_EQ(r.get("error").get("kind").as_string(), "parse");
  EXPECT_EQ(r.get("error").get("code").as_int64(), 65);
  EXPECT_TRUE(r.get("id").is_null());

  // Trailing bytes violate NDJSON framing -> parse/65.
  r = parse_json(service.handle_line("{\"op\":\"ping\"} {\"op\":\"ping\"}"));
  EXPECT_EQ(r.get("error").get("code").as_int64(), 65);

  // Unknown op -> config/78, id echoed verbatim.
  r = parse_json(service.handle_line("{\"id\":7,\"op\":\"frobnicate\"}"));
  EXPECT_EQ(r.get("error").get("kind").as_string(), "config");
  EXPECT_EQ(r.get("error").get("code").as_int64(), 78);
  EXPECT_EQ(r.get("id").as_int64(), 7);

  // Missing program -> config/78.
  r = parse_json(service.handle_line("{\"op\":\"partition\"}"));
  EXPECT_EQ(r.get("error").get("code").as_int64(), 78);

  // Unknown params member -> config/78 (strict params validation).
  r = parse_json(service.handle_line(
      "{\"op\":\"partition\",\"program\":\"x\",\"params\":{\"dimension\":2}}"));
  EXPECT_EQ(r.get("error").get("code").as_int64(), 78);

  // Unparsable program -> parse/65 (frontend ParseError).
  r = parse_json(service.handle_line("{\"op\":\"partition\",\"program\":\"loop x {\"}"));
  EXPECT_EQ(r.get("error").get("kind").as_string(), "parse");
  EXPECT_EQ(r.get("error").get("code").as_int64(), 65);

  EXPECT_EQ(metrics.snapshot().counters.at("serve.errors"), 6);
}

TEST(PlanService, PingStatsShutdown) {
  PlanService service;
  JsonValue ping = parse_json(service.handle_line("{\"id\":\"p\",\"op\":\"ping\"}"));
  EXPECT_TRUE(ping.get("ok").as_bool());
  EXPECT_EQ(ping.get("id").as_string(), "p");

  (void)service.handle_line(plan_request("partition", sor_like("X", "16")));
  JsonValue stats = parse_json(service.handle_line("{\"op\":\"stats\"}"));
  EXPECT_EQ(stats.get("cache").get("documents").as_int64(), 1);
  EXPECT_EQ(stats.get("cache").get("skeletons").as_int64(), 1);
  EXPECT_EQ(stats.get("defaults").get("space").as_string(), "symbolic");

  EXPECT_FALSE(service.shutdown_requested());
  JsonValue bye = parse_json(service.handle_line("{\"op\":\"shutdown\"}"));
  EXPECT_TRUE(bye.get("ok").as_bool());
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(PlanService, DocumentEvictionUnderTinyCapacity) {
  ServiceOptions opts;
  opts.doc_cache_capacity = 1;
  PlanService service(opts);
  (void)service.handle_line(plan_request("partition", sor_like("X", "16")));
  (void)service.handle_line(plan_request("partition", sor_like("X", "20")));  // evicts 16
  JsonValue again = parse_json(service.handle_line(plan_request("partition", sor_like("X", "16"))));
  EXPECT_EQ(again.get("cache").as_string(), "pi");  // doc evicted, Π survives
  EXPECT_EQ(service.cache_stats().doc_evictions, 2);
}

TEST(PlanService, ExplainEchoesTheCanonicalKeys) {
  // The daemon's cache keys round-trip against offline canonicalization, so
  // `hypart json` output (which embeds the same keys) can pre-warm a daemon.
  PlanService service;
  std::string program = sor_like("X", "24");
  JsonValue reply = parse_json(service.handle_line(plan_request("explain", program)));
  ASSERT_TRUE(reply.get("ok").as_bool()) << reply.to_json();
  CanonicalForm cf = canonicalize_nest(parse_loop_nest(program));
  EXPECT_EQ(reply.get("canonical").get("structure_key").as_string(), cf.structure_key);
  EXPECT_EQ(reply.get("canonical").get("exact_key").as_string(), cf.exact_key);
  EXPECT_EQ(reply.get("canonical").get("structure").as_string(), cf.structure_hex());
  EXPECT_EQ(reply.get("canonical").get("exact").as_string(), cf.exact_hex());
}

TEST(PlanService, VerifyReplayModeCrossChecksTemplateBytes) {
  // verify_replay re-derives every hit reply from the parsed document and
  // compares byte-for-byte with the template splice; a mismatch would throw
  // internal/70, so a clean hit is the assertion.
  ServiceOptions opts;
  opts.verify_replay = true;
  PlanService service(opts);
  (void)service.handle_line(plan_request("partition", sor_like("X", "24")));
  for (const char* op : {"partition", "map", "predict"}) {
    JsonValue hit = parse_json(service.handle_line(plan_request(op, sor_like("Y", "24"))));
    ASSERT_TRUE(hit.get("ok").as_bool()) << hit.to_json();
    EXPECT_EQ(hit.get("cache").as_string(), "hit");
    EXPECT_EQ(hit.get("result").get("loop").as_string(), "nestY");
  }
}

// ---- batch op -------------------------------------------------------------

std::string batch_request(const std::vector<std::string>& subs, const std::string& id = "\"b1\"") {
  std::string out = "{\"id\":" + id + ",\"op\":\"batch\",\"requests\":[";
  for (std::size_t i = 0; i < subs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += subs[i];
  }
  out += "]}";
  return out;
}

TEST(PlanService, BatchAnswersInRequestOrderAndDedupsWithinTheBatch) {
  obs::MetricsRegistry metrics;
  ServiceOptions opts;
  opts.obs.metrics = &metrics;
  PlanService service(opts);

  // miss, renamed duplicate of the pending miss, a rescale of the pending
  // miss (independent miss: cache probes all happen before any planning, so
  // a Π produced by this batch is not visible within it), invalid op.
  JsonValue reply = parse_json(service.handle_line(batch_request({
      plan_request("partition", sor_like("X", "24"), "1"),
      plan_request("partition", sor_like("Y", "24"), "2"),
      plan_request("predict", sor_like("X", "48"), "3"),
      "{\"id\":4,\"op\":\"ping\"}",
  })));
  ASSERT_TRUE(reply.get("ok").as_bool()) << reply.to_json();
  EXPECT_EQ(reply.get("op").as_string(), "batch");
  EXPECT_EQ(reply.get("id").as_string(), "b1");
  const auto& replies = reply.get("replies").as_array();
  ASSERT_EQ(replies.size(), 4u);

  // Replies line up with requests; ids echo through.
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(replies[i].get("id").as_int64(), static_cast<std::int64_t>(i + 1));
  EXPECT_EQ(replies[0].get("cache").as_string(), "miss");
  EXPECT_EQ(replies[1].get("cache").as_string(), "hit");
  EXPECT_EQ(replies[2].get("cache").as_string(), "miss");
  EXPECT_FALSE(replies[3].get("ok").as_bool());
  EXPECT_EQ(replies[3].get("error").get("code").as_int64(), 78);

  // The duplicate replays its sibling's document under its own names, with
  // no planning time of its own.
  EXPECT_EQ(replies[0].get("result").get("loop").as_string(), "nestX");
  EXPECT_EQ(replies[1].get("result").get("loop").as_string(), "nestY");
  EXPECT_EQ(replies[1].get("plan_us").as_int64(), 0);
  EXPECT_EQ(replies[0].get("result").get("partition").to_json(),
            replies[1].get("result").get("partition").to_json());

  // Everything the batch planned is visible to the next request: a further
  // rescale now reuses the Π skeleton the first batch inserted.
  JsonValue next = parse_json(
      service.handle_line(batch_request({plan_request("predict", sor_like("X", "96"), "5")})));
  EXPECT_EQ(next.get("replies").as_array().at(0).get("cache").as_string(), "pi");

  // Two request lines; per-op and disposition counters count sub-requests.
  obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.counters.at("serve.requests"), 2);
  EXPECT_EQ(snap.counters.at("serve.requests.batch"), 2);
  EXPECT_EQ(snap.counters.at("serve.requests.partition"), 2);
  EXPECT_EQ(snap.counters.at("serve.requests.predict"), 2);
  EXPECT_EQ(snap.counters.at("serve.cache.miss"), 2);
  EXPECT_EQ(snap.counters.at("serve.cache.hit"), 1);
  EXPECT_EQ(snap.counters.at("serve.cache.pi"), 1);
  EXPECT_EQ(snap.counters.at("serve.errors"), 1);
}

TEST(PlanService, BatchSubRepliesMatchSingleRequestReplies) {
  // Everything except plan_us is byte-identical between a batch sub-reply
  // and the same request served alone on an identically primed service.
  PlanService alone;
  PlanService batched;
  std::string prime = plan_request("partition", sor_like("X", "24"), "\"p\"");
  (void)alone.handle_line(prime);
  (void)batched.handle_line(prime);

  std::string renamed = plan_request("map", sor_like("Y", "24"), "\"q\"");
  JsonValue single = parse_json(alone.handle_line(renamed));
  JsonValue batch = parse_json(batched.handle_line(batch_request({renamed})));
  JsonValue sub = batch.get("replies").as_array().at(0);
  for (const char* key : {"cache", "canonical", "id", "ok", "op", "result"})
    EXPECT_EQ(single.get(key).to_json(), sub.get(key).to_json()) << key;
}

TEST(PlanService, BatchValidation) {
  ServiceOptions opts;
  opts.max_batch = 2;
  PlanService service(opts);

  // requests must be a non-empty array...
  JsonValue r = parse_json(service.handle_line("{\"op\":\"batch\",\"requests\":7}"));
  EXPECT_FALSE(r.get("ok").as_bool());
  EXPECT_EQ(r.get("error").get("code").as_int64(), 78);
  r = parse_json(service.handle_line("{\"op\":\"batch\",\"requests\":[]}"));
  EXPECT_EQ(r.get("error").get("code").as_int64(), 78);

  // ...no larger than max_batch (whole-batch rejection)...
  std::string sub = plan_request("partition", sor_like("X", "16"));
  r = parse_json(service.handle_line(batch_request({sub, sub, sub})));
  EXPECT_FALSE(r.get("ok").as_bool());
  EXPECT_EQ(r.get("error").get("code").as_int64(), 78);

  // ...and nesting is rejected per sub-request while siblings still plan.
  r = parse_json(service.handle_line(batch_request({batch_request({sub}), sub})));
  ASSERT_TRUE(r.get("ok").as_bool()) << r.to_json();
  const auto& replies = r.get("replies").as_array();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_FALSE(replies[0].get("ok").as_bool());
  EXPECT_EQ(replies[0].get("error").get("code").as_int64(), 78);
  EXPECT_TRUE(replies[1].get("ok").as_bool());
}

TEST(PlanService, BatchFansColdMissesAcrossThreads) {
  // Structurally distinct nests in one batch: every one is a genuine miss
  // planned in the parallel pass; dispositions and counters stay
  // deterministic regardless of worker scheduling.
  obs::MetricsRegistry metrics;
  ServiceOptions opts;
  opts.obs.metrics = &metrics;
  opts.batch_parallelism = 4;
  PlanService service(opts);

  std::vector<std::string> subs;
  std::vector<std::string> programs = {
      sor_like("X", "16"),
      "loop a { for i = 1 to 20 for j = 1 to 20 B[i, j] = B[i-1, j-1] + B[i, j-1]; }",
      "loop b { for i = 1 to 12 for j = 1 to 12 for k = 1 to 12 "
      "C[i, j, k] = C[i-1, j, k] + C[i, j-1, k] + C[i, j, k-1]; }",
  };
  for (std::size_t i = 0; i < programs.size(); ++i)
    subs.push_back(plan_request("partition", programs[i], std::to_string(i)));
  JsonValue reply = parse_json(service.handle_line(batch_request(subs)));
  ASSERT_TRUE(reply.get("ok").as_bool()) << reply.to_json();
  const auto& replies = reply.get("replies").as_array();
  ASSERT_EQ(replies.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(replies[i].get("ok").as_bool()) << replies[i].to_json();
    EXPECT_EQ(replies[i].get("id").as_int64(), static_cast<std::int64_t>(i));
    EXPECT_EQ(replies[i].get("cache").as_string(), "miss");
  }
  EXPECT_EQ(metrics.snapshot().counters.at("serve.cache.miss"), 3);
  EXPECT_EQ(service.cache_stats().documents, 3u);
}

// ---- socket server --------------------------------------------------------

int connect_unix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (fd < 0 || ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) return -1;
  return fd;
}

std::string roundtrip(int fd, const std::string& request) {
  std::string line = request + "\n";
  if (!write_full(fd, line.data(), line.size())) return "";
  std::string buffer;
  char chunk[4096];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return "";
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) return buffer.substr(0, nl);
  }
}

std::string test_socket_path(const char* name) {
  std::string dir = ::getenv("TMPDIR") != nullptr ? ::getenv("TMPDIR") : "/tmp";
  return dir + "/hypart_test_" + name + "_" + std::to_string(::getpid()) + ".sock";
}

TEST(Server, ConcurrentClientsOverUnixSocket) {
  PlanService service;
  ServerOptions sopts;
  sopts.unix_path = test_socket_path("conc");
  sopts.threads = 4;
  Server server(service, sopts);
  server.start();

  constexpr int kClients = 6;
  constexpr int kPerClient = 4;
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      int fd = connect_unix(sopts.unix_path);
      ASSERT_GE(fd, 0);
      for (int k = 0; k < kPerClient; ++k) {
        std::string tag = "c" + std::to_string(c);
        std::string reply = roundtrip(fd, plan_request("partition", sor_like(tag, "16")));
        JsonValue v = parse_json(reply);
        if (v.get("ok").as_bool()) ++ok_count;
      }
      ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kPerClient);
  // All clients planned the same structure: exactly one miss ever.
  PlanCacheStats s = service.cache_stats();
  EXPECT_GE(s.doc_hits, 1);
  EXPECT_EQ(s.documents, 1u);
  server.request_stop();
  server.stop();
}

TEST(Server, MalformedLinesGetErrorRepliesAndConnectionSurvives) {
  PlanService service;
  ServerOptions sopts;
  sopts.unix_path = test_socket_path("mal");
  Server server(service, sopts);
  server.start();

  int fd = connect_unix(sopts.unix_path);
  ASSERT_GE(fd, 0);
  JsonValue bad = parse_json(roundtrip(fd, "this is not json"));
  EXPECT_FALSE(bad.get("ok").as_bool());
  EXPECT_EQ(bad.get("error").get("code").as_int64(), 65);
  // The same connection still serves good requests afterwards.
  JsonValue good = parse_json(roundtrip(fd, "{\"op\":\"ping\"}"));
  EXPECT_TRUE(good.get("ok").as_bool());
  ::close(fd);
  server.request_stop();
  server.stop();
}

TEST(Server, ShutdownOpStopsTheServer) {
  PlanService service;
  ServerOptions sopts;
  sopts.unix_path = test_socket_path("bye");
  Server server(service, sopts);
  server.start();

  int fd = connect_unix(sopts.unix_path);
  ASSERT_GE(fd, 0);
  JsonValue bye = parse_json(roundtrip(fd, "{\"op\":\"shutdown\"}"));
  EXPECT_TRUE(bye.get("ok").as_bool());
  ::close(fd);
  server.wait();  // returns because the shutdown op triggered request_stop
  SUCCEED();
}

TEST(Server, OverloadShedsConnectionsWithTypedError) {
  obs::MetricsRegistry metrics;
  ServiceOptions vopts;
  vopts.obs.metrics = &metrics;
  PlanService service(vopts);
  ServerOptions sopts;
  sopts.unix_path = test_socket_path("ovl");
  sopts.threads = 1;
  sopts.max_pending = 1;
  Server server(service, sopts);
  server.start();

  // A claims the single worker (workers own a connection until it closes).
  int a = connect_unix(sopts.unix_path);
  ASSERT_GE(a, 0);
  EXPECT_TRUE(parse_json(roundtrip(a, "{\"op\":\"ping\"}")).get("ok").as_bool());

  // B fills the pending queue.  Give the accept thread a moment to queue it
  // before C arrives.
  int b = connect_unix(sopts.unix_path);
  ASSERT_GE(b, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // C is over the bound: the server pushes one typed error line and closes
  // without waiting for a request, so just read.
  int c = connect_unix(sopts.unix_path);
  ASSERT_GE(c, 0);
  std::string pushed;
  char ch = 0;
  while (::read(c, &ch, 1) == 1 && ch != '\n') pushed.push_back(ch);
  JsonValue shed = parse_json(pushed);
  EXPECT_FALSE(shed.get("ok").as_bool());
  EXPECT_EQ(shed.get("error").get("kind").as_string(), "overloaded");
  EXPECT_EQ(shed.get("error").get("code").as_int64(), 79);
  char extra = 0;
  EXPECT_EQ(::read(c, &extra, 1), 0);  // EOF: connection was closed
  ::close(c);

  // Once A releases the worker, the queued B is served normally.
  ::close(a);
  EXPECT_TRUE(parse_json(roundtrip(b, "{\"op\":\"ping\"}")).get("ok").as_bool());
  ::close(b);

  EXPECT_EQ(metrics.snapshot().counters.at("serve.overload.rejected"), 1);
  server.request_stop();
  server.stop();
}

TEST(Server, BatchOverUnixSocket) {
  PlanService service;
  ServerOptions sopts;
  sopts.unix_path = test_socket_path("batch");
  Server server(service, sopts);
  server.start();

  int fd = connect_unix(sopts.unix_path);
  ASSERT_GE(fd, 0);
  JsonValue reply = parse_json(roundtrip(
      fd, batch_request({plan_request("partition", sor_like("X", "16"), "1"),
                         plan_request("partition", sor_like("Y", "16"), "2")})));
  ASSERT_TRUE(reply.get("ok").as_bool()) << reply.to_json();
  const auto& replies = reply.get("replies").as_array();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].get("cache").as_string(), "miss");
  EXPECT_EQ(replies[1].get("cache").as_string(), "hit");
  ::close(fd);
  server.request_stop();
  server.stop();
}

TEST(Server, TcpEphemeralPortRoundtrip) {
  PlanService service;
  ServerOptions sopts;  // no unix_path, port 0 => ephemeral TCP
  Server server(service, sopts);
  server.start();
  ASSERT_GT(server.port(), 0);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  JsonValue pong = parse_json(roundtrip(fd, "{\"op\":\"ping\"}"));
  EXPECT_TRUE(pong.get("ok").as_bool());
  ::close(fd);
  server.request_stop();
  server.stop();
}

}  // namespace
}  // namespace hypart::serve
