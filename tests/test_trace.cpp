// hypart::obs tracing tests: span nesting, JSON escaping (round-tripped
// through the shared JsonWriter escaper), NullSink no-op behavior, and
// structural validity of the Chrome trace / JSONL outputs.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/json_writer.hpp"

namespace {

using namespace hypart;
using namespace hypart::obs;

// Minimal structural JSON check: braces/brackets balance outside string
// literals, escapes are well-formed, and the document is a single value.
bool structurally_valid_json(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool closed_top = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') {
        if (i + 1 >= s.size()) return false;
        ++i;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string literal
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[':
        if (closed_top) return false;
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        if (depth == 0) closed_top = true;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string && closed_top;
}

TEST(NullSinkTest, DropsEventsAndFlushIsNoop) {
  NullSink sink;
  TraceEvent e;
  e.name = "x";
  sink.event(e);
  sink.flush();  // must not crash; nothing observable by design
}

TEST(NullSinkTest, HelpersAreNullSafe) {
  // All emit helpers and ScopedSpan accept a null sink without touching it.
  emit_complete(nullptr, "a", "b", 0, 1, kPipelinePid, 0);
  emit_instant(nullptr, "a", "b", 0, kPipelinePid, 0);
  emit_counter(nullptr, "a", 0, kPipelinePid, 1.0);
  emit_process_name(nullptr, kPipelinePid, "p");
  emit_thread_name(nullptr, kPipelinePid, 0, "t");
  ScopedSpan span(nullptr, "span", "cat");
  span.arg("k", std::int64_t{1});
}

TEST(ScopedSpanTest, NestedSpansEmitInnerBeforeOuter) {
  ChromeTraceSink sink;
  {
    ScopedSpan outer(&sink, "outer", "test");
    {
      ScopedSpan inner(&sink, "inner", "test");
    }
  }
  EXPECT_EQ(sink.event_count(), 2u);
  std::string json = sink.str();
  std::size_t inner_pos = json.find("\"inner\"");
  std::size_t outer_pos = json.find("\"outer\"");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_LT(inner_pos, outer_pos);  // inner destructs (and emits) first
  EXPECT_TRUE(structurally_valid_json(json));
}

TEST(ScopedSpanTest, OuterSpanContainsInnerSpan) {
  JsonlSink sink;
  {
    ScopedSpan outer(&sink, "outer", "test");
    {
      ScopedSpan inner(&sink, "inner", "test");
    }
  }
  // Line 0 is the inner span, line 1 the outer; pull ts/dur out of each.
  const std::string& out = sink.str();
  auto number_after = [&](std::size_t from, const char* field) {
    std::size_t p = out.find(field, from);
    EXPECT_NE(p, std::string::npos) << field;
    return std::stod(out.substr(p + std::strlen(field)));
  };
  std::size_t line2 = out.find('\n');
  ASSERT_NE(line2, std::string::npos);
  double inner_ts = number_after(0, "\"ts\":");
  double inner_dur = number_after(0, "\"dur\":");
  double outer_ts = number_after(line2, "\"ts\":");
  double outer_dur = number_after(line2, "\"dur\":");
  EXPECT_LE(outer_ts, inner_ts);
  EXPECT_GE(outer_ts + outer_dur, inner_ts + inner_dur);
}

TEST(EscapingTest, EventJsonRoundTripsThroughJsonWriter) {
  // The event serializer must escape exactly like the shared JsonWriter.
  const std::string nasty = "we\"ird\\name\nwith\ttabs\rand\x01ctl";
  TraceEvent e;
  e.name = nasty;
  e.cat = "cat\"egory";
  e.phase = Phase::Instant;
  e.args.emplace_back("key\n", ArgValue{std::string("val\"ue")});
  std::string json = event_to_json(e);
  EXPECT_NE(json.find(JsonWriter::escape(nasty)), std::string::npos);
  EXPECT_NE(json.find(JsonWriter::escape("cat\"egory")), std::string::npos);
  EXPECT_NE(json.find(JsonWriter::escape("key\n")), std::string::npos);
  EXPECT_NE(json.find(JsonWriter::escape("val\"ue")), std::string::npos);
  EXPECT_TRUE(structurally_valid_json(json));
}

TEST(ChromeTraceSinkTest, EmitsTraceEventsArrayWithRequiredFields) {
  ChromeTraceSink sink;
  emit_process_name(&sink, kSimPid, "simulator");
  emit_thread_name(&sink, kSimPid, 0, "proc 0");
  emit_complete(&sink, "compute", "sim", 10.0, 5.0, kSimPid, 0,
                {{"step", std::int64_t{3}}, {"iterations", std::int64_t{7}}});
  emit_instant(&sink, "msg", "sim", 15.0, kSimPid, 0,
               {{"src", std::int64_t{0}}, {"dst", std::int64_t{1}}});
  emit_counter(&sink, "busiest_link_words", 15.0, kSimPid, 4.0);

  std::string json = sink.str();
  EXPECT_TRUE(structurally_valid_json(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (const char* field : {"\"ph\"", "\"ts\"", "\"pid\"", "\"tid\""})
    EXPECT_NE(json.find(field), std::string::npos) << field;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
}

TEST(JsonlSinkTest, OneValidJsonObjectPerLine) {
  JsonlSink sink;
  emit_complete(&sink, "a", "c", 1.0, 2.0, kPipelinePid, 0);
  emit_instant(&sink, "b", "c", 3.0, kPipelinePid, 1);
  const std::string& out = sink.str();
  std::size_t lines = 0, pos = 0, nl;
  while ((nl = out.find('\n', pos)) != std::string::npos) {
    std::string line = out.substr(pos, nl - pos);
    EXPECT_TRUE(structurally_valid_json(line)) << line;
    ++lines;
    pos = nl + 1;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(pos, out.size());  // output ends with a newline
}

TEST(ConcurrencyTest, JsonlSinkKeepsLinesWholeUnderConcurrentEmission) {
  // 8 threads race complete/instant events into one sink; every output
  // line must still be one structurally valid JSON object (no interleaved
  // fragments) and every event must be present.
  JsonlSink sink;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&sink, t] {
      for (int i = 0; i < kPerThread; ++i) {
        emit_complete(&sink, "span_t" + std::to_string(t), "race", i, 1.0, kPipelinePid,
                      static_cast<std::uint64_t>(t));
        emit_instant(&sink, "mark_t" + std::to_string(t), "race", i, kPipelinePid,
                     static_cast<std::uint64_t>(t));
      }
    });
  for (auto& th : pool) th.join();

  const std::string out = sink.str();
  std::size_t lines = 0, pos = 0, nl;
  while ((nl = out.find('\n', pos)) != std::string::npos) {
    std::string line = out.substr(pos, nl - pos);
    ASSERT_TRUE(structurally_valid_json(line)) << "line " << lines << ": " << line;
    ++lines;
    pos = nl + 1;
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(kThreads) * kPerThread * 2);
  EXPECT_EQ(pos, out.size());
}

TEST(ConcurrencyTest, ChromeTraceSinkCountsEveryConcurrentEvent) {
  ChromeTraceSink sink;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&sink, t] {
      for (int i = 0; i < kPerThread; ++i)
        emit_complete(&sink, "e", "race", i, 1.0, kPipelinePid,
                      static_cast<std::uint64_t>(t));
    });
  for (auto& th : pool) th.join();
  EXPECT_EQ(sink.event_count(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_TRUE(structurally_valid_json(sink.str()));
}

TEST(WallClockTest, Monotonic) {
  double a = wall_clock_us();
  double b = wall_clock_us();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

}  // namespace
