#include "sim/exec_sim.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "mapping/baseline_map.hpp"
#include "mapping/hypercube_map.hpp"
#include "perf/perf_model.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

struct PartitionFixture {
  std::unique_ptr<ComputationStructure> q;
  std::unique_ptr<ProjectedStructure> ps;
  Grouping grouping;
  Partition partition;
  TaskInteractionGraph tig;
  TimeFunction tf;
};

PartitionFixture make(const LoopNest& nest, const IntVec& pi) {
  PartitionFixture s;
  s.q = std::make_unique<ComputationStructure>(ComputationStructure::from_loop(nest));
  s.tf = TimeFunction{pi};
  s.ps = std::make_unique<ProjectedStructure>(*s.q, s.tf);
  s.grouping = Grouping::compute(*s.ps);
  s.partition = Partition::build(*s.q, s.grouping);
  s.tig = TaskInteractionGraph::from_partition(*s.q, s.partition, s.grouping);
  return s;
}

TEST(ExecSim, PerStepBarrierWorstProcTieBreaksToLowestPid) {
  // Constructed exact tie at step 0 with t_calc=1, t_start=3, t_comm=4:
  // proc 0 computes 8 iterations (Cost{8,0,0}, value 8) while proc 1
  // computes 1 iteration and sends one 1-word message (Cost{1,1,1}, value
  // 1 + 3 + 4 = 8).  The reported worst-proc Cost composition must be the
  // lowest processor id's — the dense path iterates an ordered per-step
  // map, matching the symbolic path's ascending scan.
  std::vector<IntVec> pts;
  for (std::int64_t j = 0; j <= 8; ++j) pts.push_back({0, j});
  pts.push_back({1, 8});  // target of the only cross-processor arc
  ComputationStructure q(pts, {{1, 0}});
  std::vector<std::size_t> labels(pts.size(), 0);
  labels[8] = 1;   // (0,8): the comm-heavy processor's single iteration
  labels[9] = 2;   // (1,8): step-1 vertex, back on proc 0
  Partition part = Partition::from_labels(q, labels);
  Mapping m;
  m.processor_count = 2;
  m.block_to_proc = {0, 1, 0};
  const MachineParams machine{1.0, 3.0, 4.0};
  SimOptions opts;
  opts.accounting = CommAccounting::PerStepBarrier;
  opts.flops_per_iteration = 1;
  SimResult r =
      simulate_execution(q, TimeFunction{{1, 0}}, part, m, Hypercube(1), machine, opts);
  EXPECT_EQ(r.messages, 1);
  EXPECT_EQ(r.words, 1);
  // Step 0 worst = proc 0's {8,0,0} (not proc 1's {1,1,1}); step 1 adds
  // {1,0,0}.  A wrong tie-break would report total {2,1,1} instead.
  EXPECT_EQ(r.total, (Cost{9, 0, 0}));
  EXPECT_EQ(r.comm_bottleneck, (Cost{0, 0, 0}));

  // Swapped processor assignment: now the comm-heavy composition sits on
  // proc 0 and must win the same tie.
  m.block_to_proc = {1, 0, 1};
  SimResult rs =
      simulate_execution(q, TimeFunction{{1, 0}}, part, m, Hypercube(1), machine, opts);
  EXPECT_EQ(rs.total, (Cost{2, 1, 1}));
  EXPECT_EQ(rs.comm_bottleneck, (Cost{0, 1, 1}));
}

TEST(ExecSim, SingleProcessorIsAllCompute) {
  PartitionFixture s = make(workloads::matrix_vector(8), {1, 1});
  Mapping one;
  one.processor_count = 1;
  one.block_to_proc.assign(s.partition.block_count(), 0);
  SimOptions opts;
  opts.flops_per_iteration = 2;
  SimResult r = simulate_execution(*s.q, s.tf, s.partition, one, Hypercube(0), MachineParams{}, opts);
  EXPECT_EQ(r.total, (Cost{2 * 64, 0, 0}));
  EXPECT_EQ(r.messages, 0);
  EXPECT_EQ(r.words, 0);
  EXPECT_EQ(r.per_proc_iterations[0], 64);
}

TEST(ExecSim, MatvecMatchesClosedFormPaperAccounting) {
  // The simulator under PaperMaxChannel accounting must reproduce the
  // Section IV closed form exactly for the matvec partition/mapping.
  const std::int64_t m = 32;
  PartitionFixture s = make(workloads::matrix_vector(m), {1, 1});
  for (unsigned dim : {1u, 2u, 3u}) {
    HypercubeMappingResult hm = map_to_hypercube(s.tig, dim);
    SimOptions opts;
    opts.flops_per_iteration = 2;
    SimResult r = simulate_execution(*s.q, s.tf, s.partition, hm.mapping, Hypercube(dim),
                                     MachineParams{}, opts);
    Cost expected = perf::matvec_exec_time(m, std::int64_t{1} << dim);
    EXPECT_EQ(r.total, expected) << "N = " << (1 << dim);
  }
}

TEST(ExecSim, CommInvariantInMachineSize) {
  // Table I's observation: the comm term is independent of N.
  const std::int64_t m = 24;
  PartitionFixture s = make(workloads::matrix_vector(m), {1, 1});
  std::int64_t comm_start = -1;
  for (unsigned dim : {1u, 2u, 3u}) {
    HypercubeMappingResult hm = map_to_hypercube(s.tig, dim);
    SimResult r = simulate_execution(*s.q, s.tf, s.partition, hm.mapping, Hypercube(dim),
                                     MachineParams{}, SimOptions{});
    if (comm_start < 0) comm_start = r.comm_bottleneck.start;
    EXPECT_EQ(r.comm_bottleneck.start, comm_start);
    EXPECT_EQ(r.comm_bottleneck.start, 2 * m - 2);
  }
}

TEST(ExecSim, StepsMatchScheduleSpan) {
  PartitionFixture s = make(workloads::example_l1(), {1, 1});
  Mapping one;
  one.processor_count = 1;
  one.block_to_proc.assign(s.partition.block_count(), 0);
  SimResult r = simulate_execution(*s.q, s.tf, s.partition, one, Hypercube(0), MachineParams{},
                                   SimOptions{});
  EXPECT_EQ(r.steps, 7);  // hyperplanes i+j = 0..6
}

TEST(ExecSim, PerStepBarrierAggregatesMessages) {
  PartitionFixture s = make(workloads::example_l1(), {1, 1});
  HypercubeMappingResult hm = map_to_hypercube(s.tig, 1);
  SimOptions opts;
  opts.accounting = CommAccounting::PerStepBarrier;
  SimResult r = simulate_execution(*s.q, s.tf, s.partition, hm.mapping, Hypercube(1),
                                   MachineParams{}, opts);
  // Aggregation: messages (per step/src/dst) <= words (per arc).
  EXPECT_GT(r.words, 0);
  EXPECT_LE(r.messages, r.words);
  EXPECT_GT(r.time, 0.0);
}

TEST(ExecSim, BarrierModelIsAtLeastMaxChannelCompute) {
  // The step-synchronous model includes idle time, so its compute+comm time
  // is at least the bottleneck-compute of the aggregate model.
  PartitionFixture s = make(workloads::matrix_vector(12), {1, 1});
  HypercubeMappingResult hm = map_to_hypercube(s.tig, 2);
  MachineParams mp{1.0, 0.0, 0.0};  // compute only
  SimOptions agg;
  SimOptions barrier;
  barrier.accounting = CommAccounting::PerStepBarrier;
  SimResult ra = simulate_execution(*s.q, s.tf, s.partition, hm.mapping, Hypercube(2), mp, agg);
  SimResult rb = simulate_execution(*s.q, s.tf, s.partition, hm.mapping, Hypercube(2), mp, barrier);
  EXPECT_GE(rb.time, ra.compute_bottleneck.value(mp));
}

TEST(ExecSim, ChargeHopsIncreasesRemoteCost) {
  PartitionFixture s = make(workloads::matrix_vector(16), {1, 1});
  // Round-robin scatters adjacent blocks across the cube -> multi-hop routes.
  Mapping rr = map_round_robin(s.tig, 8);
  SimOptions plain;
  SimOptions hops;
  hops.charge_hops = true;
  SimResult r0 = simulate_execution(*s.q, s.tf, s.partition, rr, Hypercube(3), MachineParams{},
                                    plain);
  SimResult r1 = simulate_execution(*s.q, s.tf, s.partition, rr, Hypercube(3), MachineParams{},
                                    hops);
  EXPECT_GE(r1.time, r0.time);
}

TEST(ExecSim, SpeedupSaneAndBounded) {
  const std::int64_t m = 32;
  PartitionFixture s = make(workloads::matrix_vector(m), {1, 1});
  HypercubeMappingResult hm = map_to_hypercube(s.tig, 3);
  SimOptions opts;
  opts.flops_per_iteration = 2;
  MachineParams mp{1.0, 2.0, 1.0};
  SimResult r = simulate_execution(*s.q, s.tf, s.partition, hm.mapping, Hypercube(3), mp, opts);
  double sp = r.speedup(mp, static_cast<std::int64_t>(s.q->vertices().size()), 2);
  EXPECT_GT(sp, 1.0);
  EXPECT_LE(sp, 8.0);
}

TEST(ExecSim, ValidationErrors) {
  PartitionFixture s = make(workloads::example_l1(), {1, 1});
  Mapping bad;
  bad.processor_count = 2;
  bad.block_to_proc = {0};  // wrong size
  EXPECT_THROW(simulate_execution(*s.q, s.tf, s.partition, bad, Hypercube(1), MachineParams{},
                                  SimOptions{}),
               std::invalid_argument);
  Mapping too_many;
  too_many.processor_count = 8;
  too_many.block_to_proc.assign(s.partition.block_count(), 0);
  EXPECT_THROW(simulate_execution(*s.q, s.tf, s.partition, too_many, Hypercube(1), MachineParams{},
                                  SimOptions{}),
               std::invalid_argument);
}

TEST(ExecSim, BarrierHandComputedTinyCase) {
  // 1-D chain of 4 iterations, d = (1); two blocks of two iterations, one
  // per processor.  Steps 0..3, one iteration each; the boundary arc
  // (1)->(2) is a one-word message sent at step 1.
  ComputationStructure q({{0}, {1}, {2}, {3}}, {{1}});
  TimeFunction tf{{1}};
  Partition part = Partition::from_labels(q, {0, 0, 1, 1});
  Mapping map;
  map.processor_count = 2;
  map.block_to_proc = {0, 1};
  SimOptions opts;
  opts.accounting = CommAccounting::PerStepBarrier;
  opts.flops_per_iteration = 3;
  MachineParams mp{1.0, 10.0, 2.0};
  SimResult r = simulate_execution(q, tf, part, map, Hypercube(1), mp, opts);
  // Steps 0..3: compute 3 t_calc each; step 1 additionally sends one
  // message (10 + 2).  Total = 4*3 + 12 = 24.
  EXPECT_EQ(r.steps, 4);
  EXPECT_EQ(r.messages, 1);
  EXPECT_EQ(r.words, 1);
  EXPECT_DOUBLE_EQ(r.time, 24.0);
  EXPECT_EQ(r.total, (Cost{12, 1, 1}));
}

TEST(ExecSim, PaperAccountingHandComputedTinyCase) {
  // Same chain: compute bottleneck 2 iterations * 3 flops; one channel of
  // one word.
  ComputationStructure q({{0}, {1}, {2}, {3}}, {{1}});
  TimeFunction tf{{1}};
  Partition part = Partition::from_labels(q, {0, 0, 1, 1});
  Mapping map;
  map.processor_count = 2;
  map.block_to_proc = {0, 1};
  SimOptions opts;
  opts.flops_per_iteration = 3;
  SimResult r = simulate_execution(q, tf, part, map, Hypercube(1), MachineParams{}, opts);
  EXPECT_EQ(r.total, (Cost{6, 1, 1}));
  EXPECT_EQ(r.compute_bottleneck, (Cost{6, 0, 0}));
  EXPECT_EQ(r.comm_bottleneck, (Cost{0, 1, 1}));
}

TEST(ExecSim, LinkContentionHandComputedTwoHopCase) {
  // Iterations on procs 00 and 11 of a 2-cube: the e-cube route 00->01->11
  // uses two links; each carries the single one-word message.
  ComputationStructure q({{0}, {1}}, {{1}});
  TimeFunction tf{{1}};
  Partition part = Partition::from_labels(q, {0, 1});
  Mapping map;
  map.processor_count = 4;
  map.block_to_proc = {0b00, 0b11};
  SimOptions opts;
  opts.accounting = CommAccounting::LinkContention;
  MachineParams mp{1.0, 10.0, 2.0};
  SimResult r = simulate_execution(q, tf, part, map, Hypercube(2), mp, opts);
  // Step 0: compute 1 + busiest link (1 msg, 1 word) = 1 + 12; step 1:
  // compute 1.  Total = 14... the message occupies each of the two links
  // with (10+2), but per-step max is a single link's 12.
  EXPECT_DOUBLE_EQ(r.time, 1.0 + 12.0 + 1.0);
  EXPECT_EQ(r.max_link_words, 1);
  EXPECT_EQ(r.words, 1);
}

TEST(ExecSim, FromLabelsPartitionSimulates) {
  // Partition::from_labels wraps arbitrary partitionings (e.g. the GCD
  // baseline's residue classes) for the simulator.
  ComputationStructure q = ComputationStructure::from_loop(workloads::strided_recurrence(5, 2));
  std::vector<std::size_t> labels(q.vertices().size());
  for (std::size_t vid = 0; vid < labels.size(); ++vid) {
    const IntVec& v = q.vertices()[vid];
    labels[vid] = static_cast<std::size_t>((v[0] % 2) * 2 + (v[1] % 2));
  }
  Partition part = Partition::from_labels(q, labels);
  EXPECT_EQ(part.block_count(), 4u);
  Mapping map;
  map.processor_count = 4;
  map.block_to_proc = {0, 1, 2, 3};
  SimResult r = simulate_execution(q, TimeFunction{{1, 1}}, part, map, Hypercube(2),
                                   MachineParams{}, SimOptions{});
  // Residue classes are dependence-independent: zero messages.
  EXPECT_EQ(r.messages, 0);
  EXPECT_EQ(r.comm_bottleneck, (Cost{0, 0, 0}));
}

class SimMonotonicityProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SimMonotonicityProperty, MoreProcessorsNeverIncreaseComputeBottleneck) {
  std::int64_t m = GetParam();
  PartitionFixture s = make(workloads::matrix_vector(m), {1, 1});
  std::int64_t prev = INT64_MAX;
  for (unsigned dim : {0u, 1u, 2u}) {
    HypercubeMappingResult hm = map_to_hypercube(s.tig, dim);
    SimResult r = simulate_execution(*s.q, s.tf, s.partition, hm.mapping, Hypercube(dim),
                                     MachineParams{}, SimOptions{});
    EXPECT_LE(r.compute_bottleneck.calc, prev);
    prev = r.compute_bottleneck.calc;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimMonotonicityProperty, ::testing::Values(8, 16, 20, 32));

}  // namespace
}  // namespace hypart
