#include "loop/expr.hpp"

#include <gtest/gtest.h>

namespace hypart {
namespace {

double eval_no_arrays(const ExprPtr& e) {
  return evaluate(e, [](const std::string&, const IntVec&) -> double {
    throw std::logic_error("no arrays expected");
  }, {});
}

TEST(ExprTest, ConstantsAndArithmetic) {
  EXPECT_DOUBLE_EQ(eval_no_arrays(constant(3.5)), 3.5);
  EXPECT_DOUBLE_EQ(eval_no_arrays(constant(2.0) + constant(3.0)), 5.0);
  EXPECT_DOUBLE_EQ(eval_no_arrays(constant(2.0) - constant(3.0)), -1.0);
  EXPECT_DOUBLE_EQ(eval_no_arrays(constant(2.0) * constant(3.0)), 6.0);
  EXPECT_DOUBLE_EQ(eval_no_arrays(constant(3.0) / constant(2.0)), 1.5);
  EXPECT_DOUBLE_EQ(eval_no_arrays(-constant(4.0)), -4.0);
  EXPECT_DOUBLE_EQ(eval_no_arrays(emin(constant(1.0), constant(2.0))), 1.0);
  EXPECT_DOUBLE_EQ(eval_no_arrays(emax(constant(1.0), constant(2.0))), 2.0);
}

TEST(ExprTest, ArrayRefEvaluation) {
  // A[i+1, j] at iteration (2, 5) reads element (3, 5).
  ExprPtr e = ref("A", {idx(0) + 1, idx(1)});
  IntVec seen_element;
  std::string seen_array;
  double v = evaluate(e,
                      [&](const std::string& a, const IntVec& el) {
                        seen_array = a;
                        seen_element = el;
                        return 42.0;
                      },
                      {2, 5});
  EXPECT_DOUBLE_EQ(v, 42.0);
  EXPECT_EQ(seen_array, "A");
  EXPECT_EQ(seen_element, (IntVec{3, 5}));
}

TEST(ExprTest, OperationCount) {
  EXPECT_EQ(operation_count(constant(1.0)), 0);
  EXPECT_EQ(operation_count(ref("A", {idx(0)})), 0);
  EXPECT_EQ(operation_count(constant(1.0) + constant(2.0)), 1);
  ExprPtr fma = ref("C", {idx(0)}) + ref("A", {idx(0)}) * ref("B", {idx(0)});
  EXPECT_EQ(operation_count(fma), 2);
  EXPECT_EQ(operation_count(-fma), 3);
}

TEST(ExprTest, CollectRefs) {
  ExprPtr e = ref("C", {idx(0)}) + ref("A", {idx(0)}) * ref("B", {idx(1)}) + constant(1.0);
  std::vector<const Expr*> refs;
  collect_refs(e, refs);
  ASSERT_EQ(refs.size(), 3u);
  std::multiset<std::string> names;
  for (const Expr* r : refs) names.insert(r->array);
  EXPECT_EQ(names, (std::multiset<std::string>{"A", "B", "C"}));
}

TEST(ExprTest, ToString) {
  ExprPtr e = ref("C", {idx(0), idx(1)}) + ref("A", {idx(0) - 1, idx(1)}) * constant(2.0);
  std::string s = e->to_string({"i", "j"});
  EXPECT_NE(s.find("C[i,j]"), std::string::npos);
  EXPECT_NE(s.find("A[i-1,j]"), std::string::npos);
  EXPECT_NE(s.find("*"), std::string::npos);
}

TEST(ExprTest, NullEvaluationThrows) {
  EXPECT_THROW(eval_no_arrays(nullptr), std::invalid_argument);
}

TEST(ExprTest, AssignBuilderDerivesAccesses) {
  LoopNest nest = LoopNestBuilder("t")
                      .loop("i", 0, 3)
                      .assign("S", "A", {idx(0)},
                              ref("A", {idx(0) - 1}) + ref("B", {idx(0)}) * ref("B", {idx(0)}))
                      .build();
  const Statement& s = nest.statements()[0];
  EXPECT_TRUE(s.is_executable());
  EXPECT_EQ(s.writes().size(), 1u);
  // B[i] appears twice in the expression but is deduplicated as an access.
  EXPECT_EQ(s.reads().size(), 2u);
  EXPECT_EQ(s.flop_count, 2);
}

TEST(ExprTest, AssignNullThrows) {
  LoopNestBuilder b("t");
  b.loop("i", 0, 3);
  EXPECT_THROW(b.assign("S", "A", {idx(0)}, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace hypart
