#include "core/json_export.hpp"

#include <gtest/gtest.h>

#include "workloads/workloads.hpp"

namespace hypart {
namespace {

TEST(JsonWriterTest, ObjectsArraysAndEscaping) {
  JsonWriter w;
  w.begin_object();
  w.field("name", std::string("he said \"hi\"\n"));
  w.field("count", std::int64_t{42});
  w.field("ratio", 0.5);
  w.field("flag", true);
  w.begin_array("xs");
  w.value(std::int64_t{1});
  w.value(std::int64_t{2});
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"he said \\\"hi\\\"\\n\",\"count\":42,\"ratio\":0.5,"
            "\"flag\":true,\"xs\":[1,2]}");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter w;
  w.begin_object();
  w.key("inner").begin_object().field("a", std::int64_t{1}).end_object();
  w.field("after", false);
  w.end_object();
  EXPECT_EQ(w.str(), "{\"inner\":{\"a\":1},\"after\":false}");
}

// Very small validating parser: checks balance and quote integrity so the
// exporter can't silently emit malformed JSON.
bool roughly_valid_json(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    if (depth < 0) return false;
  }
  return depth == 0 && !in_string;
}

TEST(PipelineJson, L1Export) {
  PipelineConfig cfg;
  cfg.cube_dim = 1;
  LoopNest l1 = workloads::example_l1();
  PipelineResult r = run_pipeline(l1, cfg);
  std::string json = pipeline_result_to_json(l1, r);

  EXPECT_TRUE(roughly_valid_json(json)) << json;
  EXPECT_NE(json.find("\"loop\":\"L1\""), std::string::npos);
  EXPECT_NE(json.find("\"iterations\":16"), std::string::npos);
  EXPECT_NE(json.find("\"total_arcs\":33"), std::string::npos);
  EXPECT_NE(json.find("\"interblock_arcs\":12"), std::string::npos);
  EXPECT_NE(json.find("\"time_function\":[1,1]"), std::string::npos);
  EXPECT_NE(json.find("\"theorem2\":true"), std::string::npos);
  EXPECT_NE(json.find("\"distance\":[0,1]"), std::string::npos);
}

TEST(PipelineJson, AllWorkloadsValid) {
  PipelineConfig cfg;
  cfg.cube_dim = 2;
  for (const LoopNest& nest : {workloads::matrix_vector(6), workloads::sor2d(4, 5),
                               workloads::matrix_multiplication(3)}) {
    PipelineResult r = run_pipeline(nest, cfg);
    std::string json = pipeline_result_to_json(nest, r);
    EXPECT_TRUE(roughly_valid_json(json)) << nest.name();
    EXPECT_NE(json.find("\"validation\""), std::string::npos);
  }
}

}  // namespace
}  // namespace hypart
