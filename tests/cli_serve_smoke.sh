#!/usr/bin/env bash
# End-to-end smoke test for `hypart serve` + loadgen:
#   boot the daemon on a Unix socket, fire a two-stream burst (the second
#   stream must score document cache hits), check the metrics snapshot,
#   then SIGTERM and require a clean exit.
#
#   usage: cli_serve_smoke.sh <hypart-binary> <loadgen-binary> <workdir>
set -u

HYPART="$1"
LOADGEN="$2"
WORKDIR="$3"

SOCK="$WORKDIR/serve_smoke.sock"
METRICS="$WORKDIR/serve_smoke_metrics.json"
LOG="$WORKDIR/serve_smoke.log"
rm -f "$SOCK" "$METRICS" "$LOG"

"$HYPART" serve --socket "$SOCK" --metrics "$METRICS" >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill -KILL $SERVER_PID 2>/dev/null' EXIT

# Wait for the daemon to bind (it prints the listening line first).
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
if [ ! -S "$SOCK" ]; then
  echo "FAIL: server socket never appeared"; cat "$LOG"; exit 1
fi

"$LOADGEN" --socket "$SOCK" --requests 16 --streams 2 --rescale --expect-hits
LG_RC=$?
if [ "$LG_RC" -ne 0 ]; then
  echo "FAIL: loadgen exited $LG_RC"; cat "$LOG"; exit 1
fi

# Batch burst over the same daemon: every line carries 8 sub-requests and
# the run must finish hit-heavy with zero error replies (loadgen exits
# non-zero on any error reply when --expect-hits is set).
BATCH_JSON="$WORKDIR/serve_smoke_batch.json"
"$LOADGEN" --socket "$SOCK" --requests 32 --streams 2 --batch 8 --expect-hits \
    --json >"$BATCH_JSON"
LG_RC=$?
if [ "$LG_RC" -ne 0 ]; then
  echo "FAIL: batch loadgen exited $LG_RC"; cat "$LOG" "$BATCH_JSON"; exit 1
fi
if ! grep -q '"batch":8' "$BATCH_JSON"; then
  echo "FAIL: loadgen JSON does not report batch mode"; cat "$BATCH_JSON"; exit 1
fi
if ! grep -q '"rps":' "$BATCH_JSON"; then
  echo "FAIL: loadgen JSON does not report rps"; cat "$BATCH_JSON"; exit 1
fi

# Canonical keys from `hypart json` must round-trip against the keys the
# daemon itself derives (the pre-warming contract: offline tools compute
# the same structure/exact keys the daemon caches under).
PROG="$WORKDIR/serve_smoke_roundtrip.loop"
cat >"$PROG" <<'EOF'
loop sor { for i = 1 to 24 for j = 1 to 24 A[i, j] = (A[i-1, j] + A[i, j-1]) * 0.5; }
EOF
if ! "$HYPART" json "$PROG" >"$WORKDIR/serve_smoke_offline.json"; then
  echo "FAIL: hypart json"; exit 1
fi
python3 - "$SOCK" "$PROG" "$WORKDIR/serve_smoke_offline.json" <<'EOF'
import json, socket, sys
sock_path, prog_path, offline_path = sys.argv[1:4]
offline = json.load(open(offline_path))["canonical"]
prog = open(prog_path).read()
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sock_path)
s.sendall((json.dumps({"id": 1, "op": "explain", "program": prog}) + "\n").encode())
buf = b""
while b"\n" not in buf:
    chunk = s.recv(65536)
    if not chunk:
        sys.exit("daemon closed the connection before replying")
    buf += chunk
reply = json.loads(buf.split(b"\n", 1)[0])
if not reply.get("ok"):
    sys.exit("explain failed: %s" % json.dumps(reply))
daemon = reply["canonical"]
for key in ("structure_key", "exact_key", "structure", "exact"):
    if offline[key] != daemon[key]:
        sys.exit("%s mismatch:\n  offline: %s\n  daemon:  %s"
                 % (key, offline[key], daemon[key]))
print("canonical keys round-trip OK")
EOF
if [ $? -ne 0 ]; then
  echo "FAIL: canonical key round-trip"; cat "$LOG"; exit 1
fi

kill -TERM "$SERVER_PID"
SERVER_RC=1
for _ in $(seq 1 100); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    wait "$SERVER_PID"; SERVER_RC=$?; break
  fi
  sleep 0.1
done
trap - EXIT
if [ "$SERVER_RC" -ne 0 ]; then
  echo "FAIL: server exit code $SERVER_RC after SIGTERM"; cat "$LOG"; exit 1
fi

# The daemon wrote its metrics snapshot on the way out: hits > 0, no errors.
if ! grep -q '"serve.cache.hit": *[1-9]' "$METRICS"; then
  echo "FAIL: no serve.cache.hit counter in $METRICS"; cat "$METRICS"; exit 1
fi
if grep -q '"serve.errors"' "$METRICS"; then
  echo "FAIL: serve.errors recorded in $METRICS"; cat "$METRICS"; exit 1
fi
echo "OK"
