#!/usr/bin/env bash
# End-to-end smoke test for `hypart serve` + loadgen:
#   boot the daemon on a Unix socket, fire a two-stream burst (the second
#   stream must score document cache hits), check the metrics snapshot,
#   then SIGTERM and require a clean exit.
#
#   usage: cli_serve_smoke.sh <hypart-binary> <loadgen-binary> <workdir>
set -u

HYPART="$1"
LOADGEN="$2"
WORKDIR="$3"

SOCK="$WORKDIR/serve_smoke.sock"
METRICS="$WORKDIR/serve_smoke_metrics.json"
LOG="$WORKDIR/serve_smoke.log"
rm -f "$SOCK" "$METRICS" "$LOG"

"$HYPART" serve --socket "$SOCK" --metrics "$METRICS" >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill -KILL $SERVER_PID 2>/dev/null' EXIT

# Wait for the daemon to bind (it prints the listening line first).
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
if [ ! -S "$SOCK" ]; then
  echo "FAIL: server socket never appeared"; cat "$LOG"; exit 1
fi

"$LOADGEN" --socket "$SOCK" --requests 16 --streams 2 --rescale --expect-hits
LG_RC=$?
if [ "$LG_RC" -ne 0 ]; then
  echo "FAIL: loadgen exited $LG_RC"; cat "$LOG"; exit 1
fi

kill -TERM "$SERVER_PID"
SERVER_RC=1
for _ in $(seq 1 100); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    wait "$SERVER_PID"; SERVER_RC=$?; break
  fi
  sleep 0.1
done
trap - EXIT
if [ "$SERVER_RC" -ne 0 ]; then
  echo "FAIL: server exit code $SERVER_RC after SIGTERM"; cat "$LOG"; exit 1
fi

# The daemon wrote its metrics snapshot on the way out: hits > 0, no errors.
if ! grep -q '"serve.cache.hit": *[1-9]' "$METRICS"; then
  echo "FAIL: no serve.cache.hit counter in $METRICS"; cat "$METRICS"; exit 1
fi
if grep -q '"serve.errors"' "$METRICS"; then
  echo "FAIL: serve.errors recorded in $METRICS"; cat "$METRICS"; exit 1
fi
echo "OK"
