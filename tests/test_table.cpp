#include "perf/table.hpp"

#include <gtest/gtest.h>

namespace hypart {
namespace {

TEST(TextTableTest, BasicLayout) {
  TextTable t({"N", "T_exec"});
  t.add_row({"1", "2097152 t_calc"});
  t.add_row({"4", "786944 t_calc + 2046(t_start+t_comm)"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| N "), std::string::npos);
  EXPECT_NE(s.find("786944"), std::string::npos);
  // Header separator lines present (3 separators).
  std::size_t seps = 0;
  for (std::size_t pos = s.find("+--"); pos != std::string::npos; pos = s.find("+--", pos + 1))
    ++seps;
  EXPECT_GE(seps, 3u);
}

TEST(TextTableTest, HeterogeneousRowHelper) {
  TextTable t({"name", "int", "float"});
  t.row("alpha", 42, 3.14159);
  std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
  EXPECT_NE(s.find("3.142"), std::string::npos);  // 3 decimals
}

TEST(TextTableTest, ColumnCountMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTableTest, WidthsAdaptToLongCells) {
  TextTable t({"x"});
  t.add_row({"a-very-long-cell-value"});
  std::string s = t.to_string();
  // Header row must be padded to the cell width.
  EXPECT_NE(s.find("| x                      |"), std::string::npos);
}

TEST(TextTableTest, EmptyTableStillRendersHeader) {
  TextTable t({"col"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("col"), std::string::npos);
}

}  // namespace
}  // namespace hypart
