#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace hypart {
namespace {

TEST(DigraphTest, AddVerticesAndEdges) {
  Digraph g(3);
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 0u);
  g.add_edge(0, 1);
  g.add_edge(1, 2, 5);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_weight(1, 2), 5);
  EXPECT_EQ(g.edge_weight(2, 1), 0);
}

TEST(DigraphTest, ParallelEdgesMerge) {
  Digraph g(2);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 1, 3);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge_weight(0, 1), 5);
  EXPECT_EQ(g.total_weight(), 5);
  // In-edge mirror is updated too.
  ASSERT_EQ(g.in_edges(1).size(), 1u);
  EXPECT_EQ(g.in_edges(1)[0].weight, 5);
}

TEST(DigraphTest, Degrees) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(3, 0);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.out_degree(3), 1u);
  EXPECT_EQ(g.in_degree(2), 1u);
}

TEST(DigraphTest, AddVertexGrows) {
  Digraph g;
  EXPECT_EQ(g.add_vertex(), 0u);
  EXPECT_EQ(g.add_vertex(), 1u);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(DigraphTest, OutOfRangeThrows) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
}

TEST(DigraphTest, TopologicalOrder) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 2);
  std::vector<std::size_t> order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](std::size_t v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(1), pos(2));
  EXPECT_LT(pos(3), pos(2));
}

TEST(DigraphTest, CycleDetection) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_TRUE(g.topological_order().empty());
  EXPECT_FALSE(g.is_acyclic());

  Digraph dag(3);
  dag.add_edge(0, 1);
  EXPECT_TRUE(dag.is_acyclic());
  EXPECT_TRUE(Digraph(0).is_acyclic());
}

TEST(DigraphTest, Reachability) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  std::vector<std::size_t> r = g.reachable_from(0);
  std::sort(r.begin(), r.end());
  EXPECT_EQ(r, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(g.reachable_from(4), (std::vector<std::size_t>{4}));
}

TEST(DigraphTest, WeakComponents) {
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  g.add_edge(3, 4);
  std::vector<std::size_t> comp = g.weak_components();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[3]);
}

TEST(DigraphTest, LongestPath) {
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 4);
  EXPECT_EQ(g.dag_longest_path(), 3u);

  Digraph cyc(2);
  cyc.add_edge(0, 1);
  cyc.add_edge(1, 0);
  EXPECT_THROW(static_cast<void>(cyc.dag_longest_path()), std::logic_error);
}

TEST(DigraphTest, LongestPathEmptyGraph) {
  Digraph g(3);
  EXPECT_EQ(g.dag_longest_path(), 0u);
}

}  // namespace
}  // namespace hypart
