#include "workloads/workloads.hpp"

#include <gtest/gtest.h>

#include <set>

#include "exec/interpreter.hpp"
#include "graph/comp_structure.hpp"
#include "mapping/hypercube_map.hpp"
#include "partition/checkers.hpp"
#include "schedule/hyperplane.hpp"

namespace hypart {
namespace {

TEST(Workloads, L1DefaultMatchesPaperDomain) {
  LoopNest l1 = workloads::example_l1();
  EXPECT_EQ(l1.name(), "L1");
  EXPECT_EQ(l1.depth(), 2u);
  IndexSet is(l1);
  EXPECT_EQ(is.size(), 16u);
}

TEST(Workloads, L1Parameterized) {
  IndexSet is(workloads::example_l1(7));
  EXPECT_EQ(is.size(), 64u);
}

TEST(Workloads, MatmulDomain) {
  IndexSet is(workloads::matrix_multiplication(3));
  EXPECT_EQ(is.size(), 64u);
  EXPECT_EQ(workloads::matrix_multiplication(3).body_flops(), 2);
}

TEST(Workloads, MatvecDomainOneBased) {
  IndexSet is(workloads::matrix_vector(10));
  EXPECT_EQ(is.size(), 100u);
  EXPECT_TRUE(is.contains({1, 1}));
  EXPECT_FALSE(is.contains({0, 0}));
}

TEST(Workloads, AllUniformTimeFunctionValid) {
  // Π = (1,...,1) must be a valid hyperplane schedule for every workload,
  // as the paper assumes.
  for (const LoopNest& nest :
       {workloads::example_l1(), workloads::matrix_multiplication(2), workloads::matrix_vector(4),
        workloads::convolution1d(5, 3), workloads::transitive_closure(3),
        workloads::sor2d(3, 3), workloads::wavefront3d(3),
        workloads::strided_recurrence(6, 2)}) {
    ComputationStructure q = ComputationStructure::from_loop(nest);
    EXPECT_TRUE(
        is_valid_time_function(TimeFunction{IntVec(nest.depth(), 1)}, q.dependences()))
        << nest.name();
  }
}

TEST(Workloads, DftHornerMatchesMatvecStructure) {
  // Section I lists the DFT among the kernels whose index sets cannot be
  // partitioned independently; in Horner form its dependence set is the
  // matvec pair {(0,1), (1,0)}.
  ComputationStructure q = ComputationStructure::from_loop(workloads::dft_horner(8));
  std::set<IntVec> deps(q.dependences().begin(), q.dependences().end());
  EXPECT_EQ(deps, (std::set<IntVec>{{0, 1}, {1, 0}}));
  EXPECT_EQ(q.vertices().size(), 64u);
}

TEST(Workloads, DftHornerExecutes) {
  // F[k] after the loop = ((f0*w + x[n-1])*w + x[n-2])*w ... Horner over
  // the reversed input; check k = 0 against a direct evaluation.
  const std::int64_t n = 4;
  ArrayStore out = run_sequential(workloads::dft_horner(n));
  double f = default_init("F", {0});
  double w = default_init("w", {0});
  for (std::int64_t t = 0; t < n; ++t) f = f * w + default_init("x", {n - 1 - t});
  ASSERT_TRUE(out.load("F", {0}).has_value());
  EXPECT_NEAR(*out.load("F", {0}), f, 1e-9);
}

TEST(Workloads, Convolution2dFourDeepBetaThree) {
  // The 4-deep nest: six dependences spanning all dimensions; under
  // Π = (1,1,1,1) the projected rank is 3, so the grouping phase selects
  // one grouping vector AND two auxiliary vectors — the deepest regime.
  ComputationStructure q = ComputationStructure::from_loop(workloads::convolution2d(3, 2));
  EXPECT_EQ(q.dimension(), 4u);
  std::set<IntVec> deps(q.dependences().begin(), q.dependences().end());
  EXPECT_EQ(deps, (std::set<IntVec>{{0, 0, 1, 0},
                                    {0, 0, 0, 1},
                                    {1, 0, 1, 0},
                                    {0, 1, 0, 1},
                                    {1, 0, 0, 0},
                                    {0, 1, 0, 0}}));
  TimeFunction tf{{1, 1, 1, 1}};
  ASSERT_TRUE(is_valid_time_function(tf, q.dependences()));
  ProjectedStructure ps(q, tf);
  EXPECT_EQ(ps.projected_rank(), 3u);
  Grouping g = Grouping::compute(ps);
  EXPECT_EQ(g.auxiliary_vector_indices().size(), 2u);
  Partition p = Partition::build(q, g);
  EXPECT_TRUE(check_exact_cover(q, p));
  EXPECT_TRUE(check_theorem1(q, tf, p));
  EXPECT_TRUE(check_theorem2(g).holds);
  LemmaReport lr = check_lemmas(g);
  EXPECT_TRUE(lr.lemma2_holds);
  EXPECT_TRUE(lr.lemma3_holds);
}

TEST(Workloads, Convolution2dExecutesCorrectly) {
  const std::int64_t n = 3, kk = 2;
  ArrayStore out = run_sequential(workloads::convolution2d(n, kk));
  // y[1,1] = init + sum_{k,l} h[k,l]*x[1-k,1-l].
  double expect = default_init("y", {1, 1});
  for (std::int64_t k = 0; k < kk; ++k)
    for (std::int64_t l = 0; l < kk; ++l)
      expect += default_init("h", {k, l}) * default_init("x", {1 - k, 1 - l});
  ASSERT_TRUE(out.load("y", {1, 1}).has_value());
  EXPECT_NEAR(*out.load("y", {1, 1}), expect, 1e-9);
}

TEST(Workloads, TriangularMatvecOnTriangularDomain) {
  const std::int64_t n = 8;
  LoopNest tri = workloads::triangular_matvec(n);
  EXPECT_FALSE(tri.is_rectangular());
  IndexSet is(tri);
  EXPECT_EQ(is.size(), static_cast<std::uint64_t>(n * (n - 1) / 2));

  ComputationStructure q = ComputationStructure::from_loop(tri);
  std::set<IntVec> deps(q.dependences().begin(), q.dependences().end());
  EXPECT_EQ(deps, (std::set<IntVec>{{1, 0}, {0, 1}}));
  // The full pipeline handles the triangular domain.
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  Grouping g = Grouping::compute(ps);
  Partition p = Partition::build(q, g);
  EXPECT_TRUE(check_exact_cover(q, p));
  EXPECT_TRUE(check_theorem1(q, TimeFunction{{1, 1}}, p));
}

TEST(Workloads, TrueForwardSubstitutionRejectedAsNonUniform) {
  // x[i] -= L[i,j]*x[j] reads x at a non-constant distance; the analyzer
  // must refuse it rather than fabricate a dependence.
  LoopNest solve = LoopNestBuilder("solve")
                       .loop("i", 1, 6)
                       .loop("j", 1, idx(0) - 1)
                       .assign("S", "x", {idx(0)},
                               ref("x", {idx(0)}) - ref("L", {idx(0), idx(1)}) *
                                                        ref("x", {idx(1)}))
                       .build();
  EXPECT_THROW(analyze_dependences(solve), NonUniformDependenceError);
}

TEST(Workloads, Convolution2dDistributedExecutionRefused) {
  // y[i,j]'s updates come from the whole 2-D (k,l) sub-lattice; the
  // hyperplane schedule runs some of them concurrently, so chain-ordered
  // distributed execution would lose updates.  The executors must detect
  // this and refuse — the cost-model pipeline above remains valid.
  LoopNest nest = workloads::convolution2d(3, 2);
  DependenceInfo deps = analyze_dependences(nest);
  IndexSet is(nest);
  ComputationStructure q(is.points(), deps.distance_vectors());
  TimeFunction tf{{1, 1, 1, 1}};
  ProjectedStructure ps(q, tf);
  Grouping g = Grouping::compute(ps);
  Partition part = Partition::build(q, g);
  TaskInteractionGraph tig = TaskInteractionGraph::from_partition(q, part, g);
  Mapping map = map_to_hypercube(tig, 2).mapping;
  // Sequential execution is still well-defined...
  ArrayStore seq = run_sequential(nest);
  EXPECT_GT(seq.total_elements(), 0u);
  // ...but distributed execution is refused up front.
  EXPECT_THROW(static_cast<void>(run_distributed(nest, q, tf, part, map, deps)),
               std::invalid_argument);
}

TEST(Workloads, TransitiveClosureDeps) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::transitive_closure(3));
  EXPECT_EQ(q.dependences().size(), 3u);
  EXPECT_EQ(q.dimension(), 3u);
}

TEST(Workloads, AllStructuresAcyclic) {
  for (const LoopNest& nest :
       {workloads::example_l1(), workloads::matrix_vector(4), workloads::sor2d(3, 4),
        workloads::convolution1d(5, 3), workloads::strided_recurrence(5, 2)}) {
    EXPECT_TRUE(ComputationStructure::from_loop(nest).is_acyclic()) << nest.name();
  }
}

TEST(Workloads, FlopCountsPositive) {
  for (const LoopNest& nest :
       {workloads::example_l1(), workloads::matrix_multiplication(2), workloads::matrix_vector(3),
        workloads::convolution1d(4, 2), workloads::transitive_closure(2), workloads::sor2d(2, 2),
        workloads::wavefront3d(2), workloads::strided_recurrence(4, 2)}) {
    EXPECT_GT(nest.body_flops(), 0) << nest.name();
  }
}

}  // namespace
}  // namespace hypart
