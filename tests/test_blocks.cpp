#include "partition/blocks.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "workloads/workloads.hpp"

namespace hypart {
namespace {

struct PartitionFixture {
  std::unique_ptr<ComputationStructure> q;
  std::unique_ptr<ProjectedStructure> ps;
  Grouping grouping;
  Partition partition;
};

PartitionFixture make(const LoopNest& nest, const IntVec& pi, GroupingOptions gopts = {}) {
  PartitionFixture s;
  s.q = std::make_unique<ComputationStructure>(ComputationStructure::from_loop(nest));
  s.ps = std::make_unique<ProjectedStructure>(*s.q, TimeFunction{pi});
  s.grouping = Grouping::compute(*s.ps, gopts);
  s.partition = Partition::build(*s.q, s.grouping);
  return s;
}

TEST(PartitionTest, L1BlocksMatchGroups) {
  PartitionFixture s = make(workloads::example_l1(), {1, 1});
  EXPECT_EQ(s.partition.block_count(), 4u);
  // Total iterations across blocks = 16.
  std::size_t total = 0;
  for (const PartitionBlock& b : s.partition.blocks()) total += b.iterations.size();
  EXPECT_EQ(total, 16u);
}

TEST(PartitionTest, L1InterblockCommunicationIs12) {
  // Paper Section II: "the number of data dependencies between index points
  // is 33, and only 12 of them require interprocessor communication".
  PartitionFixture s = make(workloads::example_l1(), {1, 1});
  PartitionStats stats = compute_partition_stats(*s.q, s.partition);
  EXPECT_EQ(stats.total_arcs, 33u);
  EXPECT_EQ(stats.interblock_arcs, 12u);
  EXPECT_EQ(stats.intrablock_arcs, 21u);
  EXPECT_NEAR(stats.interblock_fraction(), 12.0 / 33.0, 1e-12);
}

TEST(PartitionTest, BlockOfConsistent) {
  PartitionFixture s = make(workloads::example_l1(), {1, 1});
  for (std::size_t b = 0; b < s.partition.block_count(); ++b)
    for (std::size_t vid : s.partition.blocks()[b].iterations)
      EXPECT_EQ(s.partition.block_of(vid), b);
  EXPECT_THROW(static_cast<void>(s.partition.block_of(999)), std::out_of_range);
}

TEST(PartitionTest, BlockIsUnionOfItsProjectionLines) {
  PartitionFixture s = make(workloads::example_l1(), {1, 1});
  for (std::size_t b = 0; b < s.partition.block_count(); ++b) {
    const Group& g = s.grouping.groups()[b];
    std::vector<std::size_t> members = g.members();
    std::set<std::size_t> group_points(members.begin(), members.end());
    std::size_t expected = 0;
    for (std::size_t pid : group_points) expected += s.ps->line_population(pid);
    EXPECT_EQ(s.partition.blocks()[b].iterations.size(), expected);
    for (std::size_t vid : s.partition.blocks()[b].iterations)
      EXPECT_TRUE(group_points.contains(s.ps->point_of(s.q->vertices()[vid])));
  }
}

TEST(PartitionTest, MinMaxBlockSizes) {
  PartitionFixture s = make(workloads::example_l1(), {1, 1});
  // Blocks pair adjacent lines of lengths (1,2,3,4,3,2,1): sizes depend on
  // pairing phase, but max is at least 4 (the diagonal's line) and min >= 1.
  EXPECT_GE(s.partition.max_block_size(), 4u);
  EXPECT_GE(s.partition.min_block_size(), 1u);
  EXPECT_LE(s.partition.max_block_size(), 7u);
}

TEST(PartitionTest, MatvecBlockSizes) {
  // M groups of two adjacent lines; the diagonal block has 2M-1 points.
  const std::int64_t m = 6;
  PartitionFixture s = make(workloads::matrix_vector(m), {1, 1});
  EXPECT_EQ(s.partition.block_count(), static_cast<std::size_t>(m));
  EXPECT_EQ(s.partition.max_block_size(), static_cast<std::size_t>(2 * m - 1));
}

TEST(PartitionTest, StatsBlockCommGraphHasInterblockWeight) {
  PartitionFixture s = make(workloads::example_l1(), {1, 1});
  PartitionStats stats = compute_partition_stats(*s.q, s.partition);
  EXPECT_EQ(stats.block_comm.total_weight(),
            static_cast<std::int64_t>(stats.interblock_arcs));
}

TEST(PartitionTest, MatmulBlocksCover64Iterations) {
  PartitionFixture s = make(workloads::matrix_multiplication(), {1, 1, 1});
  EXPECT_GE(s.partition.block_count(), 13u);  // ceil(37/3)
  EXPECT_LE(s.partition.block_count(), 21u);
  std::size_t total = 0;
  for (const PartitionBlock& b : s.partition.blocks()) total += b.iterations.size();
  EXPECT_EQ(total, 64u);
}

TEST(PartitionTest, EmptyInterblockFractionOnSingleBlock) {
  // 1-D loop: one projection line -> one block -> no interblock comm.
  ComputationStructure q({{0}, {1}, {2}}, {{1}});
  ProjectedStructure ps(q, TimeFunction{{1}});
  Grouping g = Grouping::compute(ps);
  Partition p = Partition::build(q, g);
  PartitionStats stats = compute_partition_stats(q, p);
  EXPECT_EQ(stats.total_arcs, 2u);
  EXPECT_EQ(stats.interblock_arcs, 0u);
  EXPECT_EQ(stats.interblock_fraction(), 0.0);
}

class InterblockMonotonicity : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(InterblockMonotonicity, GroupingNeverWorseThanSingletonGroups) {
  // Grouping r projected points per block can only reduce interblock arcs
  // relative to one-line-per-block partitioning.
  std::int64_t n = GetParam();
  ComputationStructure q = ComputationStructure::from_loop(workloads::sor2d(n, n));
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  Grouping grouped = Grouping::compute(ps);
  Partition p = Partition::build(q, grouped);
  PartitionStats with_grouping = compute_partition_stats(q, p);

  // Singleton "grouping": every projected point its own block, realized by
  // counting arcs that change projected point.
  std::size_t singleton_interblock = 0;
  q.for_each_arc([&](const IntVec& a, const IntVec& b, std::size_t) {
    if (ps.point_of(a) != ps.point_of(b)) ++singleton_interblock;
  });
  EXPECT_LE(with_grouping.interblock_arcs, singleton_interblock);
}

INSTANTIATE_TEST_SUITE_P(Sizes, InterblockMonotonicity, ::testing::Values(2, 3, 5, 8));

}  // namespace
}  // namespace hypart
