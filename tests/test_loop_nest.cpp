#include "loop/loop_nest.hpp"

#include <gtest/gtest.h>

#include "workloads/workloads.hpp"

namespace hypart {
namespace {

TEST(AffineExpr, Evaluate) {
  AffineExpr e(3, {1, -2});  // 3 + i - 2j
  EXPECT_EQ(e.evaluate({10, 4}), 5);
  EXPECT_EQ(e.evaluate({0, 0}), 3);
  EXPECT_EQ(e.evaluate({0, 0, 99}), 3);  // extra indices ignored
}

TEST(AffineExpr, EvaluateTooFewIndicesThrows) {
  AffineExpr e(0, {1, 1, 1});
  EXPECT_THROW(static_cast<void>(e.evaluate({1, 2})), std::invalid_argument);
}

TEST(AffineExpr, IndexFactory) {
  AffineExpr i1 = AffineExpr::index(1);
  EXPECT_EQ(i1.evaluate({7, 9}), 9);
  AffineExpr shifted = AffineExpr::index(0, 2, -1);  // 2i - 1
  EXPECT_EQ(shifted.evaluate({5}), 9);
}

TEST(AffineExpr, Operators) {
  AffineExpr e = idx(0) + 3;
  EXPECT_EQ(e.evaluate({4}), 7);
  e = idx(0) - idx(1);
  EXPECT_EQ(e.evaluate({10, 4}), 6);
  e = 2 * idx(1) + 1;
  EXPECT_EQ(e.evaluate({0, 5}), 11);
  e = (idx(0) + idx(1)) - 2;
  EXPECT_EQ(e.evaluate({3, 4}), 5);
}

TEST(AffineExpr, Equality) {
  EXPECT_EQ(idx(0) + 1, AffineExpr::index(0, 1, 1));
  AffineExpr a(1, {1, 0});
  AffineExpr b(1, {1});
  EXPECT_EQ(a, b);  // trailing zero coefficients equal
  EXPECT_FALSE(idx(0) == idx(1));
}

TEST(AffineExpr, ToString) {
  EXPECT_EQ((idx(0) + 1).to_string({"i", "j"}), "i+1");
  EXPECT_EQ((idx(1) - 2).to_string({"i", "j"}), "j-2");
  EXPECT_EQ(AffineExpr(5).to_string(), "5");
  EXPECT_EQ((2 * idx(0)).to_string({"i"}), "2*i");
  EXPECT_EQ((idx(0) - idx(1)).to_string({"i", "j"}), "i-j");
}

TEST(AffineExpr, IsConstant) {
  EXPECT_TRUE(AffineExpr(7).is_constant());
  EXPECT_FALSE(idx(0).is_constant());
  AffineExpr zeroed(4, {0, 0});
  EXPECT_TRUE(zeroed.is_constant());
}

TEST(ArrayAccess, AccessMatrixAndOffset) {
  ArrayAccess a{"A", {idx(0) + 1, idx(1) - 2}, AccessKind::Write};
  IntMat f = a.access_matrix(2);
  EXPECT_EQ(f, IntMat::from_rows({{1, 0}, {0, 1}}));
  EXPECT_EQ(a.offset_vector(), (IntVec{1, -2}));
}

TEST(ArrayAccess, SkewedAccess) {
  ArrayAccess a{"x", {idx(0) - idx(1)}, AccessKind::Read};
  EXPECT_EQ(a.access_matrix(2), IntMat::from_rows({{1, -1}}));
  EXPECT_EQ(a.offset_vector(), (IntVec{0}));
}

TEST(ArrayAccess, DeeperThanNestThrows) {
  ArrayAccess a{"A", {idx(3)}, AccessKind::Read};
  EXPECT_THROW(a.access_matrix(2), std::invalid_argument);
}

TEST(LoopNestBuilder, BuildsL1) {
  LoopNest l1 = workloads::example_l1();
  EXPECT_EQ(l1.depth(), 2u);
  EXPECT_EQ(l1.statements().size(), 2u);
  EXPECT_EQ(l1.index_names(), (std::vector<std::string>{"i", "j"}));
  EXPECT_TRUE(l1.is_rectangular());
  EXPECT_EQ(l1.body_flops(), 3);
}

TEST(LoopNestBuilder, AccessBeforeStatementThrows) {
  LoopNestBuilder b("bad");
  b.loop("i", 0, 3);
  EXPECT_THROW(b.read("A", {idx(0)}), std::logic_error);
}

TEST(LoopNest, EmptyDimsThrows) {
  EXPECT_THROW(LoopNest("empty", {}, {}), std::invalid_argument);
}

TEST(LoopNest, TriangularBounds) {
  // for i = 0..4; for j = 0..i  (lower-triangular domain)
  LoopNest tri = LoopNestBuilder("tri")
                     .loop("i", 0, 4)
                     .loop("j", 0, idx(0))
                     .statement("S")
                     .write("A", {idx(0), idx(1)})
                     .read("A", {idx(0) - 1, idx(1)})
                     .build();
  EXPECT_FALSE(tri.is_rectangular());
}

TEST(LoopNest, BoundReferencingInnerIndexThrows) {
  EXPECT_THROW(LoopNestBuilder("bad").loop("i", 0, idx(1)).loop("j", 0, 3).statement("S").build(),
               std::invalid_argument);
}

TEST(LoopNest, StatementReadsWrites) {
  LoopNest l1 = workloads::example_l1();
  const Statement& s1 = l1.statements()[0];
  EXPECT_EQ(s1.writes().size(), 1u);
  EXPECT_EQ(s1.reads().size(), 2u);
  EXPECT_EQ(s1.writes()[0].array, "A");
}

TEST(LoopNest, ToStringContainsStructure) {
  std::string s = workloads::example_l1().to_string();
  EXPECT_NE(s.find("for i = 0 to 3"), std::string::npos);
  EXPECT_NE(s.find("for j = 0 to 3"), std::string::npos);
  EXPECT_NE(s.find("A[i+1,j+1]"), std::string::npos);
}

}  // namespace
}  // namespace hypart
