// hypart::obs prediction-accuracy ledger tests.  Pins the structural
// invariant the whole design rests on: both breakdowns (predicted model
// units, measured microseconds) sum to their own totals exactly, so share
// errors are a true decomposition of the prediction error.  Also covers the
// JSON round-trip of accumulated rows (schema "hypart-ledger-v1").
#include "obs/ledger.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "workloads/workloads.hpp"

namespace {

using namespace hypart;
using namespace hypart::obs;

void expect_breakdown_sums(const ComponentBreakdown& b, const char* side) {
  EXPECT_GE(b.compute, 0.0) << side;
  EXPECT_GE(b.comm, 0.0) << side;
  EXPECT_GE(b.stall, 0.0) << side;
  EXPECT_GE(b.other, 0.0) << side;
  EXPECT_GT(b.total, 0.0) << side;
  // Exact by construction (residual component); allow only fp noise.
  EXPECT_NEAR(b.sum(), b.total, 1e-6 * std::max(1.0, b.total)) << side;
  // Shares therefore sum to 1.
  double shares = b.share(b.compute) + b.share(b.comm) + b.share(b.stall) + b.share(b.other);
  EXPECT_NEAR(shares, 1.0, 1e-9) << side;
}

LedgerRow ledger_for(const LoopNest& nest, unsigned cube_dim) {
  PipelineConfig cfg;
  cfg.cube_dim = cube_dim;
  LedgerOptions opts;
  opts.repeats = 1;  // keep the suite fast; median == the single repeat
  return run_ledger(nest, cfg, opts);
}

TEST(LedgerTest, MatmulComponentsSumToTotals) {
  LedgerRow row = ledger_for(workloads::matrix_multiplication(5), 2);
  expect_breakdown_sums(row.predicted, "predicted");
  expect_breakdown_sums(row.measured, "measured");
  EXPECT_GT(row.iterations, 0);
  EXPECT_EQ(row.repeats, 1);
  EXPECT_GT(row.calibration_us_per_unit, 0.0);
  EXPECT_GT(row.measured_min_us, 0.0);
  EXPECT_LE(row.measured_min_us, row.measured.total);
  // Mean absolute share error is a mean of |deltas| of shares: in [0, 1].
  EXPECT_GE(row.mean_abs_share_error(), 0.0);
  EXPECT_LE(row.mean_abs_share_error(), 1.0);
}

TEST(LedgerTest, TriangularMatvecComponentsSumToTotals) {
  LedgerRow row = ledger_for(workloads::triangular_matvec(10), 2);
  expect_breakdown_sums(row.predicted, "predicted");
  expect_breakdown_sums(row.measured, "measured");
}

TEST(LedgerTest, SkewedWavefront3dComponentsSumToTotals) {
  LedgerRow row = ledger_for(workloads::skewed_wavefront3d(4), 2);
  expect_breakdown_sums(row.predicted, "predicted");
  expect_breakdown_sums(row.measured, "measured");
}

TEST(LedgerTest, RowJsonContainsAllComponents) {
  LedgerRow row = ledger_for(workloads::matrix_vector(12), 1);
  std::string json = row.to_json();
  for (const char* key : {"\"workload\"", "\"predicted\"", "\"measured_us\"", "\"compute\"",
                          "\"comm\"", "\"stall\"", "\"other\"", "\"total\"", "\"share_error\"",
                          "\"calibration_us_per_unit\""})
    EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST(LedgerTest, AccumulatorRoundTripsThroughFile) {
  AccuracyLedger ledger;
  ledger.append(ledger_for(workloads::matrix_vector(12), 1));
  ledger.append(ledger_for(workloads::sor2d(6, 6), 1));
  ASSERT_EQ(ledger.rows().size(), 2u);

  std::string path = testing::TempDir() + "hypart_ledger_roundtrip.json";
  std::string error;
  ASSERT_TRUE(ledger.save(path, error)) << error;

  AccuracyLedger loaded;
  ASSERT_TRUE(loaded.load(path, error)) << error;
  ASSERT_EQ(loaded.rows().size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const LedgerRow& a = ledger.rows()[i];
    const LedgerRow& b = loaded.rows()[i];
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.cube_dim, b.cube_dim);
    EXPECT_EQ(a.accounting, b.accounting);
    EXPECT_EQ(a.repeats, b.repeats);
    // Doubles survive byte-exactly (shortest round-trip formatting).
    EXPECT_EQ(a.predicted.compute, b.predicted.compute);
    EXPECT_EQ(a.predicted.total, b.predicted.total);
    EXPECT_EQ(a.measured.comm, b.measured.comm);
    EXPECT_EQ(a.measured.total, b.measured.total);
    EXPECT_EQ(a.calibration_us_per_unit, b.calibration_us_per_unit);
  }
  // Loading on top of existing rows appends rather than replaces.
  ASSERT_TRUE(loaded.load(path, error)) << error;
  EXPECT_EQ(loaded.rows().size(), 4u);
  std::remove(path.c_str());
}

TEST(LedgerTest, LoadRejectsWrongSchema) {
  std::string path = testing::TempDir() + "hypart_ledger_bad.json";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"schema\":\"something-else\",\"rows\":[]}", f);
    std::fclose(f);
  }
  AccuracyLedger ledger;
  std::string error;
  EXPECT_FALSE(ledger.load(path, error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(LedgerTest, TruncatedLedgerFileFailsTypedNotCrashes) {
  // Regression for the torn-write case: a ledger file cut off mid-document
  // (crashed writer, full disk) must surface as a load error carrying the
  // parse position — the CLI maps this to exit 65 — never a crash or a
  // silently half-loaded ledger.
  AccuracyLedger source;
  source.append(ledger_for(workloads::matrix_vector(12), 1));
  const std::string doc = source.to_json();
  std::string path = testing::TempDir() + "hypart_ledger_truncated.json";
  for (std::size_t cut : {doc.size() / 4, doc.size() / 2, doc.size() - 2}) {
    {
      std::FILE* f = std::fopen(path.c_str(), "w");
      ASSERT_NE(f, nullptr);
      std::fwrite(doc.data(), 1, cut, f);
      std::fclose(f);
    }
    AccuracyLedger ledger;
    std::string error;
    EXPECT_FALSE(ledger.load(path, error)) << "cut at " << cut;
    EXPECT_FALSE(error.empty());
    EXPECT_TRUE(ledger.rows().empty()) << "partial rows leaked at cut " << cut;
  }
  std::remove(path.c_str());
}

TEST(LedgerTest, BackendColumnRoundTripsAndDefaultsToThreads) {
  AccuracyLedger ledger;
  LedgerRow row = ledger_for(workloads::matrix_vector(12), 1);
  row.backend = "procs";
  ledger.append(row);
  std::string path = testing::TempDir() + "hypart_ledger_backend.json";
  std::string error;
  ASSERT_TRUE(ledger.save(path, error)) << error;
  AccuracyLedger loaded;
  ASSERT_TRUE(loaded.load(path, error)) << error;
  ASSERT_EQ(loaded.rows().size(), 1u);
  EXPECT_EQ(loaded.rows()[0].backend, "procs");
  std::remove(path.c_str());
  // Rows written before the column existed must load as "threads".
  LedgerRow fresh;
  EXPECT_EQ(fresh.backend, "threads");
}

TEST(LedgerTest, TableRendersOneSectionPerRow) {
  AccuracyLedger ledger;
  ledger.append(ledger_for(workloads::matrix_vector(12), 1));
  std::string table = ledger.table();
  for (const char* needle : {"compute", "comm", "stall", "other", "total"})
    EXPECT_NE(table.find(needle), std::string::npos) << needle;
}

}  // namespace
