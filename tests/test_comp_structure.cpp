#include "graph/comp_structure.hpp"

#include <gtest/gtest.h>

#include <set>

#include "workloads/workloads.hpp"

namespace hypart {
namespace {

TEST(CompStructure, FromL1MatchesPaperCounts) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::example_l1());
  EXPECT_EQ(q.dimension(), 2u);
  EXPECT_EQ(q.vertices().size(), 16u);
  EXPECT_EQ(q.dependences().size(), 3u);
  // Paper Section II: 33 data dependencies in loop L1 on the 4x4 domain.
  EXPECT_EQ(q.dependence_arc_count(), 33u);
}

TEST(CompStructure, ArcEnumerationConsistent) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::example_l1());
  std::size_t count = 0;
  q.for_each_arc([&](const IntVec& src, const IntVec& dst, std::size_t k) {
    ++count;
    EXPECT_TRUE(q.contains(src));
    EXPECT_TRUE(q.contains(dst));
    EXPECT_EQ(sub(dst, src), q.dependences()[k]);
  });
  EXPECT_EQ(count, q.dependence_arc_count());
}

TEST(CompStructure, Acyclic) {
  EXPECT_TRUE(ComputationStructure::from_loop(workloads::example_l1()).is_acyclic());
  EXPECT_TRUE(ComputationStructure::from_loop(workloads::matrix_vector(4)).is_acyclic());
  EXPECT_TRUE(ComputationStructure::from_loop(workloads::matrix_multiplication(2)).is_acyclic());
}

TEST(CompStructure, IdLookup) {
  ComputationStructure q = ComputationStructure::from_loop(workloads::example_l1());
  std::size_t id = q.id_of({2, 3});
  EXPECT_EQ(q.vertices()[id], (IntVec{2, 3}));
  EXPECT_THROW(static_cast<void>(q.id_of({9, 9})), std::out_of_range);
}

TEST(CompStructure, ExplicitConstruction) {
  ComputationStructure q({{0, 0}, {0, 1}, {1, 0}, {1, 1}}, {{0, 1}, {1, 0}});
  EXPECT_EQ(q.dependence_arc_count(), 4u);
  Digraph g = q.to_digraph();
  EXPECT_EQ(g.vertex_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
}

TEST(CompStructure, RejectsBadInput) {
  EXPECT_THROW(ComputationStructure({}, {{1}}), std::invalid_argument);
  EXPECT_THROW(ComputationStructure({{0, 0}}, {{1}}), std::invalid_argument);       // dim mismatch
  EXPECT_THROW(ComputationStructure({{0, 0}}, {{0, 0}}), std::invalid_argument);    // zero dep
  EXPECT_THROW(ComputationStructure({{0, 0}, {0, 0}}, {{0, 1}}), std::invalid_argument);  // dup
}

TEST(CompStructure, MatvecArcCount) {
  // M x M matvec, D = {(1,0),(0,1)}: each dependence has M(M-1) in-domain
  // pairs -> 2*M*(M-1) arcs.
  const std::int64_t m = 5;
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_vector(m));
  EXPECT_EQ(q.dependence_arc_count(), static_cast<std::size_t>(2 * m * (m - 1)));
}

TEST(CompStructure, DigraphLongestPathMatchesScheduleLowerBound) {
  // The longest dependence chain bounds any schedule from below; for the
  // wavefront stencil on an n^3 cube it is 3(n-1).
  ComputationStructure q = ComputationStructure::from_loop(workloads::wavefront3d(4));
  EXPECT_EQ(q.to_digraph().dag_longest_path(), 9u);
}

class ArcCountProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ArcCountProperty, Sor2dArcFormula) {
  // sor2d on rows x cols with D = {(1,0),(0,1)}:
  // (rows-1)*cols + rows*(cols-1) arcs.
  std::int64_t n = GetParam();
  ComputationStructure q = ComputationStructure::from_loop(workloads::sor2d(n, n + 2));
  std::int64_t rows = n, cols = n + 2;
  EXPECT_EQ(q.dependence_arc_count(),
            static_cast<std::size_t>((rows - 1) * cols + rows * (cols - 1)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArcCountProperty, ::testing::Values(2, 3, 4, 7, 10));

TEST(IntVecHashTest, SmallStrideGridSpreadsAcrossBuckets) {
  // Regression for the pre-splitmix64 xor-mix combiner: on a small-stride
  // 3-d grid it produced hashes identical in their low bits, collapsing a
  // power-of-two bucket table to a handful of chains.  Require every grid
  // point to get a distinct hash AND the low 6 bits (a 64-bucket table) to
  // be reasonably occupied.
  IntVecHash h;
  std::set<std::size_t> hashes;
  std::set<std::size_t> low_bits;
  for (std::int64_t i = 0; i < 16; ++i)
    for (std::int64_t j = 0; j < 16; ++j)
      for (std::int64_t k = 0; k < 4; ++k) {
        std::size_t v = h(IntVec{i, j, k});
        hashes.insert(v);
        low_bits.insert(v & 63u);
      }
  EXPECT_EQ(hashes.size(), 16u * 16u * 4u);
  EXPECT_GE(low_bits.size(), 48u);
}

TEST(IntVecHashTest, LengthAndSignDisambiguate) {
  IntVecHash h;
  EXPECT_NE(h(IntVec{1, 2}), h(IntVec{1, 2, 0}));
  EXPECT_NE(h(IntVec{1}), h(IntVec{-1}));
  EXPECT_NE(h(IntVec{0, 1}), h(IntVec{1, 0}));
  EXPECT_NE(h(IntVec{}), h(IntVec{0}));
}

}  // namespace
}  // namespace hypart
