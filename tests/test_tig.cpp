#include "mapping/tig.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "workloads/workloads.hpp"

namespace hypart {
namespace {

TEST(TigTest, MeshFactory) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(4, 4);
  EXPECT_EQ(tig.vertex_count(), 16u);
  // 4x4 mesh: 2*4*3 = 24 undirected edges.
  EXPECT_EQ(tig.edges().size(), 24u);
  EXPECT_EQ(tig.total_comm(), 24);
  EXPECT_EQ(tig.comm_weight(0, 1), 1);
  EXPECT_EQ(tig.comm_weight(0, 4), 1);
  EXPECT_EQ(tig.comm_weight(0, 5), 0);  // diagonal: no edge
  EXPECT_TRUE(tig.has_coordinates());
  EXPECT_EQ(tig.coordinate_dimensions(), 2u);
  EXPECT_EQ(*tig.coordinates(5), (IntVec{1, 1}));
}

TEST(TigTest, CommAccumulatesAndIsSymmetric) {
  TaskInteractionGraph tig(3);
  tig.add_comm(0, 1, 2);
  tig.add_comm(1, 0, 3);  // same undirected edge
  EXPECT_EQ(tig.comm_weight(0, 1), 5);
  EXPECT_EQ(tig.comm_weight(1, 0), 5);
  EXPECT_EQ(tig.edges().size(), 1u);
  tig.add_comm(2, 2, 7);  // self-communication ignored
  EXPECT_EQ(tig.edges().size(), 1u);
}

TEST(TigTest, ComputeWeights) {
  TaskInteractionGraph tig(3);
  EXPECT_EQ(tig.total_compute(), 3);  // default weight 1
  tig.set_compute_weight(0, 10);
  tig.set_compute_weight(2, 5);
  EXPECT_EQ(tig.total_compute(), 16);
  EXPECT_EQ(tig.compute_weight(1), 1);
}

TEST(TigTest, FromPartitionMatchesStats) {
  auto q = std::make_unique<ComputationStructure>(
      ComputationStructure::from_loop(workloads::example_l1()));
  ProjectedStructure ps(*q, TimeFunction{{1, 1}});
  Grouping g = Grouping::compute(ps);
  Partition p = Partition::build(*q, g);
  PartitionStats stats = compute_partition_stats(*q, p);

  TaskInteractionGraph tig = TaskInteractionGraph::from_partition(*q, p, g);
  EXPECT_EQ(tig.vertex_count(), p.block_count());
  EXPECT_EQ(tig.total_comm(), static_cast<std::int64_t>(stats.interblock_arcs));
  EXPECT_EQ(tig.total_compute(), 16);
  EXPECT_TRUE(tig.has_coordinates());
}

TEST(TigTest, BlocksPerProc) {
  Mapping m;
  m.processor_count = 2;
  m.block_to_proc = {0, 1, 0, 1, 1};
  auto per = m.blocks_per_proc();
  ASSERT_EQ(per.size(), 2u);
  EXPECT_EQ(per[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(per[1], (std::vector<std::size_t>{1, 3, 4}));
}

TEST(TigTest, EvaluateMappingMetrics) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(2, 2);  // square, 4 edges
  Hypercube cube(2);

  Mapping identity;
  identity.processor_count = 4;
  identity.block_to_proc = {0, 1, 2, 3};
  MappingMetrics m = evaluate_mapping(tig, identity, cube);
  // Edges: (0,1) procs 0-1 hop 1; (0,2) procs 0-2 hop 1; (1,3) 1-3 hop 1;
  // (2,3) 2-3 hop 1. Total cost 4, all cut.
  EXPECT_EQ(m.total_comm_cost, 4);
  EXPECT_EQ(m.cut_comm_volume, 4);
  EXPECT_DOUBLE_EQ(m.avg_hops_weighted, 1.0);
  EXPECT_EQ(m.used_processors, 4u);
  EXPECT_EQ(m.max_proc_compute, 1);
  EXPECT_DOUBLE_EQ(m.compute_imbalance, 1.0);
}

TEST(TigTest, EvaluateMappingAllOnOneProc) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(2, 2);
  Hypercube cube(2);
  Mapping all;
  all.processor_count = 4;
  all.block_to_proc = {0, 0, 0, 0};
  MappingMetrics m = evaluate_mapping(tig, all, cube);
  EXPECT_EQ(m.total_comm_cost, 0);
  EXPECT_EQ(m.cut_comm_volume, 0);
  EXPECT_EQ(m.used_processors, 1u);
  EXPECT_EQ(m.max_proc_compute, 4);
  EXPECT_DOUBLE_EQ(m.compute_imbalance, 4.0);
}

TEST(TigTest, EvaluateMappingValidation) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(2, 2);
  Hypercube small(1);
  Mapping m;
  m.processor_count = 4;
  m.block_to_proc = {0, 1, 2, 3};
  EXPECT_THROW(evaluate_mapping(tig, m, small), std::invalid_argument);
  Mapping wrong_size;
  wrong_size.processor_count = 4;
  wrong_size.block_to_proc = {0, 1};
  EXPECT_THROW(evaluate_mapping(tig, wrong_size, Hypercube(2)), std::invalid_argument);
}

TEST(TigTest, AddCommValidation) {
  TaskInteractionGraph tig(2);
  EXPECT_THROW(tig.add_comm(0, 5, 1), std::out_of_range);
}

}  // namespace
}  // namespace hypart
