#include "loop/dependence.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "workloads/workloads.hpp"

namespace hypart {
namespace {

bool has_distance(const DependenceInfo& info, const IntVec& d) {
  auto dv = info.distance_vectors();
  return std::find(dv.begin(), dv.end(), d) != dv.end();
}

TEST(LexPositive, Basics) {
  EXPECT_TRUE(lex_positive({1, -5}));
  EXPECT_TRUE(lex_positive({0, 1}));
  EXPECT_FALSE(lex_positive({0, 0}));
  EXPECT_FALSE(lex_positive({-1, 5}));
  EXPECT_FALSE(lex_positive({0, -1, 3}));
}

TEST(Dependence, L1RecoversPaperVectors) {
  // Paper Example 1: D = {(0,1), (1,1), (1,0)}.
  DependenceInfo info = analyze_dependences(workloads::example_l1());
  auto dv = info.distance_vectors();
  EXPECT_EQ(dv.size(), 3u);
  EXPECT_TRUE(has_distance(info, {0, 1}));
  EXPECT_TRUE(has_distance(info, {1, 1}));
  EXPECT_TRUE(has_distance(info, {1, 0}));
}

TEST(Dependence, MatmulRecoversExample2Matrix) {
  // Paper Example 2: columns (0,1,0), (1,0,0), (0,0,1).
  DependenceInfo info = analyze_dependences(workloads::matrix_multiplication());
  auto dv = info.distance_vectors();
  EXPECT_EQ(dv.size(), 3u);
  EXPECT_TRUE(has_distance(info, {0, 1, 0}));  // A broadcast along j
  EXPECT_TRUE(has_distance(info, {1, 0, 0}));  // B broadcast along i
  EXPECT_TRUE(has_distance(info, {0, 0, 1}));  // C reduction along k
}

TEST(Dependence, MatvecRecoversSectionIV) {
  // D = {(1,0) via x, (0,1) via y}.
  DependenceInfo info = analyze_dependences(workloads::matrix_vector(4));
  auto dv = info.distance_vectors();
  EXPECT_EQ(dv.size(), 2u);
  EXPECT_TRUE(has_distance(info, {1, 0}));
  EXPECT_TRUE(has_distance(info, {0, 1}));
}

TEST(Dependence, ConvolutionMatchesL1Structure) {
  DependenceInfo info = analyze_dependences(workloads::convolution1d(8, 4));
  auto dv = info.distance_vectors();
  EXPECT_EQ(dv.size(), 3u);
  EXPECT_TRUE(has_distance(info, {0, 1}));
  EXPECT_TRUE(has_distance(info, {1, 1}));
  EXPECT_TRUE(has_distance(info, {1, 0}));
}

TEST(Dependence, Wavefront3d) {
  DependenceInfo info = analyze_dependences(workloads::wavefront3d(4));
  auto dv = info.distance_vectors();
  EXPECT_EQ(dv.size(), 3u);
  EXPECT_TRUE(has_distance(info, {1, 0, 0}));
  EXPECT_TRUE(has_distance(info, {0, 1, 0}));
  EXPECT_TRUE(has_distance(info, {0, 0, 1}));
}

TEST(Dependence, StridedRecurrence) {
  DependenceInfo info = analyze_dependences(workloads::strided_recurrence(9, 3));
  EXPECT_TRUE(has_distance(info, {3, 0}));
  EXPECT_TRUE(has_distance(info, {0, 3}));
  EXPECT_EQ(info.distance_vectors().size(), 2u);
}

TEST(Dependence, KindsAreLabelled) {
  DependenceInfo info = analyze_dependences(workloads::matrix_multiplication());
  bool saw_reduction = false, saw_input = false;
  for (const Dependence& d : info.dependences) {
    if (d.kind == DependenceKind::Reduction) saw_reduction = true;
    if (d.kind == DependenceKind::InputReuse) saw_input = true;
  }
  EXPECT_TRUE(saw_reduction);  // C chain
  EXPECT_TRUE(saw_input);      // A and B broadcasts
}

TEST(Dependence, InputReuseCanBeDisabled) {
  DependenceOptions opts;
  opts.include_input_reuse = false;
  DependenceInfo info = analyze_dependences(workloads::matrix_vector(4), opts);
  // Only the y reduction remains.
  EXPECT_EQ(info.distance_vectors().size(), 1u);
  EXPECT_TRUE(has_distance(info, {0, 1}));
}

TEST(Dependence, ReductionsCanBeDisabled) {
  DependenceOptions opts;
  opts.include_reductions = false;
  opts.include_input_reuse = false;
  DependenceInfo info = analyze_dependences(workloads::matrix_vector(4), opts);
  EXPECT_TRUE(info.distance_vectors().empty());
}

TEST(Dependence, AntiDependenceCanonicalized) {
  // Write A[i] after reading A[i+1]: distance (write -> read) is (-1),
  // canonicalized to lexicographically positive (1).
  LoopNest nest = LoopNestBuilder("anti")
                      .loop("i", 0, 7)
                      .statement("S")
                      .write("A", {idx(0)})
                      .read("A", {idx(0) + 1})
                      .build();
  DependenceInfo info = analyze_dependences(nest);
  ASSERT_EQ(info.distance_vectors().size(), 1u);
  EXPECT_EQ(info.distance_vectors()[0], (IntVec{1}));
}

TEST(Dependence, LoopIndependentIgnored) {
  // Same-iteration write/read: no loop-carried dependence.
  LoopNest nest = LoopNestBuilder("indep")
                      .loop("i", 0, 7)
                      .statement("S")
                      .write("A", {idx(0)})
                      .read("B", {idx(0)})
                      .statement("T")
                      .write("B", {idx(0)})
                      .read("A", {idx(0)})
                      .build();
  DependenceInfo info = analyze_dependences(nest);
  EXPECT_TRUE(info.distance_vectors().empty());
}

TEST(Dependence, NoDependenceWhenElementsNeverMeet) {
  // Write A[2i], read A[2i+1]: disjoint elements.
  LoopNest nest = LoopNestBuilder("disjoint")
                      .loop("i", 0, 7)
                      .statement("S")
                      .write("A", {2 * idx(0)})
                      .read("A", {2 * idx(0) + 1})
                      .build();
  DependenceInfo info = analyze_dependences(nest);
  EXPECT_TRUE(info.distance_vectors().empty());
}

TEST(Dependence, NonUniformThrowsWhenRequired) {
  // Write A[i], read A[2i]: access matrices differ -> non-uniform.
  LoopNest nest = LoopNestBuilder("nonuniform")
                      .loop("i", 0, 7)
                      .statement("S")
                      .write("A", {idx(0)})
                      .read("A", {2 * idx(0)})
                      .build();
  EXPECT_THROW(analyze_dependences(nest), NonUniformDependenceError);

  DependenceOptions lax;
  lax.require_uniform = false;
  DependenceInfo info = analyze_dependences(nest, lax);
  EXPECT_FALSE(info.warnings.empty());
}

TEST(Dependence, AllVectorsLexPositive) {
  for (const LoopNest& nest :
       {workloads::example_l1(), workloads::matrix_vector(5), workloads::sor2d(4, 4),
        workloads::convolution1d(6, 3)}) {
    DependenceInfo info = analyze_dependences(nest);
    for (const IntVec& d : info.distance_vectors()) EXPECT_TRUE(lex_positive(d));
  }
}

TEST(Dependence, DependenceMatrixShape) {
  DependenceInfo info = analyze_dependences(workloads::matrix_multiplication());
  IntMat d = info.dependence_matrix(3);
  EXPECT_EQ(d.rows(), 3u);
  EXPECT_EQ(d.cols(), 3u);
}

TEST(Dependence, ToStringMentionsArrayAndKind) {
  DependenceInfo info = analyze_dependences(workloads::matrix_vector(4));
  ASSERT_FALSE(info.dependences.empty());
  std::string s = info.dependences.front().to_string();
  EXPECT_NE(s.find("("), std::string::npos);
  EXPECT_NE(s.find("->"), std::string::npos);
}

}  // namespace
}  // namespace hypart
