#include "exec/interpreter.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "mapping/baseline_map.hpp"
#include "mapping/hypercube_map.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

TEST(Sequential, MatvecMatchesDirectComputation) {
  const std::int64_t m = 4;
  ArrayStore result = run_sequential(workloads::matrix_vector(m));
  // y[i] should equal init(y,[i]) + sum_j init(A,[i,j]) * init(x,[j]).
  for (std::int64_t i = 1; i <= m; ++i) {
    double expect = default_init("y", {i});
    for (std::int64_t j = 1; j <= m; ++j)
      expect += default_init("A", {i, j}) * default_init("x", {j});
    std::optional<double> got = result.load("y", {i});
    ASSERT_TRUE(got.has_value());
    EXPECT_NEAR(*got, expect, 1e-9);
  }
}

TEST(Sequential, MatmulMatchesDirectComputation) {
  const std::int64_t n = 2;  // 3x3x3
  ArrayStore result = run_sequential(workloads::matrix_multiplication(n));
  for (std::int64_t i = 0; i <= n; ++i) {
    for (std::int64_t j = 0; j <= n; ++j) {
      double expect = default_init("C", {i, j});
      for (std::int64_t k = 0; k <= n; ++k)
        expect += default_init("A", {i, k}) * default_init("B", {k, j});
      std::optional<double> got = result.load("C", {i, j});
      ASSERT_TRUE(got.has_value());
      EXPECT_NEAR(*got, expect, 1e-9);
    }
  }
}

TEST(Sequential, Sor2dRecurrenceOrder) {
  // A[1,1] depends on boundary inits; A[2,2] on updated neighbors.
  ArrayStore result = run_sequential(workloads::sor2d(2, 2));
  double a11 = (default_init("A", {0, 1}) + default_init("A", {1, 0})) * 0.5 + 0.125;
  ASSERT_TRUE(result.load("A", {1, 1}).has_value());
  EXPECT_NEAR(*result.load("A", {1, 1}), a11, 1e-12);
  double a12 = (default_init("A", {0, 2}) + a11) * 0.5 + 0.125;
  EXPECT_NEAR(*result.load("A", {1, 2}), a12, 1e-12);
}

TEST(Sequential, NonExecutableNestThrows) {
  LoopNest nest = LoopNestBuilder("plain")
                      .loop("i", 0, 3)
                      .statement("S")
                      .write("A", {idx(0)})
                      .read("A", {idx(0) - 1})
                      .build();
  EXPECT_THROW(run_sequential(nest), std::invalid_argument);
}

TEST(ArrayStoreTest, Basics) {
  ArrayStore s;
  EXPECT_FALSE(s.load("A", {0}).has_value());
  s.store("A", {0}, 1.5);
  s.store("A", {1}, 2.5);
  s.store("B", {0, 0}, 3.5);
  EXPECT_DOUBLE_EQ(*s.load("A", {0}), 1.5);
  EXPECT_EQ(s.total_elements(), 3u);
  s.store("A", {0}, 9.0);  // overwrite
  EXPECT_DOUBLE_EQ(*s.load("A", {0}), 9.0);
  EXPECT_EQ(s.total_elements(), 3u);
}

TEST(CompareStores, DetectsMismatchAndExtras) {
  ArrayStore a, b;
  a.store("A", {0}, 1.0);
  b.store("A", {0}, 1.0);
  EXPECT_TRUE(compare_stores(a, b).equal);
  b.store("A", {0}, 1.1);
  EquivalenceReport rep = compare_stores(a, b);
  EXPECT_FALSE(rep.equal);
  EXPECT_FALSE(rep.first_mismatch.empty());
  // Extra write detection.
  ArrayStore c;
  c.store("A", {0}, 1.0);
  c.store("A", {5}, 7.0);
  EXPECT_FALSE(compare_stores(a, c).equal);
  // Missing element.
  ArrayStore d;
  EXPECT_FALSE(compare_stores(a, d).equal);
}

struct DistFixture {
  std::unique_ptr<ComputationStructure> q;
  std::unique_ptr<ProjectedStructure> ps;
  Grouping grouping;
  Partition partition;
  TaskInteractionGraph tig;
  TimeFunction tf;
  DependenceInfo deps;
  LoopNest nest;

  explicit DistFixture(LoopNest n, IntVec pi) : nest(std::move(n)) {
    deps = analyze_dependences(nest);
    IndexSet is(nest);
    q = std::make_unique<ComputationStructure>(is.points(), deps.distance_vectors());
    tf = TimeFunction{std::move(pi)};
    ps = std::make_unique<ProjectedStructure>(*q, tf);
    grouping = Grouping::compute(*ps);
    partition = Partition::build(*q, grouping);
    tig = TaskInteractionGraph::from_partition(*q, partition, grouping);
  }
};

TEST(Distributed, MatvecEqualsSequentialOnHypercube) {
  DistFixture f(workloads::matrix_vector(8), {1, 1});
  ArrayStore seq = run_sequential(f.nest);
  for (unsigned dim : {0u, 1u, 2u, 3u}) {
    Mapping map = map_to_hypercube(f.tig, dim).mapping;
    DistributedResult dist =
        run_distributed(f.nest, *f.q, f.tf, f.partition, map, f.deps);
    EquivalenceReport rep = compare_stores(seq, dist.written);
    EXPECT_TRUE(rep.equal) << "dim=" << dim << ": " << rep.first_mismatch;
  }
}

TEST(Distributed, MessagesOnlyWhenMultipleProcessors) {
  DistFixture f(workloads::matrix_vector(8), {1, 1});
  Mapping one = map_to_hypercube(f.tig, 0).mapping;
  DistributedResult r0 = run_distributed(f.nest, *f.q, f.tf, f.partition, one, f.deps);
  EXPECT_EQ(r0.stats.value_messages, 0);

  Mapping four = map_to_hypercube(f.tig, 2).mapping;
  DistributedResult r2 = run_distributed(f.nest, *f.q, f.tf, f.partition, four, f.deps);
  EXPECT_GT(r2.stats.value_messages, 0);
}

TEST(Distributed, MessageCountMatchesInterblockInterprocessorArcs) {
  // Every dependence arc crossing processors sends exactly one value.
  DistFixture f(workloads::matrix_vector(8), {1, 1});
  Mapping map = map_to_hypercube(f.tig, 2).mapping;
  DistributedResult dist = run_distributed(f.nest, *f.q, f.tf, f.partition, map, f.deps);

  std::int64_t crossing = 0;
  f.q->for_each_arc([&](const IntVec& a, const IntVec& b, std::size_t) {
    ProcId pa = map.block_to_proc[f.partition.block_of(f.q->id_of(a))];
    ProcId pb = map.block_to_proc[f.partition.block_of(f.q->id_of(b))];
    if (pa != pb) ++crossing;
  });
  EXPECT_EQ(dist.stats.value_messages, crossing);
}

TEST(Distributed, CorrectEvenUnderAdversarialMappings) {
  // Correctness must not depend on the mapping quality: random and
  // round-robin placements still produce sequential-equal results.
  DistFixture f(workloads::sor2d(6, 7), {1, 1});
  ArrayStore seq = run_sequential(f.nest);
  for (int variant : {0, 1, 2}) {
    Mapping map;
    if (variant == 0) map = map_random(f.tig, 8, 99);
    if (variant == 1) map = map_round_robin(f.tig, 5);
    if (variant == 2) map = map_contiguous(f.tig, 3);
    DistributedResult dist = run_distributed(f.nest, *f.q, f.tf, f.partition, map, f.deps);
    EquivalenceReport rep = compare_stores(seq, dist.written);
    EXPECT_TRUE(rep.equal) << rep.first_mismatch;
  }
}

TEST(Distributed, StatsConservation) {
  DistFixture f(workloads::example_l1(5), {1, 1});
  Mapping map = map_to_hypercube(f.tig, 1).mapping;
  DistributedResult dist = run_distributed(f.nest, *f.q, f.tf, f.partition, map, f.deps);
  std::int64_t total = 0;
  for (std::int64_t c : dist.stats.per_proc_iterations) total += c;
  EXPECT_EQ(total, static_cast<std::int64_t>(f.q->vertices().size()));
  EXPECT_EQ(dist.stats.steps, 11);  // hyperplanes 0..10 on the 6x6 domain
}

class DistributedEquivalenceProperty
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(DistributedEquivalenceProperty, AllWorkloadsAllMachineSizes) {
  auto [which, dim] = GetParam();
  LoopNest nest = [&]() -> LoopNest {
    switch (which) {
      case 0: return workloads::example_l1(5);
      case 1: return workloads::matrix_vector(6);
      case 2: return workloads::matrix_multiplication(3);
      case 3: return workloads::sor2d(5, 6);
      case 4: return workloads::convolution1d(8, 4);
      case 5: return workloads::wavefront3d(4);
      case 6: return workloads::transitive_closure(4);
      default: return workloads::strided_recurrence(6, 2);
    }
  }();
  DependenceInfo deps = analyze_dependences(nest);
  IndexSet is(nest);
  ComputationStructure q(is.points(), deps.distance_vectors());
  auto tf = search_time_function(q);
  ASSERT_TRUE(tf.has_value());
  ProjectedStructure ps(q, *tf);
  Grouping g = Grouping::compute(ps);
  Partition part = Partition::build(q, g);
  TaskInteractionGraph tig = TaskInteractionGraph::from_partition(q, part, g);
  Mapping map = map_to_hypercube(tig, dim).mapping;

  ArrayStore seq = run_sequential(nest);
  DistributedResult dist = run_distributed(nest, q, *tf, part, map, deps);
  EquivalenceReport rep = compare_stores(seq, dist.written);
  EXPECT_TRUE(rep.equal) << nest.name() << " dim=" << dim << ": " << rep.first_mismatch;
  EXPECT_GT(rep.compared, 0u);
}

INSTANTIATE_TEST_SUITE_P(WorkloadsAndDims, DistributedEquivalenceProperty,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6, 7),
                                            ::testing::Values(0u, 1u, 2u, 3u)));

}  // namespace
}  // namespace hypart
