#include "exec/parallel_runtime.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "mapping/hypercube_map.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

struct RuntimeFixture {
  std::unique_ptr<ComputationStructure> q;
  std::unique_ptr<ProjectedStructure> ps;
  Grouping grouping;
  Partition partition;
  TaskInteractionGraph tig;
  TimeFunction tf;
  DependenceInfo deps;
  LoopNest nest;

  explicit RuntimeFixture(LoopNest n) : nest(std::move(n)) {
    deps = analyze_dependences(nest);
    IndexSet is(nest);
    q = std::make_unique<ComputationStructure>(is.points(), deps.distance_vectors());
    auto found = search_time_function(*q);
    tf = *found;
    ps = std::make_unique<ProjectedStructure>(*q, tf);
    grouping = Grouping::compute(*ps);
    partition = Partition::build(*q, grouping);
    tig = TaskInteractionGraph::from_partition(*q, partition, grouping);
  }
};

TEST(ParallelRuntime, MatvecThreadsMatchSequential) {
  RuntimeFixture f(workloads::matrix_vector(12));
  ArrayStore seq = run_sequential(f.nest);
  Mapping map = map_to_hypercube(f.tig, 2).mapping;
  ParallelRunResult par = run_parallel(f.nest, *f.q, f.tf, f.partition, map, f.deps);
  EquivalenceReport rep = compare_stores(seq, par.written);
  EXPECT_TRUE(rep.equal) << rep.first_mismatch;
  EXPECT_EQ(par.stats.threads, 4u);
  EXPECT_GT(par.stats.messages_sent, 0);
}

TEST(ParallelRuntime, MessageCountMatchesInterpreter) {
  RuntimeFixture f(workloads::sor2d(8, 8));
  Mapping map = map_to_hypercube(f.tig, 2).mapping;
  ParallelRunResult par = run_parallel(f.nest, *f.q, f.tf, f.partition, map, f.deps);
  DistributedResult sim = run_distributed(f.nest, *f.q, f.tf, f.partition, map, f.deps);
  EXPECT_EQ(par.stats.messages_sent, sim.stats.value_messages);
}

TEST(ParallelRuntime, SingleThreadDegenerate) {
  RuntimeFixture f(workloads::example_l1(4));
  Mapping one;
  one.processor_count = 1;
  one.block_to_proc.assign(f.partition.block_count(), 0);
  ParallelRunResult par = run_parallel(f.nest, *f.q, f.tf, f.partition, one, f.deps);
  EXPECT_EQ(par.stats.messages_sent, 0);
  ArrayStore seq = run_sequential(f.nest);
  EXPECT_TRUE(compare_stores(seq, par.written).equal);
}

TEST(ParallelRuntime, NonExecutableThrows) {
  LoopNest plain = LoopNestBuilder("p")
                       .loop("i", 0, 3)
                       .statement("S")
                       .write("A", {idx(0)})
                       .read("A", {idx(0) - 1})
                       .build();
  DependenceInfo deps = analyze_dependences(plain);
  IndexSet is(plain);
  ComputationStructure q(is.points(), deps.distance_vectors());
  TimeFunction tf{{1}};
  ProjectedStructure ps(q, tf);
  Grouping g = Grouping::compute(ps);
  Partition part = Partition::build(q, g);
  Mapping map;
  map.processor_count = 1;
  map.block_to_proc.assign(part.block_count(), 0);
  EXPECT_THROW(run_parallel(plain, q, tf, part, map, deps), std::invalid_argument);
}

TEST(ParallelRuntime, RepeatedRunsDeterministicUnderScheduling) {
  // Thread interleavings vary between runs; results must not.
  RuntimeFixture f(workloads::matrix_multiplication(5));
  Mapping map = map_to_hypercube(f.tig, 3).mapping;
  ArrayStore seq = run_sequential(f.nest);
  for (int run = 0; run < 8; ++run) {
    ParallelRunResult par = run_parallel(f.nest, *f.q, f.tf, f.partition, map, f.deps);
    EquivalenceReport rep = compare_stores(seq, par.written);
    ASSERT_TRUE(rep.equal) << "run " << run << ": " << rep.first_mismatch;
  }
}

class ParallelEquivalenceProperty
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(ParallelEquivalenceProperty, ThreadsMatchSequential) {
  auto [which, dim] = GetParam();
  LoopNest nest = [&]() -> LoopNest {
    switch (which) {
      case 0: return workloads::example_l1(6);
      case 1: return workloads::matrix_vector(8);
      case 2: return workloads::matrix_multiplication(4);
      case 3: return workloads::sor2d(6, 7);
      case 4: return workloads::convolution1d(10, 5);
      case 5: return workloads::wavefront3d(4);
      default: return workloads::dft_horner(8);
    }
  }();
  RuntimeFixture f(std::move(nest));
  Mapping map = map_to_hypercube(f.tig, dim).mapping;
  ArrayStore seq = run_sequential(f.nest);
  ParallelRunResult par = run_parallel(f.nest, *f.q, f.tf, f.partition, map, f.deps);
  EquivalenceReport rep = compare_stores(seq, par.written);
  EXPECT_TRUE(rep.equal) << f.nest.name() << " dim=" << dim << ": " << rep.first_mismatch;
}

INSTANTIATE_TEST_SUITE_P(WorkloadsAndDims, ParallelEquivalenceProperty,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6),
                                            ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace hypart
