#include "mapping/hypercube_map.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "mapping/gray.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

TEST(HypercubeMap, MeshTigOntoThreeCube) {
  // Paper Example 3 / Fig. 8: 4x4 mesh TIG onto a 3-cube; 8 clusters of 2.
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(4, 4);
  HypercubeMappingResult res = map_to_hypercube(tig, 3);
  EXPECT_EQ(res.mapping.processor_count, 8u);
  EXPECT_EQ(res.clusters.size(), 8u);
  for (const Cluster& c : res.clusters) EXPECT_EQ(c.vertices.size(), 2u);

  // Every processor used exactly once.
  std::set<ProcId> procs;
  for (const Cluster& c : res.clusters) procs.insert(c.processor);
  EXPECT_EQ(procs.size(), 8u);

  // Division alternates x, y, x -> 2 bits along x, 1 along y.
  ASSERT_EQ(res.bits_per_direction.size(), 2u);
  EXPECT_EQ(res.bits_per_direction[0] + res.bits_per_direction[1], 3u);
  EXPECT_EQ(res.directions_used, 2u);
}

TEST(HypercubeMap, MeshNeighborClustersLandOnNeighborProcessors) {
  // The Gray numbering guarantee: clusters adjacent along a bisection
  // direction are hypercube neighbors.
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(4, 4);
  HypercubeMappingResult res = map_to_hypercube(tig, 3);
  Hypercube cube(3);
  // Sort clusters by rank vectors and compare neighbors.
  for (const Cluster& a : res.clusters) {
    for (const Cluster& b : res.clusters) {
      std::size_t diff_dirs = 0;
      bool adjacent = true;
      for (std::size_t d = 0; d < a.ranks.size(); ++d) {
        std::uint64_t ra = a.ranks[d], rb = b.ranks[d];
        if (ra == rb) continue;
        ++diff_dirs;
        if (!(ra + 1 == rb || rb + 1 == ra)) adjacent = false;
      }
      if (diff_dirs == 1 && adjacent) {
        EXPECT_EQ(cube.distance(a.processor, b.processor), 1u);
      }
    }
  }
}

TEST(HypercubeMap, CubeDimZero) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(2, 2);
  HypercubeMappingResult res = map_to_hypercube(tig, 0);
  EXPECT_EQ(res.mapping.processor_count, 1u);
  for (ProcId p : res.mapping.block_to_proc) EXPECT_EQ(p, 0u);
}

TEST(HypercubeMap, BalancedClusterSizes) {
  // 16 blocks over 4 procs -> 4 each; 10 blocks over 4 procs -> sizes 2..3.
  TaskInteractionGraph tig16 = TaskInteractionGraph::mesh(4, 4);
  for (const Cluster& c : map_to_hypercube(tig16, 2).clusters)
    EXPECT_EQ(c.vertices.size(), 4u);

  TaskInteractionGraph tig10 = TaskInteractionGraph::mesh(5, 2);
  for (const Cluster& c : map_to_hypercube(tig10, 2).clusters) {
    EXPECT_GE(c.vertices.size(), 2u);
    EXPECT_LE(c.vertices.size(), 3u);
  }
}

TEST(HypercubeMap, MoreProcsThanBlocks) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(2, 1);  // 2 blocks
  HypercubeMappingResult res = map_to_hypercube(tig, 3);        // 8 procs
  EXPECT_EQ(res.clusters.size(), 8u);
  std::size_t nonempty = 0;
  for (const Cluster& c : res.clusters) nonempty += c.vertices.empty() ? 0 : 1;
  EXPECT_EQ(nonempty, 2u);
}

TEST(HypercubeMap, WithoutCoordinatesFallsBackToVertexOrder) {
  TaskInteractionGraph tig(8);
  for (std::size_t v = 0; v + 1 < 8; ++v) tig.add_comm(v, v + 1, 1);  // a path
  ASSERT_FALSE(tig.has_coordinates());
  HypercubeMappingResult res = map_to_hypercube(tig, 3);
  // Consecutive path vertices end up on neighboring processors (1-D Gray).
  Hypercube cube(3);
  for (std::size_t v = 0; v + 1 < 8; ++v)
    EXPECT_EQ(cube.distance(res.mapping.block_to_proc[v], res.mapping.block_to_proc[v + 1]), 1u)
        << v;
}

TEST(HypercubeMap, L1PipelineMapping) {
  auto q = std::make_unique<ComputationStructure>(
      ComputationStructure::from_loop(workloads::example_l1(7)));  // 8x8 domain
  ProjectedStructure ps(*q, TimeFunction{{1, 1}});
  Grouping g = Grouping::compute(ps);
  Partition p = Partition::build(*q, g);
  TaskInteractionGraph tig = TaskInteractionGraph::from_partition(*q, p, g);
  HypercubeMappingResult res = map_to_hypercube(tig, 2);
  EXPECT_EQ(res.mapping.block_to_proc.size(), p.block_count());
  // The 1-D block chain must map to a Gray path: blocks adjacent in the
  // lattice land on processors at distance <= 1... adjacent *clusters*
  // are exactly distance 1.
  Hypercube cube(2);
  MappingMetrics metrics = evaluate_mapping(tig, res.mapping, cube);
  EXPECT_DOUBLE_EQ(metrics.avg_hops_weighted, 1.0);  // only neighbor traffic
}

TEST(HypercubeMap, WeightedSplitImprovesLoadBalance) {
  // matvec blocks carry wildly uneven iteration counts (the diagonal block
  // has 2M-1 points, the corner blocks ~1); weighted bisection must not
  // increase the bottleneck compute load — and typically lowers it.
  const std::int64_t m = 32;
  auto q = std::make_unique<ComputationStructure>(
      ComputationStructure::from_loop(workloads::matrix_vector(m)));
  ProjectedStructure ps(*q, TimeFunction{{1, 1}});
  Grouping g = Grouping::compute(ps);
  Partition p = Partition::build(*q, g);
  TaskInteractionGraph tig = TaskInteractionGraph::from_partition(*q, p, g);

  Hypercube cube(3);
  HypercubeMapOptions weighted;
  weighted.weighted = true;
  MappingMetrics plain = evaluate_mapping(tig, map_to_hypercube(tig, 3).mapping, cube);
  MappingMetrics balanced =
      evaluate_mapping(tig, map_to_hypercube(tig, 3, weighted).mapping, cube);
  EXPECT_LE(balanced.max_proc_compute, plain.max_proc_compute);
  EXPECT_LT(balanced.compute_imbalance, plain.compute_imbalance + 1e-9);
  // Still a complete assignment with neighbor-only traffic.
  EXPECT_DOUBLE_EQ(balanced.avg_hops_weighted, 1.0);
}

TEST(HypercubeMap, WeightedSplitStillCoversAllBlocks) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(5, 5);
  for (std::size_t v = 0; v < tig.vertex_count(); ++v)
    tig.set_compute_weight(v, static_cast<std::int64_t>(1 + (v * 7) % 13));
  HypercubeMapOptions weighted;
  weighted.weighted = true;
  HypercubeMappingResult res = map_to_hypercube(tig, 3, weighted);
  std::size_t total = 0;
  for (const Cluster& c : res.clusters) total += c.vertices.size();
  EXPECT_EQ(total, 25u);
  for (ProcId p : res.mapping.block_to_proc) EXPECT_LT(p, 8u);
}

TEST(HypercubeMap, EmptyTigThrows) {
  TaskInteractionGraph tig;
  EXPECT_THROW(map_to_hypercube(tig, 2), std::invalid_argument);
}

class MapBalanceProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(MapBalanceProperty, ClusterSizesDifferByAtMostSplitRounding) {
  unsigned dim = GetParam();
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(6, 5);  // 30 blocks
  HypercubeMappingResult res = map_to_hypercube(tig, dim);
  std::size_t lo = SIZE_MAX, hi = 0;
  for (const Cluster& c : res.clusters) {
    lo = std::min(lo, c.vertices.size());
    hi = std::max(hi, c.vertices.size());
  }
  // Repeated halving of 30 keeps sizes within a factor-of-rounding band.
  EXPECT_LE(hi - lo, static_cast<std::size_t>(dim));
  // All blocks assigned exactly once.
  std::size_t total = 0;
  for (const Cluster& c : res.clusters) total += c.vertices.size();
  EXPECT_EQ(total, 30u);
}

INSTANTIATE_TEST_SUITE_P(Dims, MapBalanceProperty, ::testing::Values(0u, 1u, 2u, 3u, 4u));

}  // namespace
}  // namespace hypart
