#include "partition/grouping.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "workloads/workloads.hpp"

namespace hypart {
namespace {

struct Built {
  std::unique_ptr<ComputationStructure> q;
  std::unique_ptr<ProjectedStructure> ps;
};

Built build(const LoopNest& nest, const IntVec& pi) {
  Built b;
  b.q = std::make_unique<ComputationStructure>(ComputationStructure::from_loop(nest));
  b.ps = std::make_unique<ProjectedStructure>(*b.q, TimeFunction{pi});
  return b;
}

TEST(GroupingTest, L1GroupSizeIsTwo) {
  Built b = build(workloads::example_l1(), {1, 1});
  Grouping g = Grouping::compute(*b.ps);
  EXPECT_EQ(g.group_size_r(), 2);
  ASSERT_TRUE(g.grouping_vector_index().has_value());
  // Grouping vector must be one of the nonzero projected deps with r = 2.
  EXPECT_FALSE(is_zero(b.ps->projected_deps_scaled()[*g.grouping_vector_index()]));
  // β = rank{(-1/2,1/2), (0,0), (1/2,-1/2)} = 1 -> no auxiliary vectors.
  EXPECT_EQ(g.beta(), 1u);
  EXPECT_TRUE(g.auxiliary_vector_indices().empty());
}

TEST(GroupingTest, L1FourGroups) {
  // Paper Fig. 3(b): 7 projected points -> 4 groups (three of size 2, one
  // boundary singleton).
  Built b = build(workloads::example_l1(), {1, 1});
  Grouping g = Grouping::compute(*b.ps);
  EXPECT_EQ(g.group_count(), 4u);
  std::multiset<std::size_t> sizes;
  for (const Group& grp : g.groups()) sizes.insert(grp.size());
  EXPECT_EQ(sizes, (std::multiset<std::size_t>{1, 2, 2, 2}));
}

TEST(GroupingTest, L1EveryPointGroupedOnce) {
  Built b = build(workloads::example_l1(), {1, 1});
  Grouping g = Grouping::compute(*b.ps);
  std::set<std::size_t> seen;
  for (const Group& grp : g.groups())
    for (std::size_t pid : grp.members()) EXPECT_TRUE(seen.insert(pid).second);
  EXPECT_EQ(seen.size(), b.ps->point_count());
  for (std::size_t p = 0; p < b.ps->point_count(); ++p)
    EXPECT_LT(g.group_of_point(p), g.group_count());
}

TEST(GroupingTest, SlotsFollowGroupingVector) {
  Built b = build(workloads::example_l1(), {1, 1});
  Grouping g = Grouping::compute(*b.ps);
  const IntVec& step = b.ps->projected_deps_scaled()[*g.grouping_vector_index()];
  for (const Group& grp : g.groups()) {
    for (std::size_t k = 0; k < grp.slots.size(); ++k) {
      if (!grp.slots[k]) continue;
      IntVec expect = grp.base;
      for (std::size_t i = 0; i < k; ++i) expect = add(expect, step);
      EXPECT_EQ(b.ps->points()[*grp.slots[k]], expect);
    }
  }
}

TEST(GroupingTest, MatmulDefaultGrouping) {
  // r=3 over 37 projected points, β=2 with one auxiliary vector; the group
  // count depends on the (arbitrary) seed/auxiliary choices, but every
  // projected point must be covered and interior groups must hold 3 points.
  Built b = build(workloads::matrix_multiplication(), {1, 1, 1});
  Grouping g = Grouping::compute(*b.ps);
  EXPECT_EQ(g.group_size_r(), 3);
  EXPECT_EQ(g.beta(), 2u);
  EXPECT_EQ(g.auxiliary_vector_indices().size(), 1u);
  std::size_t covered = 0;
  for (const Group& grp : g.groups()) {
    EXPECT_GE(grp.size(), 1u);
    EXPECT_LE(grp.size(), 3u);
    covered += grp.size();
  }
  EXPECT_EQ(covered, 37u);
  EXPECT_GE(g.group_count(), 13u);  // ceil(37/3)
  EXPECT_LE(g.group_count(), 21u);  // each of the 7 lines splits into <= 3
}

TEST(GroupingTest, MatmulPaperSeedReproducesFigure6) {
  // The paper picks d_A^p = (-1/3,2/3,-1/3) as grouping vector, d_C^p =
  // (-1/3,-1/3,2/3) as auxiliary, and base vertex (-1,-1,2)
  // (scaled: (-3,-3,6)); Step 6 yields 17 groups (Fig. 6).
  Built b = build(workloads::matrix_multiplication(), {1, 1, 1});
  const std::vector<IntVec>& pdeps = b.ps->projected_deps_scaled();
  GroupingOptions opts;
  std::vector<std::size_t> aux;
  for (std::size_t k = 0; k < pdeps.size(); ++k) {
    if (pdeps[k] == IntVec{-1, 2, -1}) opts.grouping_vector = k;
    if (pdeps[k] == IntVec{-1, -1, 2}) aux.push_back(k);
  }
  opts.auxiliary_vectors = aux;
  ASSERT_TRUE(opts.grouping_vector.has_value());
  opts.seed_policy = SeedPolicy::ExplicitBases;
  opts.explicit_bases = {{-3, -3, 6}};
  Grouping g = Grouping::compute(*b.ps, opts);
  EXPECT_EQ(g.group_count(), 17u);

  // The paper's G_1 = {(-1,-1,2), (-4/3,-1/3,5/3), (-5/3,1/3,4/3)}
  // (scaled by 3: (-3,-3,6), (-4,-1,5), (-5,1,4)).
  std::optional<std::size_t> base_id = b.ps->find_point({-3, -3, 6});
  ASSERT_TRUE(base_id.has_value());
  std::size_t gid = g.group_of_point(*base_id);
  std::set<IntVec> members;
  for (std::size_t pid : g.groups()[gid].members()) members.insert(b.ps->points()[pid]);
  EXPECT_EQ(members, (std::set<IntVec>{{-3, -3, 6}, {-4, -1, 5}, {-5, 1, 4}}));
}

TEST(GroupingTest, AuxiliaryIndependentOfGroupingVector) {
  Built b = build(workloads::matrix_multiplication(), {1, 1, 1});
  Grouping g = Grouping::compute(*b.ps);
  ASSERT_EQ(g.auxiliary_vector_indices().size(), 1u);
  std::size_t l = *g.grouping_vector_index();
  std::size_t a = g.auxiliary_vector_indices()[0];
  EXPECT_NE(l, a);
  std::vector<RatVec> both{b.ps->projected_dep_rational(l), b.ps->projected_dep_rational(a)};
  EXPECT_EQ(rank_of(both), 2u);
}

TEST(GroupingTest, LatticeCoordinatesConsistent) {
  // Neighbor groups along the grouping direction differ by 1 in lattice[0];
  // along the auxiliary direction by 1 in lattice[1].
  Built b = build(workloads::matrix_multiplication(), {1, 1, 1});
  Grouping g = Grouping::compute(*b.ps);
  std::vector<IntVec> dirs = g.lattice_directions();
  ASSERT_EQ(dirs.size(), 2u);
  std::map<IntVec, std::size_t> base_to_group;
  for (std::size_t i = 0; i < g.group_count(); ++i) base_to_group[g.groups()[i].base] = i;
  for (const Group& grp : g.groups()) {
    for (std::size_t d = 0; d < dirs.size(); ++d) {
      auto it = base_to_group.find(add(grp.base, dirs[d]));
      if (it == base_to_group.end()) continue;
      const Group& nb = g.groups()[it->second];
      if (nb.component != grp.component) continue;
      IntVec expect = grp.lattice;
      expect[d] += 1;
      EXPECT_EQ(nb.lattice, expect);
    }
  }
}

TEST(GroupingTest, GroupingVectorOverrideValidation) {
  Built b = build(workloads::example_l1(), {1, 1});
  // Index of the zero projected dep (d2 = (1,1) ∥ Π) cannot be grouping
  // vector: its r is 1, not the max.
  const std::vector<IntVec>& pdeps = b.ps->projected_deps_scaled();
  for (std::size_t k = 0; k < pdeps.size(); ++k) {
    GroupingOptions opts;
    opts.grouping_vector = k;
    if (is_zero(pdeps[k])) {
      EXPECT_THROW(Grouping::compute(*b.ps, opts), std::invalid_argument);
    } else {
      Grouping g = Grouping::compute(*b.ps, opts);
      EXPECT_EQ(*g.grouping_vector_index(), k);
    }
  }
}

TEST(GroupingTest, DegenerateAllDepsParallelToPi) {
  // Single dependence (1,1) with Π = (1,1): D^p = {0}; every projected
  // point is its own group.
  ComputationStructure q({{0, 0}, {0, 1}, {1, 0}, {1, 1}, {0, 2}}, {{1, 1}});
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  Grouping g = Grouping::compute(ps);
  EXPECT_FALSE(g.grouping_vector_index().has_value());
  EXPECT_EQ(g.group_size_r(), 1);
  EXPECT_EQ(g.group_count(), ps.point_count());
  EXPECT_TRUE(g.lattice_directions().empty());
}

TEST(GroupingTest, OneDimensionalLoop) {
  // 1-nested loop: projected structure is the single origin point.
  ComputationStructure q({{0}, {1}, {2}, {3}}, {{1}});
  ProjectedStructure ps(q, TimeFunction{{1}});
  EXPECT_EQ(ps.point_count(), 1u);
  Grouping g = Grouping::compute(ps);
  EXPECT_EQ(g.group_count(), 1u);
}

TEST(GroupingTest, MatvecMGroups) {
  // Section IV: 2M-1 projected points, r=2 -> M groups.
  const std::int64_t m = 8;
  ComputationStructure q = ComputationStructure::from_loop(workloads::matrix_vector(m));
  ProjectedStructure ps(q, TimeFunction{{1, 1}});
  Grouping g = Grouping::compute(ps);
  EXPECT_EQ(g.group_size_r(), 2);
  EXPECT_EQ(g.group_count(), static_cast<std::size_t>(m));
}

TEST(GroupingTest, GroupDigraphEdgesOnlyBetweenDistinctGroups) {
  Built b = build(workloads::matrix_multiplication(), {1, 1, 1});
  Grouping g = Grouping::compute(*b.ps);
  Digraph dg = g.group_digraph();
  EXPECT_EQ(dg.vertex_count(), g.group_count());
  for (std::size_t v = 0; v < dg.vertex_count(); ++v) EXPECT_FALSE(dg.has_edge(v, v));
}

class GroupingCoverProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(GroupingCoverProperty, AllWorkloadsCoverAllPoints) {
  std::int64_t n = GetParam();
  for (const LoopNest& nest :
       {workloads::sor2d(n, n + 1), workloads::convolution1d(n + 2, n), workloads::example_l1(n)}) {
    ComputationStructure q = ComputationStructure::from_loop(nest);
    auto tf = search_time_function(q);
    ASSERT_TRUE(tf.has_value());
    ProjectedStructure ps(q, *tf);
    Grouping g = Grouping::compute(ps);
    std::size_t covered = 0;
    for (const Group& grp : g.groups()) covered += grp.size();
    EXPECT_EQ(covered, ps.point_count()) << nest.name() << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GroupingCoverProperty, ::testing::Values(2, 3, 4, 6));

TEST(GroupingTest, LexicographicComponentNumberingIsPinned) {
  // The strided recurrence splits the projected points into `stride`
  // disconnected chain-residue classes — the multi-component case.  Under
  // SeedPolicy::Lexicographic (the default), component k must be the k-th
  // region in ascending order of its lexicographically smallest projected
  // point, the numbering the symbolic group lattice reproduces without
  // materializing groups.  Regression-pins that contract.
  Built b = build(workloads::strided_recurrence(9, 3), {1, 1});
  Grouping g = Grouping::compute(*b.ps);

  std::size_t ncomp = 0;
  for (const Group& grp : g.groups()) ncomp = std::max(ncomp, grp.component + 1);
  ASSERT_GE(ncomp, 2u) << "want a genuinely multi-component workload";

  // Component ids are contiguous from 0 and appear in nondecreasing order of
  // first use across the group list (each region is grown to completion
  // before the next seed is chosen).
  std::size_t high = 0;
  for (const Group& grp : g.groups()) {
    EXPECT_LE(grp.component, high + 1);
    high = std::max(high, grp.component);
  }
  EXPECT_EQ(high + 1, ncomp);

  // The numbering key: component k's lex-smallest projected point precedes
  // component k+1's (std::vector compares lexicographically).
  std::vector<IntVec> comp_min(ncomp);
  std::vector<bool> seen(ncomp, false);
  for (const Group& grp : g.groups())
    for (std::size_t pid : grp.members()) {
      const IntVec& pt = b.ps->points()[pid];
      if (!seen[grp.component] || pt < comp_min[grp.component]) {
        comp_min[grp.component] = pt;
        seen[grp.component] = true;
      }
    }
  for (std::size_t c = 0; c + 1 < ncomp; ++c) {
    ASSERT_TRUE(seen[c] && seen[c + 1]);
    EXPECT_LT(comp_min[c], comp_min[c + 1]) << "component " << c;
  }
  // Component 0 is seeded at the global lex-minimum (points() is sorted).
  EXPECT_EQ(comp_min[0], b.ps->points().front());

  // Bitwise-identical across an independent recomputation.
  Built b2 = build(workloads::strided_recurrence(9, 3), {1, 1});
  Grouping g2 = Grouping::compute(*b2.ps);
  ASSERT_EQ(g2.group_count(), g.group_count());
  for (std::size_t i = 0; i < g.group_count(); ++i) {
    EXPECT_EQ(g2.groups()[i].base, g.groups()[i].base);
    EXPECT_EQ(g2.groups()[i].lattice, g.groups()[i].lattice);
    EXPECT_EQ(g2.groups()[i].component, g.groups()[i].component);
    EXPECT_EQ(g2.groups()[i].slots, g.groups()[i].slots);
  }
}

}  // namespace
}  // namespace hypart
