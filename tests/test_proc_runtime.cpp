// The multi-process backend: supervised fork+socket workers must produce
// sequential-identical output fault-free AND under every injected real
// failure (SIGKILL, hang, truncated frame, delayed sends), recover by
// reassigning the dead worker's blocks to a live spare, degrade gracefully
// to the threaded backend under resource pressure, and fail typed (never
// hang) when recovery is impossible.
#include "exec/proc_runtime.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>

#include "core/error.hpp"
#include "fault/fault_plan.hpp"
#include "mapping/hypercube_map.hpp"
#include "obs/ledger.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

std::uint64_t fault_seed() {
  // CI sweeps this to shake out schedule-dependent recovery bugs.
  const char* env = std::getenv("HYPART_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 42;
}

struct RuntimeFixture {
  std::unique_ptr<ComputationStructure> q;
  std::unique_ptr<ProjectedStructure> ps;
  Grouping grouping;
  Partition partition;
  TaskInteractionGraph tig;
  TimeFunction tf;
  DependenceInfo deps;
  LoopNest nest;

  explicit RuntimeFixture(LoopNest n) : nest(std::move(n)) {
    deps = analyze_dependences(nest);
    IndexSet is(nest);
    q = std::make_unique<ComputationStructure>(is.points(), deps.distance_vectors());
    tf = *search_time_function(*q);
    ps = std::make_unique<ProjectedStructure>(*q, tf);
    grouping = Grouping::compute(*ps);
    partition = Partition::build(*q, grouping);
    tig = TaskInteractionGraph::from_partition(*q, partition, grouping);
  }

  [[nodiscard]] Mapping map(unsigned dim) const { return map_to_hypercube(tig, dim).mapping; }

  [[nodiscard]] std::pair<std::int64_t, std::int64_t> step_range() const {
    std::int64_t lo = 0, hi = 0;
    bool first = true;
    for (const IntVec& v : q->vertices()) {
      std::int64_t s = tf.step_of(v);
      if (first || s < lo) lo = s;
      if (first || s > hi) hi = s;
      first = false;
    }
    return {lo, hi};
  }
};

/// Fast supervision constants for fault tests: detect a hang in ~hundreds
/// of ms instead of the production 2 s.
ProcRunOptions fast_opts() {
  ProcRunOptions o;
  o.heartbeat_interval_ms = 10;
  o.heartbeat_timeout_ms = 500;
  o.run_timeout_ms = 20000;
  return o;
}

// ---- fault-free equivalence ------------------------------------------------

TEST(ProcRuntime, MatvecProcsMatchSequential) {
  RuntimeFixture f(workloads::matrix_vector(12));
  ArrayStore seq = run_sequential(f.nest);
  ProcRunResult pr = run_procs(f.nest, *f.q, f.tf, f.partition, f.map(2), f.deps);
  EquivalenceReport rep = compare_stores(seq, pr.written);
  EXPECT_TRUE(rep.equal) << rep.first_mismatch;
  EXPECT_EQ(pr.stats.workers, 4u);
  EXPECT_EQ(pr.stats.recoveries, 0);
  EXPECT_FALSE(pr.stats.degraded);
  EXPECT_GT(pr.stats.messages_sent, 0);
}

TEST(ProcRuntime, MessageCountMatchesInterpreterAndHopsAreCharged) {
  RuntimeFixture f(workloads::sor2d(8, 8));
  Mapping map = f.map(2);
  ProcRunResult pr = run_procs(f.nest, *f.q, f.tf, f.partition, map, f.deps);
  DistributedResult sim = run_distributed(f.nest, *f.q, f.tf, f.partition, map, f.deps);
  EXPECT_EQ(pr.stats.messages_sent, sim.stats.value_messages);
  // Every routed message crosses processors, so it is charged >= 1 hop.
  EXPECT_GE(pr.stats.route_hops, pr.stats.messages_sent);
}

TEST(ProcRuntime, WorkloadSweepMatchesSequential) {
  const LoopNest nests[] = {workloads::example_l1(6), workloads::convolution1d(10, 4),
                            workloads::transitive_closure(5)};
  for (const LoopNest& nest : nests) {
    RuntimeFixture f(nest);
    ArrayStore seq = run_sequential(f.nest);
    for (unsigned dim : {1u, 2u}) {
      ProcRunResult pr = run_procs(f.nest, *f.q, f.tf, f.partition, f.map(dim), f.deps);
      EquivalenceReport rep = compare_stores(seq, pr.written);
      EXPECT_TRUE(rep.equal) << nest.name() << " dim " << dim << ": " << rep.first_mismatch;
    }
  }
}

// ---- recovery property: any single death, any step -------------------------

TEST(ProcRuntime, AnySingleKillAtAnyStepRecoversToSequentialOutput) {
  RuntimeFixture f(workloads::sor2d(6, 6));
  Mapping map = f.map(2);
  ArrayStore seq = run_sequential(f.nest);
  auto [lo, hi] = f.step_range();
  int triggered = 0;
  for (ProcId victim = 0; victim < map.processor_count; ++victim) {
    for (std::int64_t step = lo; step <= hi; ++step) {
      ProcRunOptions opts = fast_opts();
      fault::ProcFault kill;
      kill.kind = fault::ProcFaultKind::Kill;
      kill.proc = victim;
      kill.at_step = step;
      opts.proc_faults = {kill};
      ProcRunResult pr = run_procs(f.nest, *f.q, f.tf, f.partition, map, f.deps, opts);
      EquivalenceReport rep = compare_stores(seq, pr.written);
      ASSERT_TRUE(rep.equal) << "victim " << victim << " @ step " << step << ": "
                             << rep.first_mismatch;
      // A fault beyond the victim's last vertex never fires; when it does
      // fire, exactly one recovery with charged block reassignment.
      ASSERT_LE(pr.stats.recoveries, 1);
      if (pr.stats.recoveries == 1) {
        ++triggered;
        EXPECT_GT(pr.stats.migrated_blocks, 0u);
        EXPECT_GT(pr.stats.migration_words, 0);
      }
    }
  }
  EXPECT_GT(triggered, 0) << "the sweep never actually killed a worker";
}

TEST(ProcRuntime, EveryWorkloadSurvivesSeededKillBitIdentical) {
  // The acceptance sweep: under a seeded proc-kill plan, every workload in
  // src/workloads completes with output bit-identical to the sequential
  // interpreter.
  const LoopNest nests[] = {
      workloads::example_l1(6),         workloads::matrix_multiplication(4),
      workloads::matrix_vector(8),      workloads::matrix_multiplication_rewritten(4),
      workloads::matrix_vector_rewritten(8), workloads::convolution1d(10, 4),
      workloads::transitive_closure(4), workloads::sor2d(6, 6),
      workloads::wavefront3d(4),        workloads::skewed_wavefront3d(4),
      workloads::strided_recurrence(10, 2), workloads::convolution2d(5, 2),
      workloads::triangular_matvec(6),  workloads::dft_horner(6)};
  for (const LoopNest& nest : nests) {
    try {
      require_serializable_updates(nest);
    } catch (const std::exception&) {
      continue;  // conv2d's 2-D reduction lattice: no real backend runs it
    }
    RuntimeFixture f(nest);
    ArrayStore seq = run_sequential(f.nest);
    ProcRunOptions opts = fast_opts();
    fault::ProcFault rand_kill;
    rand_kill.kind = fault::ProcFaultKind::RandKill;
    rand_kill.seed = fault_seed();
    opts.proc_faults = {rand_kill};
    ProcRunResult pr = run_procs(f.nest, *f.q, f.tf, f.partition, f.map(2), f.deps, opts);
    EquivalenceReport rep = compare_stores(seq, pr.written);
    ASSERT_TRUE(rep.equal) << nest.name() << " seed " << rand_kill.seed << ": "
                           << rep.first_mismatch;
    ASSERT_LE(pr.stats.recoveries, 1) << nest.name();
  }
}

TEST(ProcRuntime, SeededRandomKillRecovers) {
  RuntimeFixture f(workloads::matrix_vector(10));
  Mapping map = f.map(2);
  ArrayStore seq = run_sequential(f.nest);
  ProcRunOptions opts = fast_opts();
  fault::ProcFault rand_kill;
  rand_kill.kind = fault::ProcFaultKind::RandKill;
  rand_kill.seed = fault_seed();
  opts.proc_faults = {rand_kill};
  ProcRunResult pr = run_procs(f.nest, *f.q, f.tf, f.partition, map, f.deps, opts);
  EquivalenceReport rep = compare_stores(seq, pr.written);
  EXPECT_TRUE(rep.equal) << "seed " << rand_kill.seed << ": " << rep.first_mismatch;
  EXPECT_EQ(pr.stats.recoveries, 1);
}

// ---- the other real failure modes -----------------------------------------

TEST(ProcRuntime, HungWorkerIsDetectedByHeartbeatAndRecovered) {
  RuntimeFixture f(workloads::matrix_vector(8));
  Mapping map = f.map(1);
  ArrayStore seq = run_sequential(f.nest);
  ProcRunOptions opts = fast_opts();
  fault::ProcFault hang;
  hang.kind = fault::ProcFaultKind::Hang;
  hang.proc = 0;
  opts.proc_faults = {hang};
  obs::MetricsRegistry metrics;
  opts.obs.metrics = &metrics;
  ProcRunResult pr = run_procs(f.nest, *f.q, f.tf, f.partition, map, f.deps, opts);
  EXPECT_TRUE(compare_stores(seq, pr.written).equal);
  EXPECT_EQ(pr.stats.recoveries, 1);
  EXPECT_GE(pr.stats.heartbeat_misses, 1);
  obs::MetricsSnapshot snap = metrics.snapshot();
  EXPECT_GE(snap.counters.at("procs.events.heartbeat_miss"), 1);
  EXPECT_GE(snap.counters.at("procs.worker_deaths"), 1);
  EXPECT_GE(snap.counters.at("procs.recoveries"), 1);
}

TEST(ProcRuntime, TruncatedFrameIsDetectedAndRecovered) {
  RuntimeFixture f(workloads::matrix_vector(8));
  Mapping map = f.map(1);
  ArrayStore seq = run_sequential(f.nest);
  ProcRunOptions opts = fast_opts();
  fault::ProcFault trunc;
  trunc.kind = fault::ProcFaultKind::TruncFrame;
  trunc.proc = 1;
  opts.proc_faults = {trunc};
  ProcRunResult pr = run_procs(f.nest, *f.q, f.tf, f.partition, map, f.deps, opts);
  EXPECT_TRUE(compare_stores(seq, pr.written).equal);
  EXPECT_EQ(pr.stats.recoveries, 1);
}

TEST(ProcRuntime, DelayedSendsCompleteWithoutRecovery) {
  RuntimeFixture f(workloads::example_l1(6));
  Mapping map = f.map(1);
  ArrayStore seq = run_sequential(f.nest);
  ProcRunOptions opts = fast_opts();
  fault::ProcFault delay;
  delay.kind = fault::ProcFaultKind::DelaySend;
  delay.proc = 0;
  delay.delay_ms = 20;  // well under the heartbeat timeout: slow, not dead
  opts.proc_faults = {delay};
  ProcRunResult pr = run_procs(f.nest, *f.q, f.tf, f.partition, map, f.deps, opts);
  EXPECT_TRUE(compare_stores(seq, pr.written).equal);
  EXPECT_EQ(pr.stats.recoveries, 0);
}

// ---- exhaustion, unsurvivability, degradation ------------------------------

TEST(ProcRuntime, RecoveryBudgetExhaustionIsWorkerDeathError) {
  RuntimeFixture f(workloads::example_l1(6));
  ProcRunOptions opts = fast_opts();
  opts.max_recoveries = 0;
  fault::ProcFault kill;
  kill.kind = fault::ProcFaultKind::Kill;
  kill.proc = 0;
  opts.proc_faults = {kill};
  try {
    run_procs(f.nest, *f.q, f.tf, f.partition, f.map(1), f.deps, opts);
    FAIL() << "exhausted recovery budget must abort";
  } catch (const WorkerDeathError& e) {
    EXPECT_EQ(e.exit_code(), 76);
    EXPECT_NE(std::string(e.what()).find("recovery budget"), std::string::npos);
  }
}

TEST(ProcRuntime, KillingEveryWorkerIsUnsurvivableFaultError) {
  RuntimeFixture f(workloads::example_l1(6));
  Mapping map = f.map(1);  // 2 workers
  ProcRunOptions opts = fast_opts();
  opts.max_recoveries = 4;
  for (ProcId p = 0; p < map.processor_count; ++p) {
    fault::ProcFault kill;
    kill.kind = fault::ProcFaultKind::Kill;
    kill.proc = p;
    opts.proc_faults.push_back(kill);
  }
  EXPECT_THROW(run_procs(f.nest, *f.q, f.tf, f.partition, map, f.deps, opts), FaultError);
}

TEST(ProcRuntime, ForcedDegradationFallsBackToThreads) {
  RuntimeFixture f(workloads::matrix_vector(8));
  ArrayStore seq = run_sequential(f.nest);
  ::setenv("HYPART_PROC_FORCE_DEGRADE", "1", 1);
  ProcRunResult pr = run_procs(f.nest, *f.q, f.tf, f.partition, f.map(2), f.deps);
  ::unsetenv("HYPART_PROC_FORCE_DEGRADE");
  EXPECT_TRUE(pr.stats.degraded);
  EXPECT_TRUE(compare_stores(seq, pr.written).equal);
}

TEST(ProcRuntime, DegradationCanBeDisallowed) {
  RuntimeFixture f(workloads::example_l1(4));
  ::setenv("HYPART_PROC_FORCE_DEGRADE", "1", 1);
  ProcRunOptions opts;
  opts.allow_degrade = false;
  try {
    run_procs(f.nest, *f.q, f.tf, f.partition, f.map(1), f.deps, opts);
    ::unsetenv("HYPART_PROC_FORCE_DEGRADE");
    FAIL() << "degradation disabled must throw";
  } catch (const Error& e) {
    ::unsetenv("HYPART_PROC_FORCE_DEGRADE");
    EXPECT_EQ(e.kind(), ErrorKind::Io);
  }
}

TEST(ProcRuntime, BadOptionsAreConfigErrors) {
  RuntimeFixture f(workloads::example_l1(4));
  ProcRunOptions out_of_range;
  fault::ProcFault kill;
  kill.kind = fault::ProcFaultKind::Kill;
  kill.proc = 99;
  out_of_range.proc_faults = {kill};
  EXPECT_THROW(run_procs(f.nest, *f.q, f.tf, f.partition, f.map(1), f.deps, out_of_range),
               Error);
  ProcRunOptions bad_interval;
  bad_interval.heartbeat_interval_ms = 0;
  EXPECT_THROW(run_procs(f.nest, *f.q, f.tf, f.partition, f.map(1), f.deps, bad_interval),
               Error);
}

// ---- fault grammar ---------------------------------------------------------

TEST(ProcFaultPlan, ParsesEveryProcTerm) {
  fault::FaultPlan p = fault::FaultPlan::parse(
      "proc:kill:1@2,proc:hang:0,proc:trunc:3@1,proc:delay:2:40@5,proc:rand:7");
  ASSERT_EQ(p.proc_faults.size(), 5u);
  EXPECT_EQ(p.proc_faults[0].kind, fault::ProcFaultKind::Kill);
  EXPECT_EQ(p.proc_faults[0].proc, 1u);
  EXPECT_EQ(p.proc_faults[0].at_step, 2);
  EXPECT_EQ(p.proc_faults[1].kind, fault::ProcFaultKind::Hang);
  EXPECT_EQ(p.proc_faults[1].at_step, fault::kFromStart);
  EXPECT_EQ(p.proc_faults[2].kind, fault::ProcFaultKind::TruncFrame);
  EXPECT_EQ(p.proc_faults[3].kind, fault::ProcFaultKind::DelaySend);
  EXPECT_EQ(p.proc_faults[3].delay_ms, 40);
  EXPECT_EQ(p.proc_faults[3].at_step, 5);
  EXPECT_EQ(p.proc_faults[4].kind, fault::ProcFaultKind::RandKill);
  EXPECT_EQ(p.proc_faults[4].seed, 7u);
}

TEST(ProcFaultPlan, RoundTripsThroughToString) {
  const std::string spec = "proc:kill:1@2,proc:delay:2:40@5,proc:rand:7";
  fault::FaultPlan p = fault::FaultPlan::parse(spec);
  EXPECT_EQ(p.to_string(), spec);
  fault::FaultPlan again = fault::FaultPlan::parse(p.to_string());
  EXPECT_EQ(again.proc_faults.size(), p.proc_faults.size());
}

TEST(ProcFaultPlan, ProcTermsDoNotDegradeTheSimulatedMachine) {
  fault::FaultPlan p = fault::FaultPlan::parse("proc:kill:1");
  EXPECT_FALSE(p.empty());
  EXPECT_TRUE(p.machine_empty());  // simulator / remapper see no machine fault
  fault::FaultPlan mixed = fault::FaultPlan::parse("node:3,proc:kill:1");
  EXPECT_FALSE(mixed.machine_empty());
}

TEST(ProcFaultPlan, MalformedProcTermsThrowTyped) {
  EXPECT_THROW(fault::FaultPlan::parse("proc:explode:1"), FaultError);
  EXPECT_THROW(fault::FaultPlan::parse("proc:kill"), FaultError);
  EXPECT_THROW(fault::FaultPlan::parse("proc:delay:1"), FaultError);
  EXPECT_THROW(fault::FaultPlan::parse("proc:rand:"), FaultError);
}

// ---- ledger integration ----------------------------------------------------

TEST(ProcRuntime, LedgerRowCarriesBackendAndSharesSumExactly) {
  PipelineConfig config;
  config.cube_dim = 2;
  obs::LedgerOptions lopts;
  lopts.repeats = 1;
  lopts.backend = ExecBackend::Procs;
  obs::LedgerRow row = obs::run_ledger(workloads::matrix_vector(8), config, lopts);
  EXPECT_EQ(row.backend, "procs");
  // Both breakdowns tile their totals exactly — the ledger invariant.
  EXPECT_DOUBLE_EQ(row.predicted.sum(), row.predicted.total);
  EXPECT_DOUBLE_EQ(row.measured.sum(), row.measured.total);
  EXPECT_GT(row.measured.total, 0.0);
}

}  // namespace
}  // namespace hypart
