#include "mapping/baseline_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "mapping/hypercube_map.hpp"

namespace hypart {
namespace {

TEST(BaselineMap, RoundRobin) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(4, 2);  // 8 blocks
  Mapping m = map_round_robin(tig, 3);
  EXPECT_EQ(m.block_to_proc, (std::vector<ProcId>{0, 1, 2, 0, 1, 2, 0, 1}));
  EXPECT_EQ(m.method, "round-robin");
}

TEST(BaselineMap, Contiguous) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(4, 2);
  Mapping m = map_contiguous(tig, 3);
  // 8 blocks over 3 procs: 3, 3, 2.
  EXPECT_EQ(m.block_to_proc, (std::vector<ProcId>{0, 0, 0, 1, 1, 1, 2, 2}));
}

TEST(BaselineMap, ContiguousExactDivision) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(4, 2);
  Mapping m = map_contiguous(tig, 4);
  EXPECT_EQ(m.block_to_proc, (std::vector<ProcId>{0, 0, 1, 1, 2, 2, 3, 3}));
}

TEST(BaselineMap, RandomDeterministicPerSeed) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(5, 5);
  Mapping a = map_random(tig, 8, 42);
  Mapping b = map_random(tig, 8, 42);
  Mapping c = map_random(tig, 8, 43);
  EXPECT_EQ(a.block_to_proc, b.block_to_proc);
  EXPECT_NE(a.block_to_proc, c.block_to_proc);
  for (ProcId p : a.block_to_proc) EXPECT_LT(p, 8u);
}

TEST(BaselineMap, ZeroProcsThrows) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(2, 2);
  EXPECT_THROW(map_round_robin(tig, 0), std::invalid_argument);
  EXPECT_THROW(map_contiguous(tig, 0), std::invalid_argument);
  EXPECT_THROW(map_random(tig, 0, 1), std::invalid_argument);
}

TEST(BaselineMap, GreedySwapNeverWorsens) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(4, 4);
  Hypercube cube(3);
  Mapping start = map_random(tig, 8, 7);
  MappingMetrics before = evaluate_mapping(tig, start, cube);
  Mapping refined = refine_greedy_swap(tig, start, cube);
  MappingMetrics after = evaluate_mapping(tig, refined, cube);
  EXPECT_LE(after.total_comm_cost, before.total_comm_cost);
  EXPECT_NE(refined.method.find("greedy-swap"), std::string::npos);
}

TEST(BaselineMap, GreedySwapPreservesLoadDistribution) {
  // Swaps exchange assignments, so the multiset of per-proc block counts is
  // invariant.
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(4, 4);
  Hypercube cube(3);
  Mapping start = map_contiguous(tig, 8);
  Mapping refined = refine_greedy_swap(tig, start, cube);
  std::vector<std::size_t> count_before(8, 0), count_after(8, 0);
  for (ProcId p : start.block_to_proc) ++count_before[p];
  for (ProcId p : refined.block_to_proc) ++count_after[p];
  std::sort(count_before.begin(), count_before.end());
  std::sort(count_after.begin(), count_after.end());
  EXPECT_EQ(count_before, count_after);
}

TEST(BaselineMap, GrayBeatsRandomOnMesh) {
  // The paper's claim, quantified: Algorithm 2 produces lower comm cost
  // than random placement on the mesh TIG.
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(8, 8);
  Hypercube cube(4);
  MappingMetrics gray = evaluate_mapping(tig, map_to_hypercube(tig, 4).mapping, cube);
  double random_total = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Mapping r = map_random(tig, 16, seed);
    random_total += static_cast<double>(evaluate_mapping(tig, r, cube).total_comm_cost);
  }
  EXPECT_LT(static_cast<double>(gray.total_comm_cost), random_total / 5.0);
}

TEST(BaselineMap, GreedySwapSizeMismatchThrows) {
  TaskInteractionGraph tig = TaskInteractionGraph::mesh(2, 2);
  Mapping bad;
  bad.processor_count = 2;
  bad.block_to_proc = {0};
  EXPECT_THROW(refine_greedy_swap(tig, bad, Hypercube(1)), std::invalid_argument);
}

}  // namespace
}  // namespace hypart
