#include "codegen/spmd.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "mapping/hypercube_map.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

struct CodegenFixture {
  std::unique_ptr<ComputationStructure> q;
  std::unique_ptr<ProjectedStructure> ps;
  Grouping grouping;
  Partition partition;
  TaskInteractionGraph tig;
  TimeFunction tf;
  DependenceInfo deps;
  LoopNest nest;
  Mapping mapping;

  CodegenFixture(LoopNest n, IntVec pi, unsigned dim) : nest(std::move(n)) {
    deps = analyze_dependences(nest);
    IndexSet is(nest);
    q = std::make_unique<ComputationStructure>(is.points(), deps.distance_vectors());
    tf = TimeFunction{std::move(pi)};
    ps = std::make_unique<ProjectedStructure>(*q, tf);
    grouping = Grouping::compute(*ps);
    partition = Partition::build(*q, grouping);
    tig = TaskInteractionGraph::from_partition(*q, partition, grouping);
    mapping = map_to_hypercube(tig, dim).mapping;
  }
};

TEST(SpmdCodegen, L1ProgramStructure) {
  CodegenFixture f(workloads::example_l1(), {1, 1}, 1);
  std::string prog =
      generate_spmd_program(f.nest, *f.q, f.tf, f.partition, f.mapping, f.deps);

  EXPECT_NE(prog.find("void node_program(int my_id)"), std::string::npos);
  EXPECT_NE(prog.find("for (long t = 0; t <= 6; ++t)"), std::string::npos);
  EXPECT_NE(prog.find("recv_all_pending(t)"), std::string::npos);
  // Both statements of L1 appear with their semantics.
  EXPECT_NE(prog.find("A[i+1, j+1] = (A[i+1,j] + B[i,j])"), std::string::npos);
  EXPECT_NE(prog.find("/*S1*/"), std::string::npos);
  EXPECT_NE(prog.find("/*S2*/"), std::string::npos);
  // One send per dependence.
  EXPECT_NE(prog.find("send(owner(i, j+1)"), std::string::npos);
  EXPECT_NE(prog.find("send(owner(i+1, j+1)"), std::string::npos);
  EXPECT_NE(prog.find("send(owner(i+1, j)"), std::string::npos);
}

TEST(SpmdCodegen, OwnerTableMatchesMapping) {
  CodegenFixture f(workloads::matrix_vector(8), {1, 1}, 2);
  std::string prog =
      generate_spmd_program(f.nest, *f.q, f.tf, f.partition, f.mapping, f.deps);
  std::string expected = "static const int BLOCK_OWNER[" +
                         std::to_string(f.partition.block_count()) + "] = {";
  for (std::size_t b = 0; b < f.partition.block_count(); ++b)
    expected += (b ? ", " : "") + std::to_string(f.mapping.block_to_proc[b]);
  expected += "};";
  EXPECT_NE(prog.find(expected), std::string::npos) << prog;
}

TEST(SpmdCodegen, OptionsControlOutput) {
  CodegenFixture f(workloads::example_l1(), {1, 1}, 1);
  SpmdOptions bare;
  bare.include_comments = false;
  bare.include_owner_table = false;
  std::string prog =
      generate_spmd_program(f.nest, *f.q, f.tf, f.partition, f.mapping, f.deps, bare);
  EXPECT_EQ(prog.find("//"), std::string::npos);
  EXPECT_EQ(prog.find("BLOCK_OWNER"), std::string::npos);
  EXPECT_NE(prog.find("node_program"), std::string::npos);
}

TEST(SpmdCodegen, TraceListsOnlyOwnIterations) {
  CodegenFixture f(workloads::example_l1(), {1, 1}, 1);
  for (ProcId p : {ProcId{0}, ProcId{1}}) {
    std::string trace =
        generate_processor_trace(f.nest, *f.q, f.tf, f.partition, f.mapping, f.deps, p, 999);
    // Every "exec (i, j)" line must belong to processor p.
    std::size_t pos = 0;
    std::size_t count = 0;
    while ((pos = trace.find("exec (", pos)) != std::string::npos) {
      std::size_t close = trace.find(')', pos);
      std::string tuple = trace.substr(pos + 5, close - pos - 4);
      // parse "(a, b)"
      std::int64_t a = 0, b = 0;
      ASSERT_EQ(std::sscanf(tuple.c_str(), "(%ld, %ld)", &a, &b), 2) << tuple;
      std::size_t vid = f.q->id_of({a, b});
      EXPECT_EQ(f.mapping.block_to_proc[f.partition.block_of(vid)], p);
      ++count;
      pos = close;
    }
    EXPECT_GT(count, 0u);
  }
}

TEST(SpmdCodegen, TraceTruncates) {
  CodegenFixture f(workloads::matrix_vector(16), {1, 1}, 0);
  std::string trace =
      generate_processor_trace(f.nest, *f.q, f.tf, f.partition, f.mapping, f.deps, 0, 5);
  EXPECT_NE(trace.find("(truncated)"), std::string::npos);
}

TEST(SpmdCodegen, TraceSendsMatchCrossingArcs) {
  CodegenFixture f(workloads::matrix_vector(6), {1, 1}, 1);
  std::size_t total_sends = 0;
  for (ProcId p = 0; p < 2; ++p) {
    std::string trace =
        generate_processor_trace(f.nest, *f.q, f.tf, f.partition, f.mapping, f.deps, p, 100000);
    std::size_t pos = 0;
    while ((pos = trace.find("send ", pos)) != std::string::npos) {
      ++total_sends;
      ++pos;
    }
  }
  std::size_t crossing = 0;
  f.q->for_each_arc([&](const IntVec& a, const IntVec& b, std::size_t) {
    ProcId pa = f.mapping.block_to_proc[f.partition.block_of(f.q->id_of(a))];
    ProcId pb = f.mapping.block_to_proc[f.partition.block_of(f.q->id_of(b))];
    if (pa != pb) ++crossing;
  });
  EXPECT_EQ(total_sends, crossing);
}

}  // namespace
}  // namespace hypart
