// IterSpace unit tests plus randomized symbolic == dense properties: on
// random rectangular spaces (d <= 4) AND random affine-bounded spaces
// (d <= 3, slab-decomposed) every closed-form quantity — arc counts,
// schedule spans, projections, groupings, partition stats, TIGs, checker
// verdicts, and all three simulator accountings — must equal the value
// computed from the materialized point set exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <tuple>

#include "graph/comp_structure.hpp"
#include "loop/iter_space.hpp"
#include "mapping/tig.hpp"
#include "partition/checkers.hpp"
#include "partition/grouping.hpp"
#include "partition/symbolic.hpp"
#include "schedule/hyperplane.hpp"
#include "sim/exec_sim.hpp"
#include "topology/topology.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

// ---- unit tests ------------------------------------------------------------

TEST(IterSpace, FloorCeilDiv) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(floor_div(6, 3), 2);
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(7, -2), -3);
  EXPECT_EQ(ceil_div(-7, -2), 4);
  EXPECT_EQ(ceil_div(6, 3), 2);
}

TEST(IterSpace, SizeExtentContains) {
  IterSpace s({{1, 4}, {-2, 0}}, {{1, 0}});
  EXPECT_EQ(s.dimension(), 2u);
  EXPECT_EQ(s.extent(0), 4);
  EXPECT_EQ(s.extent(1), 3);
  EXPECT_EQ(s.size(), 12u);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(s.contains({1, -2}));
  EXPECT_TRUE(s.contains({4, 0}));
  EXPECT_FALSE(s.contains({5, 0}));
  EXPECT_FALSE(s.contains({1, 1}));
  IterSpace degenerate({{3, 2}}, {{1}});
  EXPECT_TRUE(degenerate.empty());
  EXPECT_EQ(degenerate.size(), 0u);
}

TEST(IterSpace, ArcCountsMatchPaperL1) {
  // L1 on [1,4]^2 with D = {(0,1), (1,1), (1,0)}: 12 + 9 + 12 = 33 arcs.
  IterSpace s({{1, 4}, {1, 4}}, {{0, 1}, {1, 1}, {1, 0}});
  EXPECT_EQ(s.arc_count({0, 1}), 12u);
  EXPECT_EQ(s.arc_count({1, 1}), 9u);
  EXPECT_EQ(s.arc_count({1, 0}), 12u);
  EXPECT_EQ(s.total_arc_count(), 33u);
  // A dependence longer than the extent kills every arc.
  EXPECT_EQ(s.arc_count({4, 0}), 0u);
}

TEST(IterSpace, MinMaxStepAtCorners) {
  IterSpace s({{1, 4}, {1, 4}}, {{1, 0}});
  EXPECT_EQ(s.min_step({1, 1}), 2);
  EXPECT_EQ(s.max_step({1, 1}), 8);
  EXPECT_EQ(s.min_step({1, -2}), 1 - 8);
  EXPECT_EQ(s.max_step({1, -2}), 4 - 2);
  IterSpace empty({{1, 0}}, {{1}});
  EXPECT_THROW(empty.min_step({1}), std::logic_error);
}

TEST(IterSpace, LineRange) {
  IterSpace s({{1, 4}, {1, 4}}, {{1, 0}});
  // Anti-diagonal through (1,4): the whole diagonal, k = 0..3.
  auto r = s.line_range({1, 4}, {1, -1});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, std::make_pair(std::int64_t{0}, std::int64_t{3}));
  // The same line addressed from outside the box: shifted k-interval.
  r = s.line_range({0, 5}, {1, -1});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, std::make_pair(std::int64_t{1}, std::int64_t{4}));
  // A line that misses the box entirely.
  EXPECT_FALSE(s.line_range({10, 0}, {0, 1}).has_value());
  // Zero direction component must pin that coordinate inside the box.
  r = s.line_range({2, 3}, {0, 1});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, std::make_pair(std::int64_t{-2}, std::int64_t{1}));
  EXPECT_FALSE(s.line_range({0, 3}, {0, 1}).has_value());
}

TEST(IterSpace, ForEachLineCoversBoxOnce) {
  IterSpace s({{1, 4}, {1, 4}}, {{1, 0}});
  const IntVec u{1, -1};
  std::vector<std::int64_t> pops;
  std::int64_t covered = 0;
  s.for_each_line(u, [&](const IntVec& rep, std::int64_t pop) {
    // rep is the entry point: on the line, inside, with rep - u outside.
    EXPECT_TRUE(s.contains(rep));
    EXPECT_FALSE(s.contains({rep[0] - u[0], rep[1] - u[1]}));
    pops.push_back(pop);
    covered += pop;
  });
  // 7 anti-diagonals with populations 1..4..1 covering all 16 points.
  EXPECT_EQ(pops.size(), 7u);
  std::sort(pops.begin(), pops.end());
  EXPECT_EQ(pops, (std::vector<std::int64_t>{1, 1, 2, 2, 3, 3, 4}));
  EXPECT_EQ(covered, 16);
}

TEST(IterSpace, TriangularMatvecDomain) {
  // Strictly lower-triangular domain j in [1, i-1], i in [1, 5]: ten points
  // in four slabs (the i = 1 slab is empty).
  std::vector<AffineDim> dims(2);
  dims[0] = {AffineExpr(1), AffineExpr(5)};
  dims[1] = {AffineExpr(1), AffineExpr::index(0, 1, -1)};
  IterSpace s = IterSpace::from_affine(dims, {{1, 0}, {0, 1}});
  EXPECT_FALSE(s.is_rectangular());
  EXPECT_EQ(s.sliced_dims(), (std::vector<std::size_t>{0}));
  EXPECT_EQ(s.slab_count(), 4u);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_TRUE(s.contains({5, 4}));
  EXPECT_TRUE(s.contains({2, 1}));
  EXPECT_FALSE(s.contains({3, 3}));   // on the diagonal, outside
  EXPECT_FALSE(s.contains({1, 1}));   // row with an empty j-range
  EXPECT_THROW(s.bounds(), std::logic_error);
  EXPECT_THROW(s.extent(0), std::logic_error);
  // Hand counts: (0,1) arcs need j+1 <= i-1 (rows 3..5: 1+2+3); (1,0) arcs
  // need i+1 <= 5 and carry j <= i-1 into a longer row (rows 2..4: 1+2+3).
  EXPECT_EQ(s.arc_count({0, 1}), 6u);
  EXPECT_EQ(s.arc_count({1, 0}), 6u);
  EXPECT_EQ(s.total_arc_count(), 12u);
  // Π = (1,1) extremes: (2,1) -> 3 and (5,4) -> 9, at slab corners.
  EXPECT_EQ(s.min_step({1, 1}), 3);
  EXPECT_EQ(s.max_step({1, 1}), 9);
  // The diagonal line through (2,1): (2,1),(3,2),(4,3),(5,4).
  auto r = s.line_range({2, 1}, {1, 1});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, std::make_pair(std::int64_t{0}, std::int64_t{3}));
  // Line enumeration covers the triangle exactly once.
  std::int64_t covered = 0;
  std::size_t lines = 0;
  s.for_each_line({1, 1}, [&](const IntVec& rep, std::int64_t pop) {
    EXPECT_TRUE(s.contains(rep));
    EXPECT_FALSE(s.contains({rep[0] - 1, rep[1] - 1}));
    covered += pop;
    ++lines;
  });
  EXPECT_EQ(covered, 10);
  EXPECT_EQ(lines, 4u);  // diagonals entering at (2,1),(3,1),(4,1),(5,1)
}

TEST(IterSpace, FromNestAcceptsAffineBounds) {
  IterSpace tri = IterSpace::from_nest(workloads::triangular_matvec(6));
  EXPECT_FALSE(tri.is_rectangular());
  EXPECT_EQ(tri.size(), 15u);  // 0+1+2+3+4+5
  EXPECT_EQ(tri.dependences().size(), 2u);

  // The skewed prism has the same 27 points as the 3^3 cube it came from,
  // sliced along i.
  IterSpace w = IterSpace::from_nest(workloads::skewed_wavefront3d(3));
  EXPECT_FALSE(w.is_rectangular());
  EXPECT_EQ(w.sliced_dims(), (std::vector<std::size_t>{0}));
  EXPECT_EQ(w.slab_count(), 3u);
  EXPECT_EQ(w.size(), 27u);
  std::vector<IntVec> deps = w.dependences();
  std::sort(deps.begin(), deps.end());
  EXPECT_EQ(deps, (std::vector<IntVec>{{0, 0, 1}, {0, 1, 0}, {1, 1, 0}}));
}

// ---- randomized properties: symbolic == dense ------------------------------

std::vector<IntVec> enumerate_box(const std::vector<DimBounds>& bounds) {
  std::vector<IntVec> pts;
  IntVec p(bounds.size());
  std::function<void(std::size_t)> rec = [&](std::size_t i) {
    if (i == bounds.size()) {
      pts.push_back(p);
      return;
    }
    for (std::int64_t x = bounds[i].first; x <= bounds[i].second; ++x) {
      p[i] = x;
      rec(i + 1);
    }
  };
  rec(0);
  return pts;
}

std::map<std::tuple<std::size_t, std::size_t>, std::int64_t> digraph_edges(const Digraph& g) {
  std::map<std::tuple<std::size_t, std::size_t>, std::int64_t> out;
  for (std::size_t v = 0; v < g.vertex_count(); ++v)
    for (const Digraph::Edge& e : g.out_edges(v)) out[{v, e.to}] += e.weight;
  return out;
}

struct RandomCase {
  std::vector<DimBounds> bounds;
  std::vector<IntVec> deps;
};

RandomCase random_case(std::mt19937& rng) {
  std::uniform_int_distribution<std::size_t> dim_dist(1, 4);
  std::uniform_int_distribution<std::int64_t> lo_dist(-3, 3), extent_dist(1, 5),
      coef_dist(-2, 2), ndep_dist(1, 3);
  RandomCase c;
  const std::size_t dim = dim_dist(rng);
  for (std::size_t i = 0; i < dim; ++i) {
    std::int64_t lo = lo_dist(rng);
    c.bounds.push_back({lo, lo + extent_dist(rng) - 1});
  }
  // In 1-d only two distinct lex-positive vectors exist in the coefficient
  // range; asking for more would spin forever.
  const std::int64_t ndeps = std::min<std::int64_t>(ndep_dist(rng), dim == 1 ? 2 : 3);
  while (c.deps.size() < static_cast<std::size_t>(ndeps)) {
    IntVec d(dim);
    for (std::size_t i = 0; i < dim; ++i) d[i] = coef_dist(rng);
    // Lexicographically positive (a legal uniform dependence) and new.
    auto nz = std::find_if(d.begin(), d.end(), [](std::int64_t x) { return x != 0; });
    if (nz == d.end()) continue;
    if (*nz < 0)
      for (std::int64_t& x : d) x = -x;
    if (std::find(c.deps.begin(), c.deps.end(), d) == c.deps.end()) c.deps.push_back(d);
  }
  return c;
}

/// Every stage on both backends, for any space/point-set pair (rectangular
/// or affine).  Returns false when no valid Π exists (nothing to compare).
bool check_all_stages(const IterSpace& space, const std::vector<IntVec>& pts,
                      const std::vector<IntVec>& cdeps, bool alt_hops) {
  const MachineParams machine{1.0, 50.0, 5.0};
  ComputationStructure q(pts, cdeps);

  EXPECT_EQ(space.size(), q.vertices().size());
  EXPECT_EQ(space.total_arc_count(), q.dependence_arc_count());
  for (const IntVec& d : cdeps) {
    std::size_t dense_arcs = 0;
    for (const IntVec& v : q.vertices()) {
      IntVec t = v;
      for (std::size_t i = 0; i < t.size(); ++i) t[i] += d[i];
      if (q.contains(t)) ++dense_arcs;
    }
    EXPECT_EQ(space.arc_count(d), dense_arcs) << to_string(d);
  }

  // Identical Π from both search paths (same candidate order, same spans).
    std::optional<TimeFunction> tf_sym = search_time_function(space);
    std::optional<TimeFunction> tf_dense = search_time_function(q);
    EXPECT_EQ(tf_sym.has_value(), tf_dense.has_value());
    if (!tf_sym || !tf_dense) return false;  // no valid Π in the search box
    EXPECT_EQ(tf_sym->pi, tf_dense->pi);
    const TimeFunction tf = *tf_sym;
    ScheduleProfile prof = profile_schedule(tf, q.vertices());
    EXPECT_EQ(space.min_step(tf.pi), prof.first_step);
    EXPECT_EQ(space.max_step(tf.pi), prof.last_step);

    // Projection: bit-identical points, populations, and representatives.
    ProjectedStructure pd(q, tf);
    ProjectedStructure psym(space, tf);
    EXPECT_EQ(pd.points(), psym.points());
    if (pd.points() != psym.points()) return true;  // failure already recorded
    EXPECT_EQ(pd.line_direction(), psym.line_direction());
    EXPECT_EQ(pd.step_stride(), psym.step_stride());
    for (std::size_t i = 0; i < pd.point_count(); ++i) {
      EXPECT_EQ(pd.line_population(i), psym.line_population(i)) << i;
      EXPECT_EQ(pd.line_representative(i), psym.line_representative(i)) << i;
    }

    // Grouping is a deterministic function of the projected structure.
    Grouping gd = Grouping::compute(pd);
    Grouping gs = Grouping::compute(psym);
    EXPECT_EQ(gd.group_count(), gs.group_count());
    if (gd.group_count() != gs.group_count()) return true;
    for (std::size_t g = 0; g < gd.group_count(); ++g) {
      EXPECT_EQ(gd.groups()[g].members(), gs.groups()[g].members());
      EXPECT_EQ(gd.groups()[g].lattice, gs.groups()[g].lattice);
    }

    // Partition stats, block sizes, and checker verdicts.
    Partition part = Partition::build(q, gd);
    PartitionStats sd = compute_partition_stats(q, part);
    PartitionStats ss = compute_partition_stats(space, gs);
    EXPECT_EQ(sd.total_arcs, ss.total_arcs);
    EXPECT_EQ(sd.interblock_arcs, ss.interblock_arcs);
    EXPECT_EQ(sd.intrablock_arcs, ss.intrablock_arcs);
    EXPECT_EQ(digraph_edges(sd.block_comm), digraph_edges(ss.block_comm));
    std::vector<std::int64_t> bsizes = symbolic_block_sizes(gs);
    EXPECT_EQ(bsizes.size(), part.block_count());
    if (bsizes.size() != part.block_count()) return true;
    for (std::size_t b = 0; b < bsizes.size(); ++b)
      EXPECT_EQ(static_cast<std::size_t>(bsizes[b]), part.blocks()[b].iterations.size());
    EXPECT_EQ(check_exact_cover(space, gs), check_exact_cover(q, part));
    EXPECT_EQ(check_theorem1(space, gs), check_theorem1(q, tf, part));

    // TIG: same vertices, weights, and edge map.
    TaskInteractionGraph td = TaskInteractionGraph::from_partition(q, part, gd);
    TaskInteractionGraph ts = TaskInteractionGraph::from_symbolic(space, gs);
    EXPECT_EQ(td.vertex_count(), ts.vertex_count());
    if (td.vertex_count() != ts.vertex_count()) return true;
    for (std::size_t v = 0; v < td.vertex_count(); ++v) {
      EXPECT_EQ(td.compute_weight(v), ts.compute_weight(v));
      EXPECT_EQ(td.coordinates(v), ts.coordinates(v));
    }
    EXPECT_EQ(td.edges(), ts.edges());

    // All three simulator accountings, alternating hop charging.
    Hypercube cube(2);
    Mapping m;
    m.processor_count = cube.size();
    m.method = "round-robin";
    for (std::size_t b = 0; b < part.block_count(); ++b)
      m.block_to_proc.push_back(static_cast<ProcId>(b % m.processor_count));
    for (CommAccounting acc : {CommAccounting::PaperMaxChannel, CommAccounting::PerStepBarrier,
                               CommAccounting::LinkContention}) {
      SimOptions opts;
      opts.accounting = acc;
      opts.charge_hops = alt_hops;
      SimResult rd = simulate_execution(q, tf, part, m, cube, machine, opts);
      SimResult rs = simulate_execution(space, gs, m, cube, machine, opts);
      SCOPED_TRACE("accounting " + std::to_string(static_cast<int>(acc)));
      EXPECT_EQ(rd.total, rs.total);
      EXPECT_EQ(rd.time, rs.time);
      EXPECT_EQ(rd.compute_bottleneck, rs.compute_bottleneck);
      EXPECT_EQ(rd.comm_bottleneck, rs.comm_bottleneck);
      EXPECT_EQ(rd.steps, rs.steps);
      EXPECT_EQ(rd.messages, rs.messages);
      EXPECT_EQ(rd.words, rs.words);
      EXPECT_EQ(rd.max_link_words, rs.max_link_words);
      EXPECT_EQ(rd.per_proc_iterations, rs.per_proc_iterations);
    }
  return true;
}

TEST(IterSpaceProperty, SymbolicEqualsDenseEverywhere) {
  std::mt19937 rng(12345);
  int checked = 0;
  for (int attempt = 0; attempt < 60 && checked < 30; ++attempt) {
    RandomCase c = random_case(rng);
    SCOPED_TRACE("attempt " + std::to_string(attempt));
    IterSpace space(c.bounds, c.deps);
    if (check_all_stages(space, enumerate_box(c.bounds), c.deps, attempt % 2 == 1)) ++checked;
  }
  // The search box finds a Π for the overwhelming majority of lex-positive
  // dependence sets; make sure the property actually exercised many cases.
  EXPECT_GE(checked, 20);
}

// ---- affine (slab-decomposed) domains --------------------------------------

std::vector<IntVec> enumerate_affine(const std::vector<AffineDim>& dims) {
  std::vector<IntVec> pts;
  IntVec p(dims.size(), 0);
  std::function<void(std::size_t)> rec = [&](std::size_t j) {
    if (j == dims.size()) {
      pts.push_back(p);
      return;
    }
    const std::int64_t lo = dims[j].lower.evaluate_lower(p);
    const std::int64_t hi = dims[j].upper.evaluate_upper(p);
    for (std::int64_t x = lo; x <= hi; ++x) {
      p[j] = x;
      rec(j + 1);
    }
    p[j] = 0;
  };
  rec(0);
  return pts;
}

struct AffineCase {
  std::vector<AffineDim> dims;
  std::vector<IntVec> deps;
};

/// Random affine-bounded domain, d <= 3: dimension 0 is constant; each later
/// dimension's lower/upper bound references one random earlier dimension
/// with slope in {-1, 0, 1} (independent per bound, so slab extents vary and
/// some slabs come out empty).
AffineCase random_affine_case(std::mt19937& rng) {
  std::uniform_int_distribution<std::size_t> dim_dist(2, 3);
  std::uniform_int_distribution<std::int64_t> lo_dist(-3, 3), extent_dist(1, 5),
      coef_dist(-2, 2), slope_dist(-1, 1), ndep_dist(1, 3);
  AffineCase c;
  const std::size_t dim = dim_dist(rng);
  for (std::size_t j = 0; j < dim; ++j) {
    AffineExpr lower(lo_dist(rng));
    AffineExpr upper(lower.constant + extent_dist(rng) - 1);
    if (j > 0) {
      std::uniform_int_distribution<std::size_t> which(0, j - 1);
      lower.coeffs.assign(j, 0);
      lower.coeffs[which(rng)] = slope_dist(rng);
      upper.coeffs.assign(j, 0);
      upper.coeffs[which(rng)] = slope_dist(rng);
    }
    c.dims.push_back({std::move(lower), std::move(upper)});
  }
  const std::size_t ndeps = static_cast<std::size_t>(ndep_dist(rng));
  while (c.deps.size() < ndeps) {
    IntVec d(dim);
    for (std::size_t i = 0; i < dim; ++i) d[i] = coef_dist(rng);
    auto nz = std::find_if(d.begin(), d.end(), [](std::int64_t x) { return x != 0; });
    if (nz == d.end()) continue;
    if (*nz < 0)
      for (std::int64_t& x : d) x = -x;
    if (std::find(c.deps.begin(), c.deps.end(), d) == c.deps.end()) c.deps.push_back(d);
  }
  return c;
}

/// Random disjunctive-bounded domain, d <= 3: like random_affine_case, but
/// at least one non-outer bound carries TWO affine terms (a genuine
/// max(...)/min(...) bound), so the slab decomposition must split on the
/// comparison hyperplane where the active term changes.
AffineCase random_disjunctive_case(std::mt19937& rng) {
  std::uniform_int_distribution<std::size_t> dim_dist(2, 3);
  std::uniform_int_distribution<std::int64_t> lo_dist(-3, 3), extent_dist(2, 6),
      coef_dist(-2, 2), slope_dist(-1, 1), ndep_dist(1, 3);
  std::uniform_int_distribution<int> two_dist(0, 1);
  AffineCase c;
  const std::size_t dim = dim_dist(rng);
  for (std::size_t j = 0; j < dim; ++j) {
    const std::int64_t lo = lo_dist(rng);
    const std::int64_t hi = lo + extent_dist(rng) - 1;
    if (j == 0) {
      c.dims.push_back({AffineExpr(lo), AffineExpr(hi)});
      continue;
    }
    std::uniform_int_distribution<std::size_t> which(0, j - 1);
    auto term = [&](std::int64_t cst) {
      AffineExpr e(cst);
      e.coeffs.assign(j, 0);
      e.coeffs[which(rng)] = slope_dist(rng);
      return e;
    };
    // The last dimension always gets a two-term bound on at least one side;
    // earlier dimensions flip a coin per side.
    const bool force = j == dim - 1;
    BoundExpr lower = (force || two_dist(rng) == 1) ? bmax(term(lo), term(lo))
                                                    : BoundExpr(term(lo));
    BoundExpr upper = (force || two_dist(rng) == 1) ? bmin(term(hi), term(hi))
                                                    : BoundExpr(term(hi));
    c.dims.push_back({std::move(lower), std::move(upper)});
  }
  const std::size_t ndeps = static_cast<std::size_t>(ndep_dist(rng));
  while (c.deps.size() < ndeps) {
    IntVec d(dim);
    for (std::size_t i = 0; i < dim; ++i) d[i] = coef_dist(rng);
    auto nz = std::find_if(d.begin(), d.end(), [](std::int64_t x) { return x != 0; });
    if (nz == d.end()) continue;
    if (*nz < 0)
      for (std::int64_t& x : d) x = -x;
    if (std::find(c.deps.begin(), c.deps.end(), d) == c.deps.end()) c.deps.push_back(d);
  }
  return c;
}

TEST(IterSpaceProperty, SymbolicEqualsDenseOnAffineDomains) {
  std::mt19937 rng(98765);
  int checked = 0, sliced = 0;
  for (int attempt = 0; attempt < 120 && checked < 30; ++attempt) {
    AffineCase c = random_affine_case(rng);
    std::vector<IntVec> pts = enumerate_affine(c.dims);
    if (pts.empty()) continue;  // ComputationStructure rejects empty spaces
    SCOPED_TRACE("attempt " + std::to_string(attempt));
    IterSpace space = IterSpace::from_affine(c.dims, c.deps);
    ASSERT_EQ(space.size(), pts.size());
    if (!space.is_rectangular()) ++sliced;
    if (check_all_stages(space, pts, c.deps, attempt % 2 == 1)) ++checked;
  }
  EXPECT_GE(checked, 20);
  // The generator must actually produce slab-decomposed (non-box) domains.
  EXPECT_GE(sliced, 10);
}

TEST(IterSpaceProperty, SymbolicEqualsDenseOnDisjunctiveDomains) {
  std::mt19937 rng(424242);
  int checked = 0, multi_term = 0;
  for (int attempt = 0; attempt < 160 && checked < 30; ++attempt) {
    AffineCase c = random_disjunctive_case(rng);
    std::vector<IntVec> pts = enumerate_affine(c.dims);
    if (pts.empty()) continue;  // ComputationStructure rejects empty spaces
    SCOPED_TRACE("attempt " + std::to_string(attempt));
    IterSpace space = IterSpace::from_affine(c.dims, c.deps);
    ASSERT_EQ(space.size(), pts.size());
    bool has_multi = false;
    for (const AffineDim& d : c.dims)
      has_multi = has_multi || !d.lower.single() || !d.upper.single();
    if (has_multi) ++multi_term;
    if (check_all_stages(space, pts, c.deps, attempt % 2 == 1)) ++checked;
  }
  EXPECT_GE(checked, 20);
  // Every case carries at least one genuine max/min bound by construction.
  EXPECT_GE(multi_term, 20);
}

TEST(IterSpace, DisjunctiveWorkloadsSizeAndSlabs) {
  // Pyramid: sum_{i=0..12} (min(i, 12-i) + 1) = 2*(1+..+6) + 7 = 49.
  IterSpace pyr = IterSpace::from_nest(workloads::pyramid_stencil(12));
  EXPECT_FALSE(pyr.is_rectangular());
  EXPECT_EQ(pyr.size(), 49u);
  // Banded FW: rows clip at both edges of the 11x11 square, band 3.
  IterSpace fw = IterSpace::from_nest(workloads::floyd_warshall_band(10, 3));
  std::uint64_t expect = 0;
  for (std::int64_t i = 0; i <= 10; ++i)
    expect += static_cast<std::uint64_t>(std::min<std::int64_t>(10, i + 3) -
                                         std::max<std::int64_t>(0, i - 3) + 1);
  EXPECT_EQ(fw.size(), expect);
}

}  // namespace
}  // namespace hypart
