// Property suite for the closed-form group lattice: every quantity the
// lattice derives symbolically (group count, population multiset, block
// statistics, per-offset TIG arc weights, Algorithm 2 cube assignment,
// theorem/lemma verdicts) must equal the dense Algorithm 1/2 pipeline on
// the same nest — over fixed paper workloads AND randomized rectangular,
// triangular, strided, 3-D, and disjunctive-bound nests.
#include "partition/group_lattice.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <numeric>
#include <random>
#include <stdexcept>

#include "core/pipeline.hpp"
#include "fault/fault_plan.hpp"
#include "graph/comp_structure.hpp"
#include "loop/iter_space.hpp"
#include "mapping/hypercube_map.hpp"
#include "mapping/tig.hpp"
#include "partition/blocks.hpp"
#include "partition/projection.hpp"
#include "schedule/hyperplane.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

using GroupKey = GroupLattice::GroupKey;
using GroupOffset = LatticeSweepResult::GroupOffset;

/// Run both pipelines on `nest` and compare every lattice-derived quantity
/// against its dense counterpart.  `pi` empty means "search".
void expect_lattice_matches_dense(const LoopNest& nest, const IntVec& pi_or_empty,
                                  unsigned cube_dim, bool weighted) {
  SCOPED_TRACE(nest.name() + " dim=" + std::to_string(cube_dim) +
               (weighted ? " weighted" : ""));

  // Dense side: materialized Algorithm 1 + 2.
  ComputationStructure q = ComputationStructure::from_loop(nest);
  TimeFunction tf{pi_or_empty};
  if (pi_or_empty.empty()) {
    std::optional<TimeFunction> searched = search_time_function(q);
    ASSERT_TRUE(searched.has_value());
    tf = *searched;
  }
  ProjectedStructure ps(q, tf);
  Grouping grouping = Grouping::compute(ps);
  Partition partition = Partition::build(q, grouping);
  PartitionStats stats = compute_partition_stats(q, partition);
  TaskInteractionGraph tig = TaskInteractionGraph::from_partition(q, partition, grouping);
  HypercubeMapOptions mopts;
  mopts.weighted = weighted;
  HypercubeMappingResult dense_map = map_to_hypercube(tig, cube_dim, mopts);

  // Symbolic side: the closed-form lattice.
  DependenceInfo dep = analyze_dependences(nest);
  IterSpace space(nest, dep.distance_vectors());
  std::string why;
  std::optional<GroupLattice> gl = GroupLattice::build(space, tf, {}, &why);
  ASSERT_TRUE(gl.has_value()) << "lattice gate unexpectedly refused: " << why;

  // Frame quantities.
  EXPECT_EQ(gl->line_count(), ps.point_count());
  EXPECT_EQ(gl->group_count(), grouping.group_count());
  EXPECT_EQ(gl->group_size_r(), grouping.group_size_r());
  EXPECT_EQ(gl->beta(), grouping.beta());
  if (gl->layout() == LatticeLayout::Chain)
    EXPECT_EQ(gl->sum_line_populations(gl->c_min(), gl->c_max()), space.size());

  // Dense group id of each lattice key.  Non-degenerate groups carry their
  // lattice coordinates plus (chain layout) the region-growing component;
  // degenerate group ids follow the lex point order, which is exactly the
  // lattice's sorted index.
  const std::uint64_t ngroups = gl->group_count();
  auto dense_key = [&](std::size_t i) -> GroupKey {
    const IntVec& lat = grouping.groups()[i].lattice;
    if (gl->layout() == LatticeLayout::Plane) return {lat.at(0), lat.at(1), 0};
    return {lat.at(0), 0, static_cast<std::int64_t>(grouping.groups()[i].component)};
  };
  std::vector<std::size_t> gid(ngroups);
  if (gl->degenerate()) {
    std::iota(gid.begin(), gid.end(), std::size_t{0});
  } else {
    std::map<GroupKey, std::size_t> by_key;
    for (std::size_t i = 0; i < grouping.group_count(); ++i)
      ASSERT_TRUE(by_key.emplace(dense_key(i), i).second);
    for (std::uint64_t k = 0; k < ngroups; ++k) {
      auto it = by_key.find(gl->group_at_sorted_index(k));
      ASSERT_NE(it, by_key.end()) << "lattice key with no dense group";
      gid[k] = it->second;
    }
  }

  // Per-group populations (== dense block sizes, matched by key).
  for (std::uint64_t k = 0; k < ngroups; ++k) {
    GroupKey g = gl->group_at_sorted_index(k);
    EXPECT_EQ(gl->sorted_index_of_group(g), k);
    ASSERT_EQ(partition.blocks()[gid[k]].group_id, gid[k]);
    EXPECT_EQ(gl->group_population(g),
              static_cast<std::int64_t>(partition.blocks()[gid[k]].iterations.size()))
        << "group (" << g.a << "," << g.b << "," << g.comp << ")";
    EXPECT_EQ(gl->group_lattice_coord(g), grouping.groups()[gid[k]].lattice);
  }

  // One sweep: block stats, arc totals, verdicts.
  LatticeSweepResult sw = gl->sweep(true);
  EXPECT_EQ(sw.stats.group_count, ngroups);
  EXPECT_EQ(sw.stats.total_iterations, space.size());
  EXPECT_EQ(sw.stats.min_block, static_cast<std::int64_t>(partition.min_block_size()));
  EXPECT_EQ(sw.stats.max_block, static_cast<std::int64_t>(partition.max_block_size()));
  EXPECT_EQ(sw.partition.total_arcs, stats.total_arcs);
  EXPECT_EQ(sw.partition.interblock_arcs, stats.interblock_arcs);
  EXPECT_EQ(sw.partition.intrablock_arcs, stats.intrablock_arcs);
  EXPECT_TRUE(sw.exact_cover);

  // TIG arc weights aggregated per lattice offset.  The dense TIG's edge
  // (u, v, weight) contributes to the canonical (sign-normalized) key
  // difference; the sweep's (dep, offset) weights aggregate identically.
  std::vector<GroupKey> key_of_gid(ngroups);
  for (std::uint64_t k = 0; k < ngroups; ++k)
    key_of_gid[gid[k]] = gl->group_at_sorted_index(k);
  auto canon = [](GroupOffset o) {
    if (o < GroupOffset{}) return GroupOffset{-o.da, -o.db, -o.dcomp};
    return o;
  };
  std::map<GroupOffset, std::int64_t> dense_off, sym_off;
  for (const auto& [edge, weight] : tig.edges()) {
    const GroupKey& ku = key_of_gid[edge.first];
    const GroupKey& kv = key_of_gid[edge.second];
    dense_off[canon({kv.a - ku.a, kv.b - ku.b, kv.comp - ku.comp})] += weight;
  }
  std::int64_t sym_intra = 0;
  for (const auto& [key, weight] : sw.offset_weights) {
    if (key.second == GroupOffset{})
      sym_intra += weight;
    else
      sym_off[canon(key.second)] += weight;
  }
  EXPECT_EQ(sym_off, dense_off);
  EXPECT_EQ(sym_intra, static_cast<std::int64_t>(stats.intrablock_arcs));

  // Algorithm 2: identical processor per group.  Weighted plane mapping is
  // not closed-form; the builder must refuse loudly, not silently diverge.
  if (weighted && gl->layout() == LatticeLayout::Plane) {
    EXPECT_THROW((void)map_to_hypercube(*gl, cube_dim, mopts), std::invalid_argument);
  } else {
    LatticeHypercubeMapping lm = map_to_hypercube(*gl, cube_dim, mopts);
    EXPECT_EQ(lm.processor_count, dense_map.mapping.processor_count);
    EXPECT_EQ(lm.cube_dim, cube_dim);
    for (std::uint64_t k = 0; k < ngroups; ++k) {
      EXPECT_EQ(lm.proc_of_group(*gl, gl->group_at_sorted_index(k)),
                dense_map.mapping.block_to_proc[gid[k]])
          << "sorted index " << k;
      if (gl->layout() == LatticeLayout::Chain)
        EXPECT_EQ(lm.proc_of_sorted_index(k), dense_map.mapping.block_to_proc[gid[k]]);
    }
  }

  // Boxes tile [a_min, a_max].
  std::vector<GroupLattice::GroupBox> boxes = gl->enumerate_boxes();
  ASSERT_FALSE(boxes.empty());
  std::int64_t lo = boxes.front().a_lo, hi = boxes.front().a_hi;
  for (const GroupLattice::GroupBox& b : boxes) {
    EXPECT_LE(b.a_lo, b.a_hi);
    EXPECT_LE(b.c_lo, b.c_hi);
    lo = std::min(lo, b.a_lo);
    hi = std::max(hi, b.a_hi);
    if (gl->layout() == LatticeLayout::Chain && gl->component_count() == 1) {
      std::int64_t a0 = gl->group_of_line(b.c_lo).a;
      EXPECT_TRUE(a0 == b.a_lo || a0 == b.a_hi);
    }
  }
  EXPECT_EQ(lo, gl->a_min());
  EXPECT_EQ(hi, gl->a_max());
}

TEST(GroupLattice, PaperWorkloadsMatchDense) {
  expect_lattice_matches_dense(workloads::example_l1(), {1, 1}, 2, false);
  expect_lattice_matches_dense(workloads::sor2d(10, 7), {1, 1}, 3, false);
  expect_lattice_matches_dense(workloads::sor2d(9, 9), {1, 1}, 3, true);
  expect_lattice_matches_dense(workloads::triangular_matvec(9), {1, 1}, 2, false);
  expect_lattice_matches_dense(workloads::matrix_vector(8), {}, 3, false);
  expect_lattice_matches_dense(workloads::convolution1d(9, 4), {}, 2, false);
  expect_lattice_matches_dense(workloads::dft_horner(7), {}, 2, true);
}

TEST(GroupLattice, ThreeDPlaneWorkloadsMatchDense) {
  // n = 3, β = 2: the plane layout's (a, b) lattice, fragment CSR mapping
  // and dual-functional coordinates against the dense pipeline.
  expect_lattice_matches_dense(workloads::matrix_multiplication(4), {1, 1, 1}, 2, false);
  expect_lattice_matches_dense(workloads::matrix_multiplication_rewritten(4), {1, 1, 1}, 3,
                               false);
  expect_lattice_matches_dense(workloads::wavefront3d(5), {1, 1, 1}, 3, false);
  expect_lattice_matches_dense(workloads::transitive_closure(4), {1, 1, 1}, 2, false);
  // Triangular-prism domain (affine bounds): per-aux-chain contiguity holds.
  expect_lattice_matches_dense(workloads::lu_decomposition(8), {1, 1, 1}, 3, false);
}

TEST(GroupLattice, StridedChainsMatchDense) {
  // |γ_l| > 1: the lines split into residue components, each a sub-chain
  // the dense region growing covers from its own lexicographic seed.
  expect_lattice_matches_dense(workloads::strided_recurrence(9, 2), {1, 1}, 2, false);
  expect_lattice_matches_dense(workloads::strided_recurrence(9, 3), {1, 1}, 3, false);
  expect_lattice_matches_dense(workloads::strided_recurrence(12, 4), {1, 1}, 2, true);
}

TEST(GroupLattice, DisjunctiveBoundsMatchDense) {
  // min/max bounds split slabs on the comparison hyperplane; the per-slab
  // closed forms must still reproduce the dense grouping exactly.
  expect_lattice_matches_dense(workloads::pyramid_stencil(12), {1, 1}, 2, false);
  expect_lattice_matches_dense(workloads::pyramid_stencil(15), {1, 1}, 3, true);
  expect_lattice_matches_dense(workloads::floyd_warshall_band(14, 4), {1, 1}, 3, false);
  expect_lattice_matches_dense(workloads::floyd_warshall_band(11, 2), {1, 1}, 2, true);
}

TEST(GroupLattice, RandomizedNests) {
  // Deterministic seed: the suite must be reproducible.
  std::mt19937 rng(0xC0FFEE);
  auto pick = [&](std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(rng);
  };
  for (int trial = 0; trial < 72; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    unsigned cube_dim = static_cast<unsigned>(pick(0, 3));
    bool weighted = pick(0, 1) == 1;
    switch (trial % 9) {
      case 0:
        expect_lattice_matches_dense(workloads::sor2d(pick(2, 14), pick(2, 14)), {1, 1},
                                     cube_dim, weighted);
        break;
      case 1:
        expect_lattice_matches_dense(workloads::example_l1(pick(2, 9)), {1, 1}, cube_dim,
                                     weighted);
        break;
      case 2:
        expect_lattice_matches_dense(workloads::triangular_matvec(pick(3, 14)), {1, 1},
                                     cube_dim, weighted);
        break;
      case 3:
        expect_lattice_matches_dense(workloads::matrix_vector(pick(3, 14)), {}, cube_dim,
                                     weighted);
        break;
      case 4:
        expect_lattice_matches_dense(workloads::strided_recurrence(pick(6, 14), pick(2, 4)),
                                     {1, 1}, cube_dim, weighted);
        break;
      case 5:
        expect_lattice_matches_dense(workloads::wavefront3d(pick(2, 6)), {1, 1, 1}, cube_dim,
                                     weighted);
        break;
      case 6:
        expect_lattice_matches_dense(workloads::pyramid_stencil(pick(6, 16)), {1, 1},
                                     cube_dim, weighted);
        break;
      case 7:
        expect_lattice_matches_dense(
            workloads::floyd_warshall_band(pick(8, 16), pick(2, 5)), {1, 1}, cube_dim,
            weighted);
        break;
      default: {
        std::int64_t n = pick(5, 12);
        expect_lattice_matches_dense(workloads::convolution1d(n, pick(2, n - 2)), {}, cube_dim,
                                     weighted);
        break;
      }
    }
  }
}

TEST(GroupLattice, GroupingVectorOverrideMatchesDense) {
  // Both of sor2d's dependences attain the maximal replication factor, so
  // either is a legal override; the lattice must follow the same choice.
  for (std::size_t k : {std::size_t{0}, std::size_t{1}}) {
    SCOPED_TRACE("override dep " + std::to_string(k));
    LoopNest nest = workloads::sor2d(8, 6);
    ComputationStructure q = ComputationStructure::from_loop(nest);
    TimeFunction tf{IntVec{1, 1}};
    ProjectedStructure ps(q, tf);
    GroupingOptions opts;
    opts.grouping_vector = k;
    Grouping grouping = Grouping::compute(ps, opts);
    ASSERT_EQ(grouping.grouping_vector_index(), k);

    DependenceInfo dep = analyze_dependences(nest);
    IterSpace space(nest, dep.distance_vectors());
    std::optional<GroupLattice> gl = GroupLattice::build(space, tf, opts);
    ASSERT_TRUE(gl.has_value());
    EXPECT_EQ(gl->grouping_vector_index(), k);
    EXPECT_EQ(gl->group_count(), grouping.group_count());
    Partition partition = Partition::build(q, grouping);
    EXPECT_EQ(gl->sweep(false).stats.max_block,
              static_cast<std::int64_t>(partition.max_block_size()));
  }
}

TEST(GroupLattice, GateRefusesOutOfClassNests) {
  TimeFunction tf2{IntVec{1, 1}};

  // 3-D strided nest: the projected dependences generate a proper
  // sublattice, so units leave the seed coset — plane-multi-coset fallback.
  {
    LoopNest nest = workloads::strided_recurrence3d(8, 2);
    DependenceInfo dep = analyze_dependences(nest);
    IterSpace space(nest, dep.distance_vectors());
    std::string why;
    EXPECT_FALSE(
        GroupLattice::build(space, TimeFunction{IntVec{1, 1, 1}}, {}, &why).has_value());
    EXPECT_EQ(why, "plane-multi-coset");
  }
  // Non-default seed policy: the closed form reproduces Lexicographic only.
  {
    DependenceInfo dep = analyze_dependences(workloads::sor2d(6, 6));
    IterSpace space(workloads::sor2d(6, 6), dep.distance_vectors());
    GroupingOptions opts;
    opts.seed_policy = SeedPolicy::ExplicitBases;
    opts.explicit_bases = {IntVec{0, 0}};
    std::string why;
    EXPECT_FALSE(GroupLattice::build(space, tf2, opts, &why).has_value());
    EXPECT_EQ(why, "seed-policy");
  }
  // 4-D nests stay out of class.
  {
    LoopNest nest = workloads::convolution2d(5, 3);
    DependenceInfo dep = analyze_dependences(nest);
    IterSpace space(nest, dep.distance_vectors());
    std::string why;
    EXPECT_FALSE(
        GroupLattice::build(space, TimeFunction{IntVec{1, 1, 1, 1}}, {}, &why).has_value());
    EXPECT_EQ(why, "dimension-unsupported");
  }
}

TEST(GroupLattice, SymbolicPipelineUsesLatticeAndVerifyAgrees) {
  // Symbolic mode on an in-class nest must take the pure lattice path (no
  // groups materialized); verify mode re-runs every stage densely and
  // throws on any disagreement — including the lattice cross-checks.
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1};
  cfg.space_mode = SpaceMode::Symbolic;
  PipelineResult sym = run_pipeline(workloads::sor2d(20, 20), cfg);
  ASSERT_NE(sym.lattice, nullptr);
  EXPECT_TRUE(sym.lattice_mapping.has_value());
  EXPECT_TRUE(sym.lattice_stats.has_value());
  EXPECT_TRUE(sym.block_sizes.empty());
  EXPECT_EQ(sym.projected, nullptr);
  EXPECT_TRUE(sym.exact_cover);
  EXPECT_TRUE(sym.theorem1);
  EXPECT_TRUE(sym.theorem2.holds);

  cfg.space_mode = SpaceMode::Verify;
  PipelineResult ver = run_pipeline(workloads::sor2d(20, 20), cfg);
  EXPECT_EQ(ver.sim.time, sym.sim.time);
  EXPECT_EQ(ver.sim.messages, sym.sim.messages);
  EXPECT_EQ(ver.stats.interblock_arcs, sym.stats.interblock_arcs);
}

TEST(GroupLattice, Fig6MatmulVerifyRun) {
  // Paper Fig. 6: matrix multiplication under Pi = (1,1,1).  A 3-D nest —
  // now inside the plane-layout lattice class, so the symbolic path must be
  // fully closed-form; verify mode asserts dense/symbolic equality
  // throughout (including the lattice cross-checks).
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1, 1};
  cfg.space_mode = SpaceMode::Verify;
  PipelineResult r = run_pipeline(workloads::matrix_multiplication(), cfg);
  EXPECT_EQ(r.grouping.group_size_r(), 3);
  EXPECT_TRUE(r.exact_cover);
  EXPECT_TRUE(r.theorem2.holds);

  cfg.space_mode = SpaceMode::Symbolic;
  PipelineResult sym = run_pipeline(workloads::matrix_multiplication(), cfg);
  ASSERT_NE(sym.lattice, nullptr);
  EXPECT_TRUE(sym.block_sizes.empty());  // pure lattice path: nothing materialized
  EXPECT_EQ(sym.sim.time, r.sim.time);
}

TEST(GroupLattice, LineFeedMatchesPopulationQueries) {
  DependenceInfo dep = analyze_dependences(workloads::triangular_matvec(11));
  IterSpace space(workloads::triangular_matvec(11), dep.distance_vectors());
  TimeFunction tf{IntVec{1, 1}};
  std::optional<GroupLattice> gl = GroupLattice::build(space, tf);
  ASSERT_TRUE(gl.has_value());
  std::uint64_t total = 0;
  std::map<GroupKey, std::int64_t> pop_by_group;
  gl->for_each_line([&](const GroupKey& g, std::int64_t pop, std::int64_t first_step) {
    EXPECT_GT(pop, 0);
    (void)first_step;
    pop_by_group[g] += pop;
    total += static_cast<std::uint64_t>(pop);
  });
  EXPECT_EQ(total, space.size());
  EXPECT_EQ(pop_by_group.size(), gl->group_count());
  for (const auto& [g, pop] : pop_by_group) EXPECT_EQ(pop, gl->group_population(g));

  std::int64_t bundle_arcs = 0;
  gl->for_each_arc_bundle([&](const GroupKey& src, const GroupKey& dst, std::size_t k,
                              std::int64_t count, std::int64_t first_step) {
    EXPECT_GE(gl->group_population(src), count);
    EXPECT_LE(gl->sorted_index_of_group(dst), gl->group_count());
    EXPECT_LT(k, gl->original_deps().size());
    EXPECT_GT(count, 0);
    (void)first_step;
    bundle_arcs += count;
  });
  EXPECT_EQ(static_cast<std::size_t>(bundle_arcs), gl->sweep(false).partition.total_arcs);
}

TEST(GroupLattice, PlaneLineFeedMatchesPopulationQueries) {
  // Same invariants on a plane layout: the feed walks aux-chain-major and
  // its per-group accumulation must equal the closed-form populations.
  LoopNest nest = workloads::wavefront3d(5);
  DependenceInfo dep = analyze_dependences(nest);
  IterSpace space(nest, dep.distance_vectors());
  TimeFunction tf{IntVec{1, 1, 1}};
  std::optional<GroupLattice> gl = GroupLattice::build(space, tf);
  ASSERT_TRUE(gl.has_value());
  ASSERT_EQ(gl->layout(), LatticeLayout::Plane);
  std::uint64_t total = 0;
  std::map<GroupKey, std::int64_t> pop_by_group;
  gl->for_each_line([&](const GroupKey& g, std::int64_t pop, std::int64_t first_step) {
    EXPECT_GT(pop, 0);
    (void)first_step;
    pop_by_group[g] += pop;
    total += static_cast<std::uint64_t>(pop);
  });
  EXPECT_EQ(total, space.size());
  EXPECT_EQ(pop_by_group.size(), gl->group_count());
  for (const auto& [g, pop] : pop_by_group) EXPECT_EQ(pop, gl->group_population(g));
}

TEST(GroupLattice, SymbolicFaultInjectionMatchesDense) {
  // Degraded execution under node/link faults: the symbolic simulators
  // (line-based and lattice) must reproduce the dense fault machinery —
  // verify mode runs both and throws on any disagreement, including the
  // degraded observability fields.
  struct Case {
    LoopNest nest;
    IntVec pi;
  };
  const std::vector<Case> cases = {
      {workloads::sor2d(12, 9), {1, 1}},                  // chain layout
      {workloads::strided_recurrence(10, 2), {1, 1}},     // strided residue chains
      {workloads::pyramid_stencil(14), {1, 1}},           // disjunctive bounds
      {workloads::wavefront3d(5), {1, 1, 1}},             // plane layout
      {workloads::strided_recurrence3d(6, 2), {1, 1, 1}}  // line-based fallback
  };
  const std::vector<std::string> specs = {"link:0-1@3", "node:2@5",
                                          "link:0-2,node:1@4,link:4-5@6"};
  for (const Case& c : cases) {
    for (const std::string& spec : specs) {
      for (CommAccounting acc : {CommAccounting::PaperMaxChannel,
                                 CommAccounting::PerStepBarrier,
                                 CommAccounting::LinkContention}) {
        SCOPED_TRACE(c.nest.name() + " faults=" + spec +
                     " acc=" + std::to_string(static_cast<int>(acc)));
        PipelineConfig cfg;
        cfg.time_function = c.pi;
        cfg.sim.faults = fault::FaultPlan::parse(spec);
        cfg.sim.accounting = acc;
        cfg.space_mode = SpaceMode::Dense;
        PipelineResult dense = run_pipeline(c.nest, cfg);
        cfg.space_mode = SpaceMode::Verify;
        PipelineResult ver = run_pipeline(c.nest, cfg);  // throws on divergence
        EXPECT_EQ(ver.sim.time, dense.sim.time);
        EXPECT_EQ(ver.sim.messages, dense.sim.messages);
        EXPECT_EQ(ver.sim.failed_nodes, dense.sim.failed_nodes);
        EXPECT_EQ(ver.sim.failed_links, dense.sim.failed_links);
        EXPECT_EQ(ver.sim.rerouted_messages, dense.sim.rerouted_messages);
        EXPECT_EQ(ver.sim.migrated_blocks, dense.sim.migrated_blocks);
        EXPECT_EQ(ver.sim.migration_cost, dense.sim.migration_cost);
      }
    }
  }
}

}  // namespace
}  // namespace hypart
