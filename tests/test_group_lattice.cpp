// Property suite for the closed-form group lattice: every quantity the
// lattice derives symbolically (group count, population multiset, block
// statistics, per-offset TIG arc weights, Algorithm 2 cube assignment,
// theorem/lemma verdicts) must equal the dense Algorithm 1/2 pipeline on
// the same nest — over fixed paper workloads AND randomized rectangular
// and triangular nests of depth <= 3.
#include "partition/group_lattice.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <numeric>
#include <random>

#include "core/pipeline.hpp"
#include "graph/comp_structure.hpp"
#include "loop/iter_space.hpp"
#include "mapping/hypercube_map.hpp"
#include "mapping/tig.hpp"
#include "partition/blocks.hpp"
#include "partition/projection.hpp"
#include "schedule/hyperplane.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

/// Run both pipelines on `nest` and compare every lattice-derived quantity
/// against its dense counterpart.  `pi` empty means "search".
void expect_lattice_matches_dense(const LoopNest& nest, const IntVec& pi_or_empty,
                                  unsigned cube_dim, bool weighted) {
  SCOPED_TRACE(nest.name() + " dim=" + std::to_string(cube_dim) +
               (weighted ? " weighted" : ""));

  // Dense side: materialized Algorithm 1 + 2.
  ComputationStructure q = ComputationStructure::from_loop(nest);
  TimeFunction tf{pi_or_empty};
  if (pi_or_empty.empty()) {
    std::optional<TimeFunction> searched = search_time_function(q);
    ASSERT_TRUE(searched.has_value());
    tf = *searched;
  }
  ProjectedStructure ps(q, tf);
  Grouping grouping = Grouping::compute(ps);
  Partition partition = Partition::build(q, grouping);
  PartitionStats stats = compute_partition_stats(q, partition);
  TaskInteractionGraph tig = TaskInteractionGraph::from_partition(q, partition, grouping);
  HypercubeMapOptions mopts;
  mopts.weighted = weighted;
  HypercubeMappingResult dense_map = map_to_hypercube(tig, cube_dim, mopts);

  // Symbolic side: the closed-form lattice.
  DependenceInfo dep = analyze_dependences(nest);
  IterSpace space(nest, dep.distance_vectors());
  std::optional<GroupLattice> gl = GroupLattice::build(space, tf);
  ASSERT_TRUE(gl.has_value()) << "lattice gate unexpectedly refused";

  // Frame quantities.
  EXPECT_EQ(gl->line_count(), ps.point_count());
  EXPECT_EQ(gl->group_count(), grouping.group_count());
  EXPECT_EQ(gl->group_size_r(), grouping.group_size_r());
  EXPECT_EQ(gl->beta(), grouping.beta());
  EXPECT_EQ(gl->sum_line_populations(gl->c_min(), gl->c_max()), space.size());

  // Dense group id of each lattice coordinate.  Non-degenerate groups carry
  // their 1-D lattice coordinate; degenerate group ids follow the lex point
  // order, which is exactly the lattice's sorted index.
  const std::uint64_t ngroups = gl->group_count();
  std::vector<std::size_t> gid(ngroups);
  if (gl->degenerate()) {
    std::iota(gid.begin(), gid.end(), std::size_t{0});
  } else {
    std::map<std::int64_t, std::size_t> by_coord;
    for (std::size_t i = 0; i < grouping.group_count(); ++i) {
      const IntVec& lat = grouping.groups()[i].lattice;
      ASSERT_EQ(lat.size(), 1u);
      ASSERT_TRUE(by_coord.emplace(lat[0], i).second);
    }
    for (std::uint64_t k = 0; k < ngroups; ++k) {
      auto it = by_coord.find(gl->group_at_sorted_index(k));
      ASSERT_NE(it, by_coord.end()) << "lattice coord with no dense group";
      gid[k] = it->second;
    }
  }

  // Per-group populations (== dense block sizes, by id, hence as multisets).
  for (std::uint64_t k = 0; k < ngroups; ++k) {
    std::int64_t a = gl->group_at_sorted_index(k);
    ASSERT_EQ(partition.blocks()[gid[k]].group_id, gid[k]);
    EXPECT_EQ(gl->group_population(a),
              static_cast<std::int64_t>(partition.blocks()[gid[k]].iterations.size()))
        << "group " << a;
    EXPECT_EQ(gl->group_lattice_coord(a), grouping.groups()[gid[k]].lattice);
  }

  // One sweep: block stats, arc totals, verdicts.
  LatticeSweepResult sw = gl->sweep(true);
  EXPECT_EQ(sw.stats.group_count, ngroups);
  EXPECT_EQ(sw.stats.total_iterations, space.size());
  EXPECT_EQ(sw.stats.min_block, static_cast<std::int64_t>(partition.min_block_size()));
  EXPECT_EQ(sw.stats.max_block, static_cast<std::int64_t>(partition.max_block_size()));
  EXPECT_EQ(sw.partition.total_arcs, stats.total_arcs);
  EXPECT_EQ(sw.partition.interblock_arcs, stats.interblock_arcs);
  EXPECT_EQ(sw.partition.intrablock_arcs, stats.intrablock_arcs);
  EXPECT_TRUE(sw.exact_cover);

  // TIG arc weights aggregated per lattice offset.  The dense TIG's edge
  // (u, v, weight) contributes to |coord(v) - coord(u)|; the sweep's
  // (dep, offset) weights aggregate to the same histogram.
  std::vector<std::int64_t> coord_of_gid(ngroups);
  for (std::uint64_t k = 0; k < ngroups; ++k)
    coord_of_gid[gid[k]] = gl->group_at_sorted_index(k);
  std::map<std::int64_t, std::int64_t> dense_off, sym_off;
  for (const auto& [edge, weight] : tig.edges()) {
    std::int64_t off = std::llabs(coord_of_gid[edge.second] - coord_of_gid[edge.first]);
    dense_off[off] += weight;
  }
  std::int64_t sym_intra = 0;
  for (const auto& [key, weight] : sw.offset_weights) {
    if (key.second == 0)
      sym_intra += weight;
    else
      sym_off[std::llabs(key.second)] += weight;
  }
  EXPECT_EQ(sym_off, dense_off);
  EXPECT_EQ(sym_intra, static_cast<std::int64_t>(stats.intrablock_arcs));

  // Algorithm 2: identical processor per group.
  LatticeHypercubeMapping lm = map_to_hypercube(*gl, cube_dim, mopts);
  EXPECT_EQ(lm.processor_count, dense_map.mapping.processor_count);
  EXPECT_EQ(lm.cube_dim, cube_dim);
  for (std::uint64_t k = 0; k < ngroups; ++k)
    EXPECT_EQ(lm.proc_of_sorted_index(k), dense_map.mapping.block_to_proc[gid[k]])
        << "sorted index " << k;

  // Boxes tile [a_min, a_max].
  std::vector<GroupLattice::GroupBox> boxes = gl->enumerate_boxes();
  ASSERT_FALSE(boxes.empty());
  std::int64_t lo = boxes.front().a_lo, hi = boxes.front().a_hi;
  for (const GroupLattice::GroupBox& b : boxes) {
    EXPECT_LE(b.a_lo, b.a_hi);
    EXPECT_LE(b.c_lo, b.c_hi);
    lo = std::min(lo, b.a_lo);
    hi = std::max(hi, b.a_hi);
    EXPECT_EQ(gl->group_of_line(b.c_lo) == b.a_lo || gl->group_of_line(b.c_lo) == b.a_hi, true);
  }
  EXPECT_EQ(lo, gl->a_min());
  EXPECT_EQ(hi, gl->a_max());
}

TEST(GroupLattice, PaperWorkloadsMatchDense) {
  expect_lattice_matches_dense(workloads::example_l1(), {1, 1}, 2, false);
  expect_lattice_matches_dense(workloads::sor2d(10, 7), {1, 1}, 3, false);
  expect_lattice_matches_dense(workloads::sor2d(9, 9), {1, 1}, 3, true);
  expect_lattice_matches_dense(workloads::triangular_matvec(9), {1, 1}, 2, false);
  expect_lattice_matches_dense(workloads::matrix_vector(8), {}, 3, false);
  expect_lattice_matches_dense(workloads::convolution1d(9, 4), {}, 2, false);
  expect_lattice_matches_dense(workloads::dft_horner(7), {}, 2, true);
}

TEST(GroupLattice, RandomizedRectangularAndTriangularNests) {
  // Deterministic seed: the suite must be reproducible.
  std::mt19937 rng(0xC0FFEE);
  auto pick = [&](std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(rng);
  };
  for (int trial = 0; trial < 60; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    unsigned cube_dim = static_cast<unsigned>(pick(0, 3));
    bool weighted = pick(0, 1) == 1;
    switch (trial % 5) {
      case 0:
        expect_lattice_matches_dense(workloads::sor2d(pick(2, 14), pick(2, 14)), {1, 1},
                                     cube_dim, weighted);
        break;
      case 1:
        expect_lattice_matches_dense(workloads::example_l1(pick(2, 9)), {1, 1}, cube_dim,
                                     weighted);
        break;
      case 2:
        expect_lattice_matches_dense(workloads::triangular_matvec(pick(3, 14)), {1, 1},
                                     cube_dim, weighted);
        break;
      case 3:
        expect_lattice_matches_dense(workloads::matrix_vector(pick(3, 14)), {}, cube_dim,
                                     weighted);
        break;
      default: {
        std::int64_t n = pick(5, 12);
        expect_lattice_matches_dense(workloads::convolution1d(n, pick(2, n - 2)), {}, cube_dim,
                                     weighted);
        break;
      }
    }
  }
}

TEST(GroupLattice, GroupingVectorOverrideMatchesDense) {
  // Both of sor2d's dependences attain the maximal replication factor, so
  // either is a legal override; the lattice must follow the same choice.
  for (std::size_t k : {std::size_t{0}, std::size_t{1}}) {
    SCOPED_TRACE("override dep " + std::to_string(k));
    LoopNest nest = workloads::sor2d(8, 6);
    ComputationStructure q = ComputationStructure::from_loop(nest);
    TimeFunction tf{IntVec{1, 1}};
    ProjectedStructure ps(q, tf);
    GroupingOptions opts;
    opts.grouping_vector = k;
    Grouping grouping = Grouping::compute(ps, opts);
    ASSERT_EQ(grouping.grouping_vector_index(), k);

    DependenceInfo dep = analyze_dependences(nest);
    IterSpace space(nest, dep.distance_vectors());
    std::optional<GroupLattice> gl = GroupLattice::build(space, tf, opts);
    ASSERT_TRUE(gl.has_value());
    EXPECT_EQ(gl->grouping_vector_index(), k);
    EXPECT_EQ(gl->group_count(), grouping.group_count());
    Partition partition = Partition::build(q, grouping);
    EXPECT_EQ(gl->sweep(false).stats.max_block,
              static_cast<std::int64_t>(partition.max_block_size()));
  }
}

TEST(GroupLattice, GateRefusesOutOfClassNests) {
  TimeFunction tf2{IntVec{1, 1}};

  // 3-D nests: the lattice is strictly 2-D; run_pipeline must fall back.
  {
    DependenceInfo dep = analyze_dependences(workloads::matrix_multiplication(4));
    IterSpace space(workloads::matrix_multiplication(4), dep.distance_vectors());
    EXPECT_FALSE(GroupLattice::build(space, TimeFunction{IntVec{1, 1, 1}}).has_value());
  }
  // Strided chains: |gamma| > 1 leaves holes in the slot chain.
  {
    DependenceInfo dep = analyze_dependences(workloads::strided_recurrence(9, 3));
    IterSpace space(workloads::strided_recurrence(9, 3), dep.distance_vectors());
    EXPECT_FALSE(GroupLattice::build(space, tf2).has_value());
  }
  // Non-default seed policy: the closed form reproduces Lexicographic only.
  {
    DependenceInfo dep = analyze_dependences(workloads::sor2d(6, 6));
    IterSpace space(workloads::sor2d(6, 6), dep.distance_vectors());
    GroupingOptions opts;
    opts.seed_policy = SeedPolicy::ExplicitBases;
    opts.explicit_bases = {IntVec{0, 0}};
    EXPECT_FALSE(GroupLattice::build(space, tf2, opts).has_value());
  }
}

TEST(GroupLattice, SymbolicPipelineUsesLatticeAndVerifyAgrees) {
  // Symbolic mode on an in-class nest must take the pure lattice path (no
  // groups materialized); verify mode re-runs every stage densely and
  // throws on any disagreement — including the lattice cross-checks.
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1};
  cfg.space_mode = SpaceMode::Symbolic;
  PipelineResult sym = run_pipeline(workloads::sor2d(20, 20), cfg);
  ASSERT_NE(sym.lattice, nullptr);
  EXPECT_TRUE(sym.lattice_mapping.has_value());
  EXPECT_TRUE(sym.lattice_stats.has_value());
  EXPECT_TRUE(sym.block_sizes.empty());
  EXPECT_EQ(sym.projected, nullptr);
  EXPECT_TRUE(sym.exact_cover);
  EXPECT_TRUE(sym.theorem1);
  EXPECT_TRUE(sym.theorem2.holds);

  cfg.space_mode = SpaceMode::Verify;
  PipelineResult ver = run_pipeline(workloads::sor2d(20, 20), cfg);
  EXPECT_EQ(ver.sim.time, sym.sim.time);
  EXPECT_EQ(ver.sim.messages, sym.sim.messages);
  EXPECT_EQ(ver.stats.interblock_arcs, sym.stats.interblock_arcs);
}

TEST(GroupLattice, Fig6MatmulVerifyRun) {
  // Paper Fig. 6: matrix multiplication under Pi = (1,1,1).  A 3-D nest,
  // so the lattice gate refuses and the line-based fallback must carry the
  // symbolic path; verify mode asserts dense/symbolic equality throughout.
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1, 1};
  cfg.space_mode = SpaceMode::Verify;
  PipelineResult r = run_pipeline(workloads::matrix_multiplication(), cfg);
  EXPECT_EQ(r.lattice, nullptr);  // out of the lattice class
  EXPECT_EQ(r.grouping.group_size_r(), 3);
  EXPECT_TRUE(r.exact_cover);
  EXPECT_TRUE(r.theorem2.holds);

  cfg.space_mode = SpaceMode::Symbolic;
  PipelineResult sym = run_pipeline(workloads::matrix_multiplication(), cfg);
  EXPECT_EQ(sym.lattice, nullptr);
  EXPECT_EQ(sym.block_sizes.size(), r.block_sizes.size());
  EXPECT_EQ(sym.sim.time, r.sim.time);
}

TEST(GroupLattice, LineFeedMatchesPopulationQueries) {
  DependenceInfo dep = analyze_dependences(workloads::triangular_matvec(11));
  IterSpace space(workloads::triangular_matvec(11), dep.distance_vectors());
  TimeFunction tf{IntVec{1, 1}};
  std::optional<GroupLattice> gl = GroupLattice::build(space, tf);
  ASSERT_TRUE(gl.has_value());
  std::int64_t expect_c = gl->c_min();
  std::uint64_t total = 0;
  gl->for_each_line([&](std::int64_t c, std::int64_t pop, std::int64_t first_step) {
    EXPECT_EQ(c, expect_c++);
    EXPECT_EQ(pop, gl->line_population(c));
    EXPECT_GT(pop, 0);
    (void)first_step;
    total += static_cast<std::uint64_t>(pop);
  });
  EXPECT_EQ(expect_c, gl->c_max() + 1);
  EXPECT_EQ(total, space.size());

  std::int64_t bundle_arcs = 0;
  gl->for_each_arc_bundle(
      [&](std::int64_t c, std::size_t k, std::int64_t count, std::int64_t first_step) {
        EXPECT_GE(gl->line_population(c), count);
        EXPECT_LT(k, gl->original_deps().size());
        EXPECT_GT(count, 0);
        (void)first_step;
        bundle_arcs += count;
      });
  EXPECT_EQ(static_cast<std::size_t>(bundle_arcs), gl->sweep(false).partition.total_arcs);
}

}  // namespace
}  // namespace hypart
