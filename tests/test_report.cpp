#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "mapping/hypercube_map.hpp"
#include "sim/exec_sim.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

struct ReportFixture {
  std::unique_ptr<ComputationStructure> q;
  std::unique_ptr<ProjectedStructure> ps;
  Grouping grouping;
  Partition partition;
  TaskInteractionGraph tig;
  TimeFunction tf;
};

ReportFixture make(const LoopNest& nest, const IntVec& pi) {
  ReportFixture f;
  f.q = std::make_unique<ComputationStructure>(ComputationStructure::from_loop(nest));
  f.tf = TimeFunction{pi};
  f.ps = std::make_unique<ProjectedStructure>(*f.q, f.tf);
  f.grouping = Grouping::compute(*f.ps);
  f.partition = Partition::build(*f.q, f.grouping);
  f.tig = TaskInteractionGraph::from_partition(*f.q, f.partition, f.grouping);
  return f;
}

TEST(Utilization, SingleProcessorFullyBusy) {
  ReportFixture f = make(workloads::matrix_vector(6), {1, 1});
  Mapping one;
  one.processor_count = 1;
  one.block_to_proc.assign(f.partition.block_count(), 0);
  UtilizationReport rep = processor_utilization(*f.q, f.tf, f.partition, one);
  EXPECT_EQ(rep.steps(), 11);  // steps 2..12 for 1-based 6x6 matvec
  ASSERT_EQ(rep.per_proc_busy.size(), 1u);
  EXPECT_DOUBLE_EQ(rep.per_proc_busy[0], 1.0);
  EXPECT_DOUBLE_EQ(rep.mean_utilization, 1.0);
}

TEST(Utilization, PartitionedProcessorsIdleAtWavefrontEdges) {
  ReportFixture f = make(workloads::matrix_vector(16), {1, 1});
  Mapping map = map_to_hypercube(f.tig, 2).mapping;
  UtilizationReport rep = processor_utilization(*f.q, f.tf, f.partition, map);
  // The wavefront sweeps across processors: none is busy the whole time,
  // but everyone is busy some of the time.
  double min_busy = 1.0, max_busy = 0.0;
  for (double b : rep.per_proc_busy) {
    min_busy = std::min(min_busy, b);
    max_busy = std::max(max_busy, b);
  }
  EXPECT_GT(min_busy, 0.0);
  EXPECT_LT(min_busy, 1.0);
  EXPECT_LT(rep.mean_utilization, 1.0);
  EXPECT_GT(rep.mean_utilization, 0.25);
}

TEST(Utilization, GanttShapeAndMarkers) {
  ReportFixture f = make(workloads::example_l1(), {1, 1});
  Mapping map = map_to_hypercube(f.tig, 1).mapping;
  UtilizationReport rep = processor_utilization(*f.q, f.tf, f.partition, map);
  // One row per processor plus the header line.
  std::size_t rows = static_cast<std::size_t>(std::count(rep.gantt.begin(), rep.gantt.end(), '\n'));
  EXPECT_EQ(rows, 1u + map.processor_count);
  EXPECT_NE(rep.gantt.find("busy"), std::string::npos);
  // Idle marker appears (boundary steps can't occupy everyone).
  EXPECT_NE(rep.gantt.find('.'), std::string::npos);
}

TEST(Utilization, ChartResampling) {
  ReportFixture f = make(workloads::matrix_vector(48), {1, 1});
  Mapping map = map_to_hypercube(f.tig, 1).mapping;
  UtilizationReport rep = processor_utilization(*f.q, f.tf, f.partition, map, 16);
  EXPECT_NE(rep.gantt.find("(every"), std::string::npos);
}

TEST(LinkContentionSim, RequiresHypercube) {
  ReportFixture f = make(workloads::matrix_vector(8), {1, 1});
  Mapping map = map_to_hypercube(f.tig, 2).mapping;
  SimOptions opts;
  opts.accounting = CommAccounting::LinkContention;
  Ring ring(4);
  EXPECT_THROW(
      simulate_execution(*f.q, f.tf, f.partition, map, ring, MachineParams{}, opts),
      std::invalid_argument);
}

TEST(LinkContentionSim, NeighborTrafficBoundedBySenderSerialization) {
  // With Gray mapping all traffic is neighbor-to-neighbor, so every message
  // occupies exactly one link; a link then carries at most what one sender
  // would have serialized in the barrier model, hence comm time is bounded
  // above by the barrier model's.
  ReportFixture f = make(workloads::matrix_vector(16), {1, 1});
  Mapping map = map_to_hypercube(f.tig, 2).mapping;
  Hypercube cube(2);
  SimOptions barrier;
  barrier.accounting = CommAccounting::PerStepBarrier;
  SimOptions contention;
  contention.accounting = CommAccounting::LinkContention;
  MachineParams mp{0.0, 1.0, 1.0};  // communication only
  SimResult rb = simulate_execution(*f.q, f.tf, f.partition, map, cube, mp, barrier);
  SimResult rc = simulate_execution(*f.q, f.tf, f.partition, map, cube, mp, contention);
  EXPECT_GT(rc.time, 0.0);
  EXPECT_LE(rc.time, rb.time);
  EXPECT_GT(rc.max_link_words, 0);
}

TEST(LinkContentionSim, ScatteredMappingCongestsLinks) {
  // Round-robin placement forces multi-hop routes through shared links:
  // total routed link-words exceed the Gray mapping's (which uses one link
  // per message), and the busiest link carries more traffic.
  ReportFixture f = make(workloads::matrix_vector(16), {1, 1});
  Mapping gray = map_to_hypercube(f.tig, 3).mapping;
  Mapping rr;
  rr.processor_count = 8;
  rr.method = "round-robin";
  rr.block_to_proc.resize(f.tig.vertex_count());
  for (std::size_t b = 0; b < f.tig.vertex_count(); ++b) rr.block_to_proc[b] = b % 8;
  Hypercube cube(3);
  MachineParams mp{0.0, 1.0, 1.0};
  SimOptions contention;
  contention.accounting = CommAccounting::LinkContention;
  SimResult rg = simulate_execution(*f.q, f.tf, f.partition, gray, cube, mp, contention);
  SimResult rs = simulate_execution(*f.q, f.tf, f.partition, rr, cube, mp, contention);
  EXPECT_GE(rs.max_link_words, rg.max_link_words);
  EXPECT_GT(rs.time, 0.0);
}

TEST(LinkContentionSim, WordConservation) {
  ReportFixture f = make(workloads::sor2d(8, 8), {1, 1});
  Mapping map = map_to_hypercube(f.tig, 2).mapping;
  Hypercube cube(2);
  SimOptions opts;
  opts.accounting = CommAccounting::LinkContention;
  SimResult r = simulate_execution(*f.q, f.tf, f.partition, map, cube, MachineParams{}, opts);
  std::int64_t crossing = 0;
  f.q->for_each_arc([&](const IntVec& a, const IntVec& b, std::size_t) {
    ProcId pa = map.block_to_proc[f.partition.block_of(f.q->id_of(a))];
    ProcId pb = map.block_to_proc[f.partition.block_of(f.q->id_of(b))];
    if (pa != pb) ++crossing;
  });
  EXPECT_EQ(r.words, crossing);
}

}  // namespace
}  // namespace hypart
