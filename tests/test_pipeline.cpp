#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "codegen/spmd.hpp"
#include "core/error.hpp"
#include "exec/interpreter.hpp"
#include "frontend/parser.hpp"
#include "transform/wavefront.hpp"
#include "workloads/workloads.hpp"

namespace hypart {
namespace {

TEST(Pipeline, L1EndToEnd) {
  PipelineConfig cfg;
  cfg.cube_dim = 1;
  PipelineResult r = run_pipeline(workloads::example_l1(), cfg);
  EXPECT_EQ(r.time_function.pi, (IntVec{1, 1}));
  EXPECT_EQ(r.projected->point_count(), 7u);
  EXPECT_EQ(r.grouping.group_count(), 4u);
  EXPECT_EQ(r.stats.total_arcs, 33u);
  EXPECT_EQ(r.stats.interblock_arcs, 12u);
  EXPECT_TRUE(r.exact_cover);
  EXPECT_TRUE(r.theorem1);
  EXPECT_TRUE(r.theorem2.holds);
  EXPECT_TRUE(r.lemmas.lemma2_holds);
  EXPECT_TRUE(r.lemmas.lemma3_holds);
  EXPECT_GT(r.sim.time, 0.0);
}

TEST(Pipeline, ExplicitTimeFunction) {
  PipelineConfig cfg;
  cfg.time_function = IntVec{2, 1};
  cfg.cube_dim = 1;
  PipelineResult r = run_pipeline(workloads::example_l1(), cfg);
  EXPECT_EQ(r.time_function.pi, (IntVec{2, 1}));
  EXPECT_TRUE(r.exact_cover);
  EXPECT_TRUE(r.theorem1);
}

TEST(Pipeline, InvalidExplicitTimeFunctionThrows) {
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 0};  // Π·(0,1) = 0
  try {
    run_pipeline(workloads::example_l1(), cfg);
    FAIL() << "expected hypart::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Config);
    EXPECT_EQ(e.exit_code(), 78);
  }
}

TEST(Pipeline, SearchBoxTooSmallThrows) {
  PipelineConfig cfg;
  cfg.tf_search.max_coefficient = 0;
  try {
    run_pipeline(workloads::example_l1(), cfg);
    FAIL() << "expected hypart::Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Unsatisfiable);
    EXPECT_EQ(e.exit_code(), 69);
  }
}

TEST(Pipeline, MatvecFlopsDefaultFromBody) {
  PipelineConfig cfg;
  cfg.cube_dim = 2;
  cfg.time_function = IntVec{1, 1};
  PipelineResult r = run_pipeline(workloads::matrix_vector(16), cfg);
  // 2 flops per iteration (multiply + add): compute bottleneck is even.
  EXPECT_EQ(r.sim.compute_bottleneck.calc % 2, 0);
  EXPECT_GT(r.sim.compute_bottleneck.calc, 0);
}

TEST(Pipeline, FlopsOverride) {
  PipelineConfig cfg;
  cfg.cube_dim = 0;
  cfg.time_function = IntVec{1, 1};
  cfg.flops_override = 10;
  PipelineResult r = run_pipeline(workloads::matrix_vector(4), cfg);
  EXPECT_EQ(r.sim.compute_bottleneck.calc, 160);  // 16 iterations * 10
}

TEST(Pipeline, ValidateCanBeDisabled) {
  PipelineConfig cfg;
  cfg.validate = false;
  cfg.cube_dim = 1;
  PipelineResult r = run_pipeline(workloads::example_l1(), cfg);
  EXPECT_FALSE(r.exact_cover);  // untouched defaults
}

TEST(Pipeline, SummaryMentionsKeyNumbers) {
  PipelineConfig cfg;
  cfg.cube_dim = 1;
  PipelineResult r = run_pipeline(workloads::example_l1(), cfg);
  std::string s = r.summary();
  EXPECT_NE(s.find("iterations=16"), std::string::npos);
  EXPECT_NE(s.find("Pi=(1, 1)"), std::string::npos);
  EXPECT_NE(s.find("groups=4"), std::string::npos);
}

TEST(Pipeline, MatmulEndToEnd) {
  PipelineConfig cfg;
  cfg.cube_dim = 2;
  cfg.time_function = IntVec{1, 1, 1};
  PipelineResult r = run_pipeline(workloads::matrix_multiplication(3), cfg);
  EXPECT_EQ(r.projected->point_count(), 37u);
  EXPECT_EQ(r.grouping.group_size_r(), 3);
  EXPECT_TRUE(r.exact_cover);
  EXPECT_TRUE(r.theorem1);
  EXPECT_TRUE(r.theorem2.holds);
  EXPECT_EQ(r.mapping.mapping.processor_count, 4u);
}

TEST(Pipeline, GroupingOptionsForwarded) {
  PipelineConfig cfg;
  cfg.cube_dim = 1;
  cfg.time_function = IntVec{1, 1};
  cfg.grouping.seed_policy = SeedPolicy::ExplicitBases;
  cfg.grouping.explicit_bases = {{1, -1}};  // start the region growing here
  PipelineResult r = run_pipeline(workloads::example_l1(), cfg);
  EXPECT_TRUE(r.exact_cover);
  EXPECT_EQ(r.grouping.group_count(), 4u);
}

TEST(Pipeline, ParsedProgramEndToEnd) {
  // The full pipeline on a textual program, including the wavefront
  // transform and SPMD codegen stages.
  LoopNest wave = parse_loop_nest(R"(
    loop wave {
      for t = 0 to 7
      for x = 1 to 14
      A[t+1, x] = (A[t, x-1] + A[t, x] + A[t, x+1]) / 3;
    }
  )");
  PipelineConfig cfg;
  cfg.cube_dim = 2;
  PipelineResult r = run_pipeline(wave, cfg);
  EXPECT_TRUE(r.exact_cover);
  EXPECT_TRUE(r.theorem1);
  EXPECT_TRUE(r.theorem2.holds);

  // Wavefront transform of the found Π.
  WavefrontTransform wt = make_wavefront_transform(r.time_function);
  EXPECT_EQ(wt.u.row(0), r.time_function.pi);
  auto slices = wavefront_slices(wt, *r.structure);
  std::size_t total = 0;
  for (const auto& [step, pts] : slices) total += pts.size();
  EXPECT_EQ(total, r.structure->vertices().size());

  // SPMD program mentions the parsed statement.
  std::string prog = generate_spmd_program(wave, *r.structure, r.time_function, r.partition,
                                           r.mapping.mapping, r.dependence);
  EXPECT_NE(prog.find("A[t+1, x]"), std::string::npos);

  // And it runs correctly.
  ArrayStore seq = run_sequential(wave);
  DistributedResult dist = run_distributed(wave, *r.structure, r.time_function, r.partition,
                                           r.mapping.mapping, r.dependence);
  EXPECT_TRUE(compare_stores(seq, dist.written).equal);
}

TEST(Pipeline, DeeperWorkloadsRun) {
  PipelineConfig cfg;
  cfg.cube_dim = 3;
  for (const LoopNest& nest :
       {workloads::sor2d(6, 6), workloads::wavefront3d(4), workloads::convolution1d(8, 4)}) {
    PipelineResult r = run_pipeline(nest, cfg);
    EXPECT_TRUE(r.exact_cover) << nest.name();
    EXPECT_TRUE(r.theorem1) << nest.name();
    EXPECT_TRUE(r.theorem2.holds) << nest.name();
  }
}

}  // namespace
}  // namespace hypart
