// hypart JSON parser tests: RFC 8259 conformance of the subset hypart
// writes, error reporting, the writer/reader double round-trip (shortest
// to_chars form must re-parse to the identical bits), and the locale
// regression — numeric formatting/parsing must not bend to a comma-decimal
// global locale like de_DE.
#include "core/json_reader.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdio>
#include <limits>
#include <locale>
#include <string>

#include "core/json_writer.hpp"

namespace {

using hypart::JsonParseError;
using hypart::JsonValue;
using hypart::JsonWriter;
using hypart::parse_json;

TEST(JsonReaderTest, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_EQ(parse_json("42").as_int64(), 42);
  EXPECT_EQ(parse_json("-7").as_int64(), -7);
  EXPECT_DOUBLE_EQ(parse_json("1.5").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(parse_json("-2e3").as_double(), -2000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonReaderTest, IntegersStayIntegers) {
  EXPECT_EQ(parse_json("9223372036854775807").kind(), JsonValue::Kind::Int);
  EXPECT_EQ(parse_json("9223372036854775807").as_int64(),
            std::numeric_limits<std::int64_t>::max());
  // Fractional or exponent forms become doubles; int64 still reads them.
  EXPECT_EQ(parse_json("2.0").kind(), JsonValue::Kind::Double);
  EXPECT_EQ(parse_json("2.0").as_int64(), 2);
}

TEST(JsonReaderTest, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\n\t\r\f\b")").as_string(), "a\"b\\c/d\n\t\r\f\b");
  EXPECT_EQ(parse_json(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonReaderTest, ArraysAndObjects) {
  JsonValue v = parse_json(R"({"a":[1,2,3],"b":{"nested":true},"c":null})");
  ASSERT_TRUE(v.is_object());
  ASSERT_TRUE(v.get("a").is_array());
  EXPECT_EQ(v.get("a").as_array().size(), 3u);
  EXPECT_EQ(v.get("a").as_array()[2].as_int64(), 3);
  EXPECT_TRUE(v.get("b").get("nested").as_bool());
  EXPECT_TRUE(v.get("c").is_null());
  EXPECT_TRUE(v.has("c"));
  EXPECT_FALSE(v.has("d"));
  EXPECT_TRUE(v.get("d").is_null());  // missing-key sentinel
  EXPECT_DOUBLE_EQ(v.number_or("missing", 9.5), 9.5);
  EXPECT_EQ(v.int_or("missing", 3), 3);
  EXPECT_EQ(v.string_or("missing", "dflt"), "dflt");
  EXPECT_TRUE(parse_json("[]").as_array().empty());
  EXPECT_TRUE(parse_json("{}").as_object().empty());
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "01", "1.",
                          "\"unterminated", "\"bad\\q\"", "[1] trailing", "{\"a\" 1}",
                          "[1 2]", "nan", "+1", "\"\\ud83d\""}) {
    EXPECT_THROW((void)parse_json(bad), JsonParseError) << bad;
  }
}

TEST(JsonReaderTest, ParseErrorCarriesOffset) {
  try {
    (void)parse_json("[1, x]");
    FAIL() << "expected JsonParseError";
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 4u);
    EXPECT_NE(std::string(e.what()).find("4"), std::string::npos);
  }
}

TEST(JsonReaderTest, TypeMismatchThrows) {
  EXPECT_THROW((void)parse_json("1").as_string(), std::runtime_error);
  EXPECT_THROW((void)parse_json("\"s\"").as_double(), std::runtime_error);
  EXPECT_THROW((void)parse_json("[]").as_object(), std::runtime_error);
}

TEST(JsonReaderTest, FileHelperReportsErrorsWithoutThrowing) {
  JsonValue out;
  std::string error;
  EXPECT_FALSE(hypart::parse_json_file("/nonexistent/hypart.json", out, error));
  EXPECT_FALSE(error.empty());

  std::string path = testing::TempDir() + "hypart_reader_ok.json";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"x\": 3}", f);
    std::fclose(f);
  }
  error.clear();
  ASSERT_TRUE(hypart::parse_json_file(path, out, error)) << error;
  EXPECT_EQ(out.get("x").as_int64(), 3);
  std::remove(path.c_str());
}

TEST(JsonReaderTest, EveryPrefixTruncationIsRejectedNotCrashed) {
  // Robustness fuzz: a partially written artifact (crashed producer, torn
  // copy) is a strict prefix of a valid document.  Every such prefix must
  // raise JsonParseError — never crash, hang, or parse successfully.
  JsonWriter w;
  w.begin_object();
  w.field("name", "tr\"icky\\\n");
  w.field("int", std::int64_t{-12345});
  w.field("dbl", 6.02214076e23);
  w.begin_array("arr");
  w.value(true);
  w.raw_value("null");
  w.end_array();
  w.end_object();
  const std::string doc = w.str();
  ASSERT_NO_THROW((void)parse_json(doc));
  for (std::size_t cut = 0; cut < doc.size(); ++cut) {
    EXPECT_THROW((void)parse_json(doc.substr(0, cut)), JsonParseError)
        << "prefix of " << cut << " byte(s) parsed: " << doc.substr(0, cut);
  }
}

TEST(JsonReaderTest, MidTokenEofIsRejected) {
  // EOF landing inside a token (not just between tokens) — each of these
  // ends mid-literal, mid-number, mid-escape, or mid-string.
  for (const char* bad :
       {"tr", "fals", "nul", "-", "1e", "1e+", "1.5e-", "\"abc", "\"abc\\", "\"abc\\u",
        "\"abc\\u00", "\"\\ud83d\\ud", "[", "[1", "[1,", "{\"a", "{\"a\"", "{\"a\":",
        "{\"a\":1,", "{\"a\":[{\"b\":"}) {
    EXPECT_THROW((void)parse_json(bad), JsonParseError) << bad;
  }
}

TEST(JsonRoundTripTest, DoublesSurviveWriterReaderExactly) {
  // Shortest-round-trip formatting (to_chars) must re-parse (from_chars)
  // to the identical bit pattern — this is what makes the ledger and the
  // bench baselines diffable at --tolerance 0.
  const double cases[] = {0.0,   1.0,  -1.0,      0.1,       1.0 / 3.0,  6.02214076e23,
                          1e-30, 1e30, 123.456e7, 0.3333333, 2.00000001, 5e-324};
  for (double d : cases) {
    JsonWriter w;
    w.begin_object();
    w.field("v", d);
    w.end_object();
    JsonValue v = parse_json(w.str());
    EXPECT_EQ(v.get("v").as_double(), d) << w.str();
  }
}

TEST(JsonLocaleTest, FormattingIgnoresCommaDecimalLocale) {
  // With a comma-decimal global locale active, printf-family formatting
  // would emit "1,5" — invalid JSON.  to_chars/from_chars are immune; this
  // pins that the writer and reader both stay on that path.
  const char* candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8"};
  std::string previous = std::setlocale(LC_ALL, nullptr);
  const char* applied = nullptr;
  for (const char* cand : candidates)
    if (std::setlocale(LC_ALL, cand) != nullptr) {
      applied = cand;
      break;
    }
  if (applied == nullptr) GTEST_SKIP() << "no comma-decimal locale installed";
  // Sanity: the locale really uses ',' as the decimal separator.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", 1.5);
  const bool comma_locale = std::string(buf).find(',') != std::string::npos;

  JsonWriter w;
  w.begin_object();
  w.field("v", 1.5);
  w.end_object();
  std::string json = w.str();
  JsonValue parsed_ok = parse_json("{\"v\": 1.5}");

  std::setlocale(LC_ALL, previous.c_str());

  if (comma_locale) {
    EXPECT_NE(json.find("1.5"), std::string::npos) << json;
    EXPECT_EQ(json.find(','), std::string::npos) << json;
  }
  EXPECT_DOUBLE_EQ(parsed_ok.get("v").as_double(), 1.5);
}

TEST(JsonReaderTest, RejectsTrailingBytesAfterCompleteValue) {
  // The plan daemon (docs/serve.md) frames its wire protocol as one JSON
  // value per newline-terminated line and parses each stripped line with
  // parse_json.  That framing is only sound if the parser rejects *any*
  // non-whitespace byte after the first complete top-level value — a second
  // concatenated document, a stray delimiter, an embedded NUL — instead of
  // silently ignoring it (a smuggled second request).  This regression
  // test pins that contract for every value kind.
  for (const char* bad : {
           "{\"a\":1}{\"b\":2}",  // two concatenated objects
           "[1,2][3]",            // two concatenated arrays
           "1 2",                 // two numbers, whitespace-separated
           "42x",                 // number with suffix bytes
           "true false",          // two literals
           "null{}",              // literal then object
           "\"a\" \"b\"",         // two strings
           "[1],",                // stray delimiter after value
           "{}]",                 // stray closer after value
       }) {
    EXPECT_THROW((void)parse_json(bad), JsonParseError) << bad;
  }
  // Embedded NUL is not JSON whitespace: trailing "\0" bytes (a torn
  // fixed-size buffer) must be rejected, before or after the value.
  std::string nul_after = "42";
  nul_after += '\0';
  EXPECT_THROW((void)parse_json(nul_after), JsonParseError);
  std::string nul_between = "[1]";
  nul_between += '\0';
  nul_between += "[2]";
  EXPECT_THROW((void)parse_json(nul_between), JsonParseError);
  // Trailing RFC 8259 whitespace (and nothing else) stays legal — the
  // daemon strips the line terminator but tolerates "  {...}  \r".
  EXPECT_EQ(parse_json("42 \t\r\n").as_int64(), 42);
}

TEST(JsonReaderTest, ToJsonIsAFixedPointUnderReparse) {
  // The plan cache stores parsed documents and replays them with
  // JsonValue::to_json(); a cached reply must serialize to the same bytes
  // every time, including doubles (shortest to_chars form re-parses to the
  // identical bits, possibly as Kind::Int — the *bytes* must not drift).
  const std::string src =
      R"({"a":[1,2.5,-3],"b":{"s":"x\ny","t":true,"u":null},"n":9007199254740993,"d":0.1})";
  JsonValue v1 = parse_json(src);
  std::string s1 = v1.to_json();
  JsonValue v2 = parse_json(s1);
  std::string s2 = v2.to_json();
  EXPECT_EQ(s1, s2);
  std::string s3 = parse_json(s2).to_json();
  EXPECT_EQ(s2, s3);
  // Spot-check the content survived.
  EXPECT_EQ(v2.get("a").as_array()[1].as_double(), 2.5);
  EXPECT_EQ(v2.get("b").get("s").as_string(), "x\ny");
  EXPECT_TRUE(v2.get("b").get("u").is_null());
}

TEST(JsonReaderTest, SetBuildsAndOverwritesObjectMembers) {
  JsonValue v;  // starts as null
  v.set("x", JsonValue::make_int(1));
  v.set("y", JsonValue::make_string("s"));
  v.set("x", JsonValue::make_int(2));  // overwrite
  EXPECT_EQ(v.get("x").as_int64(), 2);
  EXPECT_EQ(v.get("y").as_string(), "s");
  EXPECT_EQ(v.to_json(), R"({"x":2,"y":"s"})");
}

TEST(JsonReaderTest, BorrowAccessorsEditInPlace) {
  JsonValue v = parse_json(R"({"deps":[{"array":"A"},{"array":"A"}],"loop":"n"})");
  // In-place rewrite through the mutable borrows: no copy-edit-reinsert.
  for (JsonValue& dep : v.as_object_mut().at("deps").as_array_mut())
    dep.as_object_mut().at("array") = JsonValue::make_string("B");
  v.as_object_mut().at("loop") = JsonValue::make_string("m");
  EXPECT_EQ(v.to_json(), R"({"deps":[{"array":"B"},{"array":"B"}],"loop":"m"})");
  // Kind contract matches the const accessors.
  JsonValue str = JsonValue::make_string("m");
  JsonValue arr = JsonValue::make_array({});
  EXPECT_THROW((void)str.as_array_mut(), std::runtime_error);
  EXPECT_THROW((void)arr.as_object_mut(), std::runtime_error);
}

TEST(JsonReaderTest, TakeMovesMembersOutOfAnObject) {
  JsonValue v = parse_json(R"({"big":[1,2,3],"keep":true})");
  JsonValue big = v.take("big");
  EXPECT_EQ(big.to_json(), "[1,2,3]");
  // The member is gone from the source; other members survive.
  EXPECT_FALSE(v.has("big"));
  EXPECT_TRUE(v.get("keep").as_bool());
  // Missing member / non-object receiver degrade to null, not a throw:
  // callers slice optional document keys without probing first.
  EXPECT_TRUE(v.take("big").is_null());
  JsonValue i = JsonValue::make_int(7);
  EXPECT_TRUE(i.take("x").is_null());
}

TEST(JsonReaderTest, WriteStreamsIntoAnExistingWriter) {
  JsonValue v = parse_json(R"({"a":[1,{"b":"x\ny"}],"d":2.5})");
  JsonWriter w;
  w.begin_object();
  w.key("wrapped");
  v.write(w);
  w.field("tail", std::int64_t{1});
  w.end_object();
  // Splicing through write() produces the same bytes as to_json() pasted
  // into the enclosing document.
  EXPECT_EQ(w.str(), std::string(R"({"wrapped":)") + v.to_json() + R"(,"tail":1})");
}

}  // namespace
