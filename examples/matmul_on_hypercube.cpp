// Matrix multiplication on a hypercube — the paper's Example 2 end to end,
// stage by stage, with explicit control over every choice Algorithm 1
// leaves open (grouping vector, auxiliary vector, seed).
//
//   $ ./example_matmul_on_hypercube [n] [cube_dim]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "mapping/hypercube_map.hpp"
#include "partition/checkers.hpp"
#include "sim/exec_sim.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace hypart;
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 3;  // (n+1)^3 iterations
  const unsigned cube_dim = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 3;

  // Stage 1: loop and dependence analysis.  The natural matmul loop is
  // analyzed directly; the A/B broadcasts and the C reduction chain become
  // the paper's dependence matrix columns (0,1,0), (1,0,0), (0,0,1).
  LoopNest mm = workloads::matrix_multiplication(n);
  ComputationStructure q = ComputationStructure::from_loop(mm);
  std::printf("matmul %lldx%lldx%lld: %zu iterations, D = {", static_cast<long long>(n + 1),
              static_cast<long long>(n + 1), static_cast<long long>(n + 1),
              q.vertices().size());
  for (std::size_t k = 0; k < q.dependences().size(); ++k)
    std::printf("%s%s", k ? ", " : "", to_string(q.dependences()[k]).c_str());
  std::printf("}\n");

  // Stage 2: hyperplane schedule Pi = (1,1,1) (the paper's choice; also the
  // optimum found by search_time_function for this structure).
  TimeFunction tf{{1, 1, 1}};
  ProjectedStructure ps(q, tf);
  std::printf("projected points: %zu, beta = %zu\n", ps.point_count(), ps.projected_rank());

  // Stage 3: grouping.  Pin the paper's choices: grouping vector d_A^p,
  // auxiliary d_C^p (any valid choices work; these reproduce Fig. 6).
  GroupingOptions gopts;
  std::vector<std::size_t> aux;
  for (std::size_t k = 0; k < ps.projected_deps_scaled().size(); ++k) {
    if (ps.projected_deps_scaled()[k] == IntVec{-1, 2, -1}) gopts.grouping_vector = k;
    if (ps.projected_deps_scaled()[k] == IntVec{-1, -1, 2}) aux.push_back(k);
  }
  if (gopts.grouping_vector && !aux.empty()) gopts.auxiliary_vectors = aux;
  Grouping g = Grouping::compute(ps, gopts);
  Partition part = Partition::build(q, g);
  PartitionStats stats = compute_partition_stats(q, part);
  std::printf("r = %lld, groups = %zu, interblock = %zu/%zu\n",
              static_cast<long long>(g.group_size_r()), g.group_count(),
              stats.interblock_arcs, stats.total_arcs);
  std::printf("%s\n", check_theorem2(g).to_string().c_str());

  // Stage 4: map onto the hypercube (Algorithm 2) and simulate.
  TaskInteractionGraph tig = TaskInteractionGraph::from_partition(q, part, g);
  HypercubeMappingResult hm = map_to_hypercube(tig, cube_dim);
  Hypercube cube(cube_dim);
  MappingMetrics metrics = evaluate_mapping(tig, hm.mapping, cube);
  std::printf("mapping onto %s: %s\n", cube.name().c_str(), metrics.to_string().c_str());

  MachineParams machine{1.0, 50.0, 5.0};
  SimOptions opts;
  opts.flops_per_iteration = mm.body_flops();
  SimResult sim = simulate_execution(q, tf, part, hm.mapping, cube, machine, opts);
  double seq = static_cast<double>(q.vertices().size()) *
               static_cast<double>(mm.body_flops()) * machine.t_calc;
  std::printf("simulated T = %s (%.1f units), speedup %.2f on %zu processors\n",
              sim.total.to_string().c_str(), sim.time, seq / sim.time, cube.size());
  return 0;
}
