// Bring your own loop — build a custom stencil nest with LoopNestBuilder,
// let the library find a hyperplane schedule, and inspect the partition.
//
// The loop is a skewed 2-D recurrence that none of the canned workloads
// cover:
//   for t = 0 to T
//     for x = 1 to X
//       S: A[t+1, x] := f(A[t, x-1], A[t, x], A[t, x+1]);
// with dependences (1,-1), (1,0), (1,1) (a classic 1-D wave equation
// update written as a 2-nest).
//
//   $ ./example_stencil_partition [T] [X] [cube_dim]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/pipeline.hpp"
#include "perf/table.hpp"

int main(int argc, char** argv) {
  using namespace hypart;
  const std::int64_t t_steps = argc > 1 ? std::atoll(argv[1]) : 16;
  const std::int64_t x_cells = argc > 2 ? std::atoll(argv[2]) : 32;
  const unsigned cube_dim = argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 3;

  LoopNest wave = LoopNestBuilder("wave1d")
                      .loop("t", 0, t_steps)
                      .loop("x", 1, x_cells)
                      .statement("S", 5)
                      .write("A", {idx(0) + 1, idx(1)})
                      .read("A", {idx(0), idx(1) - 1})
                      .read("A", {idx(0), idx(1)})
                      .read("A", {idx(0), idx(1) + 1})
                      .build();
  std::printf("%s\n", wave.to_string().c_str());

  PipelineConfig cfg;
  cfg.cube_dim = cube_dim;
  // Let the library search for the best small-integer time function instead
  // of supplying one.
  cfg.tf_search.max_coefficient = 3;
  PipelineResult r = run_pipeline(wave, cfg);

  std::printf("dependences:\n");
  for (const Dependence& d : r.dependence.dependences)
    std::printf("  %s\n", d.to_string().c_str());
  std::printf("\nfound Pi = %s (%lld schedule steps)\n", r.time_function.to_string().c_str(),
              static_cast<long long>(r.sim.steps));
  std::printf("r = %lld, blocks = %zu, interblock = %zu/%zu arcs\n",
              static_cast<long long>(r.grouping.group_size_r()), r.grouping.group_count(),
              r.stats.interblock_arcs, r.stats.total_arcs);

  // Distribution of block sizes (how even is the decomposition?).
  std::map<std::size_t, std::size_t> histogram;
  for (const PartitionBlock& b : r.partition.blocks()) ++histogram[b.iterations.size()];
  TextTable t({"block size (iterations)", "count"});
  for (const auto& [size, count] : histogram) t.row(size, count);
  std::printf("%s", t.to_string().c_str());

  std::printf("validation: cover=%s theorem1=%s theorem2=%s lemmas=%s/%s\n",
              r.exact_cover ? "ok" : "FAIL", r.theorem1 ? "ok" : "FAIL",
              r.theorem2.holds ? "ok" : "FAIL", r.lemmas.lemma2_holds ? "ok" : "FAIL",
              r.lemmas.lemma3_holds ? "ok" : "FAIL");
  std::printf("simulated on %zu processors: T = %s\n", r.mapping.mapping.processor_count,
              r.sim.total.to_string().c_str());
  return 0;
}
