// loopc — a miniature parallelizing compiler built on hypart.
//
// Reads a loop nest in the textual language (from a file, or a built-in
// demo program), then:
//   1. analyzes dependences,
//   2. finds a hyperplane time function,
//   3. partitions with Algorithm 1 and maps with Algorithm 2,
//   4. emits the SPMD node program,
//   5. runs the loop BOTH sequentially and under distributed message-
//      passing execution and checks the results agree.
//
//   $ ./example_loopc [source.loop] [cube_dim]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "codegen/spmd.hpp"
#include "core/pipeline.hpp"
#include "exec/interpreter.hpp"
#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "sim/report.hpp"

namespace {

constexpr const char* kDemoProgram = R"(
# Demo: the paper's loop (L1) on an 8x8 domain.
loop demo {
  for i = 0 to 7
  for j = 0 to 7
  S1: A[i+1, j+1] = A[i+1, j] + B[i, j];
  S2: B[i+1, j]   = A[i, j] * 2 + 3;
}
)";

std::string read_file(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "loopc: cannot open '%s'\n", path);
    std::exit(1);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hypart;
  const std::string source = argc > 1 ? read_file(argv[1]) : std::string(kDemoProgram);
  const unsigned cube_dim = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 2;

  LoopNest nest = [&] {
    try {
      return parse_loop_nest(source);
    } catch (const ParseError& e) {
      std::fprintf(stderr, "loopc: %s\n", e.what());
      std::exit(1);
    }
  }();

  std::printf("=== parsed loop nest ===\n%s\n", nest.to_string().c_str());

  PipelineConfig cfg;
  cfg.cube_dim = cube_dim;
  PipelineResult r = run_pipeline(nest, cfg);

  std::printf("=== analysis ===\n");
  for (const Dependence& d : r.dependence.dependences)
    std::printf("  %s\n", d.to_string().c_str());
  std::printf("Pi = %s, %zu blocks on %zu processors, interblock %zu/%zu arcs\n\n",
              r.time_function.to_string().c_str(), r.partition.block_count(),
              r.mapping.mapping.processor_count, r.stats.interblock_arcs, r.stats.total_arcs);

  std::printf("=== SPMD node program ===\n%s\n",
              generate_spmd_program(nest, *r.structure, r.time_function, r.partition,
                                    r.mapping.mapping, r.dependence)
                  .c_str());

  std::printf("=== processor 0 trace (first lines) ===\n%s\n",
              generate_processor_trace(nest, *r.structure, r.time_function, r.partition,
                                       r.mapping.mapping, r.dependence, 0, 24)
                  .c_str());

  UtilizationReport util = processor_utilization(*r.structure, r.time_function, r.partition,
                                                 r.mapping.mapping);
  std::printf("=== processor utilization ===\n%smean %.0f%%\n\n", util.gantt.c_str(),
              util.mean_utilization * 100.0);

  std::printf("=== execution check ===\n");
  ArrayStore seq = run_sequential(nest);
  DistributedResult dist = run_distributed(nest, *r.structure, r.time_function, r.partition,
                                           r.mapping.mapping, r.dependence);
  EquivalenceReport eq = compare_stores(seq, dist.written);
  std::printf("distributed == sequential over %zu written elements: %s\n", eq.compared,
              eq.equal ? "YES" : ("NO — " + eq.first_mismatch).c_str());
  std::printf("value messages: %lld, halo loads: %lld, steps: %lld\n",
              static_cast<long long>(dist.stats.value_messages),
              static_cast<long long>(dist.stats.halo_loads),
              static_cast<long long>(dist.stats.steps));
  std::printf("simulated cost: %s\n", r.sim.total.to_string().c_str());
  return eq.equal ? 0 : 2;
}
