// Matrix-vector multiplication — regenerate the paper's Table I from the
// command line for any M, both from the closed form and from the full
// pipeline + simulator.
//
//   $ ./example_matvec_table1 [M] [max_cube_dim]
#include <cstdio>
#include <cstdlib>

#include "core/pipeline.hpp"
#include "perf/perf_model.hpp"
#include "perf/table.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace hypart;
  const std::int64_t m = argc > 1 ? std::atoll(argv[1]) : 128;
  const unsigned max_dim = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 5;

  std::printf("T_exec(N) for matrix-vector multiplication, M = %lld\n",
              static_cast<long long>(m));

  MachineParams machine{1.0, 50.0, 5.0};
  TextTable t({"N", "closed form", "simulated (full pipeline)", "match", "speedup"});
  PipelineConfig cfg;
  cfg.time_function = IntVec{1, 1};
  cfg.machine = machine;

  double seq = static_cast<double>(2 * m * m) * machine.t_calc;
  for (unsigned dim = 0; dim <= max_dim && (std::int64_t{1} << dim) <= m; ++dim) {
    std::int64_t n = std::int64_t{1} << dim;
    Cost closed = perf::matvec_exec_time(m, n);
    cfg.cube_dim = dim;
    PipelineResult r = run_pipeline(workloads::matrix_vector(m), cfg);
    t.row("N = " + std::to_string(n), closed.to_string(), r.sim.total.to_string(),
          r.sim.total == closed ? "YES" : "NO", seq / r.sim.time);
  }
  std::printf("%s", t.to_string().c_str());

  std::printf("\nPaper's Table I (M = 1024), closed form:\n");
  TextTable p({"N", "T_exec(N)"});
  for (std::int64_t n : {1, 4, 16, 64, 256, 1024})
    p.row("N = " + std::to_string(n), perf::matvec_exec_time(1024, n).to_string());
  std::printf("%s", p.to_string().c_str());
  std::printf("\nNote the N-invariant communication term: the main diagonal of the\n"
              "computational structure always sits on a processor boundary, so the\n"
              "heaviest channel carries 2(M-1) one-word messages regardless of N.\n");
  return 0;
}
