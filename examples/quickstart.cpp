// Quickstart — partition and map your first nested loop.
//
// Takes the paper's loop (L1), runs the whole pipeline in one call, and
// prints what each stage produced.  Start here.
//
//   $ ./example_quickstart
#include <cstdio>

#include "core/pipeline.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace hypart;

  // 1. Describe the loop nest.  This is the paper's loop (L1):
  //      for i = 0 to 3
  //        for j = 0 to 3
  //          S1: A[i+1,j+1] := A[i+1,j] + B[i,j];
  //          S2: B[i+1,j]   := A[i,j] * 2 + C;
  // (you could also write your own with LoopNestBuilder — see
  //  examples/stencil_partition.cpp).
  LoopNest loop = workloads::example_l1();
  std::printf("Input loop nest:\n%s\n", loop.to_string().c_str());

  // 2. Configure the pipeline: a 2-cube (4 processors) and the default
  //    machine constants (message startup far above per-flop cost).
  PipelineConfig config;
  config.cube_dim = 2;

  // 3. Run: dependence analysis -> hyperplane schedule -> projection ->
  //    grouping (Algorithm 1) -> blocks -> TIG -> Gray-code hypercube
  //    mapping (Algorithm 2) -> simulated execution.
  PipelineResult result = run_pipeline(loop, config);

  // 4. Inspect each stage.
  std::printf("Dependence vectors:\n");
  for (const Dependence& d : result.dependence.dependences)
    std::printf("  %s\n", d.to_string().c_str());

  std::printf("\nTime function Pi = %s (schedule: %lld steps)\n",
              result.time_function.to_string().c_str(),
              static_cast<long long>(result.sim.steps));

  std::printf("Projected points: %zu, group size r = %lld, groups/blocks: %zu\n",
              result.projected->point_count(),
              static_cast<long long>(result.grouping.group_size_r()),
              result.grouping.group_count());

  std::printf("Communication: %zu of %zu dependence pairs cross blocks (%.1f%%)\n",
              result.stats.interblock_arcs, result.stats.total_arcs,
              100.0 * result.stats.interblock_fraction());

  std::printf("\nBlock -> processor (N = %zu):\n", result.mapping.mapping.processor_count);
  for (std::size_t b = 0; b < result.mapping.mapping.block_to_proc.size(); ++b)
    std::printf("  block %zu (%zu iterations) -> processor %llu\n", b,
                result.partition.blocks()[b].iterations.size(),
                static_cast<unsigned long long>(result.mapping.mapping.block_to_proc[b]));

  std::printf("\nSimulated execution: T = %s  (= %.1f time units)\n",
              result.sim.total.to_string().c_str(), result.sim.time);

  std::printf("\nValidation: cover=%s, Theorem1=%s, %s\n",
              result.exact_cover ? "ok" : "FAIL", result.theorem1 ? "ok" : "FAIL",
              result.theorem2.to_string().c_str());
  return 0;
}
