// Compare block-to-processor mappings — Algorithm 2 vs the baselines, on a
// workload of your choice, across machine sizes and topologies.
//
//   $ ./example_compare_mappings [M]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "mapping/baseline_map.hpp"
#include "mapping/hypercube_map.hpp"
#include "perf/table.hpp"
#include "sim/exec_sim.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace hypart;
  const std::int64_t m = argc > 1 ? std::atoll(argv[1]) : 48;

  auto q = std::make_unique<ComputationStructure>(
      ComputationStructure::from_loop(workloads::matrix_vector(m)));
  TimeFunction tf{{1, 1}};
  ProjectedStructure ps(*q, tf);
  Grouping g = Grouping::compute(ps);
  Partition part = Partition::build(*q, g);
  TaskInteractionGraph tig = TaskInteractionGraph::from_partition(*q, part, g);
  std::printf("matvec M=%lld: %zu blocks, %lld interblock words\n",
              static_cast<long long>(m), tig.vertex_count(),
              static_cast<long long>(tig.total_comm()));

  MachineParams machine{1.0, 50.0, 5.0};
  SimOptions sim_opts;
  sim_opts.accounting = CommAccounting::PerStepBarrier;
  sim_opts.charge_hops = true;
  sim_opts.flops_per_iteration = 2;

  for (unsigned dim : {2u, 3u, 4u}) {
    Hypercube cube(dim);
    std::printf("\n--- %s ---\n", cube.name().c_str());
    TextTable t({"mapping", "comm cost", "avg hops", "max load", "simulated T"});
    auto add = [&](const Mapping& map) {
      MappingMetrics met = evaluate_mapping(tig, map, cube);
      SimResult r = simulate_execution(*q, tf, part, map, cube, machine, sim_opts);
      t.row(map.method, met.total_comm_cost, met.avg_hops_weighted, met.max_proc_compute,
            r.time);
    };
    add(map_to_hypercube(tig, dim).mapping);
    add(map_contiguous(tig, cube.size()));
    add(map_round_robin(tig, cube.size()));
    add(map_random(tig, cube.size(), 99));
    add(refine_greedy_swap(tig, map_random(tig, cube.size(), 99), cube));
    std::printf("%s", t.to_string().c_str());
  }

  std::printf(
      "\nReading: Gray bisection keeps all traffic on neighbor links (avg hops\n"
      "= 1) and matches the contiguous mapping's load balance; random and\n"
      "round-robin placements pay multi-hop penalties that greedy swapping\n"
      "only partially repairs.\n");
  return 0;
}
