#include "schedule/hyperplane.hpp"

#include <algorithm>
#include <stdexcept>

namespace hypart {

bool is_valid_time_function(const TimeFunction& tf, const std::vector<IntVec>& dependences) {
  if (tf.pi.empty()) return false;
  if (is_zero(tf.pi)) return false;
  return std::all_of(dependences.begin(), dependences.end(),
                     [&](const IntVec& d) { return dot(tf.pi, d) > 0; });
}

ScheduleProfile profile_schedule(const TimeFunction& tf, const std::vector<IntVec>& points) {
  ScheduleProfile p;
  if (points.empty()) return p;
  for (const IntVec& x : points) ++p.points_per_step[tf.step_of(x)];
  p.first_step = p.points_per_step.begin()->first;
  p.last_step = p.points_per_step.rbegin()->first;
  p.step_count = p.points_per_step.size();
  for (const auto& [step, count] : p.points_per_step)
    p.max_parallelism = std::max(p.max_parallelism, count);
  return p;
}

namespace {

/// Enumerate all integer vectors in the box, skipping zero (odometer walk).
template <typename F>
void for_each_candidate(std::size_t dim, std::int64_t bound, bool nonnegative, F&& f) {
  const std::int64_t lo = nonnegative ? 0 : -bound;
  IntVec v(dim, lo);
  while (true) {
    if (!is_zero(v)) f(v);
    std::size_t k = dim;
    while (k > 0 && v[k - 1] == bound) {
      v[k - 1] = lo;
      --k;
    }
    if (k == 0) return;
    ++v[k - 1];
  }
}

}  // namespace

std::optional<TimeFunction> search_time_function(const ComputationStructure& q,
                                                 const TimeFunctionSearchOptions& opts) {
  std::optional<TimeFunction> best;
  std::int64_t best_span = 0;
  std::int64_t best_norm = 0;

  for_each_candidate(q.dimension(), opts.max_coefficient, opts.nonnegative_only,
                     [&](const IntVec& cand) {
    TimeFunction tf{cand};
    if (!is_valid_time_function(tf, q.dependences())) return;
    // Span can be computed from extremes without a full profile.
    std::int64_t lo = INT64_MAX, hi = INT64_MIN;
    for (const IntVec& x : q.vertices()) {
      std::int64_t s = tf.step_of(x);
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    std::int64_t span = hi - lo + 1;
    std::int64_t norm = tf.norm2();
    if (!best || span < best_span || (span == best_span && norm < best_norm) ||
        (span == best_span && norm == best_norm && cand < best->pi)) {
      best = tf;
      best_span = span;
      best_norm = norm;
    }
  });
  return best;
}

std::optional<TimeFunction> search_time_function(const IterSpace& space,
                                                 const TimeFunctionSearchOptions& opts) {
  if (space.empty()) return std::nullopt;
  std::optional<TimeFunction> best;
  std::int64_t best_span = 0;
  std::int64_t best_norm = 0;

  for_each_candidate(space.dimension(), opts.max_coefficient, opts.nonnegative_only,
                     [&](const IntVec& cand) {
    TimeFunction tf{cand};
    if (!is_valid_time_function(tf, space.dependences())) return;
    std::int64_t span = space.max_step(cand) - space.min_step(cand) + 1;
    std::int64_t norm = tf.norm2();
    if (!best || span < best_span || (span == best_span && norm < best_norm) ||
        (span == best_span && norm == best_norm && cand < best->pi)) {
      best = tf;
      best_span = span;
      best_norm = norm;
    }
  });
  return best;
}

TimeFunction uniform_time_function(const std::vector<IntVec>& dependences, std::size_t dim) {
  TimeFunction tf{IntVec(dim, 1)};
  if (!is_valid_time_function(tf, dependences))
    throw std::invalid_argument(
        "uniform_time_function: Pi = (1,...,1) is not valid for these dependences");
  return tf;
}

}  // namespace hypart
