// hypart — Lamport's hyperplane method (time transformation).
//
// A linear time function Π schedules iteration x at step Π·x; it is valid
// iff Π·d > 0 for every dependence vector d (paper Section II).  All points
// on one hyperplane Π·x = c are independent and execute simultaneously.
// This module validates time functions, evaluates schedule length over an
// index set, and searches for an optimal small-integer Π.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "graph/comp_structure.hpp"
#include "loop/iter_space.hpp"
#include "numeric/int_linalg.hpp"

namespace hypart {

/// A linear schedule Π (integer row vector).
struct TimeFunction {
  IntVec pi;

  [[nodiscard]] std::size_t dimension() const { return pi.size(); }
  /// Execution step of index point x (the hyperplane containing it).
  [[nodiscard]] std::int64_t step_of(const IntVec& x) const { return dot(pi, x); }
  /// Π·Π, the scaling constant used by exact projection.
  [[nodiscard]] std::int64_t norm2() const { return dot(pi, pi); }

  [[nodiscard]] std::string to_string() const { return hypart::to_string(pi); }
};

/// True iff Π·d > 0 for every dependence vector in D.
bool is_valid_time_function(const TimeFunction& tf, const std::vector<IntVec>& dependences);

/// Summary of the schedule a time function induces on a vertex set.
struct ScheduleProfile {
  std::int64_t first_step = 0;
  std::int64_t last_step = 0;
  std::size_t step_count = 0;      ///< number of distinct non-empty steps
  std::size_t max_parallelism = 0; ///< largest hyperplane population
  std::map<std::int64_t, std::size_t> points_per_step;

  /// Schedule length (steps spanned, inclusive).
  [[nodiscard]] std::int64_t span() const { return last_step - first_step + 1; }
};

ScheduleProfile profile_schedule(const TimeFunction& tf, const std::vector<IntVec>& points);

struct TimeFunctionSearchOptions {
  std::int64_t max_coefficient = 3;  ///< search box |pi_k| <= max_coefficient
  bool nonnegative_only = false;     ///< restrict to pi_k >= 0
};

/// Exhaustively search the small-integer box for the Π minimizing schedule
/// span over the given vertex set (ties: smaller Π·Π, then lexicographic).
/// Returns nullopt if no valid Π exists in the box.
std::optional<TimeFunction> search_time_function(const ComputationStructure& q,
                                                 const TimeFunctionSearchOptions& opts = {});

/// Symbolic variant: identical candidate order and tie-breaks, but the span
/// is evaluated at slab corners (a linear functional's extremes on a box,
/// minimized/maximized over the slabs), so the search is
/// O(candidates · slabs · dim) — it returns exactly the Π the dense search
/// finds for the same space.
std::optional<TimeFunction> search_time_function(const IterSpace& space,
                                                 const TimeFunctionSearchOptions& opts = {});

/// The all-ones time function (the paper uses Π = (1,..,1) throughout);
/// throws if it is invalid for the given dependences.
TimeFunction uniform_time_function(const std::vector<IntVec>& dependences, std::size_t dim);

}  // namespace hypart
