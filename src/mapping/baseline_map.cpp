#include "mapping/baseline_map.hpp"

#include <random>
#include <stdexcept>

namespace hypart {

namespace {
void require_procs(std::size_t processors) {
  if (processors == 0) throw std::invalid_argument("mapping: zero processors");
}
}  // namespace

Mapping map_round_robin(const TaskInteractionGraph& tig, std::size_t processors) {
  require_procs(processors);
  Mapping m;
  m.processor_count = processors;
  m.method = "round-robin";
  m.block_to_proc.resize(tig.vertex_count());
  for (std::size_t b = 0; b < tig.vertex_count(); ++b) m.block_to_proc[b] = b % processors;
  return m;
}

Mapping map_contiguous(const TaskInteractionGraph& tig, std::size_t processors) {
  require_procs(processors);
  Mapping m;
  m.processor_count = processors;
  m.method = "contiguous";
  const std::size_t n = tig.vertex_count();
  m.block_to_proc.resize(n);
  // Distribute as evenly as possible: first (n mod P) processors get one extra.
  const std::size_t base = n / processors;
  const std::size_t extra = n % processors;
  std::size_t b = 0;
  for (std::size_t p = 0; p < processors && b < n; ++p) {
    std::size_t take = base + (p < extra ? 1 : 0);
    for (std::size_t k = 0; k < take && b < n; ++k) m.block_to_proc[b++] = p;
  }
  return m;
}

Mapping map_random(const TaskInteractionGraph& tig, std::size_t processors, std::uint64_t seed) {
  require_procs(processors);
  Mapping m;
  m.processor_count = processors;
  m.method = "random";
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> dist(0, processors - 1);
  m.block_to_proc.resize(tig.vertex_count());
  for (std::size_t b = 0; b < tig.vertex_count(); ++b) m.block_to_proc[b] = dist(rng);
  return m;
}

Mapping refine_greedy_swap(const TaskInteractionGraph& tig, Mapping start, const Topology& topo,
                           std::size_t max_passes) {
  if (start.block_to_proc.size() != tig.vertex_count())
    throw std::invalid_argument("refine_greedy_swap: mapping size mismatch");

  // Incremental cost of one vertex: sum over incident edges of weight*hops.
  std::vector<std::vector<std::pair<std::size_t, std::int64_t>>> adj(tig.vertex_count());
  for (const auto& [e, w] : tig.edges()) {
    adj[e.first].emplace_back(e.second, w);
    adj[e.second].emplace_back(e.first, w);
  }
  auto vertex_cost = [&](std::size_t v, ProcId at) {
    std::int64_t c = 0;
    for (const auto& [u, w] : adj[v])
      c += w * static_cast<std::int64_t>(topo.distance(at, start.block_to_proc[u]));
    return c;
  };

  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    for (std::size_t a = 0; a < tig.vertex_count(); ++a) {
      for (std::size_t b = a + 1; b < tig.vertex_count(); ++b) {
        ProcId pa = start.block_to_proc[a];
        ProcId pb = start.block_to_proc[b];
        if (pa == pb) continue;
        std::int64_t before = vertex_cost(a, pa) + vertex_cost(b, pb);
        // Cost after swapping; the a<->b edge (if any) contributes the same
        // distance both times, so the comparison stays exact.
        start.block_to_proc[a] = pb;
        start.block_to_proc[b] = pa;
        std::int64_t after = vertex_cost(a, pb) + vertex_cost(b, pa);
        if (after < before) {
          improved = true;
        } else {
          start.block_to_proc[a] = pa;  // revert
          start.block_to_proc[b] = pb;
        }
      }
    }
    if (!improved) break;
  }
  start.method += "+greedy-swap";
  return start;
}

}  // namespace hypart
