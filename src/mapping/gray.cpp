#include "mapping/gray.hpp"

#include <bit>
#include <stdexcept>

namespace hypart {

std::uint64_t gray_encode(std::uint64_t i) { return i ^ (i >> 1); }

std::uint64_t gray_decode(std::uint64_t g) {
  // Parallel-prefix XOR: bit k of the decode is the XOR of bits k..63 of g.
  // Six fixed XOR-shift folds cover all 64 bits — branch- and loop-free,
  // constant instruction count regardless of operand width.
  std::uint64_t i = g;
  i ^= i >> 1;
  i ^= i >> 2;
  i ^= i >> 4;
  i ^= i >> 8;
  i ^= i >> 16;
  i ^= i >> 32;
  return i;
}

unsigned popcount64(std::uint64_t x) { return static_cast<unsigned>(std::popcount(x)); }

bool is_power_of_two(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

unsigned log2_floor(std::uint64_t x) {
  if (x == 0) throw std::invalid_argument("log2_floor(0)");
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

unsigned log2_exact(std::uint64_t x) {
  if (!is_power_of_two(x)) throw std::invalid_argument("log2_exact: not a power of two");
  return log2_floor(x);
}

std::uint64_t concat_gray(const std::vector<std::uint64_t>& ranks,
                          const std::vector<unsigned>& bits) {
  if (ranks.size() != bits.size())
    throw std::invalid_argument("concat_gray: ranks/bits size mismatch");
  std::uint64_t code = 0;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    std::uint64_t g = gray_encode(ranks[i]);
    if (bits[i] < 64 && g >= (1ULL << bits[i]))
      throw std::invalid_argument("concat_gray: rank does not fit in its bit budget");
    code = (code << bits[i]) | g;
  }
  return code;
}

std::vector<std::uint64_t> gray_sequence(unsigned n) {
  if (n >= 63) throw std::invalid_argument("gray_sequence: n too large");
  std::vector<std::uint64_t> seq(1ULL << n);
  for (std::uint64_t i = 0; i < seq.size(); ++i) seq[i] = gray_encode(i);
  return seq;
}

}  // namespace hypart
