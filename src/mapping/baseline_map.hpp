// hypart — baseline block-to-processor mappings for ablation studies.
//
// Algorithm 2 is compared against topology-oblivious placements (random,
// round-robin, contiguous) and a greedy pairwise-swap refinement that
// approximates classic task-allocation heuristics (paper Section IV cites
// Sadayappan & Ercal's nearest-neighbor mapping as the family of
// techniques the clusters could be handed to).
#pragma once

#include <cstdint>

#include "mapping/tig.hpp"
#include "topology/topology.hpp"

namespace hypart {

/// Block b -> processor (b mod N).
Mapping map_round_robin(const TaskInteractionGraph& tig, std::size_t processors);

/// Contiguous slabs of block ids per processor (row-major block mapping).
Mapping map_contiguous(const TaskInteractionGraph& tig, std::size_t processors);

/// Uniform random placement (deterministic for a given seed).
Mapping map_random(const TaskInteractionGraph& tig, std::size_t processors, std::uint64_t seed);

/// Greedy hill climbing: repeatedly swap the processor assignments of two
/// blocks when doing so lowers `weight * hops` total communication cost;
/// runs at most `max_passes` full passes.  Refines any starting mapping.
Mapping refine_greedy_swap(const TaskInteractionGraph& tig, Mapping start, const Topology& topo,
                           std::size_t max_passes = 4);

}  // namespace hypart
