// hypart — Algorithm 2: mapping partitioned blocks onto hypercubes.
//
// Phase I (cluster formation): recursively bisect the TIG n times, cycling
// through the grouping/auxiliary lattice directions, so neighboring blocks
// stay together.  Phase II (cluster allocation): number clusters with
// per-direction Gray codes and place each cluster on the processor with the
// same binary number — clusters adjacent along a direction land on
// hypercube neighbors.
#pragma once

#include <cstdint>
#include <vector>

#include "mapping/tig.hpp"
#include "obs/obs.hpp"
#include "topology/topology.hpp"

namespace hypart {

struct Cluster {
  std::vector<std::size_t> vertices;    ///< TIG vertex (block) ids
  std::vector<std::uint64_t> ranks;     ///< interval rank along each direction
  ProcId processor = 0;                 ///< assigned hypercube node
};

struct HypercubeMappingResult {
  Mapping mapping;                      ///< block -> processor
  std::vector<Cluster> clusters;        ///< one per processor (2^n of them)
  std::vector<unsigned> bits_per_direction;  ///< the paper's p_i, sum = n
  std::size_t directions_used = 0;      ///< the paper's m
};

struct HypercubeMapOptions {
  /// Split clusters at the *compute-weighted* median instead of the count
  /// median (the paper's Phase I divides into "two equal size" halves by
  /// block count; blocks carry unequal iteration counts — e.g. matvec's
  /// diagonal block — so weighted splitting trades count balance for load
  /// balance).  Extension beyond the paper; defaults off to reproduce it.
  bool weighted = false;
  /// Optional tracing/metrics hooks: per-bisection-level spans on the wall
  /// clock (pid kPipelinePid, tid kMappingTid) and cluster/direction counters.
  obs::ObsContext obs{};
};

/// Run Algorithm 2 for an n-dimensional hypercube.  The TIG's vertex
/// coordinates define the bisection directions Ω (for partitions produced
/// by Algorithm 1 these are the group-lattice coordinates along the
/// grouping and auxiliary vectors); a TIG without coordinates is bisected
/// along vertex order.
HypercubeMappingResult map_to_hypercube(const TaskInteractionGraph& tig, unsigned cube_dim,
                                        const HypercubeMapOptions& options = {});

}  // namespace hypart
