// hypart — Algorithm 2: mapping partitioned blocks onto hypercubes.
//
// Phase I (cluster formation): recursively bisect the TIG n times, cycling
// through the grouping/auxiliary lattice directions, so neighboring blocks
// stay together.  Phase II (cluster allocation): number clusters with
// per-direction Gray codes and place each cluster on the processor with the
// same binary number — clusters adjacent along a direction land on
// hypercube neighbors.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mapping/tig.hpp"
#include "obs/obs.hpp"
#include "partition/group_lattice.hpp"
#include "topology/topology.hpp"

namespace hypart {

struct Cluster {
  std::vector<std::size_t> vertices;    ///< TIG vertex (block) ids
  std::vector<std::uint64_t> ranks;     ///< interval rank along each direction
  ProcId processor = 0;                 ///< assigned hypercube node
};

struct HypercubeMappingResult {
  Mapping mapping;                      ///< block -> processor
  std::vector<Cluster> clusters;        ///< one per processor (2^n of them)
  std::vector<unsigned> bits_per_direction;  ///< the paper's p_i, sum = n
  std::size_t directions_used = 0;      ///< the paper's m
};

struct HypercubeMapOptions {
  /// Split clusters at the *compute-weighted* median instead of the count
  /// median (the paper's Phase I divides into "two equal size" halves by
  /// block count; blocks carry unequal iteration counts — e.g. matvec's
  /// diagonal block — so weighted splitting trades count balance for load
  /// balance).  Extension beyond the paper; defaults off to reproduce it.
  bool weighted = false;
  /// Optional tracing/metrics hooks: per-bisection-level spans on the wall
  /// clock (pid kPipelinePid, tid kMappingTid) and cluster/direction counters.
  obs::ObsContext obs{};
};

/// Run Algorithm 2 for an n-dimensional hypercube.  The TIG's vertex
/// coordinates define the bisection directions Ω (for partitions produced
/// by Algorithm 1 these are the group-lattice coordinates along the
/// grouping and auxiliary vectors); a TIG without coordinates is bisected
/// along vertex order.
HypercubeMappingResult map_to_hypercube(const TaskInteractionGraph& tig, unsigned cube_dim,
                                        const HypercubeMapOptions& options = {});

/// Closed-form Algorithm 2 on a GroupLattice.
///
/// Chain layouts: the lattice's groups are already in the dense mapper's
/// deterministic sort order (ascending (a, component); lexicographic point
/// order when degenerate — the single bisection direction makes the dense
/// per-level sort a static total order), so Phase I's recursive ceil-halving
/// reduces to 2^cube_dim interval boundaries over the sorted index space and
/// Phase II to one Gray encode per cluster.  O(2^cube_dim) time and memory
/// (O(groups) extra in `weighted` mode, which needs population prefix sums).
///
/// Plane layouts (β = 2): the dense mapper alternates bisection directions
/// (a at even levels, b at odd), so clusters are not sorted-index intervals;
/// they are unions of per-aux-chain a-intervals ("fragments", at most one
/// per b per cluster — both split kinds preserve this).  Phase I bisects the
/// fragment lists directly and the result is a CSR fragment index mapping
/// (a, b) -> processor in O(log) — `frag_*` below, empty for chains.
/// `weighted` plane mapping is not closed-form (the dense order re-sorts per
/// level); the builder throws std::invalid_argument, callers fall back.
struct LatticeHypercubeMapping {
  /// Chain layouts: 2^cube_dim + 1 ascending cuts — cluster of rank q holds
  /// the sorted group indices [boundaries[q], boundaries[q+1]); empty
  /// clusters persist, as in the dense mapper.  Empty for plane layouts.
  std::vector<std::uint64_t> boundaries;
  std::vector<ProcId> cluster_processor;  ///< rank -> Gray-coded hypercube node
  unsigned cube_dim = 0;
  std::size_t processor_count = 0;
  std::size_t directions_used = 0;  ///< the paper's m
  std::vector<unsigned> bits_per_direction;  ///< the paper's p_i, sum = cube_dim
  std::string method = "gray-bisection";

  /// Plane layouts: per-aux-chain (a_lo, processor) runs in CSR form.  Chain
  /// b = frag_b[i] owns runs [frag_off[i], frag_off[i+1]); a group (a, b)
  /// belongs to the last run of its chain with a_lo <= a.
  std::vector<std::int64_t> frag_b;                        ///< ascending, unique
  std::vector<std::size_t> frag_off;                       ///< size frag_b.size() + 1
  std::vector<std::pair<std::int64_t, ProcId>> frag_runs;  ///< ascending a_lo per chain

  /// Processor of the group at sorted index k (chain layouts only);
  /// O(log processor_count).
  [[nodiscard]] ProcId proc_of_sorted_index(std::uint64_t k) const;
  /// Processor of a group in either layout; O(log) — the simulator's and
  /// remapper's per-line query.
  [[nodiscard]] ProcId proc_of_group(const GroupLattice& lattice,
                                     const GroupLattice::GroupKey& g) const;
  /// Sorted-index interval [first, last) of cluster `rank` (chain layouts).
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> cluster_range(std::uint64_t rank) const {
    return {boundaries[rank], boundaries[rank + 1]};
  }
};

LatticeHypercubeMapping map_to_hypercube(const GroupLattice& lattice, unsigned cube_dim,
                                         const HypercubeMapOptions& options = {});

}  // namespace hypart
