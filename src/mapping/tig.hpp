// hypart — Task Interaction Graph model (paper Section IV, ref [19]).
//
// Vertices are partitioned blocks; undirected edges carry the communication
// volume between blocks; vertices carry compute weights (iteration counts)
// and, when produced by Algorithm 1, their group-lattice coordinates, which
// Algorithm 2's cluster formation bisects along.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "partition/blocks.hpp"
#include "topology/topology.hpp"

namespace hypart {

class TaskInteractionGraph {
 public:
  TaskInteractionGraph() = default;
  explicit TaskInteractionGraph(std::size_t vertices) : compute_(vertices, 1) {}

  /// Build from a partition: edge weights are interblock dependence-pair
  /// counts, vertex weights are block iteration counts, coordinates are the
  /// group-lattice coordinates recorded during region growing.
  static TaskInteractionGraph from_partition(const ComputationStructure& q, const Partition& p,
                                             const Grouping& grouping);

  /// Build the same TIG in closed form from a symbolic iteration space
  /// (rectangular or affine/slab-decomposed, docs/affine-spaces.md):
  /// vertex weights are summed line populations, edge weights are
  /// line-bundle arc counts (partition/symbolic.hpp) — no points touched.
  static TaskInteractionGraph from_symbolic(const IterSpace& space, const Grouping& grouping);

  /// A w x h mesh-like TIG with unit edge weights (the paper's Fig. 8(a));
  /// vertex (x, y) has coordinates {x, y}.
  static TaskInteractionGraph mesh(std::size_t width, std::size_t height,
                                   std::int64_t edge_weight = 1);

  [[nodiscard]] std::size_t vertex_count() const { return compute_.size(); }

  void set_compute_weight(std::size_t v, std::int64_t w);
  [[nodiscard]] std::int64_t compute_weight(std::size_t v) const { return compute_.at(v); }
  [[nodiscard]] std::int64_t total_compute() const;

  /// Add (accumulate) undirected communication weight between u and v.
  void add_comm(std::size_t u, std::size_t v, std::int64_t weight);
  [[nodiscard]] std::int64_t comm_weight(std::size_t u, std::size_t v) const;
  [[nodiscard]] const std::map<std::pair<std::size_t, std::size_t>, std::int64_t>& edges() const {
    return edges_;
  }
  [[nodiscard]] std::int64_t total_comm() const;

  void set_coordinates(std::size_t v, IntVec coords);
  [[nodiscard]] const std::optional<IntVec>& coordinates(std::size_t v) const;
  [[nodiscard]] bool has_coordinates() const;
  [[nodiscard]] std::size_t coordinate_dimensions() const;

 private:
  std::vector<std::int64_t> compute_;
  std::map<std::pair<std::size_t, std::size_t>, std::int64_t> edges_;  // key: (min,max)
  std::vector<std::optional<IntVec>> coords_;
};

/// An assignment of TIG vertices to processors.
struct Mapping {
  std::vector<ProcId> block_to_proc;
  std::size_t processor_count = 0;
  std::string method;

  [[nodiscard]] std::vector<std::vector<std::size_t>> blocks_per_proc() const;
};

/// Quality metrics of a mapping on a topology.
struct MappingMetrics {
  std::int64_t total_comm_cost = 0;    ///< sum over edges: weight * hops
  std::int64_t cut_comm_volume = 0;    ///< sum over edges crossing processors
  double avg_hops_weighted = 0.0;      ///< comm-weighted mean hop distance
  std::int64_t max_proc_compute = 0;   ///< bottleneck compute load
  double compute_imbalance = 0.0;      ///< max/mean processor load
  std::size_t used_processors = 0;

  [[nodiscard]] std::string to_string() const;
};

MappingMetrics evaluate_mapping(const TaskInteractionGraph& tig, const Mapping& mapping,
                                const Topology& topo);

}  // namespace hypart
