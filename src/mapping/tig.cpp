#include "mapping/tig.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "partition/symbolic.hpp"

namespace hypart {

TaskInteractionGraph TaskInteractionGraph::from_partition(const ComputationStructure& q,
                                                          const Partition& p,
                                                          const Grouping& grouping) {
  TaskInteractionGraph tig(p.block_count());
  for (std::size_t b = 0; b < p.block_count(); ++b) {
    tig.set_compute_weight(b, static_cast<std::int64_t>(p.blocks()[b].iterations.size()));
    tig.set_coordinates(b, grouping.groups()[b].lattice);
  }
  q.for_each_arc([&](const IntVec& src, const IntVec& dst, std::size_t) {
    std::size_t bs = p.block_of(q.id_of(src));
    std::size_t bd = p.block_of(q.id_of(dst));
    if (bs != bd) tig.add_comm(bs, bd, 1);
  });
  return tig;
}

TaskInteractionGraph TaskInteractionGraph::from_symbolic(const IterSpace& space,
                                                         const Grouping& grouping) {
  TaskInteractionGraph tig(grouping.group_count());
  std::vector<std::int64_t> sizes = symbolic_block_sizes(grouping);
  for (std::size_t b = 0; b < grouping.group_count(); ++b) {
    tig.set_compute_weight(b, sizes[b]);
    tig.set_coordinates(b, grouping.groups()[b].lattice);
  }
  for_each_line_dep(space, grouping.projected(), [&](const LineDepArcs& bundle) {
    std::size_t bs = grouping.group_of_point(bundle.point);
    std::size_t bd = grouping.group_of_point(bundle.target);
    if (bs != bd) tig.add_comm(bs, bd, bundle.count);
  });
  return tig;
}

TaskInteractionGraph TaskInteractionGraph::mesh(std::size_t width, std::size_t height,
                                                std::int64_t edge_weight) {
  TaskInteractionGraph tig(width * height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      std::size_t v = y * width + x;
      tig.set_coordinates(v, {static_cast<std::int64_t>(x), static_cast<std::int64_t>(y)});
      if (x + 1 < width) tig.add_comm(v, v + 1, edge_weight);
      if (y + 1 < height) tig.add_comm(v, v + width, edge_weight);
    }
  }
  return tig;
}

void TaskInteractionGraph::set_compute_weight(std::size_t v, std::int64_t w) {
  compute_.at(v) = w;
}

std::int64_t TaskInteractionGraph::total_compute() const {
  std::int64_t t = 0;
  for (std::int64_t w : compute_) t += w;
  return t;
}

void TaskInteractionGraph::add_comm(std::size_t u, std::size_t v, std::int64_t weight) {
  if (u >= vertex_count() || v >= vertex_count())
    throw std::out_of_range("TaskInteractionGraph::add_comm");
  if (u == v) return;  // self-communication is local
  auto key = std::minmax(u, v);
  edges_[{key.first, key.second}] += weight;
}

std::int64_t TaskInteractionGraph::comm_weight(std::size_t u, std::size_t v) const {
  auto key = std::minmax(u, v);
  auto it = edges_.find({key.first, key.second});
  return it == edges_.end() ? 0 : it->second;
}

std::int64_t TaskInteractionGraph::total_comm() const {
  std::int64_t t = 0;
  for (const auto& [e, w] : edges_) t += w;
  return t;
}

void TaskInteractionGraph::set_coordinates(std::size_t v, IntVec coords) {
  if (coords_.size() < compute_.size()) coords_.resize(compute_.size());
  coords_.at(v) = std::move(coords);
}

const std::optional<IntVec>& TaskInteractionGraph::coordinates(std::size_t v) const {
  static const std::optional<IntVec> kNone;
  if (v >= coords_.size()) return kNone;
  return coords_[v];
}

bool TaskInteractionGraph::has_coordinates() const {
  if (coords_.size() < compute_.size()) return false;
  return std::all_of(coords_.begin(), coords_.end(),
                     [](const std::optional<IntVec>& c) { return c.has_value(); });
}

std::size_t TaskInteractionGraph::coordinate_dimensions() const {
  std::size_t dim = 0;
  for (const std::optional<IntVec>& c : coords_)
    if (c) dim = std::max(dim, c->size());
  return dim;
}

std::vector<std::vector<std::size_t>> Mapping::blocks_per_proc() const {
  std::vector<std::vector<std::size_t>> per(processor_count);
  for (std::size_t b = 0; b < block_to_proc.size(); ++b) per.at(block_to_proc[b]).push_back(b);
  return per;
}

std::string MappingMetrics::to_string() const {
  std::ostringstream os;
  os << "comm_cost=" << total_comm_cost << " cut_volume=" << cut_comm_volume
     << " avg_hops=" << avg_hops_weighted << " max_load=" << max_proc_compute
     << " imbalance=" << compute_imbalance << " procs_used=" << used_processors;
  return os.str();
}

MappingMetrics evaluate_mapping(const TaskInteractionGraph& tig, const Mapping& mapping,
                                const Topology& topo) {
  if (mapping.block_to_proc.size() != tig.vertex_count())
    throw std::invalid_argument("evaluate_mapping: mapping size mismatch");
  if (topo.size() < mapping.processor_count)
    throw std::invalid_argument("evaluate_mapping: topology smaller than mapping");

  MappingMetrics m;
  std::int64_t cut_weight_hops_num = 0;
  std::int64_t cut_weight = 0;
  for (const auto& [edge, w] : tig.edges()) {
    ProcId pu = mapping.block_to_proc[edge.first];
    ProcId pv = mapping.block_to_proc[edge.second];
    unsigned hops = topo.distance(pu, pv);
    m.total_comm_cost += w * static_cast<std::int64_t>(hops);
    if (pu != pv) {
      m.cut_comm_volume += w;
      cut_weight_hops_num += w * static_cast<std::int64_t>(hops);
      cut_weight += w;
    }
  }
  m.avg_hops_weighted =
      cut_weight ? static_cast<double>(cut_weight_hops_num) / static_cast<double>(cut_weight) : 0.0;

  std::vector<std::int64_t> load(mapping.processor_count, 0);
  for (std::size_t b = 0; b < tig.vertex_count(); ++b)
    load.at(mapping.block_to_proc[b]) += tig.compute_weight(b);
  std::int64_t total = 0;
  for (std::int64_t l : load) {
    m.max_proc_compute = std::max(m.max_proc_compute, l);
    total += l;
    if (l > 0) ++m.used_processors;
  }
  double mean = mapping.processor_count
                    ? static_cast<double>(total) / static_cast<double>(mapping.processor_count)
                    : 0.0;
  m.compute_imbalance = mean > 0 ? static_cast<double>(m.max_proc_compute) / mean : 0.0;
  return m;
}

}  // namespace hypart
