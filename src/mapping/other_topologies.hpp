// hypart — cluster mapping for non-hypercube machines.
//
// The paper's Algorithm 2 targets binary n-cubes; the same
// bisect-then-number idea extends to other regular interconnects:
//  * 2-D mesh: bisect alternately along the first two lattice directions
//    and use the interval ranks directly as mesh coordinates (mesh
//    neighbors are rank-adjacent, so no Gray code is needed);
//  * ring: bisect along the primary direction into N linear ranks
//    (consecutive ranks are ring neighbors);
//  * a 1-directional TIG on a mesh is laid out boustrophedon (snake) so
//    consecutive clusters stay adjacent.
#pragma once

#include "mapping/tig.hpp"
#include "topology/topology.hpp"

namespace hypart {

/// Map blocks onto a w x h mesh; both dimensions must be powers of two.
Mapping map_to_mesh(const TaskInteractionGraph& tig, const Mesh2D& mesh);

/// Map blocks onto an N-processor ring; N must be a power of two.
Mapping map_to_ring(const TaskInteractionGraph& tig, std::size_t processors);

}  // namespace hypart
