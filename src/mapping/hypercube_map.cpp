#include "mapping/hypercube_map.hpp"

#include <algorithm>
#include <stdexcept>

#include "mapping/gray.hpp"

namespace hypart {

HypercubeMappingResult map_to_hypercube(const TaskInteractionGraph& tig, unsigned cube_dim,
                                        const HypercubeMapOptions& options) {
  const std::size_t nverts = tig.vertex_count();
  if (nverts == 0) throw std::invalid_argument("map_to_hypercube: empty TIG");

  // Bisection directions: the TIG coordinate axes (Ω), else vertex order.
  const bool coords = tig.has_coordinates();
  const std::size_t beta = coords ? std::max<std::size_t>(tig.coordinate_dimensions(), 1) : 1;

  auto coord_along = [&](std::size_t v, std::size_t dir) -> std::int64_t {
    if (!coords) return static_cast<std::int64_t>(v);
    const std::optional<IntVec>& c = tig.coordinates(v);
    return dir < c->size() ? (*c)[dir] : 0;
  };

  obs::TraceSink* sink = options.obs.trace;
  if (sink != nullptr)
    obs::emit_thread_name(sink, obs::kPipelinePid, obs::kMappingTid, "mapping search");
  obs::ScopedSpan map_span(sink, "map_to_hypercube", "mapping", obs::kPipelinePid,
                           obs::kMappingTid,
                           {{"blocks", static_cast<std::int64_t>(nverts)},
                            {"cube_dim", static_cast<std::int64_t>(cube_dim)}});

  // ---- Phase I: cluster formation -----------------------------------------
  std::vector<Cluster> clusters(1);
  clusters[0].vertices.resize(nverts);
  for (std::size_t v = 0; v < nverts; ++v) clusters[0].vertices[v] = v;
  clusters[0].ranks.assign(beta, 0);
  std::vector<unsigned> bits(beta, 0);

  for (unsigned j = 0; j < cube_dim; ++j) {
    const std::size_t dir = j % beta;
    ++bits[dir];
    obs::ScopedSpan level_span(sink, "bisect_level", "mapping", obs::kPipelinePid,
                               obs::kMappingTid,
                               {{"level", static_cast<std::int64_t>(j)},
                                {"direction", static_cast<std::int64_t>(dir)},
                                {"clusters_in", static_cast<std::int64_t>(clusters.size())}});
    std::vector<Cluster> next;
    next.reserve(clusters.size() * 2);
    for (Cluster& c : clusters) {
      // Deterministic sort along the direction; ties broken by the full
      // coordinate vector, then vertex id, so splits are reproducible.
      std::sort(c.vertices.begin(), c.vertices.end(), [&](std::size_t a, std::size_t b) {
        std::int64_t ca = coord_along(a, dir), cb = coord_along(b, dir);
        if (ca != cb) return ca < cb;
        for (std::size_t d = 0; d < beta; ++d) {
          std::int64_t xa = coord_along(a, d), xb = coord_along(b, d);
          if (xa != xb) return xa < xb;
        }
        return a < b;
      });
      std::size_t half = c.vertices.size() / 2 + (c.vertices.size() % 2);
      if (options.weighted && c.vertices.size() >= 2) {
        // Smallest prefix whose compute weight reaches half the cluster's.
        std::int64_t total = 0;
        for (std::size_t v : c.vertices) total += tig.compute_weight(v);
        std::int64_t prefix = 0;
        std::size_t cut = 0;
        while (cut < c.vertices.size() && 2 * prefix < total)
          prefix += tig.compute_weight(c.vertices[cut++]);
        half = std::clamp<std::size_t>(cut, 1, c.vertices.size() - 1);
      }
      Cluster low, high;
      low.vertices.assign(c.vertices.begin(), c.vertices.begin() + static_cast<std::ptrdiff_t>(half));
      high.vertices.assign(c.vertices.begin() + static_cast<std::ptrdiff_t>(half), c.vertices.end());
      low.ranks = c.ranks;
      high.ranks = c.ranks;
      low.ranks[dir] = c.ranks[dir] * 2;
      high.ranks[dir] = c.ranks[dir] * 2 + 1;
      next.push_back(std::move(low));
      next.push_back(std::move(high));
    }
    clusters = std::move(next);
  }

  // ---- Phase II: cluster allocation ---------------------------------------
  HypercubeMappingResult result;
  result.bits_per_direction = bits;
  result.directions_used = static_cast<std::size_t>(
      std::count_if(bits.begin(), bits.end(), [](unsigned b) { return b > 0; }));

  std::vector<std::uint64_t> ranks_used;
  std::vector<unsigned> bits_used;
  result.mapping.block_to_proc.assign(nverts, 0);
  result.mapping.processor_count = std::size_t{1} << cube_dim;
  result.mapping.method = "gray-bisection";

  for (Cluster& c : clusters) {
    ranks_used.clear();
    bits_used.clear();
    for (std::size_t d = 0; d < beta; ++d) {
      if (bits[d] == 0) continue;
      ranks_used.push_back(c.ranks[d]);
      bits_used.push_back(bits[d]);
    }
    c.processor = concat_gray(ranks_used, bits_used);
    for (std::size_t v : c.vertices) result.mapping.block_to_proc[v] = c.processor;
  }
  result.clusters = std::move(clusters);
  if (options.obs.metrics != nullptr) {
    options.obs.metrics->add("map.clusters", static_cast<std::int64_t>(result.clusters.size()));
    options.obs.metrics->add("map.bisection_levels", static_cast<std::int64_t>(cube_dim));
    options.obs.metrics->add("map.directions_used",
                             static_cast<std::int64_t>(result.directions_used));
  }
  return result;
}

}  // namespace hypart
