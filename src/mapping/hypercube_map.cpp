#include "mapping/hypercube_map.hpp"

#include <algorithm>
#include <stdexcept>

#include "mapping/gray.hpp"

namespace hypart {

HypercubeMappingResult map_to_hypercube(const TaskInteractionGraph& tig, unsigned cube_dim,
                                        const HypercubeMapOptions& options) {
  const std::size_t nverts = tig.vertex_count();
  if (nverts == 0) throw std::invalid_argument("map_to_hypercube: empty TIG");

  // Bisection directions: the TIG coordinate axes (Ω), else vertex order.
  const bool coords = tig.has_coordinates();
  const std::size_t beta = coords ? std::max<std::size_t>(tig.coordinate_dimensions(), 1) : 1;

  auto coord_along = [&](std::size_t v, std::size_t dir) -> std::int64_t {
    if (!coords) return static_cast<std::int64_t>(v);
    const std::optional<IntVec>& c = tig.coordinates(v);
    return dir < c->size() ? (*c)[dir] : 0;
  };

  obs::TraceSink* sink = options.obs.trace;
  if (sink != nullptr)
    obs::emit_thread_name(sink, obs::kPipelinePid, obs::kMappingTid, "mapping search");
  obs::Span map_span(sink, "map_to_hypercube", "mapping", obs::kPipelinePid,
                     obs::kMappingTid,
                     {{"blocks", static_cast<std::int64_t>(nverts)},
                      {"cube_dim", static_cast<std::int64_t>(cube_dim)}});

  // ---- Phase I: cluster formation -----------------------------------------
  std::vector<Cluster> clusters(1);
  clusters[0].vertices.resize(nverts);
  for (std::size_t v = 0; v < nverts; ++v) clusters[0].vertices[v] = v;
  clusters[0].ranks.assign(beta, 0);
  std::vector<unsigned> bits(beta, 0);

  for (unsigned j = 0; j < cube_dim; ++j) {
    const std::size_t dir = j % beta;
    ++bits[dir];
    obs::ScopedSpan level_span(sink, "bisect_level", "mapping", obs::kPipelinePid,
                               obs::kMappingTid,
                               {{"level", static_cast<std::int64_t>(j)},
                                {"direction", static_cast<std::int64_t>(dir)},
                                {"clusters_in", static_cast<std::int64_t>(clusters.size())}});
    std::vector<Cluster> next;
    next.reserve(clusters.size() * 2);
    for (Cluster& c : clusters) {
      // Deterministic sort along the direction; ties broken by the full
      // coordinate vector, then vertex id, so splits are reproducible.
      std::sort(c.vertices.begin(), c.vertices.end(), [&](std::size_t a, std::size_t b) {
        std::int64_t ca = coord_along(a, dir), cb = coord_along(b, dir);
        if (ca != cb) return ca < cb;
        for (std::size_t d = 0; d < beta; ++d) {
          std::int64_t xa = coord_along(a, d), xb = coord_along(b, d);
          if (xa != xb) return xa < xb;
        }
        return a < b;
      });
      std::size_t half = c.vertices.size() / 2 + (c.vertices.size() % 2);
      if (options.weighted && c.vertices.size() >= 2) {
        // Smallest prefix whose compute weight reaches half the cluster's.
        std::int64_t total = 0;
        for (std::size_t v : c.vertices) total += tig.compute_weight(v);
        std::int64_t prefix = 0;
        std::size_t cut = 0;
        while (cut < c.vertices.size() && 2 * prefix < total)
          prefix += tig.compute_weight(c.vertices[cut++]);
        half = std::clamp<std::size_t>(cut, 1, c.vertices.size() - 1);
      }
      Cluster low, high;
      low.vertices.assign(c.vertices.begin(), c.vertices.begin() + static_cast<std::ptrdiff_t>(half));
      high.vertices.assign(c.vertices.begin() + static_cast<std::ptrdiff_t>(half), c.vertices.end());
      low.ranks = c.ranks;
      high.ranks = c.ranks;
      low.ranks[dir] = c.ranks[dir] * 2;
      high.ranks[dir] = c.ranks[dir] * 2 + 1;
      next.push_back(std::move(low));
      next.push_back(std::move(high));
    }
    clusters = std::move(next);
  }

  // ---- Phase II: cluster allocation ---------------------------------------
  HypercubeMappingResult result;
  result.bits_per_direction = bits;
  result.directions_used = static_cast<std::size_t>(
      std::count_if(bits.begin(), bits.end(), [](unsigned b) { return b > 0; }));

  std::vector<std::uint64_t> ranks_used;
  std::vector<unsigned> bits_used;
  result.mapping.block_to_proc.assign(nverts, 0);
  result.mapping.processor_count = std::size_t{1} << cube_dim;
  result.mapping.method = "gray-bisection";

  for (Cluster& c : clusters) {
    ranks_used.clear();
    bits_used.clear();
    for (std::size_t d = 0; d < beta; ++d) {
      if (bits[d] == 0) continue;
      ranks_used.push_back(c.ranks[d]);
      bits_used.push_back(bits[d]);
    }
    c.processor = concat_gray(ranks_used, bits_used);
    for (std::size_t v : c.vertices) result.mapping.block_to_proc[v] = c.processor;
  }
  result.clusters = std::move(clusters);
  if (options.obs.metrics != nullptr) {
    options.obs.metrics->add("map.clusters", static_cast<std::int64_t>(result.clusters.size()));
    options.obs.metrics->add("map.bisection_levels", static_cast<std::int64_t>(cube_dim));
    options.obs.metrics->add("map.directions_used",
                             static_cast<std::int64_t>(result.directions_used));
  }
  return result;
}

ProcId LatticeHypercubeMapping::proc_of_sorted_index(std::uint64_t k) const {
  // boundaries is ascending with duplicates at empty clusters; the owning
  // cluster is the last one whose start is <= k.
  auto it = std::upper_bound(boundaries.begin(), boundaries.end(), k);
  std::size_t rank = static_cast<std::size_t>(it - boundaries.begin()) - 1;
  return cluster_processor[std::min(rank, cluster_processor.size() - 1)];
}

ProcId LatticeHypercubeMapping::proc_of_group(const GroupLattice& lattice,
                                              const GroupLattice::GroupKey& g) const {
  if (frag_b.empty()) return proc_of_sorted_index(lattice.sorted_index_of_group(g));
  auto cit = std::lower_bound(frag_b.begin(), frag_b.end(), g.b);
  if (cit == frag_b.end() || *cit != g.b) return 0;  // unpopulated chain
  const std::size_t i = static_cast<std::size_t>(cit - frag_b.begin());
  auto first = frag_runs.begin() + static_cast<std::ptrdiff_t>(frag_off[i]);
  auto last = frag_runs.begin() + static_cast<std::ptrdiff_t>(frag_off[i + 1]);
  // Last run with a_lo <= g.a.
  auto rit = std::upper_bound(first, last, g.a,
                              [](std::int64_t a, const std::pair<std::int64_t, ProcId>& run) {
                                return a < run.first;
                              });
  if (rit == first) return 0;
  return (rit - 1)->second;
}

namespace {

/// One per-aux-chain a-interval of a plane cluster.
struct Frag {
  std::int64_t b = 0;
  std::int64_t a_lo = 0, a_hi = 0;
};

struct PlaneCluster {
  std::vector<Frag> frags;  ///< ascending b, at most one per b
  std::uint64_t ranks[2] = {0, 0};
  std::uint64_t size = 0;  ///< group count
};

/// Closed-form dense bisection of a plane cluster along direction 0 (the
/// grouping-chain coordinate a): the dense level sort is (a, b), so the low
/// half is every group with a < a*, plus the first q groups at a == a* in
/// ascending b — a* and q chosen so the low half has exactly `h` groups.
void split_plane_a(const PlaneCluster& c, std::uint64_t h, PlaneCluster& low,
                   PlaneCluster& high) {
  if (c.frags.empty() || h == 0) {
    (h == 0 ? high : low).frags = c.frags;
    return;
  }
  std::int64_t amin = c.frags.front().a_lo, amax = c.frags.front().a_hi;
  for (const Frag& f : c.frags) {
    amin = std::min(amin, f.a_lo);
    amax = std::max(amax, f.a_hi);
  }
  auto cnt_le = [&](std::int64_t a) {
    std::uint64_t n = 0;
    for (const Frag& f : c.frags) {
      const std::int64_t hi = std::min(a, f.a_hi);
      if (hi >= f.a_lo) n += static_cast<std::uint64_t>(hi - f.a_lo + 1);
    }
    return n;
  };
  std::int64_t lo = amin, hi = amax;
  while (lo < hi) {  // smallest a with cnt_le(a) >= h
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (cnt_le(mid) >= h) hi = mid;
    else lo = mid + 1;
  }
  const std::int64_t astar = lo;
  std::uint64_t q = h - cnt_le(astar - 1);  // groups at a == a* taken low, in b order
  for (const Frag& f : c.frags) {
    if (f.a_hi < astar) {
      low.frags.push_back(f);
      continue;
    }
    if (f.a_lo > astar) {
      high.frags.push_back(f);
      continue;
    }
    std::int64_t cut = astar - 1;  // low gets [a_lo, cut]
    if (q > 0) {
      cut = astar;
      --q;
    }
    if (cut >= f.a_lo) low.frags.push_back(Frag{f.b, f.a_lo, cut});
    if (cut + 1 <= f.a_hi) high.frags.push_back(Frag{f.b, cut + 1, f.a_hi});
  }
}

/// Bisection along direction 1 (the aux coordinate b): the dense level sort
/// is (b, a), so the low half is whole chains in ascending b plus the
/// lowest-a prefix of the straddling chain.
void split_plane_b(const PlaneCluster& c, std::uint64_t h, PlaneCluster& low,
                   PlaneCluster& high) {
  std::uint64_t cum = 0;
  for (const Frag& f : c.frags) {
    const std::uint64_t sz = static_cast<std::uint64_t>(f.a_hi - f.a_lo + 1);
    if (cum + sz <= h) {
      low.frags.push_back(f);
    } else if (cum >= h) {
      high.frags.push_back(f);
    } else {
      const std::int64_t take = static_cast<std::int64_t>(h - cum);
      low.frags.push_back(Frag{f.b, f.a_lo, f.a_lo + take - 1});
      high.frags.push_back(Frag{f.b, f.a_lo + take, f.a_hi});
    }
    cum += sz;
  }
}

LatticeHypercubeMapping map_plane_to_hypercube(const GroupLattice& lattice, unsigned cube_dim,
                                               const HypercubeMapOptions& options) {
  if (options.weighted)
    throw std::invalid_argument(
        "map_to_hypercube: weighted mapping of a plane lattice is not closed-form");
  std::vector<PlaneCluster> clusters(1);
  for (const GroupLattice::GroupBox& box : lattice.enumerate_boxes())
    clusters[0].frags.push_back(Frag{box.c_lo, box.a_lo, box.a_hi});
  std::vector<unsigned> bits(2, 0);
  for (PlaneCluster& c : clusters)
    for (const Frag& f : c.frags) c.size += static_cast<std::uint64_t>(f.a_hi - f.a_lo + 1);

  for (unsigned j = 0; j < cube_dim; ++j) {
    const std::size_t dir = j % 2;
    ++bits[dir];
    std::vector<PlaneCluster> next;
    next.reserve(clusters.size() * 2);
    for (PlaneCluster& c : clusters) {
      const std::uint64_t h = c.size / 2 + c.size % 2;  // dense ceil-half
      PlaneCluster low, high;
      if (dir == 0) split_plane_a(c, h, low, high);
      else split_plane_b(c, h, low, high);
      low.size = h;
      high.size = c.size - h;
      for (std::size_t d = 0; d < 2; ++d) {
        low.ranks[d] = c.ranks[d];
        high.ranks[d] = c.ranks[d];
      }
      low.ranks[dir] = c.ranks[dir] * 2;
      high.ranks[dir] = c.ranks[dir] * 2 + 1;
      next.push_back(std::move(low));
      next.push_back(std::move(high));
    }
    clusters = std::move(next);
  }

  LatticeHypercubeMapping result;
  result.cube_dim = cube_dim;
  result.processor_count = std::size_t{1} << cube_dim;
  result.bits_per_direction = bits;
  result.directions_used = static_cast<std::size_t>(
      std::count_if(bits.begin(), bits.end(), [](unsigned b) { return b > 0; }));
  result.cluster_processor.reserve(clusters.size());

  // Phase II Gray allocation + flatten fragments into the CSR (b -> runs)
  // index.  Runs from all clusters are merged per chain, sorted by a_lo.
  std::vector<Frag> all;
  std::vector<ProcId> frag_proc;
  std::vector<std::uint64_t> ranks_used;
  std::vector<unsigned> bits_used;
  for (const PlaneCluster& c : clusters) {
    ranks_used.clear();
    bits_used.clear();
    for (std::size_t d = 0; d < 2; ++d) {
      if (bits[d] == 0) continue;
      ranks_used.push_back(c.ranks[d]);
      bits_used.push_back(bits[d]);
    }
    const ProcId proc = cube_dim > 0 ? concat_gray(ranks_used, bits_used) : ProcId{0};
    result.cluster_processor.push_back(proc);
    for (const Frag& f : c.frags) {
      all.push_back(f);
      frag_proc.push_back(proc);
    }
  }
  std::vector<std::size_t> order(all.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (all[x].b != all[y].b) return all[x].b < all[y].b;
    return all[x].a_lo < all[y].a_lo;
  });
  for (std::size_t i : order) {
    if (result.frag_b.empty() || result.frag_b.back() != all[i].b) {
      result.frag_b.push_back(all[i].b);
      result.frag_off.push_back(result.frag_runs.size());
    }
    result.frag_runs.emplace_back(all[i].a_lo, frag_proc[i]);
  }
  result.frag_off.push_back(result.frag_runs.size());

  if (options.obs.metrics != nullptr) {
    options.obs.metrics->add("map.clusters",
                             static_cast<std::int64_t>(result.cluster_processor.size()));
    options.obs.metrics->add("map.bisection_levels", static_cast<std::int64_t>(cube_dim));
    options.obs.metrics->add("map.directions_used",
                             static_cast<std::int64_t>(result.directions_used));
  }
  return result;
}

}  // namespace

LatticeHypercubeMapping map_to_hypercube(const GroupLattice& lattice, unsigned cube_dim,
                                         const HypercubeMapOptions& options) {
  const std::uint64_t ngroups = lattice.group_count();

  obs::TraceSink* sink = options.obs.trace;
  if (sink != nullptr)
    obs::emit_thread_name(sink, obs::kPipelinePid, obs::kMappingTid, "mapping search");
  obs::Span map_span(sink, "map_to_hypercube", "mapping", obs::kPipelinePid,
                     obs::kMappingTid,
                     {{"blocks", static_cast<std::int64_t>(ngroups)},
                      {"cube_dim", static_cast<std::int64_t>(cube_dim)}});

  if (lattice.layout() == LatticeLayout::Plane)
    return map_plane_to_hypercube(lattice, cube_dim, options);

  // Weighted splitting needs per-group populations; one O(groups) prefix-sum
  // array is the only N-dependent allocation, and only in this opt-in mode.
  std::vector<std::int64_t> prefix;
  if (options.weighted) {
    prefix.assign(static_cast<std::size_t>(ngroups) + 1, 0);
    for (std::uint64_t k = 0; k < ngroups; ++k)
      prefix[static_cast<std::size_t>(k) + 1] =
          prefix[static_cast<std::size_t>(k)] +
          lattice.group_population(lattice.group_at_sorted_index(k));
  }

  // Phase I: the dense mapper's recursive ceil-halving, on interval lengths.
  // Rank bits accumulate low-half-first, so final clusters in rank order
  // cover ascending sorted-index intervals.
  std::vector<std::uint64_t> starts{0};
  std::vector<std::uint64_t> sizes{ngroups};
  for (unsigned j = 0; j < cube_dim; ++j) {
    std::vector<std::uint64_t> next_starts, next_sizes;
    next_starts.reserve(sizes.size() * 2);
    next_sizes.reserve(sizes.size() * 2);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::uint64_t size = sizes[i];
      std::uint64_t half = size / 2 + size % 2;
      if (options.weighted && size >= 2) {
        std::size_t b = static_cast<std::size_t>(starts[i]);
        std::int64_t total = prefix[b + static_cast<std::size_t>(size)] - prefix[b];
        std::uint64_t cut = 0;
        while (cut < size && 2 * (prefix[b + static_cast<std::size_t>(cut)] - prefix[b]) < total)
          ++cut;
        half = std::clamp<std::uint64_t>(cut, 1, size - 1);
      }
      next_starts.push_back(starts[i]);
      next_sizes.push_back(half);
      next_starts.push_back(starts[i] + half);
      next_sizes.push_back(size - half);
    }
    starts = std::move(next_starts);
    sizes = std::move(next_sizes);
  }

  // Phase II: cluster rank -> Gray-coded processor.
  LatticeHypercubeMapping result;
  result.cube_dim = cube_dim;
  result.processor_count = std::size_t{1} << cube_dim;
  result.directions_used = cube_dim > 0 ? 1 : 0;
  if (cube_dim > 0) result.bits_per_direction.assign(1, cube_dim);
  result.boundaries.reserve(starts.size() + 1);
  result.boundaries = starts;
  result.boundaries.push_back(ngroups);
  result.cluster_processor.reserve(sizes.size());
  for (std::uint64_t rank = 0; rank < sizes.size(); ++rank)
    result.cluster_processor.push_back(
        cube_dim > 0 ? concat_gray({rank}, {cube_dim}) : ProcId{0});

  if (options.obs.metrics != nullptr) {
    options.obs.metrics->add("map.clusters",
                             static_cast<std::int64_t>(result.cluster_processor.size()));
    options.obs.metrics->add("map.bisection_levels", static_cast<std::int64_t>(cube_dim));
    options.obs.metrics->add("map.directions_used",
                             static_cast<std::int64_t>(result.directions_used));
  }
  return result;
}

}  // namespace hypart
