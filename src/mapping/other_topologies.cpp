#include "mapping/other_topologies.hpp"

#include <algorithm>
#include <stdexcept>

#include "mapping/gray.hpp"

namespace hypart {

namespace {

struct RankedCluster {
  std::vector<std::size_t> vertices;
  std::vector<std::uint64_t> ranks;
};

/// Recursive bisection along the given direction schedule (direction index
/// per split); identical to Algorithm 2 Phase I.
std::vector<RankedCluster> bisect(const TaskInteractionGraph& tig,
                                  const std::vector<std::size_t>& schedule,
                                  std::size_t directions) {
  const bool coords = tig.has_coordinates();
  auto coord_along = [&](std::size_t v, std::size_t dir) -> std::int64_t {
    if (!coords) return static_cast<std::int64_t>(v);
    const std::optional<IntVec>& c = tig.coordinates(v);
    return dir < c->size() ? (*c)[dir] : 0;
  };

  std::vector<RankedCluster> clusters(1);
  clusters[0].vertices.resize(tig.vertex_count());
  for (std::size_t v = 0; v < tig.vertex_count(); ++v) clusters[0].vertices[v] = v;
  clusters[0].ranks.assign(directions, 0);

  for (std::size_t dir : schedule) {
    std::vector<RankedCluster> next;
    next.reserve(clusters.size() * 2);
    for (RankedCluster& c : clusters) {
      std::sort(c.vertices.begin(), c.vertices.end(), [&](std::size_t a, std::size_t b) {
        std::int64_t ca = coord_along(a, dir), cb = coord_along(b, dir);
        if (ca != cb) return ca < cb;
        for (std::size_t d = 0; d < directions; ++d) {
          std::int64_t xa = coord_along(a, d), xb = coord_along(b, d);
          if (xa != xb) return xa < xb;
        }
        return a < b;
      });
      const std::size_t half = c.vertices.size() / 2 + (c.vertices.size() % 2);
      RankedCluster low, high;
      low.vertices.assign(c.vertices.begin(),
                          c.vertices.begin() + static_cast<std::ptrdiff_t>(half));
      high.vertices.assign(c.vertices.begin() + static_cast<std::ptrdiff_t>(half),
                           c.vertices.end());
      low.ranks = c.ranks;
      high.ranks = c.ranks;
      low.ranks[dir] = c.ranks[dir] * 2;
      high.ranks[dir] = c.ranks[dir] * 2 + 1;
      next.push_back(std::move(low));
      next.push_back(std::move(high));
    }
    clusters = std::move(next);
  }
  return clusters;
}

std::size_t tig_directions(const TaskInteractionGraph& tig) {
  return tig.has_coordinates() ? std::max<std::size_t>(tig.coordinate_dimensions(), 1) : 1;
}

}  // namespace

Mapping map_to_mesh(const TaskInteractionGraph& tig, const Mesh2D& mesh) {
  if (tig.vertex_count() == 0) throw std::invalid_argument("map_to_mesh: empty TIG");
  const unsigned wx = log2_exact(mesh.width());
  const unsigned wy = log2_exact(mesh.height());
  const std::size_t beta = tig_directions(tig);

  Mapping m;
  m.processor_count = mesh.size();
  m.method = "mesh-bisection";
  m.block_to_proc.assign(tig.vertex_count(), 0);

  if (beta == 1) {
    // Linear ranks laid out boustrophedon so consecutive clusters are
    // mesh neighbors.
    std::vector<std::size_t> schedule(wx + wy, 0);
    std::vector<RankedCluster> clusters = bisect(tig, schedule, 1);
    for (const RankedCluster& c : clusters) {
      std::uint64_t r = c.ranks[0];
      std::size_t y = r / mesh.width();
      std::size_t xr = r % mesh.width();
      std::size_t x = (y % 2 == 0) ? xr : mesh.width() - 1 - xr;
      ProcId proc = y * mesh.width() + x;
      for (std::size_t v : c.vertices) m.block_to_proc[v] = proc;
    }
    return m;
  }

  // Alternate x/y splits until each direction has its budget.
  std::vector<std::size_t> schedule;
  unsigned nx = 0, ny = 0;
  while (nx < wx || ny < wy) {
    if (nx < wx) {
      schedule.push_back(0);
      ++nx;
    }
    if (ny < wy) {
      schedule.push_back(1);
      ++ny;
    }
  }
  std::vector<RankedCluster> clusters = bisect(tig, schedule, std::max<std::size_t>(beta, 2));
  for (const RankedCluster& c : clusters) {
    ProcId proc = c.ranks[1] * mesh.width() + c.ranks[0];
    for (std::size_t v : c.vertices) m.block_to_proc[v] = proc;
  }
  return m;
}

Mapping map_to_ring(const TaskInteractionGraph& tig, std::size_t processors) {
  if (tig.vertex_count() == 0) throw std::invalid_argument("map_to_ring: empty TIG");
  const unsigned bits = log2_exact(processors);

  Mapping m;
  m.processor_count = processors;
  m.method = "ring-bisection";
  m.block_to_proc.assign(tig.vertex_count(), 0);

  std::vector<std::size_t> schedule(bits, 0);  // always the primary direction
  std::vector<RankedCluster> clusters = bisect(tig, schedule, tig_directions(tig));
  for (const RankedCluster& c : clusters)
    for (std::size_t v : c.vertices) m.block_to_proc[v] = c.ranks[0];
  return m;
}

}  // namespace hypart
