// hypart — binary-reflected Gray code utilities (Algorithm 2, Phase II).
//
// Clusters are numbered with per-direction Gray codes so that clusters
// adjacent along a bisection direction land on hypercube neighbors.
#pragma once

#include <cstdint>
#include <vector>

namespace hypart {

/// i-th binary-reflected Gray code: i XOR (i >> 1).
std::uint64_t gray_encode(std::uint64_t i);

/// Inverse of gray_encode.
std::uint64_t gray_decode(std::uint64_t g);

/// Number of set bits.
unsigned popcount64(std::uint64_t x);

/// True if x is a power of two (x > 0).
bool is_power_of_two(std::uint64_t x);

/// floor(log2(x)); throws on x == 0.
unsigned log2_floor(std::uint64_t x);

/// exact log2; throws if x is not a power of two.
unsigned log2_exact(std::uint64_t x);

/// Concatenate per-direction Gray codes into one processor number.
/// `ranks[i]` is the interval rank along direction i, encoded in `bits[i]`
/// bits; direction 0 occupies the most significant bits.
std::uint64_t concat_gray(const std::vector<std::uint64_t>& ranks,
                          const std::vector<unsigned>& bits);

/// The full n-bit Gray sequence (length 2^n); useful for tests and printing.
std::vector<std::uint64_t> gray_sequence(unsigned n);

}  // namespace hypart
