#include "loop/index_set.hpp"

#include <stdexcept>

namespace hypart {

IndexSet::IndexSet(const LoopNest& nest) : dims_(nest.dims()) {}

std::int64_t IndexSet::lower(std::size_t j, const IntVec& outer) const {
  return dims_[j].lower.evaluate_lower(outer);
}

std::int64_t IndexSet::upper(std::size_t j, const IntVec& outer) const {
  return dims_[j].upper.evaluate_upper(outer);
}

void IndexSet::for_each(const std::function<void(const IntVec&)>& visit) const {
  const std::size_t n = dims_.size();
  IntVec point(n, 0);
  // Iterative lexicographic walk (no recursion: nests can be deep and hot).
  std::size_t level = 0;
  std::vector<std::int64_t> hi(n, 0);
  while (true) {
    if (level == n) {
      visit(point);
      // Backtrack to the deepest level that can still advance.
      while (level > 0) {
        --level;
        if (point[level] < hi[level]) {
          ++point[level];
          ++level;
          break;
        }
      }
      if (level == 0 && point[0] >= hi[0]) return;
      if (level == 0) return;  // exhausted
      continue;
    }
    std::int64_t lo = dims_[level].lower.evaluate_lower(point);
    std::int64_t up = dims_[level].upper.evaluate_upper(point);
    if (lo > up) {
      // Empty subrange: backtrack.
      bool moved = false;
      while (level > 0) {
        --level;
        if (point[level] < hi[level]) {
          ++point[level];
          ++level;
          moved = true;
          break;
        }
      }
      if (!moved) return;
      continue;
    }
    point[level] = lo;
    hi[level] = up;
    ++level;
  }
}

std::vector<IntVec> IndexSet::points() const {
  std::vector<IntVec> pts;
  // Reserve the exact point count when the bounds are rectangular (size()
  // is a closed-form product there; for triangular nests it would walk the
  // set once just to count, doubling the work, so skip it).
  bool rect = true;
  for (const LoopDim& d : dims_)
    if (!d.lower.is_constant() || !d.upper.is_constant()) {
      rect = false;
      break;
    }
  if (rect) pts.reserve(static_cast<std::size_t>(size()));
  for_each([&](const IntVec& p) { pts.push_back(p); });
  return pts;
}

std::uint64_t IndexSet::size() const {
  std::uint64_t count = 0;
  // Fast path: rectangular product.
  bool rect = true;
  for (const LoopDim& d : dims_)
    if (!d.lower.is_constant() || !d.upper.is_constant()) {
      rect = false;
      break;
    }
  if (rect) {
    count = 1;
    for (const LoopDim& d : dims_) {
      std::int64_t lo = d.lower.constant_lower();
      std::int64_t up = d.upper.constant_upper();
      if (up < lo) return 0;
      count *= static_cast<std::uint64_t>(up - lo + 1);
    }
    return count;
  }
  for_each([&](const IntVec&) { ++count; });
  return count;
}

bool IndexSet::contains(const IntVec& point) const {
  if (point.size() != dims_.size()) return false;
  for (std::size_t j = 0; j < dims_.size(); ++j) {
    std::int64_t lo = dims_[j].lower.evaluate_lower(point);
    std::int64_t up = dims_[j].upper.evaluate_upper(point);
    if (point[j] < lo || point[j] > up) return false;
  }
  return true;
}

std::vector<std::pair<std::int64_t, std::int64_t>> IndexSet::rectangular_bounds() const {
  std::vector<std::pair<std::int64_t, std::int64_t>> b;
  b.reserve(dims_.size());
  for (const LoopDim& d : dims_) {
    if (!d.lower.is_constant() || !d.upper.is_constant())
      throw std::logic_error("IndexSet::rectangular_bounds: nest is not rectangular");
    b.emplace_back(d.lower.constant_lower(), d.upper.constant_upper());
  }
  return b;
}

}  // namespace hypart
