// hypart — loop-nest intermediate representation.
//
// Models the paper's n-nested loop (Section II):
//
//   for I1 = l1 to u1
//     for I2 = l2 to u2
//       ...
//         Statement_1; ... Statement_m;
//
// Bounds l_j / u_j are integer affine expressions in the outer indices
// I_1..I_{j-1} (the paper's model); step is 1.  Statements carry affine
// array accesses from which the constant (uniform) loop-carried dependence
// vectors are extracted (loop/dependence.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "numeric/int_linalg.hpp"

namespace hypart {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;  // see loop/expr.hpp

/// Integer affine expression  c0 + sum_k coeffs[k] * I_{k+1}  over the loop
/// indices of the enclosing nest.  coeffs may be shorter than the nest depth
/// (missing coefficients are zero).
struct AffineExpr {
  std::int64_t constant = 0;
  IntVec coeffs;  ///< coefficient of each loop index, outermost first

  AffineExpr() = default;
  AffineExpr(std::int64_t c) : constant(c) {}  // NOLINT: implicit by design
  AffineExpr(std::int64_t c, IntVec k) : constant(c), coeffs(std::move(k)) {}

  /// Expression that is exactly loop index `level` (0-based, outermost = 0).
  static AffineExpr index(std::size_t level, std::int64_t coefficient = 1,
                          std::int64_t offset = 0);

  [[nodiscard]] std::int64_t evaluate(const IntVec& indices) const;
  [[nodiscard]] bool is_constant() const;
  [[nodiscard]] std::string to_string(const std::vector<std::string>& index_names = {}) const;

  friend bool operator==(const AffineExpr& a, const AffineExpr& b);
};

/// A loop bound: one affine expression, or the pointwise max (for lower
/// bounds) / min (for upper bounds) of several.  `max(l1,l2) <= i` is the
/// conjunction `l1 <= i AND l2 <= i`, and dually `i <= min(u1,u2)` is
/// `i <= u1 AND i <= u2`, so disjunctive bounds keep the iteration space
/// convex: every term is an independent affine half-space and the symbolic
/// machinery (slabs, line ranges) applies per term.
struct BoundExpr {
  std::vector<AffineExpr> terms;  ///< never empty

  BoundExpr() : terms(1) {}
  BoundExpr(std::int64_t c) : terms{AffineExpr(c)} {}    // NOLINT: implicit by design
  BoundExpr(AffineExpr e) : terms{std::move(e)} {}       // NOLINT: implicit by design
  explicit BoundExpr(std::vector<AffineExpr> ts);

  [[nodiscard]] bool single() const { return terms.size() == 1; }
  /// The unique term; throws std::logic_error unless single().
  [[nodiscard]] const AffineExpr& term() const;

  [[nodiscard]] bool is_constant() const;
  /// Evaluate as a lower bound: max over terms.
  [[nodiscard]] std::int64_t evaluate_lower(const IntVec& indices) const;
  /// Evaluate as an upper bound: min over terms.
  [[nodiscard]] std::int64_t evaluate_upper(const IntVec& indices) const;
  /// Constant value (requires is_constant()); lower = max, upper = min.
  [[nodiscard]] std::int64_t constant_lower() const;
  [[nodiscard]] std::int64_t constant_upper() const;

  /// `as_lower` selects the max(...) (lower) or min(...) (upper) rendering
  /// for multi-term bounds.
  [[nodiscard]] std::string to_string(const std::vector<std::string>& index_names = {},
                                      bool as_lower = true) const;

  friend bool operator==(const BoundExpr& a, const BoundExpr& b) { return a.terms == b.terms; }
};

/// Combinators for disjunctive bounds in builder code.  Both collect terms;
/// the lower/upper position of the bound decides max vs min semantics, so
/// use bmax for lower bounds and bmin for upper bounds (the parser enforces
/// the same polarity for `.loop` sources).
BoundExpr bmax(AffineExpr a, AffineExpr b);
BoundExpr bmin(AffineExpr a, AffineExpr b);

/// One dimension of the nest: `for I = lower to upper`.
struct LoopDim {
  std::string name;   ///< index variable name (for printing)
  BoundExpr lower;
  BoundExpr upper;
};

enum class AccessKind { Read, Write };

/// An affine array access  Array[sub_1, ..., sub_k]  inside a statement.
struct ArrayAccess {
  std::string array;
  std::vector<AffineExpr> subscripts;
  AccessKind kind = AccessKind::Read;

  /// Access matrix F (one row per subscript, one column per loop index of a
  /// depth-n nest) and offset vector f, such that the accessed element is
  /// F*I + f for iteration vector I.
  [[nodiscard]] IntMat access_matrix(std::size_t depth) const;
  [[nodiscard]] IntVec offset_vector() const;

  [[nodiscard]] std::string to_string(const std::vector<std::string>& index_names = {}) const;
};

/// A loop-body statement: one write and any number of reads, plus an
/// operation count used by the simulator's t_calc cost model.  Statements
/// built with LoopNestBuilder::assign additionally carry executable
/// right-hand-side semantics (loop/expr.hpp) for the interpreters.
struct Statement {
  std::string label;
  std::vector<ArrayAccess> accesses;
  std::int64_t flop_count = 1;  ///< floating-point ops per execution
  ExprPtr rhs;                  ///< optional executable semantics

  [[nodiscard]] std::vector<ArrayAccess> reads() const;
  [[nodiscard]] std::vector<ArrayAccess> writes() const;
  [[nodiscard]] bool is_executable() const { return rhs != nullptr; }
};

/// An n-nested loop with statements.  Construct with LoopNestBuilder.
class LoopNest {
 public:
  LoopNest(std::string name, std::vector<LoopDim> dims, std::vector<Statement> statements);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t depth() const { return dims_.size(); }
  [[nodiscard]] const std::vector<LoopDim>& dims() const { return dims_; }
  [[nodiscard]] const std::vector<Statement>& statements() const { return statements_; }
  [[nodiscard]] std::vector<std::string> index_names() const;

  /// Total flops of one iteration of the loop body.
  [[nodiscard]] std::int64_t body_flops() const;

  /// True if every bound is a constant (rectangular iteration space).
  [[nodiscard]] bool is_rectangular() const;

  /// Pretty-printed source form, close to the paper's notation.
  [[nodiscard]] std::string to_string() const;

 private:
  std::string name_;
  std::vector<LoopDim> dims_;
  std::vector<Statement> statements_;
};

/// Fluent builder for LoopNest.
///
///   LoopNest l1 = LoopNestBuilder("L1")
///       .loop("i", 0, 3).loop("j", 0, 3)
///       .statement("S1", 2)
///         .write("A", {idx(0) + 1, idx(1) + 1})
///         .read("A", {idx(0) + 1, idx(1)})
///         .read("B", {idx(0), idx(1)})
///       .build();
class LoopNestBuilder {
 public:
  explicit LoopNestBuilder(std::string name) : name_(std::move(name)) {}

  LoopNestBuilder& loop(std::string index_name, BoundExpr lower, BoundExpr upper);
  LoopNestBuilder& statement(std::string label, std::int64_t flops = 1);
  LoopNestBuilder& write(std::string array, std::vector<AffineExpr> subscripts);
  LoopNestBuilder& read(std::string array, std::vector<AffineExpr> subscripts);

  /// Executable statement:  array[subscripts] := value.  Adds the write
  /// access, derives all read accesses from the expression's array
  /// references, sets flop_count = operation_count(value), and records the
  /// expression for the interpreters.
  LoopNestBuilder& assign(std::string label, std::string array,
                          std::vector<AffineExpr> subscripts, ExprPtr value);

  [[nodiscard]] LoopNest build() const;

 private:
  Statement& current_statement();

  std::string name_;
  std::vector<LoopDim> dims_;
  std::vector<Statement> statements_;
};

/// Convenience factory for "the k-th loop index" in builder expressions.
AffineExpr idx(std::size_t level);

AffineExpr operator+(AffineExpr e, std::int64_t c);
AffineExpr operator-(AffineExpr e, std::int64_t c);
AffineExpr operator+(AffineExpr a, const AffineExpr& b);
AffineExpr operator-(AffineExpr a, const AffineExpr& b);
AffineExpr operator*(std::int64_t k, AffineExpr e);

}  // namespace hypart
