#include "loop/dependence.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "numeric/rat_matrix.hpp"

namespace hypart {

std::string to_string(DependenceKind k) {
  switch (k) {
    case DependenceKind::Flow: return "flow";
    case DependenceKind::Reduction: return "reduction";
    case DependenceKind::InputReuse: return "input-reuse";
  }
  return "?";
}

std::string Dependence::to_string() const {
  return array + " " + hypart::to_string(distance) + " [" + hypart::to_string(kind) + ", " +
         source_statement + " -> " + sink_statement + "]";
}

bool lex_positive(const IntVec& d) {
  for (std::int64_t x : d) {
    if (x > 0) return true;
    if (x < 0) return false;
  }
  return false;
}

std::vector<IntVec> DependenceInfo::distance_vectors() const {
  std::vector<IntVec> out;
  for (const Dependence& d : dependences)
    if (std::find(out.begin(), out.end(), d.distance) == out.end()) out.push_back(d.distance);
  return out;
}

IntMat DependenceInfo::dependence_matrix(std::size_t depth) const {
  std::vector<IntVec> cols = distance_vectors();
  for (const IntVec& c : cols)
    if (c.size() != depth) throw std::invalid_argument("dependence_matrix: depth mismatch");
  return IntMat::from_cols(cols);
}

namespace {

/// Integer lattice generators of the nullspace of an access matrix F.
/// Each generator is primitive and canonicalized to lex-positive.
std::vector<IntVec> nullspace_generators(const IntMat& f) {
  RatMat rf = RatMat::from_int(f);
  std::vector<RatVec> basis = rf.nullspace();
  std::vector<IntVec> gens;
  for (const RatVec& b : basis) {
    std::int64_t l = denominator_lcm(b);
    IntVec g(b.size());
    for (std::size_t i = 0; i < b.size(); ++i) g[i] = (b[i] * Rational(l)).to_integer();
    g = primitive(g);
    if (is_zero(g)) continue;
    if (!lex_positive(g)) g = negate(g);
    gens.push_back(std::move(g));
  }
  return gens;
}

struct SiteRef {
  const Statement* stmt;
  const ArrayAccess* access;
};

}  // namespace

DependenceInfo analyze_dependences(const LoopNest& nest, const DependenceOptions& opts) {
  DependenceInfo info;
  const std::size_t n = nest.depth();

  // Collect accesses per array.
  std::map<std::string, std::vector<SiteRef>> by_array;
  for (const Statement& s : nest.statements())
    for (const ArrayAccess& a : s.accesses) by_array[a.array].push_back({&s, &a});

  std::set<std::pair<std::string, IntVec>> emitted;  // (array, distance) dedup
  auto emit = [&](IntVec d, DependenceKind kind, const std::string& array,
                  const std::string& src, const std::string& dst,
                  const std::vector<AffineExpr>& source_subscripts) {
    if (is_zero(d)) return;  // loop-independent: no loop-carried dependence
    if (!lex_positive(d)) d = negate(d);
    if (!emitted.insert({array, d}).second) return;
    info.dependences.push_back({std::move(d), kind, array, src, dst, source_subscripts});
  };

  for (const auto& [array, sites] : by_array) {
    bool has_writer = std::any_of(sites.begin(), sites.end(), [](const SiteRef& s) {
      return s.access->kind == AccessKind::Write;
    });

    if (!has_writer) {
      if (!opts.include_input_reuse) continue;
      // Read-only array: each access's nullspace directions are reuse chains.
      for (const SiteRef& s : sites) {
        IntMat f = s.access->access_matrix(n);
        for (IntVec g : nullspace_generators(f))
          emit(std::move(g), DependenceKind::InputReuse, array, s.stmt->label, s.stmt->label,
               s.access->subscripts);
      }
      continue;
    }

    for (const SiteRef& w : sites) {
      if (w.access->kind != AccessKind::Write) continue;
      IntMat fw = w.access->access_matrix(n);
      IntVec ow = w.access->offset_vector();
      for (const SiteRef& r : sites) {
        if (r.access->kind != AccessKind::Read) continue;
        IntMat fr = r.access->access_matrix(n);
        IntVec orr = r.access->offset_vector();
        if (fw.rows() != fr.rows()) continue;  // different arity: distinct arrays in practice
        if (!(fw == fr)) {
          std::string msg = "non-uniform dependence on '" + array + "' between " +
                            w.stmt->label + " and " + r.stmt->label +
                            " (access matrices differ)";
          if (opts.require_uniform) throw NonUniformDependenceError(msg);
          info.warnings.push_back(msg);
          continue;
        }
        // F d = f_w - f_r, d = (read iteration) - (write iteration).
        IntVec delta = sub(ow, orr);
        RatMat rf = RatMat::from_int(fw);
        RatVec rhs = to_rational(delta);
        std::optional<RatVec> particular = rf.solve(rhs);
        if (!particular) continue;  // never the same element: no dependence
        std::vector<IntVec> gens = nullspace_generators(fw);

        // Unique-solution case: d must be integral to be a dependence.
        std::int64_t l = denominator_lcm(*particular);
        bool integral = (l == 1);
        IntVec d0(n, 0);
        if (integral)
          for (std::size_t i = 0; i < n; ++i) d0[i] = (*particular)[i].to_integer();

        if (gens.empty()) {
          if (integral)
            emit(std::move(d0), DependenceKind::Flow, array, w.stmt->label, r.stmt->label,
                 w.access->subscripts);
          continue;
        }
        // Rank-deficient access: solutions form d0 + lattice(gens).
        bool same_statement_update = (w.stmt == r.stmt) && is_zero(delta);
        if (same_statement_update && !opts.include_reductions) continue;
        if (!integral) {
          // The particular solution may still be shiftable to an integer
          // point along the lattice; for 1-D lattices check directly.
          // (Conservative: warn and skip otherwise.)
          info.warnings.push_back("non-integral particular solution for '" + array +
                                  "' between " + w.stmt->label + " and " + r.stmt->label);
          continue;
        }
        if (gens.size() > 1 && opts.require_uniform && !is_zero(d0)) {
          std::string msg = "dependence on '" + array + "' between " + w.stmt->label + " and " +
                            r.stmt->label + " has a multi-dimensional solution family";
          info.warnings.push_back(msg);
        }
        DependenceKind kind =
            same_statement_update ? DependenceKind::Reduction : DependenceKind::Flow;
        if (!is_zero(d0))
          emit(d0, DependenceKind::Flow, array, w.stmt->label, r.stmt->label,
               w.access->subscripts);
        for (IntVec g : gens)
          emit(std::move(g), kind, array, w.stmt->label, r.stmt->label, w.access->subscripts);
      }
    }
  }
  return info;
}

}  // namespace hypart
