#include "loop/iter_space.hpp"

#include <algorithm>
#include <stdexcept>

#include "loop/index_set.hpp"

namespace hypart {

namespace {

/// Slab-count cap: beyond this the decomposition is no cheaper than the
/// dense enumeration it replaces, so construction refuses (std::length_error)
/// and callers fall back to the dense path.
constexpr std::size_t kMaxSlabs = std::size_t{1} << 22;

/// Directional derivative of an affine bound along u: sum_k coeffs[k]*u[k].
std::int64_t bound_slope(const AffineExpr& e, const IntVec& u) {
  std::int64_t s = 0;
  for (std::size_t k = 0; k < e.coeffs.size(); ++k) s += e.coeffs[k] * u[k];
  return s;
}

/// Append disjoint boxes covering box \ (other + u); other == nullptr means
/// the subtrahend is empty.  Per dimension, carve off the parts of the
/// remainder strictly below / above the shifted range, then restrict the
/// remainder to the overlap — at most two pieces per dimension, all disjoint.
void box_difference(const std::vector<DimBounds>& box, const std::vector<DimBounds>* other,
                    const IntVec& u, std::vector<std::vector<DimBounds>>& out) {
  if (other == nullptr) {
    out.push_back(box);
    return;
  }
  std::vector<DimBounds> cur = box;
  for (std::size_t j = 0; j < box.size(); ++j) {
    const std::int64_t slo = (*other)[j].first + u[j];
    const std::int64_t shi = (*other)[j].second + u[j];
    if (cur[j].first < slo) {
      std::vector<DimBounds> piece = cur;
      piece[j] = {cur[j].first, std::min(cur[j].second, slo - 1)};
      out.push_back(std::move(piece));
    }
    if (cur[j].second > shi) {
      std::vector<DimBounds> piece = cur;
      piece[j] = {std::max(cur[j].first, shi + 1), cur[j].second};
      out.push_back(std::move(piece));
    }
    cur[j] = {std::max(cur[j].first, slo), std::min(cur[j].second, shi)};
    if (cur[j].first > cur[j].second) return;  // remainder fully carved off
  }
  // cur lies inside other + u: those points are not entries.
}

}  // namespace

IterSpace::IterSpace(std::vector<DimBounds> bounds, std::vector<IntVec> dependences) {
  dims_.reserve(bounds.size());
  for (const auto& [lo, hi] : bounds) dims_.push_back({AffineExpr(lo), AffineExpr(hi)});
  deps_ = std::move(dependences);
  init();
}

IterSpace IterSpace::from_affine(std::vector<AffineDim> dims, std::vector<IntVec> dependences) {
  IterSpace s;
  s.dims_ = std::move(dims);
  s.deps_ = std::move(dependences);
  s.init();
  return s;
}

IterSpace::IterSpace(const LoopNest& nest, std::vector<IntVec> dependences) {
  dims_.reserve(nest.depth());
  for (const LoopDim& d : nest.dims()) dims_.push_back({d.lower, d.upper});
  deps_ = std::move(dependences);
  init();
}

IterSpace IterSpace::from_nest(const LoopNest& nest, const DependenceOptions& opts) {
  DependenceInfo info = analyze_dependences(nest, opts);
  return IterSpace(nest, info.distance_vectors());
}

void IterSpace::init() {
  const std::size_t n = dims_.size();
  if (n == 0) throw std::invalid_argument("IterSpace: empty bounds");
  for (const IntVec& d : deps_) {
    if (d.size() != n) throw std::invalid_argument("IterSpace: dependence dimension mismatch");
    if (is_zero(d)) throw std::invalid_argument("IterSpace: zero dependence vector");
  }
  // Bounds of dimension j may reference only dimensions k < j.
  std::vector<bool> referenced(n, false);
  for (std::size_t j = 0; j < n; ++j) {
    for (const BoundExpr* b : {&dims_[j].lower, &dims_[j].upper}) {
      for (const AffineExpr& e : b->terms) {
        if (e.coeffs.size() > n)
          throw std::invalid_argument("IterSpace: bound references out-of-range index");
        for (std::size_t k = 0; k < e.coeffs.size(); ++k) {
          if (e.coeffs[k] == 0) continue;
          if (k >= j)
            throw std::invalid_argument("IterSpace: bound references a non-outer index");
          referenced[k] = true;
        }
      }
    }
  }
  for (std::size_t k = 0; k < n; ++k)
    if (referenced[k]) sliced_.push_back(k);

  // Enumerate the slabs: fix the sliced coordinates (ascending, so every
  // bound's referenced dimensions are already pinned), evaluate the
  // remaining bounds, keep the non-empty boxes.
  IntVec vals(n, 0);
  std::size_t visited = 0;
  std::function<void(std::size_t)> enumerate = [&](std::size_t si) {
    if (si == sliced_.size()) {
      if (++visited > kMaxSlabs)
        throw std::length_error(
            "IterSpace: slab decomposition exceeds the symbolic cap (too many sliced "
            "subdomains)");
      Slab s;
      s.key.reserve(sliced_.size());
      for (std::size_t d : sliced_) s.key.push_back(vals[d]);
      s.box.resize(n);
      std::uint64_t points = 1;
      for (std::size_t j = 0; j < n; ++j) {
        if (referenced[j]) {
          s.box[j] = {vals[j], vals[j]};
        } else {
          s.box[j] = {dims_[j].lower.evaluate_lower(vals), dims_[j].upper.evaluate_upper(vals)};
          if (s.box[j].first > s.box[j].second) return;  // empty slab
        }
        points *= static_cast<std::uint64_t>(s.box[j].second - s.box[j].first + 1);
      }
      size_ += points;
      slab_index_.emplace(s.key, slabs_.size());
      slabs_.push_back(std::move(s));
      return;
    }
    const std::size_t d = sliced_[si];
    const std::int64_t lo = dims_[d].lower.evaluate_lower(vals);
    const std::int64_t hi = dims_[d].upper.evaluate_upper(vals);
    for (std::int64_t v = lo; v <= hi; ++v) {
      vals[d] = v;
      enumerate(si + 1);
    }
    vals[d] = 0;
  };
  enumerate(0);

  if (sliced_.empty()) {
    rect_bounds_.reserve(n);
    const IntVec zeros(n, 0);
    for (const AffineDim& d : dims_)
      rect_bounds_.emplace_back(d.lower.evaluate_lower(zeros), d.upper.evaluate_upper(zeros));
  }
}

const IterSpace::Slab* IterSpace::slab_at(const IntVec& key) const {
  auto it = slab_index_.find(key);
  return it == slab_index_.end() ? nullptr : &slabs_[it->second];
}

void IterSpace::for_each_slab_box(
    const std::function<void(const std::vector<DimBounds>&)>& visit) const {
  for (const Slab& s : slabs_) visit(s.box);
}

const std::vector<DimBounds>& IterSpace::bounds() const {
  if (!is_rectangular())
    throw std::logic_error("IterSpace::bounds: affine space has no single box");
  return rect_bounds_;
}

std::int64_t IterSpace::extent(std::size_t i) const {
  if (!is_rectangular())
    throw std::logic_error("IterSpace::extent: affine space has no single box");
  const auto& [lo, hi] = rect_bounds_.at(i);
  return hi < lo ? 0 : hi - lo + 1;
}

bool IterSpace::contains(const IntVec& p) const {
  if (p.size() != dims_.size()) return false;
  for (std::size_t j = 0; j < dims_.size(); ++j)
    if (p[j] < dims_[j].lower.evaluate_lower(p) || p[j] > dims_[j].upper.evaluate_upper(p))
      return false;
  return true;
}

std::uint64_t IterSpace::arc_count(const IntVec& d) const {
  if (d.size() != dims_.size())
    throw std::invalid_argument("IterSpace::arc_count: dimension mismatch");
  std::uint64_t total = 0;
  IntVec target_key(sliced_.size());
  for (const Slab& s : slabs_) {
    for (std::size_t i = 0; i < sliced_.size(); ++i) target_key[i] = s.key[i] + d[sliced_[i]];
    const Slab* t = slab_at(target_key);
    if (t == nullptr) continue;
    std::uint64_t prod = 1;
    for (std::size_t j = 0; j < dims_.size(); ++j) {
      const std::int64_t lo = std::max(s.box[j].first, t->box[j].first - d[j]);
      const std::int64_t hi = std::min(s.box[j].second, t->box[j].second - d[j]);
      if (hi < lo) {
        prod = 0;
        break;
      }
      prod *= static_cast<std::uint64_t>(hi - lo + 1);
    }
    total += prod;
  }
  return total;
}

std::uint64_t IterSpace::total_arc_count() const {
  std::uint64_t n = 0;
  for (const IntVec& d : deps_) n += arc_count(d);
  return n;
}

std::int64_t IterSpace::min_step(const IntVec& pi) const {
  if (pi.size() != dims_.size())
    throw std::invalid_argument("IterSpace::min_step: dimension mismatch");
  if (empty()) throw std::logic_error("IterSpace::min_step: empty space");
  std::int64_t best = INT64_MAX;
  for (const Slab& slab : slabs_) {
    std::int64_t s = 0;
    for (std::size_t i = 0; i < dims_.size(); ++i)
      s += pi[i] * (pi[i] >= 0 ? slab.box[i].first : slab.box[i].second);
    best = std::min(best, s);
  }
  return best;
}

std::int64_t IterSpace::max_step(const IntVec& pi) const {
  if (pi.size() != dims_.size())
    throw std::invalid_argument("IterSpace::max_step: dimension mismatch");
  if (empty()) throw std::logic_error("IterSpace::max_step: empty space");
  std::int64_t best = INT64_MIN;
  for (const Slab& slab : slabs_) {
    std::int64_t s = 0;
    for (std::size_t i = 0; i < dims_.size(); ++i)
      s += pi[i] * (pi[i] >= 0 ? slab.box[i].second : slab.box[i].first);
    best = std::max(best, s);
  }
  return best;
}

std::optional<std::pair<std::int64_t, std::int64_t>> IterSpace::line_range(
    const IntVec& p, const IntVec& u) const {
  const std::size_t n = dims_.size();
  if (p.size() != n || u.size() != n)
    throw std::invalid_argument("IterSpace::line_range: dimension mismatch");
  if (is_zero(u)) throw std::invalid_argument("IterSpace::line_range: zero direction");
  std::int64_t k_lo = INT64_MIN, k_hi = INT64_MAX;
  // Each bound is linear along the line: at p + k*u the constraint
  // lower_j(x) <= x_j (resp. x_j <= upper_j(x)) becomes c + k*m >= 0 with
  // the c, m below; m > 0 bounds k from below, m < 0 from above, m == 0 is
  // a constant feasibility test.
  auto apply = [&](std::int64_t c, std::int64_t m) -> bool {
    if (m > 0)
      k_lo = std::max(k_lo, ceil_div(-c, m));
    else if (m < 0)
      k_hi = std::min(k_hi, floor_div(-c, m));
    else if (c < 0)
      return false;
    return k_lo <= k_hi;
  };
  // Multi-term bounds contribute one half-line per term: max(l1,l2) <= x_j
  // is the conjunction of the per-term constraints, so intersecting them
  // keeps the run contiguous.
  for (std::size_t j = 0; j < n; ++j) {
    for (const AffineExpr& t : dims_[j].lower.terms)
      if (!apply(p[j] - t.evaluate(p), u[j] - bound_slope(t, u))) return std::nullopt;
    for (const AffineExpr& t : dims_[j].upper.terms)
      if (!apply(t.evaluate(p) - p[j], bound_slope(t, u) - u[j])) return std::nullopt;
  }
  // A bounded polyhedron cannot admit a half-infinite line; reaching here
  // with an open side would mean the nest's bounds do not close the domain.
  if (k_lo == INT64_MIN || k_hi == INT64_MAX)
    throw std::logic_error("IterSpace::line_range: unbounded line in a finite space");
  return std::make_pair(k_lo, k_hi);
}

void IterSpace::for_each_line(
    const IntVec& u, const std::function<void(const IntVec&, std::int64_t)>& visit) const {
  const std::size_t n = dims_.size();
  if (u.size() != n) throw std::invalid_argument("IterSpace::for_each_line: dimension mismatch");
  if (is_zero(u)) throw std::invalid_argument("IterSpace::for_each_line: zero direction");
  if (empty()) return;

  // The entry points inside slab v are B_v \ (B_{v-u_S} + u): a point of
  // B_v leaves J along -u exactly when its predecessor p - u is outside the
  // only slab that could hold it (slab keys translate with u).  For a
  // rectangular space this degenerates to the classic B \ (B + u) boundary
  // faces.
  IntVec pred_key(sliced_.size());
  std::vector<std::vector<DimBounds>> pieces;
  for (const Slab& s : slabs_) {
    for (std::size_t i = 0; i < sliced_.size(); ++i) pred_key[i] = s.key[i] - u[sliced_[i]];
    const Slab* pred = slab_at(pred_key);
    pieces.clear();
    box_difference(s.box, pred == nullptr ? nullptr : &pred->box, u, pieces);

    for (const std::vector<DimBounds>& region : pieces) {
      // Odometer walk of the piece; the population is the closed-form run
      // length from the entry (line_range's k starts at 0 on an entry).
      IntVec p(n);
      for (std::size_t d = 0; d < n; ++d) p[d] = region[d].first;
      while (true) {
        auto range = line_range(p, u);
        visit(p, range->second + 1);
        std::size_t d = n;
        while (d > 0 && p[d - 1] == region[d - 1].second) {
          p[d - 1] = region[d - 1].first;
          --d;
        }
        if (d == 0) break;
        ++p[d - 1];
      }
    }
  }
}

}  // namespace hypart
