#include "loop/iter_space.hpp"

#include <algorithm>
#include <stdexcept>

#include "loop/index_set.hpp"

namespace hypart {

IterSpace::IterSpace(std::vector<DimBounds> bounds, std::vector<IntVec> dependences)
    : bounds_(std::move(bounds)), deps_(std::move(dependences)) {
  if (bounds_.empty()) throw std::invalid_argument("IterSpace: empty bounds");
  for (const IntVec& d : deps_) {
    if (d.size() != bounds_.size())
      throw std::invalid_argument("IterSpace: dependence dimension mismatch");
    if (is_zero(d)) throw std::invalid_argument("IterSpace: zero dependence vector");
  }
}

IterSpace IterSpace::from_nest(const LoopNest& nest, const DependenceOptions& opts) {
  if (!nest.is_rectangular())
    throw std::invalid_argument("IterSpace::from_nest: nest is not rectangular");
  DependenceInfo info = analyze_dependences(nest, opts);
  return IterSpace(IndexSet(nest).rectangular_bounds(), info.distance_vectors());
}

std::uint64_t IterSpace::size() const {
  std::uint64_t n = 1;
  for (const auto& [lo, hi] : bounds_) {
    if (hi < lo) return 0;
    n *= static_cast<std::uint64_t>(hi - lo + 1);
  }
  return n;
}

std::int64_t IterSpace::extent(std::size_t i) const {
  const auto& [lo, hi] = bounds_.at(i);
  return hi < lo ? 0 : hi - lo + 1;
}

bool IterSpace::contains(const IntVec& p) const {
  if (p.size() != bounds_.size()) return false;
  for (std::size_t i = 0; i < bounds_.size(); ++i)
    if (p[i] < bounds_[i].first || p[i] > bounds_[i].second) return false;
  return true;
}

std::uint64_t IterSpace::arc_count(const IntVec& d) const {
  if (d.size() != bounds_.size())
    throw std::invalid_argument("IterSpace::arc_count: dimension mismatch");
  std::uint64_t n = 1;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    std::int64_t span = extent(i) - (d[i] < 0 ? -d[i] : d[i]);
    if (span <= 0) return 0;
    n *= static_cast<std::uint64_t>(span);
  }
  return n;
}

std::uint64_t IterSpace::total_arc_count() const {
  std::uint64_t n = 0;
  for (const IntVec& d : deps_) n += arc_count(d);
  return n;
}

std::int64_t IterSpace::min_step(const IntVec& pi) const {
  if (pi.size() != bounds_.size())
    throw std::invalid_argument("IterSpace::min_step: dimension mismatch");
  if (empty()) throw std::logic_error("IterSpace::min_step: empty space");
  std::int64_t s = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i)
    s += pi[i] * (pi[i] >= 0 ? bounds_[i].first : bounds_[i].second);
  return s;
}

std::int64_t IterSpace::max_step(const IntVec& pi) const {
  if (pi.size() != bounds_.size())
    throw std::invalid_argument("IterSpace::max_step: dimension mismatch");
  if (empty()) throw std::logic_error("IterSpace::max_step: empty space");
  std::int64_t s = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i)
    s += pi[i] * (pi[i] >= 0 ? bounds_[i].second : bounds_[i].first);
  return s;
}

std::optional<std::pair<std::int64_t, std::int64_t>> IterSpace::line_range(
    const IntVec& p, const IntVec& u) const {
  if (p.size() != bounds_.size() || u.size() != bounds_.size())
    throw std::invalid_argument("IterSpace::line_range: dimension mismatch");
  if (is_zero(u)) throw std::invalid_argument("IterSpace::line_range: zero direction");
  std::int64_t k_lo = INT64_MIN, k_hi = INT64_MAX;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const auto& [lo, hi] = bounds_[i];
    if (hi < lo) return std::nullopt;
    if (u[i] == 0) {
      if (p[i] < lo || p[i] > hi) return std::nullopt;
      continue;
    }
    // lo <= p_i + k*u_i <= hi, solved per sign of u_i with exact rounding.
    std::int64_t a = u[i] > 0 ? ceil_div(lo - p[i], u[i]) : ceil_div(hi - p[i], u[i]);
    std::int64_t b = u[i] > 0 ? floor_div(hi - p[i], u[i]) : floor_div(lo - p[i], u[i]);
    k_lo = std::max(k_lo, a);
    k_hi = std::min(k_hi, b);
    if (k_lo > k_hi) return std::nullopt;
  }
  return std::make_pair(k_lo, k_hi);
}

void IterSpace::for_each_line(
    const IntVec& u, const std::function<void(const IntVec&, std::int64_t)>& visit) const {
  const std::size_t n = bounds_.size();
  if (u.size() != n) throw std::invalid_argument("IterSpace::for_each_line: dimension mismatch");
  if (is_zero(u)) throw std::invalid_argument("IterSpace::for_each_line: zero direction");
  if (empty()) return;

  // The entry points {p in Box : p - u not in Box} decompose into at most n
  // disjoint boundary slabs: slab i takes the entry face of dimension i
  // (p_i within |u_i| of the boundary u points away from) and, for every
  // earlier dimension j with u_j != 0, the contiguous complement of j's
  // entry face — so no point is visited twice.
  for (std::size_t i = 0; i < n; ++i) {
    if (u[i] == 0) continue;
    std::vector<DimBounds> region = bounds_;
    if (u[i] > 0)
      region[i] = {bounds_[i].first, std::min(bounds_[i].second, bounds_[i].first + u[i] - 1)};
    else
      region[i] = {std::max(bounds_[i].first, bounds_[i].second + u[i] + 1), bounds_[i].second};
    bool degenerate = region[i].first > region[i].second;
    for (std::size_t j = 0; j < i && !degenerate; ++j) {
      if (u[j] == 0) continue;
      if (u[j] > 0)
        region[j] = {bounds_[j].first + u[j], bounds_[j].second};
      else
        region[j] = {bounds_[j].first, bounds_[j].second + u[j]};
      degenerate = region[j].first > region[j].second;
    }
    if (degenerate) continue;

    // Odometer walk of the slab; the line population is 1 + the largest k
    // with p + k*u still inside (a min over the nonzero direction dims).
    IntVec p(n);
    for (std::size_t d = 0; d < n; ++d) p[d] = region[d].first;
    while (true) {
      std::int64_t kmax = INT64_MAX;
      for (std::size_t d = 0; d < n; ++d) {
        if (u[d] == 0) continue;
        std::int64_t room = u[d] > 0 ? (bounds_[d].second - p[d]) / u[d]
                                     : (p[d] - bounds_[d].first) / (-u[d]);
        kmax = std::min(kmax, room);
      }
      visit(p, kmax + 1);
      std::size_t d = n;
      while (d > 0 && p[d - 1] == region[d - 1].second) {
        p[d - 1] = region[d - 1].first;
        --d;
      }
      if (d == 0) break;
      ++p[d - 1];
    }
  }
}

}  // namespace hypart
