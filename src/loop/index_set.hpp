// hypart — enumeration of the index set J^n of a loop nest.
//
// J^n = { (i1..in) | l_j <= i_j <= u_j } with bounds that may depend on
// outer indices (paper Section II).  The set is the vertex set of the
// computational structure and the domain of the partitioning algorithm.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "loop/loop_nest.hpp"
#include "numeric/int_linalg.hpp"

namespace hypart {

/// A view of the iteration domain of a LoopNest.
class IndexSet {
 public:
  explicit IndexSet(const LoopNest& nest);

  [[nodiscard]] std::size_t depth() const { return dims_.size(); }

  /// Invoke `visit` for every index point in lexicographic order.
  void for_each(const std::function<void(const IntVec&)>& visit) const;

  /// Materialize all index points (lexicographic order).
  [[nodiscard]] std::vector<IntVec> points() const;

  /// Number of points, without materializing.
  [[nodiscard]] std::uint64_t size() const;

  /// Membership test (bounds evaluated with the point's own outer indices).
  [[nodiscard]] bool contains(const IntVec& point) const;

  /// Inclusive bounds of dimension `j` given the outer indices
  /// (point[0..j-1] are read; deeper entries ignored).
  [[nodiscard]] std::int64_t lower(std::size_t j, const IntVec& outer) const;
  [[nodiscard]] std::int64_t upper(std::size_t j, const IntVec& outer) const;

  /// For a rectangular nest: the constant bounds per dimension.
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::int64_t>> rectangular_bounds() const;

 private:
  std::vector<LoopDim> dims_;
};

}  // namespace hypart
