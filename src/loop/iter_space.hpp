// hypart — closed-form rectangular iteration space (the symbolic spine).
//
// IterSpace represents the index set J^n of a *rectangular* loop nest as
// per-dimension inclusive bounds plus constant dependence vectors — never as
// a point list.  On a box every quantity the partitioning pipeline needs has
// a closed form: the point count is a product of extents, the arc count of a
// dependence d is prod_i max(0, extent_i - |d_i|), the schedule span of a
// time function is attained at box corners, and a projection line meets the
// box in one contiguous run of its minimal integer step.  Stages that accept
// an IterSpace therefore run in O(lines + deps) instead of O(points); see
// docs/iterspace.md for the derivations and the dense-fallback rules.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "loop/dependence.hpp"
#include "loop/loop_nest.hpp"
#include "numeric/int_linalg.hpp"

namespace hypart {

/// Floor/ceil integer division for arbitrary signs (b != 0); C++ `/`
/// truncates toward zero, which is wrong for the negative line-range bounds.
[[nodiscard]] constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  return (a % b != 0 && ((a < 0) != (b < 0))) ? q - 1 : q;
}
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  return (a % b != 0 && ((a < 0) == (b < 0))) ? q + 1 : q;
}

/// Inclusive per-dimension bounds [lower, upper].
using DimBounds = std::pair<std::int64_t, std::int64_t>;

class IterSpace {
 public:
  /// Build from explicit bounds and constant dependence vectors (the same
  /// validation rules as ComputationStructure: nonzero, dimension-matched).
  IterSpace(std::vector<DimBounds> bounds, std::vector<IntVec> dependences);

  /// Build from a rectangular nest, analyzing dependences automatically;
  /// throws std::invalid_argument if the nest is not rectangular.
  static IterSpace from_nest(const LoopNest& nest, const DependenceOptions& opts = {});

  [[nodiscard]] std::size_t dimension() const { return bounds_.size(); }
  [[nodiscard]] const std::vector<DimBounds>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<IntVec>& dependences() const { return deps_; }

  /// Number of index points (product of extents), without enumeration.
  [[nodiscard]] std::uint64_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Points along dimension `i` (0 when the range is empty).
  [[nodiscard]] std::int64_t extent(std::size_t i) const;

  [[nodiscard]] bool contains(const IntVec& p) const;

  /// #{ j : j in J and j + d in J } — the arc count of one dependence:
  /// prod_i max(0, extent_i - |d_i|).
  [[nodiscard]] std::uint64_t arc_count(const IntVec& d) const;

  /// Total dependence arcs over all dependence vectors (the dense
  /// ComputationStructure::dependence_arc_count, without the points).
  [[nodiscard]] std::uint64_t total_arc_count() const;

  /// Extremes of Π·x over the box (attained at corners); throw
  /// std::logic_error when the space is empty.
  [[nodiscard]] std::int64_t min_step(const IntVec& pi) const;
  [[nodiscard]] std::int64_t max_step(const IntVec& pi) const;

  /// The k-interval {k : p + k*u in J} of the line through p with direction
  /// u (u != 0; p itself need not be inside); nullopt when the line misses
  /// the box.  The intersection of a line with a box is always contiguous.
  [[nodiscard]] std::optional<std::pair<std::int64_t, std::int64_t>> line_range(
      const IntVec& p, const IntVec& u) const;

  /// Enumerate every line of direction u meeting the box exactly once,
  /// visiting (entry point, population).  The entry point is the unique line
  /// point with entry - u outside the box (the smallest point along +u); the
  /// population is the closed-form run length.  Cost O(N^{d-1}) — the entry
  /// points form at most `dimension()` disjoint boundary slabs — versus the
  /// O(N^d) dense projection.
  void for_each_line(const IntVec& u,
                     const std::function<void(const IntVec&, std::int64_t)>& visit) const;

 private:
  std::vector<DimBounds> bounds_;
  std::vector<IntVec> deps_;
};

}  // namespace hypart
