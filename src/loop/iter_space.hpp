// hypart — closed-form affine iteration space (the symbolic spine).
//
// IterSpace represents the index set J^n of a loop nest whose bounds are
// affine in the outer indices — never as a point list.  Because every
// dimension contributes one affine lower and one affine upper bound, J is
// the integer hull of a convex polyhedron, so a line meets J in one
// contiguous run and every quantity the partitioning pipeline needs has a
// closed form over a *slab decomposition*:
//
//   Let S be the set of dimensions referenced by some other dimension's
//   bound (the "sliced" dimensions; for a rectangular nest S is empty).
//   Fixing the S-coordinates to concrete values v makes every remaining
//   bound constant, so J splits into disjoint rectangular slabs
//   J = ⨆_v B_v, one box per feasible v, keyed by v.  Innermost dimensions
//   are never sliced (nothing can reference them), so the number of slabs
//   is O(N^{n-1}) — the same order as the number of projection lines, not
//   the number of points.
//
// Per-slab closed forms, summed over slabs (docs/affine-spaces.md derives
// each one and works the triangular-matvec example):
//   * point count        — product of extents of B_v;
//   * arc count of dep d — overlap volume of B_v with B_{v+d_S} shifted by
//                          -d, where v+d_S is the *unique* slab that can
//                          receive arcs from B_v (slab keys translate with
//                          the dependence);
//   * schedule span      — Π·x extremes are attained at slab corners;
//   * line enumeration   — the entry points of direction u inside B_v are
//                          exactly B_v \ (B_{v-u_S} + u), a set difference
//                          of boxes that splits into ≤ 2n disjoint boxes.
// Stages that accept an IterSpace therefore run in O(lines + slabs·n + deps)
// instead of O(points); see docs/iterspace.md for the box-level derivations
// and the dense-fallback rules.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "loop/dependence.hpp"
#include "loop/loop_nest.hpp"
#include "numeric/int_linalg.hpp"

namespace hypart {

/// Floor/ceil integer division for arbitrary signs (b != 0); C++ `/`
/// truncates toward zero, which is wrong for the negative line-range bounds.
[[nodiscard]] constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  return (a % b != 0 && ((a < 0) != (b < 0))) ? q - 1 : q;
}
[[nodiscard]] constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  return (a % b != 0 && ((a < 0) == (b < 0))) ? q + 1 : q;
}

/// Inclusive per-dimension bounds [lower, upper].
using DimBounds = std::pair<std::int64_t, std::int64_t>;

/// One dimension `for I_j = lower to upper` with bounds affine in the outer
/// indices I_1..I_{j-1} (the paper's loop model, Section II).  A bound may
/// carry several affine terms (BoundExpr): the lower bound is their max,
/// the upper their min.  Each term is an independent half-space, so the
/// space stays convex and every slab/line closed form applies per term —
/// the comparison hyperplane of e.g. `j <= min(i, n-i)` is where the
/// active term switches, and the slab enumeration splits there naturally
/// because the pinned outer coordinates decide the min pointwise.
struct AffineDim {
  BoundExpr lower;
  BoundExpr upper;
};

class IterSpace {
 public:
  /// Build a rectangular space from explicit bounds and constant dependence
  /// vectors (the same validation rules as ComputationStructure: nonzero,
  /// dimension-matched).
  IterSpace(std::vector<DimBounds> bounds, std::vector<IntVec> dependences);

  /// Build an affine space: each dimension's bounds may reference earlier
  /// dimensions (coefficients on later indices must be zero).  Throws
  /// std::invalid_argument on malformed bounds/dependences and
  /// std::length_error when the slab decomposition would exceed the
  /// internal cap (callers fall back to the dense path).  A named factory
  /// because braced dimension lists would be ambiguous with the DimBounds
  /// constructor.
  static IterSpace from_affine(std::vector<AffineDim> dims, std::vector<IntVec> dependences);

  /// Build from any nest with affine bounds plus externally analyzed
  /// dependence vectors (what run_pipeline uses).
  IterSpace(const LoopNest& nest, std::vector<IntVec> dependences);

  /// Build from a nest, analyzing dependences automatically.
  static IterSpace from_nest(const LoopNest& nest, const DependenceOptions& opts = {});

  [[nodiscard]] std::size_t dimension() const { return dims_.size(); }
  [[nodiscard]] const std::vector<AffineDim>& affine_dims() const { return dims_; }
  [[nodiscard]] const std::vector<IntVec>& dependences() const { return deps_; }

  /// True when no dimension's bounds reference another (single-box space).
  [[nodiscard]] bool is_rectangular() const { return sliced_.empty(); }
  /// Dimensions some bound references, ascending (empty iff rectangular).
  [[nodiscard]] const std::vector<std::size_t>& sliced_dims() const { return sliced_; }
  /// Number of non-empty boxes in the slab decomposition (1 for a non-empty
  /// rectangular space).
  [[nodiscard]] std::size_t slab_count() const { return slabs_.size(); }

  /// Constant per-dimension bounds; throws std::logic_error unless
  /// is_rectangular().
  [[nodiscard]] const std::vector<DimBounds>& bounds() const;

  /// Number of index points (sum of per-slab extent products), without
  /// enumeration.
  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Points along dimension `i` (0 when the range is empty); rectangular
  /// spaces only — affine dimensions have no single extent.
  [[nodiscard]] std::int64_t extent(std::size_t i) const;

  /// Membership is direct polyhedron evaluation: p is inside iff every
  /// dimension's bounds, evaluated at p's own outer coordinates, admit it.
  [[nodiscard]] bool contains(const IntVec& p) const;

  /// #{ j : j in J and j + d in J } — the arc count of one dependence.
  /// Arcs leaving slab v land in the unique slab keyed v + d_S; the count
  /// is the overlap volume of B_v with B_{v+d_S} translated by -d (on a box
  /// this reduces to prod_i max(0, extent_i - |d_i|)).
  [[nodiscard]] std::uint64_t arc_count(const IntVec& d) const;

  /// Total dependence arcs over all dependence vectors (the dense
  /// ComputationStructure::dependence_arc_count, without the points).
  [[nodiscard]] std::uint64_t total_arc_count() const;

  /// Extremes of Π·x over J, attained at slab corners; throw
  /// std::logic_error when the space is empty.
  [[nodiscard]] std::int64_t min_step(const IntVec& pi) const;
  [[nodiscard]] std::int64_t max_step(const IntVec& pi) const;

  /// The k-interval {k : p + k*u in J} of the line through p with direction
  /// u (u != 0; p itself need not be inside); nullopt when the line misses
  /// J.  Each affine bound `lower_j(x) <= x_j <= upper_j(x)` is linear along
  /// the line, so it contributes one half-line of feasible k; J convex
  /// keeps the intersection contiguous.
  [[nodiscard]] std::optional<std::pair<std::int64_t, std::int64_t>> line_range(
      const IntVec& p, const IntVec& u) const;

  /// Visit the constant box of every slab (per-dimension inclusive bounds;
  /// exactly one box for a non-empty rectangular space).  The boxes
  /// partition J, so per-slab closed forms summed over this visitation
  /// cover the whole space — partition/group_lattice.cpp derives each
  /// slab's line-index interval this way.
  void for_each_slab_box(const std::function<void(const std::vector<DimBounds>&)>& visit) const;

  /// Enumerate every line of direction u meeting J exactly once, visiting
  /// (entry point, population).  The entry point is the unique line point
  /// with entry - u outside J (the smallest point along +u); the population
  /// is the closed-form run length.  Entries inside slab v are
  /// B_v \ (B_{v-u_S} + u), decomposed into <= 2n disjoint boxes per slab;
  /// cost O(lines + slabs * n) versus the O(points) dense projection.
  void for_each_line(const IntVec& u,
                     const std::function<void(const IntVec&, std::int64_t)>& visit) const;

 private:
  IterSpace() = default;  // for the named factories

  /// One box of the decomposition: the S-coordinates pinned to `key` (in
  /// sliced_dims() order) and the per-dimension constant bounds.
  struct Slab {
    IntVec key;
    std::vector<DimBounds> box;
  };

  void init();
  [[nodiscard]] const Slab* slab_at(const IntVec& key) const;

  std::vector<AffineDim> dims_;
  std::vector<IntVec> deps_;
  std::vector<std::size_t> sliced_;
  std::vector<Slab> slabs_;                ///< non-empty boxes only
  std::map<IntVec, std::size_t> slab_index_;  ///< key -> index into slabs_
  std::vector<DimBounds> rect_bounds_;     ///< populated iff is_rectangular()
  std::uint64_t size_ = 0;
};

}  // namespace hypart
