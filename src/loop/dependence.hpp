// hypart — uniform (constant) loop-carried dependence extraction.
//
// The hyperplane method applies to nests with *constant* dependence vectors
// (paper Section II).  This analyzer recovers the dependence set D from the
// affine array accesses of a LoopNest:
//
//  * flow dependences: a write F*i+f_w and a read F*j+f_r of the same array
//    touch the same element iff F(j-i) = f_w-f_r; a unique integral solution
//    d is a constant dependence vector (L1's (0,1), (1,1), (1,0));
//  * reduction/propagation dependences: when F is rank-deficient and the
//    offsets match, the dependence distances form the lattice F's nullspace;
//    its primitive generators are the constant dependences (matmul's C along
//    (0,0,1));
//  * input-reuse dependences: a read-only access with rank-deficient F means
//    one value is consumed along the nullspace directions; on a message-
//    passing machine that routing is real communication, and the paper's
//    rewrites (L3, L5) make it explicit.  We generate the same vectors
//    directly (matmul's A along (0,1,0) and B along (1,0,0); matvec's x
//    along (1,0)).
//
// Dependences are canonicalized to lexicographically positive distances.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "loop/loop_nest.hpp"
#include "numeric/int_linalg.hpp"

namespace hypart {

enum class DependenceKind {
  Flow,       ///< value produced at i, consumed at i+d
  Reduction,  ///< same-location update chain (write & read with equal access)
  InputReuse  ///< read-only value forwarded along d
};

std::string to_string(DependenceKind k);

/// One constant dependence vector with provenance.
struct Dependence {
  IntVec distance;  ///< lexicographically positive, non-zero
  DependenceKind kind = DependenceKind::Flow;
  std::string array;
  std::string source_statement;
  std::string sink_statement;
  /// Subscripts of the access at the *source* iteration (the element whose
  /// value travels along `distance`); used by the distributed interpreter
  /// to route values and by the SPMD code generator to emit sends.
  std::vector<AffineExpr> source_subscripts;

  [[nodiscard]] std::string to_string() const;
};

struct DependenceOptions {
  bool include_input_reuse = true;   ///< model read-only value routing (see above)
  bool include_reductions = true;    ///< model same-location update chains
  bool require_uniform = true;       ///< throw on genuinely non-uniform pairs
};

/// Result of the analysis.
struct DependenceInfo {
  std::vector<Dependence> dependences;  ///< deduplicated by distance vector
  std::vector<std::string> warnings;    ///< non-uniform pairs, skipped accesses

  /// Distinct distance vectors (the paper's set D), in deterministic order.
  [[nodiscard]] std::vector<IntVec> distance_vectors() const;
  /// Dependence matrix whose columns are the distance vectors (Example 2).
  [[nodiscard]] IntMat dependence_matrix(std::size_t depth) const;
};

class NonUniformDependenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Analyze a loop nest and extract its constant dependence vectors.
DependenceInfo analyze_dependences(const LoopNest& nest, const DependenceOptions& opts = {});

/// True if d is lexicographically positive (first nonzero entry > 0).
bool lex_positive(const IntVec& d);

}  // namespace hypart
