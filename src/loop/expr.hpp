// hypart — expression IR for loop-body semantics.
//
// The cost model only needs access patterns, but proving that a partition
// and mapping are *semantically* correct (the paper's Theorem 1 in action)
// requires executing the loop.  Statements may carry a right-hand-side
// expression tree; the interpreters in exec/interpreter.hpp evaluate it
// sequentially and under distributed message-passing execution and compare
// results.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "loop/loop_nest.hpp"

namespace hypart {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression tree node.
struct Expr {
  enum class Kind { Constant, ArrayRef, Add, Sub, Mul, Div, Min, Max, Neg };

  Kind kind = Kind::Constant;
  double constant = 0.0;                 ///< Kind::Constant
  std::string array;                     ///< Kind::ArrayRef
  std::vector<AffineExpr> subscripts;    ///< Kind::ArrayRef
  ExprPtr lhs;                           ///< binary ops / Neg
  ExprPtr rhs;                           ///< binary ops

  [[nodiscard]] std::string to_string(const std::vector<std::string>& index_names = {}) const;
};

// ---- constructors -----------------------------------------------------------

ExprPtr constant(double v);
ExprPtr ref(std::string array, std::vector<AffineExpr> subscripts);

ExprPtr operator+(ExprPtr a, ExprPtr b);
ExprPtr operator-(ExprPtr a, ExprPtr b);
ExprPtr operator*(ExprPtr a, ExprPtr b);
ExprPtr operator/(ExprPtr a, ExprPtr b);
ExprPtr emin(ExprPtr a, ExprPtr b);
ExprPtr emax(ExprPtr a, ExprPtr b);
ExprPtr operator-(ExprPtr a);

/// All ArrayRef nodes in the tree (pre-order).
void collect_refs(const ExprPtr& e, std::vector<const Expr*>& out);

/// Number of arithmetic operations in the tree (the statement's flops).
std::int64_t operation_count(const ExprPtr& e);

/// Evaluate with a value-lookup callback for array references.
double evaluate(const ExprPtr& e,
                const std::function<double(const std::string&, const IntVec&)>& load,
                const IntVec& iteration);

}  // namespace hypart
