#include "loop/expr.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hypart {

namespace {

ExprPtr binary(Expr::Kind kind, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

}  // namespace

ExprPtr constant(double v) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Constant;
  e->constant = v;
  return e;
}

ExprPtr ref(std::string array, std::vector<AffineExpr> subscripts) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::ArrayRef;
  e->array = std::move(array);
  e->subscripts = std::move(subscripts);
  return e;
}

ExprPtr operator+(ExprPtr a, ExprPtr b) { return binary(Expr::Kind::Add, std::move(a), std::move(b)); }
ExprPtr operator-(ExprPtr a, ExprPtr b) { return binary(Expr::Kind::Sub, std::move(a), std::move(b)); }
ExprPtr operator*(ExprPtr a, ExprPtr b) { return binary(Expr::Kind::Mul, std::move(a), std::move(b)); }
ExprPtr operator/(ExprPtr a, ExprPtr b) { return binary(Expr::Kind::Div, std::move(a), std::move(b)); }
ExprPtr emin(ExprPtr a, ExprPtr b) { return binary(Expr::Kind::Min, std::move(a), std::move(b)); }
ExprPtr emax(ExprPtr a, ExprPtr b) { return binary(Expr::Kind::Max, std::move(a), std::move(b)); }

ExprPtr operator-(ExprPtr a) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Neg;
  e->lhs = std::move(a);
  return e;
}

std::string Expr::to_string(const std::vector<std::string>& index_names) const {
  std::ostringstream os;
  switch (kind) {
    case Kind::Constant: {
      // Shortest representation that round-trips, so unparse -> parse is
      // value-exact (std::to_chars shortest form).
      char buf[32];
      auto res = std::to_chars(buf, buf + sizeof buf, constant);
      os << std::string_view(buf, static_cast<std::size_t>(res.ptr - buf));
      break;
    }
    case Kind::ArrayRef: {
      os << array << "[";
      for (std::size_t i = 0; i < subscripts.size(); ++i)
        os << (i ? "," : "") << subscripts[i].to_string(index_names);
      os << "]";
      break;
    }
    case Kind::Neg: os << "-(" << lhs->to_string(index_names) << ")"; break;
    case Kind::Min:
      os << "min(" << lhs->to_string(index_names) << ", " << rhs->to_string(index_names) << ")";
      break;
    case Kind::Max:
      os << "max(" << lhs->to_string(index_names) << ", " << rhs->to_string(index_names) << ")";
      break;
    default: {
      const char* op = kind == Kind::Add   ? " + "
                       : kind == Kind::Sub ? " - "
                       : kind == Kind::Mul ? " * "
                                           : " / ";
      os << "(" << lhs->to_string(index_names) << op << rhs->to_string(index_names) << ")";
    }
  }
  return os.str();
}

void collect_refs(const ExprPtr& e, std::vector<const Expr*>& out) {
  if (!e) return;
  if (e->kind == Expr::Kind::ArrayRef) out.push_back(e.get());
  collect_refs(e->lhs, out);
  collect_refs(e->rhs, out);
}

std::int64_t operation_count(const ExprPtr& e) {
  if (!e) return 0;
  std::int64_t ops = 0;
  switch (e->kind) {
    case Expr::Kind::Constant:
    case Expr::Kind::ArrayRef: break;
    default: ops = 1;
  }
  return ops + operation_count(e->lhs) + operation_count(e->rhs);
}

double evaluate(const ExprPtr& e,
                const std::function<double(const std::string&, const IntVec&)>& load,
                const IntVec& iteration) {
  if (!e) throw std::invalid_argument("evaluate: null expression");
  switch (e->kind) {
    case Expr::Kind::Constant: return e->constant;
    case Expr::Kind::ArrayRef: {
      IntVec element(e->subscripts.size());
      for (std::size_t i = 0; i < e->subscripts.size(); ++i)
        element[i] = e->subscripts[i].evaluate(iteration);
      return load(e->array, element);
    }
    case Expr::Kind::Neg: return -evaluate(e->lhs, load, iteration);
    case Expr::Kind::Add: return evaluate(e->lhs, load, iteration) + evaluate(e->rhs, load, iteration);
    case Expr::Kind::Sub: return evaluate(e->lhs, load, iteration) - evaluate(e->rhs, load, iteration);
    case Expr::Kind::Mul: return evaluate(e->lhs, load, iteration) * evaluate(e->rhs, load, iteration);
    case Expr::Kind::Div: return evaluate(e->lhs, load, iteration) / evaluate(e->rhs, load, iteration);
    case Expr::Kind::Min:
      return std::min(evaluate(e->lhs, load, iteration), evaluate(e->rhs, load, iteration));
    case Expr::Kind::Max:
      return std::max(evaluate(e->lhs, load, iteration), evaluate(e->rhs, load, iteration));
  }
  throw std::logic_error("evaluate: unknown expression kind");
}

}  // namespace hypart
