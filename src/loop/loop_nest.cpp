#include "loop/loop_nest.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "loop/expr.hpp"

namespace hypart {

AffineExpr AffineExpr::index(std::size_t level, std::int64_t coefficient, std::int64_t offset) {
  AffineExpr e;
  e.constant = offset;
  e.coeffs.assign(level + 1, 0);
  e.coeffs[level] = coefficient;
  return e;
}

std::int64_t AffineExpr::evaluate(const IntVec& indices) const {
  std::int64_t v = constant;
  if (coeffs.size() > indices.size())
    throw std::invalid_argument("AffineExpr::evaluate: too few indices");
  for (std::size_t k = 0; k < coeffs.size(); ++k)
    v = detail::checked_add(v, detail::checked_mul(coeffs[k], indices[k]));
  return v;
}

bool AffineExpr::is_constant() const { return is_zero(coeffs); }

std::string AffineExpr::to_string(const std::vector<std::string>& index_names) const {
  std::ostringstream os;
  bool first = true;
  for (std::size_t k = 0; k < coeffs.size(); ++k) {
    if (coeffs[k] == 0) continue;
    std::string var = k < index_names.size() ? index_names[k] : ("i" + std::to_string(k + 1));
    if (!first) os << (coeffs[k] > 0 ? "+" : "-");
    else if (coeffs[k] < 0) os << "-";
    std::int64_t a = coeffs[k] < 0 ? -coeffs[k] : coeffs[k];
    if (a != 1) os << a << "*";
    os << var;
    first = false;
  }
  if (constant != 0 || first) {
    if (!first && constant > 0) os << "+";
    os << constant;
  }
  return os.str();
}

BoundExpr::BoundExpr(std::vector<AffineExpr> ts) : terms(std::move(ts)) {
  if (terms.empty()) throw std::invalid_argument("BoundExpr: at least one term required");
}

const AffineExpr& BoundExpr::term() const {
  if (!single()) throw std::logic_error("BoundExpr::term: bound has multiple terms");
  return terms.front();
}

bool BoundExpr::is_constant() const {
  for (const AffineExpr& t : terms)
    if (!t.is_constant()) return false;
  return true;
}

std::int64_t BoundExpr::evaluate_lower(const IntVec& indices) const {
  std::int64_t v = terms.front().evaluate(indices);
  for (std::size_t k = 1; k < terms.size(); ++k)
    v = std::max(v, terms[k].evaluate(indices));
  return v;
}

std::int64_t BoundExpr::evaluate_upper(const IntVec& indices) const {
  std::int64_t v = terms.front().evaluate(indices);
  for (std::size_t k = 1; k < terms.size(); ++k)
    v = std::min(v, terms[k].evaluate(indices));
  return v;
}

std::int64_t BoundExpr::constant_lower() const {
  std::int64_t v = terms.front().constant;
  for (std::size_t k = 1; k < terms.size(); ++k) v = std::max(v, terms[k].constant);
  return v;
}

std::int64_t BoundExpr::constant_upper() const {
  std::int64_t v = terms.front().constant;
  for (std::size_t k = 1; k < terms.size(); ++k) v = std::min(v, terms[k].constant);
  return v;
}

std::string BoundExpr::to_string(const std::vector<std::string>& index_names,
                                 bool as_lower) const {
  if (single()) return terms.front().to_string(index_names);
  std::string s = as_lower ? "max(" : "min(";
  for (std::size_t k = 0; k < terms.size(); ++k) {
    if (k) s += ", ";
    s += terms[k].to_string(index_names);
  }
  return s + ")";
}

BoundExpr bmax(AffineExpr a, AffineExpr b) {
  return BoundExpr(std::vector<AffineExpr>{std::move(a), std::move(b)});
}

BoundExpr bmin(AffineExpr a, AffineExpr b) {
  return BoundExpr(std::vector<AffineExpr>{std::move(a), std::move(b)});
}

bool operator==(const AffineExpr& a, const AffineExpr& b) {
  std::size_t n = std::max(a.coeffs.size(), b.coeffs.size());
  for (std::size_t k = 0; k < n; ++k) {
    std::int64_t ca = k < a.coeffs.size() ? a.coeffs[k] : 0;
    std::int64_t cb = k < b.coeffs.size() ? b.coeffs[k] : 0;
    if (ca != cb) return false;
  }
  return a.constant == b.constant;
}

IntMat ArrayAccess::access_matrix(std::size_t depth) const {
  IntMat f(subscripts.size(), depth);
  for (std::size_t r = 0; r < subscripts.size(); ++r) {
    const IntVec& coeffs = subscripts[r].coeffs;
    if (coeffs.size() > depth)
      throw std::invalid_argument("ArrayAccess: subscript references index deeper than nest");
    for (std::size_t c = 0; c < coeffs.size(); ++c) f.at(r, c) = coeffs[c];
  }
  return f;
}

IntVec ArrayAccess::offset_vector() const {
  IntVec f(subscripts.size());
  for (std::size_t r = 0; r < subscripts.size(); ++r) f[r] = subscripts[r].constant;
  return f;
}

std::string ArrayAccess::to_string(const std::vector<std::string>& index_names) const {
  std::string s = array + "[";
  for (std::size_t i = 0; i < subscripts.size(); ++i) {
    if (i) s += ",";
    s += subscripts[i].to_string(index_names);
  }
  return s + "]";
}

std::vector<ArrayAccess> Statement::reads() const {
  std::vector<ArrayAccess> r;
  for (const ArrayAccess& a : accesses)
    if (a.kind == AccessKind::Read) r.push_back(a);
  return r;
}

std::vector<ArrayAccess> Statement::writes() const {
  std::vector<ArrayAccess> w;
  for (const ArrayAccess& a : accesses)
    if (a.kind == AccessKind::Write) w.push_back(a);
  return w;
}

LoopNest::LoopNest(std::string name, std::vector<LoopDim> dims, std::vector<Statement> statements)
    : name_(std::move(name)), dims_(std::move(dims)), statements_(std::move(statements)) {
  if (dims_.empty()) throw std::invalid_argument("LoopNest: at least one loop dimension required");
  for (std::size_t j = 0; j < dims_.size(); ++j) {
    // A bound (every term of it) may only reference strictly-outer indices
    // (paper Section II).
    for (const AffineExpr& t : dims_[j].lower.terms)
      for (std::size_t k = j; k < t.coeffs.size(); ++k)
        if (t.coeffs[k] != 0)
          throw std::invalid_argument("LoopNest: lower bound of " + dims_[j].name +
                                      " references a non-outer index");
    for (const AffineExpr& t : dims_[j].upper.terms)
      for (std::size_t k = j; k < t.coeffs.size(); ++k)
        if (t.coeffs[k] != 0)
          throw std::invalid_argument("LoopNest: upper bound of " + dims_[j].name +
                                      " references a non-outer index");
  }
}

std::vector<std::string> LoopNest::index_names() const {
  std::vector<std::string> names;
  names.reserve(dims_.size());
  for (const LoopDim& d : dims_) names.push_back(d.name);
  return names;
}

std::int64_t LoopNest::body_flops() const {
  std::int64_t total = 0;
  for (const Statement& s : statements_) total += s.flop_count;
  return total;
}

bool LoopNest::is_rectangular() const {
  for (const LoopDim& d : dims_)
    if (!d.lower.is_constant() || !d.upper.is_constant()) return false;
  return true;
}

std::string LoopNest::to_string() const {
  std::ostringstream os;
  std::vector<std::string> names = index_names();
  std::string indent;
  for (const LoopDim& d : dims_) {
    os << indent << "for " << d.name << " = " << d.lower.to_string(names, true) << " to "
       << d.upper.to_string(names, false) << "\n";
    indent += "  ";
  }
  for (const Statement& s : statements_) {
    os << indent << s.label << ": ";
    bool first = true;
    for (const ArrayAccess& a : s.accesses) {
      if (a.kind != AccessKind::Write) continue;
      os << a.to_string(names) << " := ";
      first = false;
    }
    if (first) os << "(no write) ";
    if (s.rhs) {
      os << s.rhs->to_string(names);
    } else {
      bool first_read = true;
      for (const ArrayAccess& a : s.accesses) {
        if (a.kind != AccessKind::Read) continue;
        if (!first_read) os << " op ";
        os << a.to_string(names);
        first_read = false;
      }
    }
    os << ";\n";
  }
  return os.str();
}

LoopNestBuilder& LoopNestBuilder::loop(std::string index_name, BoundExpr lower, BoundExpr upper) {
  dims_.push_back({std::move(index_name), std::move(lower), std::move(upper)});
  return *this;
}

LoopNestBuilder& LoopNestBuilder::statement(std::string label, std::int64_t flops) {
  Statement s;
  s.label = std::move(label);
  s.flop_count = flops;
  statements_.push_back(std::move(s));
  return *this;
}

Statement& LoopNestBuilder::current_statement() {
  if (statements_.empty())
    throw std::logic_error("LoopNestBuilder: read()/write() before statement()");
  return statements_.back();
}

LoopNestBuilder& LoopNestBuilder::write(std::string array, std::vector<AffineExpr> subscripts) {
  current_statement().accesses.push_back({std::move(array), std::move(subscripts), AccessKind::Write});
  return *this;
}

LoopNestBuilder& LoopNestBuilder::read(std::string array, std::vector<AffineExpr> subscripts) {
  current_statement().accesses.push_back({std::move(array), std::move(subscripts), AccessKind::Read});
  return *this;
}

LoopNestBuilder& LoopNestBuilder::assign(std::string label, std::string array,
                                         std::vector<AffineExpr> subscripts, ExprPtr value) {
  if (!value) throw std::invalid_argument("LoopNestBuilder::assign: null expression");
  Statement s;
  s.label = std::move(label);
  s.rhs = value;
  s.flop_count = std::max<std::int64_t>(operation_count(value), 1);
  s.accesses.push_back({std::move(array), std::move(subscripts), AccessKind::Write});
  std::vector<const Expr*> refs;
  collect_refs(value, refs);
  for (const Expr* r : refs) {
    // Deduplicate identical reads (same array and subscripts).
    bool dup = std::any_of(s.accesses.begin(), s.accesses.end(), [&](const ArrayAccess& a) {
      return a.kind == AccessKind::Read && a.array == r->array &&
             a.subscripts == r->subscripts;
    });
    if (!dup) s.accesses.push_back({r->array, r->subscripts, AccessKind::Read});
  }
  statements_.push_back(std::move(s));
  return *this;
}

LoopNest LoopNestBuilder::build() const { return {name_, dims_, statements_}; }

AffineExpr idx(std::size_t level) { return AffineExpr::index(level); }

AffineExpr operator+(AffineExpr e, std::int64_t c) {
  e.constant = detail::checked_add(e.constant, c);
  return e;
}

AffineExpr operator-(AffineExpr e, std::int64_t c) { return std::move(e) + (-c); }

AffineExpr operator+(AffineExpr a, const AffineExpr& b) {
  a.constant = detail::checked_add(a.constant, b.constant);
  if (b.coeffs.size() > a.coeffs.size()) a.coeffs.resize(b.coeffs.size(), 0);
  for (std::size_t k = 0; k < b.coeffs.size(); ++k)
    a.coeffs[k] = detail::checked_add(a.coeffs[k], b.coeffs[k]);
  return a;
}

AffineExpr operator-(AffineExpr a, const AffineExpr& b) {
  AffineExpr nb = b;
  nb.constant = detail::checked_neg(nb.constant);
  nb.coeffs = negate(nb.coeffs);
  return std::move(a) + nb;
}

AffineExpr operator*(std::int64_t k, AffineExpr e) {
  e.constant = detail::checked_mul(e.constant, k);
  e.coeffs = scale(e.coeffs, k);
  return e;
}

}  // namespace hypart
