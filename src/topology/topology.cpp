#include "topology/topology.hpp"

#include <algorithm>
#include <stdexcept>

#include "mapping/gray.hpp"

namespace hypart {

double Topology::average_distance() const {
  const std::size_t n = size();
  if (n < 2) return 0.0;
  std::uint64_t total = 0;
  for (ProcId a = 0; a < n; ++a)
    for (ProcId b = a + 1; b < n; ++b) total += distance(a, b);
  return 2.0 * static_cast<double>(total) / (static_cast<double>(n) * static_cast<double>(n - 1));
}

unsigned Topology::diameter() const {
  const std::size_t n = size();
  unsigned d = 0;
  for (ProcId a = 0; a < n; ++a)
    for (ProcId b = a + 1; b < n; ++b) d = std::max(d, distance(a, b));
  return d;
}

Hypercube::Hypercube(unsigned dimension) : dim_(dimension) {
  if (dimension >= 40) throw std::invalid_argument("Hypercube: dimension too large");
}

std::string Hypercube::name() const { return "hypercube(n=" + std::to_string(dim_) + ")"; }

unsigned Hypercube::distance(ProcId a, ProcId b) const {
  if (a >= size() || b >= size()) throw std::out_of_range("Hypercube::distance");
  return popcount64(a ^ b);
}

std::vector<ProcId> Hypercube::neighbors(ProcId p) const {
  if (p >= size()) throw std::out_of_range("Hypercube::neighbors");
  std::vector<ProcId> n;
  n.reserve(dim_);
  for (unsigned k = 0; k < dim_; ++k) n.push_back(p ^ (ProcId{1} << k));
  return n;
}

std::vector<ProcId> Hypercube::ecube_route(ProcId a, ProcId b) const {
  if (a >= size() || b >= size()) throw std::out_of_range("Hypercube::ecube_route");
  std::vector<ProcId> path;
  ProcId cur = a;
  ProcId diff = a ^ b;
  for (unsigned k = 0; k < dim_; ++k) {
    if (diff & (ProcId{1} << k)) {
      cur ^= ProcId{1} << k;
      path.push_back(cur);
    }
  }
  return path;
}

Mesh2D::Mesh2D(std::size_t width, std::size_t height) : w_(width), h_(height) {
  if (w_ == 0 || h_ == 0) throw std::invalid_argument("Mesh2D: empty mesh");
}

std::string Mesh2D::name() const {
  return "mesh(" + std::to_string(w_) + "x" + std::to_string(h_) + ")";
}

unsigned Mesh2D::distance(ProcId a, ProcId b) const {
  if (a >= size() || b >= size()) throw std::out_of_range("Mesh2D::distance");
  std::int64_t ax = static_cast<std::int64_t>(a % w_), ay = static_cast<std::int64_t>(a / w_);
  std::int64_t bx = static_cast<std::int64_t>(b % w_), by = static_cast<std::int64_t>(b / w_);
  return static_cast<unsigned>(std::abs(ax - bx) + std::abs(ay - by));
}

std::vector<ProcId> Mesh2D::neighbors(ProcId p) const {
  if (p >= size()) throw std::out_of_range("Mesh2D::neighbors");
  std::size_t x = p % w_, y = p / w_;
  std::vector<ProcId> n;
  if (x > 0) n.push_back(p - 1);
  if (x + 1 < w_) n.push_back(p + 1);
  if (y > 0) n.push_back(p - w_);
  if (y + 1 < h_) n.push_back(p + w_);
  return n;
}

Ring::Ring(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("Ring: empty ring");
}

std::string Ring::name() const { return "ring(" + std::to_string(n_) + ")"; }

unsigned Ring::distance(ProcId a, ProcId b) const {
  if (a >= n_ || b >= n_) throw std::out_of_range("Ring::distance");
  std::uint64_t d = a > b ? a - b : b - a;
  return static_cast<unsigned>(std::min<std::uint64_t>(d, n_ - d));
}

std::vector<ProcId> Ring::neighbors(ProcId p) const {
  if (p >= n_) throw std::out_of_range("Ring::neighbors");
  if (n_ == 1) return {};
  if (n_ == 2) return {p ^ 1};
  return {(p + n_ - 1) % n_, (p + 1) % n_};
}

FullyConnected::FullyConnected(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("FullyConnected: empty machine");
}

std::string FullyConnected::name() const { return "fully-connected(" + std::to_string(n_) + ")"; }

unsigned FullyConnected::distance(ProcId a, ProcId b) const {
  if (a >= n_ || b >= n_) throw std::out_of_range("FullyConnected::distance");
  return a == b ? 0u : 1u;
}

std::vector<ProcId> FullyConnected::neighbors(ProcId p) const {
  if (p >= n_) throw std::out_of_range("FullyConnected::neighbors");
  std::vector<ProcId> n;
  n.reserve(n_ - 1);
  for (ProcId q = 0; q < n_; ++q)
    if (q != p) n.push_back(q);
  return n;
}

}  // namespace hypart
