// hypart — interconnection topologies of the target machines.
//
// The paper maps onto binary n-cubes; mesh and ring models are provided for
// the mapping-quality ablations.  Distances are hop counts; the hypercube
// also exposes deterministic e-cube routing for the simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hypart {

using ProcId = std::uint64_t;

/// Abstract processor interconnect.
class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Hop distance between two processors.
  [[nodiscard]] virtual unsigned distance(ProcId a, ProcId b) const = 0;
  /// Direct neighbors of a processor.
  [[nodiscard]] virtual std::vector<ProcId> neighbors(ProcId p) const = 0;

  [[nodiscard]] bool are_neighbors(ProcId a, ProcId b) const { return distance(a, b) == 1; }

  /// Average pairwise distance (useful as a topology figure of merit).
  [[nodiscard]] double average_distance() const;
  [[nodiscard]] unsigned diameter() const;
};

/// Binary n-cube: N = 2^n processors, neighbors differ in one bit.
class Hypercube final : public Topology {
 public:
  explicit Hypercube(unsigned dimension);

  [[nodiscard]] unsigned dimension() const { return dim_; }
  [[nodiscard]] std::size_t size() const override { return std::size_t{1} << dim_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] unsigned distance(ProcId a, ProcId b) const override;
  [[nodiscard]] std::vector<ProcId> neighbors(ProcId p) const override;

  /// Deterministic e-cube route a -> b (list of intermediate+final hops).
  [[nodiscard]] std::vector<ProcId> ecube_route(ProcId a, ProcId b) const;

 private:
  unsigned dim_;
};

/// w x h mesh, row-major processor ids, no wraparound.
class Mesh2D final : public Topology {
 public:
  Mesh2D(std::size_t width, std::size_t height);

  [[nodiscard]] std::size_t width() const { return w_; }
  [[nodiscard]] std::size_t height() const { return h_; }
  [[nodiscard]] std::size_t size() const override { return w_ * h_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] unsigned distance(ProcId a, ProcId b) const override;
  [[nodiscard]] std::vector<ProcId> neighbors(ProcId p) const override;

 private:
  std::size_t w_, h_;
};

/// N-processor ring.
class Ring final : public Topology {
 public:
  explicit Ring(std::size_t n);

  [[nodiscard]] std::size_t size() const override { return n_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] unsigned distance(ProcId a, ProcId b) const override;
  [[nodiscard]] std::vector<ProcId> neighbors(ProcId p) const override;

 private:
  std::size_t n_;
};

/// Fully connected machine (distance 1 everywhere) — the "no topology"
/// reference point for mapping ablations.
class FullyConnected final : public Topology {
 public:
  explicit FullyConnected(std::size_t n);

  [[nodiscard]] std::size_t size() const override { return n_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] unsigned distance(ProcId a, ProcId b) const override;
  [[nodiscard]] std::vector<ProcId> neighbors(ProcId p) const override;

 private:
  std::size_t n_;
};

}  // namespace hypart
