// hypart — partitioned blocks (Def. 6 / Algorithm 1 Step 6).
//
// Block B_i is the union of the projection lines of group G_i:
//   B_i = U_{v in G_i} { j in J^n | j = v + tΠ }.
// The Partition assigns every iteration of the computational structure to
// exactly one block and exposes the communication statistics the paper
// reports (e.g. loop L1: 33 dependence pairs, 12 interblock).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "partition/grouping.hpp"

namespace hypart {

struct PartitionBlock {
  std::size_t group_id = 0;
  std::vector<std::size_t> iterations;  ///< vertex ids of the computational structure
};

/// The partitioning G_Π(Q): blocks in 1:1 correspondence with groups.
class Partition {
 public:
  static Partition build(const ComputationStructure& q, const Grouping& grouping);

  /// Build from an arbitrary block label per vertex (labels need not be
  /// dense; they are renumbered).  Used to wrap baseline partitionings
  /// (e.g. the GCD method's residue classes) for the simulator and mapper.
  static Partition from_labels(const ComputationStructure& q,
                               const std::vector<std::size_t>& labels);

  [[nodiscard]] const std::vector<PartitionBlock>& blocks() const { return blocks_; }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

  /// Block id of a computational-structure vertex id.
  [[nodiscard]] std::size_t block_of(std::size_t vertex_id) const;

  [[nodiscard]] std::size_t max_block_size() const;
  [[nodiscard]] std::size_t min_block_size() const;

 private:
  std::vector<PartitionBlock> blocks_;
  std::vector<std::size_t> vertex_block_;
};

/// Communication statistics of a partition over its structure.
struct PartitionStats {
  std::size_t total_arcs = 0;       ///< all dependence pairs in Q
  std::size_t interblock_arcs = 0;  ///< pairs crossing block boundaries
  std::size_t intrablock_arcs = 0;
  Digraph block_comm;               ///< block-level graph, weights = crossing pairs

  [[nodiscard]] double interblock_fraction() const {
    return total_arcs ? static_cast<double>(interblock_arcs) / static_cast<double>(total_arcs) : 0.0;
  }
};

PartitionStats compute_partition_stats(const ComputationStructure& q, const Partition& p);

}  // namespace hypart
