#include "partition/blocks.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace hypart {

Partition Partition::build(const ComputationStructure& q, const Grouping& grouping) {
  const ProjectedStructure& ps = grouping.projected();
  Partition part;
  part.blocks_.resize(grouping.group_count());
  for (std::size_t b = 0; b < part.blocks_.size(); ++b) part.blocks_[b].group_id = b;
  part.vertex_block_.assign(q.vertices().size(), SIZE_MAX);

  for (std::size_t vid = 0; vid < q.vertices().size(); ++vid) {
    std::size_t pid = ps.point_of(q.vertices()[vid]);
    std::size_t gid = grouping.group_of_point(pid);
    part.vertex_block_[vid] = gid;
    part.blocks_[gid].iterations.push_back(vid);
  }
  return part;
}

Partition Partition::from_labels(const ComputationStructure& q,
                                 const std::vector<std::size_t>& labels) {
  if (labels.size() != q.vertices().size())
    throw std::invalid_argument("Partition::from_labels: label count mismatch");
  Partition part;
  part.vertex_block_.assign(labels.size(), SIZE_MAX);
  std::unordered_map<std::size_t, std::size_t> renumber;
  for (std::size_t vid = 0; vid < labels.size(); ++vid) {
    auto [it, inserted] = renumber.try_emplace(labels[vid], renumber.size());
    std::size_t b = it->second;
    if (b == part.blocks_.size()) part.blocks_.push_back({b, {}});
    part.vertex_block_[vid] = b;
    part.blocks_[b].iterations.push_back(vid);
  }
  return part;
}

std::size_t Partition::block_of(std::size_t vertex_id) const {
  if (vertex_id >= vertex_block_.size() || vertex_block_[vertex_id] == SIZE_MAX)
    throw std::out_of_range("Partition::block_of: unknown vertex id");
  return vertex_block_[vertex_id];
}

std::size_t Partition::max_block_size() const {
  std::size_t m = 0;
  for (const PartitionBlock& b : blocks_) m = std::max(m, b.iterations.size());
  return m;
}

std::size_t Partition::min_block_size() const {
  if (blocks_.empty()) return 0;
  std::size_t m = SIZE_MAX;
  for (const PartitionBlock& b : blocks_)
    if (!b.iterations.empty()) m = std::min(m, b.iterations.size());
  return m == SIZE_MAX ? 0 : m;
}

PartitionStats compute_partition_stats(const ComputationStructure& q, const Partition& p) {
  PartitionStats stats;
  stats.block_comm = Digraph(p.block_count());
  q.for_each_arc([&](const IntVec& src, const IntVec& dst, std::size_t) {
    ++stats.total_arcs;
    std::size_t bs = p.block_of(q.id_of(src));
    std::size_t bd = p.block_of(q.id_of(dst));
    if (bs == bd) {
      ++stats.intrablock_arcs;
    } else {
      ++stats.interblock_arcs;
      stats.block_comm.add_edge(bs, bd, 1);
    }
  });
  return stats;
}

}  // namespace hypart
