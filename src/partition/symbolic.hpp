// hypart — closed-form (symbolic) partition statistics.
//
// Everything the dense pipeline derives by walking O(points) dependence arcs
// is reproduced here by walking O(lines · deps) arc *bundles*: all arcs that
// share a source projection line and a dependence vector land on one target
// line, occupy consecutive Π-steps with the line stride, and their count is
// a line/domain intersection (contiguous even on affine slab-decomposed
// spaces, since the domain is convex) — so partition stats, TIG weights and
// per-step message volumes all follow without materializing a single index
// point.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "loop/iter_space.hpp"
#include "partition/blocks.hpp"

namespace hypart {

/// One (source line, dependence) bundle of dependence arcs.
struct LineDepArcs {
  std::size_t point = 0;       ///< source projected-point (line) id
  std::size_t target = 0;      ///< target projected-point id (== point when d ∥ Π)
  std::size_t dep = 0;         ///< index into ProjectedStructure::original_deps()
  std::int64_t count = 0;      ///< number of arcs (j, j+d) with j on the line, > 0
  std::int64_t first_step = 0; ///< Π·j of the earliest source point of the bundle
  // The bundle's source steps are first_step + k*step_stride(), 0 <= k < count.
};

/// Visit every nonempty arc bundle of the structure: for each projection
/// line and dependence vector, the number of in-box arcs and their step
/// range, all in closed form.  `ps` must be a projection of `space`.
void for_each_line_dep(const IterSpace& space, const ProjectedStructure& ps,
                       const std::function<void(const LineDepArcs&)>& visit);

/// Per-block iteration counts (block id == group id): the sum of the line
/// populations of the group's members.  Matches the dense
/// Partition::blocks()[b].iterations.size().
std::vector<std::int64_t> symbolic_block_sizes(const Grouping& grouping);

/// Closed-form PartitionStats — identical to compute_partition_stats on the
/// materialized structure, including block_comm edge weights.
PartitionStats compute_partition_stats(const IterSpace& space, const Grouping& grouping);

}  // namespace hypart
