#include "partition/group_lattice.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <tuple>

#include "loop/dependence.hpp"

namespace hypart {

namespace {

/// Π / content(Π) preserving Π's sign — must match projection.cpp's
/// minimal_line_direction so line populations and strides agree bit-for-bit
/// with the dense/line-based paths.
IntVec minimal_line_direction(const IntVec& pi) {
  std::int64_t g = content(pi);
  IntVec u(pi.size());
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = pi[i] / g;
  return u;
}

/// Scaled projection s·x - (Π·x)·Π (the dense ProjectedStructure scaling).
IntVec proj_scaled(const IntVec& x, const IntVec& pi, std::int64_t s) {
  return sub(scale(x, s), scale(pi, dot(pi, x)));
}

bool lex_less(const IntVec& a, const IntVec& b) {
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return a[i] < b[i];
  return false;
}

IntVec cross3(const IntVec& x, const IntVec& y) {
  return IntVec{x[1] * y[2] - x[2] * y[1], x[2] * y[0] - x[0] * y[2],
                x[0] * y[1] - x[1] * y[0]};
}

std::int64_t pos_mod(std::int64_t a, std::int64_t m) {
  std::int64_t r = a % m;
  return r < 0 ? r + m : r;
}

std::int64_t iabs(std::int64_t x) { return x < 0 ? -x : x; }

/// Tiny set of group offsets: per group and dependence at most a handful of
/// distinct offsets occur (a slot window of width < r lands in at most two
/// groups per lattice direction), so a linear-scan vector beats a node-based
/// std::set in the hot sweep.
struct OffsetSet {
  std::vector<LatticeSweepResult::GroupOffset> v;
  void insert(const LatticeSweepResult::GroupOffset& x) {
    if (std::find(v.begin(), v.end(), x) == v.end()) v.push_back(x);
  }
  void merge_into(OffsetSet& o) const {
    for (const auto& x : v) o.insert(x);
  }
  [[nodiscard]] std::size_t size() const { return v.size(); }
  void clear() { v.clear(); }
};

}  // namespace

std::optional<GroupLattice> GroupLattice::build(const IterSpace& space, const TimeFunction& tf,
                                                const GroupingOptions& opts,
                                                std::string* fallback_reason) {
  auto fail = [&](const char* slug) -> std::optional<GroupLattice> {
    if (fallback_reason) *fallback_reason = slug;
    return std::nullopt;
  };
  const std::size_t n = space.dimension();
  if (n != 2 && n != 3) return fail("dimension-unsupported");
  if (space.empty()) return fail("empty-space");
  // Non-default seeding / auxiliary overrides change the dense numbering in
  // ways the closed forms do not model; the fallback path handles them (and
  // reproduces their validation errors).
  if (opts.seed_policy != SeedPolicy::Lexicographic) return fail("seed-policy");
  if (opts.auxiliary_vectors) return fail("aux-override");

  const IntVec& pi = tf.pi;
  if (pi.size() != n || is_zero(pi)) return fail("invalid-hyperplane");

  GroupLattice gl;
  gl.space_ = &space;
  gl.tf_ = tf;
  gl.scale_ = dot(pi, pi);
  gl.u_ = minimal_line_direction(pi);
  gl.sigma_ = gl.scale_ / content(pi);

  // Projected dependences and the replication factors of Algorithm 1 Step 1
  // (r_k = s / gcd(s, content(pdep_k)), as in
  // ProjectedStructure::replication_factor); the grouping vector is the
  // first dependence attaining the maximal r.
  const std::vector<IntVec>& deps = space.dependences();
  const std::size_t nd = deps.size();
  gl.pdeps_.reserve(nd);
  std::int64_t r = 1;
  for (const IntVec& d : deps) {
    IntVec pd = proj_scaled(d, pi, gl.scale_);
    if (!is_zero(pd)) r = std::max(r, gl.scale_ / gcd64(gl.scale_, content(pd)));
    gl.pdeps_.push_back(std::move(pd));
  }
  std::optional<std::size_t> l;
  for (std::size_t k = 0; k < nd; ++k) {
    if (is_zero(gl.pdeps_[k])) continue;
    if (gl.scale_ / gcd64(gl.scale_, content(gl.pdeps_[k])) == r) {
      l = k;
      break;
    }
  }
  if (opts.grouping_vector) {
    // Honor the override only when it is valid (nonzero projection attaining
    // the maximal r); otherwise fall back so the dense path raises its error.
    std::size_t k = *opts.grouping_vector;
    if (k >= nd || is_zero(gl.pdeps_[k]) ||
        gl.scale_ / gcd64(gl.scale_, content(gl.pdeps_[k])) != r)
      return fail("invalid-grouping-override");
    l = k;
  }

  if (n == 2) {
    // ---- chain layout -----------------------------------------------------
    gl.layout_ = LatticeLayout::Chain;
    gl.w_ = IntVec{gl.u_[1], -gl.u_[0]};
    gl.gamma_.reserve(nd);
    for (const IntVec& d : deps) gl.gamma_.push_back(dot(gl.w_, d));

    // Anchor axis: any axis where w has a unit entry (δ = that signed unit
    // vector, w·δ = 1).  Admission additionally needs every slab's
    // line-index image {w·j : j in box} to be a contiguous interval: with
    // unit coordinate i and other coordinate j the image is e_j runs of
    // length e_i shifted by w_j each, connected iff |w_j| <= e_i or there
    // is a single run.  Try each unit axis; a failure on all of them (or no
    // unit entry at all) falls back.
    bool have_unit = false;
    std::size_t unit_axis = 2;
    for (std::size_t i = 0; i < 2; ++i) {
      if (gl.w_[i] != 1 && gl.w_[i] != -1) continue;
      have_unit = true;
      const std::size_t j = 1 - i;
      bool ok = true;
      space.for_each_slab_box([&](const std::vector<DimBounds>& box) {
        std::int64_t ei = box[i].second - box[i].first + 1;
        std::int64_t ej = box[j].second - box[j].first + 1;
        if (iabs(gl.w_[j]) > ei && ej > 1) ok = false;
      });
      if (ok) {
        unit_axis = i;
        break;
      }
    }
    if (!have_unit) return fail("no-unit-w-entry");
    if (unit_axis == 2) return fail("slab-interval-hole");
    gl.delta_ = IntVec{0, 0};
    gl.delta_[unit_axis] = gl.w_[unit_axis];

    // Line-index interval: each slab box contributes its (contiguous) image;
    // the union over slabs must be one contiguous interval (a hole would
    // split the dense BFS chain and the closed forms would mislabel groups).
    std::vector<std::pair<std::int64_t, std::int64_t>> ivs;
    space.for_each_slab_box([&](const std::vector<DimBounds>& box) {
      std::int64_t lo = 0, hi = 0;
      for (std::size_t i = 0; i < 2; ++i) {
        if (gl.w_[i] >= 0) {
          lo += gl.w_[i] * box[i].first;
          hi += gl.w_[i] * box[i].second;
        } else {
          lo += gl.w_[i] * box[i].second;
          hi += gl.w_[i] * box[i].first;
        }
      }
      ivs.emplace_back(lo, hi);
    });
    std::sort(ivs.begin(), ivs.end());
    std::int64_t c_lo = ivs.front().first;
    std::int64_t c_hi = ivs.front().second;
    for (std::size_t i = 1; i < ivs.size(); ++i) {
      if (ivs[i].first > c_hi + 1) return fail("line-interval-hole");
      c_hi = std::max(c_hi, ivs[i].second);
    }
    gl.c_lo_ = c_lo;
    gl.c_hi_ = c_hi;
    const std::int64_t len = c_hi - c_lo + 1;
    gl.line_count_ = static_cast<std::uint64_t>(len);

    // Orientation and the seed line.  The dense lexicographic seed is the
    // lex-min scaled projected point; ĵ(c) = c·v with v = proj(δ), so it
    // sits at c_lo when v is lex-positive, else at c_hi.
    IntVec v = proj_scaled(gl.delta_, pi, gl.scale_);
    const bool lexpos = lex_positive(v);
    gl.lexdir_ = lexpos ? 1 : -1;
    gl.c_seed_ = lexpos ? c_lo : c_hi;

    if (l) {
      // One slot step along d_l^p shifts the line index by γ_l = w·d_l.
      // With |γ_l| = g > 1 the lines split into g residue classes mod g;
      // the dense region growing seeds class m at the m-th line in lex
      // order (c_seed + m·lexdir), so component m's slot grid is
      // c = c_seed + m·lexdir + t·γ_l with group a = floor(t/r).
      gl.grouping_ = l;
      gl.r_ = r;
      gl.gamma_l_ = gl.gamma_[*l];
      const std::int64_t g = iabs(gl.gamma_l_);
      const std::int64_t ncomp = std::min(g, len);
      gl.comp_t_.reserve(static_cast<std::size_t>(ncomp));
      gl.a_min_ = std::numeric_limits<std::int64_t>::max();
      gl.a_max_ = std::numeric_limits<std::int64_t>::min();
      for (std::int64_t m = 0; m < ncomp; ++m) {
        const std::int64_t cs = gl.c_seed_ + m * gl.lexdir_;
        std::int64_t tmin, tmax;
        if (gl.gamma_l_ > 0) {
          tmin = ceil_div(c_lo - cs, gl.gamma_l_);
          tmax = floor_div(c_hi - cs, gl.gamma_l_);
        } else {
          tmin = ceil_div(c_hi - cs, gl.gamma_l_);
          tmax = floor_div(c_lo - cs, gl.gamma_l_);
        }
        gl.comp_t_.emplace_back(tmin, tmax);
        const std::int64_t a1 = floor_div(tmin, gl.r_);
        const std::int64_t a2 = floor_div(tmax, gl.r_);
        gl.a_min_ = std::min(gl.a_min_, a1);
        gl.a_max_ = std::max(gl.a_max_, a2);
        gl.group_count_ += static_cast<std::uint64_t>(a2 - a1 + 1);
      }
    } else {
      // Degenerate: every line is its own group and its own dense
      // region-growing component; dense group/component ids follow the
      // lexicographic point order, i.e. ascending slot t = lexdir·(c - c*).
      gl.grouping_ = std::nullopt;
      gl.r_ = 1;
      gl.gamma_l_ = gl.lexdir_;
      gl.comp_t_.emplace_back(0, len - 1);
      gl.a_min_ = 0;
      gl.a_max_ = len - 1;
      gl.group_count_ = static_cast<std::uint64_t>(len);
    }
    return gl;
  }

  // ---- plane layout (n = 3, β = 2, single coset) --------------------------
  gl.layout_ = LatticeLayout::Plane;
  gl.gamma_.assign(nd, 0);
  if (!l) return fail("3d-degenerate");
  // β = 2 needs an auxiliary vector: the first projected dependence outside
  // span(d_l^p) (the dense greedy Step 2 choice).
  std::optional<std::size_t> ax;
  for (std::size_t k = 0; k < nd; ++k) {
    if (is_zero(gl.pdeps_[k])) continue;
    if (!is_zero(cross3(gl.pdeps_[*l], gl.pdeps_[k]))) {
      ax = k;
      break;
    }
  }
  if (!ax) return fail("3d-beta-not-2");
  gl.grouping_ = l;
  gl.aux_ = ax;
  gl.r_ = r;
  gl.dl_orig_ = deps[*l];
  gl.da_orig_ = deps[*ax];

  // Dual functionals: A(x) = x·(d_a^p × Π) and B(x) = x·(Π × d_l^p) with
  // shared divisor D = det(d_l^p, d_a^p, Π) satisfy A(d_l^p) = B(d_a^p) = D
  // and A(d_a^p) = B(d_l^p) = 0, so (t, b) = ((A(ĵ)-A(ĵ*))/D, (B(ĵ)-B(ĵ*))/D)
  // are the integer lattice coordinates of a projected point relative to the
  // dense seed ĵ* — provided every projected unit vector stays on the seed
  // coset (D divides both functionals on proj(e_i)).
  const IntVec& dlp = gl.pdeps_[*l];
  const IntVec& dap = gl.pdeps_[*ax];
  gl.avec_ = cross3(dap, pi);
  gl.bvec_ = cross3(pi, dlp);
  gl.ddet_ = dot(gl.avec_, dlp);
  if (gl.ddet_ == 0) return fail("3d-beta-not-2");
  if (gl.ddet_ < 0) {
    gl.ddet_ = -gl.ddet_;
    gl.avec_ = scale(gl.avec_, -1);
    gl.bvec_ = scale(gl.bvec_, -1);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    IntVec e(3);
    e[i] = 1;
    IntVec pe = proj_scaled(e, pi, gl.scale_);
    if (dot(gl.avec_, pe) % gl.ddet_ != 0 || dot(gl.bvec_, pe) % gl.ddet_ != 0)
      return fail("plane-multi-coset");
  }
  gl.dt_.reserve(nd);
  gl.db_.reserve(nd);
  for (std::size_t k = 0; k < nd; ++k) {
    gl.dt_.push_back(dot(gl.avec_, gl.pdeps_[k]) / gl.ddet_);
    gl.db_.push_back(dot(gl.bvec_, gl.pdeps_[k]) / gl.ddet_);
  }

  // One O(lines) enumeration: per aux chain (fixed raw B) track the slot
  // extremes and the line count, and find the dense lexicographic seed.
  struct Acc {
    std::int64_t t_lo, t_hi;
    std::uint64_t count;
  };
  std::map<std::int64_t, Acc> table;
  bool have_seed = false;
  IntVec jseed, seed_entry;
  std::int64_t qa_seed = 0, qb_seed = 0;
  std::uint64_t nlines = 0;
  space.for_each_line(gl.u_, [&](const IntVec& entry, std::int64_t) {
    IntVec jp = proj_scaled(entry, pi, gl.scale_);
    const std::int64_t qa = dot(gl.avec_, jp) / gl.ddet_;
    const std::int64_t qb = dot(gl.bvec_, jp) / gl.ddet_;
    ++nlines;
    auto [it, fresh] = table.try_emplace(qb, Acc{qa, qa, 1});
    if (!fresh) {
      it->second.t_lo = std::min(it->second.t_lo, qa);
      it->second.t_hi = std::max(it->second.t_hi, qa);
      ++it->second.count;
    }
    if (!have_seed || lex_less(jp, jseed)) {
      have_seed = true;
      jseed = jp;
      seed_entry = entry;
      qa_seed = qa;
      qb_seed = qb;
    }
  });
  if (!have_seed) return fail("empty-space");
  gl.chains_.reserve(table.size());
  gl.a_min_ = std::numeric_limits<std::int64_t>::max();
  gl.a_max_ = std::numeric_limits<std::int64_t>::min();
  for (const auto& [qb, acc] : table) {
    // Each aux chain must meet the domain in one contiguous slot run, else
    // per-chain interval queries would miscount groups.
    if (acc.count != static_cast<std::uint64_t>(acc.t_hi - acc.t_lo + 1))
      return fail("chain-noncontiguous");
    PlaneChainRec rec;
    rec.b = qb - qb_seed;
    rec.t_lo = acc.t_lo - qa_seed;
    rec.t_hi = acc.t_hi - qa_seed;
    gl.chains_.push_back(rec);
    const std::int64_t a1 = floor_div(rec.t_lo, gl.r_);
    const std::int64_t a2 = floor_div(rec.t_hi, gl.r_);
    gl.a_min_ = std::min(gl.a_min_, a1);
    gl.a_max_ = std::max(gl.a_max_, a2);
    gl.group_count_ += static_cast<std::uint64_t>(a2 - a1 + 1);
  }
  gl.jseed_ = std::move(jseed);
  gl.seed_entry_ = std::move(seed_entry);
  gl.line_count_ = nlines;
  gl.comp_t_.emplace_back(0, 0);  // single region-growing component
  gl.c_lo_ = 0;
  gl.c_hi_ = -1;  // chain line-index queries are inert for planes
  return gl;
}

IntVec GroupLattice::line_anchor(std::int64_t c) const {
  return IntVec{c * delta_[0], c * delta_[1]};
}

IntVec GroupLattice::plane_anchor(std::int64_t t, std::int64_t b) const {
  IntVec p = seed_entry_;
  for (std::size_t i = 0; i < p.size(); ++i) p[i] += t * dl_orig_[i] + b * da_orig_[i];
  return p;
}

const GroupLattice::PlaneChainRec* GroupLattice::plane_chain(std::int64_t b) const {
  auto it = std::lower_bound(
      chains_.begin(), chains_.end(), b,
      [](const PlaneChainRec& rec, std::int64_t key) { return rec.b < key; });
  if (it == chains_.end() || it->b != b) return nullptr;
  return &*it;
}

std::int64_t GroupLattice::component_of_line(std::int64_t c) const {
  if (layout_ == LatticeLayout::Plane || degenerate()) return 0;
  const std::int64_t g = iabs(gamma_l_);
  if (g <= 1) return 0;
  return pos_mod((c - c_seed_) * lexdir_, g);
}

std::int64_t GroupLattice::slot_of_line(std::int64_t c) const {
  if (layout_ == LatticeLayout::Plane) return 0;
  const std::int64_t cs = c_seed_ + component_of_line(c) * lexdir_;
  return (c - cs) / gamma_l_;
}

std::int64_t GroupLattice::line_population(std::int64_t c) const {
  if (c < c_lo_ || c > c_hi_) return 0;
  auto range = space_->line_range(line_anchor(c), u_);
  if (!range) return 0;
  return range->second - range->first + 1;
}

std::uint64_t GroupLattice::sum_line_populations(std::int64_t c1, std::int64_t c2) const {
  std::int64_t lo = std::max(c1, c_lo_);
  std::int64_t hi = std::min(c2, c_hi_);
  std::uint64_t total = 0;
  for (std::int64_t c = lo; c <= hi; ++c)
    total += static_cast<std::uint64_t>(line_population(c));
  return total;
}

GroupLattice::GroupKey GroupLattice::group_of_line(std::int64_t c) const {
  const std::int64_t t = slot_of_line(c);
  if (degenerate()) return GroupKey{t, 0, t};
  return GroupKey{floor_div(t, r_), 0, component_of_line(c)};
}

IntVec GroupLattice::group_lattice_coord(const GroupKey& g) const {
  if (degenerate()) return IntVec{};
  if (layout_ == LatticeLayout::Chain) return IntVec{g.a};
  return IntVec{g.a, g.b};
}

DimBounds GroupLattice::group_line_range(const GroupKey& g) const {
  if (layout_ == LatticeLayout::Plane) {
    const PlaneChainRec* ch = plane_chain(g.b);
    if (!ch) return {0, -1};
    return {std::max(g.a * r_, ch->t_lo), std::min(g.a * r_ + r_ - 1, ch->t_hi)};
  }
  if (degenerate()) {
    const std::int64_t c = c_seed_ + g.a * lexdir_;
    return {c, c};
  }
  const auto& [tmin, tmax] = comp_t_[static_cast<std::size_t>(g.comp)];
  const std::int64_t t_lo = std::max(g.a * r_, tmin);
  const std::int64_t t_hi = std::min(g.a * r_ + r_ - 1, tmax);
  const std::int64_t cs = c_seed_ + g.comp * lexdir_;
  const std::int64_t c1 = cs + t_lo * gamma_l_;
  const std::int64_t c2 = cs + t_hi * gamma_l_;
  return {std::min(c1, c2), std::max(c1, c2)};
}

std::int64_t GroupLattice::group_population(const GroupKey& g) const {
  std::int64_t total = 0;
  if (layout_ == LatticeLayout::Plane) {
    auto [t_lo, t_hi] = group_line_range(g);
    for (std::int64_t t = t_lo; t <= t_hi; ++t) {
      auto range = space_->line_range(plane_anchor(t, g.b), u_);
      if (range) total += range->second - range->first + 1;
    }
    return total;
  }
  if (degenerate()) return line_population(c_seed_ + g.a * lexdir_);
  const auto& [tmin, tmax] = comp_t_[static_cast<std::size_t>(g.comp)];
  const std::int64_t t_lo = std::max(g.a * r_, tmin);
  const std::int64_t t_hi = std::min(g.a * r_ + r_ - 1, tmax);
  const std::int64_t cs = c_seed_ + g.comp * lexdir_;
  for (std::int64_t t = t_lo; t <= t_hi; ++t) total += line_population(cs + t * gamma_l_);
  return total;
}

std::uint64_t GroupLattice::sorted_index_of_group(const GroupKey& g) const {
  if (layout_ == LatticeLayout::Chain && degenerate())
    return static_cast<std::uint64_t>(g.a);
  std::uint64_t idx = 0;
  if (layout_ == LatticeLayout::Chain) {
    for (std::size_t m = 0; m < comp_t_.size(); ++m) {
      const std::int64_t a1 = floor_div(comp_t_[m].first, r_);
      const std::int64_t a2 = floor_div(comp_t_[m].second, r_);
      const std::int64_t hi = std::min(a2, g.a - 1);
      if (hi >= a1) idx += static_cast<std::uint64_t>(hi - a1 + 1);
      if (static_cast<std::int64_t>(m) < g.comp && a1 <= g.a && g.a <= a2) ++idx;
    }
  } else {
    for (const PlaneChainRec& ch : chains_) {
      const std::int64_t a1 = floor_div(ch.t_lo, r_);
      const std::int64_t a2 = floor_div(ch.t_hi, r_);
      const std::int64_t hi = std::min(a2, g.a - 1);
      if (hi >= a1) idx += static_cast<std::uint64_t>(hi - a1 + 1);
      if (ch.b < g.b && a1 <= g.a && g.a <= a2) ++idx;
    }
  }
  return idx;
}

GroupLattice::GroupKey GroupLattice::group_at_sorted_index(std::uint64_t k) const {
  if (k >= group_count_) throw std::out_of_range("group_at_sorted_index: no such group");
  if (layout_ == LatticeLayout::Chain && degenerate()) {
    const std::int64_t t = static_cast<std::int64_t>(k);
    return GroupKey{t, 0, t};
  }
  // #groups with coordinate strictly below a, O(components|chains) per probe.
  auto below = [&](std::int64_t a) {
    std::uint64_t cnt = 0;
    if (layout_ == LatticeLayout::Chain) {
      for (const auto& [tmin, tmax] : comp_t_) {
        const std::int64_t a1 = floor_div(tmin, r_);
        const std::int64_t a2 = floor_div(tmax, r_);
        const std::int64_t hi = std::min(a2, a - 1);
        if (hi >= a1) cnt += static_cast<std::uint64_t>(hi - a1 + 1);
      }
    } else {
      for (const PlaneChainRec& ch : chains_) {
        const std::int64_t a1 = floor_div(ch.t_lo, r_);
        const std::int64_t a2 = floor_div(ch.t_hi, r_);
        const std::int64_t hi = std::min(a2, a - 1);
        if (hi >= a1) cnt += static_cast<std::uint64_t>(hi - a1 + 1);
      }
    }
    return cnt;
  };
  std::int64_t lo = a_min_, hi = a_max_;
  while (lo < hi) {  // smallest a with below(a + 1) > k
    const std::int64_t mid = lo + floor_div(hi - lo, 2);
    if (below(mid + 1) > k) hi = mid;
    else lo = mid + 1;
  }
  const std::int64_t a = lo;
  std::uint64_t j = k - below(a);
  if (layout_ == LatticeLayout::Chain) {
    for (std::size_t m = 0; m < comp_t_.size(); ++m) {
      const std::int64_t a1 = floor_div(comp_t_[m].first, r_);
      const std::int64_t a2 = floor_div(comp_t_[m].second, r_);
      if (a1 <= a && a <= a2) {
        if (j == 0) return GroupKey{a, 0, static_cast<std::int64_t>(m)};
        --j;
      }
    }
  } else {
    for (const PlaneChainRec& ch : chains_) {
      const std::int64_t a1 = floor_div(ch.t_lo, r_);
      const std::int64_t a2 = floor_div(ch.t_hi, r_);
      if (a1 <= a && a <= a2) {
        if (j == 0) return GroupKey{a, ch.b, 0};
        --j;
      }
    }
  }
  throw std::out_of_range("group_at_sorted_index: inconsistent lattice");
}

void GroupLattice::for_each_group(
    const std::function<void(const GroupKey&, std::int64_t)>& visit) const {
  if (layout_ == LatticeLayout::Chain && degenerate()) {
    const std::int64_t len = comp_t_.front().second + 1;
    for (std::int64_t t = 0; t < len; ++t) {
      const GroupKey g{t, 0, t};
      visit(g, line_population(c_seed_ + t * lexdir_));
    }
    return;
  }
  for (std::int64_t a = a_min_; a <= a_max_; ++a) {
    if (layout_ == LatticeLayout::Chain) {
      for (std::size_t m = 0; m < comp_t_.size(); ++m) {
        const std::int64_t a1 = floor_div(comp_t_[m].first, r_);
        const std::int64_t a2 = floor_div(comp_t_[m].second, r_);
        if (a1 <= a && a <= a2) {
          const GroupKey g{a, 0, static_cast<std::int64_t>(m)};
          visit(g, group_population(g));
        }
      }
    } else {
      for (const PlaneChainRec& ch : chains_) {
        const std::int64_t a1 = floor_div(ch.t_lo, r_);
        const std::int64_t a2 = floor_div(ch.t_hi, r_);
        if (a1 <= a && a <= a2) {
          const GroupKey g{a, ch.b, 0};
          visit(g, group_population(g));
        }
      }
    }
  }
}

std::vector<GroupLattice::GroupBox> GroupLattice::enumerate_boxes() const {
  std::vector<GroupBox> boxes;
  if (layout_ == LatticeLayout::Plane) {
    boxes.reserve(chains_.size());
    for (const PlaneChainRec& ch : chains_)
      boxes.push_back(GroupBox{floor_div(ch.t_lo, r_), floor_div(ch.t_hi, r_), ch.b, ch.b});
    return boxes;
  }
  const std::int64_t gabs = std::max<std::int64_t>(1, iabs(gamma_l_));
  space_->for_each_slab_box([&](const std::vector<DimBounds>& box) {
    std::int64_t lo = 0, hi = 0;
    for (std::size_t i = 0; i < 2; ++i) {
      if (w_[i] >= 0) {
        lo += w_[i] * box[i].first;
        hi += w_[i] * box[i].second;
      } else {
        lo += w_[i] * box[i].second;
        hi += w_[i] * box[i].first;
      }
    }
    // Extreme grouping-chain coordinates over every residue component whose
    // lines meet this slab's interval (a is monotone in c per component).
    std::int64_t a_lo = std::numeric_limits<std::int64_t>::max();
    std::int64_t a_hi = std::numeric_limits<std::int64_t>::min();
    for (std::size_t m = 0; m < comp_t_.size(); ++m) {
      const std::int64_t cs =
          c_seed_ + (degenerate() ? 0 : static_cast<std::int64_t>(m)) * lexdir_;
      const std::int64_t cm_lo = lo + pos_mod(cs - lo, gabs);
      if (cm_lo > hi) continue;
      const std::int64_t cm_hi = hi - pos_mod(hi - cs, gabs);
      const std::int64_t a1 = group_of_line(cm_lo).a;
      const std::int64_t a2 = group_of_line(cm_hi).a;
      a_lo = std::min(a_lo, std::min(a1, a2));
      a_hi = std::max(a_hi, std::max(a1, a2));
    }
    if (a_lo > a_hi) a_lo = a_hi = 0;
    boxes.push_back(GroupBox{a_lo, a_hi, lo, hi});
  });
  return boxes;
}

void GroupLattice::for_each_line(
    const std::function<void(const GroupKey&, std::int64_t, std::int64_t)>& visit) const {
  if (layout_ == LatticeLayout::Plane) {
    const std::int64_t pi_dl = dot(tf_.pi, dl_orig_);
    const std::int64_t base = dot(tf_.pi, seed_entry_);
    const std::int64_t pi_da = dot(tf_.pi, da_orig_);
    for (const PlaneChainRec& ch : chains_) {
      IntVec p = plane_anchor(ch.t_lo, ch.b);
      std::int64_t step_anchor = base + ch.t_lo * pi_dl + ch.b * pi_da;
      for (std::int64_t t = ch.t_lo; t <= ch.t_hi; ++t) {
        auto range = space_->line_range(p, u_);
        if (range)
          visit(GroupKey{floor_div(t, r_), ch.b, 0}, range->second - range->first + 1,
                step_anchor + range->first * sigma_);
        for (std::size_t i = 0; i < 3; ++i) p[i] += dl_orig_[i];
        step_anchor += pi_dl;
      }
    }
    return;
  }
  const std::int64_t pi_delta = dot(tf_.pi, delta_);
  for (std::size_t m = 0; m < comp_t_.size(); ++m) {
    const auto& [tmin, tmax] = comp_t_[m];
    const std::int64_t cs = c_seed_ + static_cast<std::int64_t>(m) * lexdir_;
    std::int64_t c = cs + tmin * gamma_l_;
    IntVec p = line_anchor(c);
    std::int64_t step_anchor = c * pi_delta;
    for (std::int64_t t = tmin; t <= tmax; ++t) {
      auto range = space_->line_range(p, u_);
      if (range) {
        const GroupKey g = degenerate()
                               ? GroupKey{t, 0, t}
                               : GroupKey{floor_div(t, r_), 0, static_cast<std::int64_t>(m)};
        visit(g, range->second - range->first + 1, step_anchor + range->first * sigma_);
      }
      for (std::size_t i = 0; i < 2; ++i) p[i] += gamma_l_ * delta_[i];
      step_anchor += gamma_l_ * pi_delta;
    }
  }
}

void GroupLattice::for_each_arc_bundle(
    const std::function<void(const GroupKey&, const GroupKey&, std::size_t, std::int64_t,
                             std::int64_t)>& visit) const {
  const std::vector<IntVec>& deps = space_->dependences();
  const std::size_t nd = deps.size();
  if (layout_ == LatticeLayout::Plane) {
    const std::int64_t pi_dl = dot(tf_.pi, dl_orig_);
    const std::int64_t pi_da = dot(tf_.pi, da_orig_);
    const std::int64_t base = dot(tf_.pi, seed_entry_);
    for (const PlaneChainRec& ch : chains_) {
      IntVec p = plane_anchor(ch.t_lo, ch.b);
      std::vector<IntVec> pd(nd);
      for (std::size_t k = 0; k < nd; ++k) pd[k] = add(p, deps[k]);
      std::int64_t step_anchor = base + ch.t_lo * pi_dl + ch.b * pi_da;
      for (std::int64_t t = ch.t_lo; t <= ch.t_hi; ++t) {
        auto range = space_->line_range(p, u_);
        if (range) {
          const GroupKey src{floor_div(t, r_), ch.b, 0};
          for (std::size_t k = 0; k < nd; ++k) {
            auto mrange = space_->line_range(pd[k], u_);
            if (!mrange) continue;
            const std::int64_t lo2 = std::max(range->first, mrange->first);
            const std::int64_t hi2 = std::min(range->second, mrange->second);
            if (lo2 > hi2) continue;
            const GroupKey dst{floor_div(t + dt_[k], r_), ch.b + db_[k], 0};
            visit(src, dst, k, hi2 - lo2 + 1, step_anchor + lo2 * sigma_);
          }
        }
        for (std::size_t i = 0; i < 3; ++i) {
          p[i] += dl_orig_[i];
          for (std::size_t k = 0; k < nd; ++k) pd[k][i] += dl_orig_[i];
        }
        step_anchor += pi_dl;
      }
    }
    return;
  }
  const std::int64_t pi_delta = dot(tf_.pi, delta_);
  for (std::size_t m = 0; m < comp_t_.size(); ++m) {
    const auto& [tmin, tmax] = comp_t_[m];
    const std::int64_t cs = c_seed_ + static_cast<std::int64_t>(m) * lexdir_;
    std::int64_t c = cs + tmin * gamma_l_;
    IntVec p = line_anchor(c);
    std::vector<IntVec> pd(nd);
    for (std::size_t k = 0; k < nd; ++k) pd[k] = add(p, deps[k]);
    std::int64_t step_anchor = c * pi_delta;
    for (std::int64_t t = tmin; t <= tmax; ++t) {
      auto range = space_->line_range(p, u_);
      if (range) {
        const GroupKey src = degenerate()
                                 ? GroupKey{t, 0, t}
                                 : GroupKey{floor_div(t, r_), 0, static_cast<std::int64_t>(m)};
        for (std::size_t k = 0; k < nd; ++k) {
          auto mrange = space_->line_range(pd[k], u_);
          if (!mrange) continue;
          const std::int64_t lo2 = std::max(range->first, mrange->first);
          const std::int64_t hi2 = std::min(range->second, mrange->second);
          if (lo2 > hi2) continue;
          visit(src, group_of_line(c + gamma_[k]), k, hi2 - lo2 + 1,
                step_anchor + lo2 * sigma_);
        }
      }
      for (std::size_t i = 0; i < 2; ++i) {
        p[i] += gamma_l_ * delta_[i];
        for (std::size_t k = 0; k < nd; ++k) pd[k][i] += gamma_l_ * delta_[i];
      }
      c += gamma_l_;
      step_anchor += gamma_l_ * pi_delta;
    }
  }
}

LatticeSweepResult GroupLattice::sweep(bool validate) const {
  LatticeSweepResult out;
  using GroupOffset = LatticeSweepResult::GroupOffset;
  const std::vector<IntVec>& deps = space_->dependences();
  const std::size_t nd = deps.size();
  const IntVec& pi = tf_.pi;

  // Per-group rolling state (O(r + deps), reset at each group boundary).
  struct LineRec {
    std::int64_t first_step;
    std::int64_t pop;
  };
  std::vector<LineRec> window;
  window.reserve(static_cast<std::size_t>(r_));
  std::vector<OffsetSet> dep_offs(nd);  // per-dep distinct group offsets
  OffsetSet succ;                       // union over deps (out-degree)
  std::int64_t acc = 0;                 // current group's iteration count
  bool group_open = false;
  GroupKey cur{};

  out.theorem1 = true;
  out.lemmas.lemma2_holds = true;
  out.lemmas.lemma3_holds = true;
  // A dependence direction is "special" (Lemma 2) if its projected vector
  // equals the grouping or an auxiliary vector — the dense checker's
  // is_special_direction.
  auto is_special = [&](std::size_t k) {
    if (!grouping_) return false;
    if (k == *grouping_ || pdeps_[k] == pdeps_[*grouping_]) return true;
    if (aux_ && (k == *aux_ || pdeps_[k] == pdeps_[*aux_])) return true;
    return false;
  };

  out.stats.min_block = std::numeric_limits<std::int64_t>::max();
  std::uint64_t covered = 0;
  std::size_t arc_total = 0, arc_inter = 0;

  auto close_group = [&]() {
    if (!group_open) return;
    ++out.stats.group_count;
    out.stats.min_block = std::min(out.stats.min_block, acc);
    out.stats.max_block = std::max(out.stats.max_block, acc);
    if (validate) {
      succ.clear();
      for (std::size_t k = 0; k < nd; ++k) {
        if (is_zero(pdeps_[k])) continue;
        const std::size_t fan = dep_offs[k].size();
        if (is_special(k)) {
          out.lemmas.worst_lemma2_fanout = std::max(out.lemmas.worst_lemma2_fanout, fan);
          if (fan > 1) out.lemmas.lemma2_holds = false;
        } else {
          out.lemmas.worst_lemma3_fanout = std::max(out.lemmas.worst_lemma3_fanout, fan);
          if (fan > 2) out.lemmas.lemma3_holds = false;
        }
        dep_offs[k].merge_into(succ);
        dep_offs[k].clear();
      }
      out.theorem2.max_out_degree = std::max(out.theorem2.max_out_degree, succ.size());
    }
    window.clear();
    acc = 0;
  };

  // One populated line of group g: Theorem 1 window, arc bundles, offsets.
  auto visit_line = [&](const GroupKey& g, std::int64_t k_lo, std::int64_t k_hi,
                        std::int64_t step_anchor,
                        const std::function<std::optional<std::pair<std::int64_t, std::int64_t>>(
                            std::size_t)>& dep_range,
                        const std::function<std::optional<GroupKey>(std::size_t)>& dep_target) {
    if (!group_open || !(g == cur)) {
      close_group();
      group_open = true;
      cur = g;
    }
    const std::int64_t pop = k_hi - k_lo + 1;
    const std::int64_t first_step = step_anchor + k_lo * sigma_;
    covered += static_cast<std::uint64_t>(pop);
    acc += pop;

    if (validate) {
      // Theorem 1 within the group: lines collide iff their step APs
      // (first + k·σ, k in [0, pop)) intersect — same test as the dense
      // checker, against every earlier line of this group.
      for (const LineRec& o : window) {
        const std::int64_t diff = first_step - o.first_step;
        if (diff % sigma_ != 0) continue;
        const std::int64_t msh = diff / sigma_;
        if (msh >= -(pop - 1) && msh <= o.pop - 1) out.theorem1 = false;
      }
      window.push_back(LineRec{first_step, pop});
    }

    for (std::size_t k = 0; k < nd; ++k) {
      // Group-digraph edges use projected-point existence (the dense
      // checker's find_point semantics), not arc counts: an edge exists
      // whenever the shifted line is populated.
      GroupOffset off{};
      std::optional<GroupKey> dst = dep_target(k);
      if (dst) off = GroupOffset{dst->a - g.a, dst->b - g.b, dst->comp - g.comp};
      auto mrange = dep_range(k);
      if (mrange) {
        const std::int64_t lo2 = std::max(k_lo, mrange->first);
        const std::int64_t hi2 = std::min(k_hi, mrange->second);
        if (lo2 <= hi2) {
          const std::size_t count = static_cast<std::size_t>(hi2 - lo2 + 1);
          arc_total += count;
          if (!(off == GroupOffset{})) arc_inter += count;
          out.offset_weights[{k, off}] += static_cast<std::int64_t>(hi2 - lo2 + 1);
        }
      }
      if (validate && dst && !(off == GroupOffset{})) dep_offs[k].insert(off);
    }
  };

  if (layout_ == LatticeLayout::Plane) {
    const std::int64_t pi_dl = dot(pi, dl_orig_);
    const std::int64_t pi_da = dot(pi, da_orig_);
    const std::int64_t base = dot(pi, seed_entry_);
    for (const PlaneChainRec& ch : chains_) {
      IntVec p = plane_anchor(ch.t_lo, ch.b);
      std::vector<IntVec> pd(nd);
      for (std::size_t k = 0; k < nd; ++k) pd[k] = add(p, deps[k]);
      std::int64_t step_anchor = base + ch.t_lo * pi_dl + ch.b * pi_da;
      for (std::int64_t t = ch.t_lo; t <= ch.t_hi; ++t) {
        auto range = space_->line_range(p, u_);
        if (range) {
          const GroupKey g{floor_div(t, r_), ch.b, 0};
          visit_line(
              g, range->first, range->second, step_anchor,
              [&](std::size_t k) { return space_->line_range(pd[k], u_); },
              [&](std::size_t k) -> std::optional<GroupKey> {
                if (is_zero(pdeps_[k])) return std::nullopt;
                const PlaneChainRec* tc = plane_chain(ch.b + db_[k]);
                const std::int64_t tt = t + dt_[k];
                if (!tc || tt < tc->t_lo || tt > tc->t_hi) return std::nullopt;
                return GroupKey{floor_div(tt, r_), tc->b, 0};
              });
        }
        for (std::size_t i = 0; i < 3; ++i) {
          p[i] += dl_orig_[i];
          for (std::size_t k = 0; k < nd; ++k) pd[k][i] += dl_orig_[i];
        }
        step_anchor += pi_dl;
      }
    }
  } else {
    const std::int64_t pi_delta = dot(pi, delta_);
    for (std::size_t m = 0; m < comp_t_.size(); ++m) {
      const auto& [tmin, tmax] = comp_t_[m];
      const std::int64_t cs = c_seed_ + static_cast<std::int64_t>(m) * lexdir_;
      std::int64_t c = cs + tmin * gamma_l_;
      IntVec p = line_anchor(c);
      std::vector<IntVec> pd(nd);
      for (std::size_t k = 0; k < nd; ++k) pd[k] = add(p, deps[k]);
      std::int64_t step_anchor = c * pi_delta;
      for (std::int64_t t = tmin; t <= tmax; ++t) {
        auto range = space_->line_range(p, u_);
        if (range) {
          const GroupKey g =
              degenerate() ? GroupKey{t, 0, t}
                           : GroupKey{floor_div(t, r_), 0, static_cast<std::int64_t>(m)};
          visit_line(
              g, range->first, range->second, step_anchor,
              [&](std::size_t k) { return space_->line_range(pd[k], u_); },
              [&](std::size_t k) -> std::optional<GroupKey> {
                if (is_zero(pdeps_[k])) return std::nullopt;
                const std::int64_t ct = c + gamma_[k];
                if (ct < c_lo_ || ct > c_hi_) return std::nullopt;
                return group_of_line(ct);
              });
        }
        for (std::size_t i = 0; i < 2; ++i) {
          p[i] += gamma_l_ * delta_[i];
          for (std::size_t k = 0; k < nd; ++k) pd[k][i] += gamma_l_ * delta_[i];
        }
        c += gamma_l_;
        step_anchor += gamma_l_ * pi_delta;
      }
    }
  }
  close_group();

  out.stats.total_iterations = covered;
  if (out.stats.group_count == 0) out.stats.min_block = 0;
  out.partition.total_arcs = arc_total;
  out.partition.interblock_arcs = arc_inter;
  out.partition.intrablock_arcs = arc_total - arc_inter;
  out.exact_cover = covered == space_->size();
  if (validate) {
    out.theorem2.m = nd;
    out.theorem2.beta = beta();
    out.theorem2.bound = 2 * nd - beta();
    out.theorem2.holds = out.theorem2.max_out_degree <= out.theorem2.bound;
  }
  return out;
}

}  // namespace hypart
