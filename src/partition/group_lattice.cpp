#include "partition/group_lattice.hpp"

#include <algorithm>
#include <limits>

#include "loop/dependence.hpp"

namespace hypart {

namespace {

/// Π / content(Π) preserving Π's sign — must match projection.cpp's
/// minimal_line_direction so line populations and strides agree bit-for-bit
/// with the dense/line-based paths.
IntVec minimal_line_direction(const IntVec& pi) {
  std::int64_t g = content(pi);
  IntVec u(pi.size());
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = pi[i] / g;
  return u;
}

/// Scaled projection s·x - (Π·x)·Π (the dense ProjectedStructure scaling).
IntVec proj_scaled(const IntVec& x, const IntVec& pi, std::int64_t s) {
  return sub(scale(x, s), scale(pi, dot(pi, x)));
}

/// Tiny set of group offsets: per group and dependence at most two distinct
/// offsets occur (a slot window of width < r lands in at most two groups),
/// so a linear-scan vector beats a node-based std::set in the hot sweep.
struct OffsetSet {
  std::vector<std::int64_t> v;
  void insert(std::int64_t x) {
    if (std::find(v.begin(), v.end(), x) == v.end()) v.push_back(x);
  }
  void merge_into(OffsetSet& o) const {
    for (std::int64_t x : v) o.insert(x);
  }
  [[nodiscard]] std::size_t size() const { return v.size(); }
  void clear() { v.clear(); }
};

}  // namespace

std::optional<GroupLattice> GroupLattice::build(const IterSpace& space, const TimeFunction& tf,
                                                const GroupingOptions& opts) {
  if (space.dimension() != 2 || space.empty()) return std::nullopt;
  // Non-default seeding / auxiliary overrides change the dense numbering in
  // ways the closed forms do not model; the fallback path handles them (and
  // reproduces their validation errors).
  if (opts.seed_policy != SeedPolicy::Lexicographic) return std::nullopt;
  if (opts.auxiliary_vectors) return std::nullopt;

  const IntVec& pi = tf.pi;
  if (pi.size() != 2 || is_zero(pi)) return std::nullopt;

  GroupLattice gl;
  gl.space_ = &space;
  gl.tf_ = tf;
  gl.scale_ = dot(pi, pi);
  gl.u_ = minimal_line_direction(pi);
  gl.sigma_ = gl.scale_ / content(pi);
  gl.w_ = IntVec{gl.u_[1], -gl.u_[0]};
  // The gate: with |w_i| <= 1 every slab box's line-index image is a
  // contiguous interval of unit steps, so the merge below is exact.
  if (gl.w_[0] > 1 || gl.w_[0] < -1 || gl.w_[1] > 1 || gl.w_[1] < -1) return std::nullopt;

  // Anchor generator δ with w·δ = 1: a signed unit vector on the first axis
  // where w has a unit entry.
  gl.delta_ = IntVec{0, 0};
  for (std::size_t i = 0; i < 2; ++i) {
    if (gl.w_[i] == 1 || gl.w_[i] == -1) {
      gl.delta_[i] = gl.w_[i];
      break;
    }
  }

  // Line-index interval: each slab box contributes [min w·j, max w·j]; the
  // union over slabs must be one contiguous interval (a hole would split the
  // dense BFS chain and the closed forms would mislabel groups).
  std::vector<std::pair<std::int64_t, std::int64_t>> ivs;
  space.for_each_slab_box([&](const std::vector<DimBounds>& box) {
    std::int64_t lo = 0, hi = 0;
    for (std::size_t i = 0; i < 2; ++i) {
      if (gl.w_[i] >= 0) {
        lo += gl.w_[i] * box[i].first;
        hi += gl.w_[i] * box[i].second;
      } else {
        lo += gl.w_[i] * box[i].second;
        hi += gl.w_[i] * box[i].first;
      }
    }
    ivs.emplace_back(lo, hi);
  });
  if (ivs.empty()) return std::nullopt;
  std::sort(ivs.begin(), ivs.end());
  std::int64_t c_lo = ivs.front().first;
  std::int64_t c_hi = ivs.front().second;
  for (std::size_t i = 1; i < ivs.size(); ++i) {
    if (ivs[i].first > c_hi + 1) return std::nullopt;  // hole in the line interval
    c_hi = std::max(c_hi, ivs[i].second);
  }
  gl.c_lo_ = c_lo;
  gl.c_hi_ = c_hi;

  // Projected dependences, line shifts, and the replication factors of
  // Algorithm 1 Step 1 (r_k = s / gcd(s, content(pdep_k)), as in
  // ProjectedStructure::replication_factor).
  const std::vector<IntVec>& deps = space.dependences();
  gl.pdeps_.reserve(deps.size());
  gl.gamma_.reserve(deps.size());
  std::int64_t r = 1;
  for (const IntVec& d : deps) {
    IntVec pd = proj_scaled(d, pi, gl.scale_);
    gl.gamma_.push_back(dot(gl.w_, d));
    if (!is_zero(pd)) {
      std::int64_t rk = gl.scale_ / gcd64(gl.scale_, content(pd));
      r = std::max(r, rk);
    }
    gl.pdeps_.push_back(std::move(pd));
  }
  std::optional<std::size_t> l;
  for (std::size_t k = 0; k < gl.pdeps_.size(); ++k) {
    if (is_zero(gl.pdeps_[k])) continue;
    std::int64_t rk = gl.scale_ / gcd64(gl.scale_, content(gl.pdeps_[k]));
    if (rk == r) {
      l = k;
      break;
    }
  }
  if (opts.grouping_vector) {
    // Honor the override only when it is valid (nonzero projection attaining
    // the maximal r); otherwise fall back so the dense path raises its error.
    std::size_t k = *opts.grouping_vector;
    if (k >= gl.pdeps_.size() || is_zero(gl.pdeps_[k])) return std::nullopt;
    if (gl.scale_ / gcd64(gl.scale_, content(gl.pdeps_[k])) != r) return std::nullopt;
    l = k;
  }

  // Orientation and the seed line.  The dense lexicographic seed is the
  // lex-min scaled projected point; ĵ(c) = c·v with v = proj(δ), so it sits
  // at c_lo when v is lex-positive, else at c_hi.
  IntVec v = proj_scaled(gl.delta_, pi, gl.scale_);
  bool lexpos = lex_positive(v);
  gl.c_seed_ = lexpos ? c_lo : c_hi;
  if (l) {
    // One slot step along d_l^p shifts the line index by γ_l = w·d_l; the
    // closed forms need the single-chain case |γ_l| = 1 (every line reached
    // in unit steps, one region-growing component).
    std::int64_t gamma_l = gl.gamma_[*l];
    if (gamma_l != 1 && gamma_l != -1) return std::nullopt;
    gl.grouping_ = l;
    gl.r_ = r;
    gl.orient_ = gamma_l;
  } else {
    // Degenerate: every line is its own group, dense group ids follow the
    // lexicographic point order, i.e. ascending c when v is lex-positive.
    gl.grouping_ = std::nullopt;
    gl.r_ = 1;
    gl.orient_ = lexpos ? 1 : -1;
  }

  std::int64_t ta = gl.orient_ * (c_lo - gl.c_seed_);
  std::int64_t tb = gl.orient_ * (c_hi - gl.c_seed_);
  gl.a_min_ = floor_div(std::min(ta, tb), gl.r_);
  gl.a_max_ = floor_div(std::max(ta, tb), gl.r_);
  return gl;
}

IntVec GroupLattice::line_anchor(std::int64_t c) const {
  return IntVec{c * delta_[0], c * delta_[1]};
}

std::int64_t GroupLattice::line_population(std::int64_t c) const {
  if (c < c_lo_ || c > c_hi_) return 0;
  auto range = space_->line_range(line_anchor(c), u_);
  if (!range) return 0;
  return range->second - range->first + 1;
}

std::uint64_t GroupLattice::sum_line_populations(std::int64_t c1, std::int64_t c2) const {
  std::int64_t lo = std::max(c1, c_lo_);
  std::int64_t hi = std::min(c2, c_hi_);
  std::uint64_t total = 0;
  for (std::int64_t c = lo; c <= hi; ++c)
    total += static_cast<std::uint64_t>(line_population(c));
  return total;
}

DimBounds GroupLattice::group_line_range(std::int64_t a) const {
  std::int64_t ta = orient_ * (c_lo_ - c_seed_);
  std::int64_t tb = orient_ * (c_hi_ - c_seed_);
  std::int64_t t_lo = std::max(a * r_, std::min(ta, tb));
  std::int64_t t_hi = std::min(a * r_ + r_ - 1, std::max(ta, tb));
  std::int64_t ca = c_seed_ + orient_ * t_lo;
  std::int64_t cb = c_seed_ + orient_ * t_hi;
  return {std::min(ca, cb), std::max(ca, cb)};
}

std::int64_t GroupLattice::group_population(std::int64_t a) const {
  auto [lo, hi] = group_line_range(a);
  std::int64_t total = 0;
  for (std::int64_t c = lo; c <= hi; ++c) total += line_population(c);
  return total;
}

std::vector<GroupLattice::GroupBox> GroupLattice::enumerate_boxes() const {
  std::vector<GroupBox> boxes;
  space_->for_each_slab_box([&](const std::vector<DimBounds>& box) {
    std::int64_t lo = 0, hi = 0;
    for (std::size_t i = 0; i < 2; ++i) {
      if (w_[i] >= 0) {
        lo += w_[i] * box[i].first;
        hi += w_[i] * box[i].second;
      } else {
        lo += w_[i] * box[i].second;
        hi += w_[i] * box[i].first;
      }
    }
    std::int64_t a1 = group_of_line(lo);
    std::int64_t a2 = group_of_line(hi);
    boxes.push_back(GroupBox{std::min(a1, a2), std::max(a1, a2), lo, hi});
  });
  return boxes;
}

void GroupLattice::for_each_line(
    const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& visit) const {
  const std::int64_t pi_delta = dot(tf_.pi, delta_);
  IntVec p = line_anchor(c_lo_);
  std::int64_t step_anchor = c_lo_ * pi_delta;
  for (std::int64_t c = c_lo_; c <= c_hi_; ++c) {
    auto range = space_->line_range(p, u_);
    if (range)
      visit(c, range->second - range->first + 1, step_anchor + range->first * sigma_);
    for (std::size_t i = 0; i < 2; ++i) p[i] += delta_[i];
    step_anchor += pi_delta;
  }
}

void GroupLattice::for_each_arc_bundle(
    const std::function<void(std::int64_t, std::size_t, std::int64_t, std::int64_t)>& visit)
    const {
  const std::vector<IntVec>& deps = space_->dependences();
  const std::size_t nd = deps.size();
  const std::int64_t pi_delta = dot(tf_.pi, delta_);
  IntVec p = line_anchor(c_lo_);
  std::vector<IntVec> pd(nd);
  for (std::size_t k = 0; k < nd; ++k) pd[k] = add(p, deps[k]);
  std::int64_t step_anchor = c_lo_ * pi_delta;
  for (std::int64_t c = c_lo_; c <= c_hi_; ++c) {
    auto range = space_->line_range(p, u_);
    if (range) {
      for (std::size_t k = 0; k < nd; ++k) {
        auto mrange = space_->line_range(pd[k], u_);
        if (!mrange) continue;
        std::int64_t lo2 = std::max(range->first, mrange->first);
        std::int64_t hi2 = std::min(range->second, mrange->second);
        if (lo2 > hi2) continue;
        visit(c, k, hi2 - lo2 + 1, step_anchor + lo2 * sigma_);
      }
    }
    for (std::size_t i = 0; i < 2; ++i) {
      p[i] += delta_[i];
      for (std::size_t k = 0; k < nd; ++k) pd[k][i] += delta_[i];
    }
    step_anchor += pi_delta;
  }
}

LatticeSweepResult GroupLattice::sweep(bool validate) const {
  LatticeSweepResult out;
  const std::vector<IntVec>& deps = space_->dependences();
  const std::size_t nd = deps.size();
  const IntVec& pi = tf_.pi;
  const std::int64_t pi_delta = dot(pi, delta_);

  // Incremental anchors: p(c) = c·δ and p(c) + d_k, advanced by δ per line.
  IntVec p = line_anchor(c_lo_);
  std::vector<IntVec> pd(nd);
  for (std::size_t k = 0; k < nd; ++k) pd[k] = add(p, deps[k]);
  std::int64_t step_anchor = c_lo_ * pi_delta;  // Π·p(c)

  // Per-group rolling state (O(r + deps), reset at each group boundary).
  struct LineRec {
    std::int64_t first_step;
    std::int64_t pop;
  };
  std::vector<LineRec> window;
  window.reserve(static_cast<std::size_t>(r_));
  std::vector<OffsetSet> dep_offs(nd);  // per-dep distinct group offsets
  OffsetSet succ;                       // union over deps (out-degree)
  std::int64_t acc = 0;                 // current group's iteration count
  bool group_open = false;
  std::int64_t cur_a = 0;

  out.theorem1 = true;
  out.lemmas.lemma2_holds = true;
  out.lemmas.lemma3_holds = true;
  auto is_special = [&](std::size_t k) {
    return grouping_ && (k == *grouping_ || pdeps_[k] == pdeps_[*grouping_]);
  };

  out.stats.min_block = std::numeric_limits<std::int64_t>::max();
  std::uint64_t covered = 0;
  std::size_t arc_total = 0, arc_inter = 0;

  auto close_group = [&]() {
    if (!group_open) return;
    ++out.stats.group_count;
    out.stats.min_block = std::min(out.stats.min_block, acc);
    out.stats.max_block = std::max(out.stats.max_block, acc);
    if (validate) {
      std::size_t out_deg = 0;
      succ.clear();
      for (std::size_t k = 0; k < nd; ++k) {
        if (gamma_[k] == 0) continue;
        std::size_t fan = dep_offs[k].size();
        if (is_special(k)) {
          out.lemmas.worst_lemma2_fanout = std::max(out.lemmas.worst_lemma2_fanout, fan);
          if (fan > 1) out.lemmas.lemma2_holds = false;
        } else {
          out.lemmas.worst_lemma3_fanout = std::max(out.lemmas.worst_lemma3_fanout, fan);
          if (fan > 2) out.lemmas.lemma3_holds = false;
        }
        dep_offs[k].merge_into(succ);
        dep_offs[k].clear();
      }
      out_deg = succ.size();
      out.theorem2.max_out_degree = std::max(out.theorem2.max_out_degree, out_deg);
    }
    window.clear();
    acc = 0;
  };

  for (std::int64_t c = c_lo_; c <= c_hi_; ++c) {
    std::int64_t t = orient_ * (c - c_seed_);
    std::int64_t a = floor_div(t, r_);
    if (!group_open || a != cur_a) {
      close_group();
      group_open = true;
      cur_a = a;
    }

    auto range = space_->line_range(p, u_);
    if (range) {
      std::int64_t k_lo = range->first, k_hi = range->second;
      std::int64_t pop = k_hi - k_lo + 1;
      std::int64_t first_step = step_anchor + k_lo * sigma_;
      covered += static_cast<std::uint64_t>(pop);
      acc += pop;

      if (validate) {
        // Theorem 1 within the group: lines collide iff their step APs
        // (first + k·σ, k in [0, pop)) intersect — same test as the dense
        // checker, against every earlier line of this group.
        for (const LineRec& o : window) {
          std::int64_t diff = first_step - o.first_step;
          if (diff % sigma_ != 0) continue;
          std::int64_t m = diff / sigma_;
          if (m >= -(pop - 1) && m <= o.pop - 1) out.theorem1 = false;
        }
        window.push_back(LineRec{first_step, pop});
      }

      for (std::size_t k = 0; k < nd; ++k) {
        std::int64_t off = 0;
        if (gamma_[k] != 0) off = floor_div(t + orient_ * gamma_[k], r_) - a;
        auto mrange = space_->line_range(pd[k], u_);
        if (mrange) {
          std::int64_t lo2 = std::max(k_lo, mrange->first);
          std::int64_t hi2 = std::min(k_hi, mrange->second);
          if (lo2 <= hi2) {
            std::size_t count = static_cast<std::size_t>(hi2 - lo2 + 1);
            arc_total += count;
            if (off != 0) arc_inter += count;
            out.offset_weights[{k, off}] += static_cast<std::int64_t>(hi2 - lo2 + 1);
          }
        }
        // Group-digraph edges use line existence (the dense checker's
        // find_point semantics), not arc counts: an edge to group a+off
        // exists whenever the shifted line is inside the populated interval.
        if (validate && gamma_[k] != 0 && off != 0) {
          std::int64_t ct = c + gamma_[k];
          if (ct >= c_lo_ && ct <= c_hi_) dep_offs[k].insert(off);
        }
      }
    }

    // Advance the anchors.
    for (std::size_t i = 0; i < 2; ++i) {
      p[i] += delta_[i];
      for (std::size_t k = 0; k < nd; ++k) pd[k][i] += delta_[i];
    }
    step_anchor += pi_delta;
  }
  close_group();

  out.stats.total_iterations = covered;
  if (out.stats.group_count == 0) out.stats.min_block = 0;
  out.partition.total_arcs = arc_total;
  out.partition.interblock_arcs = arc_inter;
  out.partition.intrablock_arcs = arc_total - arc_inter;
  out.exact_cover = covered == space_->size();
  if (validate) {
    out.theorem2.m = nd;
    out.theorem2.beta = beta();
    out.theorem2.bound = 2 * nd - beta();
    out.theorem2.holds = out.theorem2.max_out_degree <= out.theorem2.bound;
  }
  return out;
}

}  // namespace hypart
