#include "partition/symbolic.hpp"

#include <algorithm>
#include <stdexcept>

namespace hypart {

void for_each_line_dep(const IterSpace& space, const ProjectedStructure& ps,
                       const std::function<void(const LineDepArcs&)>& visit) {
  const TimeFunction& tf = ps.time_function();
  const IntVec& u = ps.line_direction();
  const std::int64_t sigma = ps.step_stride();
  const std::vector<IntVec>& deps = ps.original_deps();
  const std::vector<IntVec>& pdeps = ps.projected_deps_scaled();

  for (std::size_t pid = 0; pid < ps.point_count(); ++pid) {
    const IntVec& rep = ps.line_representative(pid);
    const std::int64_t pop = static_cast<std::int64_t>(ps.line_population(pid));
    const std::int64_t rep_step = tf.step_of(rep);
    for (std::size_t k = 0; k < deps.size(); ++k) {
      // Sources are j = rep + a*u, 0 <= a < pop; the arc (j, j+d) exists iff
      // rep + d + a*u is also in the space — a contiguous sub-interval of a
      // (the domain is convex, even when affine slabs are involved).
      std::optional<std::pair<std::int64_t, std::int64_t>> range =
          space.line_range(add(rep, deps[k]), u);
      if (!range) continue;
      std::int64_t a0 = std::max<std::int64_t>(range->first, 0);
      std::int64_t a1 = std::min<std::int64_t>(range->second, pop - 1);
      if (a0 > a1) continue;
      LineDepArcs bundle;
      bundle.point = pid;
      bundle.dep = k;
      bundle.count = a1 - a0 + 1;
      bundle.first_step = rep_step + a0 * sigma;
      // Projection is linear, so every arc of the bundle lands on the same
      // target line: proj(j + d) = proj(j) + proj(d).
      std::optional<std::size_t> target = ps.find_point(add(ps.points()[pid], pdeps[k]));
      if (!target)
        throw std::logic_error(
            "for_each_line_dep: in-space dependence target projects outside V^p");
      bundle.target = *target;
      visit(bundle);
    }
  }
}

std::vector<std::int64_t> symbolic_block_sizes(const Grouping& grouping) {
  const ProjectedStructure& ps = grouping.projected();
  std::vector<std::int64_t> sizes(grouping.group_count(), 0);
  for (std::size_t b = 0; b < grouping.group_count(); ++b)
    for (std::size_t pid : grouping.groups()[b].members())
      sizes[b] += static_cast<std::int64_t>(ps.line_population(pid));
  return sizes;
}

PartitionStats compute_partition_stats(const IterSpace& space, const Grouping& grouping) {
  const ProjectedStructure& ps = grouping.projected();
  PartitionStats stats;
  stats.total_arcs = static_cast<std::size_t>(space.total_arc_count());
  stats.block_comm = Digraph(grouping.group_count());
  for_each_line_dep(space, ps, [&](const LineDepArcs& bundle) {
    std::size_t bs = grouping.group_of_point(bundle.point);
    std::size_t bd = grouping.group_of_point(bundle.target);
    if (bs == bd) return;
    stats.interblock_arcs += static_cast<std::size_t>(bundle.count);
    stats.block_comm.add_edge(bs, bd, bundle.count);
  });
  stats.intrablock_arcs = stats.total_arcs - stats.interblock_arcs;
  return stats;
}

}  // namespace hypart
