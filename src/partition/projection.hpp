// hypart — projection phase of Algorithm 1 (paper Defs. 3-5).
//
// The index set is projected onto the zero-hyperplane Π·x = 0:
//     j^p = j - (j·Π / Π·Π) Π.
// Coordinates of j^p are rational with denominators dividing s = Π·Π, so we
// store the *scaled* integer point  ĵ = s·j - (j·Π)·Π ∈ Z^n  and carry s
// alongside.  All projection-phase geometry is exact integer arithmetic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/comp_structure.hpp"
#include "loop/iter_space.hpp"
#include "numeric/rat_matrix.hpp"
#include "schedule/hyperplane.hpp"

namespace hypart {

/// Scaled projection of a point: s*j - (Π·j)*Π with s = Π·Π.
IntVec project_scaled(const IntVec& j, const TimeFunction& tf);

/// The projected structure Q^p = (V^p, D^p) of Def. 5, in scaled-integer
/// coordinates.  Every projected point represents one projection line of
/// the original structure.
class ProjectedStructure {
 public:
  ProjectedStructure(const ComputationStructure& q, const TimeFunction& tf);

  /// Build Q^p directly from a symbolic iteration space (rectangular or
  /// affine/slab-decomposed) without ever materializing J^n: lines are
  /// enumerated by their entry points (IterSpace::for_each_line) and
  /// populations come out in closed form.
  /// Produces bit-identical points()/line_population()/line_representative()
  /// to the dense constructor, in O(lines) instead of O(points).
  ProjectedStructure(const IterSpace& space, const TimeFunction& tf);

  [[nodiscard]] const TimeFunction& time_function() const { return tf_; }
  /// The scaling constant s = Π·Π.
  [[nodiscard]] std::int64_t scale() const { return scale_; }
  [[nodiscard]] std::size_t dimension() const { return dim_; }

  /// Distinct projected points, lexicographically sorted (scaled coords).
  [[nodiscard]] const std::vector<IntVec>& points() const { return points_; }
  [[nodiscard]] std::size_t point_count() const { return points_.size(); }

  /// Rational (true) coordinates of projected point `id`.
  [[nodiscard]] RatVec point_rational(std::size_t id) const;

  /// Scaled projected dependence vectors, one per original dependence
  /// (duplicates and zeros preserved so indices line up with the original D).
  [[nodiscard]] const std::vector<IntVec>& projected_deps_scaled() const { return proj_deps_; }
  /// Rational coordinates of projected dependence `k`.
  [[nodiscard]] RatVec projected_dep_rational(std::size_t k) const;

  /// The original dependence vectors (same order as projected_deps_scaled).
  [[nodiscard]] const std::vector<IntVec>& original_deps() const { return deps_; }

  /// r_k of Algorithm 1 Step 1: the smallest positive integer such that
  /// r_k * d_k^p is integral (1 for dependences parallel to Π).
  [[nodiscard]] std::int64_t replication_factor(std::size_t k) const;

  /// rank(mat(D^p)) — the paper's β.
  [[nodiscard]] std::size_t projected_rank() const;

  /// Id of the projected point for scaled coordinates; nullopt if absent.
  [[nodiscard]] std::optional<std::size_t> find_point(const IntVec& scaled) const;

  /// Id of the projected point of original index point j (must project into
  /// V^p; throws otherwise).
  [[nodiscard]] std::size_t point_of(const IntVec& j) const;

  /// Number of original index points on the projection line of point `id`.
  [[nodiscard]] std::size_t line_population(std::size_t id) const { return line_pop_[id]; }

  /// Original-space coordinates of the first point (smallest step Π·j) on
  /// the projection line of point `id`.  With the stride, this pins the
  /// whole line: the members are rep + k*line_direction(), 0 <= k < pop.
  [[nodiscard]] const IntVec& line_representative(std::size_t id) const {
    return line_reps_.at(id);
  }

  /// Minimal integer direction of the projection lines: Π / content(Π),
  /// keeping Π's sign so that Π·line_direction() > 0.
  [[nodiscard]] const IntVec& line_direction() const { return line_dir_; }

  /// Step increment between consecutive line points:
  /// Π·line_direction() = Π·Π / content(Π) > 0.
  [[nodiscard]] std::int64_t step_stride() const { return stride_; }

  /// Projected-structure arcs: (from point id, to point id, dep index) for
  /// every pair v_j^p = v_i^p + d_k^p with both ends in V^p and d_k^p != 0.
  [[nodiscard]] Digraph to_digraph() const;

 private:
  TimeFunction tf_;
  std::int64_t scale_ = 1;
  std::size_t dim_ = 0;
  std::vector<IntVec> points_;
  std::vector<std::size_t> line_pop_;
  std::vector<IntVec> line_reps_;
  IntVec line_dir_;
  std::int64_t stride_ = 1;
  std::vector<IntVec> proj_deps_;
  std::vector<IntVec> deps_;
  PointIndexMap index_;
};

}  // namespace hypart
