#include "partition/projection.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace hypart {

IntVec project_scaled(const IntVec& j, const TimeFunction& tf) {
  const std::int64_t s = tf.norm2();
  const std::int64_t t = tf.step_of(j);
  IntVec p = sub(scale(j, s), scale(tf.pi, t));
  return p;
}

namespace {

/// Minimal integer step of the projection lines: Π / content(Π), preserving
/// Π's sign so the line runs toward increasing steps.
IntVec minimal_line_direction(const TimeFunction& tf) {
  std::int64_t g = content(tf.pi);
  IntVec u(tf.pi.size());
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = tf.pi[i] / g;
  return u;
}

}  // namespace

ProjectedStructure::ProjectedStructure(const ComputationStructure& q, const TimeFunction& tf)
    : tf_(tf), dim_(q.dimension()), deps_(q.dependences()) {
  if (tf.dimension() != q.dimension())
    throw std::invalid_argument("ProjectedStructure: time function dimension mismatch");
  if (!is_valid_time_function(tf, q.dependences()))
    throw std::invalid_argument("ProjectedStructure: invalid time function for dependences");
  scale_ = tf.norm2();
  line_dir_ = minimal_line_direction(tf);
  stride_ = scale_ / content(tf.pi);

  // Project every vertex, count line populations and keep the earliest
  // (smallest-step) vertex of each line as its representative; dedup via
  // ordered map so points() comes out lexicographically sorted and
  // deterministic.
  struct LineAccum {
    std::size_t count = 0;
    IntVec rep;
  };
  std::map<IntVec, LineAccum> population;
  for (const IntVec& v : q.vertices()) {
    LineAccum& acc = population[project_scaled(v, tf)];
    if (acc.count == 0 || tf.step_of(v) < tf.step_of(acc.rep)) acc.rep = v;
    ++acc.count;
  }
  points_.reserve(population.size());
  line_pop_.reserve(population.size());
  line_reps_.reserve(population.size());
  for (auto& [pt, acc] : population) {
    index_.emplace(pt, points_.size());
    points_.push_back(pt);
    line_pop_.push_back(acc.count);
    line_reps_.push_back(std::move(acc.rep));
  }

  proj_deps_.reserve(deps_.size());
  for (const IntVec& d : deps_) proj_deps_.push_back(project_scaled(d, tf));
}

ProjectedStructure::ProjectedStructure(const IterSpace& space, const TimeFunction& tf)
    : tf_(tf), dim_(space.dimension()), deps_(space.dependences()) {
  if (tf.dimension() != space.dimension())
    throw std::invalid_argument("ProjectedStructure: time function dimension mismatch");
  if (!is_valid_time_function(tf, space.dependences()))
    throw std::invalid_argument("ProjectedStructure: invalid time function for dependences");
  if (space.empty()) throw std::invalid_argument("ProjectedStructure: empty iteration space");
  scale_ = tf.norm2();
  line_dir_ = minimal_line_direction(tf);
  stride_ = scale_ / content(tf.pi);

  // One visit per projection line: the entry point is exactly the
  // smallest-step point of the line (the dense representative) and the
  // population comes in closed form.  The ordered map reproduces the dense
  // constructor's lexicographic point order.
  struct LineAccum {
    IntVec rep;
    std::int64_t count = 0;
  };
  std::map<IntVec, LineAccum> lines;
  space.for_each_line(line_dir_, [&](const IntVec& rep, std::int64_t pop) {
    lines.emplace(project_scaled(rep, tf), LineAccum{rep, pop});
  });
  points_.reserve(lines.size());
  line_pop_.reserve(lines.size());
  line_reps_.reserve(lines.size());
  for (auto& [pt, acc] : lines) {
    index_.emplace(pt, points_.size());
    points_.push_back(pt);
    line_pop_.push_back(static_cast<std::size_t>(acc.count));
    line_reps_.push_back(std::move(acc.rep));
  }

  proj_deps_.reserve(deps_.size());
  for (const IntVec& d : deps_) proj_deps_.push_back(project_scaled(d, tf));
}

RatVec ProjectedStructure::point_rational(std::size_t id) const {
  const IntVec& p = points_.at(id);
  RatVec r(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) r[i] = Rational(p[i], scale_);
  return r;
}

RatVec ProjectedStructure::projected_dep_rational(std::size_t k) const {
  const IntVec& d = proj_deps_.at(k);
  RatVec r(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) r[i] = Rational(d[i], scale_);
  return r;
}

std::int64_t ProjectedStructure::replication_factor(std::size_t k) const {
  // r = s / gcd(s, content(scaled dep)): the smallest r with r*d^p integral.
  const IntVec& e = proj_deps_.at(k);
  std::int64_t g = gcd64(scale_, content(e));
  return scale_ / g;
}

std::size_t ProjectedStructure::projected_rank() const {
  std::vector<RatVec> cols;
  cols.reserve(proj_deps_.size());
  for (std::size_t k = 0; k < proj_deps_.size(); ++k)
    cols.push_back(projected_dep_rational(k));
  return rank_of(cols);
}

std::optional<std::size_t> ProjectedStructure::find_point(const IntVec& scaled) const {
  auto it = index_.find(scaled);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::size_t ProjectedStructure::point_of(const IntVec& j) const {
  std::optional<std::size_t> id = find_point(project_scaled(j, tf_));
  if (!id) throw std::out_of_range("ProjectedStructure::point_of: point projects outside V^p");
  return *id;
}

Digraph ProjectedStructure::to_digraph() const {
  Digraph g(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    for (const IntVec& dp : proj_deps_) {
      if (is_zero(dp)) continue;
      std::optional<std::size_t> j = find_point(add(points_[i], dp));
      if (j) g.add_edge(i, *j);
    }
  }
  return g;
}

}  // namespace hypart
