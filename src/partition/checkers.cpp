#include "partition/checkers.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_set>

namespace hypart {

bool check_exact_cover(const ComputationStructure& q, const Partition& p) {
  std::vector<bool> seen(q.vertices().size(), false);
  std::size_t assigned = 0;
  for (const PartitionBlock& b : p.blocks()) {
    for (std::size_t vid : b.iterations) {
      if (vid >= seen.size() || seen[vid]) return false;
      seen[vid] = true;
      ++assigned;
    }
  }
  return assigned == q.vertices().size();
}

bool check_theorem1(const ComputationStructure& q, const TimeFunction& tf, const Partition& p) {
  for (const PartitionBlock& b : p.blocks()) {
    std::unordered_set<std::int64_t> steps;
    steps.reserve(b.iterations.size());
    for (std::size_t vid : b.iterations) {
      std::int64_t s = tf.step_of(q.vertices()[vid]);
      if (!steps.insert(s).second) return false;  // two iterations share a hyperplane
    }
  }
  return true;
}

bool check_exact_cover(const IterSpace& space, const Grouping& grouping) {
  const ProjectedStructure& ps = grouping.projected();
  std::vector<bool> seen(ps.point_count(), false);
  std::uint64_t covered = 0;
  for (const Group& g : grouping.groups()) {
    for (std::size_t pid : g.members()) {
      if (pid >= seen.size() || seen[pid]) return false;
      seen[pid] = true;
      covered += static_cast<std::uint64_t>(ps.line_population(pid));
    }
  }
  return covered == space.size();
}

bool check_theorem1(const IterSpace& /*space*/, const Grouping& grouping) {
  // Line `pid` executes at steps t0(pid) + k*sigma for 0 <= k < pop(pid);
  // the box geometry is already folded into the populations.
  const ProjectedStructure& ps = grouping.projected();
  const std::int64_t sigma = ps.step_stride();
  const TimeFunction& tf = ps.time_function();
  for (const Group& g : grouping.groups()) {
    std::vector<std::size_t> members = g.members();
    for (std::size_t i = 0; i < members.size(); ++i) {
      std::int64_t ti = tf.step_of(ps.line_representative(members[i]));
      std::int64_t pi = static_cast<std::int64_t>(ps.line_population(members[i]));
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        std::int64_t tj = tf.step_of(ps.line_representative(members[j]));
        std::int64_t pj = static_cast<std::int64_t>(ps.line_population(members[j]));
        std::int64_t diff = tj - ti;
        if (diff % sigma != 0) continue;  // distinct residues never collide
        std::int64_t m = diff / sigma;    // collide iff k = m + k' is feasible
        if (m >= -(pj - 1) && m <= pi - 1) return false;
      }
    }
  }
  return true;
}

std::string Theorem2Report::to_string() const {
  std::ostringstream os;
  os << "Theorem 2: m=" << m << " beta=" << beta << " bound=2m-beta=" << bound
     << " observed max out-degree=" << max_out_degree << " => " << (holds ? "HOLDS" : "VIOLATED");
  return os.str();
}

Theorem2Report check_theorem2(const Grouping& grouping) {
  Theorem2Report rep;
  rep.m = grouping.projected().original_deps().size();
  rep.beta = grouping.beta();
  rep.bound = 2 * rep.m - rep.beta;
  Digraph g = grouping.group_digraph();
  for (std::size_t v = 0; v < g.vertex_count(); ++v)
    rep.max_out_degree = std::max(rep.max_out_degree, g.out_degree(v));
  rep.holds = rep.max_out_degree <= rep.bound;
  return rep;
}

LemmaReport check_lemmas(const Grouping& grouping) {
  LemmaReport rep;
  rep.lemma2_holds = true;
  rep.lemma3_holds = true;
  const ProjectedStructure& ps = grouping.projected();
  const std::vector<IntVec>& pdeps = ps.projected_deps_scaled();

  std::unordered_set<std::size_t> special;  // grouping + auxiliary dep indices
  if (grouping.grouping_vector_index()) special.insert(*grouping.grouping_vector_index());
  for (std::size_t k : grouping.auxiliary_vector_indices()) special.insert(k);

  // For Lemma 2/3 purposes a dependence direction is "special" if its
  // projected vector equals a grouping/auxiliary vector (the paper reasons
  // about directions, and duplicate dependences share a direction).
  auto is_special_direction = [&](std::size_t k) {
    if (special.contains(k)) return true;
    for (std::size_t s : special)
      if (pdeps[k] == pdeps[s]) return true;
    return false;
  };

  for (std::size_t gid = 0; gid < grouping.group_count(); ++gid) {
    const Group& grp = grouping.groups()[gid];
    for (std::size_t k = 0; k < pdeps.size(); ++k) {
      if (is_zero(pdeps[k])) continue;
      std::set<std::size_t> succ;
      for (std::size_t pid : grp.members()) {
        std::optional<std::size_t> q = ps.find_point(add(ps.points()[pid], pdeps[k]));
        if (!q) continue;
        std::size_t gq = grouping.group_of_point(*q);
        if (gq != gid) succ.insert(gq);
      }
      if (is_special_direction(k)) {
        rep.worst_lemma2_fanout = std::max(rep.worst_lemma2_fanout, succ.size());
        if (succ.size() > 1) rep.lemma2_holds = false;
      } else {
        rep.worst_lemma3_fanout = std::max(rep.worst_lemma3_fanout, succ.size());
        if (succ.size() > 2) rep.lemma3_holds = false;
      }
    }
  }
  return rep;
}

}  // namespace hypart
