// hypart — validity checkers for the paper's theorems and lemmas.
//
// These are library code (not just test helpers) so downstream users can
// validate partitions of their own loops:
//   Theorem 1 — blocks obey the schedule defined by Π (no two iterations of
//               a block share a hyperplane).
//   Theorem 2 — a group sends data to at most 2m - β groups.
//   Lemma 2   — along the grouping vector and each auxiliary vector a group
//               depends on at most one group.
//   Lemma 3   — along every other projected dependence a group depends on
//               at most two groups.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "loop/iter_space.hpp"
#include "partition/blocks.hpp"

namespace hypart {

/// Every vertex of Q appears in exactly one block.
bool check_exact_cover(const ComputationStructure& q, const Partition& p);

/// Symbolic exact cover: every projected point belongs to exactly one group
/// and the groups' line populations sum to |J^n| — no points materialized.
bool check_exact_cover(const IterSpace& space, const Grouping& grouping);

/// Theorem 1: within each block, all iterations have pairwise-distinct
/// execution steps under Π (so a block never delays the hyperplane schedule).
bool check_theorem1(const ComputationStructure& q, const TimeFunction& tf, const Partition& p);

/// Symbolic Theorem 1: a block's lines occupy strided step runs
/// {t0 + k·σ, 0 <= k < pop}, so two iterations collide iff two member runs
/// are congruent mod σ with overlapping ranges — O(r²) per group.
bool check_theorem1(const IterSpace& space, const Grouping& grouping);

struct Theorem2Report {
  std::size_t m = 0;               ///< number of dependence vectors
  std::size_t beta = 0;            ///< rank(mat(D^p))
  std::size_t bound = 0;           ///< 2m - β
  std::size_t max_out_degree = 0;  ///< observed max #groups a group sends to
  bool holds = false;
  [[nodiscard]] std::string to_string() const;
};

/// Theorem 2 on the group-level communication graph.
Theorem2Report check_theorem2(const Grouping& grouping);

struct LemmaReport {
  bool lemma2_holds = false;  ///< ≤1 successor group along grouping/auxiliary dirs
  bool lemma3_holds = false;  ///< ≤2 successor groups along the remaining dirs
  std::size_t worst_lemma2_fanout = 0;
  std::size_t worst_lemma3_fanout = 0;
};

/// Per-direction successor-group fanout checks (Lemmas 2 and 3).
LemmaReport check_lemmas(const Grouping& grouping);

}  // namespace hypart
