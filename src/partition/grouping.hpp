// hypart — grouping phase of Algorithm 1 (paper Section III, Defs. 6-8).
//
// Projected points are gathered into groups of r along the grouping vector
// d_l^p (the projected dependence with the largest replication factor), with
// group base vertices propagated along the auxiliary grouping vectors by
// region growing (the paper's Steps 3-5).  Each group's projection lines
// together form one partitioned block.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "partition/projection.hpp"

namespace hypart {

/// How Step 3 / Step 5 pick the seed ("select a line arbitrarily; choose a
/// projected point lying on this line").
enum class SeedPolicy {
  /// Seed each region-growing component at the lexicographically smallest
  /// ungrouped projected point (deterministic default).  This pins the
  /// component-id numbering: component k is the k-th region in ascending
  /// order of its lex-smallest member, so component ids — and therefore
  /// group ids, lattice coordinates, and the Algorithm 2 processor
  /// assignment — are identical across runs and platforms.  The symbolic
  /// group lattice (partition/group_lattice.hpp) relies on this pin to
  /// reproduce dense group numbering without materializing groups;
  /// regression-tested in tests/test_grouping.cpp
  /// (LexicographicComponentNumberingIsPinned).
  Lexicographic,
  ExplicitBases  ///< use the caller-provided base vertices (reproduces the paper's figures)
};

struct GroupingOptions {
  SeedPolicy seed_policy = SeedPolicy::Lexicographic;
  /// Seed base vertices in *scaled* coordinates, consumed in order when
  /// seed_policy == ExplicitBases (falls back to lexicographic when empty).
  std::vector<IntVec> explicit_bases;
  /// Override the grouping-vector choice (index into the projected
  /// dependence list) — Algorithm 1 breaks ties arbitrarily; this pins them.
  std::optional<std::size_t> grouping_vector;
  /// Override the auxiliary grouping vectors Ψ (indices into the projected
  /// dependence list).  Step 2 allows any β-1 choices that are linearly
  /// independent together with the grouping vector; this pins them (the
  /// paper's Example 2 uses d_C^p).  Validated for independence.
  std::optional<std::vector<std::size_t>> auxiliary_vectors;
};

/// One group G_i: up to r projected points ordered along the grouping
/// vector from the base vertex (slot k = base + k*d_l^p).  Boundary groups
/// have unpopulated slots (the paper's G_4 in Fig. 3(b)).
struct Group {
  IntVec base;      ///< scaled coordinates of slot 0 (may itself be unpopulated)
  std::vector<std::optional<std::size_t>> slots;  ///< projected-point id per slot
  IntVec lattice;   ///< integer coords (a, b_1..b_{β-1}) on the group-base lattice
  std::size_t component = 0;  ///< region-growing component this group belongs to

  [[nodiscard]] std::vector<std::size_t> members() const;
  [[nodiscard]] std::size_t size() const;
};

/// Result of the grouping phase.
class Grouping {
 public:
  static Grouping compute(const ProjectedStructure& ps, const GroupingOptions& opts = {});

  [[nodiscard]] const ProjectedStructure& projected() const { return *ps_; }
  [[nodiscard]] const std::vector<Group>& groups() const { return groups_; }
  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }

  /// Group id of a projected point.
  [[nodiscard]] std::size_t group_of_point(std::size_t point_id) const;

  /// The group size r of Algorithm 1 Step 1.
  [[nodiscard]] std::int64_t group_size_r() const { return r_; }

  /// Index (into projected_deps) of the grouping vector; nullopt when the
  /// projected dependence set is empty/all-zero (degenerate: r = 1, each
  /// projected point is its own group).
  [[nodiscard]] std::optional<std::size_t> grouping_vector_index() const { return grouping_; }

  /// Indices (into projected_deps) of the auxiliary grouping vectors Ψ.
  [[nodiscard]] const std::vector<std::size_t>& auxiliary_vector_indices() const { return aux_; }

  /// β = rank(mat(D^p)).
  [[nodiscard]] std::size_t beta() const { return beta_; }

  /// Scaled direction vectors of the group-base lattice, one per lattice
  /// coordinate: r*d_l^p first, then each auxiliary d_j^p.  These are the
  /// Ω directions Algorithm 2's cluster formation bisects along.
  [[nodiscard]] std::vector<IntVec> lattice_directions() const;

  /// Group-level dependence graph (the paper's Fig. 7): an arc G_i -> G_j
  /// for every projected dependence relation crossing from G_i into G_j,
  /// weighted by the number of crossing projected-point pairs.
  [[nodiscard]] Digraph group_digraph() const;

 private:
  const ProjectedStructure* ps_ = nullptr;
  std::vector<Group> groups_;
  std::vector<std::size_t> point_group_;  // point id -> group id
  std::int64_t r_ = 1;
  std::optional<std::size_t> grouping_;
  std::vector<std::size_t> aux_;
  std::size_t beta_ = 0;
};

}  // namespace hypart
