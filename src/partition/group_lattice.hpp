// hypart — closed-form group lattice (symbolic backend for Algorithm 1's
// grouping phase and Algorithm 2's bisection).
//
// PR 3/4 made the iteration space symbolic, but the grouping phase still
// materialized one Group per group, so end-to-end cost stayed O(groups).
// On the classes below the groups form a *regular lattice* and every
// grouping/mapping quantity has a closed form; no Group objects are ever
// materialized.  Two layouts cover the admitted nests:
//
//  * Chain (n = 2, β ≤ 1).  Lines are indexed by c = w·j, where w ⊥ u
//    (u = Π/content(Π)) is the primitive line-index vector; a convex 2-D
//    domain meets a contiguous interval [c_lo, c_hi] of lines.  One slot
//    step along the grouping vector d_l advances the line index by
//    γ_l = w·d_l.  With |γ_l| = g > 1 the dense BFS no longer reaches every
//    line from one seed: the lines split into g *residue components*
//    (c ≡ c_seed + m·lexdir mod g), each an arithmetic sub-chain the dense
//    region growing covers from its own lexicographic seed, in seed order
//    m = 0, 1, ….  Slot index within component m is t = (c - c_seed_m)/γ_l
//    and the group is (a, m) with a = floor(t/r) — exactly the dense
//    Group::lattice coordinate and component id.
//  * Plane (n = 3, β = 2, single coset).  The scaled projected points live
//    in the 2-D lattice spanned by d_l^p (grouping) and d_a^p (auxiliary).
//    With the dual functionals A(x) = x·(d_a^p × Π), B(x) = x·(Π × d_l^p)
//    and shared divisor D = det(d_l^p, d_a^p, Π) > 0, the
//    lattice coordinates of a line are t = (A(ĵ)-A(ĵ*))/D along d_l^p and
//    b = (B(ĵ)-B(ĵ*))/D along d_a^p, anchored at the dense lexicographic
//    seed ĵ*.  Groups are (a, b) with a = floor(t/r); each aux chain (fixed
//    b) must meet the domain in one contiguous t-run (convexity gives this
//    for box-like nests; a gap falls back).  Admission requires every
//    projected unit vector to stay on the seed coset (D | A(proj e_i) and
//    D | B(proj e_i)); multi-coset 3-D nests take the line-based fallback.
//
// Group populations, block statistics, TIG arc-class weights, and the
// theorem/lemma checks all reduce to per-line IterSpace::line_range queries
// (O(dimension) each), and Algorithm 2's bisection reduces to ceil-halving
// of the sorted group order (chain) or an alternating-direction fragment
// bisection (plane) — mapping/hypercube_map.hpp.
//
// When no layout applies, build() returns nullopt with a stable fallback
// reason slug (surfaced as the pipeline.lattice_fallback.<reason> metric)
// and the pipeline falls back to the line-based symbolic path
// (partition/grouping.hpp), which materializes groups but is still
// point-free.  docs/iterspace.md § "The group lattice" derives each closed
// form.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "loop/iter_space.hpp"
#include "partition/blocks.hpp"
#include "partition/checkers.hpp"
#include "partition/grouping.hpp"
#include "schedule/hyperplane.hpp"

namespace hypart {

/// Which closed-form family the lattice instantiates.
enum class LatticeLayout {
  Chain,  ///< 2-D nest: 1-D group chain, possibly g residue components
  Plane,  ///< 3-D nest, β = 2: 2-D (a, b) group lattice, single component
};

/// Aggregate block-size statistics of the symbolic grouping (the lattice
/// path's stand-in for the per-block size vector, which is never built).
struct LatticeBlockStats {
  std::uint64_t group_count = 0;     ///< number of groups (== blocks)
  std::uint64_t total_iterations = 0;///< sum of block sizes == |J^n|
  std::int64_t min_block = 0;        ///< smallest block (iteration count)
  std::int64_t max_block = 0;        ///< largest block
};

/// Everything the O(lines·deps) line sweep derives in one pass: block
/// statistics, partition stats (block_comm left empty — the per-pair graph
/// is inherently O(groups); the per-offset aggregation below replaces it),
/// per-(dependence, group-offset) arc weights, and the theorem/lemma
/// verdicts.  Memory is O(deps + r + components), independent of N.
struct LatticeSweepResult {
  LatticeBlockStats stats;
  PartitionStats partition;
  /// Group-lattice offset between an arc's source and target groups:
  /// Δa along the grouping chain, Δb along the auxiliary direction (plane
  /// layout), Δcomp across residue components (strided chain layout).
  struct GroupOffset {
    std::int64_t da = 0;
    std::int64_t db = 0;
    std::int64_t dcomp = 0;
    friend bool operator==(const GroupOffset&, const GroupOffset&) = default;
    friend auto operator<=>(const GroupOffset&, const GroupOffset&) = default;
  };
  /// (dep index, group offset) -> number of dependence arcs whose source
  /// and target groups differ by that offset.  The closed-form counterpart
  /// of the TIG edge weights: by Lemmas 2/3 each dependence contributes a
  /// bounded number of offsets.
  std::map<std::pair<std::size_t, GroupOffset>, std::int64_t> offset_weights;
  bool exact_cover = false;
  bool theorem1 = false;
  Theorem2Report theorem2;
  LemmaReport lemmas;
};

/// Symbolic grouping of an affine iteration space as a regular group
/// lattice.  Reproduces the dense Grouping (populations, lattice
/// coordinates, component ids, mapping order) exactly on the gated class.
class GroupLattice {
 public:
  /// Identity of one group without materializing it: the dense
  /// Group::lattice coordinates (a[, b]) plus the region-growing component.
  /// Chain groups use (a, comp); plane groups use (a, b) with comp == 0.
  struct GroupKey {
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::int64_t comp = 0;
    friend bool operator==(const GroupKey&, const GroupKey&) = default;
    friend auto operator<=>(const GroupKey&, const GroupKey&) = default;
  };

  /// Gate + construction; nullopt when the closed forms do not apply (the
  /// caller falls back to the line-based symbolic path).  When refused and
  /// `fallback_reason` is non-null it receives a stable slug naming the
  /// first failed gate (e.g. "line-interval-hole", "plane-multi-coset").
  /// O(slabs log slabs) for the chain layout, O(lines) for the plane.
  static std::optional<GroupLattice> build(const IterSpace& space, const TimeFunction& tf,
                                           const GroupingOptions& opts = {},
                                           std::string* fallback_reason = nullptr);

  // ---- frame --------------------------------------------------------------
  [[nodiscard]] const IterSpace& space() const { return *space_; }
  [[nodiscard]] const TimeFunction& time_function() const { return tf_; }
  [[nodiscard]] LatticeLayout layout() const { return layout_; }
  /// Line-index vector w (primitive, w·u = 0): line of j is c = w·j.
  /// Chain layout only.
  [[nodiscard]] const IntVec& line_index_vector() const { return w_; }
  [[nodiscard]] const IntVec& line_direction() const { return u_; }
  [[nodiscard]] std::int64_t step_stride() const { return sigma_; }
  /// Group size r of Algorithm 1 Step 1 (1 in the degenerate case).
  [[nodiscard]] std::int64_t group_size_r() const { return r_; }
  /// β = rank(mat(D^p)): 2 for the plane layout, 1 for a grouped chain, 0
  /// when every dependence is parallel to Π (degenerate: every line is its
  /// own group).
  [[nodiscard]] std::size_t beta() const {
    return layout_ == LatticeLayout::Plane ? 2 : (grouping_ ? 1 : 0);
  }
  [[nodiscard]] bool degenerate() const { return !grouping_; }
  [[nodiscard]] std::optional<std::size_t> grouping_vector_index() const { return grouping_; }
  /// Auxiliary dependence index (plane layout only).
  [[nodiscard]] std::optional<std::size_t> auxiliary_vector_index() const { return aux_; }
  /// Number of dense region-growing components: the residue count
  /// min(|γ_l|, line interval length) for a strided chain, else 1.
  [[nodiscard]] std::int64_t component_count() const {
    return static_cast<std::int64_t>(comp_t_.size());
  }

  // ---- lines (chain layout) ----------------------------------------------
  [[nodiscard]] std::int64_t c_min() const { return c_lo_; }
  [[nodiscard]] std::int64_t c_max() const { return c_hi_; }
  /// Total populated lines (== projected point count) in either layout.
  [[nodiscard]] std::uint64_t line_count() const { return line_count_; }
  /// Seed line index c* of component 0 (the dense lexicographic seed's
  /// line); component m's seed line is c* + m·lex_direction().
  [[nodiscard]] std::int64_t seed_line() const { return c_seed_; }
  /// Direction (±1) in which the scaled projection grows lexicographically
  /// with c — the order in which the dense grouping seeds components.
  [[nodiscard]] std::int64_t lex_direction() const { return lexdir_; }
  /// Signed slot stride γ_l = w·d_l (lex_direction() when degenerate).
  [[nodiscard]] std::int64_t slot_stride() const { return gamma_l_; }
  /// Residue component of line c (0 when unstrided).
  [[nodiscard]] std::int64_t component_of_line(std::int64_t c) const;
  /// Slot index of line c within its component: t = (c - c_seed_m)/γ_l.
  [[nodiscard]] std::int64_t slot_of_line(std::int64_t c) const;
  /// Points on line c (0 outside [c_min, c_max]); O(dimension).
  [[nodiscard]] std::int64_t line_population(std::int64_t c) const;
  /// Σ line_population over [c1, c2] ∩ [c_min, c_max]; O(|interval|·dim).
  [[nodiscard]] std::uint64_t sum_line_populations(std::int64_t c1, std::int64_t c2) const;

  // ---- groups -------------------------------------------------------------
  /// Group of line c (chain layout): a = floor(t/r) in c's component.
  [[nodiscard]] GroupKey group_of_line(std::int64_t c) const;
  /// Extreme grouping-chain coordinates over all components/aux chains.
  [[nodiscard]] std::int64_t a_min() const { return a_min_; }
  [[nodiscard]] std::int64_t a_max() const { return a_max_; }
  [[nodiscard]] std::uint64_t group_count() const { return group_count_; }
  /// Dense Group::lattice coords: {} degenerate, {a} chain, {a, b} plane.
  [[nodiscard]] IntVec group_lattice_coord(const GroupKey& g) const;
  /// Inclusive line-index interval [c_first, c_last] of a chain group's
  /// slots, clipped to the populated range (boundary groups are partial; a
  /// strided group's interval also contains other components' lines).
  /// Plane layout: the group's inclusive slot interval [t_lo, t_hi] on its
  /// aux chain.
  [[nodiscard]] DimBounds group_line_range(const GroupKey& g) const;
  /// Block size of the group: Σ of its lines' populations; O(r·dimension).
  [[nodiscard]] std::int64_t group_population(const GroupKey& g) const;
  /// Position in the canonical deterministic sort order — ascending
  /// (a, comp) for chains (identical to the dense mapper's β = 1 key:
  /// coordinate, then creation order) and ascending (a, b) for planes.
  [[nodiscard]] std::uint64_t sorted_index_of_group(const GroupKey& g) const;
  [[nodiscard]] GroupKey group_at_sorted_index(std::uint64_t k) const;
  /// Visit every group in canonical sorted order with its population;
  /// O(groups · r · dim) — the node-fault remap's block-size feed.
  void for_each_group(const std::function<void(const GroupKey&, std::int64_t pop)>& visit) const;

  /// One lattice box per slab (chain) or per aux chain (plane): the
  /// inclusive group-coordinate range along the grouping chain.  Chain
  /// boxes carry the slab's line-index interval in [c_lo, c_hi]; plane
  /// boxes carry the aux coordinate b in both.
  struct GroupBox {
    std::int64_t a_lo = 0;
    std::int64_t a_hi = 0;
    std::int64_t c_lo = 0;
    std::int64_t c_hi = 0;
  };
  [[nodiscard]] std::vector<GroupBox> enumerate_boxes() const;

  // ---- dependences --------------------------------------------------------
  [[nodiscard]] const std::vector<IntVec>& original_deps() const { return space_->dependences(); }
  /// Line-index shift of dependence k (chain layout): target line of an arc
  /// from line c is c + line_shift(k) (0 when d_k ∥ Π).
  [[nodiscard]] std::int64_t line_shift(std::size_t k) const { return gamma_[k]; }
  /// Lattice shift of dependence k (plane layout): (Δt, Δb) in slot/aux
  /// coordinates.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> plane_shift(std::size_t k) const {
    return {dt_[k], db_[k]};
  }
  /// Scaled projected dependence s·d - (Π·d)·Π (dense pdep coordinates).
  [[nodiscard]] const IntVec& projected_dep_scaled(std::size_t k) const { return pdeps_[k]; }

  /// The full O(lines·deps) pass: block stats, partition stats, per-offset
  /// TIG weights, and (when `validate`) exact-cover/Theorem 1/Theorem 2/
  /// lemma verdicts.  Time O(lines·(deps + r)·dim), memory
  /// O(deps + r + components).
  [[nodiscard]] LatticeSweepResult sweep(bool validate = true) const;

  /// Visit every populated line (group-contiguous order: component-major
  /// ascending slot for chains, aux-chain-major ascending slot for planes)
  /// with its group, population, and the absolute step of its first point
  /// (Π·entry).  O(lines·dim), O(1) extra memory — the simulator's line
  /// feed.
  void for_each_line(const std::function<void(const GroupKey&, std::int64_t pop,
                                              std::int64_t first_step)>& visit) const;
  /// Visit every (line, dependence) arc bundle: `count` arcs from a line of
  /// group `src` to the shifted line of group `dst`, the first one leaving
  /// at absolute step `first_step`.  Values match partition/symbolic.hpp's
  /// for_each_line_dep.
  void for_each_arc_bundle(
      const std::function<void(const GroupKey& src, const GroupKey& dst, std::size_t dep,
                               std::int64_t count, std::int64_t first_step)>& visit) const;

 private:
  GroupLattice() = default;

  /// One aux chain of the plane layout: the inclusive slot run at aux
  /// coordinate b.
  struct PlaneChainRec {
    std::int64_t b = 0;
    std::int64_t t_lo = 0, t_hi = 0;
  };

  /// Entry point of chain line c for line_range queries: p(c) = c·δ with
  /// w·δ = 1 (not necessarily inside J; line_range only needs a point on
  /// the line).
  [[nodiscard]] IntVec line_anchor(std::int64_t c) const;
  /// Anchor of plane line (t, b): seed_entry + t·d_l + b·d_a.
  [[nodiscard]] IntVec plane_anchor(std::int64_t t, std::int64_t b) const;
  /// Plane chain index holding aux coordinate b; nullptr when absent.
  [[nodiscard]] const PlaneChainRec* plane_chain(std::int64_t b) const;

  const IterSpace* space_ = nullptr;
  TimeFunction tf_;
  LatticeLayout layout_ = LatticeLayout::Chain;
  IntVec u_;       ///< line direction Π/content(Π), Π·u > 0
  IntVec w_;       ///< chain: primitive line-index vector
  IntVec delta_;   ///< chain: lattice generator with w·δ = 1 (anchor direction)
  std::int64_t sigma_ = 1;  ///< step stride Π·u
  std::int64_t scale_ = 1;  ///< s = Π·Π
  std::vector<IntVec> pdeps_;      ///< scaled projected dependences
  std::vector<std::int64_t> gamma_;///< chain: line-index shifts w·d_k
  std::int64_t r_ = 1;
  std::optional<std::size_t> grouping_;  ///< grouping-vector index (nullopt: degenerate)
  std::optional<std::size_t> aux_;       ///< plane: auxiliary dependence index
  std::uint64_t line_count_ = 0;
  std::uint64_t group_count_ = 0;
  std::int64_t a_min_ = 0, a_max_ = 0;

  // Chain layout state.
  std::int64_t c_lo_ = 0, c_hi_ = 0;
  std::int64_t c_seed_ = 0;   ///< component 0's seed line
  std::int64_t lexdir_ = 1;   ///< ±1: lex order of ĵ(c) along c
  std::int64_t gamma_l_ = 1;  ///< signed slot stride (γ_l; lexdir_ when degenerate)
  /// Per-component inclusive slot range [t_min, t_max] (size 1 unless
  /// strided).  Component m's lines are c_seed_ + m·lexdir_ + t·γ_l.
  std::vector<std::pair<std::int64_t, std::int64_t>> comp_t_;

  // Plane layout state.
  IntVec seed_entry_;  ///< original-space entry point of the seed's line
  IntVec jseed_;       ///< scaled projected seed (lex-min projected point)
  IntVec dl_orig_, da_orig_;  ///< original grouping/auxiliary dependences
  IntVec avec_, bvec_;        ///< dual functionals (cross products), D-normalized
  std::int64_t ddet_ = 1;     ///< shared divisor D = det(d_l^p, d_a^p, Π) > 0
  std::vector<std::int64_t> dt_, db_;  ///< per-dep lattice shifts (Δt, Δb)
  std::vector<PlaneChainRec> chains_;  ///< ascending b, one per aux chain
};

}  // namespace hypart
