// hypart — closed-form group lattice (symbolic backend for Algorithm 1's
// grouping phase and Algorithm 2's bisection).
//
// PR 3/4 made the iteration space symbolic, but the grouping phase still
// materialized one Group per group, so end-to-end cost stayed O(groups).
// For the 2-D affine nests the pipeline actually sweeps (β = n-1 = 1, the
// paper's L1/SOR/matvec/convolution class), the groups form a *regular
// 1-D lattice* and every grouping/mapping quantity has a closed form:
//
//   * Lines are indexed by c = w·j, where w ⊥ u (u = Π/content(Π)) is the
//     primitive line-index vector; a convex 2-D domain meets a contiguous
//     interval [c_lo, c_hi] of lines (one sub-interval per slab, merged).
//   * The dense grouping's seed is the lexicographically smallest scaled
//     projected point.  Scaled projection is affine in c, so the seed is
//     simply one end of the interval: ĵ(c) = ĵ* + (c - c*)·v with
//     v = proj(δ), w·δ = 1, and the lex-min end is c_lo when v is
//     lex-positive, else c_hi.
//   * One slot step along the grouping vector d_l advances the line index
//     by γ_l = w·d_l; with |γ_l| = 1 the dense BFS covers every line in a
//     single chain, slot t(c) = γ_l·(c - c*), and the group of line c is
//     exactly floor(t/r) — the dense Group::lattice coordinate `a`.
//   * Group populations, block statistics, TIG arc-class weights, and the
//     theorem/lemma checks all reduce to per-line IterSpace::line_range
//     queries (O(dimension) each, no point or group objects), and
//     Algorithm 2's bisection reduces to a ceil-halving of the sorted
//     coordinate range (mapping/hypercube_map.hpp, map_to_hypercube
//     lattice overload).
//
// When the gate below does not hold (n > 2, |w_i| > 1, strided grouping
// chains, non-default GroupingOptions, or a line-index interval with
// holes), build() returns nullopt and the pipeline falls back to the
// line-based symbolic path (partition/grouping.hpp), which materializes
// groups but is still point-free.  docs/iterspace.md § "The group lattice"
// derives each closed form and works the paper's Fig. 3 example.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "loop/iter_space.hpp"
#include "partition/blocks.hpp"
#include "partition/checkers.hpp"
#include "partition/grouping.hpp"
#include "schedule/hyperplane.hpp"

namespace hypart {

/// Aggregate block-size statistics of the symbolic grouping (the lattice
/// path's stand-in for the per-block size vector, which is never built).
struct LatticeBlockStats {
  std::uint64_t group_count = 0;     ///< number of groups (== blocks)
  std::uint64_t total_iterations = 0;///< sum of block sizes == |J^n|
  std::int64_t min_block = 0;        ///< smallest block (iteration count)
  std::int64_t max_block = 0;        ///< largest block
};

/// Everything the O(lines·deps) line sweep derives in one pass: block
/// statistics, partition stats (block_comm left empty — the per-pair graph
/// is inherently O(groups); the per-offset aggregation below replaces it),
/// per-(dependence, group-offset) arc weights, and the theorem/lemma
/// verdicts.  Memory is O(deps + r), independent of N.
struct LatticeSweepResult {
  LatticeBlockStats stats;
  PartitionStats partition;
  /// (dep index, group-lattice offset) -> number of dependence arcs whose
  /// source and target groups differ by that offset.  The closed-form
  /// counterpart of the TIG edge weights: by Lemmas 2/3 each dependence
  /// contributes at most two offsets (q and q+1 for Δt = q·r + ρ).
  std::map<std::pair<std::size_t, std::int64_t>, std::int64_t> offset_weights;
  bool exact_cover = false;
  bool theorem1 = false;
  Theorem2Report theorem2;
  LemmaReport lemmas;
};

/// Symbolic grouping of a 2-D affine iteration space as a 1-D group
/// lattice.  Reproduces the dense Grouping (populations, lattice
/// coordinates, mapping order) exactly on the gated class; no Group
/// objects are ever materialized.
class GroupLattice {
 public:
  /// Gate + construction; nullopt when the closed forms do not apply (the
  /// caller falls back to the line-based symbolic path).  O(slabs log slabs).
  static std::optional<GroupLattice> build(const IterSpace& space, const TimeFunction& tf,
                                           const GroupingOptions& opts = {});

  // ---- frame --------------------------------------------------------------
  [[nodiscard]] const IterSpace& space() const { return *space_; }
  [[nodiscard]] const TimeFunction& time_function() const { return tf_; }
  /// Line-index vector w (primitive, w·u = 0): line of j is c = w·j.
  [[nodiscard]] const IntVec& line_index_vector() const { return w_; }
  [[nodiscard]] const IntVec& line_direction() const { return u_; }
  [[nodiscard]] std::int64_t step_stride() const { return sigma_; }
  /// Group size r of Algorithm 1 Step 1 (1 in the degenerate case).
  [[nodiscard]] std::int64_t group_size_r() const { return r_; }
  /// β = rank(mat(D^p)): 1, or 0 when every dependence is parallel to Π
  /// (degenerate: every line is its own group).
  [[nodiscard]] std::size_t beta() const { return grouping_ ? 1 : 0; }
  [[nodiscard]] bool degenerate() const { return !grouping_; }
  [[nodiscard]] std::optional<std::size_t> grouping_vector_index() const { return grouping_; }

  // ---- lines --------------------------------------------------------------
  [[nodiscard]] std::int64_t c_min() const { return c_lo_; }
  [[nodiscard]] std::int64_t c_max() const { return c_hi_; }
  [[nodiscard]] std::uint64_t line_count() const {
    return static_cast<std::uint64_t>(c_hi_ - c_lo_ + 1);
  }
  /// Seed line index c* (the dense lexicographic seed's line).
  [[nodiscard]] std::int64_t seed_line() const { return c_seed_; }
  /// Slot orientation: +1 when slot t increases with c, -1 otherwise
  /// (γ_l of the grouping vector; the lex direction in the degenerate case).
  [[nodiscard]] std::int64_t orientation() const { return orient_; }
  /// Slot index of line c: t = orientation·(c - c*); the dense BFS slot.
  [[nodiscard]] std::int64_t slot_of_line(std::int64_t c) const {
    return orient_ * (c - c_seed_);
  }
  /// Points on line c (0 outside [c_min, c_max]); O(dimension).
  [[nodiscard]] std::int64_t line_population(std::int64_t c) const;
  /// Σ line_population over [c1, c2] ∩ [c_min, c_max]; O(|interval|·dim).
  [[nodiscard]] std::uint64_t sum_line_populations(std::int64_t c1, std::int64_t c2) const;

  // ---- groups -------------------------------------------------------------
  /// Dense Group::lattice coordinate of line c: a = floor(t/r).
  [[nodiscard]] std::int64_t group_of_line(std::int64_t c) const {
    return floor_div(slot_of_line(c), r_);
  }
  [[nodiscard]] std::int64_t a_min() const { return a_min_; }
  [[nodiscard]] std::int64_t a_max() const { return a_max_; }
  /// Every a in [a_min, a_max] is populated (the interval is gap-free).
  [[nodiscard]] std::uint64_t group_count() const {
    return static_cast<std::uint64_t>(a_max_ - a_min_ + 1);
  }
  /// Dense Group::lattice coords of group a: {a}, or {} when degenerate.
  [[nodiscard]] IntVec group_lattice_coord(std::int64_t a) const {
    return degenerate() ? IntVec{} : IntVec{a};
  }
  /// Inclusive line-index interval [c_first, c_last] of group a's slots,
  /// clipped to the populated range (boundary groups are partial).
  [[nodiscard]] DimBounds group_line_range(std::int64_t a) const;
  /// Block size of group a: Σ of its lines' populations; O(r·dimension).
  [[nodiscard]] std::int64_t group_population(std::int64_t a) const;
  /// Position of group a in Algorithm 2's deterministic sort order
  /// (ascending lattice coordinate — identical to the dense mapper's key).
  [[nodiscard]] std::uint64_t sorted_index_of_group(std::int64_t a) const {
    return static_cast<std::uint64_t>(a - a_min_);
  }
  [[nodiscard]] std::int64_t group_at_sorted_index(std::uint64_t k) const {
    return a_min_ + static_cast<std::int64_t>(k);
  }

  /// One lattice box per slab: the inclusive group-coordinate range whose
  /// lines intersect that slab.  The ISSUE's enumerate_boxes() view of the
  /// grouping: O(slabs) boxes, unioning to [a_min, a_max].
  struct GroupBox {
    std::int64_t a_lo = 0;
    std::int64_t a_hi = 0;
    std::int64_t c_lo = 0;  ///< the slab's line-index interval
    std::int64_t c_hi = 0;
  };
  [[nodiscard]] std::vector<GroupBox> enumerate_boxes() const;

  // ---- dependences --------------------------------------------------------
  [[nodiscard]] const std::vector<IntVec>& original_deps() const { return space_->dependences(); }
  /// Line-index shift of dependence k: target line of an arc from line c is
  /// c + line_shift(k) (0 when d_k ∥ Π).
  [[nodiscard]] std::int64_t line_shift(std::size_t k) const { return gamma_[k]; }
  /// Scaled projected dependence s·d - (Π·d)·Π (dense pdep coordinates).
  [[nodiscard]] const IntVec& projected_dep_scaled(std::size_t k) const { return pdeps_[k]; }

  /// The full O(lines·deps) pass: block stats, partition stats, per-offset
  /// TIG weights, and (when `validate`) exact-cover/Theorem 1/Theorem 2/
  /// lemma verdicts.  Time O(lines·(deps + r)·dim), memory O(deps + r).
  [[nodiscard]] LatticeSweepResult sweep(bool validate = true) const;

  /// Visit every populated line in ascending c order with its population and
  /// the absolute step of its first point (Π·entry).  O(lines·dim), O(1)
  /// extra memory — the simulator's line feed.
  void for_each_line(
      const std::function<void(std::int64_t c, std::int64_t pop, std::int64_t first_step)>& visit)
      const;
  /// Visit every (line, dependence) arc bundle: `count` arcs from line c to
  /// line c + line_shift(dep), the first one leaving at absolute step
  /// `first_step`.  Values match partition/symbolic.hpp's for_each_line_dep.
  void for_each_arc_bundle(const std::function<void(std::int64_t c, std::size_t dep,
                                                    std::int64_t count, std::int64_t first_step)>&
                               visit) const;

 private:
  GroupLattice() = default;

  /// Entry point of line c for line_range queries: p(c) = c·δ with w·δ = 1
  /// (not necessarily inside J; line_range only needs a point on the line).
  [[nodiscard]] IntVec line_anchor(std::int64_t c) const;

  const IterSpace* space_ = nullptr;
  TimeFunction tf_;
  IntVec u_;       ///< line direction Π/content(Π), Π·u > 0
  IntVec w_;       ///< primitive line-index vector, entries in {-1,0,1}
  IntVec delta_;   ///< lattice generator with w·δ = 1 (anchor direction)
  std::int64_t sigma_ = 1;  ///< step stride Π·u
  std::int64_t scale_ = 1;  ///< s = Π·Π
  std::vector<IntVec> pdeps_;      ///< scaled projected dependences
  std::vector<std::int64_t> gamma_;///< line-index shifts w·d_k
  std::int64_t r_ = 1;
  std::optional<std::size_t> grouping_;  ///< grouping-vector index (nullopt: degenerate)
  std::int64_t c_lo_ = 0, c_hi_ = 0;
  std::int64_t c_seed_ = 0;
  std::int64_t orient_ = 1;
  std::int64_t a_min_ = 0, a_max_ = 0;
};

}  // namespace hypart
