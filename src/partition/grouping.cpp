#include "partition/grouping.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace hypart {

std::vector<std::size_t> Group::members() const {
  std::vector<std::size_t> m;
  for (const std::optional<std::size_t>& s : slots)
    if (s) m.push_back(*s);
  return m;
}

std::size_t Group::size() const {
  return static_cast<std::size_t>(std::count_if(
      slots.begin(), slots.end(), [](const std::optional<std::size_t>& s) { return s.has_value(); }));
}

std::size_t Grouping::group_of_point(std::size_t point_id) const {
  if (point_id >= point_group_.size() || point_group_[point_id] == SIZE_MAX)
    throw std::out_of_range("Grouping::group_of_point: ungrouped point id");
  return point_group_[point_id];
}

namespace {

/// Bounding box of the scaled projected points, expanded by `margin` per
/// coordinate; used to bound the region-growing lattice walk.
struct Box {
  IntVec lo, hi;
  [[nodiscard]] bool contains(const IntVec& p) const {
    for (std::size_t i = 0; i < p.size(); ++i)
      if (p[i] < lo[i] || p[i] > hi[i]) return false;
    return true;
  }
};

Box bounding_box(const std::vector<IntVec>& pts, const std::vector<IntVec>& steps,
                 std::int64_t r) {
  Box b{pts.front(), pts.front()};
  for (const IntVec& p : pts)
    for (std::size_t i = 0; i < p.size(); ++i) {
      b.lo[i] = std::min(b.lo[i], p[i]);
      b.hi[i] = std::max(b.hi[i], p[i]);
    }
  for (std::size_t i = 0; i < b.lo.size(); ++i) {
    std::int64_t margin = 1;
    for (const IntVec& s : steps) {
      std::int64_t a = s[i] < 0 ? -s[i] : s[i];
      margin = std::max(margin, (r + 1) * a);
    }
    b.lo[i] -= margin;
    b.hi[i] += margin;
  }
  return b;
}

}  // namespace

Grouping Grouping::compute(const ProjectedStructure& ps, const GroupingOptions& opts) {
  Grouping g;
  g.ps_ = &ps;
  const std::vector<IntVec>& pdeps = ps.projected_deps_scaled();
  const std::size_t npts = ps.point_count();
  g.point_group_.assign(npts, SIZE_MAX);
  g.beta_ = ps.projected_rank();

  // ---- Step 1: group size r and grouping vector ---------------------------
  std::int64_t r = 1;
  for (std::size_t k = 0; k < pdeps.size(); ++k)
    r = std::max(r, ps.replication_factor(k));
  g.r_ = r;

  if (opts.grouping_vector) {
    std::size_t l = *opts.grouping_vector;
    if (l >= pdeps.size()) throw std::invalid_argument("Grouping: grouping_vector out of range");
    if (ps.replication_factor(l) != r)
      throw std::invalid_argument(
          "Grouping: overridden grouping vector does not attain the maximal r");
    g.grouping_ = l;
  } else {
    for (std::size_t k = 0; k < pdeps.size(); ++k) {
      if (is_zero(pdeps[k])) continue;
      if (ps.replication_factor(k) == r) {
        g.grouping_ = k;
        break;
      }
    }
  }

  // Degenerate structure: every dependence is parallel to Π (or D empty).
  // Every projected point forms its own group.
  if (!g.grouping_ || is_zero(pdeps[*g.grouping_])) {
    g.grouping_ = std::nullopt;
    g.r_ = 1;
    for (std::size_t p = 0; p < npts; ++p) {
      Group grp;
      grp.base = ps.points()[p];
      grp.slots = {p};
      grp.lattice = {};
      grp.component = p;
      g.point_group_[p] = g.groups_.size();
      g.groups_.push_back(std::move(grp));
    }
    g.beta_ = 0;
    return g;
  }

  const std::size_t l = *g.grouping_;

  // ---- Step 2: auxiliary grouping vectors ---------------------------------
  std::vector<RatVec> span_basis{ps.projected_dep_rational(l)};
  if (opts.auxiliary_vectors) {
    for (std::size_t k : *opts.auxiliary_vectors) {
      if (k >= pdeps.size()) throw std::invalid_argument("Grouping: auxiliary index out of range");
      if (k == l || is_zero(pdeps[k]))
        throw std::invalid_argument("Grouping: auxiliary vector equals grouping vector or zero");
      RatVec cand = ps.projected_dep_rational(k);
      if (in_span(span_basis, cand))
        throw std::invalid_argument(
            "Grouping: overridden auxiliary vectors are not linearly independent");
      span_basis.push_back(std::move(cand));
      g.aux_.push_back(k);
    }
    if (g.aux_.size() + 1 != g.beta_)
      throw std::invalid_argument("Grouping: need exactly beta-1 auxiliary vectors");
  } else {
    // Greedily pick β-1 projected dependences that extend the span of d_l^p.
    for (std::size_t k = 0; k < pdeps.size() && g.aux_.size() + 1 < g.beta_; ++k) {
      if (k == l || is_zero(pdeps[k])) continue;
      RatVec cand = ps.projected_dep_rational(k);
      if (in_span(span_basis, cand)) continue;
      span_basis.push_back(std::move(cand));
      g.aux_.push_back(k);
    }
  }

  // ---- Steps 3-5: region growing over the group-base lattice --------------
  const IntVec& slot_step = pdeps[l];          // spacing between slots (scaled)
  const IntVec group_step = scale(slot_step, r);  // spacing between neighbor groups
  std::vector<IntVec> all_steps{group_step};
  for (std::size_t k : g.aux_) all_steps.push_back(pdeps[k]);
  Box box = bounding_box(ps.points(), all_steps, r);

  const std::size_t lattice_dim = 1 + g.aux_.size();
  std::unordered_set<IntVec, IntVecHash> visited;
  std::size_t ungrouped = npts;
  std::size_t explicit_cursor = 0;
  std::size_t component = 0;

  auto next_seed = [&]() -> std::optional<std::size_t> {
    if (opts.seed_policy == SeedPolicy::ExplicitBases) {
      while (explicit_cursor < opts.explicit_bases.size()) {
        std::optional<std::size_t> id = ps.find_point(opts.explicit_bases[explicit_cursor]);
        ++explicit_cursor;
        if (id && g.point_group_[*id] == SIZE_MAX) return id;
      }
    }
    // Lexicographic fallback: points() is sorted, so scan in order.
    for (std::size_t p = 0; p < npts; ++p)
      if (g.point_group_[p] == SIZE_MAX) return p;
    return std::nullopt;
  };

  while (ungrouped > 0) {
    std::optional<std::size_t> seed = next_seed();
    if (!seed) break;
    IntVec seed_base = ps.points()[*seed];

    struct Pending {
      IntVec base;
      IntVec lattice;
    };
    std::deque<Pending> frontier;
    frontier.push_back({seed_base, IntVec(lattice_dim, 0)});
    visited.insert(seed_base);

    while (!frontier.empty()) {
      Pending cur = std::move(frontier.front());
      frontier.pop_front();

      // Materialize the group at this base: slot k = base + k*d_l^p.
      Group grp;
      grp.base = cur.base;
      grp.lattice = cur.lattice;
      grp.component = component;
      grp.slots.assign(static_cast<std::size_t>(r), std::nullopt);
      std::size_t populated = 0;
      IntVec slot = cur.base;
      for (std::int64_t k = 0; k < r; ++k) {
        std::optional<std::size_t> id = ps.find_point(slot);
        if (id && g.point_group_[*id] == SIZE_MAX) {
          grp.slots[static_cast<std::size_t>(k)] = *id;
          ++populated;
        }
        if (k + 1 < r) slot = add(slot, slot_step);
      }
      if (populated > 0) {
        std::size_t gid = g.groups_.size();
        for (const std::optional<std::size_t>& s : grp.slots)
          if (s) g.point_group_[*s] = gid;
        ungrouped -= populated;
        g.groups_.push_back(std::move(grp));
      }

      // Expand to forward/backward neighbors along every lattice direction.
      for (std::size_t dir = 0; dir < lattice_dim; ++dir) {
        const IntVec& step = all_steps[dir];
        for (int sign : {+1, -1}) {
          IntVec nb = sign > 0 ? add(cur.base, step) : sub(cur.base, step);
          if (!box.contains(nb)) continue;
          if (visited.contains(nb)) continue;
          visited.insert(nb);
          IntVec nl = cur.lattice;
          nl[dir] += sign;
          frontier.push_back({std::move(nb), std::move(nl)});
        }
      }
    }
    ++component;
  }

  if (ungrouped != 0)
    throw std::logic_error("Grouping: region growing failed to cover all projected points");
  return g;
}

std::vector<IntVec> Grouping::lattice_directions() const {
  std::vector<IntVec> dirs;
  if (!grouping_) return dirs;
  const std::vector<IntVec>& pdeps = ps_->projected_deps_scaled();
  dirs.push_back(scale(pdeps[*grouping_], r_));
  for (std::size_t k : aux_) dirs.push_back(pdeps[k]);
  return dirs;
}

Digraph Grouping::group_digraph() const {
  Digraph dg(groups_.size());
  const std::vector<IntVec>& pdeps = ps_->projected_deps_scaled();
  for (std::size_t p = 0; p < ps_->point_count(); ++p) {
    for (const IntVec& dp : pdeps) {
      if (is_zero(dp)) continue;
      std::optional<std::size_t> q = ps_->find_point(add(ps_->points()[p], dp));
      if (!q) continue;
      std::size_t gp = point_group_[p];
      std::size_t gq = point_group_[*q];
      if (gp != gq) dg.add_edge(gp, gq, 1);
    }
  }
  return dg;
}

}  // namespace hypart
