#include "sim/machine.hpp"

#include <sstream>

namespace hypart {

std::string Cost::to_string() const {
  std::ostringstream os;
  bool any = false;
  if (calc != 0) {
    os << calc << " t_calc";
    any = true;
  }
  if (start != 0 && start == comm) {
    if (any) os << " + ";
    os << start << "(t_start+t_comm)";
    return any || start ? os.str() : "0";
  }
  if (start != 0) {
    if (any) os << " + ";
    os << start << " t_start";
    any = true;
  }
  if (comm != 0) {
    if (any) os << " + ";
    os << comm << " t_comm";
    any = true;
  }
  if (!any) return "0";
  return os.str();
}

}  // namespace hypart
