#include "sim/report.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace hypart {

UtilizationReport processor_utilization(const ComputationStructure& q, const TimeFunction& tf,
                                        const Partition& part, const Mapping& mapping,
                                        std::size_t max_chart_steps) {
  UtilizationReport rep;
  const std::size_t nprocs = mapping.processor_count;
  rep.per_proc_busy.assign(nprocs, 0.0);

  std::map<std::pair<std::int64_t, ProcId>, std::int64_t> iters_at;
  rep.first_step = INT64_MAX;
  rep.last_step = INT64_MIN;
  for (std::size_t vid = 0; vid < q.vertices().size(); ++vid) {
    std::int64_t s = tf.step_of(q.vertices()[vid]);
    ProcId p = mapping.block_to_proc[part.block_of(vid)];
    ++iters_at[{s, p}];
    rep.first_step = std::min(rep.first_step, s);
    rep.last_step = std::max(rep.last_step, s);
  }
  if (rep.first_step > rep.last_step) {
    rep.first_step = rep.last_step = 0;
    return rep;
  }
  const std::int64_t nsteps = rep.steps();

  std::vector<std::int64_t> busy_steps(nprocs, 0);
  for (const auto& [key, count] : iters_at) {
    (void)count;
    ++busy_steps[key.second];
  }
  std::int64_t busy_total = 0;
  for (std::size_t p = 0; p < nprocs; ++p) {
    rep.per_proc_busy[p] = static_cast<double>(busy_steps[p]) / static_cast<double>(nsteps);
    busy_total += busy_steps[p];
  }
  rep.mean_utilization = nprocs
                             ? static_cast<double>(busy_total) /
                                   (static_cast<double>(nsteps) * static_cast<double>(nprocs))
                             : 0.0;

  // Text Gantt, resampled to at most max_chart_steps columns.
  const std::int64_t stride =
      std::max<std::int64_t>(1, (nsteps + static_cast<std::int64_t>(max_chart_steps) - 1) /
                                    static_cast<std::int64_t>(max_chart_steps));
  std::ostringstream os;
  os << "steps " << rep.first_step << ".." << rep.last_step;
  if (stride > 1) os << " (every " << stride << ")";
  os << "\n";
  for (std::size_t p = 0; p < nprocs; ++p) {
    os << "P";
    os.width(3);
    os << std::left << p << "|";
    for (std::int64_t s = rep.first_step; s <= rep.last_step; s += stride) {
      std::int64_t count = 0;
      for (std::int64_t k = s; k < std::min(s + stride, rep.last_step + 1); ++k) {
        auto it = iters_at.find({k, static_cast<ProcId>(p)});
        if (it != iters_at.end()) count += it->second;
      }
      char c = '.';
      if (count > 0) c = count < 10 ? static_cast<char>('0' + count) : '+';
      os << c;
    }
    os << "|  busy " << static_cast<int>(rep.per_proc_busy[p] * 100.0 + 0.5) << "%\n";
  }
  rep.gantt = os.str();
  return rep;
}

}  // namespace hypart
