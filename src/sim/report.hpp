// hypart — execution reports: per-processor utilization and text Gantt.
//
// The hyperplane schedule keeps processors busy only while their blocks'
// hyperplanes are active; this report makes the idle time visible (the
// paper's Section IV discusses processor idling as a first-order effect of
// poor mappings).
#pragma once

#include <string>
#include <vector>

#include "mapping/tig.hpp"
#include "partition/blocks.hpp"

namespace hypart {

struct UtilizationReport {
  std::int64_t first_step = 0;
  std::int64_t last_step = 0;
  std::vector<double> per_proc_busy;  ///< fraction of steps with >= 1 iteration
  double mean_utilization = 0.0;      ///< busy processor-steps / total processor-steps
  std::string gantt;                  ///< rows = processors, cols = steps

  [[nodiscard]] std::int64_t steps() const { return last_step - first_step + 1; }
};

/// Utilization of every processor under the hyperplane schedule.  The Gantt
/// chart prints one character per (processor, step): '.' idle, digits for
/// iteration counts, '+' for ten or more; charts wider than `max_chart_steps`
/// are resampled by taking every k-th step.
UtilizationReport processor_utilization(const ComputationStructure& q, const TimeFunction& tf,
                                        const Partition& part, const Mapping& mapping,
                                        std::size_t max_chart_steps = 96);

}  // namespace hypart
