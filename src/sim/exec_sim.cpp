#include "sim/exec_sim.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

namespace hypart {

double SimResult::speedup(const MachineParams& m, std::int64_t total_iterations,
                          std::int64_t flops_per_iteration) const {
  double seq = static_cast<double>(total_iterations) * static_cast<double>(flops_per_iteration) *
               m.t_calc;
  return time > 0 ? seq / time : 0.0;
}

SimResult simulate_execution(const ComputationStructure& q, const TimeFunction& tf,
                             const Partition& part, const Mapping& mapping, const Topology& topo,
                             const MachineParams& machine, const SimOptions& opts) {
  if (mapping.block_to_proc.size() != part.block_count())
    throw std::invalid_argument("simulate_execution: mapping/partition size mismatch");
  const std::size_t nprocs = mapping.processor_count;
  if (topo.size() < nprocs)
    throw std::invalid_argument("simulate_execution: topology smaller than processor count");

  SimResult res;
  res.per_proc_iterations.assign(nprocs, 0);

  // Processor of every vertex and the schedule extent.
  std::vector<ProcId> vproc(q.vertices().size());
  std::int64_t lo = INT64_MAX, hi = INT64_MIN;
  for (std::size_t vid = 0; vid < q.vertices().size(); ++vid) {
    vproc[vid] = mapping.block_to_proc[part.block_of(vid)];
    ++res.per_proc_iterations[vproc[vid]];
    std::int64_t s = tf.step_of(q.vertices()[vid]);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  res.steps = hi - lo + 1;

  // Bottleneck compute: the most loaded processor.
  std::int64_t max_iters = 0;
  for (std::int64_t c : res.per_proc_iterations) max_iters = std::max(max_iters, c);
  res.compute_bottleneck = Cost{max_iters * opts.flops_per_iteration, 0, 0};

  if (opts.accounting == CommAccounting::PaperMaxChannel) {
    // Channel volume per unordered processor pair (each crossing arc is a
    // one-word message).
    std::map<std::pair<ProcId, ProcId>, std::int64_t> channel;
    q.for_each_arc([&](const IntVec& src, const IntVec& dst, std::size_t) {
      ProcId ps = vproc[q.id_of(src)];
      ProcId pd = vproc[q.id_of(dst)];
      if (ps == pd) return;
      auto key = std::minmax(ps, pd);
      ++channel[{key.first, key.second}];
      ++res.messages;
      ++res.words;
    });
    std::int64_t worst = 0;
    for (const auto& [pair, vol] : channel) {
      std::int64_t cost_units = vol;
      if (opts.charge_hops)
        cost_units *= static_cast<std::int64_t>(topo.distance(pair.first, pair.second));
      worst = std::max(worst, cost_units);
    }
    res.comm_bottleneck = Cost{0, worst, worst};
    res.total = res.compute_bottleneck + res.comm_bottleneck;
    res.time = res.total.value(machine);
    return res;
  }

  if (opts.accounting == CommAccounting::LinkContention) {
    const auto* cube = dynamic_cast<const Hypercube*>(&topo);
    if (cube == nullptr)
      throw std::invalid_argument(
          "simulate_execution: LinkContention accounting requires a Hypercube topology");

    // Words per (step, src, dst) channel, then routed over e-cube links.
    std::map<std::tuple<std::int64_t, ProcId, ProcId>, std::int64_t> channel_words;
    q.for_each_arc([&](const IntVec& src, const IntVec& dst, std::size_t) {
      ProcId ps = vproc[q.id_of(src)];
      ProcId pd = vproc[q.id_of(dst)];
      if (ps == pd) return;
      ++channel_words[{tf.step_of(src), ps, pd}];
      ++res.words;
    });
    res.messages = static_cast<std::int64_t>(channel_words.size());

    std::map<std::pair<std::int64_t, ProcId>, std::int64_t> iters_at_step;
    for (std::size_t vid = 0; vid < q.vertices().size(); ++vid)
      ++iters_at_step[{tf.step_of(q.vertices()[vid]), vproc[vid]}];

    // Per step: busiest processor's compute + busiest link's serialized
    // traffic (a directed link is a (from, to) neighbor pair).
    std::map<std::int64_t, std::int64_t> step_compute;  // max iterations at step
    for (const auto& [key, count] : iters_at_step)
      step_compute[key.first] = std::max(step_compute[key.first], count);

    struct LinkLoad {
      std::int64_t msgs = 0;
      std::int64_t words = 0;
    };
    std::map<std::int64_t, std::map<std::pair<ProcId, ProcId>, LinkLoad>> per_step_links;
    std::map<std::pair<ProcId, ProcId>, std::int64_t> total_link_words;
    for (const auto& [key, words] : channel_words) {
      auto [step, src, dst] = key;
      ProcId at = src;
      for (ProcId hop : cube->ecube_route(src, dst)) {
        LinkLoad& l = per_step_links[step][{at, hop}];
        ++l.msgs;
        l.words += words;
        total_link_words[{at, hop}] += words;
        at = hop;
      }
    }
    for (const auto& [link, words] : total_link_words)
      res.max_link_words = std::max(res.max_link_words, words);

    Cost total;
    for (const auto& [step, max_iters_step] : step_compute) {
      Cost step_cost{max_iters_step * opts.flops_per_iteration, 0, 0};
      auto it = per_step_links.find(step);
      if (it != per_step_links.end()) {
        std::int64_t worst_msgs = 0, worst_words = 0;
        double worst_val = -1.0;
        for (const auto& [link, load] : it->second) {
          double v = Cost{0, load.msgs, load.words}.value(machine);
          if (v > worst_val) {
            worst_val = v;
            worst_msgs = load.msgs;
            worst_words = load.words;
          }
        }
        step_cost += Cost{0, worst_msgs, worst_words};
        res.comm_bottleneck += Cost{0, worst_msgs, worst_words};
      }
      total += step_cost;
    }
    res.total = total;
    res.time = total.value(machine);
    return res;
  }

  // ---- PerStepBarrier ------------------------------------------------------
  // Iterations per (step, proc) and words per (step, src, dst).
  struct StepKey {
    std::int64_t step;
    ProcId src, dst;
    bool operator<(const StepKey& o) const {
      if (step != o.step) return step < o.step;
      if (src != o.src) return src < o.src;
      return dst < o.dst;
    }
  };
  std::map<std::pair<std::int64_t, ProcId>, std::int64_t> iters_at;
  for (std::size_t vid = 0; vid < q.vertices().size(); ++vid)
    ++iters_at[{tf.step_of(q.vertices()[vid]), vproc[vid]}];

  std::map<StepKey, std::int64_t> msg_words;
  q.for_each_arc([&](const IntVec& src, const IntVec& dst, std::size_t) {
    ProcId ps = vproc[q.id_of(src)];
    ProcId pd = vproc[q.id_of(dst)];
    if (ps == pd) return;
    ++msg_words[{tf.step_of(src), ps, pd}];
    ++res.words;
  });
  res.messages = static_cast<std::int64_t>(msg_words.size());

  // Per step: each processor's time = compute + its aggregated sends; the
  // step ends when the slowest processor finishes (barrier semantics).
  std::map<std::int64_t, std::unordered_map<ProcId, Cost>> per_step_proc;
  for (const auto& [key, count] : iters_at)
    per_step_proc[key.first][key.second] +=
        Cost{count * opts.flops_per_iteration, 0, 0};
  for (const auto& [key, wordcount] : msg_words) {
    std::int64_t mult =
        opts.charge_hops ? static_cast<std::int64_t>(topo.distance(key.src, key.dst)) : 1;
    per_step_proc[key.step][key.src] += Cost{0, mult, mult * wordcount};
  }

  Cost total;
  for (const auto& [step, procs] : per_step_proc) {
    double worst_val = -1.0;
    Cost worst;
    for (const auto& [p, c] : procs) {
      double v = c.value(machine);
      if (v > worst_val) {
        worst_val = v;
        worst = c;
      }
    }
    total += worst;
    res.comm_bottleneck += Cost{0, worst.start, worst.comm};
  }
  res.total = total;
  res.time = total.value(machine);
  return res;
}

}  // namespace hypart
