#include "sim/exec_sim.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <stdexcept>
#include <tuple>
#include <unordered_map>

#include "core/error.hpp"
#include "fault/degraded_route.hpp"
#include "fault/remap.hpp"
#include "partition/symbolic.hpp"

namespace hypart {

double SimResult::speedup(const MachineParams& m, std::int64_t total_iterations,
                          std::int64_t flops_per_iteration) const {
  double seq = static_cast<double>(total_iterations) * static_cast<double>(flops_per_iteration) *
               m.t_calc;
  return time > 0 ? seq / time : 0.0;
}

namespace {

/// Resolved fault state for one simulation: the concrete failure set plus
/// the degraded remapping.  Inactive (remap unset) when the plan is empty.
struct FaultState {
  const Hypercube* cube = nullptr;
  fault::FaultSet set;
  std::optional<fault::RemapResult> remap;

  [[nodiscard]] bool active() const { return remap.has_value(); }
};

FaultState resolve_faults(const SimOptions& opts, const Partition& part, const Mapping& mapping,
                          const Topology& topo) {
  FaultState fs;
  fs.cube = dynamic_cast<const Hypercube*>(&topo);
  if (opts.faults.machine_empty()) return fs;
  if (fs.cube == nullptr)
    throw FaultError("simulate_execution: fault injection requires a Hypercube topology");
  fs.set = opts.faults.resolve(*fs.cube);
  fs.remap = fault::remap_for_faults(part, mapping, *fs.cube, fs.set);
  return fs;
}

SimResult simulate_core(const ComputationStructure& q, const TimeFunction& tf,
                        const Partition& part, const Mapping& mapping, const Topology& topo,
                        const MachineParams& machine, const SimOptions& opts,
                        const FaultState& fstate) {
  if (mapping.block_to_proc.size() != part.block_count())
    throw std::invalid_argument("simulate_execution: mapping/partition size mismatch");
  const std::size_t nprocs = mapping.processor_count;
  if (topo.size() < nprocs)
    throw std::invalid_argument("simulate_execution: topology smaller than processor count");
  // Spare nodes may sit outside the mapping's processor range but inside
  // the cube, so degraded runs account over the whole topology.
  const std::size_t nslots = fstate.active() ? std::max(nprocs, topo.size()) : nprocs;

  SimResult res;
  res.per_proc_iterations.assign(nslots, 0);
  if (fstate.active()) {
    res.failed_nodes = static_cast<std::int64_t>(fstate.set.failed_node_count());
    res.failed_links = static_cast<std::int64_t>(fstate.set.failed_link_count());
    res.migrated_blocks = static_cast<std::int64_t>(fstate.remap->migrations.size());
    res.migration_cost = fstate.remap->migration_cost;
  }

  // Processor of every vertex (failure-timeline aware) and the schedule
  // extent.
  std::vector<ProcId> vproc(q.vertices().size());
  std::int64_t lo = INT64_MAX, hi = INT64_MIN;
  for (std::size_t vid = 0; vid < q.vertices().size(); ++vid) {
    std::int64_t s = tf.step_of(q.vertices()[vid]);
    vproc[vid] = fstate.active() ? fstate.remap->proc_at(part.block_of(vid), s)
                                 : mapping.block_to_proc[part.block_of(vid)];
    ++res.per_proc_iterations[vproc[vid]];
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  res.steps = hi - lo + 1;

  // Degraded hop distance of one message; counts the reroute side effect.
  auto routed_hops = [&](ProcId src, ProcId dst, std::int64_t step) -> std::int64_t {
    if (!fstate.active()) return static_cast<std::int64_t>(topo.distance(src, dst));
    fault::Route r = fault::route_with_faults(*fstate.cube, src, dst, fstate.set, step);
    if (r.rerouted) ++res.rerouted_messages;
    return static_cast<std::int64_t>(r.hops.size());
  };

  // Bottleneck compute: the most loaded processor.
  std::int64_t max_iters = 0;
  for (std::int64_t c : res.per_proc_iterations) max_iters = std::max(max_iters, c);
  res.compute_bottleneck = Cost{max_iters * opts.flops_per_iteration, 0, 0};

  if (opts.accounting == CommAccounting::PaperMaxChannel) {
    // Channel volume per unordered processor pair (each crossing arc is a
    // one-word message); with faults the per-message hop charge detours
    // around failures, so volumes are accumulated in cost units directly.
    std::map<std::pair<ProcId, ProcId>, std::int64_t> channel;
    q.for_each_arc([&](const IntVec& src, const IntVec& dst, std::size_t) {
      ProcId ps = vproc[q.id_of(src)];
      ProcId pd = vproc[q.id_of(dst)];
      if (ps == pd) return;
      std::int64_t units = 1;
      if (fstate.active()) {
        std::int64_t hops = routed_hops(ps, pd, tf.step_of(src));
        if (opts.charge_hops) units = hops;
      } else if (opts.charge_hops) {
        units = static_cast<std::int64_t>(topo.distance(ps, pd));
      }
      auto key = std::minmax(ps, pd);
      channel[{key.first, key.second}] += units;
      ++res.messages;
      ++res.words;
    });
    std::int64_t worst = 0;
    for (const auto& [pair, units] : channel) worst = std::max(worst, units);
    res.comm_bottleneck = Cost{0, worst, worst};
    res.total = res.compute_bottleneck + res.comm_bottleneck + res.migration_cost;
    res.time = res.total.value(machine);
    return res;
  }

  if (opts.accounting == CommAccounting::LinkContention) {
    const auto* cube = fstate.cube;
    if (cube == nullptr)
      throw std::invalid_argument(
          "simulate_execution: LinkContention accounting requires a Hypercube topology");

    // Words per (step, src, dst) channel, then routed over e-cube links
    // (detouring around failures when a fault plan is active).
    std::map<std::tuple<std::int64_t, ProcId, ProcId>, std::int64_t> channel_words;
    q.for_each_arc([&](const IntVec& src, const IntVec& dst, std::size_t) {
      ProcId ps = vproc[q.id_of(src)];
      ProcId pd = vproc[q.id_of(dst)];
      if (ps == pd) return;
      ++channel_words[{tf.step_of(src), ps, pd}];
      ++res.words;
    });
    res.messages = static_cast<std::int64_t>(channel_words.size());

    std::map<std::pair<std::int64_t, ProcId>, std::int64_t> iters_at_step;
    for (std::size_t vid = 0; vid < q.vertices().size(); ++vid)
      ++iters_at_step[{tf.step_of(q.vertices()[vid]), vproc[vid]}];

    // Per step: busiest processor's compute + busiest link's serialized
    // traffic (a directed link is a (from, to) neighbor pair).
    std::map<std::int64_t, std::int64_t> step_compute;  // max iterations at step
    for (const auto& [key, count] : iters_at_step)
      step_compute[key.first] = std::max(step_compute[key.first], count);

    struct LinkLoad {
      std::int64_t msgs = 0;
      std::int64_t words = 0;
    };
    std::map<std::int64_t, std::map<std::pair<ProcId, ProcId>, LinkLoad>> per_step_links;
    std::map<std::pair<ProcId, ProcId>, std::int64_t> total_link_words;
    for (const auto& [key, words] : channel_words) {
      auto [step, src, dst] = key;
      std::vector<ProcId> hops;
      if (fstate.active()) {
        fault::Route route = fault::route_with_faults(*cube, src, dst, fstate.set, step);
        if (route.rerouted) ++res.rerouted_messages;
        hops = std::move(route.hops);
      } else {
        hops = cube->ecube_route(src, dst);
      }
      ProcId at = src;
      for (ProcId hop : hops) {
        LinkLoad& l = per_step_links[step][{at, hop}];
        ++l.msgs;
        l.words += words;
        total_link_words[{at, hop}] += words;
        at = hop;
      }
    }
    for (const auto& [link, words] : total_link_words)
      res.max_link_words = std::max(res.max_link_words, words);

    Cost total;
    for (const auto& [step, max_iters_step] : step_compute) {
      Cost step_cost{max_iters_step * opts.flops_per_iteration, 0, 0};
      auto it = per_step_links.find(step);
      if (it != per_step_links.end()) {
        std::int64_t worst_msgs = 0, worst_words = 0;
        double worst_val = -1.0;
        for (const auto& [link, load] : it->second) {
          double v = Cost{0, load.msgs, load.words}.value(machine);
          if (v > worst_val) {
            worst_val = v;
            worst_msgs = load.msgs;
            worst_words = load.words;
          }
        }
        step_cost += Cost{0, worst_msgs, worst_words};
        res.comm_bottleneck += Cost{0, worst_msgs, worst_words};
      }
      total += step_cost;
    }
    total += res.migration_cost;
    res.total = total;
    res.time = total.value(machine);
    return res;
  }

  // ---- PerStepBarrier ------------------------------------------------------
  // Iterations per (step, proc) and words per (step, src, dst).
  struct StepKey {
    std::int64_t step;
    ProcId src, dst;
    bool operator<(const StepKey& o) const {
      if (step != o.step) return step < o.step;
      if (src != o.src) return src < o.src;
      return dst < o.dst;
    }
  };
  std::map<std::pair<std::int64_t, ProcId>, std::int64_t> iters_at;
  for (std::size_t vid = 0; vid < q.vertices().size(); ++vid)
    ++iters_at[{tf.step_of(q.vertices()[vid]), vproc[vid]}];

  std::map<StepKey, std::int64_t> msg_words;
  q.for_each_arc([&](const IntVec& src, const IntVec& dst, std::size_t) {
    ProcId ps = vproc[q.id_of(src)];
    ProcId pd = vproc[q.id_of(dst)];
    if (ps == pd) return;
    ++msg_words[{tf.step_of(src), ps, pd}];
    ++res.words;
  });
  res.messages = static_cast<std::int64_t>(msg_words.size());

  // Per step: each processor's time = compute + its aggregated sends; the
  // step ends when the slowest processor finishes (barrier semantics).
  // Ordered by proc id so exact ties report the lowest processor's Cost
  // composition — the same tie-break as the symbolic path's ascending scan.
  std::map<std::int64_t, std::map<ProcId, Cost>> per_step_proc;
  for (const auto& [key, count] : iters_at)
    per_step_proc[key.first][key.second] +=
        Cost{count * opts.flops_per_iteration, 0, 0};
  for (const auto& [key, wordcount] : msg_words) {
    std::int64_t mult = 1;
    if (fstate.active()) {
      std::int64_t hops = routed_hops(key.src, key.dst, key.step);
      if (opts.charge_hops) mult = hops;
    } else if (opts.charge_hops) {
      mult = static_cast<std::int64_t>(topo.distance(key.src, key.dst));
    }
    per_step_proc[key.step][key.src] += Cost{0, mult, mult * wordcount};
  }

  Cost total;
  for (const auto& [step, procs] : per_step_proc) {
    double worst_val = -1.0;
    Cost worst;
    for (const auto& [p, c] : procs) {
      double v = c.value(machine);
      if (v > worst_val) {
        worst_val = v;
        worst = c;
      }
    }
    total += worst;
    res.comm_bottleneck += Cost{0, worst.start, worst.comm};
  }
  total += res.migration_cost;
  res.total = total;
  res.time = total.value(machine);
  return res;
}

// ---- observability -------------------------------------------------------
// Reconstructs the per-step schedule (iterations per processor, aggregated
// messages per channel, per-link occupancy under e-cube routing) and emits
// it as metrics and Chrome-trace events on the simulated clock (pid
// obs::kSimPid: one tid per processor, one per physical link).  Runs only
// when a sink or registry is installed, so the disabled path stays free.
// Under fault injection the reconstruction uses the degraded mapping and
// detoured routes, so the trace shows the machine that was actually priced.
void emit_observability(const ComputationStructure& q, const TimeFunction& tf,
                        const Partition& part, const Mapping& mapping, const Topology& topo,
                        const MachineParams& machine, const SimOptions& opts,
                        const FaultState& fstate, SimResult& res) {
  obs::TraceSink* sink = opts.obs.trace;
  obs::MetricsRegistry* reg = opts.obs.metrics;
  const std::size_t nprocs = res.per_proc_iterations.size();
  const auto* cube = fstate.cube;

  // Rebuild the schedule: processor per vertex, iterations per (step, proc),
  // words per (step, src, dst) aggregated channel message.
  std::vector<ProcId> vproc(q.vertices().size());
  std::map<std::int64_t, std::map<ProcId, std::int64_t>> step_iters;
  for (std::size_t vid = 0; vid < q.vertices().size(); ++vid) {
    std::int64_t s = tf.step_of(q.vertices()[vid]);
    vproc[vid] = fstate.active() ? fstate.remap->proc_at(part.block_of(vid), s)
                                 : mapping.block_to_proc[part.block_of(vid)];
    ++step_iters[s][vproc[vid]];
  }
  std::map<std::tuple<std::int64_t, ProcId, ProcId>, std::int64_t> channel_words;
  q.for_each_arc([&](const IntVec& src, const IntVec& dst, std::size_t) {
    ProcId ps = vproc[q.id_of(src)];
    ProcId pd = vproc[q.id_of(dst)];
    if (ps == pd) return;
    ++channel_words[{tf.step_of(src), ps, pd}];
  });

  // A message src->dst occupies these directed physical links (e-cube route
  // on a hypercube, detoured around failures when active; the logical
  // channel itself on other topologies).
  auto links_of = [&](ProcId src, ProcId dst, std::int64_t step) {
    std::vector<std::pair<ProcId, ProcId>> links;
    if (cube != nullptr) {
      std::vector<ProcId> hops =
          fstate.active() ? fault::route_with_faults(*cube, src, dst, fstate.set, step).hops
                          : cube->ecube_route(src, dst);
      ProcId at = src;
      for (ProcId hop : hops) {
        links.emplace_back(at, hop);
        at = hop;
      }
    } else {
      links.emplace_back(src, dst);
    }
    return links;
  };
  auto hop_count = [&](ProcId src, ProcId dst, std::int64_t step) -> std::int64_t {
    if (fstate.active())
      return fault::degraded_distance(*cube, src, dst, fstate.set, step);
    return static_cast<std::int64_t>(topo.distance(src, dst));
  };

  // ---- metrics -----------------------------------------------------------
  if (reg != nullptr) {
    reg->add("sim.steps", res.steps);
    reg->add("sim.messages", res.messages);
    reg->add("sim.words", res.words);
    reg->set_gauge("sim.time", res.time);
    if (fstate.active()) {
      reg->add("fault.reroutes", res.rerouted_messages);
      reg->add("fault.migrations", res.migrated_blocks);
      reg->add("fault.migration_words", fstate.remap->migration_words);
      reg->set_gauge("fault.failed_nodes", static_cast<double>(res.failed_nodes));
      reg->set_gauge("fault.failed_links", static_cast<double>(res.failed_links));
    }
    std::vector<std::int64_t> busy(nprocs, 0);
    for (const auto& [step, procs] : step_iters)
      for (const auto& [p, n] : procs) ++busy[p];
    for (std::size_t p = 0; p < nprocs; ++p) {
      const std::string base = "sim.proc." + std::to_string(p);
      reg->add(base + ".iterations", res.per_proc_iterations[p]);
      reg->add(base + ".busy_steps", busy[p]);
      reg->add(base + ".idle_steps", res.steps - busy[p]);
    }
    static const std::vector<std::int64_t> kWordBounds{1, 2, 4, 8, 16, 32, 64, 128, 256};
    static const std::vector<std::int64_t> kHopBounds{0, 1, 2, 3, 4, 6, 8};
    for (const auto& [key, words] : channel_words) {
      auto [step, src, dst] = key;
      reg->observe("sim.msg_words", words, kWordBounds);
      reg->observe("sim.msg_hops", hop_count(src, dst, step), kHopBounds);
    }
  }

  // ---- trace timeline + busiest-link series ------------------------------
  // Enumerate links deterministically so tid assignment and track names are
  // stable across runs.
  std::map<std::pair<ProcId, ProcId>, std::uint64_t> link_tid;
  for (const auto& [key, words] : channel_words) {
    auto [step, src, dst] = key;
    for (const auto& link : links_of(src, dst, step)) link_tid.emplace(link, 0);
  }
  {
    std::uint64_t next = obs::kLinkTidBase;
    for (auto& [link, tid] : link_tid) tid = next++;
  }

  if (sink != nullptr) {
    obs::emit_process_name(sink, obs::kSimPid, "hypart simulator (simulated time)");
    for (std::size_t p = 0; p < nprocs; ++p)
      obs::emit_thread_name(sink, obs::kSimPid, p, "proc " + std::to_string(p));
    for (const auto& [link, tid] : link_tid)
      obs::emit_thread_name(sink, obs::kSimPid, tid,
                            "link " + std::to_string(link.first) + "->" +
                                std::to_string(link.second));
  }

  struct LinkLoad {
    std::int64_t msgs = 0;
    std::int64_t words = 0;
  };
  std::map<std::pair<ProcId, ProcId>, std::int64_t> total_link_words;
  double t = 0.0;  // simulated clock
  for (const auto& [step, procs] : step_iters) {
    double max_compute = 0.0;
    for (const auto& [p, iters] : procs) {
      double c = static_cast<double>(iters * opts.flops_per_iteration) * machine.t_calc;
      max_compute = std::max(max_compute, c);
      obs::emit_complete(sink, "compute", "sim", t, c, obs::kSimPid, p,
                         {{"step", step}, {"iterations", iters}});
    }

    // Messages sent this step, serialized per link after the compute phase.
    std::map<std::pair<ProcId, ProcId>, LinkLoad> links;
    auto lo = channel_words.lower_bound({step, 0, 0});
    auto hi = channel_words.lower_bound({step + 1, 0, 0});
    for (auto it = lo; it != hi; ++it) {
      auto [s, src, dst] = it->first;
      std::int64_t words = it->second;
      if (sink != nullptr) {
        auto iter_it = procs.find(src);
        double c_src =
            iter_it == procs.end()
                ? 0.0
                : static_cast<double>(iter_it->second * opts.flops_per_iteration) * machine.t_calc;
        obs::emit_instant(sink, "msg", "sim", t + c_src, obs::kSimPid, src,
                          {{"src", static_cast<std::int64_t>(src)},
                           {"dst", static_cast<std::int64_t>(dst)},
                           {"words", words},
                           {"hops", hop_count(src, dst, s)},
                           {"step", s}});
      }
      for (const auto& link : links_of(src, dst, s)) {
        LinkLoad& l = links[link];
        ++l.msgs;
        l.words += words;
        total_link_words[link] += words;
      }
    }

    double comm_dur = 0.0;
    std::int64_t busiest_words = 0;
    for (const auto& [link, load] : links) {
      double occupancy = static_cast<double>(load.msgs) * machine.t_start +
                         static_cast<double>(load.words) * machine.t_comm;
      obs::emit_complete(sink, "xfer", "sim", t + max_compute, occupancy, obs::kSimPid,
                         link_tid.at(link), {{"step", step}, {"msgs", load.msgs},
                                             {"words", load.words}});
      comm_dur = std::max(comm_dur, occupancy);
      busiest_words = std::max(busiest_words, load.words);
    }
    if (!links.empty()) {
      if (reg != nullptr) reg->append("sim.link.busiest_words", step, static_cast<double>(busiest_words));
      obs::emit_counter(sink, "busiest_link_words", t + max_compute, obs::kSimPid,
                        static_cast<double>(busiest_words));
    }
    t += max_compute + comm_dur;
  }

  if (reg != nullptr) {
    std::int64_t max_words = 0;
    for (const auto& [link, words] : total_link_words) max_words = std::max(max_words, words);
    reg->set_gauge("sim.max_link_words", static_cast<double>(max_words));
    res.metrics = reg->snapshot();
  }
}

}  // namespace

SimResult simulate_execution(const ComputationStructure& q, const TimeFunction& tf,
                             const Partition& part, const Mapping& mapping, const Topology& topo,
                             const MachineParams& machine, const SimOptions& opts) {
  obs::Span span(opts.obs.trace, "simulate_execution", "sim");
  FaultState fstate = resolve_faults(opts, part, mapping, topo);
  SimResult res = simulate_core(q, tf, part, mapping, topo, machine, opts, fstate);
  if (opts.obs.enabled())
    emit_observability(q, tf, part, mapping, topo, machine, opts, fstate, res);
  span.arg("steps", res.steps);
  span.arg("messages", res.messages);
  return res;
}

namespace {

/// Resolved machine-fault state for one symbolic simulation.  `remap` is
/// present only when nodes fail (link-only plans keep the simulation free of
/// any O(groups) structure); `breaks` are the steps at which the machine's
/// fault state changes — ownership and routing are constant between them.
struct SymFaultState {
  const Hypercube* cube = nullptr;
  fault::FaultSet set;
  std::optional<fault::RemapResult> remap;
  std::vector<std::int64_t> breaks;  ///< distinct at_steps > kFromStart, ascending
  bool active = false;

  [[nodiscard]] bool remapped() const { return remap.has_value(); }
};

SymFaultState resolve_symbolic_faults(
    const SimOptions& opts, const Topology& topo,
    const std::function<void(std::vector<std::int64_t>&, Mapping&)>& materialize_blocks) {
  SymFaultState fs;
  if (opts.faults.machine_empty()) return fs;
  fs.cube = dynamic_cast<const Hypercube*>(&topo);
  if (fs.cube == nullptr)
    throw FaultError("simulate_execution: fault injection requires a Hypercube topology");
  fs.set = opts.faults.resolve(*fs.cube);
  fs.active = true;
  for (const fault::NodeFault& nf : fs.set.node_failures_in_order())
    if (nf.at_step > fault::kFromStart) fs.breaks.push_back(nf.at_step);
  for (const auto& [link, step] : fs.set.link_failures())
    if (step > fault::kFromStart) fs.breaks.push_back(step);
  std::sort(fs.breaks.begin(), fs.breaks.end());
  fs.breaks.erase(std::unique(fs.breaks.begin(), fs.breaks.end()), fs.breaks.end());
  if (fs.set.failed_node_count() > 0) {
    // Node failures need concrete migration targets, so the caller
    // materializes its block index (sizes + base mapping) once — the only
    // O(blocks) work of the symbolic fault path.
    std::vector<std::int64_t> sizes;
    Mapping base;
    materialize_blocks(sizes, base);
    fs.remap = fault::remap_for_faults(sizes, base, *fs.cube, fs.set);
  }
  return fs;
}

// Reduced observability for the symbolic path: aggregate counters only (the
// per-message histograms and the trace timeline need the materialized
// schedule, which is exactly what this path avoids building).
void emit_symbolic_metrics(const SimOptions& opts, const SymFaultState& fstate, SimResult& res) {
  obs::MetricsRegistry* reg = opts.obs.metrics;
  if (reg == nullptr) return;
  reg->add("sim.steps", res.steps);
  reg->add("sim.messages", res.messages);
  reg->add("sim.words", res.words);
  reg->set_gauge("sim.time", res.time);
  if (fstate.active) {
    reg->add("fault.reroutes", res.rerouted_messages);
    reg->add("fault.migrations", res.migrated_blocks);
    if (fstate.remap) reg->add("fault.migration_words", fstate.remap->migration_words);
    reg->set_gauge("fault.failed_nodes", static_cast<double>(res.failed_nodes));
    reg->set_gauge("fault.failed_links", static_cast<double>(res.failed_links));
  }
  for (std::size_t p = 0; p < res.per_proc_iterations.size(); ++p)
    reg->add("sim.proc." + std::to_string(p) + ".iterations", res.per_proc_iterations[p]);
  res.metrics = reg->snapshot();
}

/// One projection line of the symbolic feed.  `proc` is the fault-free
/// owner; `block` identifies the line's block for the degraded-ownership
/// lookup and is only meaningful when node faults are active.
struct SymLine {
  ProcId proc = 0;
  std::size_t block = 0;
  std::int64_t pop = 0;
  std::int64_t first_step = 0;
};

/// One (line, dependence) arc bundle.  `step_shift` is Π·d — the target
/// point of an arc leaving at step t fires at t + step_shift, which is when
/// its degraded owner must be evaluated.
struct SymBundle {
  ProcId src_proc = 0;
  ProcId dst_proc = 0;
  std::size_t src_block = 0;
  std::size_t dst_block = 0;
  std::int64_t step_shift = 0;
  std::int64_t count = 0;
  std::int64_t first_step = 0;
};

/// Feed for the shared symbolic accounting core: the caller provides the
/// frame (processors, schedule, stride) and two closed-form visitations —
/// every projection line and every dependence arc bundle.  Both the
/// line-based path (Grouping + Mapping) and the lattice path (GroupLattice +
/// LatticeHypercubeMapping) reduce to this.
struct SymbolicFeed {
  std::size_t nprocs = 0;
  std::size_t nslots = 0;  ///< accounting slots (== nprocs; whole cube when degraded)
  std::int64_t steps = 0;  ///< schedule length
  std::int64_t lo = 0;     ///< minimum step (rebases first_step values)
  std::int64_t sigma = 1;  ///< step stride of the projection lines
  std::function<void(const std::function<void(const SymLine&)>&)> lines;
  std::function<void(const std::function<void(const SymBundle&)>&)> bundles;
};

SimResult simulate_symbolic_core(const SymbolicFeed& in, const Topology& topo,
                                 const MachineParams& machine, const SimOptions& opts,
                                 const SymFaultState& fstate) {
  const std::size_t nprocs = in.nprocs;
  const std::size_t nslots = std::max(in.nslots, nprocs);
  SimResult res;
  res.per_proc_iterations.assign(nslots, 0);
  res.steps = in.steps;
  const std::int64_t lo = in.lo;
  const std::int64_t sigma = in.sigma;
  if (fstate.active) {
    res.failed_nodes = static_cast<std::int64_t>(fstate.set.failed_node_count());
    res.failed_links = static_cast<std::int64_t>(fstate.set.failed_link_count());
    if (fstate.remapped()) {
      res.migrated_blocks = static_cast<std::int64_t>(fstate.remap->migrations.size());
      res.migration_cost = fstate.remap->migration_cost;
    }
  }

  // Owner of a block at an absolute step (failure-timeline aware).
  auto owner = [&](ProcId fault_free, std::size_t blk, std::int64_t step) -> ProcId {
    return fstate.remapped() ? fstate.remap->proc_at(blk, step) : fault_free;
  };
  // Visit maximal equal-fault-state segments (seg_first, seg_count) of the
  // strided run first, first+σ, …: ownership and routing change only at the
  // cut steps, and a cut takes effect *at* the cut (matching
  // RemapResult::proc_at and FaultSet's at-step semantics).
  auto for_each_segment = [&](std::int64_t first, std::int64_t count,
                              const std::vector<std::int64_t>& cuts,
                              const std::function<void(std::int64_t, std::int64_t)>& emit) {
    if (count <= 0) return;
    const std::int64_t last = first + (count - 1) * sigma;
    std::int64_t i0 = 0;
    for (std::int64_t cut : cuts) {
      if (cut <= first) continue;
      if (cut > last) break;
      std::int64_t i = ceil_div(cut - first, sigma);
      if (i > i0) {
        emit(first + i0 * sigma, i - i0);
        i0 = i;
      }
    }
    emit(first + i0 * sigma, count - i0);
  };
  // An arc bundle's channel changes when the *source* step crosses a break
  // (source owner, route) or when the *target* step does (target owner);
  // the latter projects to source steps shifted by -Π·d.
  std::map<std::int64_t, std::vector<std::int64_t>> shift_cuts;
  auto cuts_for_shift = [&](std::int64_t shift) -> const std::vector<std::int64_t>& {
    auto it = shift_cuts.find(shift);
    if (it != shift_cuts.end()) return it->second;
    std::vector<std::int64_t> cuts = fstate.breaks;
    for (std::int64_t b : fstate.breaks) cuts.push_back(b - shift);
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    return shift_cuts.emplace(shift, std::move(cuts)).first->second;
  };
  // Degraded route of a channel, cached per fault epoch (the number of
  // breaks at or before the step): the detour BFS runs once per
  // (channel, epoch), not once per step.
  std::map<std::tuple<ProcId, ProcId, std::size_t>, fault::Route> route_cache;
  auto routed = [&](ProcId ps, ProcId pd, std::int64_t step) -> const fault::Route& {
    const std::size_t epoch = static_cast<std::size_t>(
        std::upper_bound(fstate.breaks.begin(), fstate.breaks.end(), step) -
        fstate.breaks.begin());
    auto [it, inserted] = route_cache.try_emplace({ps, pd, epoch});
    if (inserted) it->second = fault::route_with_faults(*fstate.cube, ps, pd, fstate.set, step);
    return it->second;
  };

  // Per-processor loads: a line's run splits at the fault steps, each
  // segment owned by whoever holds its block then.
  in.lines([&](const SymLine& ln) {
    if (!fstate.remapped()) {
      res.per_proc_iterations[ln.proc] += ln.pop;
      return;
    }
    for_each_segment(ln.first_step, ln.pop, fstate.breaks,
                     [&](std::int64_t s, std::int64_t n) {
                       res.per_proc_iterations[owner(ln.proc, ln.block, s)] += n;
                     });
  });
  std::int64_t max_iters = 0;
  for (std::int64_t c : res.per_proc_iterations) max_iters = std::max(max_iters, c);
  res.compute_bottleneck = Cost{max_iters * opts.flops_per_iteration, 0, 0};

  if (opts.accounting == CommAccounting::PaperMaxChannel) {
    // Channel volumes need no step resolution beyond the fault segments: one
    // bundle segment contributes its whole arc count to the unordered
    // processor pair, with the degraded route priced at its first step.
    std::map<std::pair<ProcId, ProcId>, std::int64_t> channel;
    auto charge = [&](ProcId ps, ProcId pd, std::int64_t count, std::int64_t step) {
      if (ps == pd) return;
      std::int64_t units = 1;
      if (fstate.active) {
        const fault::Route& rt = routed(ps, pd, step);
        if (rt.rerouted) res.rerouted_messages += count;
        if (opts.charge_hops) units = static_cast<std::int64_t>(rt.hops.size());
      } else if (opts.charge_hops) {
        units = static_cast<std::int64_t>(topo.distance(ps, pd));
      }
      auto key = std::minmax(ps, pd);
      channel[{key.first, key.second}] += units * count;
      res.messages += count;
      res.words += count;
    };
    in.bundles([&](const SymBundle& b) {
      if (!fstate.active) {
        charge(b.src_proc, b.dst_proc, b.count, b.first_step);
        return;
      }
      for_each_segment(b.first_step, b.count, cuts_for_shift(b.step_shift),
                       [&](std::int64_t s, std::int64_t n) {
                         charge(owner(b.src_proc, b.src_block, s),
                                owner(b.dst_proc, b.dst_block, s + b.step_shift), n, s);
                       });
    });
    std::int64_t worst = 0;
    for (const auto& [pair, units] : channel) worst = std::max(worst, units);
    res.comm_bottleneck = Cost{0, worst, worst};
    res.total = res.compute_bottleneck + res.comm_bottleneck + res.migration_cost;
    res.time = res.total.value(machine);
    return res;
  }

  // Per-step accountings.  Every line (and every arc bundle segment)
  // occupies steps t0, t0+sigma, ..., so per-step tables are strided
  // difference arrays: +1 at the run's first step, -1 one stride past its
  // last, then a strided prefix sum recovers exact per-step counts in
  // O(steps) per row.
  const std::int64_t nsteps = res.steps;
  auto strided_prefix = [&](std::vector<std::int64_t>& v) {
    for (std::int64_t t = sigma; t < nsteps; ++t) v[t] += v[t - sigma];
  };

  std::vector<std::vector<std::int64_t>> iters(nslots, std::vector<std::int64_t>(nsteps, 0));
  auto add_line_run = [&](ProcId p, std::int64_t first, std::int64_t pop) {
    std::int64_t t0 = first - lo;
    std::int64_t end = t0 + pop * sigma;
    iters[p][t0] += 1;
    if (end < nsteps) iters[p][end] -= 1;
  };
  in.lines([&](const SymLine& ln) {
    if (!fstate.remapped()) {
      add_line_run(ln.proc, ln.first_step, ln.pop);
      return;
    }
    for_each_segment(ln.first_step, ln.pop, fstate.breaks,
                     [&](std::int64_t s, std::int64_t n) {
                       add_line_run(owner(ln.proc, ln.block, s), s, n);
                     });
  });
  for (auto& v : iters) strided_prefix(v);

  struct Channel {
    ProcId src = 0;
    ProcId dst = 0;
    std::vector<std::int64_t> words;
    std::int64_t total_words = 0;
  };
  std::map<std::pair<ProcId, ProcId>, std::size_t> channel_index;
  std::vector<Channel> channels;
  auto add_bundle_run = [&](ProcId src, ProcId dst, std::int64_t count, std::int64_t first) {
    if (src == dst) return;
    res.words += count;
    auto [it, inserted] = channel_index.try_emplace({src, dst}, channels.size());
    if (inserted) channels.push_back({src, dst, std::vector<std::int64_t>(nsteps, 0), 0});
    Channel& ch = channels[it->second];
    std::int64_t t0 = first - lo;
    std::int64_t end = t0 + count * sigma;
    ch.words[t0] += 1;
    if (end < nsteps) ch.words[end] -= 1;
    ch.total_words += count;
  };
  in.bundles([&](const SymBundle& b) {
    if (!fstate.remapped()) {
      add_bundle_run(b.src_proc, b.dst_proc, b.count, b.first_step);
      return;
    }
    for_each_segment(b.first_step, b.count, cuts_for_shift(b.step_shift),
                     [&](std::int64_t s, std::int64_t n) {
                       add_bundle_run(owner(b.src_proc, b.src_block, s),
                                      owner(b.dst_proc, b.dst_block, s + b.step_shift), n, s);
                     });
  });
  for (Channel& ch : channels) strided_prefix(ch.words);

  if (opts.accounting == CommAccounting::LinkContention) {
    const auto* cube = dynamic_cast<const Hypercube*>(&topo);
    if (cube == nullptr)
      throw std::invalid_argument(
          "simulate_execution: LinkContention accounting requires a Hypercube topology");
    // Fault-free channels keep one static e-cube route; degraded channels
    // look their route up per occupied step through the epoch cache.
    std::vector<std::vector<ProcId>> static_routes;
    std::map<std::pair<ProcId, ProcId>, std::int64_t> total_link_words;
    if (!fstate.active) {
      static_routes.resize(channels.size());
      for (std::size_t c = 0; c < channels.size(); ++c) {
        static_routes[c] = cube->ecube_route(channels[c].src, channels[c].dst);
        ProcId at = channels[c].src;
        for (ProcId hop : static_routes[c]) {
          total_link_words[{at, hop}] += channels[c].total_words;
          at = hop;
        }
      }
    }

    struct LinkLoad {
      std::int64_t msgs = 0;
      std::int64_t words = 0;
    };
    Cost total;
    for (std::int64_t t = 0; t < nsteps; ++t) {
      std::int64_t step_iters = 0;
      for (std::size_t p = 0; p < nslots; ++p) step_iters = std::max(step_iters, iters[p][t]);
      if (step_iters == 0) continue;  // messages only originate from computing procs
      Cost step_cost{step_iters * opts.flops_per_iteration, 0, 0};
      std::map<std::pair<ProcId, ProcId>, LinkLoad> links;
      for (std::size_t c = 0; c < channels.size(); ++c) {
        std::int64_t w = channels[c].words[t];
        if (w == 0) continue;
        ++res.messages;
        const std::vector<ProcId>* hops = nullptr;
        if (fstate.active) {
          const fault::Route& rt = routed(channels[c].src, channels[c].dst, t + lo);
          if (rt.rerouted) ++res.rerouted_messages;
          hops = &rt.hops;
        } else {
          hops = &static_routes[c];
        }
        ProcId at = channels[c].src;
        for (ProcId hop : *hops) {
          LinkLoad& l = links[{at, hop}];
          ++l.msgs;
          l.words += w;
          if (fstate.active) total_link_words[{at, hop}] += w;
          at = hop;
        }
      }
      if (!links.empty()) {
        std::int64_t worst_msgs = 0, worst_words = 0;
        double worst_val = -1.0;
        for (const auto& [link, load] : links) {
          double v = Cost{0, load.msgs, load.words}.value(machine);
          if (v > worst_val) {
            worst_val = v;
            worst_msgs = load.msgs;
            worst_words = load.words;
          }
        }
        step_cost += Cost{0, worst_msgs, worst_words};
        res.comm_bottleneck += Cost{0, worst_msgs, worst_words};
      }
      total += step_cost;
    }
    for (const auto& [link, words] : total_link_words)
      res.max_link_words = std::max(res.max_link_words, words);
    total += res.migration_cost;
    res.total = total;
    res.time = total.value(machine);
    return res;
  }

  // ---- PerStepBarrier (symbolic) ------------------------------------------
  Cost total;
  std::vector<Cost> proc_cost(nslots);
  for (std::int64_t t = 0; t < nsteps; ++t) {
    bool any = false;
    for (std::size_t p = 0; p < nslots; ++p) {
      proc_cost[p] = Cost{iters[p][t] * opts.flops_per_iteration, 0, 0};
      any = any || iters[p][t] > 0;
    }
    if (!any) continue;
    for (const Channel& ch : channels) {
      std::int64_t w = ch.words[t];
      if (w == 0) continue;
      ++res.messages;
      std::int64_t mult = 1;
      if (fstate.active) {
        const fault::Route& rt = routed(ch.src, ch.dst, t + lo);
        if (rt.rerouted) ++res.rerouted_messages;
        if (opts.charge_hops) mult = static_cast<std::int64_t>(rt.hops.size());
      } else if (opts.charge_hops) {
        mult = static_cast<std::int64_t>(topo.distance(ch.src, ch.dst));
      }
      proc_cost[ch.src] += Cost{0, mult, mult * w};
    }
    double worst_val = -1.0;
    Cost worst;
    for (std::size_t p = 0; p < nslots; ++p) {
      if (iters[p][t] == 0) continue;  // senders always compute; idle procs cost nothing
      double v = proc_cost[p].value(machine);
      if (v > worst_val) {
        worst_val = v;
        worst = proc_cost[p];
      }
    }
    total += worst;
    res.comm_bottleneck += Cost{0, worst.start, worst.comm};
  }
  total += res.migration_cost;
  res.total = total;
  res.time = total.value(machine);
  return res;
}

}  // namespace

SimResult simulate_execution(const IterSpace& space, const Grouping& grouping,
                             const Mapping& mapping, const Topology& topo,
                             const MachineParams& machine, const SimOptions& opts) {
  obs::Span span(opts.obs.trace, "simulate_execution", "sim");
  const ProjectedStructure& ps = grouping.projected();
  const TimeFunction& tf = ps.time_function();
  if (mapping.block_to_proc.size() != grouping.group_count())
    throw std::invalid_argument("simulate_execution: mapping/partition size mismatch");
  if (topo.size() < mapping.processor_count)
    throw std::invalid_argument("simulate_execution: topology smaller than processor count");

  SymFaultState fstate = resolve_symbolic_faults(
      opts, topo, [&](std::vector<std::int64_t>& sizes, Mapping& base) {
        sizes = symbolic_block_sizes(grouping);
        base = mapping;
      });

  // Processor (and block, for the degraded-ownership lookups) of every
  // projection line; a line's points all live in one block.
  std::vector<std::size_t> pblock(ps.point_count());
  std::vector<ProcId> pproc(ps.point_count());
  for (std::size_t pid = 0; pid < ps.point_count(); ++pid) {
    pblock[pid] = grouping.group_of_point(pid);
    pproc[pid] = mapping.block_to_proc[pblock[pid]];
  }

  std::vector<std::int64_t> shifts(space.dependences().size(), 0);
  for (std::size_t k = 0; k < space.dependences().size(); ++k)
    shifts[k] = dot(tf.pi, space.dependences()[k]);

  SymbolicFeed feed;
  feed.nprocs = mapping.processor_count;
  feed.nslots =
      fstate.active ? std::max(mapping.processor_count, topo.size()) : mapping.processor_count;
  feed.lo = space.min_step(tf.pi);
  feed.steps = space.max_step(tf.pi) - feed.lo + 1;
  feed.sigma = ps.step_stride();
  feed.lines = [&](const std::function<void(const SymLine&)>& v) {
    for (std::size_t pid = 0; pid < ps.point_count(); ++pid)
      v({pproc[pid], pblock[pid], static_cast<std::int64_t>(ps.line_population(pid)),
         tf.step_of(ps.line_representative(pid))});
  };
  feed.bundles = [&](const std::function<void(const SymBundle&)>& v) {
    for_each_line_dep(space, ps, [&](const LineDepArcs& b) {
      v({pproc[b.point], pproc[b.target], pblock[b.point], pblock[b.target], shifts[b.dep],
         b.count, b.first_step});
    });
  };
  SimResult res = simulate_symbolic_core(feed, topo, machine, opts, fstate);
  emit_symbolic_metrics(opts, fstate, res);
  return res;
}

SimResult simulate_execution(const GroupLattice& lattice, const LatticeHypercubeMapping& mapping,
                             const Topology& topo, const MachineParams& machine,
                             const SimOptions& opts) {
  obs::Span span(opts.obs.trace, "simulate_execution", "sim");
  const IterSpace& space = lattice.space();
  const TimeFunction& tf = lattice.time_function();
  if (topo.size() < mapping.processor_count)
    throw std::invalid_argument("simulate_execution: topology smaller than processor count");

  // Node failures need migration targets, i.e. real block indices: the one
  // O(groups) materialization of the lattice path (fault-free runs and
  // link-only plans stay independent of the group count).  Blocks are
  // indexed in the lattice's canonical sorted order.
  std::map<GroupLattice::GroupKey, std::size_t> key_index;
  SymFaultState fstate = resolve_symbolic_faults(
      opts, topo, [&](std::vector<std::int64_t>& sizes, Mapping& base) {
        base.processor_count = mapping.processor_count;
        lattice.for_each_group([&](const GroupLattice::GroupKey& g, std::int64_t pop) {
          key_index.emplace(g, sizes.size());
          sizes.push_back(pop);
          base.block_to_proc.push_back(mapping.proc_of_group(lattice, g));
        });
      });
  auto block_of = [&](const GroupLattice::GroupKey& g) -> std::size_t {
    return fstate.remapped() ? key_index.at(g) : 0;
  };

  std::vector<std::int64_t> shifts(space.dependences().size(), 0);
  for (std::size_t k = 0; k < space.dependences().size(); ++k)
    shifts[k] = dot(tf.pi, space.dependences()[k]);

  SymbolicFeed feed;
  feed.nprocs = mapping.processor_count;
  feed.nslots =
      fstate.active ? std::max(mapping.processor_count, topo.size()) : mapping.processor_count;
  feed.lo = space.min_step(tf.pi);
  feed.steps = space.max_step(tf.pi) - feed.lo + 1;
  feed.sigma = lattice.step_stride();
  feed.lines = [&](const std::function<void(const SymLine&)>& v) {
    lattice.for_each_line(
        [&](const GroupLattice::GroupKey& g, std::int64_t pop, std::int64_t first_step) {
          v({mapping.proc_of_group(lattice, g), block_of(g), pop, first_step});
        });
  };
  feed.bundles = [&](const std::function<void(const SymBundle&)>& v) {
    lattice.for_each_arc_bundle([&](const GroupLattice::GroupKey& src,
                                    const GroupLattice::GroupKey& dst, std::size_t dep,
                                    std::int64_t count, std::int64_t first_step) {
      v({mapping.proc_of_group(lattice, src), mapping.proc_of_group(lattice, dst), block_of(src),
         block_of(dst), shifts[dep], count, first_step});
    });
  };
  SimResult res = simulate_symbolic_core(feed, topo, machine, opts, fstate);
  emit_symbolic_metrics(opts, fstate, res);
  return res;
}

}  // namespace hypart
