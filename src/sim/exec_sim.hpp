// hypart — execution simulator for partitioned, mapped nested loops.
//
// We have no 1991 message-passing hypercube, so the machine is simulated:
// iterations execute step-synchronously by hyperplane (all points with
// Π·x = t run at step t on their assigned processors); every dependence arc
// crossing processors becomes a one-word message charged t_start + t_comm
// (optionally scaled by hop count).  Two accounting conventions are
// provided:
//
//  * PaperMaxChannel — the paper's Table I convention:
//        T = max_p compute_p + max_{p!=q} channel_volume(p,q)*(t_start+t_comm)
//    ("the communication time is determined by the largest amount of
//     interblock communication that occurred between two processors").
//  * PerStepBarrier — a step-synchronous model with per-(step, src, dst)
//    message aggregation:
//        T = sum_t max_p [ compute_p(t) + sum_{msgs sent by p at t}
//                                          (t_start + words*t_comm) ]
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault_plan.hpp"
#include "mapping/hypercube_map.hpp"
#include "mapping/tig.hpp"
#include "obs/obs.hpp"
#include "partition/blocks.hpp"
#include "partition/group_lattice.hpp"
#include "sim/machine.hpp"
#include "topology/topology.hpp"

namespace hypart {

//  * LinkContention — messages are routed over the hypercube's physical
//    links with deterministic e-cube routing; each link serializes its
//    traffic, so the communication time of a step is the busiest link's
//    total (msgs*t_start + words*t_comm).  Models the congestion that the
//    first two conventions ignore.
enum class CommAccounting {
  PaperMaxChannel,
  PerStepBarrier,
  LinkContention,
};

struct SimOptions {
  CommAccounting accounting = CommAccounting::PaperMaxChannel;
  bool charge_hops = false;            ///< multiply message cost by hop distance
  std::int64_t flops_per_iteration = 1;
  /// Deterministic fault injection (see fault/fault_plan.hpp).  When
  /// non-empty the topology must be a Hypercube: failed nodes' blocks are
  /// remapped to live Gray-code neighbors (migration charged), messages
  /// detour around failed links, and SimResult reports the degraded totals.
  fault::FaultPlan faults;
  /// Optional tracing/metrics hooks (see obs/obs.hpp).  When both pointers
  /// are null (the default), the simulator does no extra work at all; the
  /// instrumented reconstruction runs only when a sink or registry is set.
  obs::ObsContext obs{};
};

struct SimResult {
  Cost total;               ///< symbolic total execution cost
  double time = 0.0;        ///< total.value(machine)
  Cost compute_bottleneck;  ///< max over processors of total compute
  Cost comm_bottleneck;     ///< communication term of `total`
  std::int64_t steps = 0;   ///< schedule length (hyperplane count)
  std::int64_t messages = 0;  ///< total messages (after aggregation, if any)
  std::int64_t words = 0;     ///< total words crossing processors
  std::vector<std::int64_t> per_proc_iterations;

  /// Speedup vs. the same work on one processor (all-compute, no comm).
  [[nodiscard]] double speedup(const MachineParams& m, std::int64_t total_iterations,
                               std::int64_t flops_per_iteration) const;

  /// Busiest-link word count over the whole run (LinkContention only).
  std::int64_t max_link_words = 0;

  // ---- degraded-machine accounting (all zero without fault injection) ----
  std::int64_t failed_nodes = 0;        ///< nodes the fault plan ever fails
  std::int64_t failed_links = 0;        ///< links the plan fails directly
  std::int64_t rerouted_messages = 0;   ///< messages detoured off their e-cube path
  std::int64_t migrated_blocks = 0;     ///< blocks moved off failed nodes
  Cost migration_cost;                  ///< words x (t_start + t_comm), in `total`

  /// Metrics captured during this run; set only when SimOptions::obs carried
  /// a MetricsRegistry (snapshot taken as the simulation returns).
  std::optional<obs::MetricsSnapshot> metrics;
};

SimResult simulate_execution(const ComputationStructure& q, const TimeFunction& tf,
                             const Partition& part, const Mapping& mapping, const Topology& topo,
                             const MachineParams& machine, const SimOptions& opts = {});

/// Symbolic variant: identical SimResult (totals, steps, messages, words,
/// per-processor loads, bottlenecks) computed from line-bundle closed forms
/// — O(lines·deps) plus, for the per-step accountings, O(steps·channels)
/// strided difference arrays — without materializing any index point.
/// Fault plans are supported: line and bundle runs split at the failure
/// steps, degraded routes come from the same detour BFS as the dense path
/// (cached per fault epoch), and node failures reuse the dense spare-node
/// remap over per-block iteration counts — degraded results match the dense
/// simulator exactly.  Observability is reduced to aggregate metrics (no
/// per-message histograms or trace timeline).
SimResult simulate_execution(const IterSpace& space, const Grouping& grouping,
                             const Mapping& mapping, const Topology& topo,
                             const MachineParams& machine, const SimOptions& opts = {});

/// Lattice variant: same accounting core fed from GroupLattice line/bundle
/// sweeps and the closed-form cluster boundaries — no per-line processor
/// array, no Group objects.  With the default PaperMaxChannel accounting,
/// memory is O(processors²), independent of the iteration count; the
/// per-step accountings keep their O(steps·channels) difference arrays.
/// Fault plans are supported as in the line-based variant; link-only plans
/// stay independent of the group count, while node failures materialize one
/// O(groups) block index (sizes + owners in lattice sorted order) to feed
/// the spare-node remap.
SimResult simulate_execution(const GroupLattice& lattice, const LatticeHypercubeMapping& mapping,
                             const Topology& topo, const MachineParams& machine,
                             const SimOptions& opts = {});

}  // namespace hypart
