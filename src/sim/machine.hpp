// hypart — machine cost model (paper Section IV).
//
// The target is a message-passing multiprocessor where a floating-point
// operation costs t_calc and transmitting k words costs t_start + k*t_comm.
// Costs are kept symbolically (integer multiples of the three constants) so
// Table I can be reproduced verbatim ("786944 t_calc + 2046(t_comm+t_start)")
// and numerically for any concrete machine.
#pragma once

#include <cstdint>
#include <string>

namespace hypart {

/// Concrete machine constants.  Defaults reflect the paper's observation
/// that message overhead is an order of magnitude above computation.
struct MachineParams {
  double t_calc = 1.0;
  double t_start = 50.0;
  double t_comm = 5.0;
};

/// A symbolic cost  calc*t_calc + start*t_start + comm*t_comm.
struct Cost {
  std::int64_t calc = 0;
  std::int64_t start = 0;
  std::int64_t comm = 0;

  [[nodiscard]] double value(const MachineParams& m) const {
    return static_cast<double>(calc) * m.t_calc + static_cast<double>(start) * m.t_start +
           static_cast<double>(comm) * m.t_comm;
  }

  Cost& operator+=(const Cost& o) {
    calc += o.calc;
    start += o.start;
    comm += o.comm;
    return *this;
  }
  friend Cost operator+(Cost a, const Cost& b) { return a += b; }
  friend bool operator==(const Cost& a, const Cost& b) = default;

  /// Paper-style rendering, e.g. "786944 t_calc + 2046(t_start+t_comm)".
  [[nodiscard]] std::string to_string() const;
};

}  // namespace hypart
