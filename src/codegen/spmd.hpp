// hypart — SPMD code generation for partitioned, mapped loop nests.
//
// What a parallelizing compiler built on the paper would finally emit: one
// node program, parameterized by processor id, that
//   1. walks the hyperplane steps t = t_min .. t_max in order,
//   2. receives the values its step-t iterations need from other nodes,
//   3. executes its own iterations of step t (its blocks' points on that
//      hyperplane),
//   4. sends every value that a later iteration on another node consumes
//      (one send per crossing dependence arc — the communication the
//      partitioning minimized).
// The emitted program is C-like pseudocode with explicit send/recv calls
// and embedded ownership tables; it is meant for inspection and for
// driving real message-passing backends, not for direct compilation.
#pragma once

#include <string>

#include "graph/comp_structure.hpp"
#include "loop/dependence.hpp"
#include "loop/loop_nest.hpp"
#include "mapping/tig.hpp"
#include "partition/blocks.hpp"

namespace hypart {

struct SpmdOptions {
  bool include_comments = true;   ///< explanatory comments in the output
  bool include_owner_table = true;  ///< emit the block -> processor table
};

/// Generate the SPMD node program for a fully processed nest.
std::string generate_spmd_program(const LoopNest& nest, const ComputationStructure& q,
                                  const TimeFunction& tf, const Partition& part,
                                  const Mapping& mapping, const DependenceInfo& deps,
                                  const SpmdOptions& options = {});

/// Generate a per-processor execution script: the concrete iteration /
/// send / recv sequence of one processor, step by step.  Useful for
/// debugging small nests (and printed by the examples).
std::string generate_processor_trace(const LoopNest& nest, const ComputationStructure& q,
                                     const TimeFunction& tf, const Partition& part,
                                     const Mapping& mapping, const DependenceInfo& deps,
                                     ProcId processor, std::size_t max_lines = 64);

}  // namespace hypart
