#include "perf/perf_model.hpp"

#include <stdexcept>

namespace hypart {
namespace perf {

std::int64_t matvec_bottleneck_points(std::int64_t m, std::int64_t n_procs) {
  if (m <= 0 || n_procs <= 0) throw std::invalid_argument("matvec model: nonpositive size");
  if (n_procs == 1) return m * m;
  // l = floor((N-2)/N * M) + 1;  W = sum_{i=l}^{M} i.
  std::int64_t l = ((n_procs - 2) * m) / n_procs + 1;
  if (l < 1) l = 1;
  std::int64_t w = (m * (m + 1)) / 2 - ((l - 1) * l) / 2;
  return w;
}

Cost matvec_exec_time(std::int64_t m, std::int64_t n_procs) {
  std::int64_t w = matvec_bottleneck_points(m, n_procs);
  if (n_procs == 1) return Cost{2 * w, 0, 0};
  std::int64_t msgs = 2 * m - 2;
  return Cost{2 * w, msgs, msgs};
}

double matvec_speedup(std::int64_t m, std::int64_t n_procs, const MachineParams& machine) {
  double seq = Cost{2 * m * m, 0, 0}.value(machine);
  double par = matvec_exec_time(m, n_procs).value(machine);
  return par > 0 ? seq / par : 0.0;
}

double matvec_comm_ratio(std::int64_t m, std::int64_t n_procs, const MachineParams& machine) {
  Cost c = matvec_exec_time(m, n_procs);
  double compute = Cost{c.calc, 0, 0}.value(machine);
  double comm = Cost{0, c.start, c.comm}.value(machine);
  return compute > 0 ? comm / compute : 0.0;
}

}  // namespace perf
}  // namespace hypart
