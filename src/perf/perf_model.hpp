// hypart — analytic performance model (paper Section IV, Table I).
//
// For matrix-vector multiplication partitioned with Π = (1,1) and mapped
// onto an N-processor hypercube, the paper derives
//   T_exec(N) = 2 W t_calc + (2M-2)(t_start + t_comm),
//   W = sum_{i=l}^{M} i,   l = floor((N-2)/N * M) + 1,
// with N = 1 reducing to the sequential 2 M^2 t_calc.  This module encodes
// the closed form (reproducing Table I verbatim) plus generic helpers.
#pragma once

#include <cstdint>

#include "sim/machine.hpp"

namespace hypart {
namespace perf {

/// The paper's W: index points assigned to the most loaded processor.
std::int64_t matvec_bottleneck_points(std::int64_t m, std::int64_t n_procs);

/// Closed-form T_exec(N) for matrix-vector multiplication of size M on an
/// N-processor hypercube (Table I).  N == 1 is the sequential special case.
Cost matvec_exec_time(std::int64_t m, std::int64_t n_procs);

/// Speedup of the closed form vs. sequential execution for a machine.
double matvec_speedup(std::int64_t m, std::int64_t n_procs, const MachineParams& machine);

/// Communication-to-computation ratio of the closed form.
double matvec_comm_ratio(std::int64_t m, std::int64_t n_procs, const MachineParams& machine);

}  // namespace perf
}  // namespace hypart
