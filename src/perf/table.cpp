#include "perf/table.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace hypart {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("TextTable::add_row: column count mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::cell_to_string(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << " " << std::setw(static_cast<int>(width[c])) << std::left << cells[c] << " |";
    os << "\n";
  };
  auto print_sep = [&]() {
    os << "+";
    for (std::size_t c = 0; c < width.size(); ++c) os << std::string(width[c] + 2, '-') << "+";
    os << "\n";
  };
  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
  return os.str();
}

}  // namespace hypart
