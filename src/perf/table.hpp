// hypart — plain-text table formatting for benchmark reports.
//
// Benches print the paper's tables and figure summaries; this keeps the
// layout code out of each binary.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace hypart {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  TextTable& add_row(std::vector<std::string> cells);

  /// Row helper accepting heterogeneous printable cells.
  template <typename... Cells>
  TextTable& row(const Cells&... cells) {
    return add_row({cell_to_string(cells)...});
  }

  [[nodiscard]] std::string to_string() const;

 private:
  static std::string cell_to_string(const std::string& s) { return s; }
  static std::string cell_to_string(const char* s) { return s; }
  static std::string cell_to_string(double v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string cell_to_string(T v) {
    return std::to_string(v);
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hypart
