#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/error.hpp"
#include "core/io_util.hpp"

namespace hypart::serve {

namespace {

[[noreturn]] void io_fail(const std::string& what) {
  throw Error(ErrorKind::Io, what + ": " + std::strerror(errno));
}

void close_quietly(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

Server::Server(PlanService& service, ServerOptions opts)
    : service_(service), opts_(std::move(opts)) {
  ignore_sigpipe();
  if (opts_.threads == 0) opts_.threads = 1;

  if (::pipe(stop_pipe_) != 0) io_fail("serve: pipe");

  if (!opts_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) io_fail("serve: socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opts_.unix_path.size() >= sizeof(addr.sun_path))
      throw Error(ErrorKind::Config, "serve: socket path too long: " + opts_.unix_path);
    std::strncpy(addr.sun_path, opts_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(opts_.unix_path.c_str());  // stale socket from a previous run
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      io_fail("serve: bind(" + opts_.unix_path + ")");
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) io_fail("serve: socket(AF_INET)");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(opts_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
      io_fail("serve: bind(127.0.0.1:" + std::to_string(opts_.tcp_port) + ")");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
      io_fail("serve: getsockname");
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  if (::listen(listen_fd_, 64) != 0) io_fail("serve: listen");
}

Server::~Server() {
  request_stop();
  stop();
  close_quietly(listen_fd_);
  close_quietly(stop_pipe_[0]);
  close_quietly(stop_pipe_[1]);
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
}

std::string Server::address() const {
  if (!opts_.unix_path.empty()) return "unix:" + opts_.unix_path;
  return "tcp:127.0.0.1:" + std::to_string(port_);
}

void Server::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(opts_.threads);
  for (std::size_t i = 0; i < opts_.threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void Server::request_stop() {
  // Async-signal-safe: an atomic store and one write(2) on the self-pipe.
  stopping_.store(true, std::memory_order_release);
  if (stop_pipe_[1] >= 0) {
    char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
}

void Server::stop() {
  request_stop();
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
  // Close any accepted-but-never-served connections.
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (int fd : pending_) ::close(fd);
  pending_.clear();
}

void Server::wait() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd p{stop_pipe_[0], POLLIN, 0};
    ::poll(&p, 1, 200);
  }
  stop();
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    int ready = ::poll(fds, 2, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    if (ready == 0 || (fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;  // transient (ECONNABORTED, EINTR, ...)
    bool admitted = true;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (opts_.max_pending > 0 && pending_.size() >= opts_.max_pending) admitted = false;
      else pending_.push_back(fd);
    }
    if (!admitted) {
      // Shed load at the door: one typed error line, then close.  The
      // message is static so the accept thread never allocates or parses
      // under overload; key order matches the service's error replies.
      static const char kOverloaded[] =
          "{\"error\":{\"code\":79,\"kind\":\"overloaded\",\"message\":"
          "\"server overloaded: pending connection queue is full\"},\"id\":null,\"ok\":false}\n";
      (void)write_full(fd, kOverloaded, sizeof(kOverloaded) - 1);
      ::close(fd);
      obs::MetricsRegistry* metrics = service_.options().obs.metrics;
      if (metrics != nullptr) metrics->add("serve.overload.rejected");
      continue;
    }
    queue_cv_.notify_one();
  }
}

void Server::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      fd = pending_.front();
      pending_.pop_front();
    }
    handle_connection(fd);
  }
}

void Server::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool overlong = false;
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd p{fd, POLLIN, 0};
    int ready = ::poll(&p, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (overlong) {
        // The terminator of a discarded overlong line; resume framing.
        overlong = false;
        continue;
      }
      if (line.empty()) continue;
      std::string reply = service_.handle_line(line);
      reply.push_back('\n');
      bool delivered = write_full(fd, reply.data(), reply.size());
      if (!delivered || service_.shutdown_requested()) {
        ::close(fd);
        if (service_.shutdown_requested()) request_stop();
        return;
      }
    }
    buffer.erase(0, start);
    if (buffer.size() > opts_.max_line_bytes) {
      // Reply once, then discard bytes until the next newline.
      static const char kTooLong[] =
          "{\"error\":{\"code\":78,\"kind\":\"config\",\"message\":"
          "\"request line exceeds maximum length\"},\"id\":null,\"ok\":false}\n";
      (void)write_full(fd, kTooLong, sizeof(kTooLong) - 1);
      buffer.clear();
      overlong = true;
    }
  }
  ::close(fd);
}

}  // namespace hypart::serve
