#include "serve/replay.hpp"

#include <cstddef>
#include <map>
#include <set>

#include "core/json_writer.hpp"

namespace hypart::serve {

namespace {

/// Serialize `doc` — keeping only the `kept` top-level keys when non-null —
/// and cut a slot wherever a name-bearing string value occurs.  Walks the
/// sorted member map, so the byte stream matches JsonValue::to_json of the
/// equivalent projected document exactly.
SliceTemplate build_slice(const JsonValue& doc, const std::set<std::string>* kept,
                          const std::map<std::string, int>& array_slot) {
  JsonWriter w;
  std::vector<std::size_t> cuts;
  std::vector<int> slots;
  auto cut = [&](int slot) {
    (void)w.raw_buffer();  // comma bookkeeping for the name spliced at render time
    cuts.push_back(w.size());
    slots.push_back(slot);
  };

  w.begin_object();
  for (const auto& [key, value] : doc.as_object()) {
    if (kept != nullptr && kept->count(key) == 0) continue;
    if (key == "loop" && value.is_string()) {
      w.key(key);
      cut(-1);
      continue;
    }
    if (key == "dependences" && value.is_array()) {
      w.begin_array(key);
      for (const JsonValue& dep : value.as_array()) {
        if (!dep.is_object()) {
          dep.write(w);
          continue;
        }
        w.begin_object();
        for (const auto& [dk, dv] : dep.as_object()) {
          if (dk == "array" && dv.is_string()) {
            auto it = array_slot.find(dv.as_string());
            if (it != array_slot.end()) {
              w.key(dk);
              cut(it->second);
              continue;
            }
          }
          w.key(dk);
          dv.write(w);
        }
        w.end_object();
      }
      w.end_array();
      continue;
    }
    w.key(key);
    value.write(w);
  }
  w.end_object();

  SliceTemplate t;
  const std::string text = w.str();
  t.chunks.reserve(cuts.size() + 1);
  std::size_t prev = 0;
  for (std::size_t c : cuts) {
    t.chunks.push_back(text.substr(prev, c - prev));
    prev = c;
  }
  t.chunks.push_back(text.substr(prev));
  t.slots = std::move(slots);
  return t;
}

}  // namespace

void SliceTemplate::render(std::string& out, const std::string& escaped_loop,
                           const std::vector<std::string>& escaped_arrays) const {
  std::size_t total = 0;
  for (const std::string& c : chunks) total += c.size();
  for (int slot : slots)
    total += slot < 0 ? escaped_loop.size()
                      : (static_cast<std::size_t>(slot) < escaped_arrays.size()
                             ? escaped_arrays[static_cast<std::size_t>(slot)].size()
                             : 4);
  out.reserve(out.size() + total);
  out += chunks[0];
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const int slot = slots[i];
    if (slot < 0) out += escaped_loop;
    else if (static_cast<std::size_t>(slot) < escaped_arrays.size())
      out += escaped_arrays[static_cast<std::size_t>(slot)];
    else out += "null";
    out += chunks[i + 1];
  }
}

const SliceTemplate& RenderedPlan::for_op(const std::string& op) const {
  if (op == "partition") return partition;
  if (op == "map") return map;
  if (op == "predict") return predict;
  return full;
}

RenderedPlan render_plan(const JsonValue& doc, const std::vector<std::string>& arrays) {
  // The per-op key sets are the service's long-standing slice contract
  // (docs/serve.md): identity/schedule header plus the sections the op is
  // about.  Kept here so the projection and its serialization are built in
  // one pass.
  static const std::set<std::string> kPartition = {"loop",          "depth", "space_mode",
                                                   "iterations",    "dependences",
                                                   "time_function", "steps", "partition",
                                                   "validation"};
  static const std::set<std::string> kMap = {"loop",          "depth",     "space_mode",
                                             "time_function", "partition", "mapping"};
  static const std::set<std::string> kPredict = {"loop",  "depth",      "space_mode",
                                                 "time_function", "iterations",
                                                 "steps", "simulation"};

  std::map<std::string, int> array_slot;
  for (std::size_t k = 0; k < arrays.size(); ++k)
    array_slot.emplace(arrays[k], static_cast<int>(k));

  RenderedPlan r;
  r.full = build_slice(doc, nullptr, array_slot);
  r.partition = build_slice(doc, &kPartition, array_slot);
  r.map = build_slice(doc, &kMap, array_slot);
  r.predict = build_slice(doc, &kPredict, array_slot);
  return r;
}

std::vector<std::string> escape_names(const std::vector<std::string>& names) {
  std::vector<std::string> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(JsonWriter::escape(n));
  return out;
}

}  // namespace hypart::serve
