#include "serve/canonical.hpp"

#include <map>

namespace hypart::serve {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex16(std::uint64_t h) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[h & 0xF];
    h >>= 4;
  }
  return out;
}

/// First-occurrence interner: maps each distinct value to a small id in the
/// order it is first seen.  Used for array names and bound constants so the
/// keys depend on the *pattern* of repetitions, never on the values.
template <typename T>
class Interner {
 public:
  std::size_t id(const T& value) {
    auto [it, inserted] = ids_.try_emplace(value, order_.size());
    if (inserted) order_.push_back(value);
    return it->second;
  }
  [[nodiscard]] const std::vector<T>& order() const { return order_; }

 private:
  std::map<T, std::size_t> ids_;
  std::vector<T> order_;
};

void append_int(std::string& out, std::int64_t v) { out += std::to_string(v); }

/// Append an affine expression as "c<const>:k0,k1,.." with coefficients
/// padded to the nest depth (missing trailing coefficients are zero and
/// must not distinguish the key).
void append_affine(std::string& out, const AffineExpr& e, std::size_t depth) {
  out += 'c';
  append_int(out, e.constant);
  out += ':';
  for (std::size_t k = 0; k < depth; ++k) {
    if (k > 0) out += ',';
    append_int(out, k < e.coeffs.size() ? e.coeffs[k] : 0);
  }
}

/// Append a bound term with its constant replaced by an equality-class id.
void append_affine_interned(std::string& out, const AffineExpr& e, std::size_t depth,
                            Interner<std::int64_t>& consts) {
  out += 'C';
  append_int(out, static_cast<std::int64_t>(consts.id(e.constant)));
  out += ':';
  for (std::size_t k = 0; k < depth; ++k) {
    if (k > 0) out += ',';
    append_int(out, k < e.coeffs.size() ? e.coeffs[k] : 0);
  }
}

void append_matrix(std::string& out, const IntMat& m) {
  out += '[';
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (r > 0) out += ';';
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c > 0) out += ',';
      append_int(out, m.at(r, c));
    }
  }
  out += ']';
}

}  // namespace

std::string CanonicalForm::structure_hex() const { return hex16(structure_hash); }
std::string CanonicalForm::exact_hex() const { return hex16(exact_hash); }

CanonicalForm canonicalize_nest(const LoopNest& nest, const DependenceInfo& deps) {
  CanonicalForm cf;
  cf.loop_name = nest.name();
  const std::size_t depth = nest.depth();

  Interner<std::string> arrays;
  Interner<std::int64_t> bound_consts;

  std::string key;
  key.reserve(256);
  key += "d=";
  append_int(key, static_cast<std::int64_t>(depth));

  // Loop bounds: per dimension, lower (max-of-terms) then upper
  // (min-of-terms), coefficients verbatim, constants interned.  Term order
  // is the source order — BoundExpr construction is deterministic.
  for (const LoopDim& dim : nest.dims()) {
    key += ";b:";
    for (std::size_t t = 0; t < dim.lower.terms.size(); ++t) {
      if (t > 0) key += '|';
      append_affine_interned(key, dim.lower.terms[t], depth, bound_consts);
    }
    key += "..";
    for (std::size_t t = 0; t < dim.upper.terms.size(); ++t) {
      if (t > 0) key += '|';
      append_affine_interned(key, dim.upper.terms[t], depth, bound_consts);
    }
  }

  // Statements: flop count plus every access (kind, canonical array id,
  // subscripts verbatim).  Subscript constants are offsets — they shape the
  // dependence vectors, so they stay literal; only *bound* constants scale
  // with the domain and are abstracted.
  for (const Statement& st : nest.statements()) {
    key += ";s:f=";
    append_int(key, st.flop_count);
    for (const ArrayAccess& a : st.accesses) {
      key += a.kind == AccessKind::Write ? ";W" : ";R";
      append_int(key, static_cast<std::int64_t>(arrays.id(a.array)));
      key += '[';
      for (std::size_t s = 0; s < a.subscripts.size(); ++s) {
        if (s > 0) key += ',';
        append_affine(key, a.subscripts[s], depth);
      }
      key += ']';
    }
  }

  // The dependence set D (deterministic order), then its lattice normal
  // forms: the column Hermite form is the canonical lattice basis, the
  // Smith elementary divisors are the lattice's abelian-group invariants.
  std::vector<IntVec> distances = deps.distance_vectors();
  key += ";D=";
  for (std::size_t i = 0; i < distances.size(); ++i) {
    if (i > 0) key += '|';
    for (std::size_t k = 0; k < distances[i].size(); ++k) {
      if (k > 0) key += ',';
      append_int(key, distances[i][k]);
    }
  }
  IntMat d_matrix = deps.dependence_matrix(depth);
  HermiteResult hnf = hermite_normal_form(d_matrix);
  SmithResult snf = smith_normal_form(d_matrix);
  key += ";H=";
  append_matrix(key, hnf.h);
  key += ";S=";
  for (std::size_t i = 0; i < snf.divisors.size(); ++i) {
    if (i > 0) key += ',';
    append_int(key, snf.divisors[i]);
  }
  cf.smith_divisors = snf.divisors;
  cf.lattice_rank = hnf.rank;

  cf.structure_key = key;
  cf.structure_hash = fnv1a(cf.structure_key);

  // Exact key: the structure plus the interned bound constants' actual
  // values, in first-occurrence order (the interner's order).
  std::string exact = key;
  exact += ";consts=";
  const std::vector<std::int64_t>& cvals = bound_consts.order();
  for (std::size_t i = 0; i < cvals.size(); ++i) {
    if (i > 0) exact += ',';
    append_int(exact, cvals[i]);
  }
  cf.exact_key = std::move(exact);
  cf.exact_hash = fnv1a(cf.exact_key);

  cf.arrays = arrays.order();
  return cf;
}

CanonicalForm canonicalize_nest(const LoopNest& nest) {
  return canonicalize_nest(nest, analyze_dependences(nest));
}

}  // namespace hypart::serve
