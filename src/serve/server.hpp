// hypart::serve — NDJSON socket server around PlanService.
//
// One listener (Unix-domain when `unix_path` is set, else TCP on loopback),
// an accept thread, and a fixed pool of worker threads.  Each accepted
// connection is handed to one worker, which reads newline-delimited
// requests and writes one reply line per request (so at most `threads`
// connections are served concurrently; further accepts queue).  Framing is
// strict NDJSON: requests must be complete JSON values on a single line
// (the parser rejects trailing bytes), '\r' before the terminator is
// stripped for telnet-style clients, and blank lines are ignored.
//
// Shutdown is race-free and signal-friendly: request_stop() is async-
// signal-safe (an atomic store plus a self-pipe write), so the CLI calls it
// straight from its SIGTERM/SIGINT handler; workers poll the stop flag
// between reads and the accept loop polls the self-pipe, so stop() joins
// every thread without sleeping on a blocked accept().  A {"op":"shutdown"}
// request triggers the same path from the wire.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace hypart::serve {

struct ServerOptions {
  /// Unix-domain socket path; when empty, a TCP listener is used instead.
  std::string unix_path;
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see Server::port()).
  int tcp_port = 0;
  std::size_t threads = 4;
  /// Reject request lines longer than this (a malformed client must not
  /// make a worker buffer unboundedly).
  std::size_t max_line_bytes = 1 << 20;
  /// Admission control: maximum accepted-but-unserved connections.  When
  /// the pending queue is at this bound, further accepts receive one
  /// {"error":{"kind":"overloaded","code":79,...}} line and are closed
  /// immediately (counted as serve.overload.rejected) instead of queuing
  /// without bound.  0 = unbounded (no admission control).
  std::size_t max_pending = 0;
};

class Server {
 public:
  /// Binds and listens (throws Error(ErrorKind::Io) on failure) but does
  /// not accept until start().  `service` is borrowed and must outlive the
  /// server.
  Server(PlanService& service, ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Launch the accept thread and worker pool.
  void start();
  /// Ask the server to stop.  Async-signal-safe; returns immediately.
  void request_stop();
  /// Block until a stop was requested and all threads joined.
  void stop();
  /// Block until request_stop() was called (by a signal handler, another
  /// thread, or a shutdown request), then join everything.
  void wait();

  /// Bound TCP port (meaningful for TCP listeners; 0 for Unix sockets).
  [[nodiscard]] int port() const { return port_; }
  /// Human-readable bound address ("unix:/path" or "tcp:127.0.0.1:PORT").
  [[nodiscard]] std::string address() const;

 private:
  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);

  PlanService& service_;
  ServerOptions opts_;
  int listen_fd_ = -1;
  int port_ = 0;
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< accepted fds awaiting a worker
};

}  // namespace hypart::serve
