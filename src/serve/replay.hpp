// hypart::serve — pre-rendered reply templates for the plan cache.
//
// A document-tier cache hit used to deep-copy the stored JsonValue, rewrite
// the two name-bearing fields and re-serialize the whole tree on every
// request.  Every plan quantity is a function of the bounds and the
// dependence set D alone (see serve/canonical.hpp) — only the top-level
// "loop" member and dependences[].array carry requester-visible names — so
// the serialization can be done once, at insert time, with the name spans
// cut out.  A hit then reduces to splicing the requester's escaped names
// between pre-rendered byte chunks: zero JsonValue copies, zero
// re-serialization.
//
// Because JsonValue stores object members sorted (std::map) and serializes
// through the same JsonWriter, a template rendered with the producer's own
// names reproduces JsonValue::to_json byte for byte; the templates are
// therefore wire-compatible with the pre-replay reply format, which the
// service's verification mode (ServiceOptions::verify_replay) cross-checks
// on every hit.
#pragma once

#include <string>
#include <vector>

#include "core/json_reader.hpp"

namespace hypart::serve {

/// One pre-rendered result slice: literal byte chunks with name slots in
/// between.  Invariant: chunks.size() == slots.size() + 1.  Slot -1 is the
/// loop name; slot k >= 0 is the array with canonical id k.  Rendering
/// splices already-escaped JSON string literals (JsonWriter::escape) into
/// the gaps.
struct SliceTemplate {
  std::vector<std::string> chunks;
  std::vector<int> slots;

  [[nodiscard]] bool empty() const { return chunks.empty(); }

  /// Append the rendered slice to `out`.  `escaped_loop` and each element
  /// of `escaped_arrays` must be complete JSON string literals (quotes
  /// included); a slot beyond the array renders as null — unreachable when
  /// requester and producer share an exact key, which implies equal
  /// canonical array counts.
  void render(std::string& out, const std::string& escaped_loop,
              const std::vector<std::string>& escaped_arrays) const;
};

/// The per-op projections of one cached plan document, each pre-rendered.
/// `full` is the whole document and serves "explain"; the others keep only
/// the sections that op reports (same key sets the service always used).
struct RenderedPlan {
  SliceTemplate full;
  SliceTemplate partition;
  SliceTemplate map;
  SliceTemplate predict;

  /// The slice for a plan op ("partition" | "map" | "predict"; anything
  /// else — i.e. "explain" — gets the full document).
  [[nodiscard]] const SliceTemplate& for_op(const std::string& op) const;
};

/// Build the per-op templates from a parsed pipeline document.  `arrays`
/// maps canonical id -> producer array name (CanonicalForm::arrays); a
/// dependences[].array value not found in `arrays` stays literal.
RenderedPlan render_plan(const JsonValue& doc, const std::vector<std::string>& arrays);

/// Escape a requester's names once per request for splicing (each result
/// is a complete JSON string literal).
std::vector<std::string> escape_names(const std::vector<std::string>& names);

}  // namespace hypart::serve
