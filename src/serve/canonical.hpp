// hypart::serve — nest canonicalization for the plan cache.
//
// The planner daemon (serve/service.hpp) answers structurally identical
// queries from a cache instead of re-deriving the same plan.  "Structurally
// identical" is made precise here by mapping a LoopNest to two canonical
// keys:
//
//  * `structure_key` abstracts everything the *time function* Π does not
//    depend on: index/array/loop names are replaced by position-of-first-
//    occurrence ids, and every loop-bound constant is replaced by its
//    equality-class id (first-occurrence numbering), so `for i = 1 to 64`
//    and `for i = 1 to 128` coincide while `for j = 1 to N` and
//    `for j = 1 to M` (two *different* symbols) stay distinct.  The key
//    also embeds the dependence set D, its column Hermite normal form and
//    its Smith elementary divisors (numeric/int_linalg.hpp): the normal
//    forms pin the dependence *lattice* invariants, the raw distance list
//    pins the generator set the paper's algorithms actually consume.
//    Since a valid Π is a function of D alone (Lamport's condition
//    Π·d > 0 for all d in D holds for every domain size), a cached Π can
//    be reused for any request with the same structure_key.
//
//  * `exact_key` is the structure_key plus the actual values of the
//    interned bound constants.  Two nests with equal exact keys produce
//    byte-identical plan documents up to names (all plan quantities —
//    counts, costs, mappings — are functions of bounds and D, never of
//    names), so the daemon can replay a cached document after renaming.
//
// Both keys are readable strings (auditable in `explain` replies and
// logs); the FNV-1a hashes are display/logging conveniences, never used
// for equality.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "loop/dependence.hpp"
#include "loop/loop_nest.hpp"
#include "numeric/int_linalg.hpp"

namespace hypart::serve {

struct CanonicalForm {
  std::string structure_key;  ///< names + bound constants abstracted
  std::string exact_key;      ///< structure_key + interned constant values
  std::uint64_t structure_hash = 0;  ///< FNV-1a of structure_key (display)
  std::uint64_t exact_hash = 0;      ///< FNV-1a of exact_key (display)

  std::string loop_name;             ///< original nest name
  std::vector<std::string> arrays;   ///< canonical id k -> original array name

  std::vector<std::int64_t> smith_divisors;  ///< elementary divisors of D
  std::size_t lattice_rank = 0;              ///< rank of the dependence lattice

  /// 16-hex-digit renderings of the display hashes.
  [[nodiscard]] std::string structure_hex() const;
  [[nodiscard]] std::string exact_hex() const;
};

/// Canonicalize `nest` given its (already computed) dependence analysis.
CanonicalForm canonicalize_nest(const LoopNest& nest, const DependenceInfo& deps);

/// Convenience overload that runs analyze_dependences(nest) itself.
/// Throws NonUniformDependenceError for genuinely non-uniform nests.
CanonicalForm canonicalize_nest(const LoopNest& nest);

}  // namespace hypart::serve
