#include "serve/service.hpp"

#include <chrono>
#include <set>

#include "core/error.hpp"
#include "core/json_export.hpp"
#include "frontend/parser.hpp"
#include "serve/canonical.hpp"

namespace hypart::serve {

namespace {

JsonValue make_error_reply(const JsonValue& id, const std::string& kind, int code,
                           const std::string& message) {
  JsonValue error;
  error.set("kind", JsonValue::make_string(kind));
  error.set("code", JsonValue::make_int(code));
  error.set("message", JsonValue::make_string(message));
  JsonValue reply;
  reply.set("id", id);
  reply.set("ok", JsonValue::make_bool(false));
  reply.set("error", std::move(error));
  return reply;
}

Error config_error(const std::string& message) { return Error(ErrorKind::Config, message); }

/// Per-op projection of the full pipeline document.  `explain` returns the
/// document whole; the others keep only the sections the query is about
/// (plus the shared identity/schedule header).
JsonValue slice_result(const JsonValue& doc, const std::string& op) {
  if (op == "explain") return doc;
  static const std::map<std::string, std::set<std::string>> kept = {
      {"partition",
       {"loop", "depth", "space_mode", "iterations", "dependences", "time_function", "steps",
        "partition", "validation"}},
      {"map", {"loop", "depth", "space_mode", "time_function", "partition", "mapping"}},
      {"predict",
       {"loop", "depth", "space_mode", "time_function", "iterations", "steps", "simulation"}},
  };
  JsonValue out;
  for (const std::string& key : kept.at(op))
    if (doc.has(key)) out.set(key, doc.get(key));
  return out;
}

/// Rewrite the name-bearing fields of a cached document ("loop" and
/// dependences[].array — nothing else in the pipeline JSON carries names)
/// from the producer's identifiers to the requester's, composed through the
/// shared canonical ids.
JsonValue rewrite_names(const CachedDocument& cached, const CanonicalForm& requester) {
  JsonValue doc = cached.doc;
  doc.set("loop", JsonValue::make_string(requester.loop_name));
  std::map<std::string, std::size_t> producer_id;
  for (std::size_t k = 0; k < cached.arrays.size(); ++k) producer_id[cached.arrays[k]] = k;
  std::vector<JsonValue> deps = doc.get("dependences").as_array();
  for (JsonValue& dep : deps) {
    auto it = producer_id.find(dep.string_or("array", ""));
    if (it != producer_id.end() && it->second < requester.arrays.size())
      dep.set("array", JsonValue::make_string(requester.arrays[it->second]));
  }
  doc.set("dependences", JsonValue::make_array(std::move(deps)));
  return doc;
}

struct PlanParams {
  PipelineConfig config;
  std::optional<IntVec> explicit_pi;
  std::string fingerprint;  ///< deterministic rendering of the resolved params
};

/// Resolve and validate request.params against the service defaults.
/// Strict: unknown members and wrong member types are Config errors, so
/// client typos fail loudly instead of silently planning with defaults.
PlanParams resolve_params(const JsonValue& request, const ServiceOptions& opts) {
  PlanParams p;
  p.config.cube_dim = opts.default_cube_dim;
  p.config.space_mode = opts.default_space;

  const char* space_str = to_string(p.config.space_mode);
  std::string accounting_str = "paper";
  bool weighted = false;

  const JsonValue& params = request.get("params");
  if (!params.is_null()) {
    if (!params.is_object()) throw config_error("\"params\" must be an object");
    for (const auto& [key, value] : params.as_object()) {
      if (key == "dim") {
        if (value.kind() != JsonValue::Kind::Int || value.as_int64() < 0 || value.as_int64() > 20)
          throw config_error("params.dim must be an integer in [0, 20]");
        p.config.cube_dim = static_cast<unsigned>(value.as_int64());
      } else if (key == "space") {
        const std::string& s = value.is_string() ? value.as_string() : std::string();
        if (s == "dense") p.config.space_mode = SpaceMode::Dense;
        else if (s == "symbolic") p.config.space_mode = SpaceMode::Symbolic;
        else if (s == "verify") p.config.space_mode = SpaceMode::Verify;
        else throw config_error("params.space must be \"dense\", \"symbolic\" or \"verify\"");
        space_str = to_string(p.config.space_mode);
      } else if (key == "accounting") {
        const std::string& s = value.is_string() ? value.as_string() : std::string();
        if (s == "paper") p.config.sim.accounting = CommAccounting::PaperMaxChannel;
        else if (s == "barrier") p.config.sim.accounting = CommAccounting::PerStepBarrier;
        else if (s == "contention") p.config.sim.accounting = CommAccounting::LinkContention;
        else throw config_error("params.accounting must be \"paper\", \"barrier\" or \"contention\"");
        accounting_str = s;
      } else if (key == "weighted") {
        if (value.kind() != JsonValue::Kind::Bool)
          throw config_error("params.weighted must be a boolean");
        weighted = value.as_bool();
        p.config.mapping.weighted = weighted;
      } else if (key == "tcalc" || key == "tstart" || key == "tcomm") {
        if (!value.is_number() || value.as_double() < 0)
          throw config_error("params." + key + " must be a non-negative number");
        double v = value.as_double();
        if (key == "tcalc") p.config.machine.t_calc = v;
        else if (key == "tstart") p.config.machine.t_start = v;
        else p.config.machine.t_comm = v;
      } else if (key == "pi") {
        if (!value.is_array() || value.as_array().empty())
          throw config_error("params.pi must be a non-empty integer array");
        IntVec pi;
        for (const JsonValue& c : value.as_array()) {
          if (c.kind() != JsonValue::Kind::Int)
            throw config_error("params.pi must be a non-empty integer array");
          pi.push_back(c.as_int64());
        }
        p.explicit_pi = std::move(pi);
      } else {
        throw config_error("unknown params member \"" + key + "\"");
      }
    }
  }

  // Deterministic fingerprint of the *resolved* configuration: requests
  // that spell the defaults explicitly share cache entries with requests
  // that omit them.
  JsonValue fp;
  fp.set("accounting", JsonValue::make_string(accounting_str));
  fp.set("dim", JsonValue::make_int(static_cast<std::int64_t>(p.config.cube_dim)));
  fp.set("space", JsonValue::make_string(space_str));
  fp.set("tcalc", JsonValue::make_double(p.config.machine.t_calc));
  fp.set("tstart", JsonValue::make_double(p.config.machine.t_start));
  fp.set("tcomm", JsonValue::make_double(p.config.machine.t_comm));
  fp.set("weighted", JsonValue::make_bool(weighted));
  if (p.explicit_pi) {
    std::vector<JsonValue> pi;
    for (std::int64_t c : *p.explicit_pi) pi.push_back(JsonValue::make_int(c));
    fp.set("pi", JsonValue::make_array(std::move(pi)));
  }
  p.fingerprint = fp.to_json();
  return p;
}

}  // namespace

PlanService::PlanService(ServiceOptions opts)
    : opts_(opts),
      cache_(opts.doc_cache_capacity, opts.skeleton_cache_capacity, opts.obs.metrics) {}

std::string PlanService::handle_line(const std::string& line) {
  obs::Span span(opts_.obs.trace, "serve.request", "serve");
  obs::MetricsRegistry* metrics = opts_.obs.metrics;
  if (metrics != nullptr) metrics->add("serve.requests");

  JsonValue request;
  try {
    request = parse_json(line);
  } catch (const JsonParseError& e) {
    if (metrics != nullptr) metrics->add("serve.errors");
    span.arg("ok", std::int64_t{0});
    return make_error_reply(JsonValue::make_null(), "parse", 65,
                            std::string("bad request JSON: ") + e.what())
        .to_json();
  }

  const JsonValue id = request.is_object() ? request.get("id") : JsonValue::make_null();
  const std::string op = request.is_object() ? request.string_or("op", "") : "";
  if (!op.empty()) span.arg("op", op);

  try {
    if (!request.is_object()) throw config_error("request must be a JSON object");
    if (op == "ping" || op == "stats" || op == "shutdown") {
      if (metrics != nullptr) metrics->add("serve.requests." + op);
      JsonValue reply;
      reply.set("id", id);
      reply.set("ok", JsonValue::make_bool(true));
      reply.set("op", JsonValue::make_string(op));
      if (op == "stats") {
        PlanCacheStats s = cache_.stats();
        JsonValue cache;
        cache.set("documents", JsonValue::make_int(static_cast<std::int64_t>(s.documents)));
        cache.set("skeletons", JsonValue::make_int(static_cast<std::int64_t>(s.skeletons)));
        cache.set("doc_capacity",
                  JsonValue::make_int(static_cast<std::int64_t>(cache_.doc_capacity())));
        cache.set("skeleton_capacity",
                  JsonValue::make_int(static_cast<std::int64_t>(cache_.skeleton_capacity())));
        cache.set("hits", JsonValue::make_int(s.doc_hits));
        cache.set("misses", JsonValue::make_int(s.doc_misses));
        cache.set("pi_hits", JsonValue::make_int(s.pi_hits));
        cache.set("doc_evictions", JsonValue::make_int(s.doc_evictions));
        cache.set("pi_evictions", JsonValue::make_int(s.pi_evictions));
        reply.set("cache", std::move(cache));
        JsonValue defaults;
        defaults.set("dim", JsonValue::make_int(static_cast<std::int64_t>(opts_.default_cube_dim)));
        defaults.set("space", JsonValue::make_string(to_string(opts_.default_space)));
        reply.set("defaults", std::move(defaults));
      } else if (op == "shutdown") {
        shutdown_.store(true, std::memory_order_release);
      }
      return reply.to_json();
    }
    if (op == "partition" || op == "map" || op == "predict" || op == "explain") {
      if (metrics != nullptr) metrics->add("serve.requests." + op);
      return handle_plan(request, op, id, span);
    }
    throw config_error(op.empty() ? "missing \"op\" member"
                                  : "unknown op \"" + op + "\"");
  } catch (const Error& e) {
    if (metrics != nullptr) metrics->add("serve.errors");
    span.arg("ok", std::int64_t{0});
    return make_error_reply(id, to_string(e.kind()), e.exit_code(), e.what()).to_json();
  } catch (const std::exception& e) {
    if (metrics != nullptr) metrics->add("serve.errors");
    span.arg("ok", std::int64_t{0});
    return make_error_reply(id, "internal", 70, e.what()).to_json();
  }
}

std::string PlanService::handle_plan(const JsonValue& request, const std::string& op,
                                     const JsonValue& id, obs::Span& span) {
  const auto t0 = std::chrono::steady_clock::now();
  obs::MetricsRegistry* metrics = opts_.obs.metrics;

  const JsonValue& program = request.get("program");
  if (!program.is_string()) throw config_error("missing \"program\" member (string)");
  PlanParams params = resolve_params(request, opts_);

  LoopNest nest = parse_loop_nest(program.as_string());
  DependenceInfo deps = analyze_dependences(nest, params.config.dependence);
  CanonicalForm cf = canonicalize_nest(nest, deps);
  const std::string doc_key = cf.exact_key + "\n" + params.fingerprint;

  std::string disposition;
  JsonValue doc;
  if (std::shared_ptr<const CachedDocument> cached = cache_.find_document(doc_key)) {
    disposition = "hit";
    doc = rewrite_names(*cached, cf);
  } else {
    bool pi_from_cache = false;
    if (params.explicit_pi) {
      params.config.time_function = *params.explicit_pi;
    } else if (std::optional<IntVec> pi = cache_.find_pi(cf.structure_key)) {
      // A cached Π is valid for any nest with this structure (Π·d > 0 is a
      // condition on D alone); under pure rescaling of the bounds it is
      // also the Π the search would pick.  See docs/serve.md for the
      // optimality caveat under non-uniform bound changes.
      params.config.time_function = std::move(*pi);
      pi_from_cache = true;
    }
    // Pipeline obs: the request span's sink sees the stage spans, but the
    // registry is withheld — a pipeline-metrics snapshot inside the cached
    // document would make replayed replies depend on request history.
    params.config.obs = obs::ObsContext{opts_.obs.trace, nullptr};
    PipelineResult result = run_pipeline(nest, params.config);
    disposition = pi_from_cache ? "pi" : "miss";
    doc = parse_json(pipeline_result_to_json(nest, result));
    if (!params.explicit_pi) cache_.insert_pi(cf.structure_key, result.time_function.pi);
    cache_.insert_document(doc_key, CachedDocument{doc, cf.loop_name, cf.arrays});
  }
  if (metrics != nullptr) metrics->add("serve.cache." + disposition);
  span.arg("cache", disposition);

  JsonValue canonical;
  canonical.set("structure", JsonValue::make_string(cf.structure_hex()));
  canonical.set("exact", JsonValue::make_string(cf.exact_hex()));
  if (op == "explain") {
    // Full keys are auditable only where the full document already flows.
    canonical.set("structure_key", JsonValue::make_string(cf.structure_key));
    canonical.set("exact_key", JsonValue::make_string(cf.exact_key));
    canonical.set("params", parse_json(params.fingerprint));
  }

  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  JsonValue reply;
  reply.set("id", id);
  reply.set("ok", JsonValue::make_bool(true));
  reply.set("op", JsonValue::make_string(op));
  reply.set("cache", JsonValue::make_string(disposition));
  reply.set("canonical", std::move(canonical));
  reply.set("plan_us", JsonValue::make_int(us));
  reply.set("result", slice_result(doc, op));
  return reply.to_json();
}

}  // namespace hypart::serve
