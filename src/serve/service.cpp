#include "serve/service.hpp"

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/json_export.hpp"
#include "core/json_writer.hpp"
#include "frontend/parser.hpp"
#include "serve/canonical.hpp"
#include "serve/replay.hpp"

namespace hypart::serve {

namespace {

JsonValue make_error_reply(const JsonValue& id, const std::string& kind, int code,
                           const std::string& message) {
  JsonValue error;
  error.set("kind", JsonValue::make_string(kind));
  error.set("code", JsonValue::make_int(code));
  error.set("message", JsonValue::make_string(message));
  JsonValue reply;
  reply.set("id", id);
  reply.set("ok", JsonValue::make_bool(false));
  reply.set("error", std::move(error));
  return reply;
}

Error config_error(const std::string& message) { return Error(ErrorKind::Config, message); }

/// Per-op projection of the full pipeline document (legacy path, kept for
/// replay verification).  Consumes `doc`: kept sub-trees are moved out, so
/// slicing a freshly rewritten document makes no further copies.
JsonValue slice_result(JsonValue doc, const std::string& op) {
  if (op == "explain") return doc;
  static const std::map<std::string, std::set<std::string>> kept = {
      {"partition",
       {"loop", "depth", "space_mode", "iterations", "dependences", "time_function", "steps",
        "partition", "validation"}},
      {"map", {"loop", "depth", "space_mode", "time_function", "partition", "mapping"}},
      {"predict",
       {"loop", "depth", "space_mode", "time_function", "iterations", "steps", "simulation"}},
  };
  JsonValue out;
  for (const std::string& key : kept.at(op))
    if (doc.has(key)) out.set(key, doc.take(key));
  return out;
}

/// Rewrite the name-bearing fields of a cached document ("loop" and
/// dependences[].array — nothing else in the pipeline JSON carries names)
/// from the producer's identifiers to the requester's, composed through the
/// shared canonical ids.  Legacy path, kept for replay verification.
JsonValue rewrite_names(const CachedDocument& cached, const CanonicalForm& requester) {
  JsonValue doc = cached.doc;
  doc.set("loop", JsonValue::make_string(requester.loop_name));
  std::map<std::string, std::size_t> producer_id;
  for (std::size_t k = 0; k < cached.arrays.size(); ++k) producer_id[cached.arrays[k]] = k;
  if (doc.has("dependences")) {
    for (JsonValue& dep : doc.as_object_mut().at("dependences").as_array_mut()) {
      auto it = producer_id.find(dep.string_or("array", ""));
      if (it != producer_id.end() && it->second < requester.arrays.size())
        dep.set("array", JsonValue::make_string(requester.arrays[it->second]));
    }
  }
  return doc;
}

struct PlanParams {
  PipelineConfig config;
  std::optional<IntVec> explicit_pi;
  std::string fingerprint;  ///< deterministic rendering of the resolved params
};

/// Resolve and validate request.params against the service defaults.
/// Strict: unknown members and wrong member types are Config errors, so
/// client typos fail loudly instead of silently planning with defaults.
PlanParams resolve_params(const JsonValue& request, const ServiceOptions& opts) {
  PlanParams p;
  p.config.cube_dim = opts.default_cube_dim;
  p.config.space_mode = opts.default_space;

  const char* space_str = to_string(p.config.space_mode);
  std::string accounting_str = "paper";
  bool weighted = false;

  const JsonValue& params = request.get("params");
  if (!params.is_null()) {
    if (!params.is_object()) throw config_error("\"params\" must be an object");
    for (const auto& [key, value] : params.as_object()) {
      if (key == "dim") {
        if (value.kind() != JsonValue::Kind::Int || value.as_int64() < 0 || value.as_int64() > 20)
          throw config_error("params.dim must be an integer in [0, 20]");
        p.config.cube_dim = static_cast<unsigned>(value.as_int64());
      } else if (key == "space") {
        const std::string& s = value.is_string() ? value.as_string() : std::string();
        if (s == "dense") p.config.space_mode = SpaceMode::Dense;
        else if (s == "symbolic") p.config.space_mode = SpaceMode::Symbolic;
        else if (s == "verify") p.config.space_mode = SpaceMode::Verify;
        else throw config_error("params.space must be \"dense\", \"symbolic\" or \"verify\"");
        space_str = to_string(p.config.space_mode);
      } else if (key == "accounting") {
        const std::string& s = value.is_string() ? value.as_string() : std::string();
        if (s == "paper") p.config.sim.accounting = CommAccounting::PaperMaxChannel;
        else if (s == "barrier") p.config.sim.accounting = CommAccounting::PerStepBarrier;
        else if (s == "contention") p.config.sim.accounting = CommAccounting::LinkContention;
        else throw config_error("params.accounting must be \"paper\", \"barrier\" or \"contention\"");
        accounting_str = s;
      } else if (key == "weighted") {
        if (value.kind() != JsonValue::Kind::Bool)
          throw config_error("params.weighted must be a boolean");
        weighted = value.as_bool();
        p.config.mapping.weighted = weighted;
      } else if (key == "tcalc" || key == "tstart" || key == "tcomm") {
        if (!value.is_number() || value.as_double() < 0)
          throw config_error("params." + key + " must be a non-negative number");
        double v = value.as_double();
        if (key == "tcalc") p.config.machine.t_calc = v;
        else if (key == "tstart") p.config.machine.t_start = v;
        else p.config.machine.t_comm = v;
      } else if (key == "pi") {
        if (!value.is_array() || value.as_array().empty())
          throw config_error("params.pi must be a non-empty integer array");
        IntVec pi;
        for (const JsonValue& c : value.as_array()) {
          if (c.kind() != JsonValue::Kind::Int)
            throw config_error("params.pi must be a non-empty integer array");
          pi.push_back(c.as_int64());
        }
        p.explicit_pi = std::move(pi);
      } else {
        throw config_error("unknown params member \"" + key + "\"");
      }
    }
  }

  // Deterministic fingerprint of the *resolved* configuration: requests
  // that spell the defaults explicitly share cache entries with requests
  // that omit them.
  JsonValue fp;
  fp.set("accounting", JsonValue::make_string(accounting_str));
  fp.set("dim", JsonValue::make_int(static_cast<std::int64_t>(p.config.cube_dim)));
  fp.set("space", JsonValue::make_string(space_str));
  fp.set("tcalc", JsonValue::make_double(p.config.machine.t_calc));
  fp.set("tstart", JsonValue::make_double(p.config.machine.t_start));
  fp.set("tcomm", JsonValue::make_double(p.config.machine.t_comm));
  fp.set("weighted", JsonValue::make_bool(weighted));
  if (p.explicit_pi) {
    std::vector<JsonValue> pi;
    for (std::int64_t c : *p.explicit_pi) pi.push_back(JsonValue::make_int(c));
    fp.set("pi", JsonValue::make_array(std::move(pi)));
  }
  p.fingerprint = fp.to_json();
  return p;
}

bool is_plan_op(const std::string& op) {
  return op == "partition" || op == "map" || op == "predict" || op == "explain";
}

/// Render one complete plan reply around a pre-rendered result slice.
/// Keys are written in sorted order, matching JsonValue::to_json of the
/// equivalent tree byte for byte.
std::string render_plan_reply(const std::string& disposition, const CanonicalForm& cf,
                              const std::string& fingerprint, const JsonValue& id,
                              const std::string& op, std::int64_t plan_us,
                              const RenderedPlan& rendered) {
  JsonWriter w;
  w.begin_object();
  w.field("cache", disposition);
  w.key("canonical").begin_object();
  w.field("exact", cf.exact_hex());
  if (op == "explain") {
    // Full keys are auditable only where the full document already flows.
    w.field("exact_key", cf.exact_key);
    w.key("params").raw_value(fingerprint);
  }
  w.field("structure", cf.structure_hex());
  if (op == "explain") w.field("structure_key", cf.structure_key);
  w.end_object();
  w.key("id");
  id.write(w);
  w.field("ok", true);
  w.field("op", op);
  w.field("plan_us", plan_us);
  w.key("result");
  rendered.for_op(op).render(w.raw_buffer(), JsonWriter::escape(cf.loop_name),
                             escape_names(cf.arrays));
  w.end_object();
  return w.str();
}

/// verify_replay mode: re-derive the result slice through the legacy
/// copy-rewrite-serialize path and compare it byte for byte with the
/// template rendering.
void check_replay(const CachedDocument& cached, const CanonicalForm& cf, const std::string& op) {
  std::string spliced;
  cached.rendered.for_op(op).render(spliced, JsonWriter::escape(cf.loop_name),
                                    escape_names(cf.arrays));
  std::string legacy = slice_result(rewrite_names(cached, cf), op).to_json();
  if (spliced != legacy)
    throw Error(ErrorKind::Internal,
                "replay verification mismatch for op \"" + op + "\" (template render diverges "
                "from document rewrite)");
}

}  // namespace

PlanService::PlanService(ServiceOptions opts)
    : opts_(opts),
      cache_(opts.doc_cache_capacity, opts.skeleton_cache_capacity, opts.obs.metrics,
             opts.cache_shards) {}

std::string PlanService::handle_line(const std::string& line) {
  obs::Span span(opts_.obs.trace, "serve.request", "serve");
  obs::MetricsRegistry* metrics = opts_.obs.metrics;
  if (metrics != nullptr) metrics->add("serve.requests");

  JsonValue request;
  try {
    request = parse_json(line);
  } catch (const JsonParseError& e) {
    if (metrics != nullptr) metrics->add("serve.errors");
    span.arg("ok", std::int64_t{0});
    return make_error_reply(JsonValue::make_null(), "parse", 65,
                            std::string("bad request JSON: ") + e.what())
        .to_json();
  }

  const JsonValue id = request.is_object() ? request.get("id") : JsonValue::make_null();
  const std::string op = request.is_object() ? request.string_or("op", "") : "";
  if (!op.empty()) span.arg("op", op);

  try {
    if (!request.is_object()) throw config_error("request must be a JSON object");
    if (op == "ping" || op == "stats" || op == "shutdown") {
      if (metrics != nullptr) metrics->add("serve.requests." + op);
      JsonValue reply;
      reply.set("id", id);
      reply.set("ok", JsonValue::make_bool(true));
      reply.set("op", JsonValue::make_string(op));
      if (op == "stats") {
        PlanCacheStats s = cache_.stats();
        JsonValue cache;
        cache.set("documents", JsonValue::make_int(static_cast<std::int64_t>(s.documents)));
        cache.set("skeletons", JsonValue::make_int(static_cast<std::int64_t>(s.skeletons)));
        cache.set("doc_capacity",
                  JsonValue::make_int(static_cast<std::int64_t>(cache_.doc_capacity())));
        cache.set("skeleton_capacity",
                  JsonValue::make_int(static_cast<std::int64_t>(cache_.skeleton_capacity())));
        cache.set("doc_shards",
                  JsonValue::make_int(static_cast<std::int64_t>(cache_.doc_shard_count())));
        cache.set("skeleton_shards",
                  JsonValue::make_int(static_cast<std::int64_t>(cache_.pi_shard_count())));
        cache.set("hits", JsonValue::make_int(s.doc_hits));
        cache.set("misses", JsonValue::make_int(s.doc_misses));
        cache.set("pi_hits", JsonValue::make_int(s.pi_hits));
        cache.set("doc_evictions", JsonValue::make_int(s.doc_evictions));
        cache.set("pi_evictions", JsonValue::make_int(s.pi_evictions));
        reply.set("cache", std::move(cache));
        JsonValue defaults;
        defaults.set("dim", JsonValue::make_int(static_cast<std::int64_t>(opts_.default_cube_dim)));
        defaults.set("space", JsonValue::make_string(to_string(opts_.default_space)));
        reply.set("defaults", std::move(defaults));
      } else if (op == "shutdown") {
        shutdown_.store(true, std::memory_order_release);
      }
      return reply.to_json();
    }
    if (is_plan_op(op)) {
      if (metrics != nullptr) metrics->add("serve.requests." + op);
      return handle_plan(request, op, id, span);
    }
    if (op == "batch") {
      if (metrics != nullptr) metrics->add("serve.requests.batch");
      return handle_batch(request, id, span);
    }
    throw config_error(op.empty() ? "missing \"op\" member"
                                  : "unknown op \"" + op + "\"");
  } catch (const Error& e) {
    if (metrics != nullptr) metrics->add("serve.errors");
    span.arg("ok", std::int64_t{0});
    return make_error_reply(id, to_string(e.kind()), e.exit_code(), e.what()).to_json();
  } catch (const std::exception& e) {
    if (metrics != nullptr) metrics->add("serve.errors");
    span.arg("ok", std::int64_t{0});
    return make_error_reply(id, "internal", 70, e.what()).to_json();
  }
}

std::string PlanService::handle_plan(const JsonValue& request, const std::string& op,
                                     const JsonValue& id, obs::Span& span) {
  const auto t0 = std::chrono::steady_clock::now();
  obs::MetricsRegistry* metrics = opts_.obs.metrics;

  const JsonValue& program = request.get("program");
  if (!program.is_string()) throw config_error("missing \"program\" member (string)");
  PlanParams params = resolve_params(request, opts_);

  LoopNest nest = parse_loop_nest(program.as_string());
  DependenceInfo deps = analyze_dependences(nest, params.config.dependence);
  CanonicalForm cf = canonicalize_nest(nest, deps);
  const std::string doc_key = cf.exact_key + "\n" + params.fingerprint;

  std::string disposition;
  std::shared_ptr<const CachedDocument> cached = cache_.find_document(doc_key);
  if (cached != nullptr) {
    disposition = "hit";
    if (opts_.verify_replay) check_replay(*cached, cf, op);
  } else {
    bool pi_from_cache = false;
    if (params.explicit_pi) {
      params.config.time_function = *params.explicit_pi;
    } else if (std::optional<IntVec> pi = cache_.find_pi(cf.structure_key)) {
      // A cached Π is valid for any nest with this structure (Π·d > 0 is a
      // condition on D alone); under pure rescaling of the bounds it is
      // also the Π the search would pick.  See docs/serve.md for the
      // optimality caveat under non-uniform bound changes.
      params.config.time_function = std::move(*pi);
      pi_from_cache = true;
    }
    // Pipeline obs: the request span's sink sees the stage spans, but the
    // registry is withheld — a pipeline-metrics snapshot inside the cached
    // document would make replayed replies depend on request history.
    params.config.obs = obs::ObsContext{opts_.obs.trace, nullptr};
    PipelineResult result = run_pipeline(nest, params.config);
    disposition = pi_from_cache ? "pi" : "miss";
    JsonValue doc = parse_json(pipeline_result_to_json(nest, result));
    if (!params.explicit_pi) cache_.insert_pi(cf.structure_key, result.time_function.pi);
    RenderedPlan rendered = render_plan(doc, cf.arrays);
    cached = cache_.insert_document(
        doc_key, CachedDocument{std::move(doc), cf.loop_name, cf.arrays, std::move(rendered)});
  }
  if (metrics != nullptr) metrics->add("serve.cache." + disposition);
  span.arg("cache", disposition);

  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return render_plan_reply(disposition, cf, params.fingerprint, id, op, us, cached->rendered);
}

namespace {

/// One unique (exact_key, params) document to materialize for a batch.
struct BatchJob {
  std::string doc_key;
  std::string disposition;        ///< "hit" | "pi" | "miss"
  std::optional<LoopNest> nest;   ///< first requester's nest (plans the document)
  PlanParams params;
  CanonicalForm cf;               ///< first requester's naming (the producer)
  std::shared_ptr<const CachedDocument> cached;  ///< set pass 1 (hit) or pass 2b
  CachedDocument built;           ///< pass-2 product awaiting sequential insert
  IntVec result_pi;               ///< Π to publish into the skeleton tier
  std::int64_t plan_us = 0;
  bool failed = false;
  std::string error_kind;
  int error_code = 0;
  std::string error_message;
};

/// One batch sub-request in arrival order.
struct BatchItem {
  JsonValue id;
  std::string op;
  std::string error_reply;  ///< pass-1 failure, already rendered
  std::size_t job = 0;      ///< index into jobs when error_reply is empty
  bool duplicate = false;   ///< same doc_key as an earlier item (replays it)
  CanonicalForm cf;         ///< this requester's naming
  std::string fingerprint;
};

}  // namespace

std::string PlanService::handle_batch(const JsonValue& request, const JsonValue& id,
                                      obs::Span& span) {
  obs::MetricsRegistry* metrics = opts_.obs.metrics;
  const JsonValue& requests = request.get("requests");
  if (!requests.is_array()) throw config_error("missing \"requests\" member (array)");
  const std::vector<JsonValue>& subs = requests.as_array();
  if (subs.empty()) throw config_error("batch \"requests\" must be non-empty");
  if (subs.size() > opts_.max_batch)
    throw config_error("batch of " + std::to_string(subs.size()) + " exceeds max_batch (" +
                       std::to_string(opts_.max_batch) + ")");
  span.arg("batch_n", static_cast<std::int64_t>(subs.size()));

  // Pass 1 — sequential, in request order: validate, canonicalize, probe
  // the cache and dedup pending documents.  Every cache interaction (and
  // therefore every counter) happens in arrival order here, which keeps
  // the roll-ups deterministic no matter how pass 2 is scheduled.
  std::vector<BatchItem> items(subs.size());
  std::vector<BatchJob> jobs;
  std::map<std::string, std::size_t> pending;  // doc_key -> job index
  for (std::size_t i = 0; i < subs.size(); ++i) {
    const JsonValue& sub = subs[i];
    BatchItem& item = items[i];
    item.id = sub.is_object() ? sub.get("id") : JsonValue::make_null();
    try {
      if (!sub.is_object()) throw config_error("batch request must be a JSON object");
      item.op = sub.string_or("op", "");
      if (!is_plan_op(item.op))
        throw config_error(item.op.empty()
                               ? "missing \"op\" member"
                               : item.op == "batch"
                                     ? "nested batch is not allowed"
                                     : "op \"" + item.op + "\" is not allowed in a batch");
      if (metrics != nullptr) metrics->add("serve.requests." + item.op);
      const JsonValue& program = sub.get("program");
      if (!program.is_string()) throw config_error("missing \"program\" member (string)");
      PlanParams params = resolve_params(sub, opts_);
      LoopNest nest = parse_loop_nest(program.as_string());
      DependenceInfo deps = analyze_dependences(nest, params.config.dependence);
      item.cf = canonicalize_nest(nest, deps);
      item.fingerprint = params.fingerprint;
      const std::string doc_key = item.cf.exact_key + "\n" + params.fingerprint;

      auto it = pending.find(doc_key);
      if (it != pending.end()) {
        // An earlier sub-request already produces this document; replay it
        // once materialized.  No second cache probe, so the cache's own
        // hit/miss counters see each unique document once per batch.
        item.job = it->second;
        item.duplicate = true;
        continue;
      }
      BatchJob job;
      job.doc_key = doc_key;
      job.cached = cache_.find_document(doc_key);
      if (job.cached != nullptr) {
        job.disposition = "hit";
        if (opts_.verify_replay) check_replay(*job.cached, item.cf, item.op);
      } else {
        if (params.explicit_pi) {
          params.config.time_function = *params.explicit_pi;
          job.disposition = "miss";
        } else if (std::optional<IntVec> pi = cache_.find_pi(item.cf.structure_key)) {
          params.config.time_function = std::move(*pi);
          job.disposition = "pi";
        } else {
          job.disposition = "miss";
        }
        job.nest = std::move(nest);
        job.params = std::move(params);
        job.cf = item.cf;
      }
      item.job = jobs.size();
      pending.emplace(doc_key, jobs.size());
      jobs.push_back(std::move(job));
    } catch (const Error& e) {
      item.error_reply =
          make_error_reply(item.id, to_string(e.kind()), e.exit_code(), e.what()).to_json();
    } catch (const std::exception& e) {
      item.error_reply = make_error_reply(item.id, "internal", 70, e.what()).to_json();
    }
  }

  // Pass 2 — plan the cold documents, fanned across worker threads.  Each
  // job is independent (run_pipeline is already exercised concurrently by
  // the socket server's workers); results are buffered in the job, never
  // touching the cache from here.
  std::vector<std::size_t> cold;
  for (std::size_t j = 0; j < jobs.size(); ++j)
    if (jobs[j].cached == nullptr) cold.push_back(j);
  auto plan_one = [&](BatchJob& job) {
    const auto t0 = std::chrono::steady_clock::now();
    try {
      job.params.config.obs = obs::ObsContext{opts_.obs.trace, nullptr};
      PipelineResult result = run_pipeline(*job.nest, job.params.config);
      JsonValue doc = parse_json(pipeline_result_to_json(*job.nest, result));
      job.result_pi = result.time_function.pi;
      RenderedPlan rendered = render_plan(doc, job.cf.arrays);
      job.built =
          CachedDocument{std::move(doc), job.cf.loop_name, job.cf.arrays, std::move(rendered)};
    } catch (const Error& e) {
      job.failed = true;
      job.error_kind = to_string(e.kind());
      job.error_code = e.exit_code();
      job.error_message = e.what();
    } catch (const std::exception& e) {
      job.failed = true;
      job.error_kind = "internal";
      job.error_code = 70;
      job.error_message = e.what();
    }
    job.plan_us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  };
  std::size_t workers = opts_.batch_parallelism != 0
                            ? opts_.batch_parallelism
                            : static_cast<std::size_t>(std::thread::hardware_concurrency());
  if (workers == 0) workers = 1;
  if (workers > cold.size()) workers = cold.size();
  if (workers <= 1) {
    for (std::size_t j : cold) plan_one(jobs[j]);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
      pool.emplace_back([&] {
        for (;;) {
          std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
          if (k >= cold.size()) return;
          plan_one(jobs[cold[k]]);
        }
      });
    for (std::thread& t : pool) t.join();
  }

  // Pass 2b — publish to the cache sequentially in job (= first-arrival)
  // order, so the LRU order and eviction counters replay identically for
  // the same batch regardless of how pass 2 was scheduled.
  for (std::size_t j : cold) {
    BatchJob& job = jobs[j];
    if (job.failed) continue;
    if (!job.params.explicit_pi) cache_.insert_pi(job.cf.structure_key, job.result_pi);
    job.cached = cache_.insert_document(job.doc_key, std::move(job.built));
  }

  // Pass 3 — render replies in request order; disposition and error
  // counters are recorded here, where a job's outcome is finally known
  // (matching the single-request path, which only counts a disposition
  // after the pipeline succeeds).
  JsonWriter w;
  w.begin_object();
  w.key("id");
  id.write(w);
  w.field("ok", true);
  w.field("op", "batch");
  w.begin_array("replies");
  for (const BatchItem& item : items) {
    if (!item.error_reply.empty()) {
      if (metrics != nullptr) metrics->add("serve.errors");
      w.raw_value(item.error_reply);
      continue;
    }
    const BatchJob& job = jobs[item.job];
    if (job.failed) {
      if (metrics != nullptr) metrics->add("serve.errors");
      w.raw_value(
          make_error_reply(item.id, job.error_kind, job.error_code, job.error_message).to_json());
      continue;
    }
    // A within-batch duplicate replays the just-produced document: "hit"
    // from the requester's point of view, with no planning time of its own.
    const std::string& disposition = item.duplicate ? "hit" : job.disposition;
    if (metrics != nullptr) metrics->add("serve.cache." + disposition);
    const std::int64_t us = item.duplicate ? 0 : job.plan_us;
    w.raw_value(render_plan_reply(disposition, item.cf, item.fingerprint, item.id, item.op, us,
                                  job.cached->rendered));
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace hypart::serve
