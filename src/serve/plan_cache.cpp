#include "serve/plan_cache.hpp"

namespace hypart::serve {

namespace {

/// FNV-1a over the key bytes: deterministic, dependency-free, and a pure
/// function of the key — shard selection (and therefore eviction order and
/// every counter) never depends on thread timing.
std::uint64_t shard_hash(const std::string& key) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Effective stripe count for a tier: never more stripes than leave each
/// one at least kMinShardCapacity LRU slots (capacity 0 = unbounded keeps
/// the full request).  A tiny tier collapses to one stripe, preserving the
/// classic global LRU order.
std::size_t clamp_shards(std::size_t requested, std::size_t capacity) {
  if (requested == 0) requested = 1;
  if (capacity == 0) return requested;
  std::size_t max_shards = capacity / PlanCache::kMinShardCapacity;
  if (max_shards == 0) max_shards = 1;
  return requested < max_shards ? requested : max_shards;
}

/// Stripe i's slice of the tier capacity; slices sum to the tier capacity
/// exactly (the first capacity % n stripes take the remainder).
std::size_t shard_capacity(std::size_t capacity, std::size_t shards, std::size_t i) {
  if (capacity == 0) return 0;
  return capacity / shards + (i < capacity % shards ? 1 : 0);
}

}  // namespace

PlanCache::PlanCache(std::size_t doc_capacity, std::size_t skeleton_capacity,
                     obs::MetricsRegistry* metrics, std::size_t shards)
    : doc_capacity_(doc_capacity), skeleton_capacity_(skeleton_capacity), metrics_(metrics) {
  const std::size_t doc_n = clamp_shards(shards, doc_capacity_);
  doc_shards_.reserve(doc_n);
  for (std::size_t i = 0; i < doc_n; ++i) {
    doc_shards_.push_back(std::make_unique<DocShard>());
    doc_shards_.back()->capacity = shard_capacity(doc_capacity_, doc_n, i);
  }
  const std::size_t pi_n = clamp_shards(shards, skeleton_capacity_);
  pi_shards_.reserve(pi_n);
  for (std::size_t i = 0; i < pi_n; ++i) {
    pi_shards_.push_back(std::make_unique<PiShard>());
    pi_shards_.back()->capacity = shard_capacity(skeleton_capacity_, pi_n, i);
  }
}

std::size_t PlanCache::doc_shard_index(const std::string& exact_key) const {
  return shard_hash(exact_key) % doc_shards_.size();
}

std::size_t PlanCache::pi_shard_index(const std::string& structure_key) const {
  return shard_hash(structure_key) % pi_shards_.size();
}

std::shared_ptr<const CachedDocument> PlanCache::find_document(const std::string& exact_key) {
  DocShard& shard = *doc_shards_[doc_shard_index(exact_key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (auto* entry = shard.entries.find(exact_key)) {
    ++shard.hits;
    return *entry;
  }
  ++shard.misses;
  return nullptr;
}

std::shared_ptr<const CachedDocument> PlanCache::insert_document(const std::string& exact_key,
                                                                CachedDocument doc) {
  auto entry = std::make_shared<const CachedDocument>(std::move(doc));
  DocShard& shard = *doc_shards_[doc_shard_index(exact_key)];
  bool evicted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    evicted = shard.entries.insert(exact_key, entry, shard.capacity);
    if (evicted) ++shard.evictions;
  }
  if (evicted && metrics_ != nullptr) metrics_->add("serve.cache.doc_evictions");
  return entry;
}

std::optional<IntVec> PlanCache::find_pi(const std::string& structure_key) {
  PiShard& shard = *pi_shards_[pi_shard_index(structure_key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (IntVec* pi = shard.entries.find(structure_key)) {
    ++shard.hits;
    return *pi;
  }
  return std::nullopt;
}

void PlanCache::insert_pi(const std::string& structure_key, IntVec pi) {
  PiShard& shard = *pi_shards_[pi_shard_index(structure_key)];
  bool evicted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    evicted = shard.entries.insert(structure_key, std::move(pi), shard.capacity);
    if (evicted) ++shard.evictions;
  }
  if (evicted && metrics_ != nullptr) metrics_->add("serve.cache.pi_evictions");
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  for (const auto& shard : doc_shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    s.documents += shard->entries.entries.size();
    s.doc_hits += shard->hits;
    s.doc_misses += shard->misses;
    s.doc_evictions += shard->evictions;
  }
  for (const auto& shard : pi_shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    s.skeletons += shard->entries.entries.size();
    s.pi_hits += shard->hits;
    s.pi_evictions += shard->evictions;
  }
  return s;
}

PlanCacheStats PlanCache::doc_shard_stats(std::size_t shard_idx) const {
  PlanCacheStats s;
  const DocShard& shard = *doc_shards_.at(shard_idx);
  std::lock_guard<std::mutex> lock(shard.mutex);
  s.documents = shard.entries.entries.size();
  s.doc_hits = shard.hits;
  s.doc_misses = shard.misses;
  s.doc_evictions = shard.evictions;
  return s;
}

PlanCacheStats PlanCache::pi_shard_stats(std::size_t shard_idx) const {
  PlanCacheStats s;
  const PiShard& shard = *pi_shards_.at(shard_idx);
  std::lock_guard<std::mutex> lock(shard.mutex);
  s.skeletons = shard.entries.entries.size();
  s.pi_hits = shard.hits;
  s.pi_evictions = shard.evictions;
  return s;
}

}  // namespace hypart::serve
