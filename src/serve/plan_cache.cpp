#include "serve/plan_cache.hpp"

namespace hypart::serve {

PlanCache::PlanCache(std::size_t doc_capacity, std::size_t skeleton_capacity,
                     obs::MetricsRegistry* metrics)
    : doc_capacity_(doc_capacity), skeleton_capacity_(skeleton_capacity), metrics_(metrics) {}

std::shared_ptr<const CachedDocument> PlanCache::find_document(const std::string& exact_key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto* entry = documents_.find(exact_key)) {
    ++counters_.doc_hits;
    return *entry;
  }
  ++counters_.doc_misses;
  return nullptr;
}

void PlanCache::insert_document(const std::string& exact_key, CachedDocument doc) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool evicted = documents_.insert(
      exact_key, std::make_shared<const CachedDocument>(std::move(doc)), doc_capacity_);
  if (evicted) {
    ++counters_.doc_evictions;
    if (metrics_ != nullptr) metrics_->add("serve.cache.doc_evictions");
  }
}

std::optional<IntVec> PlanCache::find_pi(const std::string& structure_key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (IntVec* pi = skeletons_.find(structure_key)) {
    ++counters_.pi_hits;
    return *pi;
  }
  return std::nullopt;
}

void PlanCache::insert_pi(const std::string& structure_key, IntVec pi) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool evicted = skeletons_.insert(structure_key, std::move(pi), skeleton_capacity_);
  if (evicted) {
    ++counters_.pi_evictions;
    if (metrics_ != nullptr) metrics_->add("serve.cache.pi_evictions");
  }
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  PlanCacheStats s = counters_;
  s.documents = documents_.entries.size();
  s.skeletons = skeletons_.entries.size();
  return s;
}

}  // namespace hypart::serve
