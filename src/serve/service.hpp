// hypart::serve — the plan service: request dispatch over the canonical
// plan cache.
//
// PlanService is transport-agnostic: handle_line() maps one NDJSON request
// line to one NDJSON reply line (both without the trailing '\n').  The
// socket server (serve/server.hpp), the CLI, the load generator's
// in-process mode and the serve bench all drive this same object, so cache
// behaviour and error mapping are testable without sockets.
//
// Protocol (docs/serve.md is the authoritative spec):
//
//   request  := {"op": "partition"|"map"|"predict"|"explain"|"batch"
//                      |"ping"|"stats"|"shutdown",
//                "id"?: any, "program"?: string, "params"?: {...},
//                "requests"?: [...]}
//   success  := {"id", "ok": true, "op", ...}; plan ops add
//               "cache": "hit"|"pi"|"miss", "canonical": {structure, exact},
//               "plan_us": int, "result": {...}; "batch" adds "replies":
//               [one plan/error reply object per sub-request, in order]
//   error    := {"id", "ok": false,
//                "error": {"kind": string, "code": int, "message": string}}
//
// The "id" member is echoed verbatim (any JSON value).  Error kinds/codes
// are the typed hierarchy of core/error.hpp and its documented exit codes.
//
// Cache dispositions: "hit" replays a stored document (names rewritten to
// the requester's), "pi" reuses a cached time function Π but re-runs the
// rest of the pipeline for the actual bounds, "miss" runs everything
// including the Π search.  Hits reply straight from pre-rendered byte
// templates (serve/replay.hpp) — no JsonValue copy, no re-serialization.
// plan_us (wall time) appears only in replies — never in the metrics
// registry, which stays deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/pipeline.hpp"
#include "obs/obs.hpp"
#include "serve/plan_cache.hpp"

namespace hypart::serve {

struct ServiceOptions {
  std::size_t doc_cache_capacity = 256;
  std::size_t skeleton_cache_capacity = 128;
  /// Lock stripes requested per cache tier (clamped; see plan_cache.hpp).
  std::size_t cache_shards = PlanCache::kDefaultShards;
  /// Upper bound on requests per batch op (whole batch rejected beyond it).
  std::size_t max_batch = 256;
  /// Threads used to plan a batch's cold misses; 0 = hardware concurrency.
  std::size_t batch_parallelism = 0;
  /// Cross-check every replayed hit against the legacy rewrite-and-
  /// serialize path and fail the request (Internal) on any byte mismatch.
  /// Debug/audit aid; costs a full document copy per hit.
  bool verify_replay = false;
  /// Defaults applied to plan requests that omit the matching params.
  unsigned default_cube_dim = 3;
  SpaceMode default_space = SpaceMode::Symbolic;
  /// Metrics registry and trace sink (both nullable).  Counters recorded:
  /// serve.requests, serve.requests.<op> (batch sub-requests count toward
  /// their own op too), serve.cache.{hit,pi,miss}, serve.errors (+ the
  /// cache's eviction counters).  One span per request line.  All totals
  /// are deterministic for a given request sequence, independent of thread
  /// or shard counts.
  obs::ObsContext obs{};
};

class PlanService {
 public:
  explicit PlanService(ServiceOptions opts = {});

  /// Handle one request line; always returns exactly one reply line
  /// (no trailing newline).  Never throws: every failure becomes an
  /// error reply.
  std::string handle_line(const std::string& line);

  /// True once a {"op":"shutdown"} request has been accepted.
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  [[nodiscard]] PlanCacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] const PlanCache& cache() const { return cache_; }
  [[nodiscard]] const ServiceOptions& options() const { return opts_; }

 private:
  std::string handle_plan(const JsonValue& request, const std::string& op, const JsonValue& id,
                          obs::Span& span);
  std::string handle_batch(const JsonValue& request, const JsonValue& id, obs::Span& span);

  ServiceOptions opts_;
  PlanCache cache_;
  std::atomic<bool> shutdown_{false};
};

}  // namespace hypart::serve
