// hypart::serve — two-tier LRU plan cache keyed by canonical nest forms.
//
// Tier 1 (skeleton): structure_key -> time function Π.  A valid Π satisfies
// Π·d > 0 for every d in D and nothing else, so it is reusable across all
// domain sizes with the same dependence structure; hitting this tier skips
// the small-integer search (the expensive part of planning) while the rest
// of the pipeline re-runs for the actual bounds.
//
// Tier 2 (document): exact_key -> fully rendered plan document (a parsed
// JsonValue of core/json_export's pipeline JSON).  Hitting this tier skips
// the pipeline entirely; the service rewrites the name-bearing fields
// ("loop", dependences[].array) before replying.
//
// Both tiers are independent LRU maps behind one mutex; entries are held by
// shared_ptr so a reply can keep using a document that was concurrently
// evicted.  Evictions are counted into obs::metrics
// (serve.cache.doc_evictions / serve.cache.pi_evictions); hit/miss
// dispositions are counted by the service, which knows them.
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/json_reader.hpp"
#include "numeric/int_linalg.hpp"
#include "obs/metrics.hpp"

namespace hypart::serve {

/// A cached plan document plus the producer-side naming needed to rewrite
/// it for a structurally identical but renamed requester.
struct CachedDocument {
  JsonValue doc;                    ///< full pipeline document (producer names)
  std::string loop_name;            ///< producer nest name
  std::vector<std::string> arrays;  ///< producer canonical id -> array name
};

struct PlanCacheStats {
  std::size_t documents = 0;      ///< live tier-2 entries
  std::size_t skeletons = 0;      ///< live tier-1 entries
  std::int64_t doc_hits = 0;
  std::int64_t doc_misses = 0;
  std::int64_t pi_hits = 0;       ///< tier-1 hits after a tier-2 miss
  std::int64_t doc_evictions = 0;
  std::int64_t pi_evictions = 0;
};

class PlanCache {
 public:
  explicit PlanCache(std::size_t doc_capacity = 256, std::size_t skeleton_capacity = 128,
                     obs::MetricsRegistry* metrics = nullptr);

  /// Tier-2 lookup; refreshes recency.  Null when absent.
  [[nodiscard]] std::shared_ptr<const CachedDocument> find_document(const std::string& exact_key);
  /// Tier-2 insert (overwrites an existing entry; may evict the LRU one).
  void insert_document(const std::string& exact_key, CachedDocument doc);

  /// Tier-1 lookup; refreshes recency.  Counted as a pi hit only when found.
  [[nodiscard]] std::optional<IntVec> find_pi(const std::string& structure_key);
  void insert_pi(const std::string& structure_key, IntVec pi);

  [[nodiscard]] PlanCacheStats stats() const;
  [[nodiscard]] std::size_t doc_capacity() const { return doc_capacity_; }
  [[nodiscard]] std::size_t skeleton_capacity() const { return skeleton_capacity_; }

 private:
  template <typename V>
  struct LruMap {
    // Recency list, most-recent first; map values carry the list iterator.
    std::list<std::string> order;
    std::map<std::string, std::pair<std::list<std::string>::iterator, V>> entries;

    V* find(const std::string& key) {
      auto it = entries.find(key);
      if (it == entries.end()) return nullptr;
      order.splice(order.begin(), order, it->second.first);
      return &it->second.second;
    }
    /// Inserts (or overwrites) and returns true when the LRU entry was
    /// evicted to make room.
    bool insert(const std::string& key, V value, std::size_t capacity) {
      auto it = entries.find(key);
      if (it != entries.end()) {
        it->second.second = std::move(value);
        order.splice(order.begin(), order, it->second.first);
        return false;
      }
      bool evicted = false;
      if (capacity > 0 && entries.size() >= capacity) {
        entries.erase(order.back());
        order.pop_back();
        evicted = true;
      }
      order.push_front(key);
      entries.emplace(key, std::make_pair(order.begin(), std::move(value)));
      return evicted;
    }
  };

  const std::size_t doc_capacity_;
  const std::size_t skeleton_capacity_;
  obs::MetricsRegistry* metrics_;

  mutable std::mutex mutex_;
  LruMap<std::shared_ptr<const CachedDocument>> documents_;
  LruMap<IntVec> skeletons_;
  PlanCacheStats counters_;
};

}  // namespace hypart::serve
