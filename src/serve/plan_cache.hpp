// hypart::serve — two-tier, lock-striped LRU plan cache keyed by canonical
// nest forms.
//
// Tier 1 (skeleton): structure_key -> time function Π.  A valid Π satisfies
// Π·d > 0 for every d in D and nothing else, so it is reusable across all
// domain sizes with the same dependence structure; hitting this tier skips
// the small-integer search (the expensive part of planning) while the rest
// of the pipeline re-runs for the actual bounds.
//
// Tier 2 (document): exact_key -> fully rendered plan document: the parsed
// JsonValue of core/json_export's pipeline JSON plus its pre-rendered
// per-op reply templates (serve/replay.hpp).  Hitting this tier skips the
// pipeline entirely; the service splices the requester's names into the
// template bytes before replying.
//
// Sharding: each tier is split into lock-striped shards selected by an
// FNV-1a hash of the key, so concurrent lookups on different keys contend
// only per stripe instead of on one global mutex.  Each shard runs its own
// LRU over its slice of the capacity and keeps its own counters; stats()
// rolls them up.  The hash is a pure function of the key, so for a given
// request sequence the shard a key lands on — and therefore every eviction
// and every counter total — is deterministic and independent of how many
// threads issued the requests.  Tiny caches stay exact: the shard count is
// clamped so each shard keeps a meaningfully sized LRU (capacity-1 and
// capacity-2 configurations collapse to a single shard with the classic
// global LRU order, which the eviction tests pin).
//
// Entries are held by shared_ptr so a reply can keep using a document that
// was concurrently evicted.  Evictions are counted into obs::metrics
// (serve.cache.doc_evictions / serve.cache.pi_evictions); hit/miss
// dispositions are counted by the service, which knows them.
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/json_reader.hpp"
#include "numeric/int_linalg.hpp"
#include "obs/metrics.hpp"
#include "serve/replay.hpp"

namespace hypart::serve {

/// A cached plan document plus the producer-side naming needed to rewrite
/// it for a structurally identical but renamed requester.  `doc` stays
/// parsed for explain audits and replay verification; `rendered` carries
/// the pre-rendered byte templates every hit replies from.
struct CachedDocument {
  JsonValue doc;                    ///< full pipeline document (producer names)
  std::string loop_name;            ///< producer nest name
  std::vector<std::string> arrays;  ///< producer canonical id -> array name
  RenderedPlan rendered;            ///< pre-rendered per-op reply slices
};

struct PlanCacheStats {
  std::size_t documents = 0;      ///< live tier-2 entries
  std::size_t skeletons = 0;      ///< live tier-1 entries
  std::int64_t doc_hits = 0;
  std::int64_t doc_misses = 0;
  std::int64_t pi_hits = 0;       ///< tier-1 hits after a tier-2 miss
  std::int64_t doc_evictions = 0;
  std::int64_t pi_evictions = 0;
};

class PlanCache {
 public:
  /// Default stripe count requested for each tier; the effective counts
  /// are clamped per tier so every shard owns at least kMinShardCapacity
  /// LRU slots (see doc_shard_count()/pi_shard_count()).
  static constexpr std::size_t kDefaultShards = 8;
  /// Minimum per-shard LRU slots before striping is worth changing the
  /// eviction order; below this a tier stays a single exact global LRU.
  static constexpr std::size_t kMinShardCapacity = 8;

  explicit PlanCache(std::size_t doc_capacity = 256, std::size_t skeleton_capacity = 128,
                     obs::MetricsRegistry* metrics = nullptr,
                     std::size_t shards = kDefaultShards);

  /// Tier-2 lookup; refreshes recency.  Null when absent.
  [[nodiscard]] std::shared_ptr<const CachedDocument> find_document(const std::string& exact_key);
  /// Tier-2 insert (overwrites an existing entry; may evict the shard's
  /// LRU one).  Returns the stored entry so a miss path can reply from the
  /// same shared document it just published.
  std::shared_ptr<const CachedDocument> insert_document(const std::string& exact_key,
                                                        CachedDocument doc);

  /// Tier-1 lookup; refreshes recency.  Counted as a pi hit only when found.
  [[nodiscard]] std::optional<IntVec> find_pi(const std::string& structure_key);
  void insert_pi(const std::string& structure_key, IntVec pi);

  /// Roll-up over all shards of both tiers.
  [[nodiscard]] PlanCacheStats stats() const;
  [[nodiscard]] std::size_t doc_capacity() const { return doc_capacity_; }
  [[nodiscard]] std::size_t skeleton_capacity() const { return skeleton_capacity_; }

  /// Stripe topology and per-stripe counters, exposed so tests can pin
  /// shard selection and assert that per-shard counters sum to stats().
  [[nodiscard]] std::size_t doc_shard_count() const { return doc_shards_.size(); }
  [[nodiscard]] std::size_t pi_shard_count() const { return pi_shards_.size(); }
  [[nodiscard]] std::size_t doc_shard_index(const std::string& exact_key) const;
  [[nodiscard]] std::size_t pi_shard_index(const std::string& structure_key) const;
  /// Counters of one document shard (doc_* fields and `documents` only).
  [[nodiscard]] PlanCacheStats doc_shard_stats(std::size_t shard) const;
  /// Counters of one skeleton shard (pi_* fields and `skeletons` only).
  [[nodiscard]] PlanCacheStats pi_shard_stats(std::size_t shard) const;

 private:
  template <typename V>
  struct LruMap {
    // Recency list, most-recent first; map values carry the list iterator.
    std::list<std::string> order;
    std::map<std::string, std::pair<std::list<std::string>::iterator, V>> entries;

    V* find(const std::string& key) {
      auto it = entries.find(key);
      if (it == entries.end()) return nullptr;
      order.splice(order.begin(), order, it->second.first);
      return &it->second.second;
    }
    /// Inserts (or overwrites) and returns true when the LRU entry was
    /// evicted to make room.
    bool insert(const std::string& key, V value, std::size_t capacity) {
      auto it = entries.find(key);
      if (it != entries.end()) {
        it->second.second = std::move(value);
        order.splice(order.begin(), order, it->second.first);
        return false;
      }
      bool evicted = false;
      if (capacity > 0 && entries.size() >= capacity) {
        entries.erase(order.back());
        order.pop_back();
        evicted = true;
      }
      order.push_front(key);
      entries.emplace(key, std::make_pair(order.begin(), std::move(value)));
      return evicted;
    }
  };

  /// One lock stripe of one tier.  Heap-allocated because std::mutex is
  /// immovable; `capacity` is this stripe's slice of the tier capacity.
  template <typename V>
  struct Shard {
    mutable std::mutex mutex;
    LruMap<V> entries;
    std::size_t capacity = 0;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
  };
  using DocShard = Shard<std::shared_ptr<const CachedDocument>>;
  using PiShard = Shard<IntVec>;

  const std::size_t doc_capacity_;
  const std::size_t skeleton_capacity_;
  obs::MetricsRegistry* metrics_;

  std::vector<std::unique_ptr<DocShard>> doc_shards_;
  std::vector<std::unique_ptr<PiShard>> pi_shards_;
};

}  // namespace hypart::serve
