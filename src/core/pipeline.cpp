#include "core/pipeline.hpp"

#include <sstream>

#include "core/error.hpp"

namespace hypart {

PipelineResult run_pipeline(const LoopNest& nest, const PipelineConfig& config) {
  PipelineResult r;
  obs::TraceSink* sink = config.obs.trace;
  obs::MetricsRegistry* reg = config.obs.metrics;
  if (sink != nullptr) {
    obs::emit_process_name(sink, obs::kPipelinePid, "hypart pipeline (wall clock)");
    obs::emit_thread_name(sink, obs::kPipelinePid, obs::kPipelineTid, "pipeline stages");
  }
  obs::ScopedSpan total_span(sink, "run_pipeline", "pipeline", obs::kPipelinePid,
                             obs::kPipelineTid, {{"loop", nest.name()}});

  {
    obs::ScopedSpan span(sink, "dependence_analysis", "pipeline");
    r.dependence = analyze_dependences(nest, config.dependence);
    IndexSet is(nest);
    r.structure =
        std::make_unique<ComputationStructure>(is.points(), r.dependence.distance_vectors());
    span.arg("iterations", static_cast<std::int64_t>(r.structure->vertices().size()));
    span.arg("dependences", static_cast<std::int64_t>(r.dependence.dependences.size()));
  }
  if (reg != nullptr) {
    reg->add("pipeline.iterations", static_cast<std::int64_t>(r.structure->vertices().size()));
    reg->add("pipeline.dependences", static_cast<std::int64_t>(r.dependence.dependences.size()));
  }

  {
    obs::ScopedSpan span(sink, "time_function", "pipeline");
    if (config.time_function) {
      r.time_function = TimeFunction{*config.time_function};
      if (!is_valid_time_function(r.time_function, r.structure->dependences()))
        throw Error(ErrorKind::Config, "run_pipeline: supplied time function is invalid");
    } else {
      std::optional<TimeFunction> tf = search_time_function(*r.structure, config.tf_search);
      if (!tf)
        throw Error(ErrorKind::Unsatisfiable,
                    "run_pipeline: no valid time function found in the search box; widen "
                    "tf_search.max_coefficient");
      r.time_function = *tf;
    }
    span.arg("pi", r.time_function.to_string());
  }

  {
    obs::ScopedSpan span(sink, "partition", "pipeline");
    r.projected = std::make_unique<ProjectedStructure>(*r.structure, r.time_function);
    r.grouping = Grouping::compute(*r.projected, config.grouping);
    r.partition = Partition::build(*r.structure, r.grouping);
    r.stats = compute_partition_stats(*r.structure, r.partition);
    span.arg("blocks", static_cast<std::int64_t>(r.partition.block_count()));
    span.arg("interblock_arcs", static_cast<std::int64_t>(r.stats.interblock_arcs));
  }
  if (reg != nullptr) {
    reg->add("pipeline.projected_points", static_cast<std::int64_t>(r.projected->point_count()));
    reg->add("pipeline.blocks", static_cast<std::int64_t>(r.partition.block_count()));
    reg->add("pipeline.interblock_arcs", static_cast<std::int64_t>(r.stats.interblock_arcs));
    reg->add("pipeline.total_arcs", static_cast<std::int64_t>(r.stats.total_arcs));
  }

  {
    obs::ScopedSpan span(sink, "mapping", "pipeline");
    r.tig = TaskInteractionGraph::from_partition(*r.structure, r.partition, r.grouping);
    HypercubeMapOptions map_opts = config.mapping;
    map_opts.obs = config.obs;
    r.mapping = map_to_hypercube(r.tig, config.cube_dim, map_opts);
    span.arg("processors", static_cast<std::int64_t>(r.mapping.mapping.processor_count));
  }

  Hypercube cube(config.cube_dim);
  SimOptions sim_opts = config.sim;
  sim_opts.flops_per_iteration = config.flops_override.value_or(nest.body_flops());
  sim_opts.obs = config.obs;
  {
    obs::ScopedSpan span(sink, "simulate", "pipeline");
    r.sim = simulate_execution(*r.structure, r.time_function, r.partition, r.mapping.mapping,
                               cube, config.machine, sim_opts);
  }

  if (config.validate) {
    obs::ScopedSpan span(sink, "validate", "pipeline");
    r.exact_cover = check_exact_cover(*r.structure, r.partition);
    r.theorem1 = check_theorem1(*r.structure, r.time_function, r.partition);
    r.theorem2 = check_theorem2(r.grouping);
    r.lemmas = check_lemmas(r.grouping);
  }

  if (reg != nullptr) r.metrics = reg->snapshot();
  return r;
}

std::string PipelineResult::summary() const {
  std::ostringstream os;
  os << "iterations=" << structure->vertices().size()
     << " deps=" << structure->dependences().size() << " Pi=" << time_function.to_string()
     << " projected_points=" << projected->point_count() << " r=" << grouping.group_size_r()
     << " groups=" << grouping.group_count() << " interblock=" << stats.interblock_arcs << "/"
     << stats.total_arcs << " procs=" << mapping.mapping.processor_count
     << " T=" << sim.total.to_string();
  return os.str();
}

}  // namespace hypart
