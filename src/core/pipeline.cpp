#include "core/pipeline.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "core/error.hpp"
#include "partition/symbolic.hpp"

namespace hypart {

const char* to_string(SpaceMode mode) {
  switch (mode) {
    case SpaceMode::Dense: return "dense";
    case SpaceMode::Symbolic: return "symbolic";
    case SpaceMode::Verify: return "verify";
  }
  return "unknown";
}

const char* to_string(ExecBackend backend) {
  switch (backend) {
    case ExecBackend::Threads: return "threads";
    case ExecBackend::Procs: return "procs";
  }
  return "unknown";
}

namespace {

IterSpace build_iter_space(const LoopNest& nest, const DependenceInfo& dep, SpaceMode mode) {
  // Any affine-bounded nest decomposes into slabs; only a decomposition too
  // large to beat dense enumeration is refused (IterSpace throws
  // std::length_error), which we surface as a config error.
  try {
    return IterSpace(nest, dep.distance_vectors());
  } catch (const std::length_error& e) {
    throw Error(ErrorKind::Config, std::string("run_pipeline: space_mode=") + to_string(mode) +
                                       ": " + e.what() + "; use space_mode=dense");
  }
}

void emit_pipeline_names(obs::TraceSink* sink) {
  if (sink == nullptr) return;
  obs::emit_process_name(sink, obs::kPipelinePid, "hypart pipeline (wall clock)");
  obs::emit_thread_name(sink, obs::kPipelinePid, obs::kPipelineTid, "pipeline stages");
}

TimeFunction choose_time_function(const PipelineConfig& config,
                                  const std::vector<IntVec>& dependences,
                                  const std::optional<TimeFunction>& searched) {
  if (config.time_function) {
    TimeFunction tf{*config.time_function};
    if (!is_valid_time_function(tf, dependences))
      throw Error(ErrorKind::Config, "run_pipeline: supplied time function is invalid");
    return tf;
  }
  if (!searched)
    throw Error(ErrorKind::Unsatisfiable,
                "run_pipeline: no valid time function found in the search box; widen "
                "tf_search.max_coefficient");
  return *searched;
}

PipelineResult run_dense(const LoopNest& nest, const PipelineConfig& config) {
  PipelineResult r;
  r.space_mode = SpaceMode::Dense;
  obs::TraceSink* sink = config.obs.trace;
  obs::MetricsRegistry* reg = config.obs.metrics;
  emit_pipeline_names(sink);
  obs::Span total_span(sink, "run_pipeline", "pipeline", obs::kPipelinePid,
                             obs::kPipelineTid, {{"loop", nest.name()}});

  {
    obs::Span span(sink, "dependence_analysis", "pipeline");
    r.dependence = analyze_dependences(nest, config.dependence);
    IndexSet is(nest);
    r.structure =
        std::make_unique<ComputationStructure>(is.points(), r.dependence.distance_vectors());
    span.arg("iterations", static_cast<std::int64_t>(r.structure->vertices().size()));
    span.arg("dependences", static_cast<std::int64_t>(r.dependence.dependences.size()));
  }
  if (reg != nullptr) {
    reg->add("pipeline.iterations", static_cast<std::int64_t>(r.structure->vertices().size()));
    reg->add("pipeline.dependences", static_cast<std::int64_t>(r.dependence.dependences.size()));
    reg->add("pipeline.points_materialized",
             static_cast<std::int64_t>(r.structure->vertices().size()));
  }

  {
    obs::Span span(sink, "time_function", "pipeline");
    std::optional<TimeFunction> searched;
    if (!config.time_function) searched = search_time_function(*r.structure, config.tf_search);
    r.time_function = choose_time_function(config, r.structure->dependences(), searched);
    span.arg("pi", r.time_function.to_string());
  }

  {
    obs::Span span(sink, "partition", "pipeline");
    r.projected = std::make_unique<ProjectedStructure>(*r.structure, r.time_function);
    r.grouping = Grouping::compute(*r.projected, config.grouping);
    r.partition = Partition::build(*r.structure, r.grouping);
    r.stats = compute_partition_stats(*r.structure, r.partition);
    r.block_sizes.reserve(r.partition.block_count());
    for (const PartitionBlock& b : r.partition.blocks())
      r.block_sizes.push_back(static_cast<std::int64_t>(b.iterations.size()));
    span.arg("blocks", static_cast<std::int64_t>(r.partition.block_count()));
    span.arg("interblock_arcs", static_cast<std::int64_t>(r.stats.interblock_arcs));
  }
  if (reg != nullptr) {
    reg->add("pipeline.projected_points", static_cast<std::int64_t>(r.projected->point_count()));
    reg->add("pipeline.blocks", static_cast<std::int64_t>(r.partition.block_count()));
    reg->add("pipeline.groups_materialized",
             static_cast<std::int64_t>(r.partition.block_count()));
    reg->add("pipeline.interblock_arcs", static_cast<std::int64_t>(r.stats.interblock_arcs));
    reg->add("pipeline.total_arcs", static_cast<std::int64_t>(r.stats.total_arcs));
  }

  {
    obs::Span span(sink, "mapping", "pipeline");
    r.tig = TaskInteractionGraph::from_partition(*r.structure, r.partition, r.grouping);
    HypercubeMapOptions map_opts = config.mapping;
    map_opts.obs = config.obs;
    r.mapping = map_to_hypercube(r.tig, config.cube_dim, map_opts);
    span.arg("processors", static_cast<std::int64_t>(r.mapping.mapping.processor_count));
  }

  Hypercube cube(config.cube_dim);
  SimOptions sim_opts = config.sim;
  sim_opts.flops_per_iteration = config.flops_override.value_or(nest.body_flops());
  sim_opts.obs = config.obs;
  {
    obs::Span span(sink, "simulate", "pipeline");
    r.sim = simulate_execution(*r.structure, r.time_function, r.partition, r.mapping.mapping,
                               cube, config.machine, sim_opts);
  }

  if (config.validate) {
    obs::Span span(sink, "validate", "pipeline");
    r.exact_cover = check_exact_cover(*r.structure, r.partition);
    r.theorem1 = check_theorem1(*r.structure, r.time_function, r.partition);
    r.theorem2 = check_theorem2(r.grouping);
    r.lemmas = check_lemmas(r.grouping);
  }
  return r;
}

PipelineResult run_symbolic(const LoopNest& nest, const PipelineConfig& config) {
  PipelineResult r;
  r.space_mode = SpaceMode::Symbolic;
  obs::TraceSink* sink = config.obs.trace;
  obs::MetricsRegistry* reg = config.obs.metrics;
  emit_pipeline_names(sink);
  obs::Span total_span(sink, "run_pipeline", "pipeline", obs::kPipelinePid,
                             obs::kPipelineTid, {{"loop", nest.name()}});

  {
    obs::Span span(sink, "dependence_analysis", "pipeline");
    r.dependence = analyze_dependences(nest, config.dependence);
    r.space = std::make_unique<IterSpace>(
        build_iter_space(nest, r.dependence, SpaceMode::Symbolic));
    span.arg("iterations", static_cast<std::int64_t>(r.space->size()));
    span.arg("dependences", static_cast<std::int64_t>(r.dependence.dependences.size()));
  }
  if (reg != nullptr) {
    reg->add("pipeline.iterations", static_cast<std::int64_t>(r.space->size()));
    reg->add("pipeline.dependences", static_cast<std::int64_t>(r.dependence.dependences.size()));
    reg->add("pipeline.points_materialized", 0);
    reg->add("pipeline.slabs", static_cast<std::int64_t>(r.space->slab_count()));
  }

  {
    obs::Span span(sink, "time_function", "pipeline");
    std::optional<TimeFunction> searched;
    if (!config.time_function) searched = search_time_function(*r.space, config.tf_search);
    r.time_function = choose_time_function(config, r.space->dependences(), searched);
    span.arg("pi", r.time_function.to_string());
  }

  Hypercube cube(config.cube_dim);
  SimOptions sim_opts = config.sim;
  sim_opts.flops_per_iteration = config.flops_override.value_or(nest.body_flops());
  sim_opts.obs = config.obs;

  // Pure lattice path: when the closed forms apply, grouping, mapping,
  // statistics, simulation, and the theorem checks all run off the
  // GroupLattice — no ProjectedStructure, no Group objects, no per-group
  // vectors (pipeline.groups_materialized = 0).
  std::optional<GroupLattice> built;
  std::string fallback_reason;
  {
    obs::Span span(sink, "lattice_build", "pipeline");
    built = GroupLattice::build(*r.space, r.time_function, config.grouping, &fallback_reason);
    // Weighted plane mapping is not closed-form (hypercube_map.hpp); route
    // the whole run through the line-based fallback rather than mixing
    // lattice grouping with a dense mapper.
    if (built && config.mapping.weighted && built->layout() == LatticeLayout::Plane) {
      built.reset();
      fallback_reason = "weighted-plane-mapping";
    }
    span.arg("admitted", static_cast<std::int64_t>(built.has_value() ? 1 : 0));
    if (!built) span.arg("fallback_reason", fallback_reason);
  }
  if (!built && reg != nullptr)
    reg->add("pipeline.lattice_fallback." + fallback_reason);
  if (built) {
    r.lattice = std::make_unique<GroupLattice>(std::move(*built));
    LatticeSweepResult sweep;
    {
      obs::Span span(sink, "partition", "pipeline");
      sweep = r.lattice->sweep(config.validate);
      r.stats = sweep.partition;
      r.lattice_stats = sweep.stats;
      span.arg("blocks", static_cast<std::int64_t>(sweep.stats.group_count));
      span.arg("interblock_arcs", static_cast<std::int64_t>(r.stats.interblock_arcs));
    }
    if (reg != nullptr) {
      reg->add("pipeline.projected_points", static_cast<std::int64_t>(r.lattice->line_count()));
      reg->add("pipeline.blocks", static_cast<std::int64_t>(sweep.stats.group_count));
      reg->add("pipeline.groups_materialized", 0);
      reg->add("pipeline.interblock_arcs", static_cast<std::int64_t>(r.stats.interblock_arcs));
      reg->add("pipeline.total_arcs", static_cast<std::int64_t>(r.stats.total_arcs));
    }
    {
      obs::Span span(sink, "mapping", "pipeline");
      HypercubeMapOptions map_opts = config.mapping;
      map_opts.obs = config.obs;
      r.lattice_mapping = map_to_hypercube(*r.lattice, config.cube_dim, map_opts);
      span.arg("processors", static_cast<std::int64_t>(r.lattice_mapping->processor_count));
    }
    {
      obs::Span span(sink, "simulate", "pipeline");
      r.sim = simulate_execution(*r.lattice, *r.lattice_mapping, cube, config.machine, sim_opts);
    }
    if (config.validate) {
      r.exact_cover = sweep.exact_cover;
      r.theorem1 = sweep.theorem1;
      r.theorem2 = sweep.theorem2;
      r.lemmas = sweep.lemmas;
    }
    return r;
  }

  // Fallback: the line-based symbolic path (still point-free, but one Group
  // per group is materialized — the metric records how many).
  {
    obs::Span span(sink, "partition", "pipeline");
    r.projected = std::make_unique<ProjectedStructure>(*r.space, r.time_function);
    r.grouping = Grouping::compute(*r.projected, config.grouping);
    r.block_sizes = symbolic_block_sizes(r.grouping);
    r.stats = compute_partition_stats(*r.space, r.grouping);
    span.arg("blocks", static_cast<std::int64_t>(r.block_sizes.size()));
    span.arg("interblock_arcs", static_cast<std::int64_t>(r.stats.interblock_arcs));
  }
  if (reg != nullptr) {
    reg->add("pipeline.projected_points", static_cast<std::int64_t>(r.projected->point_count()));
    reg->add("pipeline.blocks", static_cast<std::int64_t>(r.block_sizes.size()));
    reg->add("pipeline.groups_materialized", static_cast<std::int64_t>(r.grouping.group_count()));
    reg->add("pipeline.interblock_arcs", static_cast<std::int64_t>(r.stats.interblock_arcs));
    reg->add("pipeline.total_arcs", static_cast<std::int64_t>(r.stats.total_arcs));
  }

  {
    obs::Span span(sink, "mapping", "pipeline");
    r.tig = TaskInteractionGraph::from_symbolic(*r.space, r.grouping);
    HypercubeMapOptions map_opts = config.mapping;
    map_opts.obs = config.obs;
    r.mapping = map_to_hypercube(r.tig, config.cube_dim, map_opts);
    span.arg("processors", static_cast<std::int64_t>(r.mapping.mapping.processor_count));
  }

  {
    obs::Span span(sink, "simulate", "pipeline");
    r.sim = simulate_execution(*r.space, r.grouping, r.mapping.mapping, cube, config.machine,
                               sim_opts);
  }

  if (config.validate) {
    obs::Span span(sink, "validate", "pipeline");
    r.exact_cover = check_exact_cover(*r.space, r.grouping);
    r.theorem1 = check_theorem1(*r.space, r.grouping);
    r.theorem2 = check_theorem2(r.grouping);
    r.lemmas = check_lemmas(r.grouping);
  }
  return r;
}

bool digraph_weights_equal(const Digraph& a, const Digraph& b) {
  if (a.vertex_count() != b.vertex_count() || a.edge_count() != b.edge_count()) return false;
  for (std::size_t u = 0; u < a.vertex_count(); ++u) {
    if (a.out_degree(u) != b.out_degree(u)) return false;
    for (const Digraph::Edge& e : a.out_edges(u))
      if (b.edge_weight(u, e.to) != e.weight) return false;
  }
  return true;
}

/// Re-derive every stage of a dense run symbolically and compare; throws
/// Error(ErrorKind::Internal) naming the first stage that disagrees.
void verify_against_symbolic(const LoopNest& nest, const PipelineConfig& config,
                             PipelineResult& r) {
  obs::Span span(config.obs.trace, "verify_symbolic", "pipeline");
  r.space = std::make_unique<IterSpace>(build_iter_space(nest, r.dependence, SpaceMode::Verify));
  auto fail = [](const std::string& what) {
    throw Error(ErrorKind::Internal,
                "run_pipeline: space_mode=verify: symbolic/dense disagreement on " + what);
  };

  ProjectedStructure sym_ps(*r.space, r.time_function);
  if (sym_ps.points() != r.projected->points()) fail("projected points");
  for (std::size_t id = 0; id < sym_ps.point_count(); ++id) {
    if (sym_ps.line_population(id) != r.projected->line_population(id))
      fail("line populations");
    if (sym_ps.line_representative(id) != r.projected->line_representative(id))
      fail("line representatives");
  }

  if (symbolic_block_sizes(r.grouping) != r.block_sizes) fail("block sizes");

  PartitionStats sym_stats = compute_partition_stats(*r.space, r.grouping);
  if (sym_stats.total_arcs != r.stats.total_arcs ||
      sym_stats.interblock_arcs != r.stats.interblock_arcs ||
      sym_stats.intrablock_arcs != r.stats.intrablock_arcs)
    fail("partition stats");
  if (!digraph_weights_equal(sym_stats.block_comm, r.stats.block_comm))
    fail("block communication graph");

  TaskInteractionGraph sym_tig = TaskInteractionGraph::from_symbolic(*r.space, r.grouping);
  if (sym_tig.vertex_count() != r.tig.vertex_count() || sym_tig.edges() != r.tig.edges())
    fail("task interaction graph");
  for (std::size_t v = 0; v < sym_tig.vertex_count(); ++v) {
    if (sym_tig.compute_weight(v) != r.tig.compute_weight(v)) fail("TIG vertex weights");
    if (sym_tig.coordinates(v) != r.tig.coordinates(v)) fail("TIG coordinates");
  }

  // The line-based symbolic simulator models fault plans with the dense
  // block ids and the same remap/detour machinery, so the cross-check holds
  // under any plan — including the degraded fields.
  {
    Hypercube cube(config.cube_dim);
    SimOptions sim_opts = config.sim;
    sim_opts.flops_per_iteration = config.flops_override.value_or(nest.body_flops());
    sim_opts.obs = {};  // the dense run already recorded this pipeline's telemetry
    SimResult sym = simulate_execution(*r.space, r.grouping, r.mapping.mapping, cube,
                                       config.machine, sim_opts);
    if (!(sym.total == r.sim.total) || sym.steps != r.sim.steps ||
        sym.messages != r.sim.messages || sym.words != r.sim.words ||
        !(sym.compute_bottleneck == r.sim.compute_bottleneck) ||
        !(sym.comm_bottleneck == r.sim.comm_bottleneck) ||
        sym.max_link_words != r.sim.max_link_words ||
        sym.per_proc_iterations != r.sim.per_proc_iterations)
      fail("simulation results");
    if (sym.failed_nodes != r.sim.failed_nodes || sym.failed_links != r.sim.failed_links ||
        sym.rerouted_messages != r.sim.rerouted_messages ||
        sym.migrated_blocks != r.sim.migrated_blocks ||
        !(sym.migration_cost == r.sim.migration_cost))
      fail("degraded simulation results");
  }

  if (config.validate) {
    if (check_exact_cover(*r.space, r.grouping) != r.exact_cover) fail("exact-cover check");
    if (check_theorem1(*r.space, r.grouping) != r.theorem1) fail("Theorem 1 check");
  }

  // Closed-form group-lattice cross-checks: when the lattice gate admits
  // this nest, every lattice-derived quantity (grouping, statistics, TIG
  // arc classes, cube assignment, simulation, theorem verdicts) must match
  // the dense stages exactly.
  if (auto lat = GroupLattice::build(*r.space, r.time_function, config.grouping)) {
    if (lat->line_count() != r.projected->point_count()) fail("lattice line count");
    if (lat->group_count() != r.grouping.group_count()) fail("lattice group count");
    if (lat->group_size_r() != r.grouping.group_size_r()) fail("lattice group size r");
    if (lat->beta() != r.grouping.beta()) fail("lattice beta");
    // Dense group id -> lattice GroupKey, built from the dense Group's own
    // lattice coordinates and component id (sorted order when degenerate —
    // dense creation order is the lex seed order there).
    auto key_of = [&](std::size_t gid) -> GroupLattice::GroupKey {
      if (lat->degenerate()) return lat->group_at_sorted_index(gid);
      const Group& g = r.grouping.groups()[gid];
      if (lat->layout() == LatticeLayout::Plane)
        return {g.lattice.at(0), g.lattice.at(1), 0};
      return {g.lattice.at(0), 0, static_cast<std::int64_t>(g.component)};
    };
    for (std::size_t gid = 0; gid < r.grouping.group_count(); ++gid) {
      GroupLattice::GroupKey key = key_of(gid);
      if (lat->group_lattice_coord(key) != r.grouping.groups()[gid].lattice)
        fail("lattice group coordinates");
      if (lat->group_population(key) != r.block_sizes[gid]) fail("lattice group populations");
    }

    LatticeSweepResult sweep = lat->sweep(config.validate);
    if (sweep.stats.group_count != r.grouping.group_count() ||
        sweep.stats.total_iterations != r.space->size() ||
        sweep.stats.min_block !=
            *std::min_element(r.block_sizes.begin(), r.block_sizes.end()) ||
        sweep.stats.max_block != *std::max_element(r.block_sizes.begin(), r.block_sizes.end()))
      fail("lattice block statistics");
    if (sweep.partition.total_arcs != r.stats.total_arcs ||
        sweep.partition.interblock_arcs != r.stats.interblock_arcs ||
        sweep.partition.intrablock_arcs != r.stats.intrablock_arcs)
      fail("lattice partition stats");

    // Per-(dependence, group-offset) arc weights: re-aggregate the dense
    // line bundles by lattice offset and compare maps.
    std::map<std::pair<std::size_t, LatticeSweepResult::GroupOffset>, std::int64_t>
        dense_offsets;
    for_each_line_dep(*r.space, sym_ps, [&](const LineDepArcs& b) {
      GroupLattice::GroupKey ks = key_of(r.grouping.group_of_point(b.point));
      GroupLattice::GroupKey kt = key_of(r.grouping.group_of_point(b.target));
      LatticeSweepResult::GroupOffset off{kt.a - ks.a, kt.b - ks.b, kt.comp - ks.comp};
      dense_offsets[{b.dep, off}] += b.count;
    });
    if (dense_offsets != sweep.offset_weights) fail("lattice offset weights");

    // Weighted plane mapping has no closed form (run_symbolic falls back to
    // the line path there), so the mapping/simulation cross-checks only run
    // when the lattice mapper applies.
    if (!(config.mapping.weighted && lat->layout() == LatticeLayout::Plane)) {
      HypercubeMapOptions map_opts = config.mapping;
      map_opts.obs = {};
      LatticeHypercubeMapping lmap = map_to_hypercube(*lat, config.cube_dim, map_opts);
      if (lmap.processor_count != r.mapping.mapping.processor_count)
        fail("lattice processor count");
      for (std::size_t gid = 0; gid < r.grouping.group_count(); ++gid)
        if (lmap.proc_of_group(*lat, key_of(gid)) != r.mapping.mapping.block_to_proc[gid])
          fail("lattice processor assignment");

      // The lattice simulator indexes blocks in sorted order, the dense one
      // in creation order; node-failure remaps break ties on block id, so
      // the cross-check covers fault sets without node failures (link-only
      // plans never consult block ids).
      Hypercube cube(config.cube_dim);
      const bool node_faults = !config.sim.faults.machine_empty() &&
                               config.sim.faults.resolve(cube).failed_node_count() > 0;
      if (!node_faults) {
        SimOptions sim_opts = config.sim;
        sim_opts.flops_per_iteration = config.flops_override.value_or(nest.body_flops());
        sim_opts.obs = {};
        SimResult ls = simulate_execution(*lat, lmap, cube, config.machine, sim_opts);
        if (!(ls.total == r.sim.total) || ls.steps != r.sim.steps ||
            ls.messages != r.sim.messages || ls.words != r.sim.words ||
            !(ls.compute_bottleneck == r.sim.compute_bottleneck) ||
            !(ls.comm_bottleneck == r.sim.comm_bottleneck) ||
            ls.max_link_words != r.sim.max_link_words ||
            ls.per_proc_iterations != r.sim.per_proc_iterations ||
            ls.failed_links != r.sim.failed_links ||
            ls.rerouted_messages != r.sim.rerouted_messages)
          fail("lattice simulation results");
      }
    }

    if (config.validate) {
      if (sweep.exact_cover != r.exact_cover) fail("lattice exact-cover check");
      if (sweep.theorem1 != r.theorem1) fail("lattice Theorem 1 check");
      if (sweep.theorem2.m != r.theorem2.m || sweep.theorem2.beta != r.theorem2.beta ||
          sweep.theorem2.bound != r.theorem2.bound ||
          sweep.theorem2.max_out_degree != r.theorem2.max_out_degree ||
          sweep.theorem2.holds != r.theorem2.holds)
        fail("lattice Theorem 2 report");
      if (sweep.lemmas.lemma2_holds != r.lemmas.lemma2_holds ||
          sweep.lemmas.lemma3_holds != r.lemmas.lemma3_holds ||
          sweep.lemmas.worst_lemma2_fanout != r.lemmas.worst_lemma2_fanout ||
          sweep.lemmas.worst_lemma3_fanout != r.lemmas.worst_lemma3_fanout)
        fail("lattice lemma report");
    }
  }
}

}  // namespace

PipelineResult run_pipeline(const LoopNest& nest, const PipelineConfig& config) {
  obs::MetricsRegistry* reg = config.obs.metrics;
  if (reg != nullptr)
    reg->add(std::string("pipeline.space_mode.") + to_string(config.space_mode));

  PipelineResult r;
  switch (config.space_mode) {
    case SpaceMode::Dense:
      r = run_dense(nest, config);
      break;
    case SpaceMode::Symbolic:
      r = run_symbolic(nest, config);
      break;
    case SpaceMode::Verify:
      r = run_dense(nest, config);
      r.space_mode = SpaceMode::Verify;
      verify_against_symbolic(nest, config, r);
      break;
  }

  if (reg != nullptr) r.metrics = reg->snapshot();
  return r;
}

std::uint64_t PipelineResult::iteration_count() const {
  if (structure) return static_cast<std::uint64_t>(structure->vertices().size());
  if (space) return space->size();
  return 0;
}

std::string PipelineResult::summary() const {
  const std::size_t deps = structure ? structure->dependences().size()
                                     : (space ? space->dependences().size() : 0);
  std::ostringstream os;
  os << "iterations=" << iteration_count() << " deps=" << deps
     << " Pi=" << time_function.to_string();
  if (lattice) {
    os << " projected_points=" << lattice->line_count() << " r=" << lattice->group_size_r()
       << " groups=" << lattice->group_count();
  } else {
    os << " projected_points=" << projected->point_count() << " r=" << grouping.group_size_r()
       << " groups=" << grouping.group_count();
  }
  os << " interblock=" << stats.interblock_arcs << "/" << stats.total_arcs
     << " procs="
     << (lattice_mapping ? lattice_mapping->processor_count : mapping.mapping.processor_count)
     << " T=" << sim.total.to_string();
  return os.str();
}

}  // namespace hypart
