#include "core/pipeline.hpp"

#include <sstream>
#include <stdexcept>

namespace hypart {

PipelineResult run_pipeline(const LoopNest& nest, const PipelineConfig& config) {
  PipelineResult r;

  r.dependence = analyze_dependences(nest, config.dependence);
  IndexSet is(nest);
  r.structure =
      std::make_unique<ComputationStructure>(is.points(), r.dependence.distance_vectors());

  if (config.time_function) {
    r.time_function = TimeFunction{*config.time_function};
    if (!is_valid_time_function(r.time_function, r.structure->dependences()))
      throw std::invalid_argument("run_pipeline: supplied time function is invalid");
  } else {
    std::optional<TimeFunction> tf = search_time_function(*r.structure, config.tf_search);
    if (!tf)
      throw std::runtime_error(
          "run_pipeline: no valid time function found in the search box; widen "
          "tf_search.max_coefficient");
    r.time_function = *tf;
  }

  r.projected = std::make_unique<ProjectedStructure>(*r.structure, r.time_function);
  r.grouping = Grouping::compute(*r.projected, config.grouping);
  r.partition = Partition::build(*r.structure, r.grouping);
  r.stats = compute_partition_stats(*r.structure, r.partition);
  r.tig = TaskInteractionGraph::from_partition(*r.structure, r.partition, r.grouping);
  r.mapping = map_to_hypercube(r.tig, config.cube_dim, config.mapping);

  Hypercube cube(config.cube_dim);
  SimOptions sim_opts = config.sim;
  sim_opts.flops_per_iteration = config.flops_override.value_or(nest.body_flops());
  r.sim = simulate_execution(*r.structure, r.time_function, r.partition, r.mapping.mapping, cube,
                             config.machine, sim_opts);

  if (config.validate) {
    r.exact_cover = check_exact_cover(*r.structure, r.partition);
    r.theorem1 = check_theorem1(*r.structure, r.time_function, r.partition);
    r.theorem2 = check_theorem2(r.grouping);
    r.lemmas = check_lemmas(r.grouping);
  }
  return r;
}

std::string PipelineResult::summary() const {
  std::ostringstream os;
  os << "iterations=" << structure->vertices().size()
     << " deps=" << structure->dependences().size() << " Pi=" << time_function.to_string()
     << " projected_points=" << projected->point_count() << " r=" << grouping.group_size_r()
     << " groups=" << grouping.group_count() << " interblock=" << stats.interblock_arcs << "/"
     << stats.total_arcs << " procs=" << mapping.mapping.processor_count
     << " T=" << sim.total.to_string();
  return os.str();
}

}  // namespace hypart
