// hypart — minimal JSON string builder with correct escaping/formatting.
//
// Shared by the pipeline exporter (core/json_export.hpp) and the
// observability layer (obs/); self-contained, no external JSON dependency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace hypart {

/// A minimal JSON string builder with correct escaping/formatting.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array(const std::string& key = "");
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& field(const std::string& k, const std::string& v);
  /// Without this overload a string literal would silently pick the bool
  /// overload (pointer-to-bool beats pointer-to-std::string).
  JsonWriter& field(const std::string& k, const char* v);
  JsonWriter& field(const std::string& k, double v);
  JsonWriter& field(const std::string& k, std::int64_t v);
  JsonWriter& field(const std::string& k, std::uint64_t v);
  JsonWriter& field(const std::string& k, bool v);
  /// Splice an already-serialized JSON value verbatim (caller guarantees
  /// validity); used to embed sub-documents like a metrics snapshot.
  JsonWriter& raw_value(const std::string& json);

  [[nodiscard]] std::string str() const { return out_; }
  /// Bytes emitted so far — a cheap cursor for template builders that
  /// record splice positions mid-stream (serve/replay.hpp).
  [[nodiscard]] std::size_t size() const { return out_.size(); }
  /// Direct mutable access to the output buffer in value position: emits
  /// the pending comma, marks one value as written, and returns the buffer
  /// so the caller can append a complete pre-rendered JSON value in place
  /// (the serve replay path splices kilobyte-scale cached fragments this
  /// way without an intermediate string).
  [[nodiscard]] std::string& raw_buffer() {
    comma();
    need_comma_ = true;
    return out_;
  }

  /// Escape `s` as a JSON string literal (including the surrounding quotes).
  [[nodiscard]] static std::string escape(const std::string& s);

 private:
  void comma();

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace hypart
