#include "core/io_util.hpp"

#include <cerrno>
#include <csignal>
#include <ctime>
#include <unistd.h>

namespace hypart {

void ignore_sigpipe() {
  // Plain signal() is enough: SIG_IGN is inherited across fork and we never
  // need the old handler back.  Guard so repeated calls stay cheap.
  static bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

ssize_t read_full(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return static_cast<ssize_t>(got);  // EOF: short (truncated) read
    if (errno == EINTR) continue;
    return -1;
  }
  return static_cast<ssize_t>(got);
}

bool write_full(int fd, const void* buf, std::size_t n, int max_retries, int* retries_out) {
  const char* p = static_cast<const char*>(buf);
  std::size_t sent = 0;
  int retries = 0;
  while (sent < n) {
    ssize_t w = ::write(fd, p + sent, n - sent);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    const bool transient = w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK ||
                                     errno == ENOBUFS);
    if (!transient) return false;  // hard error (EPIPE, EBADF, ...)
    if (retries >= max_retries) return false;
    // Exponential backoff: 1, 2, 4, ... ms, capped at 64 ms per sleep.
    long ms = 1L << (retries < 6 ? retries : 6);
    ++retries;
    if (retries_out != nullptr) ++*retries_out;
    timespec ts{};
    ts.tv_sec = ms / 1000;
    ts.tv_nsec = (ms % 1000) * 1000000L;
    ::nanosleep(&ts, nullptr);
  }
  return true;
}

}  // namespace hypart
