#include "core/json_export.hpp"

#include <charconv>

namespace hypart {

namespace {

void write_intvec(JsonWriter& w, const IntVec& v) {
  w.begin_array();
  for (std::int64_t x : v) w.value(x);
  w.end_array();
}

}  // namespace

std::string pipeline_result_to_json(const LoopNest& nest, const PipelineResult& r) {
  JsonWriter w;
  w.begin_object();
  w.field("loop", nest.name());
  w.field("depth", static_cast<std::uint64_t>(nest.depth()));
  w.field("space_mode", to_string(r.space_mode));
  w.field("iterations", r.iteration_count());

  w.begin_array("dependences");
  for (const Dependence& d : r.dependence.dependences) {
    w.begin_object();
    w.field("array", d.array);
    w.field("kind", to_string(d.kind));
    w.key("distance");
    write_intvec(w, d.distance);
    w.end_object();
  }
  w.end_array();

  w.key("time_function");
  write_intvec(w, r.time_function.pi);
  w.field("steps", r.sim.steps);

  w.key("partition").begin_object();
  if (r.lattice) {
    w.field("projected_points", r.lattice->line_count());
    w.field("group_size_r", r.lattice->group_size_r());
    w.field("beta", static_cast<std::uint64_t>(r.lattice->beta()));
    w.field("blocks", r.lattice->group_count());
    w.field("grouping_backend", "lattice");
    w.field("layout", r.lattice->layout() == LatticeLayout::Plane ? "plane" : "chain");
    w.field("components", r.lattice->component_count());
    if (r.lattice_stats) {
      w.field("min_block", r.lattice_stats->min_block);
      w.field("max_block", r.lattice_stats->max_block);
    }
  } else {
    w.field("projected_points", static_cast<std::uint64_t>(r.projected->point_count()));
    w.field("group_size_r", r.grouping.group_size_r());
    w.field("beta", static_cast<std::uint64_t>(r.grouping.beta()));
    w.field("blocks", static_cast<std::uint64_t>(r.block_sizes.size()));
  }
  w.field("total_arcs", static_cast<std::uint64_t>(r.stats.total_arcs));
  w.field("interblock_arcs", static_cast<std::uint64_t>(r.stats.interblock_arcs));
  w.end_object();

  w.key("mapping").begin_object();
  if (r.lattice_mapping) {
    w.field("processors", static_cast<std::uint64_t>(r.lattice_mapping->processor_count));
    w.field("method", r.lattice_mapping->method);
    // The per-block processor array is intentionally not emitted: the
    // lattice path never materializes it.  Chains emit the sorted-index
    // cluster boundaries; planes emit the per-aux-chain fragment runs.
    if (r.lattice_mapping->frag_b.empty()) {
      w.begin_array("cluster_boundaries");
      for (std::uint64_t b : r.lattice_mapping->boundaries) w.value(b);
      w.end_array();
    } else {
      w.begin_array("fragment_runs");
      for (std::size_t i = 0; i < r.lattice_mapping->frag_b.size(); ++i) {
        for (std::size_t k = r.lattice_mapping->frag_off[i];
             k < r.lattice_mapping->frag_off[i + 1]; ++k) {
          w.begin_object();
          w.field("b", r.lattice_mapping->frag_b[i]);
          w.field("a_from", r.lattice_mapping->frag_runs[k].first);
          w.field("proc", static_cast<std::uint64_t>(r.lattice_mapping->frag_runs[k].second));
          w.end_object();
        }
      }
      w.end_array();
    }
  } else {
    w.field("processors", static_cast<std::uint64_t>(r.mapping.mapping.processor_count));
    w.field("method", r.mapping.mapping.method);
    w.begin_array("block_to_proc");
    for (ProcId p : r.mapping.mapping.block_to_proc) w.value(static_cast<std::uint64_t>(p));
    w.end_array();
  }
  w.end_object();

  w.key("simulation").begin_object();
  w.field("t_calc_units", r.sim.total.calc);
  w.field("t_start_units", r.sim.total.start);
  w.field("t_comm_units", r.sim.total.comm);
  w.field("time", r.sim.time);
  w.field("messages", r.sim.messages);
  w.field("words", r.sim.words);
  w.key("faults").begin_object();
  w.field("failed_nodes", r.sim.failed_nodes);
  w.field("failed_links", r.sim.failed_links);
  w.field("rerouted_messages", r.sim.rerouted_messages);
  w.field("migrated_blocks", r.sim.migrated_blocks);
  w.field("migration_t_start_units", r.sim.migration_cost.start);
  w.field("migration_t_comm_units", r.sim.migration_cost.comm);
  w.end_object();
  w.end_object();

  w.key("validation").begin_object();
  w.field("exact_cover", r.exact_cover);
  w.field("theorem1", r.theorem1);
  w.field("theorem2", r.theorem2.holds);
  w.field("theorem2_bound", static_cast<std::uint64_t>(r.theorem2.bound));
  w.field("theorem2_max_out_degree", static_cast<std::uint64_t>(r.theorem2.max_out_degree));
  w.field("lemma2", r.lemmas.lemma2_holds);
  w.field("lemma3", r.lemmas.lemma3_holds);
  w.end_object();

  if (r.metrics) w.key("metrics").raw_value(r.metrics->to_json());

  w.end_object();
  return w.str();
}

}  // namespace hypart
