#include "core/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace hypart {

void JsonWriter::comma() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string r = "\"";
  for (char c : s) {
    switch (c) {
      case '"': r += "\\\""; break;
      case '\\': r += "\\\\"; break;
      case '\n': r += "\\n"; break;
      case '\t': r += "\\t"; break;
      case '\r': r += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          r += buf;
        } else {
          r += c;
        }
    }
  }
  return r + "\"";
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  need_comma_ = false;
  return *this;
}
JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::begin_array(const std::string& k) {
  if (!k.empty()) key(k);
  comma();
  out_ += '[';
  need_comma_ = false;
  return *this;
}
JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  out_ += escape(k);
  out_ += ':';
  need_comma_ = false;
  return *this;
}
JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ += escape(v);
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }
JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    // JSON has no NaN/Infinity literal; null is the lossless-in-kind choice
    // (readers see "value absent", never a locale-dependent "nan" token).
    out_ += "null";
  } else {
    // std::to_chars emits the shortest representation that round-trips
    // exactly, and never consults the C locale (no "1,5" under de_DE) —
    // both properties are pinned by tests/test_json_reader.cpp.
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof buf, v);
    out_.append(buf, res.ptr);
  }
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::raw_value(const std::string& json) {
  comma();
  out_ += json;
  need_comma_ = true;
  return *this;
}
JsonWriter& JsonWriter::field(const std::string& k, const std::string& v) {
  return key(k).value(v);
}
JsonWriter& JsonWriter::field(const std::string& k, const char* v) { return key(k).value(v); }
JsonWriter& JsonWriter::field(const std::string& k, double v) { return key(k).value(v); }
JsonWriter& JsonWriter::field(const std::string& k, std::int64_t v) { return key(k).value(v); }
JsonWriter& JsonWriter::field(const std::string& k, std::uint64_t v) { return key(k).value(v); }
JsonWriter& JsonWriter::field(const std::string& k, bool v) { return key(k).value(v); }

}  // namespace hypart
