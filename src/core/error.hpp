// hypart — typed error hierarchy.
//
// Every failure the library reports deliberately (bad configuration, parse
// failure, unsatisfiable search, injected fault, runtime stall) carries an
// ErrorKind so callers can react programmatically and the CLI can map each
// kind to a distinct, documented exit code (see docs/robustness.md).
// Invariant violations that indicate a hypart bug keep Kind::Internal.
#pragma once

#include <stdexcept>
#include <string>

namespace hypart {

enum class ErrorKind {
  Parse,          ///< source program cannot be tokenized/parsed
  Config,         ///< invalid configuration or API arguments
  Unsatisfiable,  ///< a search came up empty (e.g. no valid time function)
  Fault,          ///< invalid or unsurvivable fault plan / degraded machine
  Stall,          ///< runtime watchdog fired on a blocked receive
  WorkerDeath,    ///< message delivery to a dead worker's mailbox
  Io,             ///< file read/write failure
  Internal,       ///< invariant violation (a hypart bug)
  Overloaded,     ///< admission control rejected work (bounded queue full)
};

/// Stable lower-case name of a kind ("parse", "config", ...).
const char* to_string(ErrorKind kind);

/// Base of all hypart errors.  Derives std::runtime_error so existing
/// catch(const std::exception&) sites keep working.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  [[nodiscard]] ErrorKind kind() const { return kind_; }

  /// Documented CLI exit code for this kind (BSD sysexits where one fits):
  ///   Parse 65, Unsatisfiable 69, Internal 70, Io 74, Stall 75,
  ///   WorkerDeath 76, Fault 77, Config 78, Overloaded 79.
  [[nodiscard]] int exit_code() const;

 private:
  ErrorKind kind_;
};

/// The parallel runtime's stall watchdog fired: a blocking receive exceeded
/// its timeout.  `diagnostics()` holds the per-worker dump (proc id,
/// blocked-on vertex, outstanding message count, mailbox depth).
class StallError : public Error {
 public:
  StallError(const std::string& message, std::string diagnostics)
      : Error(ErrorKind::Stall, message + "\n" + diagnostics),
        diagnostics_(std::move(diagnostics)) {}

  [[nodiscard]] const std::string& diagnostics() const { return diagnostics_; }

 private:
  std::string diagnostics_;
};

/// Message delivery to a mailbox closed by (injected) worker death, after
/// the capped retry/backoff loop gave up.
class WorkerDeathError : public Error {
 public:
  explicit WorkerDeathError(const std::string& message)
      : Error(ErrorKind::WorkerDeath, message) {}
};

/// Invalid fault specification or a degraded machine the policy cannot
/// survive (e.g. a failed node with no live neighbor to migrate to).
class FaultError : public Error {
 public:
  explicit FaultError(const std::string& message) : Error(ErrorKind::Fault, message) {}
};

}  // namespace hypart
