#include "core/error.hpp"

namespace hypart {

const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::Parse: return "parse";
    case ErrorKind::Config: return "config";
    case ErrorKind::Unsatisfiable: return "unsatisfiable";
    case ErrorKind::Fault: return "fault";
    case ErrorKind::Stall: return "stall";
    case ErrorKind::WorkerDeath: return "worker-death";
    case ErrorKind::Io: return "io";
    case ErrorKind::Internal: return "internal";
    case ErrorKind::Overloaded: return "overloaded";
  }
  return "?";
}

int Error::exit_code() const {
  switch (kind_) {
    case ErrorKind::Parse: return 65;
    case ErrorKind::Unsatisfiable: return 69;
    case ErrorKind::Internal: return 70;
    case ErrorKind::Io: return 74;
    case ErrorKind::Stall: return 75;
    case ErrorKind::WorkerDeath: return 76;
    case ErrorKind::Fault: return 77;
    case ErrorKind::Config: return 78;
    case ErrorKind::Overloaded: return 79;
  }
  return 70;
}

}  // namespace hypart
