// hypart — end-to-end pipeline facade.
//
// Runs the whole paper on a loop nest:
//   loop -> dependence analysis -> hyperplane time function -> projection ->
//   grouping (Algorithm 1) -> blocks -> TIG -> hypercube mapping
//   (Algorithm 2) -> simulated execution.
// This is the one-call public API used by the examples and benches;
// individual stages remain available for fine-grained use.
#pragma once

#include <memory>
#include <optional>

#include "loop/dependence.hpp"
#include "loop/loop_nest.hpp"
#include "mapping/hypercube_map.hpp"
#include "partition/checkers.hpp"
#include "sim/exec_sim.hpp"

namespace hypart {

struct PipelineConfig {
  DependenceOptions dependence;
  /// Explicit time function Π; when unset, the small-integer search is used.
  std::optional<IntVec> time_function;
  TimeFunctionSearchOptions tf_search;
  GroupingOptions grouping;
  /// Hypercube dimension n (N = 2^n processors).
  unsigned cube_dim = 3;
  HypercubeMapOptions mapping;
  MachineParams machine;
  SimOptions sim;
  /// Flops per iteration; defaults to the nest's statement flop total.
  std::optional<std::int64_t> flops_override;
  /// Run the theorem/lemma checkers and record their reports.
  bool validate = true;
  /// Optional tracing/metrics hooks, propagated to every stage (stage spans
  /// on the wall clock, simulator events on the simulated clock).  Both
  /// pointers null (the default) disables all instrumentation.
  obs::ObsContext obs{};
};

/// All stage outputs.  Heap-held where later stages keep references.
struct PipelineResult {
  DependenceInfo dependence;
  std::unique_ptr<ComputationStructure> structure;
  TimeFunction time_function;
  std::unique_ptr<ProjectedStructure> projected;
  Grouping grouping;
  Partition partition;
  PartitionStats stats;
  TaskInteractionGraph tig;
  HypercubeMappingResult mapping;
  SimResult sim;

  // Validation reports (populated when config.validate).
  bool exact_cover = false;
  bool theorem1 = false;
  Theorem2Report theorem2;
  LemmaReport lemmas;

  /// Final metrics snapshot; set only when config.obs carried a registry.
  std::optional<obs::MetricsSnapshot> metrics;

  /// One-paragraph human-readable summary.
  [[nodiscard]] std::string summary() const;
};

/// Run the full pipeline.  Throws on invalid configurations (e.g. no valid
/// time function in the search box, non-uniform dependences).
PipelineResult run_pipeline(const LoopNest& nest, const PipelineConfig& config = {});

}  // namespace hypart
