// hypart — end-to-end pipeline facade.
//
// Runs the whole paper on a loop nest:
//   loop -> dependence analysis -> hyperplane time function -> projection ->
//   grouping (Algorithm 1) -> blocks -> TIG -> hypercube mapping
//   (Algorithm 2) -> simulated execution.
// This is the one-call public API used by the examples and benches;
// individual stages remain available for fine-grained use.
#pragma once

#include <memory>
#include <optional>

#include "loop/dependence.hpp"
#include "loop/iter_space.hpp"
#include "loop/loop_nest.hpp"
#include "mapping/hypercube_map.hpp"
#include "partition/checkers.hpp"
#include "sim/exec_sim.hpp"

namespace hypart {

/// Which iteration-space backend the pipeline runs on.
enum class SpaceMode {
  Dense,     ///< materialize J^n (required for faults, codegen, interpreters)
  Symbolic,  ///< closed-form IterSpace path, O(lines + slabs + deps); affine bounds
  Verify     ///< run dense, then re-derive every stage symbolically and assert equality
};

[[nodiscard]] const char* to_string(SpaceMode mode);

/// Which *real* execution backend the measured side runs on (CLI
/// `--backend`).  The simulator is backend-independent; this selects how
/// `hypart run` / `hypart explain` actually execute the schedule.
enum class ExecBackend {
  Threads,  ///< exec/parallel_runtime: one thread per processor, mailboxes
  Procs,    ///< exec/proc_runtime: one OS process per processor, supervised
};

[[nodiscard]] const char* to_string(ExecBackend backend);

struct PipelineConfig {
  DependenceOptions dependence;
  /// Explicit time function Π; when unset, the small-integer search is used.
  std::optional<IntVec> time_function;
  TimeFunctionSearchOptions tf_search;
  GroupingOptions grouping;
  /// Hypercube dimension n (N = 2^n processors).
  unsigned cube_dim = 3;
  HypercubeMapOptions mapping;
  MachineParams machine;
  SimOptions sim;
  /// Flops per iteration; defaults to the nest's statement flop total.
  std::optional<std::int64_t> flops_override;
  /// Iteration-space backend.  Symbolic/Verify accept any affine-bounded
  /// nest (docs/affine-spaces.md); only a slab decomposition too large to
  /// beat dense enumeration is refused with Error(ErrorKind::Config).
  /// Verify throws Error(ErrorKind::Internal) on any dense/symbolic
  /// disagreement.
  SpaceMode space_mode = SpaceMode::Dense;
  /// Real execution backend used by the CLI's run/explain measured paths
  /// (the pipeline itself only simulates and ignores this).
  ExecBackend backend = ExecBackend::Threads;
  /// Run the theorem/lemma checkers and record their reports.
  bool validate = true;
  /// Optional tracing/metrics hooks, propagated to every stage (stage spans
  /// on the wall clock, simulator events on the simulated clock).  Both
  /// pointers null (the default) disables all instrumentation.
  obs::ObsContext obs{};
};

/// All stage outputs.  Heap-held where later stages keep references.
struct PipelineResult {
  /// The mode this result was produced under.
  SpaceMode space_mode = SpaceMode::Dense;
  DependenceInfo dependence;
  /// Materialized structure; null in symbolic mode (use `space` instead).
  std::unique_ptr<ComputationStructure> structure;
  /// Closed-form space; set in symbolic and verify modes, null in dense.
  std::unique_ptr<IterSpace> space;
  TimeFunction time_function;
  std::unique_ptr<ProjectedStructure> projected;
  Grouping grouping;
  /// Per-vertex block assignment; empty in symbolic mode.
  Partition partition;
  /// Per-block iteration counts.  Filled in dense/verify and in the
  /// line-based symbolic fallback; EMPTY on the pure lattice path (use
  /// `lattice`/`lattice_stats` — materializing one entry per group is
  /// exactly what that path avoids).
  std::vector<std::int64_t> block_sizes;
  PartitionStats stats;
  TaskInteractionGraph tig;
  HypercubeMappingResult mapping;
  SimResult sim;

  /// Closed-form grouping; set when the symbolic path ran on the group
  /// lattice (partition/group_lattice.hpp).  When set, `projected`,
  /// `grouping`, `block_sizes`, `tig` and `mapping` are empty/default —
  /// the lattice fields below replace them.
  std::unique_ptr<GroupLattice> lattice;
  /// Closed-form Algorithm 2 result for the lattice path.
  std::optional<LatticeHypercubeMapping> lattice_mapping;
  /// Aggregate block statistics for the lattice path (stand-in for
  /// `block_sizes`).
  std::optional<LatticeBlockStats> lattice_stats;

  /// Iteration count regardless of backend.
  [[nodiscard]] std::uint64_t iteration_count() const;

  // Validation reports (populated when config.validate).
  bool exact_cover = false;
  bool theorem1 = false;
  Theorem2Report theorem2;
  LemmaReport lemmas;

  /// Final metrics snapshot; set only when config.obs carried a registry.
  std::optional<obs::MetricsSnapshot> metrics;

  /// One-paragraph human-readable summary.
  [[nodiscard]] std::string summary() const;
};

/// Run the full pipeline.  Throws on invalid configurations (e.g. no valid
/// time function in the search box, non-uniform dependences).
PipelineResult run_pipeline(const LoopNest& nest, const PipelineConfig& config = {});

}  // namespace hypart
