// hypart — small POSIX I/O helpers shared by every socket/pipe user.
//
// Anything in hypart that talks over a file descriptor (the multi-process
// execution backend, future server code) must survive the three classic
// lies of POSIX I/O: a read or write can be interrupted (EINTR), can move
// fewer bytes than asked (partial transfer), and a write to a peer that
// went away raises SIGPIPE — which by default kills the whole process
// instead of returning EPIPE.  These helpers centralize the defenses so no
// call site ever reimplements (or forgets) them:
//
//   * ignore_sigpipe()  — process-wide, idempotent; after it, a write to a
//     closed socket fails with errno == EPIPE instead of killing us.
//   * read_full()       — loop until exactly n bytes arrived, EOF, or a
//     real error; EINTR restarts transparently.
//   * write_full()      — loop until all n bytes left, retrying EINTR and
//     partial writes unconditionally and transient errors (EAGAIN /
//     EWOULDBLOCK / ENOBUFS) with bounded exponential backoff.
#pragma once

#include <cstddef>
#include <sys/types.h>

namespace hypart {

/// Set SIGPIPE to SIG_IGN for the process (idempotent, thread-safe in the
/// "call before spawning threads" sense).  Every fd-writing entry point
/// calls this so delivery to a dead peer surfaces as EPIPE, a catchable
/// errno, never as a fatal signal.
void ignore_sigpipe();

/// Read exactly `n` bytes from `fd` into `buf`, restarting on EINTR and
/// continuing across partial reads.  Returns `n` on success, the byte count
/// actually read (< n, possibly 0) on EOF, or -1 with errno set on error.
/// A short return therefore always means the peer closed mid-message —
/// exactly the "truncated frame" case framed protocols must detect.
ssize_t read_full(int fd, void* buf, std::size_t n);

/// Write exactly `n` bytes from `buf` to `fd`.  EINTR and partial writes
/// are retried unconditionally; transient failures (EAGAIN, EWOULDBLOCK,
/// ENOBUFS) are retried up to `max_retries` times with exponential backoff
/// (1 ms doubling, capped at 64 ms per sleep).  Returns true when all bytes
/// left; false with errno preserved when the retries are exhausted or a
/// hard error (e.g. EPIPE — dead peer) occurred.  `retries_out`, when
/// non-null, accumulates the number of backoff retries taken (observability:
/// the supervisor surfaces it as the `proc.retries` metric).
bool write_full(int fd, const void* buf, std::size_t n, int max_retries = 16,
                int* retries_out = nullptr);

}  // namespace hypart
