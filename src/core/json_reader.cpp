#include "core/json_reader.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "core/json_writer.hpp"

namespace hypart {

namespace {

const JsonValue kNullValue{};

[[noreturn]] void type_error(const char* want, JsonValue::Kind got) {
  static const char* names[] = {"null", "bool", "int", "double", "string", "array", "object"};
  throw std::runtime_error(std::string("JsonValue: wanted ") + want + ", holds " +
                           names[static_cast<int>(got)]);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) type_error("bool", kind_);
  return bool_;
}

std::int64_t JsonValue::as_int64() const {
  if (kind_ == Kind::Int) return int_;
  if (kind_ == Kind::Double) return static_cast<std::int64_t>(double_);
  type_error("number", kind_);
}

double JsonValue::as_double() const {
  if (kind_ == Kind::Double) return double_;
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  type_error("number", kind_);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) type_error("string", kind_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::Array) type_error("array", kind_);
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::Object) type_error("object", kind_);
  return object_;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  if (kind_ != Kind::Object) return kNullValue;
  auto it = object_.find(key);
  return it == object_.end() ? kNullValue : it->second;
}

bool JsonValue::has(const std::string& key) const {
  return kind_ == Kind::Object && object_.count(key) > 0;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue& v = get(key);
  return v.is_number() ? v.as_double() : fallback;
}

std::int64_t JsonValue::int_or(const std::string& key, std::int64_t fallback) const {
  const JsonValue& v = get(key);
  return v.is_number() ? v.as_int64() : fallback;
}

std::string JsonValue::string_or(const std::string& key, const std::string& fallback) const {
  const JsonValue& v = get(key);
  return v.is_string() ? v.as_string() : fallback;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::make_int(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::Int;
  v.int_ = i;
  return v;
}
JsonValue JsonValue::make_double(double d) {
  JsonValue v;
  v.kind_ = Kind::Double;
  v.double_ = d;
  return v;
}
JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}
JsonValue JsonValue::make_array(std::vector<JsonValue> a) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.array_ = std::move(a);
  return v;
}
JsonValue JsonValue::make_object(std::map<std::string, JsonValue> o) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.object_ = std::move(o);
  return v;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  if (kind_ != Kind::Object) {
    *this = make_object({});
  }
  object_[key] = std::move(v);
  return *this;
}

std::vector<JsonValue>& JsonValue::as_array_mut() {
  if (kind_ != Kind::Array) type_error("array", kind_);
  return array_;
}

std::map<std::string, JsonValue>& JsonValue::as_object_mut() {
  if (kind_ != Kind::Object) type_error("object", kind_);
  return object_;
}

JsonValue JsonValue::take(const std::string& key) {
  if (kind_ != Kind::Object) return JsonValue();
  auto it = object_.find(key);
  if (it == object_.end()) return JsonValue();
  JsonValue out = std::move(it->second);
  object_.erase(it);
  return out;
}

namespace {

void write_value(JsonWriter& w, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::Null: w.raw_value("null"); break;
    case JsonValue::Kind::Bool: w.value(v.as_bool()); break;
    case JsonValue::Kind::Int: w.value(v.as_int64()); break;
    case JsonValue::Kind::Double: w.value(v.as_double()); break;
    case JsonValue::Kind::String: w.value(v.as_string()); break;
    case JsonValue::Kind::Array:
      w.begin_array();
      for (const JsonValue& e : v.as_array()) write_value(w, e);
      w.end_array();
      break;
    case JsonValue::Kind::Object:
      w.begin_object();
      for (const auto& [k, e] : v.as_object()) {
        w.key(k);
        write_value(w, e);
      }
      w.end_object();
      break;
  }
}

}  // namespace

std::string JsonValue::to_json() const {
  JsonWriter w;
  write_value(w, *this);
  return w.str();
}

void JsonValue::write(JsonWriter& w) const { write_value(w, *this); }

JsonParseError::JsonParseError(std::size_t offset, const std::string& reason)
    : std::runtime_error("JSON parse error at byte " + std::to_string(offset) + ": " + reason),
      offset_(offset) {}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  static constexpr int kMaxDepth = 256;  // bounds recursion on adversarial input

  [[noreturn]] void fail(const std::string& reason) const { throw JsonParseError(pos_, reason); }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    JsonValue v = parse_value_inner();
    --depth_;
    return v;
  }

  JsonValue parse_value_inner() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    std::map<std::string, JsonValue> obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue::make_object(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue::make_array(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape character");
      }
    }
  }

  std::string parse_unicode_escape() {
    auto hex4 = [&]() -> unsigned {
      if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
      unsigned cp = 0;
      for (int i = 0; i < 4; ++i) {
        char c = text_[pos_++];
        cp <<= 4;
        if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
        else fail("invalid hex digit in \\u escape");
      }
      return cp;
    };
    unsigned cp = hex4();
    // Surrogate pair: combine \uD800-\uDBFF with a following low surrogate.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 2 <= text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
        pos_ += 2;
        unsigned lo = hex4();
        if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      } else {
        fail("unpaired high surrogate");
      }
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    // UTF-8 encode.
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    auto digits = [&] {
      std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
      return pos_ > before;
    };
    const std::size_t int_start = pos_;
    if (!digits()) fail("invalid number");
    if (text_[int_start] == '0' && pos_ - int_start > 1) fail("leading zero in number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (!digits()) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!digits()) fail("digits required in exponent");
    }
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (integral) {
      std::int64_t i = 0;
      auto [p, ec] = std::from_chars(first, last, i);
      if (ec == std::errc() && p == last) return JsonValue::make_int(i);
      // Out-of-int64-range integer: fall through to double.
    }
    double d = 0.0;
    auto [p, ec] = std::from_chars(first, last, d);
    if (ec != std::errc() || p != last) fail("unparseable number");
    return JsonValue::make_double(d);
  }
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parse_document(); }

bool parse_json_file(const std::string& path, JsonValue& out, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    out = parse_json(ss.str());
  } catch (const JsonParseError& e) {
    error = path + ": " + e.what();
    return false;
  }
  return true;
}

}  // namespace hypart
