// hypart — JSON export of pipeline results.
//
// Serializes every stage's key quantities so external tooling (plotters,
// regression dashboards) can consume a run without linking the library.
// Self-contained emitter; no external JSON dependency.
#pragma once

#include <string>

#include "core/pipeline.hpp"

namespace hypart {

/// A minimal JSON string builder with correct escaping/formatting.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array(const std::string& key = "");
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& field(const std::string& k, const std::string& v);
  JsonWriter& field(const std::string& k, double v);
  JsonWriter& field(const std::string& k, std::int64_t v);
  JsonWriter& field(const std::string& k, std::uint64_t v);
  JsonWriter& field(const std::string& k, bool v);

  [[nodiscard]] std::string str() const { return out_; }

 private:
  void comma();
  static std::string escape(const std::string& s);

  std::string out_;
  bool need_comma_ = false;
};

/// Serialize a pipeline run: loop metadata, dependences, schedule,
/// partition statistics, mapping, simulation costs, validation flags.
std::string pipeline_result_to_json(const LoopNest& nest, const PipelineResult& result);

}  // namespace hypart
