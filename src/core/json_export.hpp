// hypart — JSON export of pipeline results.
//
// Serializes every stage's key quantities so external tooling (plotters,
// regression dashboards) can consume a run without linking the library.
// Self-contained emitter; no external JSON dependency.
#pragma once

#include <string>

#include "core/json_writer.hpp"
#include "core/pipeline.hpp"

namespace hypart {

/// Serialize a pipeline run: loop metadata, dependences, schedule,
/// partition statistics, mapping, simulation costs, validation flags.
std::string pipeline_result_to_json(const LoopNest& nest, const PipelineResult& result);

}  // namespace hypart
