// hypart — minimal JSON parser, the read-side twin of core/json_writer.
//
// The observability layer writes machine-readable artifacts (metrics
// snapshots, BENCH_*.json results, the prediction-accuracy ledger) that
// hypart's own tooling must read back: `tools/bench_report` diffs bench
// result sets and `hypart explain --ledger` accumulates accuracy rows
// across runs.  This is a strict recursive-descent parser for that
// round-trip — RFC 8259 JSON, no extensions — kept self-contained so the
// repo stays free of external JSON dependencies.
//
// Numbers are parsed with std::from_chars, so parsing is locale-independent
// and exactly inverts JsonWriter's std::to_chars formatting (shortest
// round-trip representation).  Integral values without '.', 'e' or a
// magnitude beyond int64 are kept as int64 so counters survive unchanged.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace hypart {

class JsonWriter;

/// A parsed JSON document node.  Object keys are kept in sorted order
/// (std::map), matching the deterministic ordering every hypart writer
/// already guarantees.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Int || kind_ == Kind::Double; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }

  /// Typed accessors; throw std::runtime_error on kind mismatch (numbers
  /// convert freely between as_int64/as_double).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; null-kind sentinel when missing or not an object.
  [[nodiscard]] const JsonValue& get(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;
  /// get(key).as_double() with a fallback when the member is missing or
  /// non-numeric; the lookup-with-default every report consumer wants.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::int64_t int_or(const std::string& key, std::int64_t fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key, const std::string& fallback) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_int(std::int64_t i);
  static JsonValue make_double(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> a);
  static JsonValue make_object(std::map<std::string, JsonValue> o);

  /// Mutable member access for building/rewriting documents in place (the
  /// plan server patches cached documents before replying).  Converts a
  /// non-object value into an empty object first.
  JsonValue& set(const std::string& key, JsonValue v);

  /// Borrow accessors: mutable references into the stored container, so a
  /// rewrite can edit sub-trees in place instead of copy-edit-reinsert.
  /// Same kind contract (and exceptions) as the const accessors.
  [[nodiscard]] std::vector<JsonValue>& as_array_mut();
  [[nodiscard]] std::map<std::string, JsonValue>& as_object_mut();
  /// Move accessor: removes `key` from the object and returns its value
  /// (null when the member is missing or this is not an object).  The
  /// surviving document no longer owns the sub-tree — no deep copy is made.
  [[nodiscard]] JsonValue take(const std::string& key);

  /// Serialize back to JSON text (via JsonWriter, so numbers come out in
  /// the same shortest-round-trip form every hypart writer emits).  Since
  /// object keys are stored sorted, parse -> to_json -> parse is a fixed
  /// point: the bytes are identical from the second rendering on, which is
  /// what lets the plan cache replay stored documents verbatim.
  [[nodiscard]] std::string to_json() const;

  /// Serialize into an existing writer (the streaming form of to_json);
  /// lets callers splice this value into a larger hand-built document
  /// without an intermediate string per sub-tree.
  void write(JsonWriter& w) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Thrown on malformed input; what() carries a byte offset and reason.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(std::size_t offset, const std::string& reason);
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Parse one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).  Throws JsonParseError.
JsonValue parse_json(const std::string& text);

/// Parse the contents of `path`; returns nullopt-like null JsonValue and
/// sets `error` on I/O failure or parse failure (no exceptions — callers
/// are CLI tools that want a message, not a stack).
bool parse_json_file(const std::string& path, JsonValue& out, std::string& error);

}  // namespace hypart
