// hypart — generic directed graph.
//
// Used for the computational structure (Def. 2), the projected structure
// (Def. 5), the group-level communication graph (Fig. 7) and the task
// interaction graph of the mapping phase.
#pragma once

#include <cstdint>
#include <vector>

namespace hypart {

/// A directed graph over vertices 0..n-1 with optional integer edge weights.
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t n) : out_(n), in_(n) {}

  [[nodiscard]] std::size_t vertex_count() const { return out_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_; }

  std::size_t add_vertex();
  /// Add edge u -> v with the given weight; parallel edges are merged and
  /// their weights accumulated.
  void add_edge(std::size_t u, std::size_t v, std::int64_t weight = 1);

  [[nodiscard]] bool has_edge(std::size_t u, std::size_t v) const;
  [[nodiscard]] std::int64_t edge_weight(std::size_t u, std::size_t v) const;

  struct Edge {
    std::size_t to;
    std::int64_t weight;
  };
  [[nodiscard]] const std::vector<Edge>& out_edges(std::size_t u) const { return out_[u]; }
  [[nodiscard]] const std::vector<Edge>& in_edges(std::size_t v) const { return in_[v]; }
  [[nodiscard]] std::size_t out_degree(std::size_t u) const { return out_[u].size(); }
  [[nodiscard]] std::size_t in_degree(std::size_t v) const { return in_[v].size(); }

  /// Total weight over all edges.
  [[nodiscard]] std::int64_t total_weight() const;

  /// Topological order; empty if the graph has a cycle.
  [[nodiscard]] std::vector<std::size_t> topological_order() const;
  [[nodiscard]] bool is_acyclic() const;

  /// Vertices reachable from `start` (including it).
  [[nodiscard]] std::vector<std::size_t> reachable_from(std::size_t start) const;

  /// Weakly-connected component id per vertex.
  [[nodiscard]] std::vector<std::size_t> weak_components() const;

  /// Longest path length (in edges) in a DAG; throws on cyclic graphs.
  [[nodiscard]] std::size_t dag_longest_path() const;

 private:
  std::vector<std::vector<Edge>> out_;
  std::vector<std::vector<Edge>> in_;
  std::size_t edges_ = 0;
};

}  // namespace hypart
