#include "graph/comp_structure.hpp"

#include <stdexcept>

namespace hypart {

ComputationStructure ComputationStructure::from_loop(const LoopNest& nest,
                                                     const DependenceOptions& opts) {
  DependenceInfo info = analyze_dependences(nest, opts);
  IndexSet is(nest);
  return {is.points(), info.distance_vectors()};
}

ComputationStructure::ComputationStructure(std::vector<IntVec> vertices,
                                           std::vector<IntVec> dependences)
    : vertices_(std::move(vertices)), dependences_(std::move(dependences)) {
  if (vertices_.empty()) throw std::invalid_argument("ComputationStructure: empty vertex set");
  dim_ = vertices_.front().size();
  for (const IntVec& v : vertices_)
    if (v.size() != dim_)
      throw std::invalid_argument("ComputationStructure: mixed vertex dimensions");
  for (const IntVec& d : dependences_) {
    if (d.size() != dim_)
      throw std::invalid_argument("ComputationStructure: dependence dimension mismatch");
    if (is_zero(d)) throw std::invalid_argument("ComputationStructure: zero dependence vector");
  }
  index_.reserve(vertices_.size());
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    if (!index_.emplace(vertices_[i], i).second)
      throw std::invalid_argument("ComputationStructure: duplicate vertex");
  }
}

std::size_t ComputationStructure::id_of(const IntVec& p) const {
  auto it = index_.find(p);
  if (it == index_.end())
    throw std::out_of_range("ComputationStructure::id_of: point not in V");
  return it->second;
}

std::size_t ComputationStructure::dependence_arc_count() const {
  std::size_t count = 0;
  for_each_arc([&](const IntVec&, const IntVec&, std::size_t) { ++count; });
  return count;
}

void ComputationStructure::for_each_arc(
    const std::function<void(const IntVec&, const IntVec&, std::size_t)>& visit) const {
  for (const IntVec& src : vertices_) {
    for (std::size_t k = 0; k < dependences_.size(); ++k) {
      IntVec dst = add(src, dependences_[k]);
      if (index_.contains(dst)) visit(src, dst, k);
    }
  }
}

Digraph ComputationStructure::to_digraph() const {
  Digraph g(vertices_.size());
  for_each_arc([&](const IntVec& src, const IntVec& dst, std::size_t) {
    g.add_edge(index_.at(src), index_.at(dst));
  });
  return g;
}

bool ComputationStructure::is_acyclic() const { return to_digraph().is_acyclic(); }

}  // namespace hypart
